package core

import "errors"

// Typed sentinel errors for the public transaction surface. Every error
// returned by Database and Workspace operations that corresponds to one
// of these conditions wraps the matching sentinel, so callers dispatch
// with errors.Is instead of string matching — the HTTP layer
// (internal/server) maps them onto status codes:
//
//	ErrNoSuchBranch → 404    ErrConflict, ErrBranchExists → 409
//	ErrParse        → 400    ErrTypecheck                 → 422
//	ErrConstraint   → 409    context.DeadlineExceeded     → 504
var (
	// ErrNoSuchBranch marks operations on a branch name that does not
	// exist (or a version index out of range).
	ErrNoSuchBranch = errors.New("no such branch")
	// ErrBranchExists marks branch creation over an existing name.
	ErrBranchExists = errors.New("branch already exists")
	// ErrConflict marks an optimistic commit that lost the race: the
	// branch head moved since the transaction's snapshot was taken. It
	// also covers installing a block under a name already taken.
	ErrConflict = errors.New("conflict")
	// ErrParse marks LogiQL source that failed to parse.
	ErrParse = errors.New("parse error")
	// ErrTypecheck marks source that parsed but failed compilation
	// (arity mismatches, modifying derived predicates, bad directives).
	ErrTypecheck = errors.New("typecheck error")
	// ErrConstraint marks a transaction aborted by integrity-constraint
	// violations.
	ErrConstraint = errors.New("integrity constraint violation")
	// ErrCorruptSnapshot marks a snapshot that cannot be restored:
	// truncated or bit-flipped gob payloads, framed snapshot files whose
	// checksum does not match, and decoded snapshots whose contents fail
	// re-derivation. Recovery (internal/durable) falls back to the
	// previous snapshot generation on it; the HTTP layer maps it to 400.
	ErrCorruptSnapshot = errors.New("corrupt snapshot")
	// ErrDurability marks a commit rejected because its journal record
	// could not be made durable (the commit hook failed). The in-memory
	// state is unchanged: a commit that cannot be logged does not happen.
	ErrDurability = errors.New("durability failure")
	// ErrRepairNotApplicable marks a conflicted transaction whose record
	// cannot be repaired against the new head (paper §3.4): the logic or
	// a predicate arity changed under it, or the winner's writes
	// intersect its reads from the first stratum so nothing would be
	// reused. Callers fall back to full re-execution.
	ErrRepairNotApplicable = errors.New("repair not applicable")
)
