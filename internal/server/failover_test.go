package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"logicblox/internal/core"
	"logicblox/internal/durable"
	"logicblox/internal/durable/faultfs"
	"logicblox/internal/replica"
)

// The warm-standby failover property test, in the style of the durable
// layer's crash sweep: the primary's filesystem is killed at EVERY
// operation index during a commit burst while a live follower tails it,
// the follower is promoted, and the promoted database must contain
// exactly the acknowledged commits — none lost, none invented. The
// serial oracle is the acked list itself: commits are issued serially,
// and an ack means journal append + fsync succeeded, which is also the
// exact condition for a record to enter the primary's tail cursor. The
// crashed primary's HTTP server stays up (only its durability layer
// died), so the follower can finish draining the acked tail before
// promotion — the window in which plain async replication would lose
// acked commits.

const (
	failoverCommits    = 10
	failoverCheckpoint = 4 // checkpoint mid-burst: truncation under fire
)

type failoverHarness struct {
	primaryTS  *httptest.Server
	primarySt  *durable.Store
	primaryDB  *core.Database
	follower   *replica.Follower
	followerTS *httptest.Server
}

// newFailoverPrimary boots a primary over fs; ok=false when fs already
// gave out during open/recovery (early crash points — nothing acked,
// nothing to verify).
func newFailoverPrimary(t *testing.T, fs *faultfs.FS) (*failoverHarness, bool) {
	t.Helper()
	store, err := durable.Open("data", durable.Options{
		FS: fs, Generations: 2, CheckpointEvery: -1, CheckpointInterval: -1,
	})
	if err != nil {
		return nil, false
	}
	db, err := store.Recover(func() (*core.Database, error) { return core.NewDatabase(), nil })
	if err != nil {
		return nil, false
	}
	db.SetCommitHook(store.LogCommit)
	s := New(db, Config{Durable: store, TailWindow: 2 * time.Second, TailHeartbeat: 10 * time.Millisecond})
	h := &failoverHarness{primarySt: store, primaryDB: db, primaryTS: httptest.NewServer(s.Handler())}
	t.Cleanup(h.primaryTS.Close)
	t.Cleanup(func() { store.Close() })
	return h, true
}

func (h *failoverHarness) startFollower(t *testing.T) {
	t.Helper()
	fol, _, fts := openFollowerServer(t, faultfs.New(), h.primaryTS.URL, time.Minute, nil)
	h.follower, h.followerTS = fol, fts
}

// runFailoverBurst drives the serial commit burst against the primary
// over HTTP, recording which commits were acknowledged. Errors after the
// crash point fires are expected and tolerated.
func (h *failoverHarness) runFailoverBurst(t *testing.T) (acked []int, ackedBlock bool) {
	t.Helper()
	var resp ExecResponse
	if status := do(t, h.primaryTS, http.MethodPost, "/addblock",
		Request{Name: "views", Src: `q(x, y) <- p(x), p(y), x < y.`}, &resp); status == http.StatusOK {
		ackedBlock = true
	}
	for v := 0; v < failoverCommits; v++ {
		var r ExecResponse
		if status := do(t, h.primaryTS, http.MethodPost, "/exec",
			Request{Src: fmt.Sprintf("+p(%d).", v)}, &r); status == http.StatusOK {
			acked = append(acked, v)
		}
		if (v+1)%failoverCheckpoint == 0 {
			// Errors ignored: a failed checkpoint must never lose acked
			// commits or corrupt the tail cursor.
			_ = h.primarySt.Checkpoint(h.primaryDB.SaveSnapshot)
		}
	}
	return acked, ackedBlock
}

// promotedInts queries the promoted follower's base relation.
func (h *failoverHarness) promotedInts(t *testing.T) []int {
	t.Helper()
	var resp QueryResponse
	if status := do(t, h.followerTS, http.MethodPost, "/query",
		Request{Src: `_(x) <- p(x).`}, &resp); status != http.StatusOK {
		t.Fatalf("promoted follower query status %d", status)
	}
	var out []int
	for _, row := range resp.Rows {
		out = append(out, int(row[0].(float64)))
	}
	sort.Ints(out)
	return out
}

func TestFailoverEveryCrashPoint(t *testing.T) {
	// Probe run: count the primary's filesystem operations fault-free.
	probe := faultfs.New()
	h, ok := newFailoverPrimary(t, probe)
	if !ok {
		t.Fatal("fault-free primary failed to boot")
	}
	h.startFollower(t)
	acked, ackedBlock := h.runFailoverBurst(t)
	if len(acked) != failoverCommits || !ackedBlock {
		t.Fatalf("fault-free run acked %d/%d commits (block %v)", len(acked), failoverCommits, ackedBlock)
	}
	total := probe.Ops()
	if total < 30 {
		t.Fatalf("burst performed only %d fs operations; sweep would be trivial", total)
	}

	for point := 1; point <= total; point++ {
		point := point
		t.Run(fmt.Sprintf("crash-at-%d", point), func(t *testing.T) {
			fs := faultfs.New()
			fs.SetCrashAt(point)
			h, ok := newFailoverPrimary(t, fs)
			if !ok {
				return // crashed before serving: nothing acked, nothing lost
			}
			h.startFollower(t)
			acked, ackedBlock := h.runFailoverBurst(t)

			// Drain: the follower must reach the last acked record. The
			// primary's in-memory tail cursor holds exactly the acked set
			// even though its durability layer is dead.
			head := h.primarySt.Stats().LastSeq
			waitUntil(t, 10*time.Second, "follower drain of acked tail", func() bool {
				return h.follower.Status().AppliedSeq >= head
			})

			// Failover: promote over HTTP, like the runbook does.
			var pr PromoteResponse
			if status := do(t, h.followerTS, http.MethodPost, "/promote", nil, &pr); status != http.StatusOK || !pr.Promoted {
				t.Fatalf("promote: status %d %+v", status, pr)
			}

			// The promoted database equals the serial oracle: exactly the
			// acked commits, no lost acks, no surfaced unacked writes.
			if got := h.promotedInts(t); !intsEqual(got, acked) {
				t.Fatalf("crash at op %d: promoted follower has %v, acked %v", point, got, acked)
			}
			// Replay went through the normal transaction path: the
			// derived view exists iff its block install was acked.
			n := len(acked)
			if ackedBlock && n >= 2 {
				var resp QueryResponse
				if status := do(t, h.followerTS, http.MethodPost, "/query",
					Request{Src: `_(x, y) <- q(x, y).`}, &resp); status != http.StatusOK {
					t.Fatalf("derived query status %d", status)
				}
				if len(resp.Rows) != n*(n-1)/2 {
					t.Fatalf("crash at op %d: derived q has %d tuples, want %d", point, len(resp.Rows), n*(n-1)/2)
				}
			}

			// The promoted follower accepts writes continuing the sequence.
			mustOK(t, h.followerTS, http.MethodPost, "/exec", Request{Src: "+p(999)."}, nil)
			if got := h.promotedInts(t); !intsEqual(got, append(append([]int(nil), acked...), 999)) {
				t.Fatalf("crash at op %d: post-promotion write lost: %v", point, got)
			}
		})
	}
}
