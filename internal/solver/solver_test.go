package solver

import (
	"math"
	"testing"
)

func solveLP(t *testing.T, p *Problem) *Solution {
	t.Helper()
	s, err := SolveLP(p)
	if err != nil {
		t.Fatalf("SolveLP: %v", err)
	}
	return s
}

func TestSimplexBasicMax(t *testing.T) {
	// max 3x + 2y  s.t. x + y ≤ 4, x + 3y ≤ 6, x,y ≥ 0 → (4,0), obj 12.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{3, 2},
		Constraints: []LinConstraint{
			{Coeffs: map[int]float64{0: 1, 1: 1}, Op: LE, RHS: 4},
			{Coeffs: map[int]float64{0: 1, 1: 3}, Op: LE, RHS: 6},
		},
	}
	s := solveLP(t, p)
	if s.Status != Optimal || math.Abs(s.Objective-12) > 1e-6 {
		t.Fatalf("solution = %+v", s)
	}
	if math.Abs(s.X[0]-4) > 1e-6 || math.Abs(s.X[1]) > 1e-6 {
		t.Fatalf("x = %v", s.X)
	}
}

func TestSimplexWithGEAndEquality(t *testing.T) {
	// max x + y  s.t. x ≥ 1, y = 2, x + y ≤ 5 → (3,2), obj 5.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 1},
		Constraints: []LinConstraint{
			{Coeffs: map[int]float64{0: 1}, Op: GE, RHS: 1},
			{Coeffs: map[int]float64{1: 1}, Op: EQ, RHS: 2},
			{Coeffs: map[int]float64{0: 1, 1: 1}, Op: LE, RHS: 5},
		},
	}
	s := solveLP(t, p)
	if s.Status != Optimal || math.Abs(s.Objective-5) > 1e-6 {
		t.Fatalf("solution = %+v", s)
	}
	if math.Abs(s.X[0]-3) > 1e-6 || math.Abs(s.X[1]-2) > 1e-6 {
		t.Fatalf("x = %v", s.X)
	}
}

func TestSimplexInfeasible(t *testing.T) {
	p := &Problem{
		NumVars:   1,
		Objective: []float64{1},
		Constraints: []LinConstraint{
			{Coeffs: map[int]float64{0: 1}, Op: GE, RHS: 5},
			{Coeffs: map[int]float64{0: 1}, Op: LE, RHS: 2},
		},
	}
	s := solveLP(t, p)
	if s.Status != Infeasible {
		t.Fatalf("status = %v", s.Status)
	}
}

func TestSimplexUnbounded(t *testing.T) {
	p := &Problem{
		NumVars:     1,
		Objective:   []float64{1},
		Constraints: []LinConstraint{{Coeffs: map[int]float64{0: 1}, Op: GE, RHS: 0}},
	}
	s := solveLP(t, p)
	if s.Status != Unbounded {
		t.Fatalf("status = %v", s.Status)
	}
}

func TestSimplexFreeVariables(t *testing.T) {
	// min x (as max -x) with x ≥ -3 as a free variable: x* = -3.
	p := &Problem{
		NumVars:     1,
		Objective:   []float64{-1},
		Free:        []bool{true},
		Constraints: []LinConstraint{{Coeffs: map[int]float64{0: 1}, Op: GE, RHS: -3}},
	}
	s := solveLP(t, p)
	if s.Status != Optimal || math.Abs(s.X[0]+3) > 1e-6 {
		t.Fatalf("solution = %+v", s)
	}
}

func TestSimplexDegenerate(t *testing.T) {
	// Degenerate vertex: Bland's rule must not cycle.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 1},
		Constraints: []LinConstraint{
			{Coeffs: map[int]float64{0: 1, 1: 1}, Op: LE, RHS: 1},
			{Coeffs: map[int]float64{0: 1}, Op: LE, RHS: 1},
			{Coeffs: map[int]float64{1: 1}, Op: LE, RHS: 1},
			{Coeffs: map[int]float64{0: 2, 1: 1}, Op: LE, RHS: 2},
		},
	}
	s := solveLP(t, p)
	if s.Status != Optimal || math.Abs(s.Objective-1) > 1e-6 {
		t.Fatalf("solution = %+v", s)
	}
}

func TestMIPKnapsack(t *testing.T) {
	// max 5a + 4b + 3c  s.t. 2a + 3b + c ≤ 5, a,b,c ∈ {0,1}.
	p := &Problem{
		NumVars:   3,
		Objective: []float64{5, 4, 3},
		Integer:   []bool{true, true, true},
		Constraints: []LinConstraint{
			{Coeffs: map[int]float64{0: 2, 1: 3, 2: 1}, Op: LE, RHS: 5},
			{Coeffs: map[int]float64{0: 1}, Op: LE, RHS: 1},
			{Coeffs: map[int]float64{1: 1}, Op: LE, RHS: 1},
			{Coeffs: map[int]float64{2: 1}, Op: LE, RHS: 1},
		},
	}
	s, err := SolveMIP(p)
	if err != nil {
		t.Fatal(err)
	}
	// Best: a=1, c=1 (weight 3, value 8); adding b exceeds capacity... 2+3+1=6 > 5.
	// Actually a=1,b=0,c=1 → 8; a=0,b=1,c=1 → 7; a=1,b=1 → weight 5 → value 9!
	if s.Status != Optimal || math.Abs(s.Objective-9) > 1e-6 {
		t.Fatalf("solution = %+v", s)
	}
	if math.Abs(s.X[0]-1) > 1e-6 || math.Abs(s.X[1]-1) > 1e-6 || math.Abs(s.X[2]) > 1e-6 {
		t.Fatalf("x = %v", s.X)
	}
}

func TestMIPIntegerRounding(t *testing.T) {
	// max x s.t. x ≤ 2.5, x integer → 2.
	p := &Problem{
		NumVars:     1,
		Objective:   []float64{1},
		Integer:     []bool{true},
		Constraints: []LinConstraint{{Coeffs: map[int]float64{0: 1}, Op: LE, RHS: 2.5}},
	}
	s, err := SolveMIP(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || math.Abs(s.X[0]-2) > 1e-6 {
		t.Fatalf("solution = %+v", s)
	}
}

func TestMIPInfeasible(t *testing.T) {
	// 0.4 ≤ x ≤ 0.6, x integer → infeasible.
	p := &Problem{
		NumVars:   1,
		Objective: []float64{1},
		Integer:   []bool{true},
		Constraints: []LinConstraint{
			{Coeffs: map[int]float64{0: 1}, Op: GE, RHS: 0.4},
			{Coeffs: map[int]float64{0: 1}, Op: LE, RHS: 0.6},
		},
	}
	s, err := SolveMIP(p)
	if err == nil && s.Status == Optimal {
		t.Fatalf("expected infeasible, got %+v", s)
	}
}

func TestEmptyProblem(t *testing.T) {
	s := solveLP(t, &Problem{})
	if s.Status != Optimal {
		t.Fatalf("empty problem should be trivially optimal")
	}
}
