// Package engine is the "engine proper" of the system (paper Figure 6):
// it evaluates a compiled LogiQL program bottom-up over a context of named
// relations, materializing derived predicates with leapfrog triejoin,
// semi-naive fixpoints for recursive strata, aggregation and predict P2P
// rules, and integrity-constraint checking.
package engine

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"logicblox/internal/compiler"
	"logicblox/internal/lftj"
	"logicblox/internal/ml"
	"logicblox/internal/obs"
	"logicblox/internal/optimizer"
	"logicblox/internal/relation"
	"logicblox/internal/trie"
	"logicblox/internal/tuple"
)

// Options configure an evaluation context.
type Options struct {
	// Sens, if non-nil, accumulates sensitivity intervals for every join
	// run and membership probe, enabling incremental maintenance and
	// transaction repair on top of the evaluation.
	Sens *lftj.SensitivityIndex
	// Models stores trained models for predict rules. Required if the
	// program contains predict rules.
	Models *ml.Registry
	// Optimize enables the sampling-based variable-order optimizer
	// (paper §3.2): each rule's join order is chosen by comparing
	// candidate orders on predicate samples, cached per rule.
	Optimize bool
	// Plans, if non-nil (and Optimize is on), is a cross-transaction plan
	// cache: chosen orders are reused by rule fingerprint and re-sampled
	// only when observed evaluation cost or input cardinalities drift
	// (the adaptive optimizer loop). Observed seek/next counts are fed
	// back into the store after every full rule evaluation.
	Plans *optimizer.PlanStore
	// Parallel, when > 1, evaluates independent rules of a non-recursive
	// stratum concurrently with up to Parallel workers (the automatic
	// parallelization of queries and views, paper T1). Ignored while a
	// sensitivity index is recording.
	Parallel int
	// Obs, if non-nil, receives per-rule profiles (eval time, tuples
	// produced, LFTJ seek/next counts), per-stratum spans, and fixpoint
	// counters. When nil, the process-wide obs.Default() registry is used
	// if one is installed; otherwise instrumentation is off and costs one
	// pointer test per rule evaluation.
	Obs *obs.Registry
	// Ctx, if non-nil, bounds the evaluation: cancellation and deadline
	// expiry are honored at iteration boundaries — before each rule
	// evaluation and at the top of every semi-naive fixpoint round — so a
	// server request deadline stops a runaway recursive rule instead of
	// letting the transaction spin (the evaluation returns ctx.Err()).
	Ctx context.Context
}

// Context is an evaluation context: a compiled program plus the current
// contents of every named relation (base, derived, delta, @start).
type Context struct {
	Prog      *compiler.Program
	rels      map[string]relation.Relation
	perms     map[string]relation.Relation // secondary-index cache
	models    *ml.Registry
	sens      *lftj.SensitivityIndex
	optimize  bool
	planStore *optimizer.PlanStore
	parallel  int
	obs       *obs.Registry                // nil = instrumentation off
	ctx       context.Context              // nil = unbounded evaluation
	span      *obs.Span                    // parent for stratum spans (may be nil)
	mu        sync.Mutex                   // guards perms, plans and ruleStats during parallel evaluation
	plans     map[int]*compiler.RulePlan   // optimizer decisions, by rule ID
	ruleStats map[int]*obs.RuleStats       // cached per-rule profile handles
	capture   map[string]relation.Relation // per-head union of rule outputs (nil = off)
}

// NewContext builds a context over base relation contents (keyed by
// decorated name; usually plain base-predicate names).
func NewContext(prog *compiler.Program, base map[string]relation.Relation, opts Options) *Context {
	reg := opts.Obs
	if reg == nil {
		reg = obs.Default()
	}
	c := &Context{
		Prog:      prog,
		rels:      make(map[string]relation.Relation, len(base)+8),
		perms:     map[string]relation.Relation{},
		models:    opts.Models,
		sens:      opts.Sens,
		optimize:  opts.Optimize,
		planStore: opts.Plans,
		parallel:  opts.Parallel,
		obs:       reg,
		ctx:       opts.Ctx,
		plans:     map[int]*compiler.RulePlan{},
		ruleStats: map[int]*obs.RuleStats{},
	}
	for name, r := range base {
		c.rels[name] = r
	}
	return c
}

// Relation returns the current content of name, or an empty relation of
// the predicate's arity.
func (c *Context) Relation(name string) relation.Relation {
	if r, ok := c.rels[name]; ok {
		return r
	}
	return relation.New(c.arityOf(name))
}

// Set replaces the content of name.
func (c *Context) Set(name string, r relation.Relation) { c.rels[name] = r }

// Has reports whether name has explicit content.
func (c *Context) Has(name string) bool {
	_, ok := c.rels[name]
	return ok
}

// Relations returns a copy of the name → relation map.
func (c *Context) Relations() map[string]relation.Relation {
	out := make(map[string]relation.Relation, len(c.rels))
	for k, v := range c.rels {
		out[k] = v
	}
	return out
}

// ctxErr reports the evaluation context's cancellation state; nil when
// no context bounds the evaluation. The per-rule/per-round cost is one
// pointer test plus (when bounded) one Err() load.
func (c *Context) ctxErr() error {
	if c.ctx == nil {
		return nil
	}
	return c.ctx.Err()
}

func (c *Context) arityOf(name string) int {
	base := compiler.BaseName(name)
	if p, ok := c.Prog.Preds[base]; ok {
		return p.Arity
	}
	return 1
}

// EvalAll evaluates every static stratum in order, materializing all
// derived predicates.
func (c *Context) EvalAll() error {
	if c.obs != nil && c.span == nil {
		sp := c.obs.StartSpan("engine.eval")
		sp.SetAttr("strata", int64(len(c.Prog.Strata)))
		c.span = sp
		defer func() {
			c.span = nil
			sp.End()
		}()
	}
	for _, stratum := range c.Prog.Strata {
		if err := c.EvalStratum(stratum); err != nil {
			return err
		}
	}
	return c.checkFunctional()
}

// EvalStratum evaluates one stratum. Non-recursive strata get a single
// pass; recursive strata run the semi-naive fixpoint: after the first
// full pass, each subsequent round restricts one recursive atom occurrence
// per rule to the previous round's delta.
func (c *Context) EvalStratum(rules []*compiler.RulePlan) error {
	headSet := map[string]bool{}
	for _, r := range rules {
		headSet[r.HeadName] = true
	}
	recursive := false
	for _, r := range rules {
		for _, b := range r.BodyNames {
			if headSet[b] {
				recursive = true
			}
		}
	}

	sp := c.span.Child("stratum")
	sp.SetAttr("rules", int64(len(rules)))
	if recursive {
		sp.SetAttr("recursive", 1)
	}
	defer sp.End()

	// First pass: full evaluation — in parallel across the stratum's
	// rules when enabled (they are independent: all read lower strata).
	deltas := map[string]relation.Relation{}
	results := make([]relation.Relation, len(rules))
	if c.parallel > 1 && !recursive && c.sens == nil && len(rules) > 1 {
		errs := make([]error, len(rules))
		var wg sync.WaitGroup
		sem := make(chan struct{}, c.parallel)
		for i, r := range rules {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int, r *compiler.RulePlan) {
				defer wg.Done()
				defer func() { <-sem }()
				var rsp *obs.Span
				if sp != nil {
					rsp = sp.Child("rule:" + r.HeadName)
				}
				results[i], errs[i] = c.evalRule(r, nil)
				if rsp != nil {
					rsp.SetAttr("tuples", int64(results[i].Len()))
					rsp.End()
				}
			}(i, r)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
	} else {
		for i, r := range rules {
			if err := c.ctxErr(); err != nil {
				return err
			}
			var rsp *obs.Span
			if sp != nil {
				rsp = sp.Child("rule:" + r.HeadName)
			}
			derived, err := c.evalRule(r, nil)
			if err != nil {
				return err
			}
			if rsp != nil {
				rsp.SetAttr("tuples", int64(derived.Len()))
				rsp.End()
			}
			results[i] = derived
		}
	}
	for i, r := range rules {
		derived := results[i]
		c.captureDerived(r.HeadName, derived)
		cur := c.Relation(r.HeadName)
		fresh := derived.Difference(cur)
		if !fresh.IsEmpty() {
			c.Set(r.HeadName, cur.Union(fresh))
			d := deltas[r.HeadName]
			if d.Arity() == 0 {
				d = relation.New(fresh.Arity())
			}
			deltas[r.HeadName] = d.Union(fresh)
		}
	}
	if !recursive {
		return nil
	}

	// Fixpoint rounds.
	rounds := int64(0)
	defer func() {
		if rounds > 0 {
			sp.SetAttr("fixpoint_rounds", rounds)
			c.obs.Counter("engine.fixpoint.rounds").Add(rounds)
		}
	}()
	for len(deltas) > 0 {
		if err := c.ctxErr(); err != nil {
			return err
		}
		rounds++
		next := map[string]relation.Relation{}
		for _, r := range rules {
			// For each occurrence of a predicate that changed last round,
			// evaluate the rule with that occurrence restricted to the
			// delta (semi-naive evaluation).
			for ai, atom := range r.Atoms {
				d, changed := deltas[atom.Name]
				if !changed {
					continue
				}
				derived, err := c.evalRule(r, map[int]relation.Relation{ai: d})
				if err != nil {
					return err
				}
				c.captureDerived(r.HeadName, derived)
				cur := c.Relation(r.HeadName)
				fresh := derived.Difference(cur)
				if fresh.IsEmpty() {
					continue
				}
				c.Set(r.HeadName, cur.Union(fresh))
				nd := next[r.HeadName]
				if nd.Arity() == 0 {
					nd = relation.New(fresh.Arity())
				}
				next[r.HeadName] = nd.Union(fresh)
			}
		}
		deltas = next
	}
	return nil
}

// evalRule evaluates one rule body and returns the derived head tuples.
// atomOverride, when non-nil, substitutes the relation scanned by specific
// atom indices (used for semi-naive deltas and for IVM delta rules).
func (c *Context) evalRule(r *compiler.RulePlan, atomOverride map[int]relation.Relation) (relation.Relation, error) {
	// The optimizer rewrites the whole plan (join order, atom indices,
	// and every slot-referencing expression together), so the swap must
	// happen before the head/aggregate accumulators are built.
	if c.optimize && atomOverride == nil && r.NumJoinVars > 1 {
		r = c.optimizedPlan(r)
	}
	out := relation.New(r.HeadArity)
	if rs := c.ruleStatsFor(r); rs != nil {
		t0 := time.Now()
		defer func() {
			if atomOverride == nil {
				rs.AddEval(time.Since(t0), int64(out.Len()))
			} else {
				rs.AddDeltaEval(time.Since(t0), int64(out.Len()))
			}
		}()
	}
	resolver := ctxResolver{c}
	var agg *aggAccum
	if r.Agg != nil {
		agg = newAggAccum(r.Agg)
	}
	var pred *predictAccum
	if r.Predict != nil {
		pred = newPredictAccum(r.Predict)
	}

	var evalErr error
	emit := func(binding tuple.Tuple) bool {
		switch {
		case agg != nil:
			key, err := evalExprs(r.HeadExprs, binding, resolver)
			if err != nil {
				evalErr = err
				return false
			}
			agg.add(key, binding)
		case pred != nil:
			key, err := evalExprs(r.HeadExprs, binding, resolver)
			if err != nil {
				evalErr = err
				return false
			}
			if err := pred.add(key, binding); err != nil {
				evalErr = err
				return false
			}
		default:
			head, err := evalExprs(r.HeadExprs, binding, resolver)
			if err != nil {
				evalErr = err
				return false
			}
			out = out.Insert(head)
		}
		return true
	}

	if err := c.enumerate(r, atomOverride, emit); err != nil {
		return out, err
	}
	if evalErr != nil {
		return out, fmt.Errorf("in rule %q: %w", r.Source, evalErr)
	}
	if agg != nil {
		var err error
		out, err = agg.finish(r.HeadArity)
		if err != nil {
			return out, fmt.Errorf("in rule %q: %w", r.Source, err)
		}
	}
	if pred != nil {
		var err error
		out, err = pred.finish(r.HeadArity, c.models)
		if err != nil {
			return out, fmt.Errorf("in rule %q: %w", r.Source, err)
		}
	}
	return out, nil
}

// ruleBinder extends raw join bindings into a rule's full slot tuple:
// assignments computed, filters and negated atoms applied. It owns a
// reusable r.Slots-wide buffer, shared by the callback path (enumerate)
// and the pull path (StreamRule).
type ruleBinder struct {
	c        *Context
	r        *compiler.RulePlan
	resolver ctxResolver
	full     tuple.Tuple
}

func newRuleBinder(c *Context, r *compiler.RulePlan) *ruleBinder {
	return &ruleBinder{c: c, r: r, resolver: ctxResolver{c}, full: make(tuple.Tuple, r.Slots)}
}

// complete runs assignments, filters, and negated atoms over one join
// binding. pass=false means the binding was filtered out (not an error).
// The returned tuple is the binder's buffer, reused across calls.
func (b *ruleBinder) complete(joinBinding tuple.Tuple) (full tuple.Tuple, pass bool, err error) {
	copy(b.full, joinBinding)
	for _, a := range b.r.Assigns {
		v, err := a.E.Eval(b.full, b.resolver)
		if err != nil {
			return nil, false, err
		}
		b.full[a.Slot] = v
	}
	for _, f := range b.r.Filters {
		l, err := f.L.Eval(b.full, b.resolver)
		if err != nil {
			return nil, false, err
		}
		rv, err := f.R.Eval(b.full, b.resolver)
		if err != nil {
			return nil, false, err
		}
		ok, err := compiler.CompareValues(f.Op, l, rv)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			return nil, false, nil
		}
	}
	for _, na := range b.r.NegAtoms {
		exists, err := b.c.checkGroundAtom(na, b.full, b.resolver)
		if err != nil {
			return nil, false, err
		}
		if exists {
			return nil, false, nil
		}
	}
	return b.full, true, nil
}

// buildJoin constructs the LFTJ join over a rule's body atoms and
// constant bindings (secondary indexes materialized as needed). The rule
// must have at least one atom or constant.
func (c *Context) buildJoin(r *compiler.RulePlan, atomOverride map[int]relation.Relation) (*lftj.Join, error) {
	atoms := make([]lftj.Atom, 0, len(r.Atoms)+len(r.Consts))
	for ai, ap := range r.Atoms {
		rel, ok := atomOverride[ai]
		if !ok {
			rel = c.Relation(ap.Name)
		}
		if ap.Perm != nil {
			rel = c.permuted(ap.Name, rel, ap.Perm)
		}
		atoms = append(atoms, lftj.Atom{Pred: ap.Name, Iter: rel.Iterator(), Vars: ap.Vars, Cols: ap.Perm})
	}
	for _, cb := range r.Consts {
		atoms = append(atoms, lftj.Atom{
			Pred: "$const", Iter: trie.NewConstIterator(cb.Val), Vars: []int{cb.Var},
		})
	}
	j, err := lftj.NewJoin(r.NumJoinVars, atoms, c.sens)
	if err != nil {
		return nil, fmt.Errorf("in rule %q: %w", r.Source, err)
	}
	return j, nil
}

// enumerate runs the rule body join and calls emit for every binding that
// survives assignments, filters, and negated atoms. The binding has
// r.Slots values and is reused across calls.
func (c *Context) enumerate(r *compiler.RulePlan, atomOverride map[int]relation.Relation, emit func(tuple.Tuple) bool) error {
	binder := newRuleBinder(c, r)

	finish := func(joinBinding tuple.Tuple) (bool, error) {
		full, pass, err := binder.complete(joinBinding)
		if err != nil {
			return false, err
		}
		if !pass {
			return true, nil // filtered out; continue enumeration
		}
		return emit(full), nil
	}

	if len(r.Atoms) == 0 && len(r.Consts) == 0 {
		// Fact or fully computed rule: a single empty binding.
		_, err := finish(nil)
		return err
	}

	j, err := c.buildJoin(r, atomOverride)
	if err != nil {
		return err
	}
	rs := c.ruleStatsFor(r)
	// Full (non-delta) evaluations of optimized plans feed their real
	// iterator-operation counts back into the plan store, which is what
	// arms its drift detection — so metrics are collected whenever the
	// store needs them, even with observability off.
	observe := c.planStore != nil && c.optimize && atomOverride == nil && r.NumJoinVars > 1
	if rs != nil || observe {
		m := &lftj.Metrics{}
		j.SetMetrics(m)
		defer func() {
			rs.AddJoin(m.Seeks, m.Nexts, m.SensRecords)
			if observe {
				c.planStore.Observe(r, m.Seeks+m.Nexts)
			}
		}()
	}
	var innerErr error
	j.Run(func(b tuple.Tuple) bool {
		cont, err := finish(b)
		if err != nil {
			innerErr = err
			return false
		}
		return cont
	})
	return innerErr
}

// checkGroundAtom evaluates a ground (negated) atom's pattern and probes
// the relation, recording the probe in the sensitivity index.
func (c *Context) checkGroundAtom(na compiler.GroundAtom, binding tuple.Tuple, resolver compiler.Resolver) (bool, error) {
	pattern := make([]tuple.Value, len(na.Args))
	wild := make([]bool, len(na.Args))
	for i, e := range na.Args {
		if e == nil {
			wild[i] = true
			continue
		}
		v, err := e.Eval(binding, resolver)
		if err != nil {
			return false, err
		}
		pattern[i] = v
	}
	if c.sens != nil {
		recordPattern(c.sens, na.Name, pattern, wild)
	}
	return c.Relation(na.Name).MatchExists(pattern, wild), nil
}

// recordPattern adds the sensitivity region of a membership probe: the
// ground prefix is fixed, everything below the first wildcard matters.
func recordPattern(s *lftj.SensitivityIndex, name string, pattern []tuple.Value, wild []bool) {
	ground := 0
	for ground < len(pattern) && !wild[ground] {
		ground++
	}
	if ground == len(pattern) {
		s.AddPoint(name, pattern)
		return
	}
	s.Add(name, tuple.Tuple(pattern[:ground]), tuple.MinValue(), tuple.MaxValue())
}

// permuted returns rel with columns permuted, cached per content version.
func (c *Context) permuted(name string, rel relation.Relation, perm []int) relation.Relation {
	var sb strings.Builder
	sb.WriteString(name)
	for _, p := range perm {
		fmt.Fprintf(&sb, "/%d", p)
	}
	fmt.Fprintf(&sb, "#%x", rel.StructuralHash())
	key := sb.String()
	c.mu.Lock()
	if r, ok := c.perms[key]; ok {
		c.mu.Unlock()
		return r
	}
	c.mu.Unlock()
	r := rel.Permuted(perm)
	c.mu.Lock()
	c.perms[key] = r
	c.mu.Unlock()
	return r
}

func evalExprs(exprs []compiler.Expr, binding tuple.Tuple, r compiler.Resolver) (tuple.Tuple, error) {
	out := make(tuple.Tuple, len(exprs))
	for i, e := range exprs {
		v, err := e.Eval(binding, r)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// checkFunctional verifies functional dependencies of derived functional
// predicates: at most one value per key.
func (c *Context) checkFunctional() error {
	for _, name := range c.Prog.IDBPreds {
		base := compiler.BaseName(name)
		p, ok := c.Prog.Preds[base]
		if !ok || !p.Functional || p.Arity < 2 {
			continue
		}
		rel := c.Relation(name)
		var prev tuple.Tuple
		var violation error
		rel.ForEach(func(t tuple.Tuple) bool {
			if prev != nil && prev[:p.Arity-1].Equal(t[:p.Arity-1]) {
				violation = fmt.Errorf("functional dependency violation in %s: key %s has values %s and %s",
					name, t[:p.Arity-1], prev[p.Arity-1], t[p.Arity-1])
				return false
			}
			prev = t
			return true
		})
		if violation != nil {
			return violation
		}
	}
	return nil
}

// ctxResolver adapts a Context to the compiler.Resolver interface for
// constraint-head expressions.
type ctxResolver struct{ c *Context }

// FuncValue implements compiler.Resolver.
func (r ctxResolver) FuncValue(name string, key tuple.Tuple) (tuple.Value, bool) {
	rel := r.c.Relation(name)
	if rel.Arity() != len(key)+1 {
		return tuple.Value{}, false
	}
	if r.c.sens != nil {
		r.c.sens.Add(name, key, tuple.MinValue(), tuple.MaxValue())
	}
	return rel.FuncGet(key)
}

// Exists implements compiler.Resolver.
func (r ctxResolver) Exists(name string, pattern []tuple.Value, wild []bool) bool {
	if r.c.sens != nil {
		recordPattern(r.c.sens, name, pattern, wild)
	}
	return r.c.Relation(name).MatchExists(pattern, wild)
}

// optimizedPlan returns (and caches per context) the optimized variant
// of a rule plan. With a plan store attached, the cross-transaction
// cached order is reused when fresh and sampling runs only on a miss or
// after drift; without one, every new context re-runs sampling.
func (c *Context) optimizedPlan(r *compiler.RulePlan) *compiler.RulePlan {
	c.mu.Lock()
	if p, ok := c.plans[r.ID]; ok {
		c.mu.Unlock()
		return p
	}
	c.mu.Unlock()
	plan := r
	var order []int
	cached := false
	if c.planStore != nil {
		res, hit, err := c.planStore.Choose(r, c.Relation)
		if err == nil && res.Plan != nil {
			plan, order, cached = res.Plan, res.Order, hit
			if hit {
				c.obs.Counter("optimizer.plan.hits").Inc()
			} else {
				c.obs.Counter("optimizer.plan.misses").Inc()
				c.obs.Counter("optimizer.choose_order.calls").Inc()
			}
		}
	} else {
		res, err := optimizer.ChooseOrder(r, c.Relation, optimizer.Options{})
		if err == nil && res.Plan != nil {
			plan, order = res.Plan, res.Order
			c.obs.Counter("optimizer.choose_order.calls").Inc()
		}
	}
	if order != nil {
		c.ruleStatsFor(r).SetPlan(orderString(order), cached)
	}
	c.mu.Lock()
	c.plans[r.ID] = plan
	c.mu.Unlock()
	return plan
}

// orderString renders a variable order as "0,2,1" for rule profiles.
func orderString(order []int) string {
	var sb strings.Builder
	for i, o := range order {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", o)
	}
	return sb.String()
}
