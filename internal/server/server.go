// Package server exposes a logicblox database over HTTP (stdlib-only):
// the lb-serve network layer. Requests run as concurrent transactions
// against immutable branch-head snapshots and commit through the
// optimistic compare-and-swap path (core.Database.CommitIf): on a
// conflict the transaction is re-executed against the new head (a
// coarse-grained form of the paper's §3.4 transaction repair) up to
// MaxRetries times before surfacing 409. Every request carries a
// context deadline honored inside the engine's fixpoint loops, so a
// runaway recursive rule is stopped rather than pinning a worker.
//
// Endpoints:
//
//	POST /exec       run an exec transaction and commit it
//	POST /query      run a read-only query on the branch snapshot —
//	                 a materialized JSON envelope (default-capped,
//	                 limit/cursor paginated) or, negotiated via
//	                 Accept: application/x-ndjson / ?stream=1 / body
//	                 "stream", a chunked NDJSON stream pulled row by
//	                 row from the join cursor (see stream.go)
//	POST /addblock   install a block of logic and commit
//	POST /check      warning-tier program checks over the branch's
//	                 installed logic merged with an optional candidate
//	GET  /branches   list branches
//	POST /branches   create/branchat/delete/commit/diff branches
//	GET  /versions   committed-version history
//	POST /save       download a binary snapshot of all branches
//	POST /load       replace the served database from a snapshot
//	GET  /metrics    obs registry, Prometheus text exposition
//	GET  /debug/vars obs registry, expvar-style JSON
//	GET  /healthz    liveness (503 while draining)
//
// Every endpoint is also served under the versioned /v1/ prefix with
// identical behavior; the bare paths are permanent aliases.
//
// With Config.Durable set, every committed transaction is journaled
// write-ahead through internal/durable before the client sees its ack,
// and /healthz reports the store's recovery and checkpoint state; see
// docs/durability.md.
//
// See docs/server.md for the wire format and the error-code table.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"logicblox/internal/core"
	"logicblox/internal/durable"
	"logicblox/internal/obs"
	"logicblox/internal/optimizer"
	"logicblox/internal/relation"
	"logicblox/internal/replica"
	"logicblox/internal/tuple"
)

// maxBodyBytes bounds request bodies so a hostile client cannot exhaust
// memory; /load snapshots are exempt (they stream through gob).
const maxBodyBytes = 8 << 20

// Config tunes a Server.
type Config struct {
	// Workers bounds concurrently executing transactions (default:
	// GOMAXPROCS).
	Workers int
	// Queue bounds requests waiting for a worker; beyond it requests
	// are rejected with 503 + Retry-After (default: 64).
	Queue int
	// Timeout is the default per-request context deadline; a request's
	// timeout_ms field can only tighten it (default: 30s).
	Timeout time.Duration
	// MaxRetries bounds optimistic re-executions after commit conflicts
	// before the request surfaces 409 (default: 3).
	MaxRetries int
	// DefaultLimit caps materialized /query responses when the request
	// does not set its own limit (default: 10000 rows; negative
	// disables the cap). Responses cut off by the cap carry a
	// next_cursor. Streamed (NDJSON) responses are never default-capped.
	DefaultLimit int
	// DisableRepair turns off fine-grained transaction repair (paper
	// §3.4): execs run without recording read intervals, and every lost
	// commit race falls back to full re-execution. The default (repair
	// on) records sensitivity intervals per reactive stratum during exec
	// and, on conflict, re-derives only the strata whose reads intersect
	// the winner's writes.
	DisableRepair bool
	// Obs receives all server and engine metrics (default: a fresh
	// registry).
	Obs *obs.Registry
	// Durable, when set, is the durability subsystem the served database
	// commits through: every transaction is journaled write-ahead
	// (Database.CommitIfRecorded) and /load re-anchors the store on the
	// uploaded snapshot. nil serves purely in memory.
	Durable *durable.Store
	// AccessLog receives one structured line per request (and slow-query
	// entries above SlowQuery). nil disables request logging.
	AccessLog *slog.Logger
	// SlowQuery is the latency threshold above which a request's span
	// tree and plan fingerprints are logged (0 disables; requires
	// AccessLog).
	SlowQuery time.Duration
	// TraceRing bounds the retained per-request span trees served by
	// GET /debug/trace/{id} (default: 256).
	TraceRing int
	// Follower, when set, puts the server in read-replica mode: the
	// served database is the follower's (swapped under it on snapshot
	// resync), write endpoints answer 421 with the primary's address,
	// /query answers 503 past the staleness bound, and /healthz carries
	// the replication status. POST /promote clears the restriction. See
	// docs/replication.md.
	Follower *replica.Follower
	// TailWindow caps one /journal/tail long-poll before the server ends
	// the stream cleanly and the follower reconnects (default: 25s).
	TailWindow time.Duration
	// TailHeartbeat is how often an idle tail stream carries a heartbeat
	// frame so followers can measure lag without traffic (default: 1s).
	TailHeartbeat time.Duration
}

// Server serves one Database over HTTP. It is safe for concurrent use;
// the database pointer itself is swappable (POST /load) behind an
// atomic.
type Server struct {
	cfg      Config
	reg      *obs.Registry
	db       atomic.Pointer[core.Database]
	sem      chan struct{}
	queued   atomic.Int64
	inflight atomic.Int64
	draining atomic.Bool
	drainCh  chan struct{} // closed by BeginDrain; ends open tail streams
	drainO   sync.Once
	tails    atomic.Int64 // open /journal/tail streams
	traces   *traceStore
}

// New returns a server over db. Zero Config fields take defaults.
func New(db *core.Database, cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 64
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 3
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.NewRegistry()
	}
	if cfg.TraceRing <= 0 {
		cfg.TraceRing = 256
	}
	if cfg.TailWindow <= 0 {
		cfg.TailWindow = 25 * time.Second
	}
	if cfg.TailHeartbeat <= 0 {
		cfg.TailHeartbeat = time.Second
	}
	s := &Server{
		cfg: cfg, reg: cfg.Obs, sem: make(chan struct{}, cfg.Workers),
		drainCh: make(chan struct{}),
		traces:  newTraceStore(cfg.TraceRing),
	}
	s.db.Store(db)
	return s
}

// Obs returns the server's metrics registry.
func (s *Server) Obs() *obs.Registry { return s.reg }

// Database returns the currently served database. In follower mode the
// follower owns the pointer — a snapshot resync swaps it underneath, so
// reads always see the replicated state.
func (s *Server) Database() *core.Database {
	if f := s.cfg.Follower; f != nil {
		return f.DB()
	}
	return s.db.Load()
}

// BeginDrain puts the server into drain mode: new requests are rejected
// with 503 + Retry-After while in-flight transactions finish (the
// http.Server.Shutdown call in cmd/lb-serve does the actual waiting),
// and open /journal/tail streams are terminated with a clean
// end-of-stream frame so followers reconnect instead of timing out.
func (s *Server) BeginDrain() {
	s.draining.Store(true)
	s.drainO.Do(func() { close(s.drainCh) })
}

// Draining reports drain mode.
func (s *Server) Draining() bool { return s.draining.Load() }

// Inflight returns the number of requests currently inside handlers.
func (s *Server) Inflight() int64 { return s.inflight.Load() }

// Handler returns the routed HTTP handler with all middleware applied.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/exec", s.endpoint("exec", http.MethodPost, true, s.writable(s.handleExec)))
	mux.Handle("/query", s.endpoint("query", http.MethodPost, true, s.freshRead(s.handleQuery)))
	mux.Handle("/addblock", s.endpoint("addblock", http.MethodPost, true, s.writable(s.handleAddBlock)))
	mux.Handle("/check", s.endpoint("check", http.MethodPost, true, s.handleCheck))
	mux.Handle("/branches", s.branchesRouter())
	mux.Handle("/versions", s.endpoint("versions", http.MethodGet, false, s.handleVersions))
	mux.Handle("/save", s.endpoint("save", http.MethodPost, true, s.handleSave))
	mux.Handle("/load", s.endpoint("load", http.MethodPost, true, s.writable(s.handleLoad)))
	mux.HandleFunc("/journal/tail", s.handleJournalTail)
	mux.Handle("/replica/snapshot", s.endpoint("snapshot", http.MethodGet, false, s.handleReplicaSnapshot))
	mux.Handle("/promote", s.endpoint("promote", http.MethodPost, false, s.handlePromote))
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/vars", s.handleVars)
	mux.HandleFunc("/debug/trace", s.handleTrace)
	mux.HandleFunc("/debug/trace/", s.handleTrace)
	mux.HandleFunc("/healthz", s.handleHealthz)
	// /v1 is the versioned surface: every route above is reachable with
	// a /v1 prefix, identical behavior. The unversioned paths remain as
	// aliases for existing clients; a future incompatible surface would
	// ship as /v2 alongside.
	mux.Handle("/v1/", http.StripPrefix("/v1", http.HandlerFunc(mux.ServeHTTP)))
	return mux
}

// branchesRouter splits GET (list) from POST (operations); both share
// the /branches path so the method check lives here.
func (s *Server) branchesRouter() http.Handler {
	get := s.endpoint("branches", http.MethodGet, false, s.handleBranchesGet)
	post := s.endpoint("branches", http.MethodPost, true, s.handleBranchesPost)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet {
			get.ServeHTTP(w, r)
			return
		}
		post.ServeHTTP(w, r)
	})
}

// decode reads a JSON request body, applying the branch default and any
// per-request deadline tightening. It records the branch on the request's
// info for the access log. The returned cancel must be called.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, req *Request) (*http.Request, func(), bool) {
	if err := jsonBody(r, req); err != nil {
		writeErrorCode(w, http.StatusBadRequest, "bad_request", err.Error(), requestIDFrom(r.Context()))
		return r, func() {}, false
	}
	if req.Branch == "" {
		req.Branch = core.DefaultBranch
	}
	if info := requestInfoFrom(r.Context()); info != nil {
		info.branch = req.Branch
	}
	if req.TimeoutMs > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), time.Duration(req.TimeoutMs)*time.Millisecond)
		return r.WithContext(ctx), cancel, true
	}
	return r, func() {}, true
}

// commitTxn commits ws over parent: journaled write-ahead
// (CommitIfRecorded) when the server runs durable, plain CommitIf
// otherwise. rec carries the request needed to replay the transaction.
func (s *Server) commitTxn(branch string, parent, ws *core.Workspace, rec core.CommitRecord) error {
	if s.cfg.Durable != nil {
		return s.Database().CommitIfRecorded(branch, parent, ws, rec)
	}
	return s.Database().CommitIf(branch, parent, ws)
}

// handleExec runs an exec transaction through the optimistic-commit
// loop: execute on the branch-head snapshot (recording read intervals
// unless repair is disabled), CommitIf, and on a lost race first try to
// repair the recorded transaction against the new head — re-deriving
// only the strata whose reads intersect the winner's writes (paper
// §3.4) — falling back to full re-execution when the record does not
// apply.
func (s *Server) handleExec(w http.ResponseWriter, r *http.Request) {
	var req Request
	r, cancel, ok := s.decode(w, r, &req)
	defer cancel()
	if !ok {
		return
	}
	execute := func() (*core.Workspace, *core.ExecResult, *core.ExecRecord, error) {
		head, err := s.Database().Workspace(req.Branch)
		if err != nil {
			return nil, nil, nil, err
		}
		if s.cfg.DisableRepair {
			res, err := head.WithObserver(s.reg).ExecCtx(r.Context(), req.Src)
			return head, res, nil, err
		}
		res, rec, err := head.WithObserver(s.reg).ExecRecordedCtx(r.Context(), req.Src)
		return head, res, rec, err
	}
	retries, repairs := 0, 0
	head, res, rec, err := execute()
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	for {
		version := res.Workspace.Version()
		if res.Workspace == head || len(res.BaseDeltas) == 0 {
			// No-op transaction: nothing to commit.
			writeJSON(w, http.StatusOK, ExecResponse{OK: true, Branch: req.Branch, Version: version, Retries: retries, Repairs: repairs, Trace: s.inlineTrace(r)})
			return
		}
		err = s.commitTxn(req.Branch, head, res.Workspace, core.CommitRecord{Kind: "exec", Src: req.Src})
		if err == nil {
			s.reg.Counter("server.commits").Inc()
			writeJSON(w, http.StatusOK, ExecResponse{
				OK: true, Branch: req.Branch, Version: version,
				Retries: retries, Repairs: repairs, Deltas: deltasJSON(res.BaseDeltas),
				Trace: s.inlineTrace(r),
			})
			return
		}
		if errors.Is(err, core.ErrConflict) && retries < s.cfg.MaxRetries && r.Context().Err() == nil {
			retries++
			s.reg.Counter("server.commit.retries").Inc()
			if rec != nil {
				newHead, werr := s.Database().Workspace(req.Branch)
				if werr == nil && newHead != head {
					if res2, _, rerr := rec.Repair(r.Context(), newHead.WithObserver(s.reg)); rerr == nil {
						repairs++
						s.reg.Counter("server.commit.repairs").Inc()
						head, res = newHead, res2
						continue
					}
				}
			}
			// Coarse fallback: full re-execution against the new head.
			s.reg.Counter("server.commit.full_reexecs").Inc()
			backoffConflict(r.Context(), retries)
			head, res, rec, err = execute()
			if err != nil {
				s.writeError(w, r, err)
				return
			}
			continue
		}
		s.reg.Counter("server.commit.conflicts").Inc()
		s.writeError(w, r, err)
		return
	}
}

// handleQuery runs a read-only query on a branch snapshot; no commit is
// involved (paper §3.1: queries read a version, concurrent writers never
// block them). A fresh query reads the branch head; a pagination cursor
// re-reads the exact version its first page saw. The response is either
// the materialized JSON envelope or, on request (stream field, ?stream=1
// or Accept: application/x-ndjson), chunked NDJSON pipelined straight
// out of the join iterators.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req Request
	r, cancel, ok := s.decode(w, r, &req)
	defer cancel()
	if !ok {
		return
	}
	ws, tok, err := s.resolveQuery(&req)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	if info := requestInfoFrom(r.Context()); info != nil {
		info.branch = tok.Branch
	}
	if wantStream(r, &req) {
		s.streamQuery(w, r, &req, ws, tok)
		return
	}
	s.materializedQuery(w, r, &req, ws, tok)
}

// handleAddBlock installs a block through the same optimistic-commit
// loop as exec.
func (s *Server) handleAddBlock(w http.ResponseWriter, r *http.Request) {
	var req Request
	r, cancel, ok := s.decode(w, r, &req)
	defer cancel()
	if !ok {
		return
	}
	if req.Name == "" {
		writeErrorCode(w, http.StatusBadRequest, "bad_request", "addblock requires a block name", requestIDFrom(r.Context()))
		return
	}
	retries := 0
	for {
		head, err := s.Database().Workspace(req.Branch)
		if err != nil {
			s.writeError(w, r, err)
			return
		}
		next, err := head.WithObserver(s.reg).AddBlockCtx(r.Context(), req.Name, req.Src)
		if err != nil {
			s.writeError(w, r, err)
			return
		}
		err = s.commitTxn(req.Branch, head, next, core.CommitRecord{Kind: "addblock", Name: req.Name, Src: req.Src})
		if err == nil {
			s.reg.Counter("server.commits").Inc()
			writeJSON(w, http.StatusOK, ExecResponse{OK: true, Branch: req.Branch, Version: next.Version(), Retries: retries, Trace: s.inlineTrace(r)})
			return
		}
		if errors.Is(err, core.ErrConflict) && retries < s.cfg.MaxRetries && r.Context().Err() == nil {
			retries++
			s.reg.Counter("server.commit.retries").Inc()
			backoffConflict(r.Context(), retries)
			continue
		}
		s.reg.Counter("server.commit.conflicts").Inc()
		s.writeError(w, r, err)
		return
	}
}

// handleCheck runs the warning-tier LogiQL checker over the branch
// head's installed logic merged with the candidate in Src (which may be
// empty to audit the installed blocks alone). Read-only, no commit:
// warnings are advisory, and the same candidate is still installable
// through /addblock. Only an unparsable candidate fails (400, parse).
func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	var req Request
	r, cancel, ok := s.decode(w, r, &req)
	defer cancel()
	if !ok {
		return
	}
	head, err := s.Database().Workspace(req.Branch)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	warns, err := head.CheckProgram(req.Src)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	out := make([]CheckWarning, len(warns))
	for i, wn := range warns {
		out[i] = CheckWarning{Check: wn.Check, Clause: wn.Clause, Message: wn.Message}
	}
	s.reg.Counter("server.checks").Inc()
	writeJSON(w, http.StatusOK, CheckResponse{OK: true, Branch: req.Branch, Warnings: out})
}

func (s *Server) handleBranchesGet(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, BranchesResponse{OK: true, Branches: s.Database().Branches()})
}

func (s *Server) handleBranchesPost(w http.ResponseWriter, r *http.Request) {
	var req BranchRequest
	if err := jsonBody(r, &req); err != nil {
		writeErrorCode(w, http.StatusBadRequest, "bad_request", err.Error(), requestIDFrom(r.Context()))
		return
	}
	// Branch mutations are writes; only diff is a read a follower can
	// serve locally.
	if req.Op != "diff" && s.rejectReadOnly(w, r) {
		return
	}
	db := s.Database()
	switch req.Op {
	case "create":
		if err := db.Branch(req.From, req.To); err != nil {
			s.writeError(w, r, err)
			return
		}
	case "branchat":
		if err := db.BranchAt(req.Version, req.To); err != nil {
			s.writeError(w, r, err)
			return
		}
	case "delete":
		if err := db.DeleteBranch(req.To); err != nil {
			s.writeError(w, r, err)
			return
		}
	case "commit":
		// Promote branch From's head onto branch To (a pointer-swap
		// commit, e.g. merging an accepted what-if scenario back).
		// Promote is described entirely by the branch names, so it is
		// journaled and replayable under durability.
		if err := db.Promote(req.From, req.To); err != nil {
			s.writeError(w, r, err)
			return
		}
	case "diff":
		diff, err := s.diffBranches(req.From, req.To)
		if err != nil {
			s.writeError(w, r, err)
			return
		}
		writeJSON(w, http.StatusOK, BranchesResponse{OK: true, Diff: diff})
		return
	default:
		writeErrorCode(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("unknown op %q (want create|branchat|delete|commit|diff)", req.Op), requestIDFrom(r.Context()))
		return
	}
	writeJSON(w, http.StatusOK, BranchesResponse{OK: true, Branches: db.Branches()})
}

// diffBranches structurally diffs two branch heads per predicate (base
// and derived), counting tuples only in `from` (Del) and only in `to`
// (Ins) — the persistent-treap diff makes this proportional to the
// difference, not the data (paper §3.1).
func (s *Server) diffBranches(from, to string) (map[string]Delta, error) {
	db := s.Database()
	a, err := db.Workspace(from)
	if err != nil {
		return nil, err
	}
	b, err := db.Workspace(to)
	if err != nil {
		return nil, err
	}
	names := map[string]bool{}
	for _, ws := range []*core.Workspace{a, b} {
		for name := range ws.Relations() {
			names[name] = true
		}
	}
	out := map[string]Delta{}
	for name := range names {
		ra, rb := a.Relation(name), b.Relation(name)
		if ra.Arity() != rb.Arity() {
			n := Delta{Ins: rb.Len(), Del: ra.Len()}
			if n.Ins+n.Del > 0 {
				out[name] = n
			}
			continue
		}
		var d Delta
		ra.Diff(rb,
			func(tuple.Tuple) { d.Del++ },
			func(tuple.Tuple) { d.Ins++ })
		if d.Ins+d.Del > 0 {
			out[name] = d
		}
	}
	return out, nil
}

func (s *Server) handleVersions(w http.ResponseWriter, _ *http.Request) {
	db := s.Database()
	n := db.Versions()
	out := make([]VersionInfo, 0, n)
	for i := 0; i < n; i++ {
		v, err := db.VersionAt(i)
		if err != nil {
			continue // history only grows; a vanished index means a /load raced us
		}
		out = append(out, VersionInfo{
			Index: i, Branch: v.Branch,
			Version: v.Workspace.Version(), Blocks: len(v.Workspace.Blocks()),
		})
	}
	writeJSON(w, http.StatusOK, VersionsResponse{OK: true, Versions: out})
}

// handleSave streams a binary snapshot of every branch head (the
// Database.Save gob format LoadDatabase and POST /load accept).
func (s *Server) handleSave(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", "attachment; filename=logicblox.snapshot")
	if err := s.Database().Save(w); err != nil {
		// Headers are gone; all we can do is count it.
		s.reg.Counter("server.errors.save").Inc()
	}
}

// handleLoad replaces the served database with the snapshot in the
// request body (derived predicates re-materialize during restore). A
// corrupt snapshot is rejected 400 (core.ErrCorruptSnapshot) without
// touching the served database. Under durability the store is
// re-anchored: the old database is detached from the journal, the new
// one's sequence numbers are aligned past everything journaled, and a
// checkpoint makes the uploaded state the newest snapshot generation
// before any new commit is acknowledged.
func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	db, err := core.LoadDatabase(r.Body)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	if st := s.cfg.Durable; st != nil {
		old := s.Database()
		// Detach the old database first: commits racing the swap stay in
		// memory only, and nothing journals between the alignment read
		// and the checkpoint.
		old.SetCommitHook(nil)
		db.AlignSeq(old.Seq() + 1)
		if err := st.Checkpoint(db.SaveSnapshot); err != nil {
			old.SetCommitHook(st.LogCommit) // roll back the handoff
			s.writeError(w, r, fmt.Errorf("%w: checkpointing loaded snapshot: %v", core.ErrDurability, err))
			return
		}
		db.SetCommitHook(st.LogCommit)
	}
	s.db.Store(db)
	s.reg.Counter("server.loads").Inc()
	writeJSON(w, http.StatusOK, BranchesResponse{OK: true, Branches: db.Branches()})
}

// handleMetrics serves the obs registry in Prometheus text exposition
// format. It stays outside the worker pool and ignores drain mode so a
// scraper sees the shutdown happen.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErrorCode(w, http.StatusMethodNotAllowed, "bad_request", "GET required", requestID(r))
		return
	}
	s.refreshGauges()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.Snapshot().WritePrometheus(w)
}

// varsDocument is the /debug/vars body: the obs snapshot, plus — when
// the served database runs the adaptive optimizer — the plan store's
// traffic stats and per-plan snapshots with their drift history
// (baseline and observed ops over time).
type varsDocument struct {
	obs.Snapshot
	PlanStats *optimizer.StoreStats    `json:"plan_stats,omitempty"`
	Plans     []optimizer.PlanSnapshot `json:"plans,omitempty"`
	// TraceSampleN is the obs registry's current 1-in-N trace sampling
	// rate (1 = every root span retained).
	TraceSampleN int `json:"trace_sample_n"`
}

// handleVars serves the same snapshot as /debug/vars-style JSON,
// extended with the adaptive optimizer's plan store when one is
// attached (the store is shared across branches and versions, so the
// default branch's head sees it).
func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErrorCode(w, http.StatusMethodNotAllowed, "bad_request", "GET required", requestID(r))
		return
	}
	s.refreshGauges()
	doc := varsDocument{Snapshot: s.reg.Snapshot(), TraceSampleN: s.reg.TraceSampling()}
	if ws, err := s.Database().Workspace(core.DefaultBranch); err == nil {
		if ps := ws.PlanStore(); ps != nil {
			stats := ps.Stats()
			doc.PlanStats = &stats
			doc.Plans = ps.Snapshot()
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}

func (s *Server) refreshGauges() {
	s.reg.Gauge("server.inflight").Set(s.inflight.Load())
	s.reg.Gauge("server.workers").Set(int64(s.cfg.Workers))
	s.reg.Gauge("server.branches").Set(int64(len(s.Database().Branches())))
	s.reg.Gauge("server.versions").Set(int64(s.Database().Versions()))
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.reg.Gauge("go.heap_inuse").Set(int64(ms.HeapInuse))
	s.reg.Gauge("go.heap_alloc").Set(int64(ms.HeapAlloc))
	if relation.StorageStatsEnabled() {
		st := relation.ReadStorageStats()
		s.reg.Gauge("treap.nodes_allocated").Set(st.NodesAllocated)
		s.reg.Gauge("treap.shared_subtrees").Set(st.SharedSubtrees)
	}
	if st := s.cfg.Durable; st != nil {
		d := st.Stats()
		s.reg.Gauge("durable.pending_commits").Set(int64(d.PendingCommits))
		s.reg.Gauge("durable.generations").Set(int64(d.Generations))
		s.reg.Gauge("durable.last_seq").Set(int64(d.LastSeq))
		s.reg.Gauge("durable.retained_floor").Set(int64(d.RetainedFloor))
	}
	s.reg.Gauge("server.tail_streams").Set(s.tails.Load())
	if f := s.cfg.Follower; f != nil {
		rs := f.Status()
		s.reg.Gauge("replica.lag_seq").Set(int64(rs.LagSeq))
		s.reg.Gauge("replica.lag_ms").Set(int64(rs.LagSeconds * 1000))
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "draining", "inflight": s.inflight.Load(),
		})
		return
	}
	body := map[string]any{
		"status":   "ok",
		"branches": len(s.Database().Branches()),
		"versions": s.Database().Versions(),
	}
	if lat := s.latencySummary(); len(lat) > 0 {
		body["latency"] = lat
	}
	if st := s.cfg.Durable; st != nil {
		body["durable"] = st.Stats()
	}
	status := http.StatusOK
	if f := s.cfg.Follower; f != nil {
		rs := f.Status()
		body["replica"] = rs
		switch {
		case rs.Promoted:
			body["mode"] = "primary" // promoted standby
		default:
			body["mode"] = "follower"
			if rs.Stale {
				// The follower is running but its data is past the
				// staleness bound: flip the health check so load
				// balancers stop routing reads here.
				body["status"] = "stale"
				status = http.StatusServiceUnavailable
			}
		}
	}
	writeJSON(w, status, body)
}

// latencySummary reports p50/p95/p99 (milliseconds) and counts per
// endpoint from the http.<endpoint>.duration histograms, the at-a-glance
// tail-latency view on /healthz.
func (s *Server) latencySummary() map[string]map[string]any {
	snap := s.reg.Snapshot()
	out := map[string]map[string]any{}
	for name, h := range snap.Histograms {
		if h.Count == 0 || !strings.HasPrefix(name, "http.") || !strings.HasSuffix(name, ".duration") {
			continue
		}
		endpoint := strings.TrimSuffix(strings.TrimPrefix(name, "http."), ".duration")
		out[endpoint] = map[string]any{
			"count":  h.Count,
			"p50_ms": float64(h.Quantile(0.50)) / float64(time.Millisecond),
			"p95_ms": float64(h.Quantile(0.95)) / float64(time.Millisecond),
			"p99_ms": float64(h.Quantile(0.99)) / float64(time.Millisecond),
		}
	}
	return out
}

// jsonBody decodes a JSON body, bounding it to keep a hostile client
// from exhausting memory.
func jsonBody(r *http.Request, into any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	if err := dec.Decode(into); err != nil {
		return fmt.Errorf("invalid request body: %w", err)
	}
	return nil
}
