package txrepair

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"logicblox/internal/obs"
	"logicblox/internal/tuple"
)

// Stats reports a concurrent run.
type Stats struct {
	Transactions int
	Repairs      int // ops recomputed during repair (repair executor only)
	Conflicts    int // transactions that needed any repair (repair executor only)
	LockWaits    int // lock acquisitions that blocked (locking executor only)
}

// record publishes a run's statistics to the process-wide observability
// registry (a no-op when none is installed).
func (s Stats) record() {
	reg := obs.Default()
	reg.Counter("txrepair.transactions").Add(int64(s.Transactions))
	reg.Counter("txrepair.repairs").Add(int64(s.Repairs))
	reg.Counter("txrepair.conflicts").Add(int64(s.Conflicts))
	reg.Counter("txrepair.lock_waits").Add(int64(s.LockWaits))
}

// RunSerial executes transactions one after another (the 1-core
// reference).
func RunSerial(base Store, txs []*Tx) (Store, Stats) {
	cur := base
	for _, tx := range txs {
		e := Execute(tx, cur)
		cur = e.Apply(cur)
	}
	return cur, Stats{Transactions: len(txs)}
}

// RunRepair executes all transactions concurrently, each on its own O(1)
// branch of the base store, then commits them as a binary circuit of
// composite transactions (paper Figure 7b): pairs are merged in parallel
// level by level, corrections flowing left to right, so the batch commits
// with logarithmic repair depth and no locks.
func RunRepair(base Store, txs []*Tx, workers int) (Store, Stats) {
	if workers < 1 {
		workers = 1
	}
	// Phase 1: parallel speculative execution on branches of base.
	executed := make([]*Executed, len(txs))
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				executed[i] = Execute(txs[i], base)
			}
		}()
	}
	for i := range txs {
		ch <- i
	}
	close(ch)
	wg.Wait()

	// Phase 2: parallel tree reduction into one composite transaction.
	level := executed
	for len(level) > 1 {
		next := make([]*Executed, (len(level)+1)/2)
		var mg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for i := 0; i+1 < len(level); i += 2 {
			mg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer mg.Done()
				next[i/2] = Merge(level[i], level[i+1])
				<-sem
			}(i)
		}
		if len(level)%2 == 1 {
			next[len(next)-1] = level[len(level)-1]
		}
		mg.Wait()
		level = next
	}
	stats := Stats{Transactions: len(txs)}
	if len(level) == 1 {
		stats.Repairs = level[0].Repairs()
		stats.Conflicts = level[0].Conflicts()
		stats.record()
		return level[0].Apply(base), stats
	}
	stats.record()
	return base, stats
}

// lockingStore is a shared mutable store with row-level locks, the
// baseline concurrency control of the paper's §3.4 illustration. Rows are
// laid out in a slice so that transactions holding locks on distinct rows
// can update them concurrently; the index and lock table are immutable
// after construction. Every key a transaction touches must exist in the
// base store.
type lockingStore struct {
	index map[string]int // immutable after construction
	vals  []tuple.Value  // one slot per row, guarded by the row's lock
	locks []rowLock
}

type rowLock struct {
	mu sync.Mutex
}

func newLockingStore(base Store) *lockingStore {
	ls := &lockingStore{index: map[string]int{}}
	base.Range(func(k string, v tuple.Value) bool {
		ls.index[k] = len(ls.vals)
		ls.vals = append(ls.vals, v)
		return true
	})
	ls.locks = make([]rowLock, len(ls.vals))
	return ls
}

func (ls *lockingStore) row(key string) int {
	i, ok := ls.index[key]
	if !ok {
		panic("txrepair: locking executor requires all keys to pre-exist: " + key)
	}
	return i
}

// RunLocking executes transactions with strict two-phase row-level
// locking over a shared mutable store. Deadlock is avoided by acquiring
// locks in global key order. Lock conflicts serialize transactions that
// share rows — the bottleneck the α-experiment demonstrates.
func RunLocking(base Store, txs []*Tx, workers int) (Store, Stats) {
	ls := newLockingStore(base)
	var wg sync.WaitGroup
	ch := make(chan *Tx)
	var waits int64
	var waitsMu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			localWaits := 0
			for tx := range ch {
				keys := txKeys(tx)
				held := make([]*rowLock, 0, len(keys))
				for _, k := range keys {
					l := &ls.locks[ls.row(k)]
					if !l.mu.TryLock() {
						localWaits++
						l.mu.Lock()
					}
					held = append(held, l)
				}
				for i := range tx.Ops {
					op := &tx.Ops[i]
					vals := make([]tuple.Value, len(op.Reads))
					for j, r := range op.Reads {
						vals[j] = ls.vals[ls.row(r)]
					}
					ls.vals[ls.row(op.Write)] = op.F(vals)
				}
				for i := len(held) - 1; i >= 0; i-- {
					held[i].mu.Unlock()
				}
			}
			waitsMu.Lock()
			waits += int64(localWaits)
			waitsMu.Unlock()
		}()
	}
	for _, tx := range txs {
		ch <- tx
	}
	close(ch)
	wg.Wait()

	out := NewStore()
	for k, i := range ls.index {
		out = out.Set(k, ls.vals[i])
	}
	stats := Stats{Transactions: len(txs), LockWaits: int(waits)}
	stats.record()
	return out, stats
}

// txKeys returns the sorted, deduplicated set of keys a transaction
// touches (reads and writes), the global lock order.
func txKeys(tx *Tx) []string {
	set := map[string]bool{}
	for i := range tx.Ops {
		for _, r := range tx.Ops[i].Reads {
			set[r] = true
		}
		set[tx.Ops[i].Write] = true
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	// Insertion sort (key sets are small).
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// InventoryWorkload generates the paper's §3.4 α-experiment: n items,
// txCount transactions, each decrementing any given item's inventory with
// independent probability α·n^(−1/2), so the expected number of items
// shared by two transactions is α² (a birthday-paradox instance).
func InventoryWorkload(n, txCount int, alpha float64, seed int64) (Store, []*Tx) {
	return InventoryWorkloadWork(n, txCount, alpha, seed, 0)
}

// InventoryWorkloadWork is InventoryWorkload with workPerOp units of
// simulated computation inside each operation (business logic evaluated
// per adjusted item). Under two-phase locking that computation happens
// while holding row locks; under transaction repair it happens in the
// parallel speculative phase and again only for repaired ops.
func InventoryWorkloadWork(n, txCount int, alpha float64, seed int64, workPerOp int) (Store, []*Tx) {
	store := NewStore()
	for i := 0; i < n; i++ {
		store = store.Set(itemKey(i), tuple.Int(1000))
	}
	rng := rand.New(rand.NewSource(seed))
	p := alpha / math.Sqrt(float64(n))
	decrement := func(vals []tuple.Value) tuple.Value {
		spin(workPerOp)
		return tuple.Int(vals[0].AsInt() - 1)
	}
	txs := make([]*Tx, txCount)
	for t := 0; t < txCount; t++ {
		tx := &Tx{ID: t}
		for i := 0; i < n; i++ {
			if rng.Float64() < p {
				k := itemKey(i)
				tx.Ops = append(tx.Ops, Op{Reads: []string{k}, Write: k, F: decrement})
			}
		}
		// Every transaction touches at least one item so the workload
		// has no trivial no-ops.
		if len(tx.Ops) == 0 {
			k := itemKey(rng.Intn(n))
			tx.Ops = append(tx.Ops, Op{Reads: []string{k}, Write: k, F: decrement})
		}
		txs[t] = tx
	}
	return store, txs
}

// spinSink defeats dead-code elimination of the spin loop.
var spinSink uint64

// spin burns roughly `units` small amounts of CPU, simulating the
// business logic a transaction performs per adjusted item.
func spin(units int) {
	h := spinSink
	for i := 0; i < units*64; i++ {
		h ^= h<<13 + uint64(i)
		h ^= h >> 7
		h ^= h << 17
	}
	if h == 1 {
		spinSink = h
	}
}

func itemKey(i int) string { return Key("inventory", fmt.Sprintf("item%06d", i)) }
