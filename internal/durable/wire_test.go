package durable_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"logicblox/internal/core"
	"logicblox/internal/durable"
	"logicblox/internal/durable/faultfs"
)

func tailRec(seq uint64, src string) durable.TailFrame {
	return durable.TailFrame{Type: durable.FrameRecord, Rec: core.CommitRecord{
		Seq: seq, Kind: "exec", Branch: "main", Src: src,
	}}
}

func TestTailFrameRoundTrip(t *testing.T) {
	frames := []durable.TailFrame{
		{Type: durable.FrameHeartbeat, Head: 42, Floor: 7},
		tailRec(8, `+p(1).`),
		tailRec(9, `+p(2).`),
		{Type: durable.FrameHeartbeat, Head: 9, Floor: 7},
		{Type: durable.FrameEOS},
	}
	var buf bytes.Buffer
	for _, f := range frames {
		if err := durable.WriteTailFrame(&buf, f); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	tr := durable.NewTailReader(&buf)
	for i, want := range frames {
		got, err := tr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != want.Type || got.Head != want.Head || got.Floor != want.Floor ||
			got.Rec.Seq != want.Rec.Seq || got.Rec.Src != want.Rec.Src {
			t.Fatalf("frame %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, err := tr.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
}

// The torn-frame regression (the follower-facing twin of the on-disk
// torn-write sweep): a stream cut at every possible byte offset inside
// the final frame must yield exactly the complete frames before the
// tear, then ErrTornFrame — never a bogus record, never a silent gap.
func TestTailReaderTornFinalFrame(t *testing.T) {
	var buf bytes.Buffer
	for seq := uint64(1); seq <= 3; seq++ {
		if err := durable.WriteTailFrame(&buf, tailRec(seq, `+p(1).`)); err != nil {
			t.Fatal(err)
		}
	}
	whole := buf.Bytes()
	// Find the start of the third frame by decoding two and measuring.
	var two bytes.Buffer
	durable.WriteTailFrame(&two, tailRec(1, `+p(1).`))
	durable.WriteTailFrame(&two, tailRec(2, `+p(1).`))
	start := two.Len()

	for cut := start + 1; cut < len(whole); cut++ {
		tr := durable.NewTailReader(bytes.NewReader(whole[:cut]))
		var got []uint64
		var err error
		for {
			var f durable.TailFrame
			f, err = tr.Next()
			if err != nil {
				break
			}
			got = append(got, f.Rec.Seq)
		}
		if !errors.Is(err, durable.ErrTornFrame) {
			t.Fatalf("cut at %d: err %v, want ErrTornFrame", cut, err)
		}
		if len(got) != 2 || got[0] != 1 || got[1] != 2 {
			t.Fatalf("cut at %d: decoded seqs %v, want [1 2]", cut, got)
		}
	}

	// A cut exactly at the frame boundary is a clean io.EOF: resumable,
	// not torn.
	tr := durable.NewTailReader(bytes.NewReader(whole[:start]))
	for i := 0; i < 2; i++ {
		if _, err := tr.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tr.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("boundary cut: %v, want io.EOF", err)
	}
}

// A flipped bit inside a frame body must fail its checksum as a torn
// frame rather than decode.
func TestTailReaderCorruptFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := durable.WriteTailFrame(&buf, tailRec(1, `+p(1).`)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-2] ^= 0x40
	if _, err := durable.NewTailReader(bytes.NewReader(raw)).Next(); !errors.Is(err, durable.ErrTornFrame) {
		t.Fatalf("corrupt frame: %v, want ErrTornFrame", err)
	}
}

// openTailStore builds a recovered store + database over faultfs.
func openTailStore(t *testing.T, fs *faultfs.FS) (*durable.Store, *core.Database) {
	t.Helper()
	store, err := durable.Open("tail-data", durable.Options{FS: fs, Generations: 2, CheckpointEvery: -1, CheckpointInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	db, err := store.Recover(freshDB)
	if err != nil {
		t.Fatal(err)
	}
	db.SetCommitHook(store.LogCommit)
	return store, db
}

func TestTailSinceAndFloor(t *testing.T) {
	fs := faultfs.New()
	store, db := openTailStore(t, fs)
	defer store.Close()

	for v := 0; v < 6; v++ {
		if err := commitValue(db, v); err != nil {
			t.Fatal(err)
		}
	}
	recs, head, floor, err := store.TailSince(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 6 || floor != 0 || head != recs[5].Seq {
		t.Fatalf("TailSince(0): %d recs, head %d, floor %d", len(recs), head, floor)
	}
	mid := recs[2].Seq
	part, _, _, err := store.TailSince(mid)
	if err != nil {
		t.Fatal(err)
	}
	if len(part) != 3 || part[0].Seq != mid+1 {
		t.Fatalf("TailSince(%d): %d recs starting %d", mid, len(part), part[0].Seq)
	}

	// Checkpoint twice: with 2 retained generations, the second raises
	// the floor to the first checkpoint's seq and truncates below it.
	if err := store.Checkpoint(db.SaveSnapshot); err != nil {
		t.Fatal(err)
	}
	ck1 := db.Seq()
	for v := 6; v < 9; v++ {
		if err := commitValue(db, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Checkpoint(db.SaveSnapshot); err != nil {
		t.Fatal(err)
	}
	if got := store.Floor(); got != ck1 {
		t.Fatalf("floor after 2 checkpoints = %d, want %d", got, ck1)
	}
	if _, _, _, err := store.TailSince(ck1 - 1); !errors.Is(err, durable.ErrJournalTruncated) {
		t.Fatalf("TailSince below floor: %v, want ErrJournalTruncated", err)
	}
	if recs, _, _, err := store.TailSince(ck1); err != nil || len(recs) != 3 {
		t.Fatalf("TailSince(floor): %d recs, err %v", len(recs), err)
	}

	// The cursor survives reopen: a fresh Recover reseeds it.
	store.Close()
	store2, _ := openTailStore(t, fs)
	defer store2.Close()
	if recs, _, _, err := store2.TailSince(ck1); err != nil || len(recs) != 3 {
		t.Fatalf("reopened TailSince(floor): %d recs, err %v", len(recs), err)
	}
}

func TestWaitSeq(t *testing.T) {
	fs := faultfs.New()
	store, db := openTailStore(t, fs)
	defer store.Close()
	if err := commitValue(db, 0); err != nil {
		t.Fatal(err)
	}
	seq := db.Seq()

	// Already satisfied: returns immediately.
	if err := store.WaitSeq(context.Background(), seq-1); err != nil {
		t.Fatal(err)
	}

	// Blocks until the next commit lands.
	done := make(chan error, 1)
	go func() { done <- store.WaitSeq(context.Background(), seq) }()
	select {
	case err := <-done:
		t.Fatalf("WaitSeq returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	if err := commitValue(db, 1); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("WaitSeq did not wake on commit")
	}

	// Context cancellation unblocks.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := store.WaitSeq(ctx, db.Seq()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WaitSeq ctx: %v", err)
	}

	// Close unblocks with ErrClosed.
	go func() { done <- store.WaitSeq(context.Background(), db.Seq()) }()
	time.Sleep(10 * time.Millisecond)
	store.Close()
	select {
	case err := <-done:
		if !errors.Is(err, durable.ErrClosed) {
			t.Fatalf("WaitSeq after close: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("WaitSeq did not wake on close")
	}
}
