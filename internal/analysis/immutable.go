package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// immutableTypes lists, per package name, the persistent-structure types
// whose fields must never be assigned after construction, and the
// functions allowed to touch them (constructors that build nodes before
// publication). Everything the engine relies on — O(1) snapshots,
// sharing-based equality pruning, cheap version diffs (paper §3.1) —
// breaks silently if a published node is mutated, so the rule is
// enforced even inside the owning package.
var immutableTypes = map[string]map[string][]string{
	"treap": {
		"node": {"mk"},
		"Tree": nil,
	},
	"pmap": {
		"Map": nil,
		"Set": nil,
	},
	"relation": {
		"Relation": nil,
	},
}

// ImmutableAnalyzer reports assignments to fields of persistent
// treap/pmap/relation values outside their constructor functions — the
// mutation that silently breaks persistent sharing.
var ImmutableAnalyzer = &Analyzer{
	Name: "immutable",
	Doc:  "flag mutation of persistent treap/pmap/relation nodes after construction",
	Run:  runImmutable,
}

func runImmutable(pass *Pass) error {
	protected := immutableTypes[pass.Pkg.Name()]
	if protected == nil {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch stmt := n.(type) {
				case *ast.AssignStmt:
					if stmt.Tok == token.DEFINE {
						return true
					}
					for _, lhs := range stmt.Lhs {
						checkImmutableTarget(pass, protected, fn, lhs)
					}
				case *ast.IncDecStmt:
					checkImmutableTarget(pass, protected, fn, stmt.X)
				}
				return true
			})
		}
	}
	return nil
}

// checkImmutableTarget reports lhs when it is a field of a protected
// persistent type and the enclosing function is not one of the type's
// constructors.
func checkImmutableTarget(pass *Pass, protected map[string][]string, fn *ast.FuncDecl, lhs ast.Expr) {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection, ok := pass.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	named := namedOf(selection.Recv())
	if named == nil || named.Obj().Pkg() != pass.Pkg {
		return
	}
	allowed, isProtected := protected[named.Obj().Name()]
	if !isProtected {
		return
	}
	for _, ctor := range allowed {
		if fn.Name.Name == ctor {
			return
		}
	}
	pass.Reportf(lhs.Pos(),
		"assignment to field %s of persistent type %s.%s outside its constructors: persistent nodes are immutable after construction (mutation breaks structural sharing)",
		sel.Sel.Name, pass.Pkg.Name(), named.Obj().Name())
}
