// Package pescapeuser is the caller side of the snapshotescape fixture:
// writing through a container obtained from an exposing accessor
// corrupts every snapshot sharing the node and is flagged; reads and
// writes through fresh copies are not.
package pescapeuser

import pmap "logicblox/internal/analysis/testdata/src/pescape"

func writeThrough(m *pmap.Map) {
	in := m.Inner()
	in["k"] = 1 // want: write through a container returned by Inner
}

func writeThroughAlias(m *pmap.Map) {
	in := m.Inner()
	alias := in
	alias["k"] = 2 // want: write through a container returned by Inner
}

func writeThroughCall(m *pmap.Map) {
	m.Inner()["k"] = 3 // want: write through a container returned by Inner
}

func deleteThrough(m *pmap.Map) {
	delete(m.Chain(), "k") // want: write through a container returned by Chain
}

func incThrough(m *pmap.Map) {
	in := m.Alias()
	in["k"]++ // want: write through a container returned by Alias
}

func readOnly(m *pmap.Map) int {
	in := m.Inner()
	return in["k"]
}

func writeCopy(m *pmap.Map) {
	cp := m.Copy()
	cp["k"] = 4
}
