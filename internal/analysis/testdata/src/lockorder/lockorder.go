// Package lockorder is a locksafe-analyzer fixture for the repo-wide
// lock-order graph: two functions acquiring two mutexes in opposite
// orders form a cycle, directly or through a value of a named function
// type (the commit-hook shape).
package lockorder

import "sync"

type A struct {
	mu sync.Mutex
	n  int
}

type B struct {
	mu sync.Mutex
	n  int
}

// abOrder acquires A.mu then B.mu. The cycle with baOrder below is
// reported once, at the lexically-first conflicting acquisition.
func abOrder(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want: lock-order cycle
	b.n++
	b.mu.Unlock()
	a.mu.Unlock()
}

// baOrder acquires B.mu then A.mu: the reverse order.
func baOrder(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
	b.mu.Unlock()
}

// Hook is a named function type, like core.CommitHook: calls through it
// resolve against address-taken functions of the same signature.
type Hook func(int)

type C struct {
	mu   sync.Mutex
	hook Hook
}

type D struct {
	mu sync.Mutex
	n  int
}

// run calls the hook while holding C.mu. With lockedTouch wired in as
// the hook, this is a C.mu → D.mu edge — and reverse closes the cycle.
func (c *C) run(x int) {
	c.mu.Lock()
	c.hook(x) // want: lock-order cycle
	c.mu.Unlock()
}

// lockedTouch acquires D.mu; its address is taken in wire below.
func (d *D) lockedTouch(x int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.n += x
}

// reverse acquires D.mu then C.mu.
func (d *D) reverse(c *C) {
	d.mu.Lock()
	c.mu.Lock()
	c.mu.Unlock()
	d.mu.Unlock()
}

func wire(c *C, d *D) {
	c.hook = d.lockedTouch
}
