module logicblox

go 1.22
