package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// WriteJSON writes the snapshot as an indented, expvar-style JSON
// document.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// fmtDur renders a duration compactly for the profile table.
func fmtDur(d time.Duration) string {
	switch {
	case d == 0:
		return "0"
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

// truncate shortens s to at most n runes, marking elision.
func truncate(s string, n int) string {
	s = strings.Join(strings.Fields(s), " ")
	if len(s) <= n {
		return s
	}
	if n <= 1 {
		return "…"
	}
	return s[:n-1] + "…"
}

// FormatRuleTable renders the per-rule profile of a snapshot as the
// aligned text table printed by `lb --stats`: one row per rule, most
// expensive first, with evaluation counts, time, tuples produced, and
// LFTJ seek/next counts.
func FormatRuleTable(s Snapshot) string {
	var b strings.Builder
	if len(s.Rules) == 0 {
		b.WriteString("(no rule evaluations recorded)\n")
		return b.String()
	}
	const srcWidth = 48
	fmt.Fprintf(&b, "%-16s %7s %6s %9s %9s %9s %9s  %s\n",
		"RULE HEAD", "TIME", "EVALS", "TUPLES", "SEEKS", "NEXTS", "SENS", "SOURCE")
	var tot RuleSnapshot
	for _, r := range s.Rules {
		evals := r.Evals + r.DeltaEvals
		fmt.Fprintf(&b, "%-16s %7s %6d %9d %9d %9d %9d  %s\n",
			truncate(r.Head, 16), fmtDur(r.EvalTime), evals, r.Tuples,
			r.Seeks, r.Nexts, r.SensRecords, truncate(r.Source, srcWidth))
		tot.EvalTime += r.EvalTime
		tot.Evals += evals
		tot.Tuples += r.Tuples
		tot.Seeks += r.Seeks
		tot.Nexts += r.Nexts
		tot.SensRecords += r.SensRecords
	}
	fmt.Fprintf(&b, "%-16s %7s %6d %9d %9d %9d %9d\n",
		"TOTAL", fmtDur(tot.EvalTime), tot.Evals, tot.Tuples, tot.Seeks, tot.Nexts, tot.SensRecords)
	return b.String()
}

// FormatCounters renders the non-rule metrics of a snapshot (counters,
// gauges, histogram summaries) as sorted "name value" lines.
func FormatCounters(s Snapshot) string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%-32s %d\n", n, s.Counters[n])
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%-32s %d\n", n, s.Gauges[n])
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		fmt.Fprintf(&b, "%-32s count=%d mean=%s min=%s max=%s p50=%s p95=%s p99=%s\n",
			n, h.Count, fmtDur(h.Mean()), fmtDur(h.Min), fmtDur(h.Max),
			fmtDur(h.Quantile(0.5)), fmtDur(h.Quantile(0.95)), fmtDur(h.Quantile(0.99)))
	}
	return b.String()
}

// FormatSpanTree renders one trace as an indented tree, one line per
// span: duration, name, and attributes.
func FormatSpanTree(s SpanSnapshot) string {
	var b strings.Builder
	writeSpan(&b, s, 0)
	return b.String()
}

func writeSpan(b *strings.Builder, s SpanSnapshot, depth int) {
	width := 28 - 2*depth
	if width < 8 {
		width = 8
	}
	fmt.Fprintf(b, "%s%-*s %7s", strings.Repeat("  ", depth), width, truncate(s.Name, width), fmtDur(s.Duration))
	for _, a := range s.Attrs {
		fmt.Fprintf(b, "  %s=%d", a.Key, a.Val)
	}
	b.WriteByte('\n')
	for _, c := range s.Children {
		writeSpan(b, c, depth+1)
	}
}
