package obs

import (
	"sort"
	"sync"
	"time"
)

// Span is one node of a hierarchical trace: a named, timed region of work
// with integer attributes and child spans. Spans are created with
// Registry.StartSpan (roots) and Span.Child, and closed with End; a root
// span enters the registry's trace ring when it ends. The nil *Span is a
// valid no-op, so call sites never branch on whether tracing is enabled.
type Span struct {
	reg   *Registry
	name  string
	start time.Time
	dur   time.Duration

	mu       sync.Mutex
	attrs    []SpanAttr
	children []*Span
	ended    bool
}

// SpanAttr is one integer attribute of a span.
type SpanAttr struct {
	Key string `json:"key"`
	Val int64  `json:"val"`
}

// StartSpan opens a root span. On a nil registry it returns nil (a no-op
// span).
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	return &Span{reg: r, name: name, start: time.Now()}
}

// Child opens a sub-span of s. On a nil span it returns nil.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// SetAttr records (or overwrites) an integer attribute.
func (s *Span) SetAttr(key string, val int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Val = val
			return
		}
	}
	s.attrs = append(s.attrs, SpanAttr{Key: key, Val: val})
}

// AddAttr accumulates into an integer attribute (creating it at val).
func (s *Span) AddAttr(key string, val int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Val += val
			return
		}
	}
	s.attrs = append(s.attrs, SpanAttr{Key: key, Val: val})
}

// End closes the span. Ending a root span publishes it to its registry's
// trace ring; ending twice is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
	s.mu.Unlock()
	if s.reg != nil {
		s.reg.mu.Lock()
		// 1-in-N sampling: of every sampleN finished roots, the first is
		// retained. N ≤ 1 keeps all (the default).
		keep := s.reg.sampleN <= 1 || s.reg.spanSeq%int64(s.reg.sampleN) == 0
		s.reg.spanSeq++
		if keep {
			s.reg.traces.push(s)
		}
		s.reg.mu.Unlock()
	}
}

// Duration returns the span's duration (elapsed-so-far if not yet ended,
// 0 on nil).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		return time.Since(s.start)
	}
	return s.dur
}

// SpanSnapshot is the structured value of one span subtree.
type SpanSnapshot struct {
	Name     string         `json:"name"`
	Start    time.Time      `json:"start"`
	Duration time.Duration  `json:"duration_ns"`
	Attrs    []SpanAttr     `json:"attrs,omitempty"`
	Children []SpanSnapshot `json:"children,omitempty"`
}

// Snapshot returns the structured value of the span's subtree. An
// unfinished span reports its elapsed-so-far duration; finished children
// are complete, so a request handler can snapshot its own (still open)
// root span and see the full transaction tree below it. On a nil span it
// returns a zero snapshot.
func (s *Span) Snapshot() SpanSnapshot {
	if s == nil {
		return SpanSnapshot{}
	}
	return s.snapshot()
}

func (s *Span) snapshot() SpanSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := SpanSnapshot{Name: s.name, Start: s.start, Duration: s.dur}
	if !s.ended {
		out.Duration = time.Since(s.start)
	}
	if len(s.attrs) > 0 {
		out.Attrs = append([]SpanAttr(nil), s.attrs...)
	}
	for _, c := range s.children {
		out.Children = append(out.Children, c.snapshot())
	}
	return out
}

// traceRingSize bounds the retained finished root spans.
const traceRingSize = 32

// traceRing keeps the last traceRingSize finished root spans in arrival
// order. Guarded by the owning registry's mutex.
type traceRing struct {
	spans [traceRingSize]*Span
	next  int
	n     int
}

func (t *traceRing) push(s *Span) {
	t.spans[t.next] = s
	t.next = (t.next + 1) % traceRingSize
	if t.n < traceRingSize {
		t.n++
	}
}

// snapshots returns the retained traces oldest-first.
func (t *traceRing) snapshots() []SpanSnapshot {
	if t.n == 0 {
		return nil
	}
	out := make([]SpanSnapshot, 0, t.n)
	start := (t.next - t.n + traceRingSize) % traceRingSize
	for i := 0; i < t.n; i++ {
		out = append(out, t.spans[(start+i)%traceRingSize].snapshot())
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// LastTrace returns the most recently finished root span, if any.
func (r *Registry) LastTrace() (SpanSnapshot, bool) {
	if r == nil {
		return SpanSnapshot{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.traces.n == 0 {
		return SpanSnapshot{}, false
	}
	last := (r.traces.next - 1 + traceRingSize) % traceRingSize
	return r.traces.spans[last].snapshot(), true
}
