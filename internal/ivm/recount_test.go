package ivm

import (
	"testing"

	"logicblox/internal/relation"
	"logicblox/internal/tuple"
)

// TestRecountRetractsAllDerivations pins a bug the differential harness
// found once its generator grew negation: recountRule (the counting
// mode's fallback when a negated dependency changes) retracted old
// derivation counts in a loop bounded by rec.n — but adjust decrements
// rec.n itself, so the loop stopped halfway. A head tuple with 2+
// derivations kept stale support after the recount and survived in the
// view although no derivation remained.
func TestRecountRetractsAllDerivations(t *testing.T) {
	src := `d(x) <- p(x, y), !q(x).`
	prog := mustProgram(t, src)
	base := map[string]relation.Relation{
		// d(1) has two derivations (y = 1 and y = 2).
		"p": relation.FromTuples(2, []tuple.Tuple{tuple.Ints(1, 1), tuple.Ints(1, 2)}),
		"q": relation.New(1),
	}
	m, err := NewMaintainer(prog, cloneBase(base), Counting)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Relation("d"); got.Len() != 1 || !got.Contains(tuple.Ints(1)) {
		t.Fatalf("initial d = %v, want {(1)}", got.Slice())
	}
	// Inserting q(1) changes a negated dependency, forcing a recount in
	// which d(1) has zero derivations left: both old counts must retract.
	if _, err := m.Apply(map[string]Delta{"q": {Ins: []tuple.Tuple{tuple.Ints(1)}}}); err != nil {
		t.Fatal(err)
	}
	if got := m.Relation("d"); got.Len() != 0 {
		t.Fatalf("after q(1): d = %v, want empty (stale support survived the recount)", got.Slice())
	}
}
