package mln

import (
	"fmt"
	"testing"

	"logicblox/internal/relation"
	"logicblox/internal/tuple"
)

// paperProbProgram builds the §2.3.3 example: Promotion[p] = Flip[0.01];
// Buys[c,p] = Flip[r] with r = BuyRate[p, promotion?]; observations over
// Buys condition the space.
func paperProbProgram(products, customers []string, rateOn, rateOff float64) *ProbProgram {
	prodRel := relation.New(1)
	for _, p := range products {
		prodRel = prodRel.Insert(tuple.Strings(p))
	}
	buysKeys := relation.New(2)
	for _, c := range customers {
		for _, p := range products {
			buysKeys = buysKeys.Insert(tuple.Strings(c, p))
		}
	}
	return &ProbProgram{
		Priors: []BernoulliPrior{{Pred: "Promotion", Keys: prodRel, P: 0.01}},
		Conditionals: []Conditional{{
			Pred:       "Buys",
			Keys:       buysKeys,
			ParentPred: "Promotion",
			ParentOf:   func(k tuple.Tuple) tuple.Tuple { return k[1:2] },
			Rate: func(_ tuple.Tuple, promoted bool) float64 {
				if promoted {
					return rateOn
				}
				return rateOff
			},
		}},
		Observed: map[string]map[string]bool{"Buys": {}},
	}
}

func TestMAPDetectsPromotionFromSales(t *testing.T) {
	products := []string{"cola", "chips"}
	var customers []string
	for i := 0; i < 12; i++ {
		customers = append(customers, fmt.Sprintf("c%02d", i))
	}
	prog := paperProbProgram(products, customers, 0.8, 0.1)
	// Observation: everyone bought cola, nobody bought chips.
	for _, c := range customers {
		prog.Observed["Buys"][tuple.Strings(c, "cola").String()] = true
		prog.Observed["Buys"][tuple.Strings(c, "chips").String()] = false
	}
	world, err := MAPInfer(prog)
	if err != nil {
		t.Fatal(err)
	}
	promo := world.True["Promotion"]
	if !promo.Contains(tuple.Strings("cola")) {
		t.Fatalf("cola's sales spike should imply a promotion: %v", promo.Slice())
	}
	if promo.Contains(tuple.Strings("chips")) {
		t.Fatalf("chips should not be inferred promoted: %v", promo.Slice())
	}
}

func TestMAPPriorWinsWithoutEvidence(t *testing.T) {
	// With no observations and a 1% prior, the MAP world has no
	// promotions, and child atoms follow the off-rate (10% → all false).
	prog := paperProbProgram([]string{"cola"}, []string{"a", "b"}, 0.8, 0.1)
	world, err := MAPInfer(prog)
	if err != nil {
		t.Fatal(err)
	}
	if world.True["Promotion"].Len() != 0 {
		t.Fatalf("prior should keep promotions off: %v", world.True["Promotion"].Slice())
	}
	if world.True["Buys"].Len() != 0 {
		t.Fatalf("off-rate 0.1 should keep buys false: %v", world.True["Buys"].Slice())
	}
}

func TestMAPHighPriorFlipsDefault(t *testing.T) {
	prodRel := relation.New(1).Insert(tuple.Strings("x"))
	prog := &ProbProgram{
		Priors: []BernoulliPrior{{Pred: "P", Keys: prodRel, P: 0.95}},
	}
	world, err := MAPInfer(prog)
	if err != nil {
		t.Fatal(err)
	}
	if !world.True["P"].Contains(tuple.Strings("x")) {
		t.Fatalf("95%% prior should make the atom true")
	}
}

func TestMAPObservationOverridesPrior(t *testing.T) {
	prodRel := relation.New(1).Insert(tuple.Strings("x"))
	prog := &ProbProgram{
		Priors: []BernoulliPrior{{Pred: "P", Keys: prodRel, P: 0.95}},
		Observed: map[string]map[string]bool{
			"P": {tuple.Strings("x").String(): false},
		},
	}
	world, err := MAPInfer(prog)
	if err != nil {
		t.Fatal(err)
	}
	if world.True["P"].Contains(tuple.Strings("x")) {
		t.Fatalf("observation should pin the atom false")
	}
}

func TestMAPUndeclaredParentRejected(t *testing.T) {
	keys := relation.New(1).Insert(tuple.Strings("k"))
	prog := &ProbProgram{
		Conditionals: []Conditional{{
			Pred:       "Y",
			Keys:       keys,
			ParentPred: "Missing",
			ParentOf:   func(k tuple.Tuple) tuple.Tuple { return k },
			Rate:       func(tuple.Tuple, bool) float64 { return 0.5 },
		}},
	}
	if _, err := MAPInfer(prog); err == nil {
		t.Fatal("undeclared parent accepted")
	}
}

func TestMAPLikelihoodOrdering(t *testing.T) {
	// The MAP world's log-likelihood must be at least that of the
	// all-false world under the same observations.
	products := []string{"cola"}
	customers := []string{"a", "b", "c", "d"}
	prog := paperProbProgram(products, customers, 0.9, 0.05)
	for _, c := range customers {
		prog.Observed["Buys"][tuple.Strings(c, "cola").String()] = true
	}
	world, err := MAPInfer(prog)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-computed all-false-promotion alternative:
	// LL = log(1−π) + 4·log(0.05)  vs  MAP (promotion on):
	// LL = log(π) + 4·log(0.9).
	if !world.True["Promotion"].Contains(tuple.Strings("cola")) {
		t.Fatalf("four observed buys at rate ratio 18x should flip a 1%% prior")
	}
	if world.LogLikelihood >= 0 {
		t.Fatalf("log-likelihood should be negative: %v", world.LogLikelihood)
	}
}
