package engine

import (
	"testing"

	"logicblox/internal/obs"
	"logicblox/internal/optimizer"
	"logicblox/internal/relation"
	"logicblox/internal/tuple"
)

func adaptiveBase() map[string]relation.Relation {
	r := relation.New(2)
	s := relation.New(2)
	for i := int64(0); i < 4000; i++ {
		r = r.Insert(tuple.Ints(i%200, i%300))
		s = s.Insert(tuple.Ints(i%300, i%400))
	}
	tt := relation.New(1)
	tt = tt.Insert(tuple.Ints(17))
	return map[string]relation.Relation{"r": r, "s": s, "t": tt}
}

// TestPlanStoreWarmCacheSkipsChooseOrder pins the tentpole behavior: a
// fresh engine context (a new transaction or recompile) sharing a warmed
// plan store must reuse the cached variable order without re-running
// sample-based ChooseOrder, and the reuse must be visible in the obs
// counters and the rule's profile.
func TestPlanStoreWarmCacheSkipsChooseOrder(t *testing.T) {
	prog := mustCompile(t, `q(a, b, c) <- r(a, b), s(b, c), t(c).`)
	base := adaptiveBase()
	rule := prog.Rules[0]
	store := optimizer.NewPlanStore(optimizer.StoreOptions{})
	reg := obs.NewRegistry()

	want, err := NewContext(prog, base, Options{}).EvalRule(rule, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Cold: the first context pays one sampling run.
	cold := NewContext(prog, base, Options{Optimize: true, Plans: store, Obs: reg})
	got, err := cold.EvalRule(rule, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("cold adaptive eval differs: %d vs %d tuples", got.Len(), want.Len())
	}
	snap := reg.Snapshot()
	if n := snap.Counters["optimizer.choose_order.calls"]; n != 1 {
		t.Fatalf("cold eval ran ChooseOrder %d times, want 1", n)
	}
	if n := snap.Counters["optimizer.plan.misses"]; n != 1 {
		t.Fatalf("cold eval recorded %d misses, want 1", n)
	}

	// Warm: three new contexts over the same data skip sampling entirely.
	for i := 0; i < 3; i++ {
		warm := NewContext(prog, base, Options{Optimize: true, Plans: store, Obs: reg})
		got, err := warm.EvalRule(rule, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("warm adaptive eval differs: %d vs %d tuples", got.Len(), want.Len())
		}
	}
	snap = reg.Snapshot()
	if n := snap.Counters["optimizer.choose_order.calls"]; n != 1 {
		t.Fatalf("warm evals re-ran ChooseOrder: %d calls, want 1", n)
	}
	if n := snap.Counters["optimizer.plan.hits"]; n != 3 {
		t.Fatalf("warm evals recorded %d hits, want 3", n)
	}
	st := store.Stats()
	if st.Misses != 1 || st.Hits != 3 || st.Redecisions != 0 {
		t.Fatalf("store stats = %+v, want 1 miss / 3 hits", st)
	}

	// The rule profile exposes the decision: an order string plus how
	// often it was freshly chosen vs reused.
	var found bool
	for _, rp := range snap.Rules {
		if rp.Head != "q" {
			continue
		}
		found = true
		if rp.PlanOrder == "" {
			t.Fatalf("rule profile has no plan order: %+v", rp)
		}
		if rp.PlanChosen != 1 || rp.PlanCached != 3 {
			t.Fatalf("rule profile plan counts = chosen %d / cached %d, want 1/3", rp.PlanChosen, rp.PlanCached)
		}
	}
	if !found {
		t.Fatal("no rule profile for q")
	}
}

// TestPlanStoreFeedsObservations checks enumerate() closes the loop: real
// evaluations report their iterator-operation counts back to the store.
func TestPlanStoreFeedsObservations(t *testing.T) {
	prog := mustCompile(t, `q(a, b, c) <- r(a, b), s(b, c), t(c).`)
	base := adaptiveBase()
	rule := prog.Rules[0]
	store := optimizer.NewPlanStore(optimizer.StoreOptions{})

	// No obs registry attached: observations must still flow.
	ctx := NewContext(prog, base, Options{Optimize: true, Plans: store})
	if _, err := ctx.EvalRule(rule, nil); err != nil {
		t.Fatal(err)
	}
	snaps := store.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("store holds %d plans, want 1", len(snaps))
	}
	if snaps[0].ObsEvals == 0 || snaps[0].ObsOps == 0 {
		t.Fatalf("no observations fed back: %+v", snaps[0])
	}
	if snaps[0].BaselineOps == 0 {
		t.Fatalf("baseline not established: %+v", snaps[0])
	}
}

// TestPlanStoreIgnoredWhenOptimizeOff: attaching a store without
// Optimize must leave it untouched (heuristic order only).
func TestPlanStoreIgnoredWhenOptimizeOff(t *testing.T) {
	prog := mustCompile(t, `q(a, b, c) <- r(a, b), s(b, c), t(c).`)
	base := adaptiveBase()
	store := optimizer.NewPlanStore(optimizer.StoreOptions{})
	ctx := NewContext(prog, base, Options{Plans: store})
	if _, err := ctx.EvalRule(prog.Rules[0], nil); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 0 {
		t.Fatalf("store populated with Optimize off: %d entries", store.Len())
	}
	if st := store.Stats(); st != (optimizer.StoreStats{}) {
		t.Fatalf("store counters moved with Optimize off: %+v", st)
	}
}
