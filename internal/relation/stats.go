package relation

import "logicblox/internal/treap"

// StorageStats reports the work counters of the underlying persistent
// treap store: nodes allocated by path copying and set-operation prunes
// on shared subtrees. See treap.EnableStats.
type StorageStats = treap.StatsSnapshot

// EnableStorageStats turns storage-layer work counting on or off.
// Counting is process-wide and off by default; when off the hot paths
// pay only an atomic flag load.
func EnableStorageStats(on bool) { treap.EnableStats(on) }

// StorageStatsEnabled reports whether storage work counting is active.
func StorageStatsEnabled() bool { return treap.StatsEnabled() }

// ReadStorageStats returns the current storage work counters.
func ReadStorageStats() StorageStats { return treap.Stats() }

// ResetStorageStats zeroes the storage work counters.
func ResetStorageStats() { treap.ResetStats() }
