// Package engine is a ctxloop-analyzer fixture: its name is in the
// checked set, so unbounded loops here must poll a context.
package engine

type ctx struct{}

func (c *ctx) Err() error { return nil }

type stepper struct {
	deltas []int
}

func badFixpoint(s *stepper) {
	deltas := s.deltas
	for len(deltas) > 0 { // want: never polls a context
		deltas = deltas[1:]
	}
}

func badRetry(try func() bool) {
	for { // want: never polls a context
		if try() {
			return
		}
	}
}

func okFixpoint(c *ctx, s *stepper) error {
	deltas := s.deltas
	for len(deltas) > 0 {
		if err := c.Err(); err != nil {
			return err
		}
		deltas = deltas[1:]
	}
	return nil
}

func okSelect(done chan struct{}, try func() bool) {
	for {
		select {
		case <-done:
			return
		default:
		}
		if try() {
			return
		}
	}
}

func okCounter(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}

func okRange(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

func okWhileCounter(limit int) int {
	i := 0
	for i < limit {
		i++
	}
	return i
}
