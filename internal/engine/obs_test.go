package engine

import (
	"testing"

	"logicblox/internal/obs"
	"logicblox/internal/relation"
	"logicblox/internal/tuple"
)

// TestEvalRecordsRuleProfiles checks that an instrumented evaluation
// produces one profile per rule with nonzero time, tuple counts matching
// the result, and nonzero LFTJ seek/next counters for a real join.
func TestEvalRecordsRuleProfiles(t *testing.T) {
	prog := mustCompile(t, `
		path(x, y) <- edge(x, y).
		path(x, z) <- path(x, y), edge(y, z).`)
	edges := relation.New(2)
	for i := int64(0); i < 10; i++ {
		edges = edges.Insert(tuple.Ints(i, i+1))
	}
	reg := obs.NewRegistry()
	ctx := NewContext(prog, map[string]relation.Relation{"edge": edges}, Options{Obs: reg})
	if err := ctx.EvalAll(); err != nil {
		t.Fatal(err)
	}

	s := reg.Snapshot()
	if len(s.Rules) != 2 {
		t.Fatalf("rules profiled = %d, want 2: %+v", len(s.Rules), s.Rules)
	}
	var totalTuples, totalSeeks, totalNexts int64
	for _, r := range s.Rules {
		if r.Head != "path" {
			t.Fatalf("unexpected rule head %q", r.Head)
		}
		if r.Evals == 0 {
			t.Fatalf("rule %d never evaluated: %+v", r.ID, r)
		}
		if r.EvalTime <= 0 {
			t.Fatalf("rule %d has no eval time: %+v", r.ID, r)
		}
		totalTuples += r.Tuples
		totalSeeks += r.Seeks
		totalNexts += r.Nexts
	}
	// Every tuple of the closure was produced by some rule evaluation
	// (semi-naive may produce more across rounds, never fewer).
	if closure := int64(ctx.Relation("path").Len()); totalTuples < closure {
		t.Fatalf("tuples profiled = %d < closure size %d", totalTuples, closure)
	}
	// The recursive rule runs a two-atom leapfrog join: it must have
	// advanced iterators.
	if totalSeeks == 0 && totalNexts == 0 {
		t.Fatal("no LFTJ seeks or nexts recorded")
	}
	if n := s.Counters["engine.fixpoint.rounds"]; n == 0 {
		t.Fatal("no fixpoint rounds counted for a recursive program")
	}
}

// TestEvalTrace checks the span tree shape: engine.eval → one span per
// stratum → one span per rule evaluation.
func TestEvalTrace(t *testing.T) {
	prog := mustCompile(t, `
		a(x) <- base(x).
		b(x) <- a(x).`)
	reg := obs.NewRegistry()
	ctx := NewContext(prog, map[string]relation.Relation{
		"base": relOf(1, tuple.Ints(1), tuple.Ints(2)),
	}, Options{Obs: reg})
	if err := ctx.EvalAll(); err != nil {
		t.Fatal(err)
	}

	root, ok := reg.LastTrace()
	if !ok {
		t.Fatal("no trace recorded")
	}
	if root.Name != "engine.eval" {
		t.Fatalf("root span = %q", root.Name)
	}
	if len(root.Children) != 2 {
		t.Fatalf("stratum spans = %d, want 2", len(root.Children))
	}
	ruleSpans := 0
	for _, st := range root.Children {
		if st.Name != "stratum" {
			t.Fatalf("child span = %q, want stratum", st.Name)
		}
		for _, rs := range st.Children {
			if rs.Name != "rule:a" && rs.Name != "rule:b" {
				t.Fatalf("rule span = %q", rs.Name)
			}
			ruleSpans++
		}
	}
	if ruleSpans != 2 {
		t.Fatalf("rule spans = %d, want 2", ruleSpans)
	}
}

// TestUninstrumentedEvalUnchanged checks that with no registry attached
// nothing is recorded and evaluation still works.
func TestUninstrumentedEvalUnchanged(t *testing.T) {
	prog := mustCompile(t, `b(x) <- a(x).`)
	ctx := NewContext(prog, map[string]relation.Relation{
		"a": relOf(1, tuple.Ints(1)),
	}, Options{})
	if ctx.Observer() != nil {
		t.Fatal("context picked up an observer with none installed")
	}
	if err := ctx.EvalAll(); err != nil {
		t.Fatal(err)
	}
	if ctx.Relation("b").Len() != 1 {
		t.Fatal("evaluation broken without observer")
	}
}

// TestSetObserverSwitch checks SetObserver redirects profiling to a new
// registry.
func TestSetObserverSwitch(t *testing.T) {
	prog := mustCompile(t, `b(x) <- a(x).`)
	first := obs.NewRegistry()
	ctx := NewContext(prog, map[string]relation.Relation{
		"a": relOf(1, tuple.Ints(1)),
	}, Options{Obs: first})
	if err := ctx.EvalAll(); err != nil {
		t.Fatal(err)
	}
	second := obs.NewRegistry()
	ctx.SetObserver(second)
	if err := ctx.EvalAll(); err != nil {
		t.Fatal(err)
	}
	if len(first.Snapshot().Rules) != 1 || len(second.Snapshot().Rules) != 1 {
		t.Fatalf("rule profiles not split across registries: first=%+v second=%+v",
			first.Snapshot().Rules, second.Snapshot().Rules)
	}
}
