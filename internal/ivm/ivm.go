// Package ivm implements incremental view maintenance (paper T3, §3.2).
//
// Four strategies are provided, benchmarked against each other in the E4
// experiment:
//
//   - Recompute: re-evaluate every derived predicate from scratch (the
//     "HANA approach" the paper argues against).
//   - Counting: classical delta rules with support counting (Gupta,
//     Mumick & Subrahmanian, SIGMOD'93) for non-recursive strata.
//   - DRed: delete-and-rederive with pinned rederivability checks.
//   - Sensitivity: the LogicBlox approach — per-rule sensitivity indices
//     recorded by leapfrog runs decide which rules a change can affect at
//     all; unaffected rules are skipped without touching their joins, so
//     maintenance work tracks the trace edit distance of the evaluation.
package ivm

import (
	"fmt"

	"logicblox/internal/compiler"
	"logicblox/internal/engine"
	"logicblox/internal/lftj"
	"logicblox/internal/relation"
	"logicblox/internal/tuple"
)

// Mode selects a maintenance strategy.
type Mode int

// Maintenance strategies.
const (
	Recompute Mode = iota
	Counting
	DRed
	Sensitivity
)

func (m Mode) String() string {
	switch m {
	case Recompute:
		return "recompute"
	case Counting:
		return "counting"
	case DRed:
		return "dred"
	case Sensitivity:
		return "sensitivity"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Delta is a batch of changes to one predicate.
type Delta struct {
	Ins []tuple.Tuple
	Del []tuple.Tuple
}

// Empty reports whether the delta changes nothing.
func (d Delta) Empty() bool { return len(d.Ins) == 0 && len(d.Del) == 0 }

// Maintainer keeps the derived predicates of a program up to date under
// batches of base-predicate changes.
type Maintainer struct {
	prog *compiler.Program
	mode Mode
	ctx  *engine.Context

	// counting state: per-rule derivation counts and per-predicate
	// support totals.
	ruleCounts map[int]map[string]*crec
	support    map[string]map[string]*crec

	// sensitivity state: one index per rule (per stratum for recursive
	// strata) and per-rule result relations.
	ruleSens    map[int]*lftj.SensitivityIndex
	stratumSens map[int]*lftj.SensitivityIndex
	ruleRel     map[int]relation.Relation

	// Stats accumulate work counters for benchmarking.
	Stats Stats
}

// Stats counts the work a maintenance pass performed.
type Stats struct {
	RulesEvaluated int // full or delta rule evaluations
	RulesSkipped   int // rules skipped by the sensitivity filter
	RederiveChecks int // DRed rederivability probes
}

type crec struct {
	t tuple.Tuple
	n int
}

// NewMaintainer evaluates the program once and returns a maintainer in
// the given mode.
func NewMaintainer(prog *compiler.Program, base map[string]relation.Relation, mode Mode) (*Maintainer, error) {
	m := &Maintainer{
		prog:        prog,
		mode:        mode,
		ruleCounts:  map[int]map[string]*crec{},
		support:     map[string]map[string]*crec{},
		ruleSens:    map[int]*lftj.SensitivityIndex{},
		stratumSens: map[int]*lftj.SensitivityIndex{},
		ruleRel:     map[int]relation.Relation{},
	}
	m.ctx = engine.NewContext(prog, base, engine.Options{})
	switch mode {
	case Counting:
		if err := m.initialCountingEval(); err != nil {
			return nil, err
		}
	case Sensitivity:
		if err := m.initialSensitivityEval(); err != nil {
			return nil, err
		}
	default:
		if err := m.ctx.EvalAll(); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// Relation returns the current content of a predicate.
func (m *Maintainer) Relation(name string) relation.Relation { return m.ctx.Relation(name) }

// Apply maintains the derived predicates under the given base-predicate
// deltas and returns the deltas of every changed predicate (base and
// derived).
func (m *Maintainer) Apply(deltas map[string]Delta) (map[string]Delta, error) {
	m.Stats = Stats{}
	defer m.observeApply(deltas)()
	acc := map[string]Delta{}
	old := map[string]relation.Relation{}
	// Apply base deltas, remembering old versions. Deltas are normalized
	// to their effective changes first: under set semantics, deleting an
	// absent tuple, re-inserting a present one, or repeating a change
	// within the batch alters nothing — but if passed through verbatim it
	// would corrupt the counting mode's derivation counts (a redundant
	// insertion adds support that no later deletion can retract).
	for name, d := range deltas {
		if d.Empty() {
			continue
		}
		cur := m.ctx.Relation(name)
		upd := cur
		var eff Delta
		for _, t := range d.Del {
			if upd.Contains(t) {
				upd = upd.Delete(t)
				eff.Del = append(eff.Del, t)
			}
		}
		for _, t := range d.Ins {
			if !upd.Contains(t) {
				upd = upd.Insert(t)
				eff.Ins = append(eff.Ins, t)
			}
		}
		if eff.Empty() {
			continue
		}
		old[name] = cur
		m.ctx.Set(name, upd)
		acc[name] = eff
	}
	if len(acc) == 0 {
		return acc, nil
	}
	var err error
	switch m.mode {
	case Recompute:
		err = m.applyRecompute(acc)
	case Counting:
		err = m.applyCounting(acc, old)
	case DRed:
		err = m.applyDRed(acc, old)
	case Sensitivity:
		err = m.applySensitivity(acc, old)
	}
	return acc, err
}

// applyRecompute throws away all derived state and re-evaluates.
func (m *Maintainer) applyRecompute(acc map[string]Delta) error {
	oldDerived := map[string]relation.Relation{}
	for _, name := range m.prog.IDBPreds {
		oldDerived[name] = m.ctx.Relation(name)
		m.ctx.Set(name, relation.New(oldDerived[name].Arity()))
	}
	for _, stratum := range m.prog.Strata {
		m.Stats.RulesEvaluated += len(stratum)
	}
	if err := m.ctx.EvalAll(); err != nil {
		return err
	}
	for _, name := range m.prog.IDBPreds {
		recordDiff(acc, name, oldDerived[name], m.ctx.Relation(name))
	}
	return nil
}

// recordDiff appends the difference between two versions of name to acc.
func recordDiff(acc map[string]Delta, name string, before, after relation.Relation) {
	d := acc[name]
	before.Diff(after,
		func(t tuple.Tuple) { d.Del = append(d.Del, t) },
		func(t tuple.Tuple) { d.Ins = append(d.Ins, t) })
	if !d.Empty() {
		acc[name] = d
	}
}

// stratumRecursive reports whether the stratum's rules feed each other.
func stratumRecursive(stratum []*compiler.RulePlan) bool {
	heads := map[string]bool{}
	for _, r := range stratum {
		heads[r.HeadName] = true
	}
	for _, r := range stratum {
		for _, b := range r.BodyNames {
			if heads[b] {
				return true
			}
		}
	}
	return false
}

// ruleTouched reports whether any body predicate (positive or negated) of
// r has a pending delta.
func ruleTouched(r *compiler.RulePlan, acc map[string]Delta) bool {
	for _, b := range r.BodyNames {
		if !acc[b].Empty() {
			return true
		}
	}
	for _, b := range r.NegNames {
		if !acc[b].Empty() {
			return true
		}
	}
	return false
}
