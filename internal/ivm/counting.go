package ivm

import (
	"logicblox/internal/compiler"
	"logicblox/internal/relation"
	"logicblox/internal/tuple"
)

// countable reports whether a rule's derivations can be maintained by
// support counting: plain rules outside recursive strata. Aggregation and
// predict rules are maintained by per-rule recomputation.
func countable(r *compiler.RulePlan) bool {
	return r.Agg == nil && r.Predict == nil
}

// initialCountingEval evaluates the program stratum by stratum, recording
// derivation counts for countable rules.
func (m *Maintainer) initialCountingEval() error {
	for _, stratum := range m.prog.Strata {
		if stratumRecursive(stratum) {
			// Recursive strata are maintained without counts.
			if err := m.ctx.EvalStratum(stratum); err != nil {
				return err
			}
			continue
		}
		touchedHeads := map[string]bool{}
		for _, r := range stratum {
			if !countable(r) {
				derived, err := m.ctx.EvalRule(r, nil)
				if err != nil {
					return err
				}
				m.ctx.Set(r.HeadName, m.ctx.Relation(r.HeadName).Union(derived))
				continue
			}
			counts := map[string]*crec{}
			err := m.ctx.EnumerateRuleHeads(r, nil, func(head tuple.Tuple) bool {
				k := head.String()
				rec, ok := counts[k]
				if !ok {
					rec = &crec{t: head.Clone()}
					counts[k] = rec
				}
				rec.n++
				return true
			})
			if err != nil {
				return err
			}
			m.ruleCounts[r.ID] = counts
			for k, rec := range counts {
				m.bumpSupport(r.HeadName, k, rec.t, rec.n)
			}
			touchedHeads[r.HeadName] = true
		}
		for head := range touchedHeads {
			m.rebuildFromSupport(head)
		}
	}
	return nil
}

func (m *Maintainer) bumpSupport(pred, key string, t tuple.Tuple, delta int) {
	sup, ok := m.support[pred]
	if !ok {
		sup = map[string]*crec{}
		m.support[pred] = sup
	}
	rec, ok := sup[key]
	if !ok {
		rec = &crec{t: t.Clone()}
		sup[key] = rec
	}
	rec.n += delta
}

// rebuildFromSupport sets pred's relation to the tuples with positive
// support (initial build only).
func (m *Maintainer) rebuildFromSupport(pred string) {
	rel := m.ctx.Relation(pred)
	for key, rec := range m.support[pred] {
		if rec.n > 0 {
			rel = rel.Insert(rec.t)
		} else {
			delete(m.support[pred], key)
		}
	}
	m.ctx.Set(pred, rel)
}

// applyCounting maintains each stratum with delta rules and support
// counting.
func (m *Maintainer) applyCounting(acc map[string]Delta, old map[string]relation.Relation) error {
	for _, stratum := range m.prog.Strata {
		if stratumRecursive(stratum) {
			if err := m.maintainRecursiveStratum(stratum, acc, old); err != nil {
				return err
			}
			continue
		}
		// pending presence transitions per head pred of this stratum.
		pending := map[string]map[string]presence{}
		for _, r := range stratum {
			if !ruleTouched(r, acc) {
				m.Stats.RulesSkipped++
				continue
			}
			var err error
			if countable(r) && !negTouched(r, acc) {
				err = m.deltaCountRule(r, acc, old, pending)
			} else if countable(r) {
				err = m.recountRule(r, pending)
			} else {
				err = m.recomputeUncounted(r, acc, old)
			}
			if err != nil {
				return err
			}
		}
		m.flushPending(pending, acc, old)
	}
	return nil
}

// presence tracks whether a head tuple was present before the batch.
type presence struct {
	t      tuple.Tuple
	before bool
}

func negTouched(r *compiler.RulePlan, acc map[string]Delta) bool {
	for _, n := range r.NegNames {
		if !acc[n].Empty() {
			return true
		}
	}
	return false
}

// deltaCountRule applies the classical delta-rule decomposition:
// Δ(A1 ⋈ … ⋈ Ak) = Σ_i (A1ⁿᵉʷ … A_{i-1}ⁿᵉʷ ⋈ ΔA_i ⋈ A_{i+1}ᵒˡᵈ … A_kᵒˡᵈ),
// adjusting derivation counts by +1 for insertions and −1 for deletions.
func (m *Maintainer) deltaCountRule(r *compiler.RulePlan, acc map[string]Delta,
	old map[string]relation.Relation, pending map[string]map[string]presence) error {
	arityOf := func(name string) int { return m.ctx.Relation(name).Arity() }
	oldRel := func(name string) (relation.Relation, bool) {
		if o, ok := old[name]; ok {
			return o, true
		}
		return relation.Relation{}, false
	}
	for i := range r.Atoms {
		d := acc[r.Atoms[i].Name]
		if d.Empty() {
			continue
		}
		overrides := map[int]relation.Relation{}
		for j := i + 1; j < len(r.Atoms); j++ {
			if o, ok := oldRel(r.Atoms[j].Name); ok {
				overrides[j] = o
			}
		}
		run := func(part []tuple.Tuple, sign int) error {
			if len(part) == 0 {
				return nil
			}
			overrides[i] = relation.FromTuples(arityOf(r.Atoms[i].Name), part)
			m.Stats.RulesEvaluated++
			return m.ctx.EnumerateRuleHeads(r, overrides, func(head tuple.Tuple) bool {
				m.adjust(r, head, sign, pending)
				return true
			})
		}
		if err := run(d.Ins, +1); err != nil {
			return err
		}
		if err := run(d.Del, -1); err != nil {
			return err
		}
		delete(overrides, i)
	}
	return nil
}

// adjust applies a count change for one derivation of a head tuple.
func (m *Maintainer) adjust(r *compiler.RulePlan, head tuple.Tuple, sign int, pending map[string]map[string]presence) {
	key := head.String()
	counts := m.ruleCounts[r.ID]
	if counts == nil {
		counts = map[string]*crec{}
		m.ruleCounts[r.ID] = counts
	}
	rec, ok := counts[key]
	if !ok {
		rec = &crec{t: head.Clone()}
		counts[key] = rec
	}
	rec.n += sign

	p := pending[r.HeadName]
	if p == nil {
		p = map[string]presence{}
		pending[r.HeadName] = p
	}
	sup, ok := m.support[r.HeadName]
	if !ok {
		sup = map[string]*crec{}
		m.support[r.HeadName] = sup
	}
	srec, ok := sup[key]
	if !ok {
		srec = &crec{t: head.Clone()}
		sup[key] = srec
	}
	if _, seen := p[key]; !seen {
		p[key] = presence{t: srec.t, before: srec.n > 0}
	}
	srec.n += sign
}

// recountRule fully re-enumerates one countable rule (used when a negated
// dependency changed, where delta rules do not apply) and reconciles its
// counts.
func (m *Maintainer) recountRule(r *compiler.RulePlan, pending map[string]map[string]presence) error {
	m.Stats.RulesEvaluated++
	fresh := map[string]*crec{}
	err := m.ctx.EnumerateRuleHeads(r, nil, func(head tuple.Tuple) bool {
		k := head.String()
		rec, ok := fresh[k]
		if !ok {
			rec = &crec{t: head.Clone()}
			fresh[k] = rec
		}
		rec.n++
		return true
	})
	if err != nil {
		return err
	}
	prev := m.ruleCounts[r.ID]
	// Retract old counts, add new ones, via adjust to keep pending in
	// sync. The retraction bound must be snapshotted: adjust decrements
	// rec.n itself (prev is the live per-rule count map), so looping on
	// rec.n directly would stop halfway and leave stale support behind.
	for _, rec := range prev {
		n := rec.n
		for i := 0; i < n; i++ {
			m.adjust(r, rec.t, -1, pending)
		}
	}
	m.ruleCounts[r.ID] = map[string]*crec{}
	for _, rec := range fresh {
		for i := 0; i < rec.n; i++ {
			m.adjust(r, rec.t, +1, pending)
		}
	}
	return nil
}

// recomputeUncounted re-evaluates an aggregation/predict rule and diffs
// its head predicate wholesale (such rules are assumed to be the only
// writers of their head predicate).
func (m *Maintainer) recomputeUncounted(r *compiler.RulePlan, acc map[string]Delta, old map[string]relation.Relation) error {
	m.Stats.RulesEvaluated++
	derived, err := m.ctx.EvalRule(r, nil)
	if err != nil {
		return err
	}
	cur := m.ctx.Relation(r.HeadName)
	if cur.Equal(derived) {
		return nil
	}
	if _, ok := old[r.HeadName]; !ok {
		old[r.HeadName] = cur
	}
	m.ctx.Set(r.HeadName, derived)
	recordDiff(acc, r.HeadName, cur, derived)
	return nil
}

// flushPending converts support transitions into relation updates and
// head-predicate deltas.
func (m *Maintainer) flushPending(pending map[string]map[string]presence, acc map[string]Delta, old map[string]relation.Relation) {
	for pred, keys := range pending {
		rel := m.ctx.Relation(pred)
		orig := rel
		d := acc[pred]
		sup := m.support[pred]
		for key, p := range keys {
			after := sup[key] != nil && sup[key].n > 0
			switch {
			case !p.before && after:
				rel = rel.Insert(p.t)
				d.Ins = append(d.Ins, p.t)
			case p.before && !after:
				rel = rel.Delete(p.t)
				d.Del = append(d.Del, p.t)
			}
			if sup[key] != nil && sup[key].n <= 0 {
				delete(sup, key)
			}
		}
		if !rel.Equal(orig) {
			if _, ok := old[pred]; !ok {
				old[pred] = orig
			}
			m.ctx.Set(pred, rel)
		}
		if !d.Empty() {
			acc[pred] = d
		}
	}
}

// maintainRecursiveStratum handles a recursive stratum: insert-only deltas
// propagate with semi-naive rounds; any deletion forces a stratum
// recomputation (precise DRed for recursive strata is provided by the
// DRed mode).
func (m *Maintainer) maintainRecursiveStratum(stratum []*compiler.RulePlan, acc map[string]Delta, old map[string]relation.Relation) error {
	touched := false
	hasDel := false
	for _, r := range stratum {
		for _, b := range append(append([]string{}, r.BodyNames...), r.NegNames...) {
			if d := acc[b]; !d.Empty() {
				touched = true
				if len(d.Del) > 0 {
					hasDel = true
				}
			}
		}
	}
	if !touched {
		m.Stats.RulesSkipped += len(stratum)
		return nil
	}
	heads := map[string]bool{}
	for _, r := range stratum {
		heads[r.HeadName] = true
	}
	origin := map[string]relation.Relation{}
	for h := range heads {
		origin[h] = m.ctx.Relation(h)
	}

	if hasDel {
		// Recompute the stratum from scratch.
		for h := range heads {
			m.ctx.Set(h, relation.New(origin[h].Arity()))
		}
		m.Stats.RulesEvaluated += len(stratum)
		if err := m.ctx.EvalStratum(stratum); err != nil {
			return err
		}
	} else {
		// Insert-only: semi-naive propagation seeded with the incoming
		// insertions.
		deltas := map[string]relation.Relation{}
		for _, r := range stratum {
			for _, a := range r.Atoms {
				if d := acc[a.Name]; len(d.Ins) > 0 {
					deltas[a.Name] = relation.FromTuples(m.ctx.Relation(a.Name).Arity(), d.Ins)
				}
			}
		}
		for len(deltas) > 0 {
			next := map[string]relation.Relation{}
			for _, r := range stratum {
				for ai, a := range r.Atoms {
					dRel, ok := deltas[a.Name]
					if !ok {
						continue
					}
					m.Stats.RulesEvaluated++
					derived, err := m.ctx.EvalRule(r, map[int]relation.Relation{ai: dRel})
					if err != nil {
						return err
					}
					cur := m.ctx.Relation(r.HeadName)
					fresh := derived.Difference(cur)
					if fresh.IsEmpty() {
						continue
					}
					m.ctx.Set(r.HeadName, cur.Union(fresh))
					nd, ok := next[r.HeadName]
					if !ok {
						nd = relation.New(fresh.Arity())
					}
					next[r.HeadName] = nd.Union(fresh)
				}
			}
			deltas = next
		}
	}
	for h := range heads {
		cur := m.ctx.Relation(h)
		if !cur.Equal(origin[h]) {
			if _, ok := old[h]; !ok {
				old[h] = origin[h]
			}
			recordDiff(acc, h, origin[h], cur)
		}
	}
	return nil
}
