package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"logicblox/internal/engine"
	"logicblox/internal/obs"
	"logicblox/internal/parser"
	"logicblox/internal/tuple"
)

// referenceQuery evaluates a query the pre-streaming way: every fresh
// stratum fully materialized, answers read off the "_" relation. This is
// the ground truth the cursor paths must match byte-for-byte.
func referenceQuery(t *testing.T, ws *Workspace, src string) []tuple.Tuple {
	t.Helper()
	qprog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	combined, err := compileBlocks(ws.parsedBlocks(), qprog)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	ctx := engine.NewContext(combined, ws.relations(), engine.Options{Models: ws.models})
	for _, stratum := range combined.Strata {
		if err := ctx.EvalStratum(stratum); err != nil {
			t.Fatalf("eval: %v", err)
		}
	}
	return ctx.Relation("_").Slice()
}

func drainCursor(t *testing.T, cur *Cursor) []tuple.Tuple {
	t.Helper()
	defer cur.Close()
	out := make([]tuple.Tuple, 0, 8)
	for tu, ok := cur.Next(); ok; tu, ok = cur.Next() {
		out = append(out, tu)
	}
	if err := cur.Err(); err != nil {
		t.Fatalf("cursor: %v", err)
	}
	return out
}

func sameTuples(a, b []tuple.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// loadedWorkspace builds a workspace with deterministic random contents
// for e(2), f(1), g(2).
func loadedWorkspace(t *testing.T, seed int64, n int) *Workspace {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ws := NewWorkspace()
	var e, g []tuple.Tuple
	for i := 0; i < n; i++ {
		e = append(e, tuple.Ints(rng.Int63n(9), rng.Int63n(9)))
		g = append(g, tuple.Ints(rng.Int63n(9), rng.Int63n(9)))
	}
	var f []tuple.Tuple
	for i := int64(0); i < 9; i += 2 {
		f = append(f, tuple.Ints(i))
	}
	var err error
	for name, ts := range map[string][]tuple.Tuple{"e": e, "f": f, "g": g} {
		ws, err = ws.Load(name, ts)
		if err != nil {
			t.Fatalf("load %s: %v", name, err)
		}
	}
	return ws
}

// TestQueryStreamMatchesReference: over a spread of query shapes — joins,
// projections with duplicate/reordered/constant head columns, filters,
// assignments, negation, aux rules, recursion, aggregation — the cursor's
// output is identical (same order, same tuples) to the fully materialized
// reference, and Query itself keeps its old behavior.
func TestQueryStreamMatchesReference(t *testing.T) {
	queries := []struct {
		src    string
		stream bool // expected fast-path eligibility
	}{
		{`_(x, y) <- e(x, y).`, true},
		{`_(y, x) <- e(x, y).`, true},
		{`_(x, x, y) <- e(x, y).`, true},
		{`_(x, 7, y) <- e(x, y).`, true},
		{`_(x, z) <- e(x, y), g(y, z).`, true},
		{`_(z) <- e(x, y), g(y, z), x < z.`, true},
		{`_(x, y) <- e(x, y), !f(y).`, true},
		{`_(y) <- e(3, y).`, true},
		{`_(x, s) <- e(x, y), s = x + y.`, false},                       // computed head slot
		{`aux(x) <- e(x, y), 4 < y. _(x, z) <- aux(x), g(x, z).`, true}, // aux stratum materialized
		{`_(x, y) <- e(x, y). _(x, y) <- g(x, y).`, false},              // two answer rules
		{`_(x, y) <- e(x, y). _(x, z) <- _(x, y), e(y, z).`, false},     // recursion through the answer
		{`p(x, y) <- e(x, y). p(x, z) <- p(x, y), e(y, z). _(x, z) <- p(x, z).`, true},
		{`_(x, z) <- aux2(x, z). aux2(x, z) <- e(x, z).`, true},
	}
	for seed := int64(0); seed < 3; seed++ {
		ws := loadedWorkspace(t, 100+seed, 80)
		for _, q := range queries {
			want := referenceQuery(t, ws, q.src)
			cur, err := ws.QueryStream(context.Background(), q.src)
			if err != nil {
				t.Fatalf("QueryStream(%q): %v", q.src, err)
			}
			streamed := cur.Streamed()
			got := drainCursor(t, cur)
			if !sameTuples(got, want) {
				t.Errorf("seed %d %q:\nstream = %v\nref    = %v", seed, q.src, got, want)
			}
			if streamed != q.stream {
				t.Errorf("seed %d %q: Streamed() = %v, want %v", seed, q.src, streamed, q.stream)
			}
			qrows, err := ws.Query(q.src)
			if err != nil {
				t.Fatalf("Query(%q): %v", q.src, err)
			}
			if !sameTuples(qrows, want) {
				t.Errorf("seed %d %q: Query = %v, ref = %v", seed, q.src, qrows, want)
			}
		}
	}
}

// TestQueryStreamRandomizedPrograms is the difftest-style sweep: random
// generated query programs over random data, streamed == reference.
func TestQueryStreamRandomizedPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(271))
	heads := []string{
		`_(x, y)`, `_(y, x)`, `_(x)`, `_(y)`, `_(y, y, x)`, `_(x, 3, y)`,
	}
	bodies := []string{
		`e(x, y)`,
		`e(x, y), g(y, z)`,
		`e(x, y), x < y`,
		`e(x, y), !f(x)`,
		`e(x, y), g(y, x)`,
		`e(x, z), e(z, y)`,
	}
	for trial := 0; trial < 30; trial++ {
		ws := loadedWorkspace(t, int64(500+trial), 40+rng.Intn(80))
		src := fmt.Sprintf("%s <- %s.", heads[rng.Intn(len(heads))], bodies[rng.Intn(len(bodies))])
		want := referenceQuery(t, ws, src)
		cur, err := ws.QueryStream(context.Background(), src)
		if err != nil {
			t.Fatalf("trial %d QueryStream(%q): %v", trial, src, err)
		}
		got := drainCursor(t, cur)
		if !sameTuples(got, want) {
			t.Errorf("trial %d %q:\nstream = %v\nref    = %v", trial, src, got, want)
		}
	}
}

// TestQueryStreamAggregateAux: an aggregating auxiliary stratum is
// materialized up front and the plain answer rule over it still streams,
// matching the reference byte for byte.
func TestQueryStreamAggregateAux(t *testing.T) {
	ws := loadedWorkspace(t, 9, 50)
	src := `s[x] = c <- agg<<c = count()>> e(x, y). _(x, c) <- s[x] = c.`
	want := referenceQuery(t, ws, src)
	cur, err := ws.QueryStream(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	got := drainCursor(t, cur)
	if !sameTuples(got, want) {
		t.Errorf("agg stream = %v, ref = %v", got, want)
	}
}

// TestQueryStreamCancellation: cancelling the context mid-stream makes
// Next fail, Err report the cancellation, and Close record an abort.
func TestQueryStreamCancellation(t *testing.T) {
	reg := obs.NewRegistry()
	ws := loadedWorkspace(t, 11, 200).WithObserver(reg)
	cctx, cancel := context.WithCancel(context.Background())
	cur, err := ws.QueryStream(cctx, `_(x, y) <- e(x, y).`)
	if err != nil {
		t.Fatal(err)
	}
	if !cur.Streamed() {
		t.Fatal("expected the fast path")
	}
	if _, ok := cur.Next(); !ok {
		t.Fatal("first pull should succeed")
	}
	cancel()
	if _, ok := cur.Next(); ok {
		t.Fatal("pull after cancel should fail")
	}
	if !errors.Is(cur.Err(), context.Canceled) {
		t.Fatalf("Err = %v", cur.Err())
	}
	cur.Close()
	cur.Close() // idempotent
	if got := reg.Counter("tx.query.stream.abort").Value(); got != 1 {
		t.Errorf("tx.query.stream.abort = %d, want 1", got)
	}
	if got := reg.Counter("tx.query.stream.commit").Value(); got != 0 {
		t.Errorf("tx.query.stream.commit = %d, want 0", got)
	}
}

// TestQueryStreamSpanAndCounters: a drained cursor commits under the
// tx.query.stream kind; QueryCtx keeps the classic tx.query kind.
func TestQueryStreamSpanAndCounters(t *testing.T) {
	reg := obs.NewRegistry()
	ws := loadedWorkspace(t, 13, 30).WithObserver(reg)
	cur, err := ws.QueryStream(context.Background(), `_(x, y) <- e(x, y).`)
	if err != nil {
		t.Fatal(err)
	}
	n := len(drainCursor(t, cur))
	if n == 0 {
		t.Fatal("expected answers")
	}
	if int64(n) != cur.Rows() {
		t.Errorf("Rows() = %d, drained %d", cur.Rows(), n)
	}
	if got := reg.Counter("tx.query.stream.commit").Value(); got != 1 {
		t.Errorf("tx.query.stream.commit = %d, want 1", got)
	}
	if _, err := ws.QueryCtx(context.Background(), `_(x) <- f(x).`); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("tx.query.commit").Value(); got != 1 {
		t.Errorf("tx.query.commit = %d, want 1", got)
	}
}

// TestQueryStreamEarlyCloseCommits: abandoning a healthy cursor early
// (e.g. a page limit) closes cleanly as a commit.
func TestQueryStreamEarlyCloseCommits(t *testing.T) {
	reg := obs.NewRegistry()
	ws := loadedWorkspace(t, 17, 100).WithObserver(reg)
	cur, err := ws.QueryStream(context.Background(), `_(x, y) <- e(x, y).`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cur.Next(); !ok {
		t.Fatal("expected at least one answer")
	}
	cur.Close()
	if got := reg.Counter("tx.query.stream.commit").Value(); got != 1 {
		t.Errorf("commit = %d, want 1", got)
	}
	// The workspace still serves queries afterwards (iterators released).
	if _, err := ws.Query(`_(x, y) <- e(x, y).`); err != nil {
		t.Fatal(err)
	}
}

// TestQueryStreamParseAndTypeErrors keep the classic sentinel wrapping.
func TestQueryStreamParseAndTypeErrors(t *testing.T) {
	ws := NewWorkspace()
	if _, err := ws.QueryStream(context.Background(), `_(x <-`); !errors.Is(err, ErrParse) {
		t.Errorf("parse error = %v, want ErrParse", err)
	}
}
