package core

import (
	"fmt"
	"sort"
	"sync"
)

// Database manages named branches of workspaces and the version history
// (paper §2.2.2 Branch/Delete-branch, §3.1). Because workspaces are
// immutable values over persistent structures, Branch is an O(1) pointer
// copy, commit is a pointer swap, and any historical version can itself
// be branched (time travel); the version graph is an arbitrary DAG.
type Database struct {
	mu       sync.RWMutex
	branches map[string]*Workspace
	history  []VersionEntry
}

// VersionEntry records one committed workspace version.
type VersionEntry struct {
	Branch    string
	Workspace *Workspace
}

// DefaultBranch is the branch created by NewDatabase.
const DefaultBranch = "main"

// NewDatabase returns a database with an empty workspace on "main".
func NewDatabase() *Database {
	ws := NewWorkspace()
	return &Database{
		branches: map[string]*Workspace{DefaultBranch: ws},
		history:  []VersionEntry{{Branch: DefaultBranch, Workspace: ws}},
	}
}

// Workspace returns the current workspace of a branch.
func (db *Database) Workspace(branch string) (*Workspace, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	ws, ok := db.branches[branch]
	if !ok {
		return nil, fmt.Errorf("unknown branch %s", branch)
	}
	return ws, nil
}

// Branch creates branch `to` as a copy of branch `from`. This is O(1):
// no data is copied (paper §3.1).
func (db *Database) Branch(from, to string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	src, ok := db.branches[from]
	if !ok {
		return fmt.Errorf("unknown branch %s", from)
	}
	if _, exists := db.branches[to]; exists {
		return fmt.Errorf("branch %s already exists", to)
	}
	db.branches[to] = src
	return nil
}

// BranchAt creates a branch from a historical version index (time travel).
func (db *Database) BranchAt(version int, to string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if version < 0 || version >= len(db.history) {
		return fmt.Errorf("version %d out of range", version)
	}
	if _, exists := db.branches[to]; exists {
		return fmt.Errorf("branch %s already exists", to)
	}
	db.branches[to] = db.history[version].Workspace
	return nil
}

// DeleteBranch drops a branch. Aborting all its work is just dropping the
// reference.
func (db *Database) DeleteBranch(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if name == DefaultBranch {
		return fmt.Errorf("cannot delete %s", DefaultBranch)
	}
	if _, ok := db.branches[name]; !ok {
		return fmt.Errorf("unknown branch %s", name)
	}
	delete(db.branches, name)
	return nil
}

// Commit makes ws the new head of branch and records it in the history.
// Conceptually just a pointer swap (paper T4).
func (db *Database) Commit(branch string, ws *Workspace) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.branches[branch]; !ok {
		return fmt.Errorf("unknown branch %s", branch)
	}
	db.branches[branch] = ws
	db.history = append(db.history, VersionEntry{Branch: branch, Workspace: ws})
	return nil
}

// Branches lists branch names.
func (db *Database) Branches() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.branches))
	for b := range db.branches {
		out = append(out, b)
	}
	sort.Strings(out)
	return out
}

// Versions returns the number of committed versions.
func (db *Database) Versions() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.history)
}

// VersionAt returns the i-th committed version.
func (db *Database) VersionAt(i int) (VersionEntry, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if i < 0 || i >= len(db.history) {
		return VersionEntry{}, fmt.Errorf("version %d out of range", i)
	}
	return db.history[i], nil
}
