// Package joins implements traditional pairwise join operators — hash join
// and sort-merge join — used as in-repo stand-ins for the conventional
// RDBMS engines the paper compares against in Figure 5. They execute the
// same (E ⋈ E) ⋈ E plan shape a pairwise optimizer would pick for the
// 3-clique query, so benchmarks isolate the algorithmic difference between
// worst-case-optimal and binary-join processing.
package joins

import (
	"logicblox/internal/relation"
	"logicblox/internal/tuple"
)

// hashKey builds a map key from selected columns.
func hashKey(t tuple.Tuple, cols []int) string {
	var b []byte
	for _, c := range cols {
		b = append(b, t[c].String()...)
		b = append(b, 0)
	}
	return string(b)
}

// HashJoin computes the equi-join of l and r on l[lCols[i]] = r[rCols[i]],
// returning concatenated tuples (all columns of l followed by all columns
// of r). The smaller input should be passed as l (the build side).
func HashJoin(l, r relation.Relation, lCols, rCols []int) []tuple.Tuple {
	build := make(map[string][]tuple.Tuple, l.Len())
	l.ForEach(func(t tuple.Tuple) bool {
		k := hashKey(t, lCols)
		build[k] = append(build[k], t)
		return true
	})
	var out []tuple.Tuple
	r.ForEach(func(t tuple.Tuple) bool {
		for _, lt := range build[hashKey(t, rCols)] {
			joined := make(tuple.Tuple, 0, len(lt)+len(t))
			joined = append(joined, lt...)
			joined = append(joined, t...)
			out = append(out, joined)
		}
		return true
	})
	return out
}

// HashJoinTuples is HashJoin over a materialized intermediate result
// (slices of tuples), joining interm[iCols] with r[rCols].
func HashJoinTuples(interm []tuple.Tuple, r relation.Relation, iCols, rCols []int) []tuple.Tuple {
	build := make(map[string][]tuple.Tuple, len(interm))
	for _, t := range interm {
		k := hashKey(t, iCols)
		build[k] = append(build[k], t)
	}
	var out []tuple.Tuple
	r.ForEach(func(t tuple.Tuple) bool {
		for _, lt := range build[hashKey(t, rCols)] {
			joined := make(tuple.Tuple, 0, len(lt)+len(t))
			joined = append(joined, lt...)
			joined = append(joined, t...)
			out = append(out, joined)
		}
		return true
	})
	return out
}

// SemiJoin filters interm, keeping tuples whose projection onto cols is
// present in r.
func SemiJoin(interm []tuple.Tuple, r relation.Relation, cols []int) []tuple.Tuple {
	var out []tuple.Tuple
	probe := make(tuple.Tuple, len(cols))
	for _, t := range interm {
		for i, c := range cols {
			probe[i] = t[c]
		}
		if r.Contains(probe) {
			out = append(out, t)
		}
	}
	return out
}

// MergeJoin computes the equi-join of l and r on their FIRST columns using
// the classical sort-merge algorithm (both relations are already stored in
// sorted order). Output tuples concatenate l and r columns.
func MergeJoin(l, r relation.Relation) []tuple.Tuple {
	ls, rs := l.Slice(), r.Slice()
	var out []tuple.Tuple
	i, j := 0, 0
	for i < len(ls) && j < len(rs) {
		c := tuple.Compare(ls[i][0], rs[j][0])
		switch {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			// Emit the cross product of the two runs sharing this key.
			key := ls[i][0]
			i2 := i
			for i2 < len(ls) && tuple.Equal(ls[i2][0], key) {
				i2++
			}
			j2 := j
			for j2 < len(rs) && tuple.Equal(rs[j2][0], key) {
				j2++
			}
			for a := i; a < i2; a++ {
				for b := j; b < j2; b++ {
					joined := make(tuple.Tuple, 0, len(ls[a])+len(rs[b]))
					joined = append(joined, ls[a]...)
					joined = append(joined, rs[b]...)
					out = append(out, joined)
				}
			}
			i, j = i2, j2
		}
	}
	return out
}

// TriangleListHash lists all triangles of the edge relation E (which must
// hold canonical edges x<y) using the binary-join plan
// (E(a,b) ⋈ E(b,c)) ⋉ E(a,c) — the plan shape of a conventional RDBMS.
// It returns (a,b,c) triples.
func TriangleListHash(e relation.Relation) []tuple.Tuple {
	// Join E(a,b) with E(b,c) on b: E's column 1 with E's column 0.
	paths := HashJoin(e, e, []int{1}, []int{0}) // (a, b, b, c)
	// Filter with E(a,c).
	closed := SemiJoin(paths, e, []int{0, 3})
	out := make([]tuple.Tuple, len(closed))
	for i, t := range closed {
		out[i] = tuple.Of(t[0], t[1], t[3])
	}
	return out
}

// TriangleCountHash counts triangles using the binary hash-join plan.
func TriangleCountHash(e relation.Relation) int {
	// Avoid materializing the projected triples; count the semi-joined paths.
	paths := HashJoin(e, e, []int{1}, []int{0})
	n := 0
	probe := make(tuple.Tuple, 2)
	for _, t := range paths {
		probe[0], probe[1] = t[0], t[3]
		if e.Contains(probe) {
			n++
		}
	}
	return n
}

// TriangleCountMerge counts triangles with a sort-merge based plan:
// E permuted to (b,a), merge-joined with E(b,c) on b, then semi-joined.
func TriangleCountMerge(e relation.Relation) int {
	ba := e.Permuted([]int{1, 0}) // (b, a)
	paths := MergeJoin(ba, e)     // (b, a, b, c)
	n := 0
	probe := make(tuple.Tuple, 2)
	for _, t := range paths {
		probe[0], probe[1] = t[1], t[3]
		if e.Contains(probe) {
			n++
		}
	}
	return n
}
