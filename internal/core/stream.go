package core

import (
	"context"
	"fmt"

	"logicblox/internal/compiler"
	"logicblox/internal/engine"
	"logicblox/internal/obs"
	"logicblox/internal/parser"
	"logicblox/internal/relation"
	"logicblox/internal/tuple"
)

// Cursor is a pull cursor over a query's answer tuples, in the exact
// order (and with the exact set semantics) that Query returns them:
// lexicographically sorted, duplicates removed. For streaming-eligible
// programs the tuples are pipelined one at a time out of the LFTJ join
// iterators without ever materializing the answer relation; otherwise an
// internal materialized cursor serves the same sequence, so the API is
// total. A Cursor holds the branch snapshot (and, on the fast path, open
// trie iterators) until Close — always Close it, on every path.
type Cursor struct {
	rctx     context.Context
	sp       *obs.Span   // transaction span; ended by done
	esp      *obs.Span   // eval span held open while streaming (nil on fallback)
	done     func(error) // records tx.<kind>.commit/.abort; set by the opener
	rc       *engine.RuleCursor
	mat      *relation.Cursor
	prev     tuple.Tuple // last emitted tuple, for adjacent dedup (fast path)
	hint     int         // result-size hint (fallback path: exact)
	rows     int64
	err      error
	streamed bool
	closed   bool
}

// Next returns the next answer tuple; ok=false means exhaustion or error
// (check Err after the loop). Tuples are yielded in ascending
// lexicographic order with no duplicates — byte-identical to the sequence
// Query would return.
func (c *Cursor) Next() (t tuple.Tuple, ok bool) {
	if c.closed || c.err != nil {
		return nil, false
	}
	if c.mat != nil {
		t, ok := c.mat.Next()
		if !ok {
			return nil, false
		}
		c.rows++
		return t, true
	}
	for {
		if err := c.rctx.Err(); err != nil {
			c.err = err
			return nil, false
		}
		t, ok := c.rc.Next()
		if !ok {
			c.err = c.rc.Err()
			return nil, false
		}
		// The streaming plan enumerates head-variable-first, so the
		// projected heads arrive sorted and duplicates are adjacent.
		if c.prev != nil && c.prev.Equal(t) {
			continue
		}
		c.prev = t
		c.rows++
		return t, true
	}
}

// Err returns the first error the cursor hit (nil after clean
// exhaustion). Cancellation of the context passed to QueryStream
// surfaces here.
func (c *Cursor) Err() error { return c.err }

// Rows returns the number of answer tuples yielded so far.
func (c *Cursor) Rows() int64 { return c.rows }

// Streamed reports whether answers are pipelined straight out of the
// join iterators (true) or served from an internally materialized
// relation (false: recursive/aggregating programs, or answers already
// derived in the workspace).
func (c *Cursor) Streamed() bool { return c.streamed }

// Close releases the cursor: join iterators unwound, spans ended, the
// transaction outcome recorded (abort when the cursor erred or its
// context was cancelled — e.g. a client disconnect mid-stream).
// Idempotent; safe on every path.
func (c *Cursor) Close() {
	if c.closed {
		return
	}
	c.closed = true
	if c.rc != nil {
		c.rc.Close()
	}
	err := c.err
	if err == nil && c.rctx != nil {
		err = c.rctx.Err()
	}
	if c.esp != nil {
		c.esp.End()
	}
	if c.sp != nil {
		c.sp.SetAttr("answers", c.rows)
		if c.streamed {
			c.sp.SetAttr("streamed", 1)
		}
	}
	if c.done != nil {
		c.done(err)
	}
}

// QueryStream runs a read-only query transaction as a pull cursor: src
// is a program with a designated answer predicate "_" (plus auxiliary
// rules), exactly as for Query. Auxiliary strata are materialized up
// front; the answer rule itself is pipelined when the program shape
// allows (see Cursor.Streamed). The transaction's span kind is
// tx.query.stream, and its commit/abort is recorded when the cursor is
// Closed — not when this call returns.
func (ws *Workspace) QueryStream(rctx context.Context, src string) (*Cursor, error) {
	sp, done := ws.txSpan(rctx, "query.stream")
	cur, err := ws.openCursor(rctx, src, sp)
	if err != nil {
		done(err)
		return nil, err
	}
	cur.sp, cur.done = sp, done
	return cur, nil
}

// openCursor parses, compiles, and evaluates a query program, returning
// a cursor over the answers. The caller owns the transaction span; the
// cursor ends only its internal eval span.
func (ws *Workspace) openCursor(rctx context.Context, src string, sp *obs.Span) (*Cursor, error) {
	psp := sp.Child("parse")
	qprog, err := parser.Parse(src)
	psp.End()
	if err != nil {
		return nil, fmt.Errorf("query %w: %w", ErrParse, err)
	}
	csp := sp.Child("compile")
	combined, err := compileBlocks(ws.parsedBlocks(), qprog)
	csp.End()
	if err != nil {
		return nil, fmt.Errorf("query %w: %w", ErrTypecheck, err)
	}
	ctx := engine.NewContext(combined, ws.relations(), engine.Options{Models: ws.models, Optimize: ws.optimize, Plans: ws.plans, Obs: ws.Observer(), Ctx: rctx})
	esp := sp.Child("eval")
	ctx.SetSpan(esp)
	answer := ws.streamableAnswer(combined)
	// Evaluate only predicates that are not already materialized in the
	// workspace (i.e. the query's own derivations), leaving a streamable
	// answer rule to the cursor.
	for _, stratum := range combined.Strata {
		var fresh []*compiler.RulePlan
		for _, r := range stratum {
			if r == answer {
				continue
			}
			if _, have := ws.derived.Get(r.HeadName); !have {
				fresh = append(fresh, r)
			}
		}
		if len(fresh) == 0 {
			continue
		}
		if err := ctx.EvalStratum(fresh); err != nil {
			esp.End()
			return nil, err
		}
	}
	if answer != nil {
		if plan, ok := headFirstPlan(answer); ok {
			rc, err := ctx.StreamRule(plan)
			if err == nil {
				return &Cursor{rctx: rctx, esp: esp, rc: rc, streamed: true}, nil
			}
		}
		// Reordering or cursor setup failed: materialize the answer rule
		// after all (correctness over pipelining).
		if err := ctx.EvalStratum([]*compiler.RulePlan{answer}); err != nil {
			esp.End()
			return nil, err
		}
	}
	esp.End()
	rel := ctx.Relation("_")
	return &Cursor{rctx: rctx, mat: rel.Cursor(), hint: rel.Len()}, nil
}

// streamableAnswer returns the single answer rule when the program shape
// admits pipelined evaluation with output identical to the materialized
// path: exactly one rule derives "_", nothing consumes "_", the rule
// neither aggregates nor predicts, "_" is not already materialized in
// the workspace, and every head column is a join variable or a constant
// (so a head-variable-first join order makes the projected heads arrive
// sorted). Returns nil when any condition fails — callers then fall back
// to materialization.
func (ws *Workspace) streamableAnswer(prog *compiler.Program) *compiler.RulePlan {
	if _, have := ws.derived.Get("_"); have {
		return nil
	}
	var rule *compiler.RulePlan
	n := 0
	for _, stratum := range prog.Strata {
		for _, r := range stratum {
			if r.HeadName == "_" {
				rule = r
				n++
			}
			for _, b := range r.BodyNames {
				if b == "_" {
					return nil
				}
			}
			for _, b := range r.NegNames {
				if b == "_" {
					return nil
				}
			}
		}
	}
	if n != 1 || rule.Agg != nil || rule.Predict != nil {
		return nil
	}
	for _, e := range rule.HeadExprs {
		switch e := e.(type) {
		case compiler.VarExpr:
			if e.Idx >= rule.NumJoinVars {
				return nil // computed slot: breaks output monotonicity
			}
		case compiler.ConstExpr:
		default:
			return nil
		}
	}
	return rule
}

// headFirstPlan reorders the answer rule's join variables so the head's
// distinct variables (in first-occurrence order) lead. LFTJ enumerates
// bindings lexicographically in the variable order, and projecting a
// monotone prefix keeps that order, so the streamed heads come out
// sorted with duplicates adjacent — exactly the materialized relation's
// iteration order after adjacent dedup.
func headFirstPlan(r *compiler.RulePlan) (*compiler.RulePlan, bool) {
	order := make([]int, 0, r.NumJoinVars)
	seen := make([]bool, r.NumJoinVars)
	for _, e := range r.HeadExprs {
		if v, ok := e.(compiler.VarExpr); ok && !seen[v.Idx] {
			seen[v.Idx] = true
			order = append(order, v.Idx)
		}
	}
	identity := true
	for i, o := range order {
		if i != o {
			identity = false
		}
	}
	for i := 0; i < r.NumJoinVars; i++ {
		if !seen[i] {
			order = append(order, i)
		}
	}
	if identity {
		return r, true
	}
	plan, err := compiler.ReorderRule(r, order)
	if err != nil {
		return nil, false
	}
	return plan, true
}
