package compiler

import (
	"fmt"
	"sort"
	"strings"

	"logicblox/internal/ast"
	"logicblox/internal/tuple"
)

// Compile lowers one or more parsed blocks into an executable Program.
// Blocks are merged: rules and constraints may reference predicates
// declared in other blocks (paper §2.2.2).
func Compile(blocks ...*ast.Program) (*Program, error) {
	c := &compilation{
		prog: &Program{Preds: map[string]*PredInfo{}},
	}
	var rules []*ast.Rule
	var constraints []*ast.Constraint
	for _, b := range blocks {
		for _, cl := range b.Clauses {
			switch cl := cl.(type) {
			case *ast.Rule:
				rules = append(rules, desugarRule(cl))
			case *ast.Constraint:
				constraints = append(constraints, cl)
			case *ast.Directive:
				if err := c.applyDirective(cl); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := c.buildCatalog(rules, constraints); err != nil {
		return nil, err
	}
	for _, r := range rules {
		if err := c.compileRule(r); err != nil {
			return nil, fmt.Errorf("in rule %q: %w", r.String(), err)
		}
	}
	for _, k := range constraints {
		if err := c.compileConstraint(k); err != nil {
			return nil, fmt.Errorf("in constraint %q: %w", k.String(), err)
		}
	}
	if err := stratify(c.prog); err != nil {
		return nil, err
	}
	return c.prog, nil
}

type compilation struct {
	prog    *Program
	freshID int
}

func (c *compilation) fresh(prefix string) string {
	c.freshID++
	return fmt.Sprintf("$%s%d", prefix, c.freshID)
}

// --- desugaring -----------------------------------------------------------

// desugarRule rewrites functional applications (Pred[args] used as terms,
// the paper's abbreviated syntax) into auxiliary body atoms with fresh
// variables, and expands wildcards in head positions into errors later.
func desugarRule(r *ast.Rule) *ast.Rule {
	n := 0
	fresh := func() string {
		n++
		return fmt.Sprintf("$fa%d", n)
	}
	out := &ast.Rule{Agg: r.Agg, Pred: r.Pred}
	var extra []*ast.Literal
	addAtom := func(a *ast.Atom) { extra = append(extra, &ast.Literal{Atom: a}) }

	var rewriteTerm func(t ast.Term) ast.Term
	rewriteTerm = func(t ast.Term) ast.Term {
		switch t := t.(type) {
		case ast.FuncApp:
			args := make([]ast.Term, len(t.Args))
			for i, a := range t.Args {
				args[i] = rewriteTerm(a)
			}
			v := ast.Var{Name: fresh()}
			addAtom(&ast.Atom{Pred: t.Pred, AtStart: t.AtStart, Args: args, Value: v})
			return v
		case ast.Arith:
			return ast.Arith{Op: t.Op, L: rewriteTerm(t.L), R: rewriteTerm(t.R)}
		default:
			return t
		}
	}
	rewriteAtom := func(a *ast.Atom) *ast.Atom {
		na := &ast.Atom{Pred: a.Pred, Delta: a.Delta, AtStart: a.AtStart}
		for _, arg := range a.Args {
			na.Args = append(na.Args, rewriteTerm(arg))
		}
		if a.Value != nil {
			na.Value = rewriteTerm(a.Value)
		}
		return na
	}
	for _, h := range r.Heads {
		out.Heads = append(out.Heads, rewriteAtom(h))
	}
	for _, l := range r.Body {
		switch {
		case l.Cmp != nil:
			out.Body = append(out.Body, &ast.Literal{Cmp: &ast.Comparison{
				Op: l.Cmp.Op, L: rewriteTerm(l.Cmp.L), R: rewriteTerm(l.Cmp.R),
			}})
		default:
			out.Body = append(out.Body, &ast.Literal{Negated: l.Negated, Atom: rewriteAtom(l.Atom)})
		}
	}
	out.Body = append(out.Body, extra...)
	return out
}

// --- catalog --------------------------------------------------------------

func (c *compilation) pred(name string, arity int, functional bool) (*PredInfo, error) {
	if k, ok := ast.TypeAtoms[name]; ok {
		_ = k
		return nil, nil // type atoms are not catalog predicates
	}
	p, ok := c.prog.Preds[name]
	if !ok {
		p = &PredInfo{Name: name, Arity: arity, Functional: functional,
			EDB: true, ColumnKinds: make([]tuple.Kind, arity)}
		c.prog.Preds[name] = p
		return p, nil
	}
	if p.Arity != arity {
		return nil, fmt.Errorf("predicate %s used with arity %d and %d", name, p.Arity, arity)
	}
	if functional {
		p.Functional = true
	}
	return p, nil
}

func (c *compilation) buildCatalog(rules []*ast.Rule, constraints []*ast.Constraint) error {
	scanAtom := func(a *ast.Atom) error {
		_, err := c.pred(a.Pred, a.Arity(), a.Functional())
		return err
	}
	scanLits := func(lits []*ast.Literal) error {
		for _, l := range lits {
			if l.Atom != nil {
				if err := scanAtom(l.Atom); err != nil {
					return err
				}
			}
		}
		return nil
	}
	for _, r := range rules {
		reactive := astRuleReactive(r)
		for _, h := range r.Heads {
			if err := scanAtom(h); err != nil {
				return err
			}
			// A predicate derived by a plain (non-delta, non-reactive)
			// rule is an IDB predicate; the inference mirrors the paper's
			// lang_edb meta-rule (§3.3). Plain heads of reactive rules
			// (e.g. audit logs fed by +R) stay extensional: the exec
			// pipeline inserts into them.
			if h.Delta == ast.DeltaNone && !h.AtStart && !reactive {
				if p := c.prog.Preds[h.Pred]; p != nil {
					p.EDB = false
				}
			}
		}
		if err := scanLits(r.Body); err != nil {
			return err
		}
	}
	for _, k := range constraints {
		if err := scanLits(k.Body); err != nil {
			return err
		}
		if err := scanLits(k.Head); err != nil {
			return err
		}
		c.harvestTypes(k)
	}
	return nil
}

// harvestTypes extracts column type constraints from type-declaration
// constraints of the shape R[p]=v -> Entity(p), float(v).
func (c *compilation) harvestTypes(k *ast.Constraint) {
	if len(k.Body) != 1 || k.Body[0].Atom == nil || k.Body[0].Negated {
		return
	}
	body := k.Body[0].Atom
	p := c.prog.Preds[body.Pred]
	if p == nil {
		return
	}
	// Map variable name -> column of the body atom.
	varCol := map[string]int{}
	for i, t := range body.AllTerms() {
		if v, ok := t.(ast.Var); ok {
			varCol[v.Name] = i
		}
	}
	for _, l := range k.Head {
		if l.Atom == nil || l.Negated || len(l.Atom.Args) != 1 {
			continue
		}
		kind, isType := ast.TypeAtoms[l.Atom.Pred]
		if !isType {
			continue
		}
		if v, ok := l.Atom.Args[0].(ast.Var); ok {
			if col, ok := varCol[v.Name]; ok {
				p.ColumnKinds[col] = kind
			}
		}
	}
}

func (c *compilation) applyDirective(d *ast.Directive) error {
	path := strings.Join(d.Path, ":")
	if c.prog.Solve == nil {
		c.prog.Solve = &SolveSpec{}
	}
	switch path {
	case "lang:solve:variable":
		c.prog.Solve.Variables = append(c.prog.Solve.Variables, d.Args...)
	case "lang:solve:max":
		if len(d.Args) != 1 {
			return fmt.Errorf("lang:solve:max takes one predicate")
		}
		c.prog.Solve.Maximize = d.Args[0]
	case "lang:solve:min":
		if len(d.Args) != 1 {
			return fmt.Errorf("lang:solve:min takes one predicate")
		}
		c.prog.Solve.Minimize = d.Args[0]
	case "lang:solve:integer":
		c.prog.Solve.Integral = append(c.prog.Solve.Integral, d.Args...)
	default:
		return fmt.Errorf("unknown directive %s", path)
	}
	return nil
}

// --- rule body compilation -------------------------------------------------

// bodyEnv accumulates the variable slots and plan fragments of one rule
// body.
type bodyEnv struct {
	c          *compilation
	varSlot    map[string]int
	varNames   []string
	isJoinVar  []bool
	atoms      []AtomPlan
	rawAtoms   []*ast.Atom // parallel to atoms, pre-permutation term info
	atomVars   [][]int     // join var per original column
	consts     []ConstBind
	negAtoms   []GroundAtom
	filters    []FilterPlan
	assigns    []AssignPlan
	assigned   map[int]bool
	rawNeg     []*ast.Atom // parallel to negAtoms
	bodyNames  []string
	negNames   []string
	pendingCmp []*ast.Comparison
	numJoin    int
}

func (c *compilation) newBodyEnv() *bodyEnv {
	return &bodyEnv{c: c, varSlot: map[string]int{}, assigned: map[int]bool{}}
}

func (e *bodyEnv) slotFor(name string, join bool) int {
	if s, ok := e.varSlot[name]; ok {
		if join && !e.isJoinVar[s] {
			e.isJoinVar[s] = true
		}
		return s
	}
	s := len(e.varNames)
	e.varSlot[name] = s
	e.varNames = append(e.varNames, name)
	e.isJoinVar = append(e.isJoinVar, join)
	return s
}

// addLiterals ingests body literals: positive atoms become join atoms,
// negated atoms become ground checks, comparisons are classified later.
func (e *bodyEnv) addLiterals(lits []*ast.Literal) error {
	for _, l := range lits {
		switch {
		case l.Cmp != nil:
			e.pendingCmp = append(e.pendingCmp, l.Cmp)
		case l.Negated:
			e.negAtoms = append(e.negAtoms, GroundAtom{
				Name: DecoratedName(l.Atom.Pred, l.Atom.Delta, l.Atom.AtStart),
			})
			e.negNames = append(e.negNames, DecoratedName(l.Atom.Pred, l.Atom.Delta, l.Atom.AtStart))
			// Argument exprs are resolved in finish(), when all join and
			// assigned variables are known; remember the raw atom.
			e.rawNeg = append(e.rawNeg, l.Atom)
		default:
			if err := e.addPositiveAtom(l.Atom); err != nil {
				return err
			}
		}
	}
	return nil
}

func (e *bodyEnv) addPositiveAtom(a *ast.Atom) error {
	name := DecoratedName(a.Pred, a.Delta, a.AtStart)
	e.bodyNames = append(e.bodyNames, name)
	terms := a.AllTerms()
	vars := make([]int, len(terms))
	seen := map[string]bool{}
	for i, t := range terms {
		switch t := t.(type) {
		case ast.Var:
			if seen[t.Name] {
				// Repeated variable within one atom: rewrite the second
				// occurrence to a fresh variable plus an equality filter
				// (paper §3.2's R(x,x) rewrite).
				f := e.c.fresh("eq")
				s := e.slotFor(f, true)
				vars[i] = s
				e.pendingCmp = append(e.pendingCmp, &ast.Comparison{
					Op: ast.OpEq, L: ast.Var{Name: t.Name}, R: ast.Var{Name: f},
				})
				continue
			}
			seen[t.Name] = true
			vars[i] = e.slotFor(t.Name, true)
		case ast.Const:
			// Constants become fresh variables constrained by a virtual
			// constant predicate (paper §3.2's Const2 rewrite).
			f := e.c.fresh("k")
			s := e.slotFor(f, true)
			vars[i] = s
			e.consts = append(e.consts, ConstBind{Var: s, Val: t.Val})
		case ast.Wildcard:
			f := e.c.fresh("w")
			vars[i] = e.slotFor(f, true)
		default:
			return fmt.Errorf("argument %s of %s is not a variable or constant", t, a.Pred)
		}
	}
	e.rawAtoms = append(e.rawAtoms, a)
	e.atomVars = append(e.atomVars, vars)
	e.atoms = append(e.atoms, AtomPlan{Name: name})
	return nil
}

// finish resolves the variable order, assignments, filters, and negated
// atoms; it returns the slot layout.
func (e *bodyEnv) finish() error {
	// 1. Order join variables: most-constrained first (appearing in the
	//    most atoms), ties by first occurrence. This is the static
	//    heuristic; the sampling optimizer can override per-rule orders.
	joinSlots := []int{}
	for s, isJ := range e.isJoinVar {
		if isJ {
			joinSlots = append(joinSlots, s)
		}
	}
	occ := make(map[int]int)
	for _, vars := range e.atomVars {
		for _, v := range vars {
			occ[v]++
		}
	}
	for _, cb := range e.consts {
		occ[cb.Var]++
	}
	sort.SliceStable(joinSlots, func(i, j int) bool {
		return occ[joinSlots[i]] > occ[joinSlots[j]]
	})
	// order[s] = position of old slot s in the new layout.
	order := make([]int, len(e.varNames))
	for i := range order {
		order[i] = -1
	}
	for pos, s := range joinSlots {
		order[s] = pos
	}
	next := len(joinSlots)
	for s, isJ := range e.isJoinVar {
		if !isJ {
			order[s] = next
			next++
		}
	}
	e.remap(order, len(joinSlots))
	return nil
}

// remap renumbers all recorded slots through order and finalizes atom
// permutations.
func (e *bodyEnv) remap(order []int, numJoin int) {
	names := make([]string, len(e.varNames))
	for s, n := range e.varNames {
		names[order[s]] = n
	}
	e.varNames = names
	for n, s := range e.varSlot {
		e.varSlot[n] = order[s]
	}
	for i := range e.consts {
		e.consts[i].Var = order[e.consts[i].Var]
	}
	for ai := range e.atoms {
		vars := e.atomVars[ai]
		mapped := make([]int, len(vars))
		for i, v := range vars {
			mapped[i] = order[v]
		}
		// Sort columns by join variable position to get the permutation.
		perm := make([]int, len(mapped))
		for i := range perm {
			perm[i] = i
		}
		sort.SliceStable(perm, func(a, b int) bool { return mapped[perm[a]] < mapped[perm[b]] })
		identity := true
		sortedVars := make([]int, len(perm))
		for i, p := range perm {
			sortedVars[i] = mapped[p]
			if p != i {
				identity = false
			}
		}
		e.atoms[ai].Vars = sortedVars
		if !identity {
			e.atoms[ai].Perm = perm
		}
	}
	e.numJoin = numJoin
}

// astRuleReactive reports whether a (desugared) rule mentions delta or
// versioned predicates anywhere.
func astRuleReactive(r *ast.Rule) bool {
	for _, h := range r.Heads {
		if h.Delta != ast.DeltaNone || h.AtStart {
			return true
		}
	}
	for _, l := range r.Body {
		if l.Atom != nil && (l.Atom.Delta != ast.DeltaNone || l.Atom.AtStart) {
			return true
		}
	}
	return false
}
