// Package locks is a locksafe-analyzer fixture: locks leaked across
// returns and panics, double-locks, and unlocks of unheld locks are
// flagged; defer-based and branch-balanced release patterns are not.
package locks

import "sync"

type S struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	n   int
	seq uint64
}

// earlyReturn leaks the lock on the b path.
func (s *S) earlyReturn(b bool) error {
	s.mu.Lock() // want: may still be held at a return
	if b {
		return nil
	}
	s.mu.Unlock()
	return nil
}

// maybeLock acquires on one path only and never releases.
func (s *S) maybeLock(b bool) {
	if b {
		s.mu.Lock() // want: may still be held at a return
	}
	s.n++
}

// double re-acquires the same mutex: self-deadlock.
func (s *S) double() {
	s.mu.Lock()
	s.mu.Lock() // want: deadlocks re-acquiring its own lock
	s.mu.Unlock()
}

// upgrade takes the write lock while holding the read lock: deadlock
// under a concurrent writer.
func (s *S) upgrade() {
	s.rw.RLock()
	s.rw.Lock() // want: deadlocks re-acquiring its own lock
	s.rw.Unlock()
	s.rw.RUnlock()
}

// unheld releases a mutex no path acquired.
func (s *S) unheld() {
	s.mu.Unlock() // want: not held on any path
}

// panics leaks the lock when the explicit panic unwinds.
func (s *S) panics(b bool) {
	s.mu.Lock() // want: may still be held at a panic
	if b {
		panic("boom")
	}
	s.mu.Unlock()
}

// deferred releases via defer on every path, early returns included.
func (s *S) deferred(b bool) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b {
		return 1
	}
	return 2
}

// deferClosure releases inside a deferred function literal.
func (s *S) deferClosure() {
	s.mu.Lock()
	defer func() { s.mu.Unlock() }()
	s.n++
}

// waitLoop is the WaitSeq shape: lock, check, unlock, block, repeat.
func (s *S) waitLoop(ch chan struct{}, want uint64) {
	for {
		s.mu.Lock()
		done := s.seq >= want
		s.mu.Unlock()
		if done {
			return
		}
		<-ch
	}
}

// viaGoto releases on both the goto path and the fallthrough path.
func (s *S) viaGoto(b bool) {
	s.mu.Lock()
	if b {
		goto out
	}
	s.n++
	s.mu.Unlock()
	return
out:
	s.mu.Unlock()
}

// rlockShared holds the read lock under defer: released on every path.
func (s *S) rlockShared() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.n
}
