package ivm

import (
	"logicblox/internal/compiler"
	"logicblox/internal/lftj"
	"logicblox/internal/relation"
)

// Sensitivity-guided maintenance (the LogicBlox strategy, paper §3.2):
// every rule evaluation records the sensitivity intervals of its leapfrog
// runs; a change batch first probes those intervals, and rules whose
// recorded trace the changes cannot intersect are skipped without running
// any join. Affected rules are re-derived (recording a fresh trace) and
// their head predicates updated by structural diff. Per-rule results are
// kept separately so multiple rules deriving one predicate stay correct.

// initialSensitivityEval evaluates all strata, recording one sensitivity
// index per rule (per stratum for recursive strata) and keeping per-rule
// result relations.
func (m *Maintainer) initialSensitivityEval() error {
	if m.ruleRel == nil {
		m.ruleRel = map[int]relation.Relation{}
	}
	for si, stratum := range m.prog.Strata {
		if stratumRecursive(stratum) {
			idx := lftj.NewSensitivityIndex()
			m.stratumSens[si] = idx
			m.ctx.SetSensitivityIndex(idx)
			if err := m.ctx.EvalStratum(stratum); err != nil {
				m.ctx.SetSensitivityIndex(nil)
				return err
			}
			m.ctx.SetSensitivityIndex(nil)
			continue
		}
		touched := map[string]bool{}
		for _, r := range stratum {
			idx := lftj.NewSensitivityIndex()
			m.ruleSens[r.ID] = idx
			m.ctx.SetSensitivityIndex(idx)
			derived, err := m.ctx.EvalRule(r, nil)
			m.ctx.SetSensitivityIndex(nil)
			if err != nil {
				return err
			}
			m.ruleRel[r.ID] = derived
			touched[r.HeadName] = true
		}
		for head := range touched {
			m.refreshHeadFromRuleRels(head, stratum)
		}
	}
	return nil
}

// refreshHeadFromRuleRels sets head to the union of its rules' results.
func (m *Maintainer) refreshHeadFromRuleRels(head string, stratum []*compiler.RulePlan) {
	rel := relation.New(m.ctx.Relation(head).Arity())
	for _, r := range stratum {
		if r.HeadName != head {
			continue
		}
		if rr, ok := m.ruleRel[r.ID]; ok {
			rel = rel.Union(rr)
		}
	}
	m.ctx.Set(head, rel)
}

// deltaHits reports whether any pending change intersects idx.
func deltaHits(idx *lftj.SensitivityIndex, acc map[string]Delta) bool {
	for name, d := range acc {
		for _, t := range d.Ins {
			if idx.Affected(name, t) {
				return true
			}
		}
		for _, t := range d.Del {
			if idx.Affected(name, t) {
				return true
			}
		}
	}
	return false
}

// applySensitivity maintains each stratum, skipping rules whose recorded
// trace the change batch cannot intersect.
func (m *Maintainer) applySensitivity(acc map[string]Delta, old map[string]relation.Relation) error {
	for si, stratum := range m.prog.Strata {
		if stratumRecursive(stratum) {
			idx := m.stratumSens[si]
			if idx == nil || !deltaHits(idx, acc) {
				m.Stats.RulesSkipped += len(stratum)
				continue
			}
			// Recompute the stratum with a fresh trace.
			heads := map[string]bool{}
			for _, r := range stratum {
				heads[r.HeadName] = true
			}
			origin := map[string]relation.Relation{}
			for h := range heads {
				origin[h] = m.ctx.Relation(h)
				m.ctx.Set(h, relation.New(origin[h].Arity()))
			}
			fresh := lftj.NewSensitivityIndex()
			m.stratumSens[si] = fresh
			m.ctx.SetSensitivityIndex(fresh)
			m.Stats.RulesEvaluated += len(stratum)
			err := m.ctx.EvalStratum(stratum)
			m.ctx.SetSensitivityIndex(nil)
			if err != nil {
				return err
			}
			for h := range heads {
				cur := m.ctx.Relation(h)
				if !cur.Equal(origin[h]) {
					if _, ok := old[h]; !ok {
						old[h] = origin[h]
					}
					recordDiff(acc, h, origin[h], cur)
				}
			}
			continue
		}

		touched := map[string]bool{}
		for _, r := range stratum {
			idx := m.ruleSens[r.ID]
			if idx == nil || !deltaHits(idx, acc) {
				m.Stats.RulesSkipped++
				continue
			}
			freshIdx := lftj.NewSensitivityIndex()
			m.ruleSens[r.ID] = freshIdx
			m.ctx.SetSensitivityIndex(freshIdx)
			m.Stats.RulesEvaluated++
			derived, err := m.ctx.EvalRule(r, nil)
			m.ctx.SetSensitivityIndex(nil)
			if err != nil {
				return err
			}
			if prev, ok := m.ruleRel[r.ID]; !ok || !prev.Equal(derived) {
				m.ruleRel[r.ID] = derived
				touched[r.HeadName] = true
			}
		}
		for head := range touched {
			orig := m.ctx.Relation(head)
			m.refreshHeadFromRuleRels(head, stratum)
			cur := m.ctx.Relation(head)
			if !cur.Equal(orig) {
				if _, ok := old[head]; !ok {
					old[head] = orig
				}
				recordDiff(acc, head, orig, cur)
			}
		}
	}
	return nil
}

// SensitivityProbes reports how many intervals are currently recorded
// (for diagnostics and benchmarks).
func (m *Maintainer) SensitivityProbes() int {
	n := 0
	for _, idx := range m.ruleSens {
		n += idx.Len()
	}
	for _, idx := range m.stratumSens {
		n += idx.Len()
	}
	return n
}
