// Package logicblox is a from-scratch Go implementation of the LogicBlox
// system ("Design and Implementation of the LogicBlox System",
// SIGMOD 2015): a unified declarative database programming system built
// around LogiQL (a Datalog dialect), purely functional data structures,
// worst-case-optimal leapfrog triejoin query processing, incremental view
// maintenance, live programming via a meta-engine, lock-free concurrency
// through transaction repair, and built-in prescriptive (LP/MIP) and
// predictive (ML) analytics.
//
// The public API re-exports the workspace/transaction surface. Open
// takes functional options configuring the root workspace:
//
//	db := logicblox.Open(logicblox.WithAdaptiveOptimizer())
//	ws, _ := db.Workspace(logicblox.DefaultBranch)
//	ws, _ = ws.AddBlock("schema", `
//	    profit[sku] = sellingPrice[sku] - buyingPrice[sku] <- Product(sku).`)
//	res, _ := ws.Exec(`+Product("eis"). +sellingPrice["eis"] = 3.0. +buyingPrice["eis"] = 1.0.`)
//	rows, _ := res.Workspace.Query(`_(p, v) <- profit[p] = v.`)
//	db.Commit(logicblox.DefaultBranch, res.Workspace)
//
// Every transaction method has a context-aware form (ExecCtx, QueryCtx,
// AddBlockCtx) whose deadline or cancellation is honored inside the
// engine's fixpoint loops at iteration boundaries. QueryStream runs a
// read-only query as a pull cursor (Next/Err/Close) that pipelines
// rows straight from the join iterators without materializing the
// result; Query/QueryCtx drain the same cursor into a slice. Failures
// carry typed
// sentinel errors (ErrParse, ErrTypecheck, ErrConflict, ErrNoSuchBranch,
// ErrConstraint) matchable with errors.Is. cmd/lb-serve exposes the same
// surface over HTTP; see docs/server.md.
//
// Lower-level building blocks (the treap and relation substrates, the
// leapfrog triejoin, the incremental-maintenance strategies, transaction
// repair, and the LP/MIP solver) live in the internal packages and are
// exercised by the benchmark harness in bench_test.go and
// cmd/lb-experiments.
package logicblox

import (
	"io"

	"logicblox/internal/analysis/logiql"
	"logicblox/internal/core"
	"logicblox/internal/optimizer"
	"logicblox/internal/relation"
	"logicblox/internal/solver"
	"logicblox/internal/tuple"
)

// Database manages named branches of workspaces with O(1) branching and
// a time-travelable version history.
type Database = core.Database

// Workspace is one immutable version of the database: logic plus data.
type Workspace = core.Workspace

// ExecResult reports what an exec transaction changed.
type ExecResult = core.ExecResult

// ExecDelta is the per-predicate effect of an exec transaction.
type ExecDelta = core.ExecDelta

// VersionEntry records one committed workspace version.
type VersionEntry = core.VersionEntry

// Solution is the outcome of a prescriptive-analytics solve.
type Solution = solver.Solution

// PlanStore is the adaptive optimizer's cross-transaction plan cache:
// chosen variable orders keyed by rule fingerprint, reused until the
// engine's observed costs or input cardinalities drift. Attach one to a
// workspace lineage with Workspace.WithAdaptiveOptimizer(true).
type PlanStore = optimizer.PlanStore

// PlanSnapshot is the structured value of one cached plan.
type PlanSnapshot = optimizer.PlanSnapshot

// PlanStoreStats summarize a plan cache's hit/miss/redecision traffic.
type PlanStoreStats = optimizer.StoreStats

// FormatPlanTable renders a plan-store snapshot as an aligned text table
// (the REPL's :plans command).
func FormatPlanTable(stats PlanStoreStats, plans []PlanSnapshot) string {
	return optimizer.FormatPlanTable(stats, plans)
}

// CheckWarning is one advisory finding from the warning-tier LogiQL
// program checker (Workspace.CheckProgram, the REPL's :check command,
// and the server's POST /check): dead rules, unconsumed heads, singleton
// variables, duplicate/subsumed rules, unsatisfiable constraint bodies.
// Warnings never reject a program.
type CheckWarning = logiql.Warning

// Relation is an immutable set of tuples (persistent storage).
type Relation = relation.Relation

// Tuple is an ordered sequence of values.
type Tuple = tuple.Tuple

// Value is a scalar LogiQL value.
type Value = tuple.Value

// DefaultBranch is the branch created by Open.
const DefaultBranch = core.DefaultBranch

// Typed sentinel errors carried (via errors.Is) by every failure of the
// transaction surface. lb-serve maps them onto HTTP statuses (404, 409,
// 400, 422); embedders switch on them the same way instead of matching
// message strings.
var (
	// ErrNoSuchBranch marks operations naming an unknown branch or
	// version.
	ErrNoSuchBranch = core.ErrNoSuchBranch
	// ErrBranchExists marks branch creation over an existing name.
	ErrBranchExists = core.ErrBranchExists
	// ErrConflict marks an optimistic commit that lost its race
	// (Database.CommitIf) or a duplicate block install.
	ErrConflict = core.ErrConflict
	// ErrParse marks LogiQL syntax errors.
	ErrParse = core.ErrParse
	// ErrTypecheck marks semantic errors: type clashes, unbound head
	// variables, writes to derived predicates.
	ErrTypecheck = core.ErrTypecheck
	// ErrConstraint marks a transaction aborted by an integrity
	// constraint violation.
	ErrConstraint = core.ErrConstraint
	// ErrCorruptSnapshot marks a snapshot file or stream that fails
	// validation (bad checksum, truncation, undecodable state).
	ErrCorruptSnapshot = core.ErrCorruptSnapshot
	// ErrDurability marks a commit rejected because its journal append
	// failed; the in-memory state is untouched.
	ErrDurability = core.ErrDurability
)

// Option configures the root workspace of a database opened with Open;
// the configuration is inherited by every branch and version derived
// from it.
type Option = core.Option

// WithOptimizer enables the sampling-based join-order optimizer
// (paper §3.2) for every transaction.
func WithOptimizer() Option { return core.OptOptimizer() }

// WithAdaptiveOptimizer enables the feedback-driven adaptive optimizer:
// sampled join orders persist in a plan store shared across versions and
// branches, and re-sampling happens only when observed costs or input
// cardinalities drift.
func WithAdaptiveOptimizer() Option { return core.OptAdaptiveOptimizer() }

// WithObs attaches a metrics registry to the workspace lineage: every
// transaction records per-rule profiles, phase spans and engine counters
// into reg.
func WithObs(reg *ObsRegistry) Option { return core.OptObserver(reg) }

// Open creates a database whose main branch starts from an empty
// workspace configured by the given options.
//
// The pre-option spellings — Open() followed by committing
// ws.WithAdaptiveOptimizer(true) or ws.WithObserver(reg) onto the
// branch — keep working; the options are the preferred way to say the
// same thing at open time.
func Open(opts ...Option) *Database {
	ws := core.NewWorkspace()
	for _, opt := range opts {
		ws = opt(ws)
	}
	return core.NewDatabaseWith(ws)
}

// LoadDatabase restores a database from a snapshot written with
// Database.Save; derived predicates are re-materialized (there is no
// transaction log to replay — recovery is reloading the immutable state,
// paper T4).
func LoadDatabase(r io.Reader) (*Database, error) { return core.LoadDatabase(r) }

// NewWorkspace returns an empty standalone workspace (no logic, no data),
// for use without branch management.
func NewWorkspace() *Workspace { return core.NewWorkspace() }

// Value constructors, re-exported for building tuples programmatically.
var (
	Int     = tuple.Int
	Float   = tuple.Float
	String  = tuple.String
	Bool    = tuple.Bool
	Ints    = tuple.Ints
	Strings = tuple.Strings
	Of      = tuple.Of
)
