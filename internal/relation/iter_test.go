package relation

import (
	"math/rand"
	"testing"

	"logicblox/internal/trie"
	"logicblox/internal/tuple"
)

func figure4Relation() Relation {
	return FromTuples(3, []tuple.Tuple{
		tuple.Ints(1, 3, 4), tuple.Ints(1, 3, 5), tuple.Ints(1, 4, 6),
		tuple.Ints(1, 4, 8), tuple.Ints(1, 4, 9), tuple.Ints(1, 5, 2),
		tuple.Ints(3, 5, 2),
	})
}

func TestTrieIterCollect(t *testing.T) {
	r := figure4Relation()
	got := trie.Collect(r.Iterator())
	want := r.Slice()
	if len(got) != len(want) {
		t.Fatalf("Collect %d tuples, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("tuple %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestTrieIterNavigation(t *testing.T) {
	it := figure4Relation().Iterator()
	it.Open()
	if it.Key().AsInt() != 1 {
		t.Fatalf("x = %v", it.Key())
	}
	it.Open()
	if it.Key().AsInt() != 3 {
		t.Fatalf("y = %v", it.Key())
	}
	it.Seek(tuple.Int(4))
	if it.Key().AsInt() != 4 {
		t.Fatalf("seek y=4 got %v", it.Key())
	}
	it.Open()
	var zs []int64
	for !it.AtEnd() {
		zs = append(zs, it.Key().AsInt())
		it.Next()
	}
	if len(zs) != 3 || zs[0] != 6 || zs[1] != 8 || zs[2] != 9 {
		t.Fatalf("zs = %v", zs)
	}
	it.Up() // back to y=4
	if it.Depth() != 1 {
		t.Fatalf("depth = %d", it.Depth())
	}
	it.Next() // y=5
	if it.Key().AsInt() != 5 {
		t.Fatalf("y after up/next = %v", it.Key())
	}
	it.Next()
	if !it.AtEnd() {
		t.Fatalf("y level should be exhausted")
	}
	it.Up() // x=1
	it.Next()
	if it.Key().AsInt() != 3 {
		t.Fatalf("x after exhausting x=1 = %v", it.Key())
	}
}

func TestTrieIterReopenAfterUp(t *testing.T) {
	// Open, descend fully, come back up and re-Open the same key (the
	// "stale iterator" path).
	it := figure4Relation().Iterator()
	it.Open() // x=1
	it.Open() // y=3
	it.Open() // z=4
	it.Next() // z=5
	it.Next() // end of z level
	if !it.AtEnd() {
		t.Fatalf("expected z exhausted")
	}
	it.Up() // y=3
	if it.Key().AsInt() != 3 {
		t.Fatalf("y after up = %v", it.Key())
	}
	it.Open() // re-open z under (1,3): must restart at z=4
	if it.Key().AsInt() != 4 {
		t.Fatalf("re-open z = %v", it.Key())
	}
}

func TestTrieIterSeekOnUnary(t *testing.T) {
	r := FromTuples(1, []tuple.Tuple{
		tuple.Ints(0), tuple.Ints(2), tuple.Ints(6), tuple.Ints(7), tuple.Ints(8), tuple.Ints(9),
	})
	it := r.Iterator()
	it.Open()
	it.Seek(tuple.Int(3))
	if it.Key().AsInt() != 6 {
		t.Fatalf("Seek(3) = %v", it.Key())
	}
	it.Seek(tuple.Int(6))
	if it.Key().AsInt() != 6 {
		t.Fatalf("Seek to current moved: %v", it.Key())
	}
	it.Seek(tuple.Int(10))
	if !it.AtEnd() {
		t.Fatalf("Seek past max should end")
	}
	it.Seek(tuple.Int(11)) // seek at end is a no-op
	if !it.AtEnd() {
		t.Fatalf("still at end")
	}
}

func TestTrieIterEmptyRelation(t *testing.T) {
	it := New(2).Iterator()
	it.Open()
	if !it.AtEnd() {
		t.Fatalf("empty open should be at end")
	}
	it.Up()
	if it.Depth() != -1 {
		t.Fatalf("depth = %d", it.Depth())
	}
}

// TestTrieIterMatchesReference drives identical random navigation scripts
// against the treap-backed iterator and the slice-based reference
// implementation, requiring identical observations.
func TestTrieIterMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		var ts []tuple.Tuple
		n := rng.Intn(300) + 1
		for i := 0; i < n; i++ {
			ts = append(ts, tuple.Ints(rng.Int63n(6), rng.Int63n(6), rng.Int63n(6)))
		}
		tuple.SortTuples(ts)
		ts = tuple.DedupSorted(ts)
		r := FromTuples(3, ts)
		a := r.Iterator()
		b := trie.Iterator(trie.NewSliceIterator(ts, 3))

		check := func(step string) {
			t.Helper()
			if a.AtEnd() != b.AtEnd() {
				t.Fatalf("trial %d %s: AtEnd %v vs %v", trial, step, a.AtEnd(), b.AtEnd())
			}
			if a.Depth() != b.Depth() {
				t.Fatalf("trial %d %s: Depth %d vs %d", trial, step, a.Depth(), b.Depth())
			}
			if !a.AtEnd() && a.Depth() >= 0 {
				if !tuple.Equal(a.Key(), b.Key()) {
					t.Fatalf("trial %d %s: Key %v vs %v", trial, step, a.Key(), b.Key())
				}
			}
		}

		a.Open()
		b.Open()
		check("open-root")
		for step := 0; step < 200; step++ {
			switch op := rng.Intn(4); {
			case op == 0 && !a.AtEnd() && a.Depth() < a.Arity()-1:
				a.Open()
				b.Open()
				check("open")
			case op == 1 && a.Depth() > 0:
				a.Up()
				b.Up()
				check("up")
			case op == 2 && !a.AtEnd():
				a.Next()
				b.Next()
				check("next")
			case op == 3 && !a.AtEnd():
				probe := tuple.Int(a.Key().AsInt() + rng.Int63n(3))
				a.Seek(probe)
				b.Seek(probe)
				check("seek")
			}
		}
	}
}
