package core

import (
	"strings"
	"testing"

	"logicblox/internal/obs"
	"logicblox/internal/relation"
)

// TestTransactionSpansAndCounters drives a workspace through addblock,
// exec, and query transactions with an observer attached and checks the
// outcome counters, duration histograms, and phase span trees.
func TestTransactionSpansAndCounters(t *testing.T) {
	reg := obs.NewRegistry()
	ws := NewWorkspace().WithObserver(reg)
	if ws.Observer() != reg {
		t.Fatal("WithObserver not visible")
	}

	ws, err := ws.AddBlock("b", `
		path(x, y) <- edge(x, y).
		path(x, z) <- path(x, y), edge(y, z).`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ws.Exec(`+edge(1, 2). +edge(2, 3).`)
	if err != nil {
		t.Fatal(err)
	}
	ws = res.Workspace
	if ws.Observer() != reg {
		t.Fatal("observer lost across transactions")
	}
	rows, err := ws.Query(`_(x, y) <- path(x, y).`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("closure = %v", rows)
	}

	s := reg.Snapshot()
	for _, c := range []string{"tx.addblock.commit", "tx.exec.commit", "tx.query.commit"} {
		if s.Counters[c] != 1 {
			t.Fatalf("counter %s = %d, want 1: %v", c, s.Counters[c], s.Counters)
		}
	}
	for _, h := range []string{"tx.addblock.duration", "tx.exec.duration", "tx.query.duration"} {
		if s.Histograms[h].Count != 1 {
			t.Fatalf("histogram %s count = %d, want 1", h, s.Histograms[h].Count)
		}
	}
	if s.Counters["core.rederive.rules_evaluated"] == 0 {
		t.Fatalf("no rederive evaluations counted: %v", s.Counters)
	}
	if len(s.Rules) == 0 {
		t.Fatal("no rule profiles recorded")
	}

	// The exec trace must contain the pipeline phases, with rederive
	// holding the engine's stratum spans.
	var exec *obs.SpanSnapshot
	for i := range s.Traces {
		if s.Traces[i].Name == "tx.exec" {
			exec = &s.Traces[i]
		}
	}
	if exec == nil {
		t.Fatalf("no tx.exec trace: %+v", s.Traces)
	}
	phases := map[string]bool{}
	for _, c := range exec.Children {
		phases[c.Name] = true
	}
	for _, want := range []string{"parse", "compile", "eval.reactive", "frame", "rederive", "constraints"} {
		if !phases[want] {
			t.Fatalf("tx.exec missing phase %q: %v", want, phases)
		}
	}
	tree := obs.FormatSpanTree(*exec)
	if !strings.Contains(tree, "rederive") || !strings.Contains(tree, "base_ins=2") {
		t.Fatalf("span tree missing expected content:\n%s", tree)
	}
}

// TestAbortCounted checks that a constraint violation records an abort,
// not a commit.
func TestAbortCounted(t *testing.T) {
	reg := obs.NewRegistry()
	ws := NewWorkspace().WithObserver(reg)
	ws, err := ws.AddBlock("b", `
		p(x) -> int(x).
		p(x) -> x > 0.`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ws.Exec(`+p(-1).`); err == nil {
		t.Fatal("expected constraint violation")
	}
	s := reg.Snapshot()
	if s.Counters["tx.exec.abort"] != 1 || s.Counters["tx.exec.commit"] != 0 {
		t.Fatalf("abort/commit = %d/%d: %v",
			s.Counters["tx.exec.abort"], s.Counters["tx.exec.commit"], s.Counters)
	}
}

// TestStorageGaugesRefreshed checks that transactions refresh the treap
// gauges when storage stats are enabled.
func TestStorageGaugesRefreshed(t *testing.T) {
	relation.ResetStorageStats()
	relation.EnableStorageStats(true)
	defer relation.EnableStorageStats(false)

	reg := obs.NewRegistry()
	ws := NewWorkspace().WithObserver(reg)
	ws, err := ws.AddBlock("b", `q(x) <- p(x).`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ws.Exec(`+p(1). +p(2). +p(3).`); err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	if s.Gauges["treap.nodes_allocated"] == 0 {
		t.Fatalf("treap.nodes_allocated gauge not refreshed: %v", s.Gauges)
	}
}

// TestNoObserverNoRecording checks the default path records nothing.
func TestNoObserverNoRecording(t *testing.T) {
	ws := NewWorkspace()
	if ws.Observer() != nil {
		t.Fatal("fresh workspace has an observer")
	}
	ws, err := ws.AddBlock("b", `q(x) <- p(x).`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ws.Exec(`+p(1).`); err != nil {
		t.Fatal(err)
	}
}
