// Package pmap provides persistent string-keyed maps and sets built on the
// treap substrate. The workspace and meta-engine keep all of their
// meta-data (predicate catalogs, rule sets, execution-graph nodes) in these
// structures so that branching a workspace is an O(1) pointer copy and
// diffing two versions is proportional to their divergence (paper §3.1).
package pmap

import (
	"logicblox/internal/treap"
)

func stringOps() treap.Ops[string] {
	return treap.Ops[string]{
		Compare: func(a, b string) int {
			switch {
			case a < b:
				return -1
			case a > b:
				return 1
			}
			return 0
		},
		Hash: hashString,
	}
}

func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Map is a persistent map from string to V. The zero Map is not usable;
// construct with NewMap.
type Map[V any] struct {
	t treap.Tree[string, V]
}

// NewMap returns an empty persistent map.
func NewMap[V any]() Map[V] {
	return Map[V]{t: treap.New[string, V](stringOps())}
}

// Get returns the value bound to key.
func (m Map[V]) Get(key string) (V, bool) { return m.t.Get(key) }

// Contains reports whether key is bound.
func (m Map[V]) Contains(key string) bool { return m.t.Contains(key) }

// Set returns a map with key bound to val.
func (m Map[V]) Set(key string, val V) Map[V] { return Map[V]{t: m.t.Insert(key, val)} }

// Delete returns a map without key.
func (m Map[V]) Delete(key string) Map[V] { return Map[V]{t: m.t.Delete(key)} }

// Len returns the number of bindings.
func (m Map[V]) Len() int { return m.t.Len() }

// Range calls fn for each binding in ascending key order until fn returns
// false.
func (m Map[V]) Range(fn func(key string, val V) bool) { m.t.Ascend(fn) }

// Keys returns the keys in ascending order.
func (m Map[V]) Keys() []string { return m.t.Keys() }

// EqualKeys reports whether m and o bind exactly the same keys, pruning on
// shared structure.
func (m Map[V]) EqualKeys(o Map[V]) bool { return m.t.Equal(o.t) }

// Diff reports the bindings that differ between m (old) and o (new).
func (m Map[V]) Diff(o Map[V], valEq func(a, b V) bool,
	onDel func(string, V), onIns func(string, V), onUpd func(string, V, V)) {
	m.t.DiffWith(o.t, valEq, onDel, onIns, onUpd)
}

// Set is a persistent set of strings.
type Set struct {
	t treap.Tree[string, struct{}]
}

// NewSet returns an empty persistent set, optionally seeded with elems.
func NewSet(elems ...string) Set {
	t := treap.New[string, struct{}](stringOps())
	for _, e := range elems {
		t = t.Insert(e, struct{}{})
	}
	return Set{t: t}
}

// Contains reports membership.
func (s Set) Contains(key string) bool { return s.t.Contains(key) }

// Add returns a set including key.
func (s Set) Add(key string) Set { return Set{t: s.t.Insert(key, struct{}{})} }

// Remove returns a set excluding key.
func (s Set) Remove(key string) Set { return Set{t: s.t.Delete(key)} }

// Len returns the cardinality.
func (s Set) Len() int { return s.t.Len() }

// Union returns the set union.
func (s Set) Union(o Set) Set { return Set{t: s.t.Union(o.t)} }

// Intersect returns the set intersection.
func (s Set) Intersect(o Set) Set { return Set{t: s.t.Intersect(o.t)} }

// Difference returns s minus o.
func (s Set) Difference(o Set) Set { return Set{t: s.t.Difference(o.t)} }

// Equal reports set equality (O(1) for shared structure).
func (s Set) Equal(o Set) bool { return s.t.Equal(o.t) }

// Elems returns the elements in ascending order.
func (s Set) Elems() []string { return s.t.Keys() }

// Range calls fn for each element in ascending order until fn returns false.
func (s Set) Range(fn func(string) bool) {
	s.t.Ascend(func(k string, _ struct{}) bool { return fn(k) })
}
