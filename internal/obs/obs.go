package obs

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The nil *Counter is a
// valid no-op.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value metric. The nil *Gauge is a valid no-op.
type Gauge struct {
	v atomic.Int64
}

// Set records the current value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Value returns the last recorded value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of power-of-two duration buckets: bucket i
// counts observations with 2^(i-1) ≤ nanoseconds < 2^i (bucket 0 is
// sub-nanosecond, the last bucket is open-ended). 2^40 ns ≈ 18 minutes,
// far beyond any single evaluation this engine runs.
const histBuckets = 41

// Histogram records a distribution of durations in power-of-two
// nanosecond buckets, with exact count/sum/min/max. The nil *Histogram is
// a valid no-op.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	min     atomic.Int64 // nanoseconds; valid when count > 0
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 1 {
		ns = 1 // clamp below timer resolution; 0 marks "min unset"
	}
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		old := h.min.Load()
		if old != 0 && old <= ns {
			break
		}
		if h.min.CompareAndSwap(old, ns) {
			break
		}
	}
	for {
		old := h.max.Load()
		if ns <= old {
			break
		}
		if h.max.CompareAndSwap(old, ns) {
			break
		}
	}
	b := bits.Len64(uint64(ns))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.buckets[b].Add(1)
}

// HistogramSnapshot is the structured value of one histogram.
type HistogramSnapshot struct {
	Count int64         `json:"count"`
	Sum   time.Duration `json:"sum_ns"`
	Min   time.Duration `json:"min_ns"`
	Max   time.Duration `json:"max_ns"`
	// Buckets maps bucket upper bounds (exclusive, in nanoseconds, powers
	// of two) to counts; empty buckets are omitted.
	Buckets map[int64]int64 `json:"buckets,omitempty"`
}

// Mean returns the average observed duration.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) of the observed
// durations from the power-of-two buckets, interpolating linearly inside
// the bucket holding rank ⌈q·count⌉ and clamping to the exact min/max.
// The estimate always falls inside the bucket containing the true
// quantile, so its error is bounded by one power-of-two bucket boundary
// (a factor of 2 at worst); see docs/observability.md.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min
	}
	if q >= 1 {
		return s.Max
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	bounds := make([]int64, 0, len(s.Buckets))
	for b := range s.Buckets {
		bounds = append(bounds, b)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	var cum int64
	for _, hi := range bounds {
		n := s.Buckets[hi]
		if cum+n < rank {
			cum += n
			continue
		}
		lo := hi / 2 // bucket i covers [2^(i-1), 2^i); bucket key 1 covers [0, 1)
		frac := float64(rank-cum) / float64(n)
		est := time.Duration(float64(lo) + frac*float64(hi-lo))
		if est < s.Min {
			est = s.Min
		}
		if est > s.Max {
			est = s.Max
		}
		return est
	}
	return s.Max
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   time.Duration(h.sum.Load()),
		Min:   time.Duration(h.min.Load()),
		Max:   time.Duration(h.max.Load()),
	}
	for i := 0; i < histBuckets; i++ {
		if n := h.buckets[i].Load(); n > 0 {
			if s.Buckets == nil {
				s.Buckets = map[int64]int64{}
			}
			s.Buckets[int64(1)<<i] = n
		}
	}
	return s
}

// Registry owns a namespace of metrics, rule profiles and traces. The nil
// *Registry is a valid no-op registry: every accessor returns a nil
// handle, itself a no-op.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	rules    map[int]*RuleStats
	traces   traceRing
	sampleN  int   // keep 1 in sampleN root spans (≤1: keep all)
	spanSeq  int64 // root spans ended so far (sampling phase)
}

// SetTraceSampling keeps only 1 in n finished root spans in the trace
// ring (the first of every n, deterministically), shedding tracing cost
// on high-throughput transaction streams. n ≤ 1 restores the default of
// retaining every root span. Child spans are unaffected: a sampled-in
// trace is always complete.
func (r *Registry) SetTraceSampling(n int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sampleN = n
	r.spanSeq = 0
}

// TraceSampling returns the current 1-in-N trace sampling rate (1 when
// every root span is retained, including on a nil registry).
func (r *Registry) TraceSampling() int {
	if r == nil {
		return 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sampleN <= 1 {
		return 1
	}
	return r.sampleN
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		rules:    map[int]*RuleStats{},
	}
}

// Counter returns (creating if needed) the named counter, or nil on a nil
// registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge, or nil on a nil
// registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named duration histogram, or
// nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Reset drops all recorded metrics, rule profiles and traces, keeping the
// registry usable. Handles returned before the reset keep working but
// refer to dropped metrics; callers that cache handles should re-resolve
// them after a reset.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = map[string]*Counter{}
	r.gauges = map[string]*Gauge{}
	r.hists = map[string]*Histogram{}
	r.rules = map[int]*RuleStats{}
	r.traces = traceRing{}
}

// defaultReg is the process-wide fallback registry used by layers that
// were not handed an explicit registry (nil = observability off, the
// default). It lets a harness flip on engine-wide profiling without
// threading a registry through every constructor.
var defaultReg atomic.Pointer[Registry]

// SetDefault installs reg as the process-wide default registry (nil
// disables it).
func SetDefault(reg *Registry) { defaultReg.Store(reg) }

// Default returns the process-wide default registry, or nil when none is
// installed.
func Default() *Registry { return defaultReg.Load() }

// Snapshot is a point-in-time structured copy of everything a registry
// has recorded.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Rules      []RuleSnapshot               `json:"rules,omitempty"`
	Traces     []SpanSnapshot               `json:"traces,omitempty"`
}

// Snapshot captures the current state of all metrics. On a nil registry
// it returns an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.snapshot()
		}
	}
	s.Rules = r.ruleSnapshotsLocked()
	s.Traces = r.traces.snapshots()
	return s
}
