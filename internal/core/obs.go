package core

import (
	"context"
	"time"

	"logicblox/internal/obs"
	"logicblox/internal/relation"
)

// WithObserver returns a workspace whose transactions record into reg
// (nil reverts to the process default, obs.Default). The observer is
// inherited by branches and subsequent versions, so installing it once
// on a branch head profiles the whole history that follows.
func (ws *Workspace) WithObserver(reg *obs.Registry) *Workspace {
	cp := *ws
	cp.obs = reg
	return &cp
}

// Observer returns the registry this workspace's transactions record
// into: the one installed with WithObserver, else the process default
// (which may be nil — observability off).
func (ws *Workspace) Observer() *obs.Registry {
	if ws.obs != nil {
		return ws.obs
	}
	return obs.Default()
}

// txSpan opens a transaction-level span and returns it along with a
// completion func that records the outcome (tx.<kind>.commit or
// tx.<kind>.abort), samples tx.<kind>.duration, and — when storage
// stats are enabled — refreshes the treap work gauges. When rctx carries
// a request span (obs.ContextWithSpan, installed by the server's
// middleware), the transaction span is parented under it so the whole
// engine trace hangs off the per-request root; otherwise it opens a
// registry root span as before. Both returns are valid no-ops when no
// observer is attached.
func (ws *Workspace) txSpan(rctx context.Context, kind string) (*obs.Span, func(error)) {
	reg := ws.Observer()
	if reg == nil {
		return nil, func(error) {}
	}
	var sp *obs.Span
	if parent := obs.SpanFromContext(rctx); parent != nil {
		sp = parent.Child("tx." + kind)
	} else {
		sp = reg.StartSpan("tx." + kind)
	}
	t0 := time.Now()
	return sp, func(err error) {
		outcome := ".commit"
		if err != nil {
			outcome = ".abort"
			sp.SetAttr("abort", 1)
		}
		sp.End()
		reg.Counter("tx." + kind + outcome).Add(1)
		reg.Histogram("tx." + kind + ".duration").Observe(time.Since(t0))
		if relation.StorageStatsEnabled() {
			st := relation.ReadStorageStats()
			reg.Gauge("treap.nodes_allocated").Set(st.NodesAllocated)
			reg.Gauge("treap.shared_subtrees").Set(st.SharedSubtrees)
		}
	}
}
