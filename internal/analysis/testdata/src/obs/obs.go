// Package obs is an obssafe-analyzer fixture: exported methods on the
// handle types must nil-check their receiver (or delegate to an exported
// method that does) before any other receiver use.
package obs

// Counter is a nil-safe counter handle.
type Counter struct {
	n int64
}

// Add is the guarded primitive.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.n += delta
}

// Inc delegates to Add, which carries the guard.
func (c *Counter) Inc() {
	c.Add(1)
}

// Value reads the count behind its guard.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n
}

// Bad touches the receiver before the guard.
func (c *Counter) Bad() int64 {
	v := c.n // want: before the nil guard
	if c == nil {
		return 0
	}
	return v
}

// Gauge is a nil-safe gauge handle.
type Gauge struct {
	v float64
}

// Set is missing its guard entirely.
func (g *Gauge) Set(v float64) {
	g.v = v // want: before the nil guard
}

// Load declares the guard late, after the var line, which is still fine:
// the receiver is untouched until the guard runs.
func (g *Gauge) Load() float64 {
	var out float64
	if g == nil {
		return out
	}
	out = g.v
	return out
}

// reset is unexported and exempt from the discipline.
func (g *Gauge) reset() {
	g.v = 0
}

// snapshotter is outside the handle set: no guard needed.
type snapshotter struct {
	v int
}

// Grab needs no guard.
func (s *snapshotter) Grab() int {
	return s.v
}
