package logicblox

// The benchmark harness: one benchmark family per experiment in
// EXPERIMENTS.md / DESIGN.md §3. Run with:
//
//	go test -bench=. -benchmem
//
// E1/Fig5  BenchmarkFig5ThreeClique{LFTJ,HashJoin,MergeJoin}
// E2       BenchmarkBranch
// E3       BenchmarkTxRepairVsCoarse
// E4       BenchmarkIVM
// E6       BenchmarkWorstCaseOptimal
// E7       BenchmarkLiveProgramming
// E8       BenchmarkTreap
// E9       BenchmarkSolver
// E10      BenchmarkPredict
// E11      BenchmarkAdaptiveOptimizer
// ablation BenchmarkVariableOrder, BenchmarkOptimizer,
//          BenchmarkPartitionedTriangle, BenchmarkWorkspaceExec,
//          BenchmarkQuery

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"

	"logicblox/internal/compiler"
	"logicblox/internal/core"
	"logicblox/internal/engine"
	"logicblox/internal/graphgen"
	"logicblox/internal/ivm"
	"logicblox/internal/joins"
	"logicblox/internal/lftj"
	"logicblox/internal/ml"
	"logicblox/internal/obs"
	"logicblox/internal/optimizer"
	"logicblox/internal/parser"
	"logicblox/internal/relation"
	"logicblox/internal/solver"
	"logicblox/internal/treap"
	"logicblox/internal/tuple"
	"logicblox/internal/workload"
)

func mustCompileB(b *testing.B, src string) *compiler.Program {
	b.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	c, err := compiler.Compile(prog)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// --- E1 (Figure 5): 3-clique, LFTJ vs binary join plans ------------------

var fig5Sizes = []int{1000, 10000, 100000}

func fig5Graph(edges int) relation.Relation {
	all := graphgen.Canonical(graphgen.PreferentialAttachment(edges/3, 3, 2015))
	if edges > len(all) {
		edges = len(all)
	}
	return graphgen.ToRelation(all[:edges])
}

func lftjTriangleCount(b *testing.B, e relation.Relation) int {
	j, err := lftj.NewJoin(3, []lftj.Atom{
		{Pred: "E1", Iter: e.Iterator(), Vars: []int{0, 1}},
		{Pred: "E2", Iter: e.Iterator(), Vars: []int{1, 2}},
		{Pred: "E3", Iter: e.Iterator(), Vars: []int{0, 2}},
	}, nil)
	if err != nil {
		b.Fatal(err)
	}
	return j.Count()
}

func BenchmarkFig5ThreeCliqueLFTJ(b *testing.B) {
	for _, n := range fig5Sizes {
		e := fig5Graph(n)
		b.Run(fmt.Sprintf("edges=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lftjTriangleCount(b, e)
			}
		})
	}
}

func BenchmarkFig5ThreeCliqueHashJoin(b *testing.B) {
	for _, n := range fig5Sizes {
		e := fig5Graph(n)
		b.Run(fmt.Sprintf("edges=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				joins.TriangleCountHash(e)
			}
		})
	}
}

func BenchmarkFig5ThreeCliqueMergeJoin(b *testing.B) {
	for _, n := range fig5Sizes {
		e := fig5Graph(n)
		b.Run(fmt.Sprintf("edges=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				joins.TriangleCountMerge(e)
			}
		})
	}
}

// --- E6: worst-case optimality (Loomis–Whitney) ---------------------------

func BenchmarkWorstCaseOptimal(b *testing.B) {
	for _, n := range []int{200, 400} {
		r := relation.New(2)
		for i := int64(0); i < int64(n); i++ {
			r = r.Insert(tuple.Ints(0, i))
			r = r.Insert(tuple.Ints(i, 0))
		}
		b.Run(fmt.Sprintf("lftj/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lftjTriangleCount(b, r)
			}
		})
		b.Run(fmt.Sprintf("hashjoin/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				joins.TriangleCountHash(r)
			}
		})
	}
}

// --- ablation: variable-order choice --------------------------------------

func BenchmarkVariableOrder(b *testing.B) {
	// The 3-path query out(a,c) over a skewed graph: the order [b,a,c]
	// (most-constrained first) beats [a,b,c] when b has high fan-in.
	e := fig5Graph(10000)
	ba := e.Permuted([]int{1, 0})
	b.Run("good-order-bac", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			j, err := lftj.NewJoin(3, []lftj.Atom{
				{Pred: "E1", Iter: ba.Iterator(), Vars: []int{0, 1}}, // E(a,b) as (b,a)
				{Pred: "E2", Iter: e.Iterator(), Vars: []int{0, 2}},  // E(b,c)
			}, nil)
			if err != nil {
				b.Fatal(err)
			}
			j.Count()
		}
	})
	b.Run("bad-order-abc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			j, err := lftj.NewJoin(3, []lftj.Atom{
				{Pred: "E1", Iter: e.Iterator(), Vars: []int{0, 1}}, // E(a,b)
				{Pred: "E2", Iter: e.Iterator(), Vars: []int{1, 2}}, // E(b,c)
			}, nil)
			if err != nil {
				b.Fatal(err)
			}
			j.Count()
		}
	})
}

// --- ablation: sampling-based optimizer vs static heuristic -----------------

func BenchmarkOptimizer(b *testing.B) {
	// q(a,b,c) <- r(a,b), s(b,c), t(c): the static heuristic starts at b
	// (most occurrences); with a tiny t, starting at c is far cheaper.
	prog := mustCompileB(b, `q(a, b, c) <- r(a, b), s(b, c), t(c).`)
	r := relation.New(2)
	s := relation.New(2)
	for i := int64(0); i < 120000; i++ {
		r = r.Insert(tuple.Ints(i%2000, i%3000))
		s = s.Insert(tuple.Ints(i%3000, i%4000))
	}
	tt := relation.New(1)
	tt = tt.Insert(tuple.Ints(17))
	base := map[string]relation.Relation{"r": r, "s": s, "t": tt}
	rule := prog.Rules[0]
	b.Run("heuristic-order", func(b *testing.B) {
		ctx := engine.NewContext(prog, base, engine.Options{})
		for i := 0; i < b.N; i++ {
			if _, err := ctx.EvalRule(rule, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sampled-order", func(b *testing.B) {
		// Steady state: the optimizer's choice is cached after the first
		// evaluation; the benchmark measures the chosen plan.
		ctx := engine.NewContext(prog, base, engine.Options{Optimize: true})
		if _, err := ctx.EvalRule(rule, nil); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ctx.EvalRule(rule, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("choose-order-cost", func(b *testing.B) {
		rels := func(name string) relation.Relation { return base[name] }
		for i := 0; i < b.N; i++ {
			if _, err := optimizer.ChooseOrder(rule, rels, optimizer.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E11: the adaptive optimizer loop. Each iteration models a transaction
// re-entering fixpoint evaluation: a fresh engine context (per-context
// plan memos are cold, as after a recompile) evaluates the same rule.
// Without a plan store every re-entry re-runs sample-based ChooseOrder;
// with one, the cached order is reused after the first decision.
func BenchmarkAdaptiveOptimizer(b *testing.B) {
	prog := mustCompileB(b, `q(a, b, c) <- r(a, b), s(b, c), t(c).`)
	r := relation.New(2)
	s := relation.New(2)
	for i := int64(0); i < 120000; i++ {
		r = r.Insert(tuple.Ints(i%2000, i%3000))
		s = s.Insert(tuple.Ints(i%3000, i%4000))
	}
	tt := relation.New(1)
	tt = tt.Insert(tuple.Ints(17))
	base := map[string]relation.Relation{"r": r, "s": s, "t": tt}
	rule := prog.Rules[0]
	b.Run("resample-per-tx", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ctx := engine.NewContext(prog, base, engine.Options{Optimize: true})
			if _, err := ctx.EvalRule(rule, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("plan-cache", func(b *testing.B) {
		store := optimizer.NewPlanStore(optimizer.StoreOptions{})
		// Warm the store: first decision samples, the rest reuse it.
		ctx := engine.NewContext(prog, base, engine.Options{Optimize: true, Plans: store})
		if _, err := ctx.EvalRule(rule, nil); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctx := engine.NewContext(prog, base, engine.Options{Optimize: true, Plans: store})
			if _, err := ctx.EvalRule(rule, nil); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		st := store.Stats()
		if st.Hits < int64(b.N) {
			b.Fatalf("expected at least %d plan-cache hits, got %+v", b.N, st)
		}
	})
}

// --- E2: branching ----------------------------------------------------------

func BenchmarkBranch(b *testing.B) {
	for _, n := range []int{1000, 100000} {
		ws := core.NewWorkspace()
		ws, err := ws.AddBlock("s", `fact(x, y) -> int(x), int(y).`)
		if err != nil {
			b.Fatal(err)
		}
		ts := make([]tuple.Tuple, n)
		for i := range ts {
			ts[i] = tuple.Ints(int64(i), int64(i%97))
		}
		ws, err = ws.Load("fact", ts)
		if err != nil {
			b.Fatal(err)
		}
		db := core.NewDatabase()
		if err := db.Commit(core.DefaultBranch, ws); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("facts=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				name := fmt.Sprintf("b%d", i)
				if err := db.Branch(core.DefaultBranch, name); err != nil {
					b.Fatal(err)
				}
				if err := db.DeleteBranch(name); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E3: transaction repair vs coarse retry --------------------------------

// benchInventoryWS seeds inv[k] = 1000 for k in [0, n).
func benchInventoryWS(b *testing.B, n int) *core.Workspace {
	b.Helper()
	var buf strings.Builder
	for k := 0; k < n; k++ {
		fmt.Fprintf(&buf, "+inv[%d] = 1000.\n", k)
	}
	res, err := core.NewWorkspace().Exec(buf.String())
	if err != nil {
		b.Fatal(err)
	}
	return res.Workspace
}

// benchInventoryTxns builds transactions that decrement each touched item
// through a point read, touching items with probability α·n^(−1/2) (two
// transactions then share α² items in expectation, the paper's conflict
// model for §3.4).
func benchInventoryTxns(n, txCount int, alpha float64) []string {
	rng := rand.New(rand.NewSource(11))
	p := alpha / math.Sqrt(float64(n))
	txs := make([]string, 0, txCount)
	for i := 0; i < txCount; i++ {
		var buf strings.Builder
		for k := 0; k < n; k++ {
			if rng.Float64() < p {
				fmt.Fprintf(&buf, "^inv[%d] = r <- inv@start[%d] = q, r = q - 1.\n", k, k)
			}
		}
		if buf.Len() == 0 {
			k := rng.Intn(n)
			fmt.Fprintf(&buf, "^inv[%d] = r <- inv@start[%d] = q, r = q - 1.\n", k, k)
		}
		txs = append(txs, buf.String())
	}
	return txs
}

// benchRunTxns races the transactions over `workers` goroutines with
// optimistic commits; a lost CAS tries fine-grained repair first when
// enabled, else re-executes in full.
func benchRunTxns(b *testing.B, db *core.Database, txs []string, workers int, repair bool) {
	b.Helper()
	ctx := context.Background()
	work := make(chan string, len(txs))
	for _, src := range txs {
		work <- src
	}
	close(work)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for src := range work {
				head, err := db.Workspace("main")
				if err != nil {
					panic(err)
				}
				var res *core.ExecResult
				var rec *core.ExecRecord
				if repair {
					res, rec, err = head.ExecRecordedCtx(ctx, src)
				} else {
					res, err = head.ExecCtx(ctx, src)
				}
				if err != nil {
					panic(err)
				}
				for db.CommitIf("main", head, res.Workspace) != nil {
					newHead, err := db.Workspace("main")
					if err != nil {
						panic(err)
					}
					if rec != nil {
						if res2, _, rerr := rec.Repair(ctx, newHead); rerr == nil {
							head, res = newHead, res2
							continue
						}
					}
					head = newHead
					if repair {
						res, rec, err = head.ExecRecordedCtx(ctx, src)
					} else {
						res, err = head.ExecCtx(ctx, src)
					}
					if err != nil {
						panic(err)
					}
				}
			}
		}()
	}
	wg.Wait()
}

func BenchmarkTxRepairVsCoarse(b *testing.B) {
	workers := runtime.GOMAXPROCS(0)
	const n, txCount = 1000, 64
	for _, alpha := range []float64{0.1, 1, 10} {
		seed := benchInventoryWS(b, n)
		txs := benchInventoryTxns(n, txCount, alpha)
		b.Run(fmt.Sprintf("repair/alpha=%g", alpha), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchRunTxns(b, core.NewDatabaseWith(seed), txs, workers, true)
			}
		})
		b.Run(fmt.Sprintf("coarse/alpha=%g", alpha), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchRunTxns(b, core.NewDatabaseWith(seed), txs, workers, false)
			}
		})
		b.Run(fmt.Sprintf("serial/alpha=%g", alpha), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchRunTxns(b, core.NewDatabaseWith(seed), txs, 1, false)
			}
		})
	}
}

// --- E4: incremental view maintenance --------------------------------------

func BenchmarkIVM(b *testing.B) {
	edges := graphgen.Canonical(graphgen.PreferentialAttachment(4000, 3, 7))
	base := map[string]relation.Relation{"e": graphgen.ToRelation(edges)}
	prog := mustCompileB(b, `tri(x, y, z) <- e(x, y), e(y, z), e(x, z).`)
	for _, mode := range []ivm.Mode{ivm.Recompute, ivm.Counting, ivm.DRed, ivm.Sensitivity} {
		for _, ds := range []int{1, 100} {
			b.Run(fmt.Sprintf("%s/delta=%d", mode, ds), func(b *testing.B) {
				m, err := ivm.NewMaintainer(prog, cloneRelsB(base), mode)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var d ivm.Delta
					for k := 0; k < ds; k++ {
						v := int64(100000 + (i*ds+k)*2)
						d.Ins = append(d.Ins, tuple.Ints(v, v+1))
					}
					if _, err := m.Apply(map[string]ivm.Delta{"e": d}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func cloneRelsB(m map[string]relation.Relation) map[string]relation.Relation {
	out := make(map[string]relation.Relation, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// --- E7: live programming ----------------------------------------------------

func BenchmarkLiveProgramming(b *testing.B) {
	for _, views := range []int{10, 100} {
		ws := core.NewWorkspace()
		ws, err := ws.AddBlock("schema", `src(x, y) -> int(x), int(y).`)
		if err != nil {
			b.Fatal(err)
		}
		ts := make([]tuple.Tuple, 2000)
		for i := range ts {
			ts[i] = tuple.Ints(int64(i%200), int64(i))
		}
		ws, err = ws.Load("src", ts)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < views; i++ {
			ws, err = ws.AddBlock(fmt.Sprintf("view%03d", i),
				fmt.Sprintf("v%03d(x) <- src(x, y), y > %d.", i, i))
			if err != nil {
				b.Fatal(err)
			}
		}
		b.Run(fmt.Sprintf("addblock/views=%d", views), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ws.AddBlock("extra", `extra(x) <- src(x, y), y > 1000.`); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E8: treap substrate ------------------------------------------------------

func intOpsB() treap.Ops[int] {
	return treap.Ops[int]{
		Compare: func(a, b int) int { return a - b },
		Hash: func(k int) uint64 {
			h := uint64(k) * 0x9e3779b97f4a7c15
			h ^= h >> 32
			h *= 0xbf58476d1ce4e5b9
			return h ^ h>>29
		},
	}
}

func BenchmarkTreapInsert(b *testing.B) {
	t := treap.New[int, int](intOpsB())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t = t.Insert(i, i)
	}
}

func BenchmarkTreapUnion(b *testing.B) {
	big := treap.New[int, int](intOpsB())
	for i := 0; i < 100000; i++ {
		big = big.Insert(i*2, i)
	}
	small := treap.New[int, int](intOpsB())
	for i := 0; i < 1000; i++ {
		small = small.Insert(i*200+1, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = big.Union(small)
	}
}

func BenchmarkTreapEqualShared(b *testing.B) {
	big := treap.New[int, int](intOpsB())
	for i := 0; i < 100000; i++ {
		big = big.Insert(i, i)
	}
	branch := big
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !big.Equal(branch) {
			b.Fatal("unequal")
		}
	}
}

func BenchmarkTreapDiffOneChange(b *testing.B) {
	big := treap.New[int, int](intOpsB())
	for i := 0; i < 100000; i++ {
		big = big.Insert(i, i)
	}
	mod := big.Insert(-1, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		big.DiffWith(mod, nil, func(int, int) { n++ }, func(int, int) { n++ }, nil)
		if n != 1 {
			b.Fatal("diff miscounted")
		}
	}
}

// --- E9: solver ---------------------------------------------------------------

func BenchmarkSolver(b *testing.B) {
	src := `
		spacePerProd[p] = v -> Product(p), float(v).
		profitPerProd[p] = v -> Product(p), float(v).
		minStock[p] = v -> Product(p), float(v).
		maxStock[p] = v -> Product(p), float(v).
		maxShelf[] = v -> float(v).
		Stock[p] = v -> Product(p), float(v).
		totalShelf[] = u <- agg<<u = sum(z)>> Stock[p] = x, spacePerProd[p] = y, z = x * y.
		totalProfit[] = u <- agg<<u = sum(z)>> Stock[p] = x, profitPerProd[p] = y, z = x * y.
		Product(p) -> Stock[p] >= minStock[p].
		Product(p) -> Stock[p] <= maxStock[p].
		totalShelf[] = u, maxShelf[] = v -> u <= v.
		lang:solve:variable(` + "`Stock" + `).
		lang:solve:max(` + "`totalProfit" + `).`
	prog := mustCompileB(b, src)
	for _, n := range []int{50, 500} {
		retail := workload.Generate(workload.Config{Products: n, Stores: 1, Weeks: 1, Seed: 5})
		rels := retail.Relations()
		rels["maxShelf"] = relation.FromTuples(1, []tuple.Tuple{{tuple.Float(float64(n) * 10)}})
		b.Run(fmt.Sprintf("ground/products=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := solver.Ground(prog, rels); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("solve/products=%d", n), func(b *testing.B) {
			g, err := solver.Ground(prog, rels)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := g.Solve(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E10: predict rules ---------------------------------------------------------

func BenchmarkPredict(b *testing.B) {
	buy, feat := workload.ClassificationSet(50, 30, 0.1, 13)
	prog := mustCompileB(b, `
		SM[s] = m <- predict<<m = logist(v|f)>> Buy[s, c] = v, Feature[s, n] = f.
		Pred[s] = v <- predict<<v = eval(m|f)>> SM[s] = m, Feature[s, n] = f.`)
	b.Run("learn+eval/stores=50", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ctx := engine.NewContext(prog, map[string]relation.Relation{
				"Buy": buy, "Feature": feat,
			}, engine.Options{Models: ml.NewRegistry()})
			if err := ctx.EvalAll(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- engine micro: end-to-end transaction throughput -----------------------------

func BenchmarkWorkspaceExec(b *testing.B) {
	ws := core.NewWorkspace()
	ws, err := ws.AddBlock("s", `
		inventory[x] = v -> string(x), int(v).
		low(x) <- inventory[x] = v, v < 5.`)
	if err != nil {
		b.Fatal(err)
	}
	res, err := ws.Exec(`+inventory["widget"] = 1000000.`)
	if err != nil {
		b.Fatal(err)
	}
	ws = res.Workspace
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := ws.Exec(`^inventory["widget"] = y <- inventory@start["widget"] = x, y = x - 1.`)
		if err != nil {
			b.Fatal(err)
		}
		ws = r.Workspace
	}
}

func BenchmarkQuery(b *testing.B) {
	ws := core.NewWorkspace()
	ws, err := ws.AddBlock("s", `sales(p, v) -> string(p), int(v).`)
	if err != nil {
		b.Fatal(err)
	}
	ts := make([]tuple.Tuple, 10000)
	for i := range ts {
		ts[i] = tuple.Of(tuple.String(fmt.Sprintf("p%04d", i%500)), tuple.Int(int64(i)))
	}
	ws, err = ws.Load("sales", ts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ws.Query(`bySku[p] = u <- agg<<u = sum(v)>> sales(p, v).
			_(p, u) <- bySku[p] = u, u > 90000.`); err != nil {
			b.Fatal(err)
		}
	}
}

// --- domain decomposition (paper §3.2 parallelization) -----------------------

func BenchmarkPartitionedTriangle(b *testing.B) {
	e := fig5Graph(30000)
	mkAtoms := func() []lftj.Atom {
		return []lftj.Atom{
			{Pred: "E1", Iter: e.Iterator(), Vars: []int{0, 1}},
			{Pred: "E2", Iter: e.Iterator(), Vars: []int{1, 2}},
			{Pred: "E3", Iter: e.Iterator(), Vars: []int{0, 2}},
		}
	}
	want := lftjTriangleCount(b, e)
	for _, parts := range []int{1, 2, 4, 8} {
		cuts := lftj.Quantiles(e.Sample(512), parts)
		b.Run(fmt.Sprintf("partitions=%d", parts), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				got, err := lftj.PartitionedCount(3, mkAtoms, cuts, parts)
				if err != nil {
					b.Fatal(err)
				}
				if got != want {
					b.Fatalf("count %d != %d", got, want)
				}
			}
		})
	}
}

// BenchmarkObsOverhead measures the cost of the observability layer on a
// real fixpoint evaluation (transitive closure over a random graph):
// "off" runs with no registry attached — every instrumentation point is
// a nil-handle no-op — and "on" runs with full metrics, per-rule
// profiles, and span tracing enabled.
func BenchmarkObsOverhead(b *testing.B) {
	prog := mustCompileB(b, `
		path(x, y) <- edge(x, y).
		path(x, z) <- path(x, y), edge(y, z).`)
	edges := relation.New(2)
	for i := int64(0); i < 2000; i++ {
		edges = edges.Insert(tuple.Ints(i%400, (i*i*31+7)%400))
	}
	base := map[string]relation.Relation{"edge": edges}

	run := func(b *testing.B, reg *obs.Registry) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ctx := engine.NewContext(prog, base, engine.Options{Obs: reg})
			if err := ctx.EvalAll(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, nil) })
	b.Run("on", func(b *testing.B) { run(b, obs.NewRegistry()) })
}
