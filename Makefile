GO ?= go

.PHONY: ci build vet test race fmt-check bench

ci: fmt-check vet build race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

bench:
	$(GO) test -bench=. -benchmem ./...
