package core

import (
	"bytes"
	"errors"
	"testing"
)

// buildSnapshot commits a little state and returns its raw snapshot.
func buildSnapshot(t *testing.T) []byte {
	t.Helper()
	db := NewDatabase()
	ws, err := db.Workspace(DefaultBranch)
	if err != nil {
		t.Fatal(err)
	}
	ws, err = ws.AddBlock("views", `q(x) <- p(x), x > 1.`)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Commit(DefaultBranch, ws); err != nil {
		t.Fatal(err)
	}
	res, err := ws.Exec(`+p(1). +p(2). +p(3).`)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Commit(DefaultBranch, res.Workspace); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// Every failing load of a damaged snapshot must carry the typed
// ErrCorruptSnapshot so callers (CLI, HTTP, recovery fallback) can react
// without string matching. Not every single-bit flip breaks a gob
// stream — that is exactly why the durable layer adds a checksum — but
// every flip that does fail must fail typed.
func TestLoadDatabaseBitFlipsAreTyped(t *testing.T) {
	raw := buildSnapshot(t)
	failures := 0
	step := len(raw)/97 + 1
	for i := 0; i < len(raw); i += step {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0x20
		_, err := LoadDatabase(bytes.NewReader(mut))
		if err == nil {
			continue
		}
		failures++
		if !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("flip at byte %d: err = %v, not ErrCorruptSnapshot", i, err)
		}
	}
	if failures == 0 {
		t.Fatal("no sampled bit flip failed the load; corruption test is vacuous")
	}
}

func TestLoadDatabaseTruncationsAreTyped(t *testing.T) {
	raw := buildSnapshot(t)
	for _, n := range []int{0, 1, 7, len(raw) / 3, len(raw) / 2, len(raw) - 1} {
		_, err := LoadDatabase(bytes.NewReader(raw[:n]))
		if err == nil {
			t.Fatalf("truncation to %d bytes loaded successfully", n)
		}
		if !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("truncation to %d bytes: err = %v, not ErrCorruptSnapshot", n, err)
		}
	}
}

// An intact snapshot still round-trips, restoring the derived view.
func TestLoadDatabaseRoundtripDerived(t *testing.T) {
	raw := buildSnapshot(t)
	db, err := LoadDatabase(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	ws, err := db.Workspace(DefaultBranch)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := ws.Query(`_(x) <- q(x).`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("derived q has %d tuples after reload, want 2", len(rows))
	}
}
