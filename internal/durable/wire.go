package durable

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"logicblox/internal/core"
)

// The journal-tail wire format: the frames a primary streams over
// GET /journal/tail and a follower's tailer decodes. Like the on-disk
// journal, every frame is CRC-framed and self-contained, so a connection
// that dies mid-frame (the primary crashed mid-send, a proxy cut the
// stream) leaves a recognizable torn tail rather than ambiguous bytes:
//
//	per frame:
//	  uint32 big-endian  payload length
//	  uint32 big-endian  CRC-32C of the payload
//	  payload            1 type byte + type-specific body
//
// Frame types:
//
//	FrameRecord    body is one gob-encoded core.CommitRecord — the same
//	               encoding the on-disk journal uses.
//	FrameHeartbeat body is 16 bytes: the primary's head sequence number
//	               and retained floor, both uint64 big-endian. Sent at
//	               stream start and periodically while the follower is
//	               caught up, so lag is measurable even with no traffic.
//	FrameEOS       empty body: clean end of stream. The primary is
//	               draining or the long-poll window elapsed; the follower
//	               reconnects from its last applied sequence instead of
//	               treating the close as a failure.
var (
	// ErrJournalTruncated reports that a tail request asked for records
	// the checkpointer has already folded into a snapshot generation and
	// dropped from the journal: the follower is too far behind to stream
	// and must resync from a full snapshot.
	ErrJournalTruncated = errors.New("durable: journal truncated before requested sequence")
	// ErrTornFrame reports a tail stream that ended inside a frame (short
	// body, checksum mismatch, undecodable record): everything before the
	// tear was applied, the tear itself is discarded, and the tailer
	// resumes from the last good sequence number.
	ErrTornFrame = errors.New("durable: torn tail frame")
)

// Tail frame types.
const (
	FrameRecord    byte = 'r'
	FrameHeartbeat byte = 'h'
	FrameEOS       byte = 'e'
)

// TailFrame is one decoded frame of a journal-tail stream.
type TailFrame struct {
	Type byte
	// Rec is the journaled commit (FrameRecord only).
	Rec core.CommitRecord
	// Head is the primary's last journaled sequence number and Floor its
	// retained floor (FrameHeartbeat only).
	Head  uint64
	Floor uint64
}

// AppendTailFrame encodes one frame onto dst.
func AppendTailFrame(dst []byte, f TailFrame) ([]byte, error) {
	var payload []byte
	switch f.Type {
	case FrameRecord:
		var body bytes.Buffer
		body.WriteByte(FrameRecord)
		if err := gob.NewEncoder(&body).Encode(f.Rec); err != nil {
			return dst, err
		}
		payload = body.Bytes()
	case FrameHeartbeat:
		payload = make([]byte, 17)
		payload[0] = FrameHeartbeat
		binary.BigEndian.PutUint64(payload[1:], f.Head)
		binary.BigEndian.PutUint64(payload[9:], f.Floor)
	case FrameEOS:
		payload = []byte{FrameEOS}
	default:
		return dst, fmt.Errorf("durable: unknown tail frame type %q", f.Type)
	}
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...), nil
}

// WriteTailFrame encodes one frame to w.
func WriteTailFrame(w io.Writer, f TailFrame) error {
	buf, err := AppendTailFrame(nil, f)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// TailReader decodes a journal-tail stream frame by frame.
type TailReader struct {
	r   *bufio.Reader
	src io.Reader
}

// NewTailReader wraps r for frame decoding.
func NewTailReader(r io.Reader) *TailReader {
	return &TailReader{r: bufio.NewReaderSize(r, 64<<10), src: r}
}

// Close releases the underlying stream when it is closeable (an HTTP
// response body, a file). Closing an already-closed source is the
// source's concern — http bodies tolerate it. A TailReader over a plain
// byte reader closes to a no-op.
func (t *TailReader) Close() error {
	if c, ok := t.src.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// Next returns the next frame. io.EOF means the stream closed cleanly at
// a frame boundary without an EOS marker (the connection dropped between
// frames); ErrTornFrame means it died inside one. Both are resumable —
// nothing after the last good frame was applied.
func (t *TailReader) Next() (TailFrame, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(t.r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return TailFrame{}, io.EOF
		}
		return TailFrame{}, fmt.Errorf("%w: short frame header: %v", ErrTornFrame, err)
	}
	n := binary.BigEndian.Uint32(hdr[0:])
	want := binary.BigEndian.Uint32(hdr[4:])
	if n == 0 || n > maxRecordBytes {
		return TailFrame{}, fmt.Errorf("%w: implausible frame length %d", ErrTornFrame, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(t.r, payload); err != nil {
		return TailFrame{}, fmt.Errorf("%w: short frame body: %v", ErrTornFrame, err)
	}
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return TailFrame{}, fmt.Errorf("%w: frame checksum mismatch (got %08x, want %08x)", ErrTornFrame, got, want)
	}
	f := TailFrame{Type: payload[0]}
	switch f.Type {
	case FrameRecord:
		if err := gob.NewDecoder(bytes.NewReader(payload[1:])).Decode(&f.Rec); err != nil {
			return TailFrame{}, fmt.Errorf("%w: undecodable record: %v", ErrTornFrame, err)
		}
	case FrameHeartbeat:
		if len(payload) != 17 {
			return TailFrame{}, fmt.Errorf("%w: heartbeat body %d bytes, want 17", ErrTornFrame, len(payload))
		}
		f.Head = binary.BigEndian.Uint64(payload[1:])
		f.Floor = binary.BigEndian.Uint64(payload[9:])
	case FrameEOS:
	default:
		return TailFrame{}, fmt.Errorf("%w: unknown frame type %q", ErrTornFrame, payload[0])
	}
	return f, nil
}

// FrameSnapshotBytes frames a snapshot payload with the checksummed
// snapshot header — the body of GET /replica/snapshot, so a follower
// validates the bytes it bootstraps from exactly as recovery validates a
// generation file.
func FrameSnapshotBytes(payload []byte) []byte { return frameSnapshot(payload) }

// UnframeSnapshotBytes validates a framed snapshot and returns its
// payload. Unframed input is ErrCorruptSnapshot — on the wire, unlike on
// disk, there is no legacy raw-gob fallback.
func UnframeSnapshotBytes(raw []byte) ([]byte, error) {
	payload, isFramed, err := unframeSnapshot(raw)
	if err != nil {
		return nil, err
	}
	if !isFramed {
		return nil, fmt.Errorf("%w: missing snapshot frame header", core.ErrCorruptSnapshot)
	}
	return payload, nil
}
