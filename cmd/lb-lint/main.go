// Command lb-lint runs this repository's static-analysis suite.
//
// Modes:
//
//	lb-lint [flags] [packages...]
//	    Run the Go analyzers (immutable, errwrap, ctxloop, obssafe,
//	    cursorclose, and the CFG dataflow trio locksafe, leakcheck,
//	    snapshotescape) over the given package patterns (default ./...).
//	    Any finding is an error: the suite has no suppression mechanism,
//	    so the exit status is 1 unless the tree is clean.
//
//	    -json      emit findings as a JSON array (file/line/analyzer/
//	               severity/message) instead of text
//	    -baseline f diff findings against the committed baseline file:
//	               only findings absent from the baseline fail the run
//	               (stale baseline entries are reported as notes), so CI
//	               gates on *new* findings
//
//	lb-lint -list [-v [packages...]]
//	    List the Go analyzers. With -v, also run the suite over the
//	    packages and print per-package wall-clock per analyzer, so new
//	    analyzers can be budgeted against the `make lint` <60s target.
//
//	lb-lint -logiql file.logic [file.logic...]
//	    Parse each LogiQL file and print warning-tier findings from the
//	    program checker (dead rules, unconsumed heads, singleton
//	    variables, duplicate/subsumed rules, unsatisfiable constraint
//	    bodies). Warnings are advisory and do not fail the run; only
//	    unreadable or unparsable files do.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"logicblox/internal/analysis"
	"logicblox/internal/analysis/logiql"
	"logicblox/internal/parser"
)

func main() {
	logiqlMode := flag.Bool("logiql", false, "check LogiQL program files instead of Go packages")
	list := flag.Bool("list", false, "list the Go analyzers and exit")
	verbose := flag.Bool("v", false, "with -list: run the suite and report per-package analyzer runtime")
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	baseline := flag.String("baseline", "", "baseline JSON file: fail only on findings not in it")
	flag.Parse()

	if *list {
		os.Exit(runList(flag.Args(), *verbose))
	}
	if *logiqlMode {
		os.Exit(runLogiQL(flag.Args()))
	}
	os.Exit(runGo(flag.Args(), *jsonOut, *baseline))
}

// finding is the machine-readable form of one diagnostic — also the
// schema of lint-baseline.json.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Severity string `json:"severity"`
	Message  string `json:"message"`
}

// baselineKey identifies a finding across line drift: a baselined
// finding stays suppressed while the file, analyzer, and message match,
// even as unrelated edits move it.
func (f finding) baselineKey() string {
	return f.File + "\x00" + f.Analyzer + "\x00" + f.Message
}

func toFinding(d analysis.Diagnostic) finding {
	file := d.Pos.Filename
	if wd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(wd, file); err == nil && !filepath.IsAbs(rel) {
			file = rel
		}
	}
	return finding{File: filepath.ToSlash(file), Line: d.Pos.Line, Analyzer: d.Analyzer, Severity: d.Severity, Message: d.Message}
}

func runGo(patterns []string, jsonOut bool, baselinePath string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lb-lint: %v\n", err)
		return 2
	}
	diags, err := analysis.RunAnalyzers(pkgs, analysis.Analyzers())
	if err != nil {
		fmt.Fprintf(os.Stderr, "lb-lint: %v\n", err)
		return 2
	}
	findings := make([]finding, len(diags))
	for i, d := range diags {
		findings[i] = toFinding(d)
	}

	newFindings := findings
	if baselinePath != "" {
		known, err := loadBaseline(baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lb-lint: %v\n", err)
			return 2
		}
		newFindings = nil
		seen := map[string]bool{}
		for _, f := range findings {
			seen[f.baselineKey()] = true
			if !known[f.baselineKey()] {
				newFindings = append(newFindings, f)
			}
		}
		for key, k := range known {
			if k && !seen[key] {
				fmt.Fprintf(os.Stderr, "lb-lint: note: stale baseline entry (finding no longer present): %q\n", key)
			}
		}
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "lb-lint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range newFindings {
			fmt.Printf("%s:%d: %s: %s: %s\n", f.File, f.Line, f.Analyzer, f.Severity, f.Message)
		}
	}
	if len(newFindings) > 0 {
		fmt.Fprintf(os.Stderr, "lb-lint: %d finding(s)\n", len(newFindings))
		return 1
	}
	return 0
}

// loadBaseline reads a baseline file (the -json output format) into a
// set of baseline keys.
func loadBaseline(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading baseline: %w", err)
	}
	var entries []finding
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	known := map[string]bool{}
	for _, f := range entries {
		known[f.baselineKey()] = true
	}
	return known, nil
}

// runList prints the analyzer roster; with verbose it also runs the
// suite over the patterns and prints wall-clock per (package, analyzer).
func runList(patterns []string, verbose bool) int {
	for _, a := range analysis.Analyzers() {
		fmt.Printf("%-15s %s\n", a.Name, a.Doc)
	}
	if !verbose {
		return 0
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lb-lint: %v\n", err)
		return 2
	}
	_, timings, err := analysis.RunAnalyzersTimed(pkgs, analysis.Analyzers())
	if err != nil {
		fmt.Fprintf(os.Stderr, "lb-lint: %v\n", err)
		return 2
	}
	fmt.Printf("\n%-40s %-15s %10s\n", "package", "analyzer", "elapsed")
	perAnalyzer := map[string]time.Duration{}
	for _, tm := range timings {
		pkg := tm.PkgPath
		if pkg == "" {
			pkg = "(finish)"
		}
		fmt.Printf("%-40s %-15s %10s\n", pkg, tm.Analyzer, tm.Elapsed.Round(time.Microsecond))
		perAnalyzer[tm.Analyzer] += tm.Elapsed
	}
	names := make([]string, 0, len(perAnalyzer))
	for name := range perAnalyzer {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("\n%-15s %10s\n", "analyzer", "total")
	for _, name := range names {
		fmt.Printf("%-15s %10s\n", name, perAnalyzer[name].Round(time.Microsecond))
	}
	return 0
}

func runLogiQL(files []string) int {
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "lb-lint -logiql: no files given")
		return 2
	}
	status := 0
	for _, path := range files {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lb-lint: %v\n", err)
			status = 1
			continue
		}
		prog, err := parser.Parse(string(src))
		if err != nil {
			fmt.Fprintf(os.Stderr, "lb-lint: %s: %v\n", path, err)
			status = 1
			continue
		}
		for _, w := range logiql.CheckProgram(prog) {
			fmt.Printf("%s: %s\n", path, w)
		}
	}
	return status
}
