package server

import (
	"net/http"
	"strings"
	"testing"
)

// TestCheckEndpointWarnsWithoutRejecting seeds a workspace, checks a
// candidate program with warning-tier smells, and verifies the same
// candidate still installs: /check is advisory.
func TestCheckEndpointWarnsWithoutRejecting(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	mustOK(t, ts, "POST", "/addblock", Request{Name: "schema",
		Src: `sales(sku, units) -> string(sku), int(units).`}, nil)

	candidate := `audit(sku) <- sales(sku, week).`
	var resp CheckResponse
	mustOK(t, ts, "POST", "/check", Request{Src: candidate}, &resp)
	if !resp.OK || resp.Branch != "main" {
		t.Fatalf("check response = %+v", resp)
	}
	var haveSingleton, haveUnconsumed bool
	for _, w := range resp.Warnings {
		switch w.Check {
		case "singleton-var":
			if strings.Contains(w.Message, `"week"`) {
				haveSingleton = true
			}
		case "unconsumed":
			if strings.Contains(w.Message, `"audit"`) {
				haveUnconsumed = true
			}
		}
		if w.Clause == "" {
			t.Errorf("warning without a clause: %+v", w)
		}
	}
	if !haveSingleton || !haveUnconsumed {
		t.Fatalf("missing expected warnings (singleton=%v unconsumed=%v): %+v",
			haveSingleton, haveUnconsumed, resp.Warnings)
	}

	// The warned candidate must still install cleanly.
	mustOK(t, ts, "POST", "/addblock", Request{Name: "audit", Src: candidate}, nil)
}

// TestCheckEndpointEmptySrcAuditsInstalledLogic verifies /check with no
// candidate audits the branch's installed blocks.
func TestCheckEndpointEmptySrcAuditsInstalledLogic(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	mustOK(t, ts, "POST", "/addblock", Request{Name: "orphan",
		Src: `flagged(sku) <- sales(sku).`}, nil)

	var resp CheckResponse
	mustOK(t, ts, "POST", "/check", Request{}, &resp)
	found := false
	for _, w := range resp.Warnings {
		if w.Check == "unconsumed" && strings.Contains(w.Message, `"flagged"`) {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected unconsumed warning for flagged, got %+v", resp.Warnings)
	}
}

// TestCheckEndpointErrors verifies the parse-error and branch mappings.
func TestCheckEndpointErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	var er ErrorResponse
	if status := do(t, ts, "POST", "/check", Request{Src: "not logiql <-"}, &er); status != http.StatusBadRequest {
		t.Fatalf("parse error: status %d, body %+v", status, er)
	}
	if er.Code != "parse" {
		t.Fatalf("parse error code = %q", er.Code)
	}

	if status := do(t, ts, "POST", "/check", Request{Branch: "nope"}, &er); status != http.StatusNotFound {
		t.Fatalf("unknown branch: status %d, body %+v", status, er)
	}
	if er.Code != "no_such_branch" {
		t.Fatalf("branch error code = %q", er.Code)
	}
}
