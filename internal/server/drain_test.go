package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"logicblox/internal/core"
	"logicblox/internal/durable"
)

// TestGracefulDrainCompletesInflight (run under -race via make
// serve-test): a request already inside a handler when the drain begins
// runs to completion with a 200, a request arriving after the drain
// began is rejected 503 + Retry-After without entering the pool, and the
// access log records both with their request IDs.
func TestGracefulDrainCompletesInflight(t *testing.T) {
	buf := &syncBuffer{}
	release := make(chan struct{})
	entered := make(chan struct{})

	s := New(core.NewDatabase(), Config{AccessLog: newLogger(buf)})
	// A handler that parks inside the pool until released, standing in
	// for a long transaction mid-flight at drain time.
	slowH := s.endpoint("slow", http.MethodPost, true, func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	mux := http.NewServeMux()
	mux.Handle("/slow", slowH)
	mux.Handle("/exec", s.endpoint("exec", http.MethodPost, true, s.handleExec))
	ts := httptest.NewServer(mux)
	defer ts.Close()

	type result struct {
		status int
		err    error
	}
	inflight := make(chan result, 1)
	go func() {
		req, _ := http.NewRequest("POST", ts.URL+"/slow", nil)
		req.Header.Set("X-Request-ID", "drain-inflight")
		resp, err := ts.Client().Do(req)
		if err != nil {
			inflight <- result{0, err}
			return
		}
		resp.Body.Close()
		inflight <- result{resp.StatusCode, nil}
	}()

	<-entered // the slow request is inside the handler
	s.BeginDrain()

	// New work is turned away immediately with 503 + Retry-After.
	req, _ := http.NewRequest("POST", ts.URL+"/exec", nil)
	req.Header.Set("X-Request-ID", "drain-rejected")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("post-drain request: status %d, Retry-After %q",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	// The in-flight request still completes normally.
	close(release)
	select {
	case got := <-inflight:
		if got.err != nil || got.status != http.StatusOK {
			t.Fatalf("in-flight request after drain: %+v", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request did not complete")
	}

	// Both requests appear in the access log: the completed one with 200,
	// the rejected one with 503.
	want := map[string]float64{"drain-inflight": 200, "drain-rejected": 503}
	for _, line := range buf.logLines(t) {
		if line["msg"] != "request" {
			continue
		}
		id, _ := line["request_id"].(string)
		if status, ok := want[id]; ok {
			if line["status"] != status {
				t.Fatalf("access log for %s: status %v, want %v", id, line["status"], status)
			}
			delete(want, id)
		}
	}
	if len(want) != 0 {
		t.Fatalf("missing access log lines for %v in:\n%s", want, buf.String())
	}
	if got := s.reg.Snapshot().Counters["server.drained_rejects"]; got != 1 {
		t.Fatalf("server.drained_rejects = %d", got)
	}
}

// A graceful drain must also terminate open /journal/tail long-polls
// with a clean end-of-stream frame — otherwise http.Server.Shutdown
// hangs on the stream and followers see a timeout instead of a
// reconnect cue.
func TestDrainEndsTailStreams(t *testing.T) {
	_, store, s, ts := newPrimaryServer(t)
	mustOK(t, ts, http.MethodPost, "/exec", Request{Src: "+p(1)."}, nil)
	head := store.Stats().LastSeq

	// Open a tail stream caught up to head: it parks in the long-poll.
	resp, err := ts.Client().Get(fmt.Sprintf("%s/journal/tail?from_seq=%d", ts.URL, head))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tail status %d", resp.StatusCode)
	}
	tr := durable.NewTailReader(resp.Body)
	if f, err := tr.Next(); err != nil || f.Type != durable.FrameHeartbeat {
		t.Fatalf("first frame: %+v, %v (want heartbeat)", f, err)
	}
	waitUntil(t, 5*time.Second, "tail stream registered", func() bool { return s.TailStreams() == 1 })

	s.BeginDrain()

	// The parked stream ends promptly with an explicit EOS frame, well
	// before the poll window would have elapsed.
	type frameResult struct {
		f   durable.TailFrame
		err error
	}
	got := make(chan frameResult, 1)
	go func() {
		f, err := tr.Next()
		got <- frameResult{f, err}
	}()
	select {
	case r := <-got:
		if r.err != nil || r.f.Type != durable.FrameEOS {
			t.Fatalf("frame after drain: %+v, %v (want EOS)", r.f, r.err)
		}
	case <-time.After(time.Second):
		t.Fatal("tail stream not terminated by drain")
	}
	if _, err := tr.Next(); err != io.EOF {
		t.Fatalf("after EOS: %v, want EOF", err)
	}

	// New tail requests while draining are rejected 503.
	resp2, err := ts.Client().Get(ts.URL + "/journal/tail?from_seq=0")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("tail while draining: status %d, want 503", resp2.StatusCode)
	}
}
