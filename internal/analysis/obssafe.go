package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// obsHandleTypes are the observability handle types whose nil pointer is
// a documented, valid no-op: every exported pointer-receiver method must
// guard the receiver before touching its fields, and no caller may
// dereference a handle directly. This is what lets instrumented code run
// unconditionally — `reg.Counter("x").Inc()` with observability off is a
// chain of no-ops, not a panic.
var obsHandleTypes = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
	"Registry":  true,
	"Span":      true,
	"RuleStats": true,
}

// ObssafeAnalyzer enforces the nil-safe observability contract: inside
// package obs, exported methods on the handle types must nil-check their
// receiver (or purely delegate to exported methods that do) before any
// field access; outside it, handles must never be dereferenced.
var ObssafeAnalyzer = &Analyzer{
	Name: "obssafe",
	Doc:  "flag obs metric methods missing their nil-receiver guard and direct handle dereferences",
	Run:  runObssafe,
}

func runObssafe(pass *Pass) error {
	if pass.Pkg.Name() == "obs" {
		checkObsMethods(pass)
		return nil
	}
	checkObsDerefs(pass)
	return nil
}

// checkObsMethods verifies the guard discipline of exported methods
// declared on the handle types.
func checkObsMethods(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			recvField := fn.Recv.List[0]
			if len(recvField.Names) == 0 || recvField.Names[0].Name == "_" {
				continue
			}
			recvIdent := recvField.Names[0]
			recvObj := pass.Info.Defs[recvIdent]
			named := namedOf(recvObj.Type())
			if named == nil || !obsHandleTypes[named.Obj().Name()] {
				continue
			}
			if pos, bad := firstUnguardedUse(pass, fn, recvObj, named); bad {
				pass.Reportf(pos,
					"method %s.%s uses its receiver before the nil guard; obs handles are nil when observability is off, so guard with `if %s == nil { return ... }` first",
					named.Obj().Name(), fn.Name.Name, recvIdent.Name)
			}
		}
	}
}

// firstUnguardedUse scans the method body for a receiver use that happens
// before the nil guard and is not a pure delegation to an exported method
// of the same handle type.
func firstUnguardedUse(pass *Pass, fn *ast.FuncDecl, recvObj types.Object, named *types.Named) (token.Pos, bool) {
	safe := map[*ast.Ident]bool{}

	// Uses inside `recv == nil` / `recv != nil` comparisons are safe.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
		if isNilIdent(pass, y) {
			x, y = y, x
		}
		if !isNilIdent(pass, x) {
			return true
		}
		if id, ok := y.(*ast.Ident); ok && pass.Info.Uses[id] == recvObj {
			safe[id] = true
		}
		return true
	})

	// Delegations `recv.Exported(...)` are safe: the exported callee is
	// itself required to guard.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !sel.Sel.IsExported() {
			return true
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok || pass.Info.Uses[id] != recvObj {
			return true
		}
		if selection, ok := pass.Info.Selections[sel]; ok && selection.Kind() == types.MethodVal {
			if callee := namedOf(selection.Recv()); callee == named {
				safe[id] = true
			}
		}
		return true
	})

	// The guard: a top-level `if recv == nil { ... return }`. Receiver
	// uses positioned after it are safe.
	guardEnd := token.NoPos
	for _, stmt := range fn.Body.List {
		ifs, ok := stmt.(*ast.IfStmt)
		if !ok || ifs.Init != nil {
			continue
		}
		if be, ok := ifs.Cond.(*ast.BinaryExpr); ok && be.Op == token.EQL && terminates(ifs.Body) {
			x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
			if isNilIdent(pass, x) {
				x, y = y, x
			}
			if id, ok := x.(*ast.Ident); ok && pass.Info.Uses[id] == recvObj && isNilIdent(pass, y) {
				guardEnd = ifs.End()
				break
			}
		}
	}

	bad := token.NoPos
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || pass.Info.Uses[id] != recvObj || safe[id] {
			return true
		}
		if guardEnd.IsValid() && id.Pos() > guardEnd {
			return true
		}
		if !bad.IsValid() || id.Pos() < bad {
			bad = id.Pos()
		}
		return true
	})
	return bad, bad.IsValid()
}

// checkObsDerefs flags explicit dereferences of obs handle pointers
// outside package obs: `*h` panics when observability is off.
func checkObsDerefs(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			star, ok := n.(*ast.StarExpr)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[star.X]
			if !ok || tv.IsType() { // `*obs.Counter` in type syntax is fine
				return true
			}
			ptr, ok := tv.Type.Underlying().(*types.Pointer)
			if !ok {
				return true
			}
			named := namedOf(ptr.Elem())
			if named == nil || named.Obj().Pkg() == nil {
				return true
			}
			if named.Obj().Pkg().Name() == "obs" && obsHandleTypes[named.Obj().Name()] {
				pass.Reportf(star.Pos(),
					"dereference of obs handle *%s panics when observability is off; use its nil-safe methods instead",
					named.Obj().Name())
			}
			return true
		})
	}
	return
}

// isNilIdent reports whether expr is the predeclared nil.
func isNilIdent(pass *Pass, expr ast.Expr) bool {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := pass.Info.Uses[id].(*types.Nil)
	return isNil
}

// terminates reports whether the block's last statement is a return.
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	_, ok := b.List[len(b.List)-1].(*ast.ReturnStmt)
	return ok
}
