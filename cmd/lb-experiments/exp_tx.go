package main

import (
	"fmt"
	"runtime"
	"time"

	"logicblox/internal/tuple"
	"logicblox/internal/txrepair"
)

// runRepair reproduces the paper's §3.4 illustration: transaction repair
// vs row-level locking as the conflict parameter α varies (each
// transaction touches any item with probability α·n^(−1/2); two
// transactions share α² items in expectation).
//
// Two kinds of evidence are reported:
//   - measured wall-clock times and speedups over serial execution (only
//     meaningful on multi-core machines; GOMAXPROCS is printed);
//   - hardware-independent conflict metrics: repaired ops per transaction
//     (repair) and blocking lock acquisitions (locking). The paper's
//     claim is that repair work stays proportional to the *shared* items
//     (≈ α² per pair), while locking serializes whole transactions.
func runRepair(quick bool) {
	n := 4000
	txCount := 256
	work := 300 // simulated business logic per adjusted item
	if quick {
		n, txCount, work = 1000, 96, 120
	}
	workerSet := []int{1, 2, 4, 8}
	cpus := runtime.GOMAXPROCS(0)
	fmt.Printf("GOMAXPROCS = %d (speedups are bounded by available cores)\n", cpus)

	for _, alpha := range []float64{0.1, 1, 10} {
		store, txs := txrepair.InventoryWorkloadWork(n, txCount, alpha, 11, work)
		ops := 0
		for _, tx := range txs {
			ops += len(tx.Ops)
		}
		fmt.Printf("alpha=%.1f: E[shared items per pair] = %.2f, avg ops/tx = %d\n",
			alpha, alpha*alpha, ops/len(txs))
		t0 := time.Now()
		want, _ := txrepair.RunSerial(store, txs)
		serial := time.Since(t0)
		fmt.Printf("  serial: %v\n", serial.Round(time.Microsecond))
		fmt.Printf("  %-9s %-12s %-9s %-12s %-12s %-9s %-11s\n",
			"workers", "repair", "speedup", "repair-ops", "locking", "speedup", "lock-waits")
		for _, w := range workerSet {
			t0 = time.Now()
			gotR, statsR := txrepair.RunRepair(store, txs, w)
			dR := time.Since(t0)
			t0 = time.Now()
			gotL, statsL := txrepair.RunLocking(store, txs, w)
			dL := time.Since(t0)
			if !equalStores(want, gotR) || !equalStores(want, gotL) {
				panic("serializability violated")
			}
			fmt.Printf("  %-9d %-12v %-9.2f %-12d %-12v %-9.2f %-11d\n",
				w, dR.Round(time.Microsecond), serial.Seconds()/dR.Seconds(), statsR.Repairs,
				dL.Round(time.Microsecond), serial.Seconds()/dL.Seconds(), statsL.LockWaits)
		}
	}
	fmt.Println("shape check: repair-ops grow with α² (localized conflicts, no locks);")
	fmt.Println("lock-waits grow with α and workers (whole transactions block).")
}

func equalStores(a, b txrepair.Store) bool {
	if a.Len() != b.Len() {
		return false
	}
	ok := true
	a.Range(func(k string, v tuple.Value) bool {
		bv, has := b.Get(k)
		if !has || !tuple.Equal(v, bv) {
			ok = false
			return false
		}
		return true
	})
	return ok
}
