package optimizer_test

import (
	"fmt"
	"math/rand"
	"testing"

	"logicblox/internal/compiler"
	"logicblox/internal/engine"
	"logicblox/internal/optimizer"
	"logicblox/internal/relation"
	"logicblox/internal/tuple"
)

// Property: every order CandidateOrders returns is a valid permutation
// of [0, n), there are no duplicates, the identity is always among
// them, and the count respects the cap.
func TestCandidateOrdersProperties(t *testing.T) {
	for n := 0; n <= 8; n++ {
		for _, max := range []int{0, 1, 2, 6, 24, 1000} {
			orders := optimizer.CandidateOrders(n, max)
			effMax := max
			if effMax <= 0 {
				effMax = 24
			}
			if n > 0 && len(orders) == 0 {
				t.Fatalf("n=%d max=%d: no candidates", n, max)
			}
			seen := map[string]bool{}
			for _, o := range orders {
				if len(o) != n {
					t.Fatalf("n=%d max=%d: order %v has wrong length", n, max, o)
				}
				hit := make([]bool, n)
				for _, s := range o {
					if s < 0 || s >= n || hit[s] {
						t.Fatalf("n=%d max=%d: %v is not a permutation", n, max, o)
					}
					hit[s] = true
				}
				k := fmt.Sprint(o)
				if seen[k] {
					t.Fatalf("n=%d max=%d: duplicate order %v", n, max, o)
				}
				seen[k] = true
			}
			// The cap bounds the enumeration whenever it kicks in; the
			// full-permutation family is returned only when it fits.
			if len(orders) > effMax && len(orders) != fact(n) {
				t.Fatalf("n=%d max=%d: %d orders exceed cap", n, max, len(orders))
			}
			if n > 0 && n <= 4 && effMax >= fact(n) {
				if len(orders) != fact(n) {
					t.Fatalf("n=%d max=%d: %d orders, want all %d permutations", n, max, len(orders), fact(n))
				}
				if !seen[fmt.Sprint(identity(n))] {
					t.Fatalf("n=%d max=%d: identity missing", n, max)
				}
			}
		}
	}
}

func fact(n int) int {
	f := 1
	for i := 2; i <= n; i++ {
		f *= i
	}
	return f
}

// Property: ReorderRule(r, order) round-trips — reordering with any
// candidate order then evaluating yields exactly the tuples of the
// identity plan, on randomized rule shapes and data.
func TestReorderRuleEvaluationEquivalence(t *testing.T) {
	shapes := []string{
		`out(a, c) <- r(a, b), s(b, c).`,
		`out(a, b, c) <- r(a, b), s(b, c), t(c).`,
		`out(a, d) <- r(a, b), s(b, c), u(c, d).`,
		`out(a, b, c, d) <- r(a, b), s(b, c), u(c, d), r(d, a).`,
	}
	for si, shape := range shapes {
		prog, rule := compileRule(t, shape)
		rng := rand.New(rand.NewSource(int64(si) + 7))
		base := map[string]relation.Relation{
			"r": relation.New(2), "s": relation.New(2),
			"t": relation.New(1), "u": relation.New(2),
		}
		for i := 0; i < 120; i++ {
			base["r"] = base["r"].Insert(tuple.Ints(rng.Int63n(9), rng.Int63n(9)))
			base["s"] = base["s"].Insert(tuple.Ints(rng.Int63n(9), rng.Int63n(9)))
			base["u"] = base["u"].Insert(tuple.Ints(rng.Int63n(9), rng.Int63n(9)))
		}
		base["t"] = base["t"].Insert(tuple.Ints(rng.Int63n(9)))

		want, err := engine.NewContext(prog, base, engine.Options{}).EvalRule(rule, nil)
		if err != nil {
			t.Fatalf("%s: %v", shape, err)
		}
		for _, order := range optimizer.CandidateOrders(rule.NumJoinVars, 0) {
			plan, err := compiler.ReorderRule(rule, order)
			if err != nil {
				t.Fatalf("%s order %v: %v", shape, order, err)
			}
			// The reordered plan is a permutation of the same rule, not a
			// different one: head and structural identity are preserved.
			if plan.HeadName != rule.HeadName || len(plan.Atoms) != len(rule.Atoms) {
				t.Fatalf("%s order %v: reorder changed rule shape", shape, order)
			}
			got, err := engine.NewContext(prog, base, engine.Options{}).EvalRule(plan, nil)
			if err != nil {
				t.Fatalf("%s order %v: %v", shape, order, err)
			}
			if !got.Equal(want) {
				t.Fatalf("%s order %v: %d tuples != identity's %d", shape, order, got.Len(), want.Len())
			}
		}
	}
}

// Property: ChooseOrder's Evaluated never exceeds the candidate count
// for the cap, and its chosen Order is itself a valid permutation that
// CandidateOrders could have produced.
func TestChooseOrderWithinCandidateSet(t *testing.T) {
	_, rule := compileRule(t, `out(a, b, c) <- r(a, b), s(b, c), t(c).`)
	base := map[string]relation.Relation{"r": relation.New(2), "s": relation.New(2), "t": relation.New(1)}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 200; i++ {
		base["r"] = base["r"].Insert(tuple.Ints(rng.Int63n(20), rng.Int63n(20)))
		base["s"] = base["s"].Insert(tuple.Ints(rng.Int63n(20), rng.Int63n(20)))
	}
	base["t"] = base["t"].Insert(tuple.Ints(3))
	rels := func(name string) relation.Relation { return base[name] }

	for _, max := range []int{1, 2, 4, 24} {
		res, err := optimizer.ChooseOrder(rule, rels, optimizer.Options{MaxCandidates: max})
		if err != nil {
			t.Fatal(err)
		}
		cands := optimizer.CandidateOrders(rule.NumJoinVars, max)
		if res.Evaluated > len(cands) {
			t.Fatalf("max=%d: evaluated %d > %d candidates", max, res.Evaluated, len(cands))
		}
		var member bool
		for _, o := range cands {
			if fmt.Sprint(o) == fmt.Sprint(res.Order) {
				member = true
				break
			}
		}
		if !member {
			t.Fatalf("max=%d: chosen order %v not among candidates %v", max, res.Order, cands)
		}
	}
}
