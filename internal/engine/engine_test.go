package engine

import (
	"fmt"
	"strings"
	"testing"

	"logicblox/internal/compiler"
	"logicblox/internal/lftj"
	"logicblox/internal/ml"
	"logicblox/internal/parser"
	"logicblox/internal/relation"
	"logicblox/internal/tuple"
)

func mustCompile(t *testing.T, src string) *compiler.Program {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c, err := compiler.Compile(p)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return c
}

func relOf(arity int, ts ...tuple.Tuple) relation.Relation {
	return relation.FromTuples(arity, ts)
}

func TestEvalSimpleJoinRule(t *testing.T) {
	prog := mustCompile(t, `grandparent(x, z) <- parent(x, y), parent(y, z).`)
	ctx := NewContext(prog, map[string]relation.Relation{
		"parent": relOf(2,
			tuple.Strings("ann", "bob"),
			tuple.Strings("bob", "cat"),
			tuple.Strings("cat", "dan")),
	}, Options{})
	if err := ctx.EvalAll(); err != nil {
		t.Fatal(err)
	}
	gp := ctx.Relation("grandparent")
	if gp.Len() != 2 || !gp.Contains(tuple.Strings("ann", "cat")) || !gp.Contains(tuple.Strings("bob", "dan")) {
		t.Fatalf("grandparent = %v", gp.Slice())
	}
}

func TestEvalTransitiveClosure(t *testing.T) {
	prog := mustCompile(t, `
		path(x, y) <- edge(x, y).
		path(x, z) <- path(x, y), edge(y, z).`)
	edges := relation.New(2)
	// A chain 0→1→…→20 plus a cycle 5→3.
	for i := int64(0); i < 20; i++ {
		edges = edges.Insert(tuple.Ints(i, i+1))
	}
	edges = edges.Insert(tuple.Ints(5, 3))
	ctx := NewContext(prog, map[string]relation.Relation{"edge": edges}, Options{})
	if err := ctx.EvalAll(); err != nil {
		t.Fatal(err)
	}
	path := ctx.Relation("path")
	if !path.Contains(tuple.Ints(0, 20)) {
		t.Fatalf("missing transitive path 0→20")
	}
	if !path.Contains(tuple.Ints(5, 4)) { // via the cycle 5→3→4
		t.Fatalf("missing path through cycle")
	}
	// Model check: count reachable pairs with a simple BFS.
	adj := map[int64][]int64{}
	edges.ForEach(func(e tuple.Tuple) bool {
		adj[e[0].AsInt()] = append(adj[e[0].AsInt()], e[1].AsInt())
		return true
	})
	want := 0
	for src := range adj {
		seen := map[int64]bool{}
		stack := append([]int64(nil), adj[src]...)
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[n] {
				continue
			}
			seen[n] = true
			stack = append(stack, adj[n]...)
		}
		want += len(seen)
	}
	if path.Len() != want {
		t.Fatalf("path count = %d, want %d", path.Len(), want)
	}
}

func TestEvalMutualRecursion(t *testing.T) {
	prog := mustCompile(t, `
		even(x) <- zero(x).
		even(y) <- odd(x), succ(x, y).
		odd(y) <- even(x), succ(x, y).`)
	succ := relation.New(2)
	for i := int64(0); i < 10; i++ {
		succ = succ.Insert(tuple.Ints(i, i+1))
	}
	ctx := NewContext(prog, map[string]relation.Relation{
		"zero": relOf(1, tuple.Ints(0)),
		"succ": succ,
	}, Options{})
	if err := ctx.EvalAll(); err != nil {
		t.Fatal(err)
	}
	even, odd := ctx.Relation("even"), ctx.Relation("odd")
	for i := int64(0); i <= 10; i++ {
		if even.Contains(tuple.Ints(i)) != (i%2 == 0) {
			t.Errorf("even(%d) = %v", i, even.Contains(tuple.Ints(i)))
		}
		if odd.Contains(tuple.Ints(i)) != (i%2 == 1) {
			t.Errorf("odd(%d) = %v", i, odd.Contains(tuple.Ints(i)))
		}
	}
}

func TestEvalNegation(t *testing.T) {
	prog := mustCompile(t, `
		lang_edb(n) <- lang_predname(n), !lang_idb(n).`)
	ctx := NewContext(prog, map[string]relation.Relation{
		"lang_predname": relOf(1, tuple.Strings("a"), tuple.Strings("b"), tuple.Strings("c")),
		"lang_idb":      relOf(1, tuple.Strings("b")),
	}, Options{})
	if err := ctx.EvalAll(); err != nil {
		t.Fatal(err)
	}
	edb := ctx.Relation("lang_edb")
	if edb.Len() != 2 || edb.Contains(tuple.Strings("b")) {
		t.Fatalf("lang_edb = %v", edb.Slice())
	}
}

func TestEvalArithmeticAndFilters(t *testing.T) {
	prog := mustCompile(t, `
		profit[sku] = z <- sellingPrice[sku] = x, buyingPrice[sku] = y, z = x - y.
		cheap(sku) <- profit[sku] = z, z < 3.`)
	ctx := NewContext(prog, map[string]relation.Relation{
		"sellingPrice": relOf(2,
			tuple.Of(tuple.String("a"), tuple.Int(10)),
			tuple.Of(tuple.String("b"), tuple.Int(5))),
		"buyingPrice": relOf(2,
			tuple.Of(tuple.String("a"), tuple.Int(4)),
			tuple.Of(tuple.String("b"), tuple.Int(3))),
	}, Options{})
	if err := ctx.EvalAll(); err != nil {
		t.Fatal(err)
	}
	profit := ctx.Relation("profit")
	if v, ok := profit.FuncGet(tuple.Strings("a")); !ok || v.AsInt() != 6 {
		t.Fatalf("profit[a] = %v, %v", v, ok)
	}
	cheap := ctx.Relation("cheap")
	if cheap.Len() != 1 || !cheap.Contains(tuple.Strings("b")) {
		t.Fatalf("cheap = %v", cheap.Slice())
	}
}

func TestEvalAggregationSum(t *testing.T) {
	// The paper's Figure 2 total-shelf-space rule.
	prog := mustCompile(t, `
		totalShelf[] = u <- agg<<u = sum(z)>> Stock[p] = x, spacePerProd[p] = y, z = x * y.`)
	ctx := NewContext(prog, map[string]relation.Relation{
		"Stock": relOf(2,
			tuple.Of(tuple.String("p1"), tuple.Float(2)),
			tuple.Of(tuple.String("p2"), tuple.Float(3))),
		"spacePerProd": relOf(2,
			tuple.Of(tuple.String("p1"), tuple.Float(1.5)),
			tuple.Of(tuple.String("p2"), tuple.Float(2))),
	}, Options{})
	if err := ctx.EvalAll(); err != nil {
		t.Fatal(err)
	}
	total := ctx.Relation("totalShelf")
	if total.Len() != 1 {
		t.Fatalf("totalShelf = %v", total.Slice())
	}
	v := total.Slice()[0][0]
	if v.AsFloat() != 2*1.5+3*2 {
		t.Fatalf("totalShelf = %v, want 9", v)
	}
}

func TestEvalGroupedAggregates(t *testing.T) {
	prog := mustCompile(t, `
		salesByStore[s] = u <- agg<<u = sum(v)>> sales(s, p, v).
		itemsByStore[s] = u <- agg<<u = count()>> sales(s, p, v).
		maxSale[s] = u <- agg<<u = max(v)>> sales(s, p, v).
		minSale[s] = u <- agg<<u = min(v)>> sales(s, p, v).
		avgSale[s] = u <- agg<<u = avg(v)>> sales(s, p, v).`)
	ctx := NewContext(prog, map[string]relation.Relation{
		"sales": relOf(3,
			tuple.Of(tuple.String("s1"), tuple.String("a"), tuple.Int(10)),
			tuple.Of(tuple.String("s1"), tuple.String("b"), tuple.Int(20)),
			tuple.Of(tuple.String("s2"), tuple.String("a"), tuple.Int(5))),
	}, Options{})
	if err := ctx.EvalAll(); err != nil {
		t.Fatal(err)
	}
	check := func(pred, store string, want tuple.Value) {
		t.Helper()
		v, ok := ctx.Relation(pred).FuncGet(tuple.Strings(store))
		if !ok || !tuple.Equal(v, want) {
			got, _ := ctx.Relation(pred).FuncGet(tuple.Strings(store))
			t.Errorf("%s[%s] = %v, want %v", pred, store, got, want)
		}
	}
	check("salesByStore", "s1", tuple.Int(30))
	check("salesByStore", "s2", tuple.Int(5))
	check("itemsByStore", "s1", tuple.Int(2))
	check("maxSale", "s1", tuple.Int(20))
	check("minSale", "s1", tuple.Int(10))
	check("avgSale", "s1", tuple.Float(15))
}

func TestFunctionalDependencyViolation(t *testing.T) {
	prog := mustCompile(t, `out[x] = y <- in(x, y).`)
	ctx := NewContext(prog, map[string]relation.Relation{
		"in": relOf(2, tuple.Ints(1, 10), tuple.Ints(1, 20)),
	}, Options{})
	err := ctx.EvalAll()
	if err == nil || !strings.Contains(err.Error(), "functional dependency") {
		t.Fatalf("expected FD violation, got %v", err)
	}
}

// TestFig2Constraints runs the paper's Figure 2 program: stock bounds and
// the shelf-space constraint.
func TestFig2Constraints(t *testing.T) {
	src := `
		spacePerProd[p] = v -> Product(p), float(v).
		minStock[p] = v -> Product(p), float(v).
		maxStock[p] = v -> Product(p), float(v).
		maxShelf[] = v -> float[64](v).
		Stock[p] = v -> Product(p), float(v).
		totalShelf[] = u <- agg<<u = sum(z)>> Stock[p] = x, spacePerProd[p] = y, z = x * y.
		Product(p) -> Stock[p] >= minStock[p].
		Product(p) -> Stock[p] <= maxStock[p].
		totalShelf[] = u, maxShelf[] = v -> u <= v.`
	prog := mustCompile(t, src)
	base := func(stockP1 float64) map[string]relation.Relation {
		return map[string]relation.Relation{
			"Product":      relOf(1, tuple.Strings("p1"), tuple.Strings("p2")),
			"spacePerProd": relOf(2, tuple.Of(tuple.String("p1"), tuple.Float(2)), tuple.Of(tuple.String("p2"), tuple.Float(1))),
			"minStock":     relOf(2, tuple.Of(tuple.String("p1"), tuple.Float(1)), tuple.Of(tuple.String("p2"), tuple.Float(1))),
			"maxStock":     relOf(2, tuple.Of(tuple.String("p1"), tuple.Float(10)), tuple.Of(tuple.String("p2"), tuple.Float(10))),
			"maxShelf":     relOf(1, tuple.Of(tuple.Float(20))),
			"Stock":        relOf(2, tuple.Of(tuple.String("p1"), tuple.Float(stockP1)), tuple.Of(tuple.String("p2"), tuple.Float(2))),
		}
	}

	// Legal state.
	ctx := NewContext(prog, base(3), Options{})
	if err := ctx.EvalAll(); err != nil {
		t.Fatal(err)
	}
	vs, err := ctx.CheckConstraints()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("legal state reported violations: %v", vs)
	}

	// Shelf capacity exceeded: Stock[p1]=12 → totalShelf = 26 > 20, and
	// also maxStock violated (12 > 10).
	ctx = NewContext(prog, base(12), Options{})
	if err := ctx.EvalAll(); err != nil {
		t.Fatal(err)
	}
	vs, err = ctx.CheckConstraints()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) < 2 {
		t.Fatalf("expected shelf and stock violations, got %v", vs)
	}
}

func TestConstraintMissingRequiredFact(t *testing.T) {
	prog := mustCompile(t, `
		Product(p) -> Stock[p] = _.`)
	ctx := NewContext(prog, map[string]relation.Relation{
		"Product": relOf(1, tuple.Strings("p1"), tuple.Strings("p2")),
		"Stock":   relOf(2, tuple.Of(tuple.String("p1"), tuple.Float(1))),
	}, Options{})
	if err := ctx.EvalAll(); err != nil {
		t.Fatal(err)
	}
	vs, err := ctx.CheckConstraints()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || !strings.Contains(vs[0].Reason, "missing") {
		t.Fatalf("violations = %v", vs)
	}
}

func TestConstraintTypeCheck(t *testing.T) {
	prog := mustCompile(t, `Stock[p] = v -> string(p), float(v).`)
	ctx := NewContext(prog, map[string]relation.Relation{
		"Stock": relOf(2, tuple.Of(tuple.String("ok"), tuple.Float(1)), tuple.Of(tuple.Int(3), tuple.Float(1))),
	}, Options{})
	if err := ctx.EvalAll(); err != nil {
		t.Fatal(err)
	}
	vs, err := ctx.CheckConstraints()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 {
		t.Fatalf("violations = %v", vs)
	}
}

func TestEvalWithConstantsInAtoms(t *testing.T) {
	prog := mustCompile(t, `hot(p) <- sales(p, "2015-01", v), v > 100.`)
	ctx := NewContext(prog, map[string]relation.Relation{
		"sales": relOf(3,
			tuple.Of(tuple.String("a"), tuple.String("2015-01"), tuple.Int(150)),
			tuple.Of(tuple.String("b"), tuple.String("2015-01"), tuple.Int(50)),
			tuple.Of(tuple.String("c"), tuple.String("2015-02"), tuple.Int(999))),
	}, Options{})
	if err := ctx.EvalAll(); err != nil {
		t.Fatal(err)
	}
	hot := ctx.Relation("hot")
	if hot.Len() != 1 || !hot.Contains(tuple.Strings("a")) {
		t.Fatalf("hot = %v", hot.Slice())
	}
}

func TestEvalFactRules(t *testing.T) {
	prog := mustCompile(t, `
		answer[] = 42.
		greeting("hello").`)
	ctx := NewContext(prog, nil, Options{})
	if err := ctx.EvalAll(); err != nil {
		t.Fatal(err)
	}
	if v, ok := ctx.Relation("answer").FuncGet(tuple.Tuple{}); !ok || v.AsInt() != 42 {
		t.Fatalf("answer = %v, %v", v, ok)
	}
	if !ctx.Relation("greeting").Contains(tuple.Strings("hello")) {
		t.Fatalf("greeting missing")
	}
}

func TestPredictLearnAndEval(t *testing.T) {
	prog := mustCompile(t, `
		SM[s] = m <- predict<<m = logist(v|f)>> Buy[s, c] = v, Feature[s, n] = f.
		Pred[s] = v <- predict<<v = eval(m|f)>> SM[s] = m, Feature[s, n] = f.`)
	// Store s1: feature x=1 → buys (all targets 1); store s2: x=1 → never buys.
	buy := relation.New(3)
	feat := relation.New(3)
	for c := int64(0); c < 6; c++ {
		buy = buy.Insert(tuple.Of(tuple.String("s1"), tuple.Int(c), tuple.Float(1)))
		buy = buy.Insert(tuple.Of(tuple.String("s2"), tuple.Int(c), tuple.Float(0)))
	}
	feat = feat.Insert(tuple.Of(tuple.String("s1"), tuple.String("x"), tuple.Float(1)))
	feat = feat.Insert(tuple.Of(tuple.String("s2"), tuple.String("x"), tuple.Float(1)))
	models := ml.NewRegistry()
	ctx := NewContext(prog, map[string]relation.Relation{
		"Buy": buy, "Feature": feat,
	}, Options{Models: models})
	if err := ctx.EvalAll(); err != nil {
		t.Fatal(err)
	}
	if models.Len() != 2 {
		t.Fatalf("expected 2 models, got %d", models.Len())
	}
	p1, ok1 := ctx.Relation("Pred").FuncGet(tuple.Strings("s1"))
	p2, ok2 := ctx.Relation("Pred").FuncGet(tuple.Strings("s2"))
	if !ok1 || !ok2 {
		t.Fatalf("missing predictions")
	}
	if p1.AsFloat() < 0.7 || p2.AsFloat() > 0.3 {
		t.Fatalf("predictions not separated: s1=%v s2=%v", p1, p2)
	}
}

func TestSensitivityRecordingDuringEval(t *testing.T) {
	prog := mustCompile(t, `t(x, y, z) <- e(x, y), e(y, z), e(x, z).`)
	idx := lftj.NewSensitivityIndex()
	ctx := NewContext(prog, map[string]relation.Relation{
		"e": relOf(2, tuple.Ints(1, 2), tuple.Ints(2, 3), tuple.Ints(1, 3)),
	}, Options{Sens: idx})
	if err := ctx.EvalAll(); err != nil {
		t.Fatal(err)
	}
	if ctx.Relation("t").Len() != 1 {
		t.Fatalf("triangles = %v", ctx.Relation("t").Slice())
	}
	if idx.Len() == 0 {
		t.Fatalf("no sensitivity intervals recorded")
	}
	// The triangle's own edges must be sensitive.
	for _, e := range [][2]int64{{1, 2}, {2, 3}, {1, 3}} {
		if !idx.Affected("e", tuple.Ints(e[0], e[1])) {
			t.Errorf("edge %v should be sensitive", e)
		}
	}
}

func TestParallelEvaluationEquivalence(t *testing.T) {
	// Many independent rules in one schema: parallel evaluation must match
	// serial results exactly.
	src := ""
	base := map[string]relation.Relation{}
	for i := 0; i < 12; i++ {
		src += fmt.Sprintf("v%02d(a, c) <- r%02d(a, b), s%02d(b, c).\n", i, i, i)
		r := relation.New(2)
		s := relation.New(2)
		for j := int64(0); j < 200; j++ {
			r = r.Insert(tuple.Ints(j%20, (j+int64(i))%15))
			s = s.Insert(tuple.Ints(j%15, (j*3+int64(i))%25))
		}
		base[fmt.Sprintf("r%02d", i)] = r
		base[fmt.Sprintf("s%02d", i)] = s
	}
	prog := mustCompile(t, src)

	serial := NewContext(prog, base, Options{})
	if err := serial.EvalAll(); err != nil {
		t.Fatal(err)
	}
	parallel := NewContext(prog, base, Options{Parallel: 4})
	if err := parallel.EvalAll(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		name := fmt.Sprintf("v%02d", i)
		if !serial.Relation(name).Equal(parallel.Relation(name)) {
			t.Fatalf("%s differs between serial and parallel evaluation", name)
		}
	}
}

func TestParallelWithSecondaryIndexes(t *testing.T) {
	// Rules needing permuted indices share the perm cache under the mutex.
	src := `
		a1(x, y) <- e(y, x), f(x).
		a2(x, y) <- e(y, x), g(x).
		a3(x, y) <- e(y, x), h(x).`
	e := relation.New(2)
	uf := relation.New(1)
	for i := int64(0); i < 300; i++ {
		e = e.Insert(tuple.Ints(i%30, i%17))
		uf = uf.Insert(tuple.Ints(i % 13))
	}
	base := map[string]relation.Relation{"e": e, "f": uf, "g": uf, "h": uf}
	prog := mustCompile(t, src)
	serial := NewContext(prog, base, Options{})
	if err := serial.EvalAll(); err != nil {
		t.Fatal(err)
	}
	par := NewContext(prog, base, Options{Parallel: 3})
	if err := par.EvalAll(); err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"a1", "a2", "a3"} {
		if !serial.Relation(n).Equal(par.Relation(n)) {
			t.Fatalf("%s differs", n)
		}
	}
}
