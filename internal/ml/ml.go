// Package ml implements the built-in machine-learning library backing
// LogiQL's predict P2P rules (paper §2.3.2): logistic and linear
// regression over named feature vectors, plus the model registry that
// maps model handles (values stored in predicates) to trained models.
package ml

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Example is one training example: a named feature vector and a target.
type Example struct {
	Features map[string]float64
	Target   float64
}

// Model is a trained predictive model.
type Model interface {
	// Predict evaluates the model on a feature vector.
	Predict(features map[string]float64) float64
	// Kind names the model family ("logist", "linear").
	Kind() string
}

// featureNames returns the sorted union of feature names across examples,
// for a stable parameter layout.
func featureNames(examples []Example) []string {
	set := map[string]bool{}
	for _, ex := range examples {
		for f := range ex.Features {
			set[f] = true
		}
	}
	names := make([]string, 0, len(set))
	for f := range set {
		names = append(names, f)
	}
	sort.Strings(names)
	return names
}

// LogisticModel is a binary logistic-regression model. Targets are
// interpreted as probabilities/labels in [0,1]; Predict returns the
// sigmoid activation.
type LogisticModel struct {
	Names   []string
	Weights []float64
	Bias    float64
}

// Kind implements Model.
func (m *LogisticModel) Kind() string { return "logist" }

// Predict implements Model.
func (m *LogisticModel) Predict(features map[string]float64) float64 {
	z := m.Bias
	for i, n := range m.Names {
		z += m.Weights[i] * features[n]
	}
	return sigmoid(z)
}

func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

// LogisticOptions tune gradient descent.
type LogisticOptions struct {
	LearningRate float64 // default 0.5
	Epochs       int     // default 500
	L2           float64 // ridge penalty, default 1e-4
}

// TrainLogistic fits a logistic-regression model by batch gradient
// descent. Targets outside [0,1] are clamped.
func TrainLogistic(examples []Example, opts LogisticOptions) (*LogisticModel, error) {
	if len(examples) == 0 {
		return nil, fmt.Errorf("ml: no training examples")
	}
	if opts.LearningRate == 0 {
		opts.LearningRate = 0.5
	}
	if opts.Epochs == 0 {
		opts.Epochs = 500
	}
	if opts.L2 == 0 {
		opts.L2 = 1e-4
	}
	names := featureNames(examples)
	m := &LogisticModel{Names: names, Weights: make([]float64, len(names))}
	n := float64(len(examples))
	gradW := make([]float64, len(names))
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		for i := range gradW {
			gradW[i] = opts.L2 * m.Weights[i]
		}
		gradB := 0.0
		for _, ex := range examples {
			y := clamp01(ex.Target)
			p := m.Predict(ex.Features)
			d := p - y
			for i, name := range names {
				gradW[i] += d * ex.Features[name] / n
			}
			gradB += d / n
		}
		for i := range m.Weights {
			m.Weights[i] -= opts.LearningRate * gradW[i]
		}
		m.Bias -= opts.LearningRate * gradB
	}
	return m, nil
}

func clamp01(y float64) float64 {
	switch {
	case y < 0:
		return 0
	case y > 1:
		return 1
	}
	return y
}

// LinearModel is an ordinary least-squares linear regression model.
type LinearModel struct {
	Names   []string
	Weights []float64
	Bias    float64
}

// Kind implements Model.
func (m *LinearModel) Kind() string { return "linear" }

// Predict implements Model.
func (m *LinearModel) Predict(features map[string]float64) float64 {
	z := m.Bias
	for i, n := range m.Names {
		z += m.Weights[i] * features[n]
	}
	return z
}

// TrainLinear fits least squares via the normal equations with a small
// ridge term for numerical stability, solved by Gaussian elimination.
func TrainLinear(examples []Example) (*LinearModel, error) {
	if len(examples) == 0 {
		return nil, fmt.Errorf("ml: no training examples")
	}
	names := featureNames(examples)
	d := len(names) + 1 // +1 for bias
	// Normal equations: (XᵀX + λI) w = Xᵀy.
	a := make([][]float64, d)
	for i := range a {
		a[i] = make([]float64, d+1)
	}
	row := make([]float64, d)
	for _, ex := range examples {
		row[0] = 1
		for i, n := range names {
			row[i+1] = ex.Features[n]
		}
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				a[i][j] += row[i] * row[j]
			}
			a[i][d] += row[i] * ex.Target
		}
	}
	const ridge = 1e-9
	for i := 0; i < d; i++ {
		a[i][i] += ridge
	}
	w, err := solveGauss(a)
	if err != nil {
		return nil, err
	}
	return &LinearModel{Names: names, Bias: w[0], Weights: w[1:]}, nil
}

// solveGauss solves the augmented system a (d rows of d+1 columns) by
// Gaussian elimination with partial pivoting. It mutates a.
func solveGauss(a [][]float64) ([]float64, error) {
	d := len(a)
	for col := 0; col < d; col++ {
		// Pivot.
		best := col
		for r := col + 1; r < d; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[best][col]) {
				best = r
			}
		}
		a[col], a[best] = a[best], a[col]
		if math.Abs(a[col][col]) < 1e-12 {
			return nil, fmt.Errorf("ml: singular system")
		}
		pivot := a[col][col]
		for j := col; j <= d; j++ {
			a[col][j] /= pivot
		}
		for r := 0; r < d; r++ {
			if r == col || a[r][col] == 0 {
				continue
			}
			f := a[r][col]
			for j := col; j <= d; j++ {
				a[r][j] -= f * a[col][j]
			}
		}
	}
	out := make([]float64, d)
	for i := 0; i < d; i++ {
		out[i] = a[i][d]
	}
	return out, nil
}

// Registry stores trained models under integer handles; the handle is the
// value a predict rule derives into its head predicate ("the model object
// is a handle to a representation of the model", paper §2.3.2).
type Registry struct {
	mu     sync.Mutex
	models map[int64]Model
	next   int64
}

// NewRegistry returns an empty model registry.
func NewRegistry() *Registry {
	return &Registry{models: map[int64]Model{}, next: 1}
}

// Put stores a model and returns its handle.
func (r *Registry) Put(m Model) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := r.next
	r.next++
	r.models[id] = m
	return id
}

// Get returns the model for a handle.
func (r *Registry) Get(id int64) (Model, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.models[id]
	return m, ok
}

// Len returns the number of stored models.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.models)
}
