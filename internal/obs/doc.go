// Package obs is the engine-wide observability layer: a lightweight,
// allocation-conscious metrics and tracing substrate shared by every hot
// layer of the system (engine evaluation, leapfrog triejoin, incremental
// maintenance, transactions, and the persistent-storage substrate).
//
// # Design
//
// The central type is the Registry. A Registry hands out named metric
// handles — Counter (monotone), Gauge (last-value), Histogram (duration
// distribution) — plus per-rule profile records (RuleStats) and
// hierarchical Spans. Everything is safe for concurrent use.
//
// The layer is built to cost nothing when disabled: a nil *Registry is a
// valid no-op registry, and every handle it returns (nil *Counter, nil
// *Gauge, nil *Histogram, nil *RuleStats, nil *Span) is itself a valid
// no-op. Call sites therefore never branch on "is observability on" —
// they just call through, and the nil receiver turns the call into a
// single compare-and-return. Hot loops (the per-seek counters inside a
// leapfrog run) use plain local int64 metrics owned by one goroutine and
// fold them into shared atomic counters once per rule evaluation.
//
// # Metric namespace
//
// Names are dot-separated, lowest-frequency component first:
//
//	engine.*   evaluation (strata, fixpoint rounds)
//	lftj.*     join work (seeks, nexts, sensitivity recordings)
//	ivm.*      incremental maintenance (delta sizes, rederivations)
//	tx.*       transactions (commit/abort/phase timings)
//	treap.*    storage substrate (node copies, shared-subtree hits)
//
// docs/observability.md lists every metric the engine emits and how to
// read the --stats profile table.
//
// # Snapshots and traces
//
// Snapshot() captures all counters, gauges, histograms, rule profiles and
// recently finished trace roots as plain structured values; WriteJSON
// emits the same snapshot as an expvar-style JSON document. FormatRuleTable
// renders the per-rule profile table printed by `lb --stats`;
// FormatSpanTree renders the hierarchical trace printed by `lb --trace`.
package obs
