// The assortment example is the paper's running prescriptive-analytics
// scenario (Figure 2 + §2.3.1): pick stock amounts for an assortment that
// maximize profit subject to per-product stock bounds and total shelf
// capacity. Declaring the Stock predicate as a free second-order variable
// and totalProfit as the objective turns the integrity constraints into a
// linear program; re-declaring stock over integers turns it into a MIP.
//
// Run with: go run ./examples/assortment
package main

import (
	"fmt"
	"log"

	"logicblox"
	"logicblox/internal/workload"
)

func main() {
	ws := logicblox.NewWorkspace()
	ws, err := ws.AddBlock("assortment", `
		// Base predicates (Figure 2):
		spacePerProd[p] = v -> Product(p), float(v).
		profitPerProd[p] = v -> Product(p), float(v).
		minStock[p] = v -> Product(p), float(v).
		maxStock[p] = v -> Product(p), float(v).
		maxShelf[] = v -> float[64](v).

		// Derived predicates and rules:
		Stock[p] = v -> Product(p), float(v).
		totalShelf[] = u <- agg<<u = sum(z)>> Stock[p] = x, spacePerProd[p] = y, z = x * y.
		totalProfit[] = u <- agg<<u = sum(z)>> Stock[p] = x, profitPerProd[p] = y, z = x * y.

		// Integrity constraints:
		Product(p) -> Stock[p] >= minStock[p].
		Product(p) -> Stock[p] <= maxStock[p].
		totalShelf[] = u, maxShelf[] = v -> u <= v.

		// Prescriptive analytics (§2.3.1):
		lang:solve:variable(`+"`Stock"+`).
		lang:solve:max(`+"`totalProfit"+`).`)
	if err != nil {
		log.Fatal(err)
	}

	retail := workload.Generate(workload.Config{Products: 20, Stores: 1, Weeks: 1, Seed: 8})
	for name, rel := range retail.Relations() {
		switch name {
		case "Product", "spacePerProd", "profitPerProd", "minStock", "maxStock":
			ws, err = ws.Load(name, rel.Slice())
			if err != nil {
				log.Fatal(err)
			}
		}
	}
	ws, err = ws.Load("maxShelf", []logicblox.Tuple{{logicblox.Float(60)}})
	if err != nil {
		log.Fatal(err)
	}

	// Solve the LP: the engine grounds the constraints over the data,
	// invokes the simplex solver, and populates Stock.
	solved, sol, err := ws.Solve()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LP optimum: total profit = %.2f\n", sol.Objective)
	shelf, _ := solved.Relation("totalShelf").FuncGet(logicblox.Tuple{})
	fmt.Printf("shelf used: %.2f of 60\n", shelf.AsFloat())
	fmt.Println("stocked products (nonzero):")
	solved.Relation("Stock").ForEach(func(t logicblox.Tuple) bool {
		if t[1].AsFloat() > 0.001 {
			fmt.Printf("  %-10s %.2f units\n", t[0].AsString(), t[1].AsFloat())
		}
		return true
	})

	// §2.3.1: "If the stock predicate is now defined to be a mapping from
	// products to integers, LogicBlox will detect the change and
	// reformulate the problem so that a MIP solver is invoked."
	wsInt, err := ws.AddBlock("integral", "lang:solve:integer(`Stock).")
	if err != nil {
		log.Fatal(err)
	}
	solvedInt, solInt, err := wsInt.Solve()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMIP optimum (integer stock): total profit = %.2f\n", solInt.Objective)
	fractional := 0
	solvedInt.Relation("Stock").ForEach(func(t logicblox.Tuple) bool {
		if t[1].Kind() != logicblox.Int(0).Kind() {
			fractional++
		}
		return true
	})
	fmt.Printf("all %d stock values integral: %v\n",
		solvedInt.Relation("Stock").Len(), fractional == 0)
	if solInt.Objective > sol.Objective+1e-6 {
		log.Fatal("MIP beat the LP relaxation — impossible")
	}
}
