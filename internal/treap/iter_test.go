package treap

import (
	"math/rand"
	"sort"
	"testing"
)

func TestIteratorWalk(t *testing.T) {
	tr := fromKeys([]int{5, 3, 8, 1, 9})
	var got []int
	for it := tr.Iterator(); !it.AtEnd(); it.Next() {
		got = append(got, it.Key())
		if it.Value() != it.Key()*10 {
			t.Fatalf("value mismatch at %d", it.Key())
		}
	}
	want := []int{1, 3, 5, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestIteratorEmpty(t *testing.T) {
	it := New[int, int](intOps()).Iterator()
	if !it.AtEnd() {
		t.Fatalf("iterator over empty tree should start at end")
	}
	it.Next() // must not panic
	it.Seek(5)
	if !it.AtEnd() {
		t.Fatalf("seek on empty tree should stay at end")
	}
}

func TestIteratorSeekLUB(t *testing.T) {
	tr := fromKeys([]int{10, 20, 30, 40, 50})
	cases := []struct {
		probe int
		want  int
		atEnd bool
	}{
		{5, 10, false},
		{10, 10, false},
		{11, 20, false},
		{35, 40, false},
		{50, 50, false},
		{51, 0, true},
	}
	for _, c := range cases {
		it := tr.Iterator()
		it.Seek(c.probe)
		if it.AtEnd() != c.atEnd {
			t.Fatalf("Seek(%d): atEnd=%v, want %v", c.probe, it.AtEnd(), c.atEnd)
		}
		if !c.atEnd && it.Key() != c.want {
			t.Fatalf("Seek(%d) = %d, want %d", c.probe, it.Key(), c.want)
		}
	}
}

func TestIteratorSeekForwardSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	keySet := map[int]bool{}
	for i := 0; i < 500; i++ {
		keySet[rng.Intn(10000)] = true
	}
	var keys []int
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	tr := fromKeys(keys)

	it := tr.Iterator()
	probe := 0
	for !it.AtEnd() {
		probe += rng.Intn(40) + 1
		it.Seek(probe)
		if it.AtEnd() {
			break
		}
		// Check against the model: smallest key >= probe.
		i := sort.SearchInts(keys, probe)
		if i >= len(keys) {
			t.Fatalf("iterator found %d but model says end (probe %d)", it.Key(), probe)
		}
		if it.Key() != keys[i] {
			t.Fatalf("Seek(%d) = %d, model %d", probe, it.Key(), keys[i])
		}
		probe = it.Key()
	}
}

func TestIteratorMixedNextSeek(t *testing.T) {
	keys := []int{1, 4, 6, 9, 12, 15, 22, 31}
	tr := fromKeys(keys)
	it := tr.Iterator()
	if it.Key() != 1 {
		t.Fatalf("first = %d", it.Key())
	}
	it.Next()
	if it.Key() != 4 {
		t.Fatalf("next = %d", it.Key())
	}
	it.Seek(10)
	if it.Key() != 12 {
		t.Fatalf("seek 10 = %d", it.Key())
	}
	it.Next()
	if it.Key() != 15 {
		t.Fatalf("next = %d", it.Key())
	}
	it.Seek(15) // seek to current key is a no-op
	if it.Key() != 15 {
		t.Fatalf("seek current = %d", it.Key())
	}
	it.Seek(100)
	if !it.AtEnd() {
		t.Fatalf("seek past end should end")
	}
}

func TestIteratorFirstResets(t *testing.T) {
	tr := fromKeys([]int{2, 4, 6})
	it := tr.Iterator()
	it.Seek(5)
	it.First()
	if it.AtEnd() || it.Key() != 2 {
		t.Fatalf("First did not reset")
	}
}
