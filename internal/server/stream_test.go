package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"logicblox/internal/core"
	"logicblox/internal/tuple"
)

// seedEdges installs e(i, i%k) for i in [0, n) on the test server.
func seedEdges(t *testing.T, ts *httptest.Server, n, k int) {
	t.Helper()
	var sb strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "+e(%d, %d).\n", i, i%k)
	}
	mustOK(t, ts, "POST", "/exec", Request{Src: sb.String()}, nil)
}

// streamLines POSTs a /query and returns the raw NDJSON lines plus the
// response. The caller asserts on framing.
func streamLines(t *testing.T, ts *httptest.Server, path string, body Request, hdr map[string]string) (*http.Response, []string) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", ts.URL+path, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	return resp, lines
}

// splitStream parses NDJSON lines into row records and the trailing
// summary, failing on any framing violation (summary not last, unknown
// record shape, missing trailer).
func splitStream(t *testing.T, lines []string) ([]json.RawMessage, StreamSummary) {
	t.Helper()
	if len(lines) == 0 {
		t.Fatal("empty stream: no summary record")
	}
	var rows []json.RawMessage
	for i, ln := range lines {
		var rec struct {
			Row     json.RawMessage `json:"row"`
			Summary *StreamSummary  `json:"summary"`
		}
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("line %d: %v (%q)", i, err, ln)
		}
		switch {
		case rec.Summary != nil:
			if i != len(lines)-1 {
				t.Fatalf("summary at line %d of %d: not trailing", i, len(lines))
			}
			return rows, *rec.Summary
		case rec.Row != nil:
			rows = append(rows, rec.Row)
		default:
			t.Fatalf("line %d: neither row nor summary: %q", i, ln)
		}
	}
	t.Fatal("stream ended without a summary record")
	return nil, StreamSummary{}
}

// materializedRowsRaw fetches the same query unstreamed and returns the
// raw JSON encoding of each row, for byte-level comparison.
func materializedRowsRaw(t *testing.T, ts *httptest.Server, body Request) ([]json.RawMessage, QueryResponse) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/query", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("materialized query: status %d: %s", resp.StatusCode, data)
	}
	var wire struct {
		Rows []json.RawMessage `json:"rows"`
	}
	if err := json.Unmarshal(data, &wire); err != nil {
		t.Fatal(err)
	}
	var q QueryResponse
	if err := json.Unmarshal(data, &q); err != nil {
		t.Fatal(err)
	}
	return wire.Rows, q
}

// TestQueryStreamNDJSON: the streamed response is NDJSON — one
// {"row":[...]} per answer plus a trailing summary — and each row's
// bytes are identical to the materialized envelope's corresponding
// array element (byte-equivalent modulo framing).
func TestQueryStreamNDJSON(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	seedEdges(t, ts, 50, 7)
	q := Request{Src: `_(y, x) <- e(x, y), y < 5.`}

	want, _ := materializedRowsRaw(t, ts, q)
	if len(want) == 0 {
		t.Fatal("expected answers")
	}

	q.Stream = true
	resp, lines := streamLines(t, ts, "/v1/query", q, nil)
	if ct := resp.Header.Get("Content-Type"); ct != ndjsonContentType {
		t.Fatalf("Content-Type = %q", ct)
	}
	rows, sum := splitStream(t, lines)
	if len(rows) != len(want) {
		t.Fatalf("streamed %d rows, materialized %d", len(rows), len(want))
	}
	for i := range rows {
		if string(rows[i]) != string(want[i]) {
			t.Fatalf("row %d: stream %s != materialized %s", i, rows[i], want[i])
		}
	}
	if !sum.OK || sum.Rows != int64(len(want)) || sum.Truncated || sum.NextCursor != "" {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.Bytes <= 0 {
		t.Fatalf("summary bytes = %d", sum.Bytes)
	}
	if sum.RequestID == "" {
		t.Fatal("summary missing request_id")
	}
	if got := s.Obs().Counter("server.query.streamed").Value(); got != 1 {
		t.Fatalf("server.query.streamed = %d", got)
	}
	if got := s.Obs().Counter("server.stream.rows").Value(); got != int64(len(want)) {
		t.Fatalf("server.stream.rows = %d, want %d", got, len(want))
	}
	if got := s.Obs().Counter("tx.query.stream.commit").Value(); got != 1 {
		t.Fatalf("tx.query.stream.commit = %d", got)
	}
}

// TestQueryStreamNegotiation: ?stream=1 and Accept: application/x-ndjson
// both select the NDJSON response without the body field.
func TestQueryStreamNegotiation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	seedEdges(t, ts, 10, 3)
	q := Request{Src: `_(x, y) <- e(x, y).`}

	resp, lines := streamLines(t, ts, "/query?stream=1", q, nil)
	if resp.Header.Get("Content-Type") != ndjsonContentType {
		t.Fatalf("?stream=1: Content-Type = %q", resp.Header.Get("Content-Type"))
	}
	if _, sum := splitStream(t, lines); !sum.OK || sum.Rows != 10 {
		t.Fatalf("?stream=1 summary = %+v", sum)
	}

	resp, lines = streamLines(t, ts, "/query", q, map[string]string{"Accept": ndjsonContentType})
	if resp.Header.Get("Content-Type") != ndjsonContentType {
		t.Fatalf("Accept: Content-Type = %q", resp.Header.Get("Content-Type"))
	}
	if _, sum := splitStream(t, lines); !sum.OK || sum.Rows != 10 {
		t.Fatalf("Accept summary = %+v", sum)
	}
}

// TestQueryStreamErrorHandling: a pre-stream failure (parse error) is a
// plain JSON error envelope with status and request id; nothing NDJSON
// about it.
func TestQueryStreamErrorHandling(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var e ErrorResponse
	status := do(t, ts, "POST", "/query?stream=1", Request{Src: `_(x <-`}, &e)
	if status != http.StatusBadRequest || e.Code != "parse" {
		t.Fatalf("status %d code %q", status, e.Code)
	}
	if e.RequestID == "" {
		t.Fatal("error envelope missing request_id")
	}
}

// TestQueryPagination pages a 23-row result 5 rows at a time through
// both response modes, asserting exactly-once delivery (no gaps, no
// overlaps) and that pages stay pinned to the first page's snapshot even
// when the branch head moves between pages.
func TestQueryPagination(t *testing.T) {
	for _, mode := range []string{"materialized", "stream"} {
		t.Run(mode, func(t *testing.T) {
			_, ts := newTestServer(t, Config{})
			seedEdges(t, ts, 23, 23)
			limit := 5
			var got [][]any
			cursor := ""
			pages := 0
			for {
				req := Request{Src: `_(x, y) <- e(x, y).`, Limit: &limit, Cursor: cursor}
				var next string
				var page [][]any
				if mode == "stream" {
					req.Stream = true
					_, lines := streamLines(t, ts, "/query", req, nil)
					rows, sum := splitStream(t, lines)
					if !sum.OK {
						t.Fatalf("page %d summary = %+v", pages, sum)
					}
					if sum.Limit != limit {
						t.Fatalf("page %d limit = %d", pages, sum.Limit)
					}
					for _, r := range rows {
						var row []any
						if err := json.Unmarshal(r, &row); err != nil {
							t.Fatal(err)
						}
						page = append(page, row)
					}
					next = sum.NextCursor
					if sum.Truncated != (next != "") {
						t.Fatalf("page %d truncated=%v next=%q", pages, sum.Truncated, next)
					}
				} else {
					var q QueryResponse
					mustOK(t, ts, "POST", "/query", req, &q)
					if q.Limit != limit || q.RowCount != len(q.Rows) {
						t.Fatalf("page %d envelope = %+v", pages, q)
					}
					page, next = q.Rows, q.NextCursor
					if q.Truncated != (next != "") {
						t.Fatalf("page %d truncated=%v next=%q", pages, q.Truncated, next)
					}
				}
				got = append(got, page...)
				pages++
				if pages == 1 {
					// Move the branch head mid-pagination: later pages must
					// not see this fact (the cursor pins the snapshot).
					mustOK(t, ts, "POST", "/exec", Request{Src: `+e(1000, 1000).`}, nil)
				}
				if next == "" {
					break
				}
				cursor = next
			}
			if pages != 5 { // ceil(23/5)
				t.Fatalf("pages = %d", pages)
			}
			if len(got) != 23 {
				t.Fatalf("total rows = %d, want 23 (exactly-once)", len(got))
			}
			seen := map[string]bool{}
			for _, row := range got {
				k := fmt.Sprint(row)
				if seen[k] {
					t.Fatalf("row %v delivered twice", row)
				}
				seen[k] = true
				if row[0] == float64(1000) {
					t.Fatal("page leaked a fact committed after the first page")
				}
			}
		})
	}
}

// TestQueryCursorErrors: malformed tokens are 400 bad_cursor; a token
// pinning an unreachable version is 410 stale_cursor.
func TestQueryCursorErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	seedEdges(t, ts, 3, 3)

	var e ErrorResponse
	if status := do(t, ts, "POST", "/query", Request{Src: `_(x, y) <- e(x, y).`, Cursor: "!!!"}, &e); status != http.StatusBadRequest || e.Code != "bad_cursor" {
		t.Fatalf("malformed cursor: status %d code %q", status, e.Code)
	}
	stale := encodePageToken(pageToken{Branch: "main", Version: 999999, Offset: 1})
	if status := do(t, ts, "POST", "/query", Request{Src: `_(x, y) <- e(x, y).`, Cursor: stale}, &e); status != http.StatusGone || e.Code != "stale_cursor" {
		t.Fatalf("stale cursor: status %d code %q", status, e.Code)
	}
	if e.RequestID == "" {
		t.Fatal("stale_cursor envelope missing request_id")
	}
}

// TestQueryDefaultLimit: without a request limit the server default caps
// the materialized response (reporting the applied limit and a cursor),
// an explicit limit <= 0 opts out, and streams are never default-capped.
func TestQueryDefaultLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{DefaultLimit: 8})
	seedEdges(t, ts, 20, 20)
	q := Request{Src: `_(x, y) <- e(x, y).`}

	var resp QueryResponse
	mustOK(t, ts, "POST", "/query", q, &resp)
	if len(resp.Rows) != 8 || resp.Limit != 8 || !resp.Truncated || resp.NextCursor == "" {
		t.Fatalf("default-capped envelope = rows:%d limit:%d truncated:%v", len(resp.Rows), resp.Limit, resp.Truncated)
	}

	zero := 0
	var uncapped QueryResponse
	mustOK(t, ts, "POST", "/query", Request{Src: q.Src, Limit: &zero}, &uncapped)
	if len(uncapped.Rows) != 20 || uncapped.Truncated || uncapped.Limit != 0 {
		t.Fatalf("limit=0 envelope = rows:%d limit:%d truncated:%v", len(uncapped.Rows), uncapped.Limit, uncapped.Truncated)
	}

	_, lines := streamLines(t, ts, "/query?stream=1", q, nil)
	rows, sum := splitStream(t, lines)
	if len(rows) != 20 || sum.Truncated || sum.Limit != 0 {
		t.Fatalf("stream hit the materialized default cap: rows:%d summary:%+v", len(rows), sum)
	}
}

// TestQueryMaxResultBytes truncates both response modes by encoded size,
// and the cursor resumes from the cut.
func TestQueryMaxResultBytes(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	seedEdges(t, ts, 40, 40)
	req := Request{Src: `_(x, y) <- e(x, y).`, MaxResultBytes: 64}

	var resp QueryResponse
	mustOK(t, ts, "POST", "/query", req, &resp)
	if !resp.Truncated || resp.NextCursor == "" || len(resp.Rows) == 0 || len(resp.Rows) >= 40 {
		t.Fatalf("byte-capped envelope = rows:%d truncated:%v", len(resp.Rows), resp.Truncated)
	}
	total := len(resp.Rows)
	for cursor := resp.NextCursor; cursor != ""; {
		var page QueryResponse
		mustOK(t, ts, "POST", "/query", Request{Src: req.Src, MaxResultBytes: 64, Cursor: cursor}, &page)
		total += len(page.Rows)
		cursor = page.NextCursor
	}
	if total != 40 {
		t.Fatalf("resumed total = %d, want 40", total)
	}

	req.Stream = true
	_, lines := streamLines(t, ts, "/query", req, nil)
	rows, sum := splitStream(t, lines)
	if !sum.Truncated || sum.NextCursor == "" || len(rows) == 0 || len(rows) >= 40 {
		t.Fatalf("byte-capped stream = rows:%d summary:%+v", len(rows), sum)
	}
}

// TestStreamDisconnectReleasesWorker: a client vanishing mid-stream
// cancels the request context; the cursor closes (tx.query.stream.abort)
// and the worker slot frees up for the next request.
func TestStreamDisconnectReleasesWorker(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	// A cross product big enough that the stream outlives the client.
	seedEdges(t, ts, 300, 300)
	q, _ := json.Marshal(Request{Src: `_(x, y, z, w) <- e(x, y), e(z, w).`, Stream: true})

	cctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(cctx, "POST", ts.URL+"/query", bytes.NewReader(q))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	if _, err := io.ReadFull(resp.Body, buf); err != nil {
		t.Fatalf("reading first chunk: %v", err)
	}
	cancel()
	resp.Body.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if s.Obs().Counter("tx.query.stream.abort").Value() >= 1 && s.Inflight() == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("abort=%d inflight=%d after disconnect",
				s.Obs().Counter("tx.query.stream.abort").Value(), s.Inflight())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The single worker slot must be usable again.
	var small QueryResponse
	mustOK(t, ts, "POST", "/query", Request{Src: `_(x) <- e(x, 0).`}, &small)
	if !small.OK {
		t.Fatal("worker slot not released after disconnect")
	}
}

// TestV1Aliases: the /v1 surface routes to the same handlers as the
// unversioned paths.
func TestV1Aliases(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	mustOK(t, ts, "POST", "/v1/exec", Request{Src: `+e(1, 2).`}, nil)
	var q QueryResponse
	mustOK(t, ts, "POST", "/v1/query", Request{Src: `_(x, y) <- e(x, y).`}, &q)
	if len(q.Rows) != 1 {
		t.Fatalf("/v1/query rows = %v", q.Rows)
	}
	var hb map[string]any
	mustOK(t, ts, "GET", "/v1/healthz", nil, &hb)
	if hb["status"] != "ok" {
		t.Fatalf("/v1/healthz = %v", hb)
	}
	var vs VersionsResponse
	mustOK(t, ts, "GET", "/v1/versions", nil, &vs)
	if !vs.OK {
		t.Fatalf("/v1/versions = %+v", vs)
	}
}

// TestAppendRowJSONMatchesEncodingJSON: the direct row encoder is
// byte-identical to encoding/json over the legacy [][]any path for every
// value kind, including strings that need escaping or HTML-escaping.
func TestAppendRowJSONMatchesEncodingJSON(t *testing.T) {
	rows := []tuple.Tuple{
		tuple.Ints(0, -42, math.MaxInt64, math.MinInt64),
		{tuple.Bool(true), tuple.Bool(false), tuple.Value{}},
		{tuple.Float(1.5), tuple.Float(-0.25), tuple.Float(1e21), tuple.Float(3.141592653589793)},
		tuple.Strings("plain", "", "with \"quotes\"", "back\\slash"),
		tuple.Strings("<script>&amp;</script>", "tab\there", "new\nline", "nul\x00byte"),
		tuple.Strings("unicode \u00e9\u4e16\u754c", "\u2028line sep\u2029"),
		{tuple.Entity(3, 99), tuple.Entity(0, 0)},
	}
	for _, row := range rows {
		want, err := json.Marshal(rowsJSON([]tuple.Tuple{row})[0])
		if err != nil {
			t.Fatal(err)
		}
		got := appendRowJSON(nil, row)
		if string(got) != string(want) {
			t.Errorf("row %v:\ndirect  = %s\nstdlib = %s", row, got, want)
		}
	}
}

// BenchmarkRowEncodeLegacy and BenchmarkRowEncodeDirect compare the old
// [][]any-through-encoding/json row path with the direct appendRowJSON
// encoder (satellite: direct encoding avoids the per-value boxing).
func benchRows() []tuple.Tuple {
	rows := make([]tuple.Tuple, 1000)
	for i := range rows {
		rows[i] = tuple.Tuple{
			tuple.Int(int64(i)), tuple.String("sku-" + strconv.Itoa(i)),
			tuple.Float(float64(i) * 1.25), tuple.Bool(i%2 == 0),
		}
	}
	return rows
}

func BenchmarkRowEncodeLegacy(b *testing.B) {
	rows := benchRows()
	b.ReportAllocs()
	var n int64
	for i := 0; i < b.N; i++ {
		out, err := json.Marshal(rowsJSON(rows))
		if err != nil {
			b.Fatal(err)
		}
		n += int64(len(out))
	}
	atomic.AddInt64(&benchSink, n)
}

func BenchmarkRowEncodeDirect(b *testing.B) {
	rows := benchRows()
	b.ReportAllocs()
	var n int64
	buf := make([]byte, 0, 64<<10)
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		buf = append(buf, '[')
		for j, t := range rows {
			if j > 0 {
				buf = append(buf, ',')
			}
			buf = appendRowJSON(buf, t)
		}
		buf = append(buf, ']')
		n += int64(len(buf))
	}
	atomic.AddInt64(&benchSink, n)
}

var benchSink int64

// TestStreamConstantMemory is the acceptance check for the streaming
// path: over a large result, the server's peak heap while streaming
// stays well below the materialized path's (whose rows and JSON buffer
// are O(result)). STREAM_MEM_N overrides the row count (the recorded
// experiment uses 1000000); the default keeps `go test ./...` quick.
func TestStreamConstantMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("memory-profile test; skipped in -short")
	}
	n := 200000
	if env := os.Getenv("STREAM_MEM_N"); env != "" {
		v, err := strconv.Atoi(env)
		if err != nil {
			t.Fatalf("STREAM_MEM_N: %v", err)
		}
		n = v
	}

	db := core.NewDatabase()
	head, err := db.Workspace(core.DefaultBranch)
	if err != nil {
		t.Fatal(err)
	}
	tuples := make([]tuple.Tuple, n)
	for i := range tuples {
		tuples[i] = tuple.Ints(int64(i), int64(i%1000), int64(i%97), int64(i%11))
	}
	loaded, err := head.Load("big", tuples)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CommitIf(core.DefaultBranch, head, loaded); err != nil {
		t.Fatal(err)
	}
	tuples = nil
	s := New(db, Config{Timeout: 10 * time.Minute})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// peakDuring runs one query while a sampler polls HeapAlloc; the
	// client discards the body with a small buffer so only server-side
	// result buffering shows up in the peak.
	peakDuring := func(stream bool) uint64 {
		runtime.GC()
		runtime.GC()
		var base runtime.MemStats
		runtime.ReadMemStats(&base)
		var peak atomic.Uint64
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				select {
				case <-stop:
					return
				default:
				}
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				for {
					old := peak.Load()
					if ms.HeapAlloc <= old || peak.CompareAndSwap(old, ms.HeapAlloc) {
						break
					}
				}
				time.Sleep(time.Millisecond)
			}
		}()
		zero := 0
		raw, _ := json.Marshal(Request{Src: `_(a, b, c, d) <- big(a, b, c, d).`, Stream: stream, Limit: &zero})
		resp, err := ts.Client().Post(ts.URL+"/query", "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		nbytes, err := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK || nbytes == 0 {
			t.Fatalf("query (stream=%v): status %d, %d bytes", stream, resp.StatusCode, nbytes)
		}
		close(stop)
		<-done
		p := peak.Load()
		if p < base.HeapAlloc {
			return 0
		}
		return p - base.HeapAlloc
	}

	streamPeak := peakDuring(true)
	matPeak := peakDuring(false)
	t.Logf("n=%d rows: streamed peak heap delta = %.1f MiB, materialized = %.1f MiB",
		n, float64(streamPeak)/(1<<20), float64(matPeak)/(1<<20))
	if streamPeak >= matPeak {
		t.Errorf("streaming used as much heap as materializing: %d >= %d", streamPeak, matPeak)
	}
}
