package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if r.Counter("x") != c {
		t.Fatal("Counter not idempotent per name")
	}
	g := r.Gauge("y")
	g.Set(7)
	g.Set(5)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	s := r.Snapshot()
	if s.Counters["x"] != 4 || s.Gauges["y"] != 5 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d")
	h.Observe(100 * time.Nanosecond)
	h.Observe(3 * time.Microsecond)
	h.Observe(time.Millisecond)
	s := h.snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Min != 100*time.Nanosecond || s.Max != time.Millisecond {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	if want := (100*time.Nanosecond + 3*time.Microsecond + time.Millisecond) / 3; s.Mean() != want {
		t.Fatalf("mean = %v, want %v", s.Mean(), want)
	}
	// 100ns lands in bucket (64,128]: upper bound 128.
	if s.Buckets[128] != 1 {
		t.Fatalf("bucket[128] = %d, buckets = %v", s.Buckets[128], s.Buckets)
	}
	// Sub-resolution and negative observations clamp to 1ns, not 0.
	h2 := r.Histogram("zero")
	h2.Observe(0)
	if z := h2.snapshot(); z.Min != 1 || z.Max != 1 || z.Count != 1 {
		t.Fatalf("zero-duration snapshot = %+v", z)
	}
}

func TestRuleStats(t *testing.T) {
	r := NewRegistry()
	rs := r.Rule(7, "path", "path(x, z) <- path(x, y), edge(y, z).")
	if r.Rule(7, "path", "ignored") != rs {
		t.Fatal("Rule not idempotent per id")
	}
	rs.AddEval(2*time.Microsecond, 10)
	rs.AddDeltaEval(time.Microsecond, 4)
	rs.AddJoin(5, 9, 2)
	s := r.Snapshot()
	if len(s.Rules) != 1 {
		t.Fatalf("rules = %+v", s.Rules)
	}
	got := s.Rules[0]
	if got.ID != 7 || got.Head != "path" || got.Evals != 1 || got.DeltaEvals != 1 ||
		got.Tuples != 14 || got.Seeks != 5 || got.Nexts != 9 || got.SensRecords != 2 ||
		got.EvalTime != 3*time.Microsecond {
		t.Fatalf("rule snapshot = %+v", got)
	}
}

func TestRuleSnapshotOrder(t *testing.T) {
	r := NewRegistry()
	r.Rule(1, "cheap", "").AddEval(time.Microsecond, 1)
	r.Rule(2, "costly", "").AddEval(time.Millisecond, 1)
	s := r.Snapshot()
	if len(s.Rules) != 2 || s.Rules[0].Head != "costly" {
		t.Fatalf("rules not sorted by eval time: %+v", s.Rules)
	}
}

func TestSpans(t *testing.T) {
	r := NewRegistry()
	root := r.StartSpan("tx.exec")
	child := root.Child("rederive")
	child.SetAttr("dirty", 3)
	child.SetAttr("dirty", 4) // overwrite
	child.AddAttr("rules", 2)
	child.AddAttr("rules", 3) // accumulate
	child.End()
	grand := child.Child("late") // children may attach after End; tolerated
	grand.End()
	root.End()
	root.End() // double End is a no-op

	snap, ok := r.LastTrace()
	if !ok {
		t.Fatal("no trace recorded")
	}
	if snap.Name != "tx.exec" || len(snap.Children) != 1 {
		t.Fatalf("trace = %+v", snap)
	}
	c := snap.Children[0]
	attrs := map[string]int64{}
	for _, a := range c.Attrs {
		attrs[a.Key] = a.Val
	}
	if attrs["dirty"] != 4 || attrs["rules"] != 5 {
		t.Fatalf("child attrs = %v", c.Attrs)
	}
	if root.Duration() <= 0 {
		t.Fatal("root duration not recorded")
	}
}

func TestTraceRingBounded(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < traceRingSize+5; i++ {
		r.StartSpan("t").End()
	}
	s := r.Snapshot()
	if len(s.Traces) != traceRingSize {
		t.Fatalf("traces = %d, want %d", len(s.Traces), traceRingSize)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	// Every accessor on a nil registry returns a usable nil handle.
	r.Counter("a").Add(1)
	r.Counter("a").Inc()
	r.Gauge("b").Set(2)
	r.Histogram("c").Observe(time.Second)
	r.Rule(1, "h", "src").AddEval(time.Second, 1)
	r.Rule(1, "h", "src").AddDeltaEval(time.Second, 1)
	r.Rule(1, "h", "src").AddJoin(1, 2, 3)
	r.Reset()
	sp := r.StartSpan("root")
	if sp != nil {
		t.Fatal("nil registry returned a live span")
	}
	sp.SetAttr("k", 1)
	sp.AddAttr("k", 1)
	sp.Child("c").End()
	sp.End()
	if d := sp.Duration(); d != 0 {
		t.Fatalf("nil span duration = %v", d)
	}
	if s := r.Snapshot(); len(s.Counters) != 0 || len(s.Rules) != 0 || len(s.Traces) != 0 {
		t.Fatalf("nil snapshot = %+v", s)
	}
	if _, ok := r.LastTrace(); ok {
		t.Fatal("nil registry has a trace")
	}
}

func TestNoopAllocationFree(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	rs := r.Rule(1, "h", "")
	var sp *Span
	if n := testing.AllocsPerRun(100, func() {
		c.Add(1)
		rs.AddEval(time.Microsecond, 1)
		rs.AddJoin(1, 1, 1)
		sp.SetAttr("k", 1)
		sp.Child("c").End()
	}); n != 0 {
		t.Fatalf("no-op path allocates %v per run", n)
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rs := r.Rule(1, "r", "src")
			for i := 0; i < per; i++ {
				r.Counter("c").Inc()
				r.Histogram("h").Observe(time.Duration(i+1) * time.Nanosecond)
				rs.AddEval(time.Nanosecond, 1)
				rs.AddJoin(1, 2, 3)
				sp := r.StartSpan("s")
				sp.Child("k").End()
				sp.End()
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	n := int64(workers * per)
	if s.Counters["c"] != n {
		t.Fatalf("counter = %d, want %d", s.Counters["c"], n)
	}
	if s.Histograms["h"].Count != n || s.Histograms["h"].Min != 1 {
		t.Fatalf("histogram = %+v", s.Histograms["h"])
	}
	if got := s.Rules[0]; got.Evals != n || got.Tuples != n || got.Seeks != n || got.Nexts != 2*n {
		t.Fatalf("rule = %+v", got)
	}
}

func TestResetAndDefault(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	r.StartSpan("t").End()
	r.Reset()
	if s := r.Snapshot(); len(s.Counters) != 0 || len(s.Traces) != 0 {
		t.Fatalf("post-reset snapshot = %+v", s)
	}

	if Default() != nil {
		t.Fatal("default registry should start nil")
	}
	SetDefault(r)
	if Default() != r {
		t.Fatal("SetDefault not visible")
	}
	SetDefault(nil)
	if Default() != nil {
		t.Fatal("SetDefault(nil) did not clear")
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("tx.exec.commit").Add(2)
	r.Histogram("tx.exec.duration").Observe(time.Millisecond)
	r.Rule(1, "path", "path(x, y) <- edge(x, y).").AddEval(time.Microsecond, 3)
	r.StartSpan("tx.exec").End()
	var b strings.Builder
	if err := r.Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal([]byte(b.String()), &back); err != nil {
		t.Fatalf("round-trip: %v\n%s", err, b.String())
	}
	if back.Counters["tx.exec.commit"] != 2 || len(back.Rules) != 1 || len(back.Traces) != 1 {
		t.Fatalf("round-tripped snapshot = %+v", back)
	}
}

func TestFormatters(t *testing.T) {
	r := NewRegistry()
	if got := FormatRuleTable(r.Snapshot()); !strings.Contains(got, "no rule evaluations") {
		t.Fatalf("empty table = %q", got)
	}
	r.Rule(1, "path", "path(x, z) <- path(x, y), edge(y, z).").AddEval(42*time.Microsecond, 6)
	r.Rule(1, "path", "").AddJoin(10, 18, 0)
	r.Counter("tx.exec.commit").Inc()
	r.Gauge("treap.nodes_allocated").Set(9)
	r.Histogram("tx.exec.duration").Observe(time.Millisecond)
	sp := r.StartSpan("tx.exec")
	c := sp.Child("rederive")
	c.SetAttr("dirty", 1)
	c.End()
	sp.End()
	s := r.Snapshot()

	table := FormatRuleTable(s)
	for _, want := range []string{"RULE HEAD", "SEEKS", "path", "42.0µs", "TOTAL"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
	counters := FormatCounters(s)
	for _, want := range []string{"tx.exec.commit", "treap.nodes_allocated", "tx.exec.duration", "count=1"} {
		if !strings.Contains(counters, want) {
			t.Fatalf("counters missing %q:\n%s", want, counters)
		}
	}
	tree := FormatSpanTree(s.Traces[0])
	for _, want := range []string{"tx.exec", "  rederive", "dirty=1"} {
		if !strings.Contains(tree, want) {
			t.Fatalf("tree missing %q:\n%s", want, tree)
		}
	}
}
