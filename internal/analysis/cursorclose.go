package analysis

import "go/ast"

// cursorConstructors names the methods whose result owns a pinned
// snapshot and a live iterator chain and therefore must be released
// with Close: the workspace's streaming query entry point and the
// engine's per-rule pull cursor. A leaked cursor keeps its snapshot
// version (and the abort/commit accounting) alive until GC, so every
// call site must either Close the cursor on all paths or hand it to a
// caller who will.
var cursorConstructors = map[string]bool{
	"QueryStream": true,
	"StreamRule":  true,
}

// CursorcloseAnalyzer reports call sites of the streaming-cursor
// constructors whose result is discarded, or bound to a local variable
// that is never Closed and never escapes the function (returned, stored,
// or passed along — any bare use of the variable outside a method call
// counts as an escape, conservatively).
var CursorcloseAnalyzer = &Analyzer{
	Name: "cursorclose",
	Doc:  "flag streaming cursors that are never closed and never escape",
	Run:  runCursorclose,
}

func runCursorclose(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkCursorFunc(pass, fn.Body)
		}
	}
	return nil
}

// checkCursorFunc examines one function body (closures included — a
// Close inside a deferred literal still releases the cursor) for
// constructor calls and verifies each result is released or escapes.
func checkCursorFunc(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.ExprStmt:
			if call, ok := stmt.X.(*ast.CallExpr); ok && cursorConstructors[calleeName(call)] {
				pass.Reportf(call.Pos(),
					"cursor returned by %s is discarded; Close it to release the pinned snapshot", calleeName(call))
			}
		case *ast.AssignStmt:
			if len(stmt.Rhs) != 1 {
				return true
			}
			call, ok := stmt.Rhs[0].(*ast.CallExpr)
			if !ok || !cursorConstructors[calleeName(call)] {
				return true
			}
			id, ok := ast.Unparen(stmt.Lhs[0]).(*ast.Ident)
			if !ok {
				// Stored straight into a field or element: escapes.
				return true
			}
			if id.Name == "_" {
				pass.Reportf(call.Pos(),
					"cursor returned by %s is discarded; Close it to release the pinned snapshot", calleeName(call))
				return true
			}
			closed, escapes := cursorReleased(body, id.Name, stmt)
			if !closed && !escapes {
				pass.Reportf(call.Pos(),
					"cursor %s returned by %s is never closed in this function and does not escape; defer %s.Close() to release the pinned snapshot",
					id.Name, calleeName(call), id.Name)
			}
		}
		return true
	})
}

// cursorReleased scans the function body for what happens to the cursor
// variable after its defining assignment: a <name>.Close() call counts
// as released, and any bare use of the identifier outside a selector
// (returned, passed as an argument, stored in a composite literal or
// another variable) counts as an escape — ownership moved, so this
// function is no longer responsible for closing.
func cursorReleased(body *ast.BlockStmt, name string, def *ast.AssignStmt) (closed, escapes bool) {
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.AssignStmt:
			if e == def {
				// The defining LHS is a definition, not a use; only the
				// RHS (the constructor call's own arguments) is scanned.
				for _, r := range e.Rhs {
					ast.Inspect(r, visit)
				}
				return false
			}
		case *ast.SelectorExpr:
			if id, ok := ast.Unparen(e.X).(*ast.Ident); ok && id.Name == name {
				if e.Sel.Name == "Close" {
					closed = true
				}
				// Method calls and field reads are plain uses.
				return false
			}
		case *ast.Ident:
			if e.Name == name {
				escapes = true
			}
		}
		return true
	}
	ast.Inspect(body, visit)
	return closed, escapes
}
