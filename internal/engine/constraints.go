package engine

import (
	"errors"
	"fmt"

	"logicblox/internal/compiler"
	"logicblox/internal/tuple"
)

// Violation reports one integrity-constraint failure.
type Violation struct {
	Constraint string // source text of the constraint
	Binding    string // the witnessing body binding
	Reason     string
}

func (v Violation) String() string {
	return fmt.Sprintf("constraint %q violated at %s: %s", v.Constraint, v.Binding, v.Reason)
}

// CheckConstraints evaluates every integrity constraint against the
// current context state. It returns all violations (empty means the state
// is legal). Constraints over free solver predicates are included: by the
// time a transaction commits, the solver has populated them.
func (c *Context) CheckConstraints() ([]Violation, error) {
	var all []Violation
	for _, k := range c.Prog.Constraints {
		vs, err := c.CheckConstraint(k)
		if err != nil {
			return nil, err
		}
		all = append(all, vs...)
	}
	return all, nil
}

// CheckConstraint enumerates the body F and validates the head G for each
// binding (F -> G, paper §2.2.1).
func (c *Context) CheckConstraint(k *compiler.ConstraintPlan) ([]Violation, error) {
	var out []Violation
	resolver := ctxResolver{c}
	var innerErr error
	err := c.enumerate(k.Body, nil, func(binding tuple.Tuple) bool {
		reason, err := c.headHolds(k, binding, resolver)
		if err != nil {
			innerErr = err
			return false
		}
		if reason != "" {
			witness := bindingString(k.Body.VarNames, binding, k.Body.NumJoinVars)
			out = append(out, Violation{Constraint: k.Source, Binding: witness, Reason: reason})
		}
		return true
	})
	if err == nil {
		err = innerErr
	}
	return out, err
}

// headHolds returns "" when every head check passes, or the failure
// reason.
func (c *Context) headHolds(k *compiler.ConstraintPlan, binding tuple.Tuple, resolver compiler.Resolver) (string, error) {
	for _, tc := range k.HeadTypes {
		v := binding[tc.Slot]
		if v.Kind() != tc.Kind {
			// int is acceptable where float is demanded (numeric widening).
			if !(tc.Kind == tuple.KindFloat && v.Kind() == tuple.KindInt) {
				return fmt.Sprintf("%s is not of type %s", v, tc.Kind), nil
			}
		}
	}
	for _, ha := range k.HeadAtoms {
		pattern := make([]tuple.Value, len(ha.Args))
		wild := make([]bool, len(ha.Args))
		for i, e := range ha.Args {
			if e == nil {
				wild[i] = true
				continue
			}
			v, err := e.Eval(binding, resolver)
			if err != nil {
				if errors.Is(err, compiler.ErrNoValue) {
					return err.Error(), nil
				}
				return "", err
			}
			pattern[i] = v
		}
		if c.sens != nil {
			recordPattern(c.sens, ha.Name, pattern, wild)
		}
		if !c.Relation(ha.Name).MatchExists(pattern, wild) {
			return fmt.Sprintf("required fact %s%v is missing", ha.Name, tuple.Tuple(pattern)), nil
		}
	}
	for _, f := range k.HeadChecks {
		if f.Op == "!exists" {
			v, err := f.L.Eval(binding, resolver)
			if err != nil {
				return "", err
			}
			if v.AsBool() {
				return "forbidden fact exists", nil
			}
			continue
		}
		l, err := f.L.Eval(binding, resolver)
		if err != nil {
			if errors.Is(err, compiler.ErrNoValue) {
				return err.Error(), nil
			}
			return "", err
		}
		r, err := f.R.Eval(binding, resolver)
		if err != nil {
			if errors.Is(err, compiler.ErrNoValue) {
				return err.Error(), nil
			}
			return "", err
		}
		ok, err := compiler.CompareValues(f.Op, l, r)
		if err != nil {
			return "", err
		}
		if !ok {
			return fmt.Sprintf("%s %s %s does not hold", l, f.Op, r), nil
		}
	}
	return "", nil
}

func bindingString(names []string, binding tuple.Tuple, n int) string {
	if n > len(binding) {
		n = len(binding)
	}
	s := "{"
	for i := 0; i < n; i++ {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s=%s", names[i], binding[i])
	}
	return s + "}"
}
