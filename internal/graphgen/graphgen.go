// Package graphgen generates deterministic synthetic graphs for the join
// benchmarks. The paper's Figure 5 uses the LiveJournal social network,
// whose heavy-tailed (power-law) degree distribution is exactly what makes
// pairwise join plans explode on the 3-clique query; the preferential-
// attachment generator here reproduces that skew at configurable scale
// (see DESIGN.md, substitutions).
package graphgen

import (
	"math/rand"
	"sort"

	"logicblox/internal/relation"
	"logicblox/internal/tuple"
)

// Edge is an undirected graph edge between vertex ids.
type Edge struct{ U, V int64 }

// PreferentialAttachment generates a Barabási–Albert-style graph with n
// vertices, attaching each new vertex to degree (number of existing
// vertices chosen proportionally to their degree). The result has a
// power-law degree distribution with high-degree hubs, like LiveJournal.
// Generation is deterministic in seed.
func PreferentialAttachment(n, degree int, seed int64) []Edge {
	if degree < 1 {
		degree = 1
	}
	rng := rand.New(rand.NewSource(seed))
	var edges []Edge
	// targets holds one entry per edge endpoint, so sampling uniformly
	// from it is sampling proportionally to degree.
	targets := make([]int64, 0, 2*n*degree)
	// Seed clique of degree+1 vertices.
	seedN := degree + 1
	if seedN > n {
		seedN = n
	}
	for i := 0; i < seedN; i++ {
		for j := i + 1; j < seedN; j++ {
			edges = append(edges, Edge{int64(i), int64(j)})
			targets = append(targets, int64(i), int64(j))
		}
	}
	for v := seedN; v < n; v++ {
		chosen := map[int64]bool{}
		for len(chosen) < degree && len(chosen) < v {
			t := targets[rng.Intn(len(targets))]
			chosen[t] = true
		}
		// Deterministic iteration order over the chosen set.
		picks := make([]int64, 0, len(chosen))
		for t := range chosen {
			picks = append(picks, t)
		}
		sort.Slice(picks, func(i, j int) bool { return picks[i] < picks[j] })
		for _, t := range picks {
			edges = append(edges, Edge{int64(v), t})
			targets = append(targets, int64(v), t)
		}
	}
	return edges
}

// ErdosRenyi generates a uniform random graph with n vertices and
// (approximately) m distinct undirected edges.
func ErdosRenyi(n int, m int, seed int64) []Edge {
	rng := rand.New(rand.NewSource(seed))
	seen := map[[2]int64]bool{}
	var edges []Edge
	for len(edges) < m {
		u, v := rng.Int63n(int64(n)), rng.Int63n(int64(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		k := [2]int64{u, v}
		if seen[k] {
			continue
		}
		seen[k] = true
		edges = append(edges, Edge{u, v})
	}
	return edges
}

// Canonical returns the edge set normalized so U < V, with duplicates
// removed. A triangle query over canonical edges enumerates each triangle
// exactly once (the x<y<z convention of Figure 5).
func Canonical(edges []Edge) []Edge {
	seen := map[[2]int64]bool{}
	out := make([]Edge, 0, len(edges))
	for _, e := range edges {
		u, v := e.U, e.V
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		k := [2]int64{u, v}
		if !seen[k] {
			seen[k] = true
			out = append(out, Edge{u, v})
		}
	}
	return out
}

// ToRelation materializes edges as a binary relation.
func ToRelation(edges []Edge) relation.Relation {
	r := relation.New(2)
	for _, e := range edges {
		r = r.Insert(tuple.Ints(e.U, e.V))
	}
	return r
}

// Symmetrized materializes edges with both orientations, for queries over
// undirected adjacency.
func Symmetrized(edges []Edge) relation.Relation {
	r := relation.New(2)
	for _, e := range edges {
		r = r.Insert(tuple.Ints(e.U, e.V))
		r = r.Insert(tuple.Ints(e.V, e.U))
	}
	return r
}

// DegreeStats summarizes a degree distribution: max degree and the share
// of edge endpoints landing on the top 1% of vertices (a skew measure).
func DegreeStats(edges []Edge) (maxDeg int, top1Share float64) {
	deg := map[int64]int{}
	for _, e := range edges {
		deg[e.U]++
		deg[e.V]++
	}
	if len(deg) == 0 {
		return 0, 0
	}
	ds := make([]int, 0, len(deg))
	total := 0
	for _, d := range deg {
		ds = append(ds, d)
		total += d
	}
	sort.Sort(sort.Reverse(sort.IntSlice(ds)))
	maxDeg = ds[0]
	top := len(ds) / 100
	if top < 1 {
		top = 1
	}
	sum := 0
	for i := 0; i < top; i++ {
		sum += ds[i]
	}
	return maxDeg, float64(sum) / float64(total)
}
