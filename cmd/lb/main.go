// Command lb is an interactive LogiQL REPL over the logicblox engine:
// install blocks, run exec and query transactions, branch workspaces, and
// invoke the prescriptive-analytics solver.
//
// Usage:
//
//	lb [-stats] [-trace] [-adaptive-opt] [script.lb]
//
// With -stats, every transaction is followed by a per-rule profile table
// (evaluation time, tuples produced, leapfrog seeks/nexts, sensitivity
// records); with -trace, by a span tree of the transaction's phases.
// :stats dumps the full metric snapshot of the last transaction.
//
// With -adaptive-opt, rule join orders are chosen by the feedback-driven
// adaptive optimizer: sampling runs once per rule, the chosen order is
// cached in a plan store shared across transactions, and re-sampling
// happens only when observed evaluation costs or input cardinalities
// drift. :plans dumps the plan store.
//
// Commands (everything else is interpreted as LogiQL):
//
//	:addblock <name> <<         start a multi-line block, terminated by ">>"
//	:removeblock <name>         uninstall a block
//	:load <name> <file>         install a block from a file
//	:import <pred> <file.csv>   bulk-load a base predicate from CSV
//	:blocks                     list installed blocks
//	:rel <predicate>            dump a predicate's contents
//	:branch <from> <to>         create a branch (O(1))
//	:checkout <branch>          switch the current branch
//	:branches                   list branches
//	:history                    list committed versions
//	:branchat <i> <name>        branch from a historical version (time travel)
//	:solve                      run the LP/MIP solver on the current logic
//	:check [file]               warning-tier program checks (dead rules,
//	                            unconsumed heads, singleton variables, …)
//	                            over the installed logic, optionally
//	                            merged with a candidate file
//	:plans                      dump the adaptive optimizer's plan store
//	                            with per-plan drift history
//	:save <file>                write a snapshot of all branches
//	:open <file>                replace the session with a saved snapshot
//	:help                       show this help
//	:quit                       exit
//
// A line starting with "?-" runs a query: `?- _(x) <- p(x).`
// Any other line is an exec transaction: `+sales["a", 1] = 10.`
package main

import (
	"bufio"
	"context"
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"logicblox"
	"logicblox/internal/durable"
)

func main() {
	stats := flag.Bool("stats", false, "print a per-rule profile table after every transaction")
	trace := flag.Bool("trace", false, "print a phase span tree after every transaction")
	adaptive := flag.Bool("adaptive-opt", false, "feedback-driven join-order optimization with a cached plan store")
	flag.Parse()

	var opts []logicblox.Option
	if *adaptive {
		opts = append(opts, logicblox.WithAdaptiveOptimizer())
	}
	r := &repl{db: logicblox.Open(opts...), branch: logicblox.DefaultBranch, out: os.Stdout}
	r.enableObs(*stats, *trace)
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)

	if args := flag.Args(); len(args) > 0 {
		f, err := os.Open(args[0])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		r.run(bufio.NewScanner(f), false)
		f.Close()
	}
	fmt.Fprintln(r.out, "logicblox repl — :help for commands")
	r.run(in, true)
}

// repl holds the session state; output goes to out so tests can capture it.
type repl struct {
	db     *logicblox.Database
	branch string
	out    io.Writer

	// observability: reg is non-nil when -stats or -trace was given; the
	// registry is reset at the start of every transaction so the printed
	// profile covers exactly that transaction.
	reg   *logicblox.ObsRegistry
	stats bool
	trace bool
}

// enableObs installs a process-wide metrics registry when profiling
// output was requested.
func (r *repl) enableObs(stats, trace bool) {
	if !stats && !trace {
		return
	}
	r.reg = logicblox.NewObsRegistry()
	r.stats, r.trace = stats, trace
	logicblox.SetDefaultObserver(r.reg)
	logicblox.EnableStorageStats(true)
}

// beginTx clears per-transaction profiling state.
func (r *repl) beginTx() {
	if r.reg != nil {
		r.reg.Reset()
	}
}

// profile prints the requested profiling output for the transaction that
// just ran.
func (r *repl) profile() {
	if r.reg == nil {
		return
	}
	snap := r.reg.Snapshot()
	if r.stats {
		fmt.Fprint(r.out, logicblox.FormatRuleTable(snap))
	}
	if r.trace {
		for _, t := range snap.Traces {
			fmt.Fprint(r.out, logicblox.FormatSpanTree(t))
		}
	}
}

func (r *repl) run(in *bufio.Scanner, interactive bool) {
	var blockName string
	var blockLines []string
	prompt := func() {
		if interactive {
			if blockName != "" {
				fmt.Fprint(r.out, "... ")
			} else {
				fmt.Fprintf(r.out, "%s> ", r.branch)
			}
		}
	}
	prompt()
	for in.Scan() {
		line := strings.TrimSpace(in.Text())
		if blockName != "" {
			if line == ">>" {
				r.installBlock(blockName, strings.Join(blockLines, "\n"))
				blockName, blockLines = "", nil
			} else {
				blockLines = append(blockLines, line)
			}
			prompt()
			continue
		}
		if line == "" || strings.HasPrefix(line, "//") {
			prompt()
			continue
		}
		if strings.HasPrefix(line, ":") {
			if !r.command(line, &blockName) {
				return
			}
			prompt()
			continue
		}
		if q, ok := strings.CutPrefix(line, "?-"); ok {
			r.query(q)
			prompt()
			continue
		}
		r.exec(line)
		prompt()
	}
}

func (r *repl) command(line string, blockName *string) bool {
	fields := strings.Fields(line)
	switch fields[0] {
	case ":quit", ":q":
		return false
	case ":help":
		fmt.Fprintln(r.out, "commands: :addblock <name> <<  |  :removeblock <name>  |  :load <name> <file>")
		fmt.Fprintln(r.out, "          :import <pred> <file.csv>")
		fmt.Fprintln(r.out, "          :blocks  :rel <pred>  :branch <from> <to>  :checkout <br>  :branches")
		fmt.Fprintln(r.out, "          :solve  :check [file]  :stats  :plans  :quit")
		fmt.Fprintln(r.out, "queries:  ?- _(x) <- p(x).        exec:  +p(\"a\").")
	case ":stats":
		if r.reg == nil {
			fmt.Fprintln(r.out, "profiling is off — start lb with -stats or -trace")
			break
		}
		snap := r.reg.Snapshot()
		fmt.Fprint(r.out, logicblox.FormatRuleTable(snap))
		fmt.Fprint(r.out, logicblox.FormatCounters(snap))
	case ":plans":
		ws := must(r.db.Workspace(r.branch))
		ps := ws.PlanStore()
		if ps == nil {
			fmt.Fprintln(r.out, "adaptive optimization is off — start lb with -adaptive-opt")
			break
		}
		fmt.Fprint(r.out, logicblox.FormatPlanTable(ps.Stats(), ps.Snapshot()))
	case ":check":
		if len(fields) > 2 {
			fmt.Fprintln(r.out, "usage: :check [file]")
			break
		}
		src := ""
		if len(fields) == 2 {
			data, err := os.ReadFile(fields[1])
			if err != nil {
				fmt.Fprintln(r.out, "error:", err)
				break
			}
			src = string(data)
		}
		ws := must(r.db.Workspace(r.branch))
		warns, err := ws.CheckProgram(src)
		if err != nil {
			fmt.Fprintln(r.out, "error:", err)
			break
		}
		for _, w := range warns {
			fmt.Fprintln(r.out, " ", w)
		}
		fmt.Fprintf(r.out, "  (%d warnings)\n", len(warns))
	case ":addblock":
		if len(fields) < 3 || fields[2] != "<<" {
			fmt.Fprintln(r.out, "usage: :addblock <name> <<")
			break
		}
		*blockName = fields[1]
	case ":removeblock":
		if len(fields) != 2 {
			fmt.Fprintln(r.out, "usage: :removeblock <name>")
			break
		}
		ws := must(r.db.Workspace(r.branch))
		next, err := ws.RemoveBlock(fields[1])
		if err != nil {
			fmt.Fprintln(r.out, "error:", err)
			break
		}
		r.commit(next)
		fmt.Fprintln(r.out, "removed", fields[1])
	case ":import":
		if len(fields) != 3 {
			fmt.Fprintln(r.out, "usage: :import <pred> <file.csv>")
			break
		}
		r.importCSV(fields[1], fields[2])
	case ":load":
		if len(fields) != 3 {
			fmt.Fprintln(r.out, "usage: :load <name> <file>")
			break
		}
		src, err := os.ReadFile(fields[2])
		if err != nil {
			fmt.Fprintln(r.out, "error:", err)
			break
		}
		r.installBlock(fields[1], string(src))
	case ":blocks":
		ws := must(r.db.Workspace(r.branch))
		for _, b := range ws.Blocks() {
			fmt.Fprintln(r.out, " ", b)
		}
	case ":rel":
		if len(fields) != 2 {
			fmt.Fprintln(r.out, "usage: :rel <predicate>")
			break
		}
		ws := must(r.db.Workspace(r.branch))
		rel := ws.Relation(fields[1])
		rel.ForEach(func(t logicblox.Tuple) bool {
			fmt.Fprintln(r.out, " ", t)
			return true
		})
		fmt.Fprintf(r.out, "  (%d tuples)\n", rel.Len())
	case ":branch":
		if len(fields) != 3 {
			fmt.Fprintln(r.out, "usage: :branch <from> <to>")
			break
		}
		if err := r.db.Branch(fields[1], fields[2]); err != nil {
			fmt.Fprintln(r.out, "error:", err)
		}
	case ":checkout":
		if len(fields) != 2 {
			fmt.Fprintln(r.out, "usage: :checkout <branch>")
			break
		}
		if _, err := r.db.Workspace(fields[1]); err != nil {
			fmt.Fprintln(r.out, "error:", err)
			break
		}
		r.branch = fields[1]
	case ":branches":
		for _, b := range r.db.Branches() {
			marker := "  "
			if b == r.branch {
				marker = "* "
			}
			fmt.Fprintln(r.out, marker+b)
		}
	case ":save":
		if len(fields) != 2 {
			fmt.Fprintln(r.out, "usage: :save <file>")
			break
		}
		// Atomic and fsynced: a crash mid-save leaves the previous file
		// intact, and the framed header lets :open detect corruption.
		if err := durable.WriteDatabaseSnapshot(durable.OS, fields[1], r.db); err != nil {
			fmt.Fprintln(r.out, "error:", err)
			break
		}
		fmt.Fprintln(r.out, "saved", fields[1])
	case ":open":
		if len(fields) != 2 {
			fmt.Fprintln(r.out, "usage: :open <file>")
			break
		}
		payload, err := durable.ReadSnapshotFile(durable.OS, fields[1])
		if err != nil {
			fmt.Fprintln(r.out, "error:", err)
			break
		}
		db, err := durable.LoadSnapshotPayload(payload)
		if err != nil {
			if errors.Is(err, logicblox.ErrCorruptSnapshot) {
				fmt.Fprintf(r.out, "error: %s is corrupt (%v)\n", fields[1], err)
			} else {
				fmt.Fprintln(r.out, "error:", err)
			}
			break
		}
		r.db = db
		r.branch = logicblox.DefaultBranch
		fmt.Fprintln(r.out, "opened", fields[1])
	case ":history":
		for i := 0; i < r.db.Versions(); i++ {
			v, _ := r.db.VersionAt(i)
			fmt.Fprintf(r.out, "  %3d  branch=%-12s version=%d blocks=%d\n",
				i, v.Branch, v.Workspace.Version(), len(v.Workspace.Blocks()))
		}
	case ":branchat":
		if len(fields) != 3 {
			fmt.Fprintln(r.out, "usage: :branchat <version> <name>")
			break
		}
		i, err := strconv.Atoi(fields[1])
		if err != nil {
			fmt.Fprintln(r.out, "error:", err)
			break
		}
		if err := r.db.BranchAt(i, fields[2]); err != nil {
			fmt.Fprintln(r.out, "error:", err)
		}
	case ":solve":
		ws := must(r.db.Workspace(r.branch))
		next, sol, err := ws.Solve()
		if err != nil {
			fmt.Fprintln(r.out, "error:", err)
			break
		}
		r.commit(next)
		fmt.Fprintf(r.out, "solved: objective = %g\n", sol.Objective)
	default:
		fmt.Fprintln(r.out, "unknown command", fields[0], "(:help)")
	}
	return true
}

func (r *repl) installBlock(name, src string) {
	r.beginTx()
	defer r.profile()
	ws := must(r.db.Workspace(r.branch))
	next, err := ws.AddBlock(name, src)
	if err != nil {
		fmt.Fprintln(r.out, "error:", err)
		return
	}
	r.commit(next)
	fmt.Fprintln(r.out, "installed block", name)
}

func (r *repl) exec(src string) {
	r.beginTx()
	defer r.profile()
	ws := must(r.db.Workspace(r.branch))
	res, err := ws.Exec(src)
	if err != nil {
		fmt.Fprintln(r.out, "error:", err)
		return
	}
	r.commit(res.Workspace)
	n := 0
	for _, d := range res.BaseDeltas {
		n += len(d.Ins) + len(d.Del)
	}
	fmt.Fprintf(r.out, "ok (%d changes)\n", n)
}

func (r *repl) query(src string) {
	r.beginTx()
	defer r.profile()
	ws := must(r.db.Workspace(r.branch))
	// Pull-based: rows print as the join iterators produce them, so a
	// huge answer starts appearing immediately and is never buffered.
	cur, err := ws.QueryStream(context.Background(), src)
	if err != nil {
		fmt.Fprintln(r.out, "error:", err)
		return
	}
	n := 0
	for row, ok := cur.Next(); ok; row, ok = cur.Next() {
		fmt.Fprintln(r.out, " ", row)
		n++
	}
	err = cur.Err()
	cur.Close()
	if err != nil {
		fmt.Fprintln(r.out, "error:", err)
		return
	}
	fmt.Fprintf(r.out, "  (%d rows)\n", n)
}

// importCSV bulk-loads a base predicate from a CSV file. Each cell is
// parsed as an int, then a float, then kept as a string.
func (r *repl) importCSV(pred, path string) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(r.out, "error:", err)
		return
	}
	defer f.Close()
	records, err := csv.NewReader(f).ReadAll()
	if err != nil {
		fmt.Fprintln(r.out, "error:", err)
		return
	}
	var tuples []logicblox.Tuple
	for _, rec := range records {
		t := make(logicblox.Tuple, len(rec))
		for i, cell := range rec {
			if n, err := strconv.ParseInt(cell, 10, 64); err == nil {
				t[i] = logicblox.Int(n)
			} else if x, err := strconv.ParseFloat(cell, 64); err == nil {
				t[i] = logicblox.Float(x)
			} else {
				t[i] = logicblox.String(cell)
			}
		}
		tuples = append(tuples, t)
	}
	ws := must(r.db.Workspace(r.branch))
	next, err := ws.Load(pred, tuples)
	if err != nil {
		fmt.Fprintln(r.out, "error:", err)
		return
	}
	r.commit(next)
	fmt.Fprintf(r.out, "imported %d rows into %s\n", len(tuples), pred)
}

func (r *repl) commit(ws *logicblox.Workspace) {
	if err := r.db.Commit(r.branch, ws); err != nil {
		fmt.Fprintln(r.out, "commit error:", err)
	}
}

func must(ws *logicblox.Workspace, err error) *logicblox.Workspace {
	if err != nil {
		fmt.Fprintln(os.Stderr, "fatal:", err)
		os.Exit(1)
	}
	return ws
}
