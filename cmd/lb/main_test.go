package main

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"logicblox"
)

// runScript feeds a script to a fresh REPL and returns the output.
func runScript(t *testing.T, script string) string {
	t.Helper()
	var out strings.Builder
	r := &repl{db: logicblox.Open(), branch: logicblox.DefaultBranch, out: &out}
	r.run(bufio.NewScanner(strings.NewReader(script)), false)
	return out.String()
}

func TestReplEndToEnd(t *testing.T) {
	out := runScript(t, `
:addblock catalog <<
price[p] = v -> string(p), float(v).
cheap(p) <- price[p] = v, v < 2.0.
>>
+price["a"] = 1.0. +price["b"] = 3.0.
?- _(p) <- cheap(p).
:rel price
:blocks
`)
	for _, want := range []string{
		"installed block catalog",
		"ok (2 changes)",
		`("a")`,
		"(1 rows)",
		"(2 tuples)",
		"catalog",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestReplBranching(t *testing.T) {
	out := runScript(t, `
:addblock s <<
n(x) -> int(x).
>>
+n(1).
:branch main other
:checkout other
+n(2).
:branches
:checkout main
:rel n
`)
	if !strings.Contains(out, "* other") && !strings.Contains(out, "other") {
		t.Errorf("branch listing missing:\n%s", out)
	}
	// Back on main, n has only one tuple.
	if !strings.Contains(out, "(1 tuples)") {
		t.Errorf("branch isolation broken:\n%s", out)
	}
}

func TestReplErrors(t *testing.T) {
	out := runScript(t, `
:nonsense
:rel
+bad syntax here
:checkout missing
:solve
`)
	for _, want := range []string{
		"unknown command",
		"usage: :rel",
		"error:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestReplQuit(t *testing.T) {
	out := runScript(t, ":quit\n+never(1).\n")
	if strings.Contains(out, "ok (") {
		t.Errorf("lines after :quit were executed:\n%s", out)
	}
}

func TestReplSolve(t *testing.T) {
	out := runScript(t, `
:addblock plan <<
profitPer[p] = v -> Item(p), float(v).
Buy[p] = v -> Item(p), float(v).
cap[] = v -> float(v).
totalBuy[] = u <- agg<<u = sum(x)>> Buy[p] = x.
totalProfit[] = u <- agg<<u = sum(z)>> Buy[p] = x, profitPer[p] = y, z = x * y.
Item(p) -> Buy[p] >= 0.0.
totalBuy[] = u, cap[] = v -> u <= v.
lang:solve:variable(`+"`Buy"+`).
lang:solve:max(`+"`totalProfit"+`).
>>
+Item("x"). +profitPer["x"] = 2.0. +cap[] = 5.0.
:solve
:rel Buy
`)
	if !strings.Contains(out, "solved: objective = 10") {
		t.Errorf("solve output missing:\n%s", out)
	}
}

func TestReplImportCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sales.csv")
	if err := os.WriteFile(path, []byte("widget,3,1.5\ngadget,7,2.25\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runScript(t, `
:addblock s <<
sales(p, n, v) -> string(p), int(n), float(v).
>>
:import sales `+path+`
?- _(p) <- sales(p, n, v), n > 5.
`)
	if !strings.Contains(out, "imported 2 rows into sales") {
		t.Errorf("import missing:\n%s", out)
	}
	if !strings.Contains(out, `("gadget")`) {
		t.Errorf("query over imported data failed:\n%s", out)
	}
}

func TestReplHistoryAndTimeTravel(t *testing.T) {
	out := runScript(t, `
:addblock s <<
n(x) -> int(x).
>>
+n(1).
+n(2).
:history
:branchat 1 past
:checkout past
:rel n
`)
	if !strings.Contains(out, "branch=main") {
		t.Errorf("history missing:\n%s", out)
	}
	// Version 1 is right after the block install, before any +n: 0 tuples.
	if !strings.Contains(out, "(0 tuples)") {
		t.Errorf("time travel returned wrong state:\n%s", out)
	}
}

func TestReplSaveOpen(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "db.lbsnap")
	out := runScript(t, `
:addblock s <<
n(x) -> int(x).
>>
+n(1). +n(2).
:save `+snap+`
+n(3).
:open `+snap+`
:rel n
`)
	if !strings.Contains(out, "saved") || !strings.Contains(out, "opened") {
		t.Fatalf("save/open missing:\n%s", out)
	}
	// After reopening the snapshot, n(3) is gone: 2 tuples.
	if !strings.Contains(out, "(2 tuples)") {
		t.Errorf("snapshot state wrong:\n%s", out)
	}
}

// runScriptObs is runScript with -stats / -trace profiling enabled.
func runScriptObs(t *testing.T, stats, trace bool, script string) string {
	t.Helper()
	var out strings.Builder
	r := &repl{db: logicblox.Open(), branch: logicblox.DefaultBranch, out: &out}
	r.enableObs(stats, trace)
	defer logicblox.SetDefaultObserver(nil)
	r.run(bufio.NewScanner(strings.NewReader(script)), false)
	return out.String()
}

func TestReplStatsTable(t *testing.T) {
	out := runScriptObs(t, true, false, `
:addblock s <<
path(x, y) <- edge(x, y).
path(x, z) <- path(x, y), edge(y, z).
>>
+edge(1, 2). +edge(2, 3).
?- _(x, y) <- path(x, y).
:stats
`)
	// Each transaction is followed by a per-rule profile table.
	for _, want := range []string{"RULE HEAD", "SEEKS", "NEXTS", "TOTAL", "path"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats output missing %q:\n%s", want, out)
		}
	}
	// The recursive rule must show leapfrog work in some table row.
	found := false
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "path") && !strings.Contains(line, "0         0         0 ") {
			found = true
		}
	}
	if !found {
		t.Errorf("no path row with nonzero join counters:\n%s", out)
	}
	// :stats additionally dumps counters for the last transaction; the
	// REPL's ?- runs through the streaming cursor.
	if !strings.Contains(out, "tx.query.stream.commit") {
		t.Errorf(":stats missing counters:\n%s", out)
	}
}

func TestReplStatsPercentiles(t *testing.T) {
	out := runScriptObs(t, true, false, `
:addblock s <<
q(x) <- p(x).
>>
+p(1). +p(2).
?- _(x) <- q(x).
:stats
`)
	// Histogram lines in the :stats counter dump carry estimated
	// latency percentiles alongside count/mean/min/max.
	for _, want := range []string{"p50=", "p95=", "p99="} {
		if !strings.Contains(out, want) {
			t.Errorf(":stats output missing %q:\n%s", want, out)
		}
	}
}

func TestReplTraceTree(t *testing.T) {
	out := runScriptObs(t, false, true, `
:addblock s <<
q(x) <- p(x).
>>
+p(1).
`)
	for _, want := range []string{"tx.addblock", "tx.exec", "rederive", "rule:q", "base_ins=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q:\n%s", want, out)
		}
	}
}

func TestReplCheck(t *testing.T) {
	out := runScript(t, `
:addblock orphan <<
flagged(sku) <- sales(sku, week).
>>
:check
`)
	for _, want := range []string{
		"singleton-var",
		`"week"`,
		"unconsumed",
		`"flagged"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestReplCheckFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "candidate.logic")
	if err := os.WriteFile(path, []byte("report(sku) <- flagged(sku).\nreport(sku) -> string(sku).\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runScript(t, `
:addblock producer <<
flagged(sku) <- sales(sku).
>>
:check `+path+`
`)
	// The candidate consumes flagged, so the unconsumed warning the bare
	// workspace would produce must be gone.
	if strings.Contains(out, "unconsumed") {
		t.Errorf("candidate consumer should clear unconsumed warning:\n%s", out)
	}
	if !strings.Contains(out, "(0 warnings)") {
		t.Errorf("expected a clean check:\n%s", out)
	}
}
