package mln

import (
	"fmt"
	"math"

	"logicblox/internal/relation"
	"logicblox/internal/solver"
	"logicblox/internal/tuple"
)

// Probabilistic-programming Datalog (paper §2.3.3, following Bárány, ten
// Cate, Kimelfeld, Olteanu & Vagena 2014): rules may draw conclusions
// from numerical probability distributions — Flip[r] is a Bernoulli coin
// — and observations condition the induced probability space. This file
// implements the paper's worked example structure: boolean unknowns with
// Bernoulli priors (Promotion[p] = Flip[0.01]), boolean children whose
// rate is a function of a parent unknown (Buys[c,p] = Flip[r] ←
// BuyRate[p,b] = r, Promotion[p] = b), and MAP inference over the joint
// space conditioned on observations — compiled to an integer program and
// solved with the prescriptive-analytics machinery.

// BernoulliPrior declares a boolean unknown predicate with an independent
// Bernoulli(P) prior per key (Promotion[p] = Flip[P]).
type BernoulliPrior struct {
	Pred string
	Keys relation.Relation // the key domain
	P    float64
}

// Conditional declares a boolean predicate whose Bernoulli rate depends
// on one parent unknown (Buys[c,p] = Flip[r] with r = Rate(key, parent)).
type Conditional struct {
	Pred       string
	Keys       relation.Relation // child key domain
	ParentPred string
	// ParentOf projects a child key to its parent's key
	// (e.g. (c, p) ↦ (p)).
	ParentOf func(child tuple.Tuple) tuple.Tuple
	// Rate gives P(child = 1 | parent value).
	Rate func(child tuple.Tuple, parent bool) float64
}

// ProbProgram is a probabilistic Datalog program: priors, conditionals,
// and observations (the conditioning of §2.3.3: Visited(c), Bought[c,p]=b
// → Buys[c,p]=b).
type ProbProgram struct {
	Priors       []BernoulliPrior
	Conditionals []Conditional
	// Observed fixes child (or prior) atoms: pred → key.String() → value.
	Observed map[string]map[string]bool
}

// MAPWorld is the most likely joint assignment.
type MAPWorld struct {
	// True holds, per predicate, the keys assigned true.
	True map[string]relation.Relation
	// LogLikelihood of the MAP world (up to the constant terms included).
	LogLikelihood float64
}

const probEps = 1e-9

func clampProb(p float64) float64 {
	if p < probEps {
		return probEps
	}
	if p > 1-probEps {
		return 1 - probEps
	}
	return p
}

// MAPInfer computes the maximum-a-posteriori world of the program by
// grounding it into an integer program: one 0/1 variable per prior and
// child atom, a product variable per (parent, child) pair linearized with
// the standard AND constraints, and the log-likelihood as the objective.
func MAPInfer(p *ProbProgram) (*MAPWorld, error) {
	varIdx := map[string]int{}
	varKey := map[int]struct {
		pred string
		key  tuple.Tuple
	}{}
	nextVar := func(pred string, key tuple.Tuple) int {
		id := pred + "\x00" + key.String()
		if i, ok := varIdx[id]; ok {
			return i
		}
		i := len(varIdx)
		varIdx[id] = i
		varKey[i] = struct {
			pred string
			key  tuple.Tuple
		}{pred, key.Clone()}
		return i
	}

	var objective []float64
	objConst := 0.0
	ensure := func(i int) {
		for len(objective) <= i {
			objective = append(objective, 0)
		}
	}
	var cons []solver.LinConstraint
	bound01 := func(i int) {
		cons = append(cons, solver.LinConstraint{Coeffs: map[int]float64{i: 1}, Op: solver.LE, RHS: 1})
	}

	// Priors: x·log π + (1−x)·log(1−π).
	for _, pr := range p.Priors {
		pi := clampProb(pr.P)
		wx := math.Log(pi) - math.Log(1-pi)
		pr.Keys.ForEach(func(k tuple.Tuple) bool {
			x := nextVar(pr.Pred, k)
			ensure(x)
			bound01(x)
			objective[x] += wx
			objConst += math.Log(1 - pi)
			return true
		})
	}

	// Conditionals: linearize y's likelihood through z = x ∧ y.
	auxStart := 0
	type auxVar struct{ x, y int }
	var auxes []auxVar
	for _, c := range p.Conditionals {
		var err error
		c.Keys.ForEach(func(k tuple.Tuple) bool {
			parentKey := c.ParentOf(k)
			xID := c.ParentPred + "\x00" + parentKey.String()
			x, ok := varIdx[xID]
			if !ok {
				err = fmt.Errorf("mln: conditional %s key %s references undeclared parent %s%s",
					c.Pred, k, c.ParentPred, parentKey)
				return false
			}
			y := nextVar(c.Pred, k)
			ensure(y)
			bound01(y)
			r1 := clampProb(c.Rate(k, true))
			r0 := clampProb(c.Rate(k, false))
			// LL = z·log r1 + (y−z)·log r0 + (x−z)·log(1−r1)
			//      + (1−x−y+z)·log(1−r0), with z = x·y.
			auxes = append(auxes, auxVar{x: x, y: y})
			objective[y] += math.Log(r0) - math.Log(1-r0)
			ensure(x)
			objective[x] += math.Log(1-r1) - math.Log(1-r0)
			objConst += math.Log(1 - r0)
			// z's coefficient is attached below once z has an index.
			return true
		})
		if err != nil {
			return nil, err
		}
	}
	auxStart = len(varIdx)
	// Assign aux z variables after all atoms, re-walking the conditionals
	// in the same order to recover the rates.
	zi := auxStart
	ai := 0
	for _, c := range p.Conditionals {
		c.Keys.ForEach(func(k tuple.Tuple) bool {
			a := auxes[ai]
			ai++
			r1 := clampProb(c.Rate(k, true))
			r0 := clampProb(c.Rate(k, false))
			ensure(zi)
			bound01(zi)
			objective[zi] += math.Log(r1) - math.Log(r0) - math.Log(1-r1) + math.Log(1-r0)
			// z = x ∧ y: z ≤ x, z ≤ y, z ≥ x + y − 1.
			cons = append(cons,
				solver.LinConstraint{Coeffs: map[int]float64{zi: 1, a.x: -1}, Op: solver.LE, RHS: 0},
				solver.LinConstraint{Coeffs: map[int]float64{zi: 1, a.y: -1}, Op: solver.LE, RHS: 0},
				solver.LinConstraint{Coeffs: map[int]float64{zi: 1, a.x: -1, a.y: -1}, Op: solver.GE, RHS: -1},
			)
			zi++
			return true
		})
	}

	// Observations pin atom variables.
	for pred, obs := range p.Observed {
		for ks, truth := range obs {
			id := pred + "\x00" + ks
			i, ok := varIdx[id]
			if !ok {
				continue
			}
			rhs := 0.0
			if truth {
				rhs = 1
			}
			cons = append(cons, solver.LinConstraint{Coeffs: map[int]float64{i: 1}, Op: solver.EQ, RHS: rhs})
		}
	}

	numVars := zi
	prob := &solver.Problem{
		NumVars:     numVars,
		Objective:   objective,
		Constraints: cons,
		Integer:     make([]bool, numVars),
	}
	for i := range prob.Integer {
		prob.Integer[i] = true
	}
	sol, err := solver.SolveMIP(prob)
	if err != nil {
		return nil, err
	}
	if sol.Status != solver.Optimal {
		return nil, fmt.Errorf("mln: MAP inference %s", sol.Status)
	}
	out := &MAPWorld{True: map[string]relation.Relation{}, LogLikelihood: sol.Objective + objConst}
	arities := map[string]int{}
	for i := 0; i < auxStart; i++ {
		vk := varKey[i]
		if _, ok := arities[vk.pred]; !ok {
			arities[vk.pred] = len(vk.key)
			out.True[vk.pred] = relation.New(len(vk.key))
		}
		if sol.X[i] > 0.5 {
			out.True[vk.pred] = out.True[vk.pred].Insert(vk.key)
		}
	}
	return out, nil
}
