package durable

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"logicblox/internal/core"
)

// Framed snapshot format. A bare gob stream cannot tell a torn write
// from valid data (most bit flips break the self-describing stream, but
// not all), so every snapshot file carries a fixed header:
//
//	offset  0  magic "LBSNAP1\n" (8 bytes)
//	offset  8  format version, uint32 big-endian (currently 1)
//	offset 12  CRC-32C (Castagnoli) of the payload, uint32 big-endian
//	offset 16  payload length, uint64 big-endian
//	offset 24  payload (the core gob snapshot)
//
// A reader validates magic, version, length and checksum before handing
// the payload to core.LoadDatabase; any mismatch is ErrCorruptSnapshot
// and recovery falls back to the previous generation.

var snapMagic = [8]byte{'L', 'B', 'S', 'N', 'A', 'P', '1', '\n'}

const (
	snapVersion    = 1
	snapHeaderSize = 24
	// snapExt names snapshot generation files: snap-<seq, hex>.lbsnap.
	snapExt = ".lbsnap"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frameSnapshot prepends the framed header to payload.
func frameSnapshot(payload []byte) []byte {
	out := make([]byte, snapHeaderSize, snapHeaderSize+len(payload))
	copy(out, snapMagic[:])
	binary.BigEndian.PutUint32(out[8:], snapVersion)
	binary.BigEndian.PutUint32(out[12:], crc32.Checksum(payload, castagnoli))
	binary.BigEndian.PutUint64(out[16:], uint64(len(payload)))
	return append(out, payload...)
}

// unframeSnapshot validates a framed snapshot and returns its payload.
// isFramed distinguishes "not our format" (legacy raw gob, callers may
// fall back) from a framed file that fails validation (corrupt).
func unframeSnapshot(raw []byte) (payload []byte, isFramed bool, err error) {
	if len(raw) < len(snapMagic) || !bytes.Equal(raw[:len(snapMagic)], snapMagic[:]) {
		return nil, false, nil
	}
	if len(raw) < snapHeaderSize {
		return nil, true, fmt.Errorf("%w: truncated snapshot header (%d bytes)", core.ErrCorruptSnapshot, len(raw))
	}
	if v := binary.BigEndian.Uint32(raw[8:]); v != snapVersion {
		return nil, true, fmt.Errorf("unsupported snapshot format version %d", v)
	}
	want := binary.BigEndian.Uint32(raw[12:])
	n := binary.BigEndian.Uint64(raw[16:])
	body := raw[snapHeaderSize:]
	if uint64(len(body)) < n {
		return nil, true, fmt.Errorf("%w: truncated snapshot payload (%d of %d bytes)", core.ErrCorruptSnapshot, len(body), n)
	}
	body = body[:n]
	if got := crc32.Checksum(body, castagnoli); got != want {
		return nil, true, fmt.Errorf("%w: snapshot checksum mismatch (got %08x, want %08x)", core.ErrCorruptSnapshot, got, want)
	}
	return body, true, nil
}

// WriteSnapshotFile writes the payload produced by save to path as a
// framed, checksummed snapshot with full crash safety (temp file, file
// fsync, rename, directory fsync). It is the helper behind the REPL's
// :save, lb-serve's single-file snapshot mode, and the Store's
// checkpoint generations.
func WriteSnapshotFile(fsys FS, path string, save func(io.Writer) error) error {
	if fsys == nil {
		fsys = OS
	}
	var buf bytes.Buffer
	if err := save(&buf); err != nil {
		return err
	}
	framed := frameSnapshot(buf.Bytes())
	return writeFileAtomic(fsys, path, func(w io.Writer) error {
		_, err := w.Write(framed)
		return err
	})
}

// ReadSnapshotFile reads a snapshot file and returns its validated
// payload. Files without the framed header are returned whole: the
// legacy format was a bare gob stream, and core.LoadDatabase's own
// hardening covers it.
func ReadSnapshotFile(fsys FS, path string) ([]byte, error) {
	if fsys == nil {
		fsys = OS
	}
	f, err := fsys.OpenRead(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	raw, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	payload, isFramed, err := unframeSnapshot(raw)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if !isFramed {
		return raw, nil
	}
	return payload, nil
}

// WriteDatabaseSnapshot writes db's full snapshot to one framed,
// checksummed file with full crash safety — the single-file flavor the
// REPL's :save and lb-serve's -snapshot mode use.
func WriteDatabaseSnapshot(fsys FS, path string, db *core.Database) error {
	return WriteSnapshotFile(fsys, path, func(w io.Writer) error {
		_, err := db.SaveSnapshot(w)
		return err
	})
}

// LoadSnapshotPayload restores a database from a payload returned by
// ReadSnapshotFile. Failures carry core.ErrCorruptSnapshot.
func LoadSnapshotPayload(payload []byte) (*core.Database, error) {
	return core.LoadDatabase(bytes.NewReader(payload))
}

// snapName names the generation file for a checkpoint sequence number.
// Zero-padded hex keeps lexical order equal to numeric order.
func snapName(seq uint64) string {
	return fmt.Sprintf("snap-%016x%s", seq, snapExt)
}

// snapSeq parses a generation file name; ok is false for other files.
func snapSeq(name string) (uint64, bool) {
	rest, found := strings.CutPrefix(name, "snap-")
	if !found {
		return 0, false
	}
	rest, found = strings.CutSuffix(rest, snapExt)
	if !found || len(rest) != 16 {
		return 0, false
	}
	seq, err := strconv.ParseUint(rest, 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// listGenerations returns the snapshot generation seqs in dir, ascending.
func listGenerations(fsys FS, dir string) ([]uint64, error) {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, name := range names {
		if seq, ok := snapSeq(name); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// pruneGenerations removes the oldest generation files beyond keep and
// returns the retained seqs (ascending). The removals are made durable
// with a single directory fsync.
func pruneGenerations(fsys FS, dir string, seqs []uint64, keep int) ([]uint64, error) {
	if keep < 1 {
		keep = 1
	}
	if len(seqs) <= keep {
		return seqs, nil
	}
	drop := seqs[:len(seqs)-keep]
	for _, seq := range drop {
		if err := fsys.Remove(filepath.Join(dir, snapName(seq))); err != nil {
			return seqs, err
		}
	}
	if err := fsys.SyncDir(dir); err != nil {
		return seqs, err
	}
	return append([]uint64(nil), seqs[len(seqs)-keep:]...), nil
}
