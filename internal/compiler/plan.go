package compiler

import (
	"logicblox/internal/ast"
	"logicblox/internal/tuple"
)

// Decorated predicate names: reactive rules refer to versioned and delta
// predicates (paper §2.2.1). The engine evaluates rules over a context of
// named relations, so deltas and versions are simply distinct names.
//
//	R         — current content
//	R@start   — content at transaction start
//	+R        — insertions of the current transaction
//	-R        — deletions of the current transaction
//	^R        — upsert pseudo-predicate, expanded into +R/-R
const (
	DecorPlus    = "+"
	DecorMinus   = "-"
	DecorHat     = "^"
	DecorAtStart = "@start"
)

// DecoratedName returns the context name for a predicate occurrence.
func DecoratedName(pred string, delta ast.DeltaKind, atStart bool) string {
	name := pred
	switch delta {
	case ast.DeltaPlus:
		name = DecorPlus + name
	case ast.DeltaMinus:
		name = DecorMinus + name
	case ast.DeltaHat:
		name = DecorHat + name
	}
	if atStart {
		name += DecorAtStart
	}
	return name
}

// BaseName strips delta/version decorations from a context name.
func BaseName(name string) string {
	for len(name) > 0 && (name[0] == '+' || name[0] == '-' || name[0] == '^') {
		name = name[1:]
	}
	if n := len(name) - len(DecorAtStart); n > 0 && name[n:] == DecorAtStart {
		name = name[:n]
	}
	return name
}

// PredInfo is catalog metadata for one predicate.
type PredInfo struct {
	Name       string
	Arity      int
	Functional bool // declared/used in the bracket shape R[k...] = v
	EDB        bool // extensional (base); inferred unless declared
	// ColumnKinds holds per-column type constraints harvested from type
	// declarations; tuple.KindNull means unconstrained.
	ColumnKinds []tuple.Kind
}

// AtomPlan is a planned positive body atom: which stored relation to scan,
// under what column permutation, binding which join variables.
type AtomPlan struct {
	Name string // decorated context name
	// Perm maps plan columns to stored columns: plan column i reads stored
	// column Perm[i]. nil means identity (no secondary index needed).
	Perm []int
	// Vars[i] is the join variable bound by plan column i; strictly
	// increasing, as leapfrog triejoin requires.
	Vars []int
}

// ConstBind is a virtual constant predicate joined on one variable
// (the rewrite of constants in atoms, paper §3.2).
type ConstBind struct {
	Var int
	Val tuple.Value
}

// GroundAtom is an atom whose arguments are all computable at check time:
// negated body atoms and constraint-head atoms. A nil Expr is a wildcard
// (match anything at that column).
type GroundAtom struct {
	Name string // decorated context name
	Args []Expr // len = predicate arity; nil entries are wildcards
}

// FilterPlan is a comparison checked after variables are bound.
type FilterPlan struct {
	Op   string
	L, R Expr
}

// AssignPlan computes a non-join variable from bound ones.
type AssignPlan struct {
	Slot int
	E    Expr
}

// TypeCheck asserts that a slot holds a value of a primitive kind
// (constraint heads like float(v)).
type TypeCheck struct {
	Slot int
	Kind tuple.Kind
}

// AggPlan describes the aggregation of a P2P rule body (paper §2.2.1).
// ArgSlot is the aggregated variable's slot, or -1 for count.
type AggPlan struct {
	Func    string
	ArgSlot int
}

// PredictPlan describes a predict P2P rule (paper §2.3.2).
type PredictPlan struct {
	Func          string // logist, linear (learning) or eval
	ValueSlot     int    // observed value (learning) / model handle (eval)
	FeatureSlot   int    // feature value variable
	ValueKeySlots []int  // slots identifying a training example (e.g. wk)
	FeatNameSlots []int  // slots identifying a feature (e.g. n)
}

// RulePlan is an executable derivation rule. Bindings are tuples of
// Slots values: the first NumJoinVars slots are leapfrog join variables,
// the rest are assigned (computed) variables.
type RulePlan struct {
	ID          int
	Source      string // pretty-printed original rule
	HeadName    string // decorated head predicate name
	HeadArity   int
	HeadExprs   []Expr // one per head column (for agg/predict: key columns only)
	NumJoinVars int
	Slots       int
	VarNames    []string
	Atoms       []AtomPlan
	Consts      []ConstBind
	NegAtoms    []GroundAtom
	Filters     []FilterPlan
	Assigns     []AssignPlan // in dependency order
	Agg         *AggPlan
	Predict     *PredictPlan
	// BodyNames / NegNames list decorated body predicate names for
	// dependency tracking (positive and negated occurrences).
	BodyNames []string
	NegNames  []string
}

// ConstraintPlan is a compiled integrity constraint F -> G: the body plan
// enumerates bindings of F; for each, every head check must pass.
type ConstraintPlan struct {
	ID     int
	Source string
	// Body reuses RulePlan machinery with no head.
	Body      *RulePlan
	HeadAtoms []GroundAtom
	// HeadNegAtoms records negated head atoms structurally (in addition
	// to the "!exists" entry in HeadChecks), for consumers like the MLN
	// grounding that need the atom's predicate and argument expressions.
	HeadNegAtoms []GroundAtom
	HeadChecks   []FilterPlan
	HeadTypes    []TypeCheck
}

// SolveSpec captures the lang:solve directives of a block (paper §2.3.1).
type SolveSpec struct {
	Variables []string // free second-order predicate variables
	Maximize  string   // objective predicate (nullary functional), or ""
	Minimize  string
	Integral  []string // predicates constrained to integer values (MIP)
}

// Program is the compiled form of a block set: catalog, plans, and
// stratification.
type Program struct {
	Preds          map[string]*PredInfo
	Rules          []*RulePlan // static derivation rules (no deltas)
	Reactive       []*RulePlan // rules mentioning delta/@start predicates
	Constraints    []*ConstraintPlan
	Strata         [][]*RulePlan // static rules grouped into evaluation strata
	ReactiveStrata [][]*RulePlan // reactive rules in evaluation order (exec pipeline)
	Solve          *SolveSpec
	// IDBPreds lists derived predicate names in stratum order.
	IDBPreds []string
}

// References lists every predicate name a constraint touches (body atoms,
// negated atoms, head atoms, and functional lookups in head checks). The
// workspace uses it to defer constraints over free solver predicates to
// the prescriptive-analytics machinery instead of enforcing them at
// transaction time.
func (k *ConstraintPlan) References() []string {
	set := map[string]bool{}
	for _, a := range k.Body.Atoms {
		set[BaseName(a.Name)] = true
	}
	for _, n := range k.Body.NegNames {
		set[BaseName(n)] = true
	}
	for _, ha := range k.HeadAtoms {
		set[BaseName(ha.Name)] = true
	}
	for _, ha := range k.HeadNegAtoms {
		set[BaseName(ha.Name)] = true
	}
	for _, hc := range k.HeadChecks {
		collectExprPreds(hc.L, set)
		collectExprPreds(hc.R, set)
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	return out
}

func collectExprPreds(e Expr, set map[string]bool) {
	switch e := e.(type) {
	case FuncGetExpr:
		set[BaseName(e.Name)] = true
		for _, a := range e.Args {
			collectExprPreds(a, set)
		}
	case ArithExpr:
		collectExprPreds(e.L, set)
		collectExprPreds(e.R, set)
	case existsExpr:
		set[BaseName(e.name)] = true
		for _, a := range e.args {
			if a != nil {
				collectExprPreds(a, set)
			}
		}
	}
}
