package relation

import (
	"math/rand"
	"testing"
	"testing/quick"

	"logicblox/internal/tuple"
)

func TestInsertContainsDelete(t *testing.T) {
	r := New(2)
	r1 := r.Insert(tuple.Ints(1, 2)).Insert(tuple.Ints(3, 4))
	if r1.Len() != 2 || !r1.Contains(tuple.Ints(1, 2)) {
		t.Fatalf("insert failed")
	}
	if r.Len() != 0 {
		t.Fatalf("persistence violated")
	}
	r2 := r1.Delete(tuple.Ints(1, 2))
	if r2.Contains(tuple.Ints(1, 2)) || !r1.Contains(tuple.Ints(1, 2)) {
		t.Fatalf("delete failed")
	}
	// Set semantics: re-inserting is a no-op for contents.
	r3 := r1.Insert(tuple.Ints(1, 2))
	if r3.Len() != 2 || !r1.Equal(r3) {
		t.Fatalf("duplicate insert changed relation")
	}
}

func TestArityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2).Insert(tuple.Ints(1))
}

func TestSetOpsAndEquality(t *testing.T) {
	a := FromTuples(1, []tuple.Tuple{tuple.Ints(1), tuple.Ints(2), tuple.Ints(3)})
	b := FromTuples(1, []tuple.Tuple{tuple.Ints(2), tuple.Ints(3), tuple.Ints(4)})
	if got := a.Union(b).Len(); got != 4 {
		t.Fatalf("union len = %d", got)
	}
	if got := a.Intersect(b).Len(); got != 2 {
		t.Fatalf("intersect len = %d", got)
	}
	d := a.Difference(b)
	if d.Len() != 1 || !d.Contains(tuple.Ints(1)) {
		t.Fatalf("difference wrong")
	}
	if !a.Equal(FromTuples(1, []tuple.Tuple{tuple.Ints(3), tuple.Ints(1), tuple.Ints(2)})) {
		t.Fatalf("order-insensitive equality failed")
	}
	if a.StructuralHash() == b.StructuralHash() {
		t.Fatalf("different relations with same hash (unexpected collision)")
	}
}

func TestDiffEnumeratesChanges(t *testing.T) {
	old := FromTuples(2, []tuple.Tuple{tuple.Ints(1, 1), tuple.Ints(2, 2), tuple.Ints(3, 3)})
	upd := old.Delete(tuple.Ints(2, 2)).Insert(tuple.Ints(4, 4))
	var dels, inss []tuple.Tuple
	old.Diff(upd, func(x tuple.Tuple) { dels = append(dels, x) }, func(x tuple.Tuple) { inss = append(inss, x) })
	if len(dels) != 1 || !dels[0].Equal(tuple.Ints(2, 2)) {
		t.Fatalf("dels = %v", dels)
	}
	if len(inss) != 1 || !inss[0].Equal(tuple.Ints(4, 4)) {
		t.Fatalf("inss = %v", inss)
	}
}

func TestPermutedAndProject(t *testing.T) {
	r := FromTuples(3, []tuple.Tuple{tuple.Ints(1, 2, 3), tuple.Ints(4, 5, 6)})
	p := r.Permuted([]int{2, 1, 0})
	if !p.Contains(tuple.Ints(3, 2, 1)) || !p.Contains(tuple.Ints(6, 5, 4)) {
		t.Fatalf("permute wrong: %v", p.Slice())
	}
	pr := r.Project(2)
	if pr.Arity() != 2 || !pr.Contains(tuple.Ints(1, 2)) || pr.Len() != 2 {
		t.Fatalf("project wrong: %v", pr.Slice())
	}
	dup := FromTuples(2, []tuple.Tuple{tuple.Ints(1, 2), tuple.Ints(1, 3)})
	if got := dup.Project(1).Len(); got != 1 {
		t.Fatalf("project should dedup, got %d", got)
	}
}

func TestLookupAndFuncGet(t *testing.T) {
	r := FromTuples(2, []tuple.Tuple{
		tuple.Of(tuple.String("a"), tuple.Int(1)),
		tuple.Of(tuple.String("b"), tuple.Int(2)),
		tuple.Of(tuple.String("b"), tuple.Int(3)),
		tuple.Of(tuple.String("c"), tuple.Int(4)),
	})
	got := r.Lookup(tuple.Strings("b"))
	if len(got) != 2 || got[0][1].AsInt() != 2 || got[1][1].AsInt() != 3 {
		t.Fatalf("Lookup = %v", got)
	}
	if v, ok := r.FuncGet(tuple.Strings("c")); !ok || v.AsInt() != 4 {
		t.Fatalf("FuncGet = %v,%v", v, ok)
	}
	if _, ok := r.FuncGet(tuple.Strings("zzz")); ok {
		t.Fatalf("FuncGet should miss")
	}
	if got := r.Lookup(tuple.Strings("zz")); len(got) != 0 {
		t.Fatalf("Lookup miss = %v", got)
	}
}

func TestForEachOrderAndEarlyStop(t *testing.T) {
	r := FromTuples(1, []tuple.Tuple{tuple.Ints(3), tuple.Ints(1), tuple.Ints(2)})
	var seen []int64
	r.ForEach(func(t tuple.Tuple) bool {
		seen = append(seen, t[0].AsInt())
		return len(seen) < 2
	})
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Fatalf("ForEach = %v", seen)
	}
}

func TestBranchSharingEquality(t *testing.T) {
	// A branch (copy of the Relation value) shares all structure; diffing
	// the branch against the original reports nothing.
	base := New(2)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		base = base.Insert(tuple.Ints(rng.Int63n(500), rng.Int63n(500)))
	}
	branch := base // O(1) branch
	if !base.Equal(branch) {
		t.Fatalf("branch not equal")
	}
	count := 0
	base.Diff(branch, func(tuple.Tuple) { count++ }, func(tuple.Tuple) { count++ })
	if count != 0 {
		t.Fatalf("diff of identical versions reported %d changes", count)
	}
	mod := branch.Insert(tuple.Ints(9999, 9999))
	if base.Equal(mod) {
		t.Fatalf("modified branch equal to base")
	}
}

func TestRelationModelProperty(t *testing.T) {
	// Relation behaves like a model set of 2-tuples.
	f := func(pairs [][2]int8, probe [2]int8) bool {
		r := New(2)
		model := map[[2]int8]bool{}
		for _, p := range pairs {
			r = r.Insert(tuple.Ints(int64(p[0]), int64(p[1])))
			model[p] = true
		}
		if r.Len() != len(model) {
			return false
		}
		return r.Contains(tuple.Ints(int64(probe[0]), int64(probe[1]))) == model[probe]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
