package optimizer_test

import (
	"strings"
	"testing"

	"logicblox/internal/compiler"
	"logicblox/internal/optimizer"
	"logicblox/internal/relation"
	"logicblox/internal/tuple"
)

// planBase builds a joinable r/s pair sized so sampling has signal.
func planBase(n int64) map[string]relation.Relation {
	r := relation.New(2)
	s := relation.New(2)
	for i := int64(0); i < n; i++ {
		r = r.Insert(tuple.Ints(i%40, i%60))
		s = s.Insert(tuple.Ints(i%60, i%80))
	}
	return map[string]relation.Relation{"r": r, "s": s}
}

func relsOf(base map[string]relation.Relation) func(string) relation.Relation {
	return func(name string) relation.Relation { return base[name] }
}

func TestPlanStoreHitSkipsSampling(t *testing.T) {
	_, rule := compileRule(t, `out(a, c) <- r(a, b), s(b, c).`)
	base := planBase(500)
	store := optimizer.NewPlanStore(optimizer.StoreOptions{})

	res1, cached, err := store.Choose(rule, relsOf(base))
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("first Choose must miss")
	}
	if res1.Evaluated == 0 {
		t.Fatal("first Choose should have sampled candidate orders")
	}

	res2, cached, err := store.Choose(rule, relsOf(base))
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("second Choose must hit the cache")
	}
	if res2.Evaluated != 0 {
		t.Fatalf("cached Choose re-sampled %d candidates", res2.Evaluated)
	}
	if len(res2.Order) != len(res1.Order) {
		t.Fatalf("order mismatch: %v vs %v", res2.Order, res1.Order)
	}
	for i := range res1.Order {
		if res1.Order[i] != res2.Order[i] {
			t.Fatalf("cached order %v differs from chosen %v", res2.Order, res1.Order)
		}
	}
	st := store.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.Redecisions != 0 {
		t.Fatalf("stats = %+v, want 1 miss / 1 hit", st)
	}
	if store.Len() != 1 {
		t.Fatalf("store holds %d entries, want 1", store.Len())
	}
}

func TestPlanStoreDriftTriggersResample(t *testing.T) {
	_, rule := compileRule(t, `out(a, c) <- r(a, b), s(b, c).`)
	base := planBase(500)
	store := optimizer.NewPlanStore(optimizer.StoreOptions{})

	if _, _, err := store.Choose(rule, relsOf(base)); err != nil {
		t.Fatal(err)
	}
	// First observation fixes the baseline; a within-budget second one
	// keeps the plan trusted.
	store.Observe(rule, 1000)
	store.Observe(rule, 1500)
	if _, cached, err := store.Choose(rule, relsOf(base)); err != nil || !cached {
		t.Fatalf("cached=%v err=%v, want trusted cache hit", cached, err)
	}
	// A 3× blowup past DriftFactor (2.0) marks the entry stale.
	store.Observe(rule, 3000)
	_, cached, err := store.Choose(rule, relsOf(base))
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("drifted plan must be re-sampled, not reused")
	}
	st := store.Stats()
	if st.Redecisions != 1 {
		t.Fatalf("stats = %+v, want 1 redecision", st)
	}
	// Re-sampling resets the baseline: the store trusts the new plan.
	if _, cached, _ := store.Choose(rule, relsOf(base)); !cached {
		t.Fatal("fresh re-decision should be reusable")
	}
}

func TestPlanStoreDriftFloor(t *testing.T) {
	_, rule := compileRule(t, `out(a, c) <- r(a, b), s(b, c).`)
	base := planBase(200)
	store := optimizer.NewPlanStore(optimizer.StoreOptions{})
	if _, _, err := store.Choose(rule, relsOf(base)); err != nil {
		t.Fatal(err)
	}
	// Tiny baselines are floored at 64 ops, so a 10→100 "10× blowup" in
	// absolute noise does not evict the plan (100 ≤ 2×64).
	store.Observe(rule, 10)
	store.Observe(rule, 100)
	if _, cached, _ := store.Choose(rule, relsOf(base)); !cached {
		t.Fatal("sub-floor drift must not trigger re-sampling")
	}
	store.Observe(rule, 129) // > 2×64
	if _, cached, _ := store.Choose(rule, relsOf(base)); cached {
		t.Fatal("past-floor drift must trigger re-sampling")
	}
}

func TestPlanStoreCardinalityTriggersResample(t *testing.T) {
	_, rule := compileRule(t, `out(a, c) <- r(a, b), s(b, c).`)
	base := planBase(300)
	store := optimizer.NewPlanStore(optimizer.StoreOptions{})
	if _, _, err := store.Choose(rule, relsOf(base)); err != nil {
		t.Fatal(err)
	}
	// Growing r by 3× exceeds CardRatio (2.0): the cached plan's
	// cardinality assumptions no longer hold.
	grown := planBase(300)
	big := grown["r"]
	for i := int64(0); i < 2000; i++ {
		big = big.Insert(tuple.Ints(1000+i, i%60))
	}
	grown["r"] = big
	_, cached, err := store.Choose(rule, relsOf(grown))
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("cardinality shift must trigger re-sampling")
	}
	if st := store.Stats(); st.Redecisions != 1 {
		t.Fatalf("stats = %+v, want 1 redecision", st)
	}
}

func TestPlanStoreInvalidatePreds(t *testing.T) {
	_, rule := compileRule(t, `out(a, c) <- r(a, b), s(b, c).`)
	base := planBase(200)
	store := optimizer.NewPlanStore(optimizer.StoreOptions{})
	if _, _, err := store.Choose(rule, relsOf(base)); err != nil {
		t.Fatal(err)
	}
	// Unrelated predicates leave the entry alone.
	store.InvalidatePreds(map[string]bool{"unrelated": true})
	if store.Len() != 1 {
		t.Fatal("unrelated invalidation dropped the plan")
	}
	// A body predicate drops it.
	store.InvalidatePreds(map[string]bool{"s": true})
	if store.Len() != 0 {
		t.Fatal("body-predicate invalidation kept the plan")
	}
	if st := store.Stats(); st.Invalidated != 1 {
		t.Fatalf("stats = %+v, want 1 invalidated", st)
	}
	// The head predicate drops it too.
	if _, _, err := store.Choose(rule, relsOf(base)); err != nil {
		t.Fatal(err)
	}
	store.InvalidatePreds(map[string]bool{"out": true})
	if store.Len() != 0 {
		t.Fatal("head-predicate invalidation kept the plan")
	}
}

func TestPlanStoreInvalidateAll(t *testing.T) {
	_, rule := compileRule(t, `out(a, c) <- r(a, b), s(b, c).`)
	base := planBase(200)
	store := optimizer.NewPlanStore(optimizer.StoreOptions{})
	if _, _, err := store.Choose(rule, relsOf(base)); err != nil {
		t.Fatal(err)
	}
	store.InvalidateAll()
	if store.Len() != 0 {
		t.Fatal("InvalidateAll left entries behind")
	}
	if st := store.Stats(); st.Invalidated != 1 {
		t.Fatalf("stats = %+v, want 1 invalidated", st)
	}
}

func TestPlanStoreTrivialRulePassesThrough(t *testing.T) {
	_, rule := compileRule(t, `out(x) <- r(x).`)
	store := optimizer.NewPlanStore(optimizer.StoreOptions{})
	res, cached, err := store.Choose(rule, func(string) relation.Relation { return relation.New(1) })
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("trivial rule reported as cache hit")
	}
	if res.Plan == nil {
		t.Fatal("nil plan for trivial rule")
	}
	if store.Len() != 0 {
		t.Fatal("trivial rule should not occupy the store")
	}
	if st := store.Stats(); st != (optimizer.StoreStats{}) {
		t.Fatalf("trivial rule moved counters: %+v", st)
	}
}

func TestPlanStoreNilReceiver(t *testing.T) {
	var store *optimizer.PlanStore
	_, rule := compileRule(t, `out(a, c) <- r(a, b), s(b, c).`)
	base := planBase(100)
	res, cached, err := store.Choose(rule, relsOf(base))
	if err != nil {
		t.Fatal(err)
	}
	if cached || res == nil {
		t.Fatal("nil store must fall back to plain ChooseOrder")
	}
	store.Observe(rule, 100)
	store.InvalidatePreds(map[string]bool{"r": true})
	store.InvalidateAll()
	if store.Len() != 0 || store.Stats() != (optimizer.StoreStats{}) || store.Snapshot() != nil {
		t.Fatal("nil store accessors must be zero-valued")
	}
}

func TestFingerprintInvariantUnderReorder(t *testing.T) {
	_, rule := compileRule(t, `out(a, b, c) <- r(a, b), s(b, c), t(c).`)
	fp := optimizer.Fingerprint(rule)
	for _, order := range optimizer.CandidateOrders(rule.NumJoinVars, 0) {
		plan, err := compiler.ReorderRule(rule, order)
		if err != nil {
			t.Fatalf("order %v: %v", order, err)
		}
		if got := optimizer.Fingerprint(plan); got != fp {
			t.Fatalf("order %v changed fingerprint: %q vs %q", order, got, fp)
		}
	}
	// A different rule must not collide.
	_, other := compileRule(t, `out2(a, c) <- r(a, b), s(b, c).`)
	if optimizer.Fingerprint(other) == fp {
		t.Fatal("distinct rules share a fingerprint")
	}
}

func TestPlanStoreSnapshotAndFormat(t *testing.T) {
	_, rule := compileRule(t, `out(a, c) <- r(a, b), s(b, c).`)
	base := planBase(300)
	store := optimizer.NewPlanStore(optimizer.StoreOptions{})
	if _, _, err := store.Choose(rule, relsOf(base)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.Choose(rule, relsOf(base)); err != nil {
		t.Fatal(err)
	}
	store.Observe(rule, 500)
	snaps := store.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("snapshot has %d plans, want 1", len(snaps))
	}
	p := snaps[0]
	if p.Head != "out" || p.Hits != 1 || p.ObsEvals != 1 || p.ObsOps != 500 {
		t.Fatalf("snapshot = %+v", p)
	}
	table := optimizer.FormatPlanTable(store.Stats(), snaps)
	for _, want := range []string{"plan cache: 1 plans", "1 hits", "1 misses", "out"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
}

func TestPlanStoreDriftHistory(t *testing.T) {
	_, rule := compileRule(t, `out(a, c) <- r(a, b), s(b, c).`)
	base := planBase(300)
	store := optimizer.NewPlanStore(optimizer.StoreOptions{})
	if _, _, err := store.Choose(rule, relsOf(base)); err != nil {
		t.Fatal(err)
	}

	// Before any observation the history is empty and renders as "-".
	if h := store.Snapshot()[0].History; len(h) != 0 {
		t.Fatalf("fresh plan has history %v", h)
	}

	// Each Observe appends, oldest first, within the drift budget
	// (baseline fixes at 100; 120 and 150 stay under DriftFactor 2×).
	for _, ops := range []int64{100, 120, 150} {
		store.Observe(rule, ops)
	}
	h := store.Snapshot()[0].History
	if len(h) != 3 || h[0] != 100 || h[1] != 120 || h[2] != 150 {
		t.Fatalf("history = %v, want [100 120 150]", h)
	}

	// The ring is bounded: after many observations only the most recent
	// 16 survive, still oldest-first.
	for i := int64(0); i < 30; i++ {
		store.Observe(rule, 100+i)
	}
	h = store.Snapshot()[0].History
	if len(h) != 16 {
		t.Fatalf("history length = %d, want 16 (bounded ring)", len(h))
	}
	if h[len(h)-1] != 129 || h[0] != 114 {
		t.Fatalf("ring kept wrong window: %v", h)
	}
}

func TestPlanStoreHistorySurvivesExportSeed(t *testing.T) {
	_, rule := compileRule(t, `out(a, c) <- r(a, b), s(b, c).`)
	base := planBase(300)
	store := optimizer.NewPlanStore(optimizer.StoreOptions{})
	if _, _, err := store.Choose(rule, relsOf(base)); err != nil {
		t.Fatal(err)
	}
	store.Observe(rule, 100)
	store.Observe(rule, 130)

	saved := store.Export()
	if len(saved) != 1 {
		t.Fatalf("exported %d plans, want 1", len(saved))
	}
	if h := saved[0].History; len(h) != 2 || h[0] != 100 || h[1] != 130 {
		t.Fatalf("exported history = %v, want [100 130]", h)
	}

	restored := optimizer.NewPlanStore(optimizer.StoreOptions{})
	restored.Seed(saved)
	snaps := restored.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("restored %d plans, want 1", len(snaps))
	}
	if h := snaps[0].History; len(h) != 2 || h[0] != 100 || h[1] != 130 {
		t.Fatalf("restored history = %v, want [100 130]", h)
	}
	// Restored history keeps accumulating in the same ring.
	restored.Observe(rule, 150)
	if h := restored.Snapshot()[0].History; len(h) != 3 || h[2] != 150 {
		t.Fatalf("post-seed history = %v, want [100 130 150]", h)
	}
}

func TestFormatPlanTableDriftColumn(t *testing.T) {
	_, rule := compileRule(t, `out(a, c) <- r(a, b), s(b, c).`)
	base := planBase(300)
	store := optimizer.NewPlanStore(optimizer.StoreOptions{})
	if _, _, err := store.Choose(rule, relsOf(base)); err != nil {
		t.Fatal(err)
	}

	// With no observations yet the drift cell is a placeholder.
	table := optimizer.FormatPlanTable(store.Stats(), store.Snapshot())
	if !strings.Contains(table, "DRIFT") {
		t.Fatalf("table missing DRIFT header:\n%s", table)
	}

	for _, ops := range []int64{100, 120, 150} {
		store.Observe(rule, ops)
	}
	table = optimizer.FormatPlanTable(store.Stats(), store.Snapshot())
	if !strings.Contains(table, "100,120,150") {
		t.Fatalf("table missing drift trajectory:\n%s", table)
	}
	if !strings.Contains(table, "(1.5x)") {
		t.Fatalf("table missing drift ratio:\n%s", table)
	}
}
