package main

import (
	"fmt"
	"math/rand"
	"time"

	"logicblox/internal/compiler"
	"logicblox/internal/core"
	"logicblox/internal/graphgen"
	"logicblox/internal/ivm"
	"logicblox/internal/parser"
	"logicblox/internal/relation"
	"logicblox/internal/treap"
	"logicblox/internal/tuple"
)

// runBranch validates the paper's T4 claim: branching a workspace is O(1)
// (the paper measures 80,000 branches per core per second); branch cost
// must not grow with database size.
func runBranch(quick bool) {
	sizes := []int{1_000, 10_000, 100_000}
	if !quick {
		sizes = append(sizes, 1_000_000)
	}
	fmt.Printf("%-12s %-16s %-14s\n", "facts", "branches/sec", "ns/branch")
	for _, n := range sizes {
		ws := newWorkspace()
		ws, err := ws.AddBlock("s", `fact(x, y) -> int(x), int(y).`)
		if err != nil {
			panic(err)
		}
		var ts []tuple.Tuple
		for i := 0; i < n; i++ {
			ts = append(ts, tuple.Ints(int64(i), int64(i%97)))
		}
		ws, err = ws.Load("fact", ts)
		if err != nil {
			panic(err)
		}
		db := core.NewDatabase()
		if err := db.Commit(core.DefaultBranch, ws); err != nil {
			panic(err)
		}
		iters := 200_000
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			name := fmt.Sprintf("b%d", i)
			if err := db.Branch(core.DefaultBranch, name); err != nil {
				panic(err)
			}
			if err := db.DeleteBranch(name); err != nil {
				panic(err)
			}
		}
		d := time.Since(t0)
		perSec := float64(iters) / d.Seconds()
		fmt.Printf("%-12d %-16.0f %-14.0f\n", n, perSec, float64(d.Nanoseconds())/float64(iters))
	}
	fmt.Println("claim check: rate is independent of database size (O(1) branch); the paper cites 80k/core/s.")
}

// runIVM compares the maintenance strategies on a triangle view under
// delta batches of growing size (paper T3/§3.2: maintenance work should
// track the trace edit distance, not the database size).
func runIVM(quick bool) {
	nEdges := 30000
	if quick {
		nEdges = 6000
	}
	edges := graphgen.Canonical(graphgen.PreferentialAttachment(nEdges/3, 3, 7))
	base := map[string]relation.Relation{"e": graphgen.ToRelation(edges)}
	// The triangle view over the changing edges plus several views over
	// predicates that never change in this experiment: a maintenance pass
	// that re-derives them is doing wasted work.
	src := `tri(x, y, z) <- e(x, y), e(y, z), e(x, z).`
	otherViews := 8
	for i := 0; i < otherViews; i++ {
		src += fmt.Sprintf("\nv%d(a, b) <- u%d(a, b), w%d(b, a).", i, i, i)
	}
	prog := mustCompile(src)
	for i := 0; i < otherViews; i++ {
		other := relation.New(2)
		for j := int64(0); j < 2000; j++ {
			other = other.Insert(tuple.Ints(j, j+int64(i)+1))
		}
		base[fmt.Sprintf("u%d", i)] = other
		base[fmt.Sprintf("w%d", i)] = other.Permuted([]int{1, 0})
	}

	deltaSizes := []int{1, 10, 100, 1000}
	modes := []ivm.Mode{ivm.Recompute, ivm.Counting, ivm.DRed, ivm.Sensitivity}
	fmt.Printf("%-8s", "Δ size")
	for _, m := range modes {
		fmt.Printf(" %-18s", m)
	}
	fmt.Println()
	rng := rand.New(rand.NewSource(3))
	for _, ds := range deltaSizes {
		fmt.Printf("%-8d", ds)
		for _, mode := range modes {
			m, err := ivm.NewMaintainer(prog, cloneRels(base), mode)
			if err != nil {
				panic(err)
			}
			// Build one delta batch: half inserts, half deletes.
			var d ivm.Delta
			for i := 0; i < ds; i++ {
				if i%2 == 0 {
					d.Ins = append(d.Ins, tuple.Ints(rng.Int63n(5000)+10_000, rng.Int63n(5000)+10_000))
				} else {
					e := edges[rng.Intn(len(edges))]
					d.Del = append(d.Del, tuple.Ints(e.U, e.V))
				}
			}
			t0 := time.Now()
			if _, err := m.Apply(map[string]ivm.Delta{"e": d}); err != nil {
				panic(err)
			}
			fmt.Printf(" %-11v sk=%-4d", time.Since(t0).Round(time.Microsecond), m.Stats.RulesSkipped)
		}
		fmt.Println()
	}
	fmt.Println("shape check: incremental modes scale with Δ (not |e|) and skip the")
	fmt.Println("untouched views (sk column); recompute re-derives everything every time.")
	fmt.Println("(the triangle view is globally sensitive — any edge can close a triangle —")
	fmt.Println(" so the sensitivity mode pays trace re-recording there; its win is below)")

	// Part 2: a selective view. sel joins e against a tiny hot set, so
	// its leapfrog trace touches only the hot region; changes outside it
	// fall outside every sensitivity interval and the view is skipped
	// without running any join (the paper's trace-edit-distance claim).
	fmt.Println("\nselective view sel(x,y) <- hot(x), e(x,y); deltas outside the hot region:")
	selProg := mustCompile(`sel(x, y) <- hot(x), e(x, y).`)
	hot := relation.New(1)
	for i := int64(0); i < 20; i++ {
		hot = hot.Insert(tuple.Ints(i))
	}
	selBase := map[string]relation.Relation{"e": base["e"], "hot": hot}
	fmt.Printf("%-8s", "Δ size")
	for _, m := range modes {
		fmt.Printf(" %-18s", m)
	}
	fmt.Println()
	for _, ds := range deltaSizes {
		fmt.Printf("%-8d", ds)
		for _, mode := range modes {
			m, err := ivm.NewMaintainer(selProg, cloneRels(selBase), mode)
			if err != nil {
				panic(err)
			}
			var d ivm.Delta
			for i := 0; i < ds; i++ {
				// All changes land far outside the hot region.
				d.Ins = append(d.Ins, tuple.Ints(rng.Int63n(5000)+50_000, rng.Int63n(5000)))
			}
			t0 := time.Now()
			if _, err := m.Apply(map[string]ivm.Delta{"e": d}); err != nil {
				panic(err)
			}
			fmt.Printf(" %-11v sk=%-4d", time.Since(t0).Round(time.Microsecond), m.Stats.RulesSkipped)
		}
		fmt.Println()
	}
	fmt.Println("shape check: the sensitivity mode skips the view entirely (sk=1, ~µs);")
	fmt.Println("counting still runs delta joins; recompute re-derives the whole view.")
}

// runLive measures live programming (paper §3.3): installing one view in
// a workspace with many unrelated views must cost only that view's
// derivation, not a full re-evaluation.
func runLive(quick bool) {
	counts := []int{10, 50, 200}
	if quick {
		counts = []int{10, 50}
	}
	fmt.Printf("%-12s %-18s %-18s\n", "views", "addblock (incr)", "rebuild (full)")
	for _, n := range counts {
		ws := newWorkspace()
		var err error
		ws, err = ws.AddBlock("schema", `src(x, y) -> int(x), int(y).`)
		if err != nil {
			panic(err)
		}
		var ts []tuple.Tuple
		for i := 0; i < 3000; i++ {
			ts = append(ts, tuple.Ints(int64(i%300), int64(i)))
		}
		ws, err = ws.Load("src", ts)
		if err != nil {
			panic(err)
		}
		blocks := map[string]string{}
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("view%03d", i)
			srcB := fmt.Sprintf("v%03d(x) <- src(x, y), y > %d.", i, i)
			blocks[name] = srcB
			ws, err = ws.AddBlock(name, srcB)
			if err != nil {
				panic(err)
			}
		}
		// Incremental: add one more view.
		t0 := time.Now()
		ws2, err := ws.AddBlock("extra", `extra(x) <- src(x, y), y > 1500.`)
		if err != nil {
			panic(err)
		}
		dIncr := time.Since(t0)
		_ = ws2

		// Full rebuild: reinstall everything from scratch.
		t0 = time.Now()
		fresh := newWorkspace()
		fresh, _ = fresh.AddBlock("schema", `src(x, y) -> int(x), int(y).`)
		fresh, _ = fresh.Load("src", ts)
		for name, srcB := range blocks {
			fresh, err = fresh.AddBlock(name, srcB)
			if err != nil {
				panic(err)
			}
		}
		fresh, _ = fresh.AddBlock("extra", `extra(x) <- src(x, y), y > 1500.`)
		dFull := time.Since(t0)
		fmt.Printf("%-12d %-18v %-18v\n", n, dIncr.Round(time.Microsecond), dFull.Round(time.Microsecond))
	}
	fmt.Println("shape check: addblock cost is flat in the number of installed views; rebuild grows linearly.")
}

// runTreap measures the persistent treap substrate (paper §3.1): set
// operations in O(m log(n/m)) and sharing-pruned equality.
func runTreap(quick bool) {
	sizes := []int{10_000, 100_000}
	if !quick {
		sizes = append(sizes, 1_000_000)
	}
	ops := treap.Ops[int]{
		Compare: func(a, b int) int { return a - b },
		Hash: func(k int) uint64 {
			h := uint64(k) * 0x9e3779b97f4a7c15
			h ^= h >> 32
			h *= 0xbf58476d1ce4e5b9
			return h ^ h>>29
		},
	}
	fmt.Printf("%-10s %-14s %-16s %-18s %-20s\n", "n", "union(n,n/10)", "diff-after-1-ins", "equal (shared)", "equal (rebuilt)")
	for _, n := range sizes {
		big := treap.New[int, int](ops)
		for i := 0; i < n; i++ {
			big = big.Insert(i*2, i)
		}
		small := treap.New[int, int](ops)
		for i := 0; i < n/10; i++ {
			small = small.Insert(i*20+1, i)
		}
		t0 := time.Now()
		_ = big.Union(small)
		dUnion := time.Since(t0)

		mod := big.Insert(-1, 0)
		t0 = time.Now()
		count := 0
		big.DiffWith(mod, nil, func(int, int) { count++ }, func(int, int) { count++ }, nil)
		dDiff := time.Since(t0)

		branch := big // O(1) branch
		t0 = time.Now()
		_ = big.Equal(branch)
		dEqShared := time.Since(t0)

		rebuilt := treap.New[int, int](ops)
		for i := n - 1; i >= 0; i-- {
			rebuilt = rebuilt.Insert(i*2, i)
		}
		t0 = time.Now()
		eq := big.Equal(rebuilt)
		dEqRebuilt := time.Since(t0)
		if !eq || count != 1 {
			panic("treap invariants broken")
		}
		fmt.Printf("%-10d %-14v %-16v %-18v %-20v\n", n,
			dUnion.Round(time.Microsecond), dDiff.Round(time.Microsecond),
			dEqShared.Round(time.Nanosecond), dEqRebuilt.Round(time.Microsecond))
	}
	fmt.Println("shape check: shared-structure equality is O(1); diff cost tracks the number of changes.")
}

func mustCompile(src string) *compiler.Program {
	prog, err := parser.Parse(src)
	if err != nil {
		panic(err)
	}
	c, err := compiler.Compile(prog)
	if err != nil {
		panic(err)
	}
	return c
}

func cloneRels(m map[string]relation.Relation) map[string]relation.Relation {
	out := make(map[string]relation.Relation, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
