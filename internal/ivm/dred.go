package ivm

import (
	"logicblox/internal/compiler"
	"logicblox/internal/relation"
	"logicblox/internal/tuple"
)

// Delete-and-rederive (DRed; Gupta, Mumick & Subrahmanian, SIGMOD'93),
// the classical algorithm the paper improves upon. Per stratum:
//
//  1. Over-delete: compute everything whose derivation may have used a
//     deleted tuple (to a fixpoint within the stratum) and remove it.
//  2. Re-derive: over-deleted tuples that still have an alternative
//     derivation in the reduced state are reinserted (using pinned
//     derivability probes).
//  3. Insert: propagate insertions semi-naively.

func (m *Maintainer) applyDRed(acc map[string]Delta, old map[string]relation.Relation) error {
	for _, stratum := range m.prog.Strata {
		if !stratumTouched(stratum, acc) {
			m.Stats.RulesSkipped += len(stratum)
			continue
		}
		// Aggregation/predict rules are maintained by recomputation.
		var plain []*compiler.RulePlan
		for _, r := range stratum {
			if countable(r) {
				plain = append(plain, r)
				continue
			}
			if ruleTouched(r, acc) {
				if err := m.recomputeUncounted(r, acc, old); err != nil {
					return err
				}
			} else {
				m.Stats.RulesSkipped++
			}
		}
		if len(plain) == 0 {
			continue
		}
		// Negation changes invalidate the over-deletion logic below; fall
		// back to recomputing the stratum.
		negChanged := false
		for _, r := range plain {
			if negTouched(r, acc) {
				negChanged = true
			}
		}
		if negChanged {
			if err := m.recomputeStratum(plain, acc, old); err != nil {
				return err
			}
			continue
		}
		if err := m.dredStratum(plain, acc, old); err != nil {
			return err
		}
	}
	return nil
}

func stratumTouched(stratum []*compiler.RulePlan, acc map[string]Delta) bool {
	for _, r := range stratum {
		if ruleTouched(r, acc) {
			return true
		}
	}
	return false
}

// recomputeStratum clears the stratum's head predicates and re-evaluates.
func (m *Maintainer) recomputeStratum(rules []*compiler.RulePlan, acc map[string]Delta, old map[string]relation.Relation) error {
	heads := map[string]bool{}
	for _, r := range rules {
		heads[r.HeadName] = true
	}
	origin := map[string]relation.Relation{}
	for h := range heads {
		origin[h] = m.ctx.Relation(h)
		m.ctx.Set(h, relation.New(origin[h].Arity()))
	}
	m.Stats.RulesEvaluated += len(rules)
	if err := m.ctx.EvalStratum(rules); err != nil {
		return err
	}
	for h := range heads {
		cur := m.ctx.Relation(h)
		if !cur.Equal(origin[h]) {
			if _, ok := old[h]; !ok {
				old[h] = origin[h]
			}
			recordDiff(acc, h, origin[h], cur)
		}
	}
	return nil
}

func (m *Maintainer) dredStratum(rules []*compiler.RulePlan, acc map[string]Delta, old map[string]relation.Relation) error {
	heads := map[string]bool{}
	rulesByHead := map[string][]*compiler.RulePlan{}
	for _, r := range rules {
		heads[r.HeadName] = true
		rulesByHead[r.HeadName] = append(rulesByHead[r.HeadName], r)
	}
	origin := map[string]relation.Relation{}
	for h := range heads {
		origin[h] = m.ctx.Relation(h)
	}
	oldRelOf := func(name string) (relation.Relation, bool) {
		if o, ok := old[name]; ok {
			return o, true
		}
		if o, ok := origin[name]; ok {
			return o, true
		}
		return relation.Relation{}, false
	}

	// 1. Over-delete to a fixpoint. delSeeds maps predicate name to the
	// deletions not yet propagated.
	delSeeds := map[string][]tuple.Tuple{}
	for _, r := range rules {
		for _, a := range r.Atoms {
			if d := acc[a.Name]; len(d.Del) > 0 && !heads[a.Name] {
				delSeeds[a.Name] = d.Del
			}
		}
	}
	overdeleted := map[string]map[string]tuple.Tuple{}
	for len(delSeeds) > 0 {
		next := map[string][]tuple.Tuple{}
		for _, r := range rules {
			for ai, a := range r.Atoms {
				seeds, ok := delSeeds[a.Name]
				if !ok {
					continue
				}
				m.Stats.RulesEvaluated++
				overrides := map[int]relation.Relation{
					ai: relation.FromTuples(m.ctx.Relation(a.Name).Arity(), seeds),
				}
				// Other atoms read the ORIGINAL (pre-batch) state so every
				// derivation that possibly used a deleted tuple is found.
				for j, b := range r.Atoms {
					if j == ai {
						continue
					}
					if o, ok := oldRelOf(b.Name); ok {
						overrides[j] = o
					}
				}
				err := m.ctx.EnumerateRuleHeads(r, overrides, func(head tuple.Tuple) bool {
					od := overdeleted[r.HeadName]
					if od == nil {
						od = map[string]tuple.Tuple{}
						overdeleted[r.HeadName] = od
					}
					k := head.String()
					if _, seen := od[k]; !seen && origin[r.HeadName].Contains(head) {
						od[k] = head.Clone()
						next[r.HeadName] = append(next[r.HeadName], head.Clone())
					}
					return true
				})
				if err != nil {
					return err
				}
			}
		}
		delSeeds = next
	}

	// 2. Apply over-deletions.
	for h, od := range overdeleted {
		rel := m.ctx.Relation(h)
		for _, t := range od {
			rel = rel.Delete(t)
		}
		m.ctx.Set(h, rel)
	}

	// 3. Re-derive: over-deleted tuples with an alternative derivation in
	// the reduced (but insertion-updated) state come back; rederived
	// tuples can support further rederivations, so iterate.
	rederived := map[string][]tuple.Tuple{}
	changedSomething := true
	for changedSomething {
		changedSomething = false
		for h, od := range overdeleted {
			for k, t := range od {
				still := false
				for _, r := range rulesByHead[h] {
					m.Stats.RederiveChecks++
					ok, err := m.ctx.PinnedDerivable(r, t)
					if err != nil {
						return err
					}
					if ok {
						still = true
						break
					}
				}
				if still {
					m.ctx.Set(h, m.ctx.Relation(h).Insert(t))
					rederived[h] = append(rederived[h], t)
					delete(od, k)
					changedSomething = true
				}
			}
		}
	}
	_ = rederived

	// 4. Insert: semi-naive propagation of external insertions.
	insSeeds := map[string]relation.Relation{}
	for _, r := range rules {
		for _, a := range r.Atoms {
			if d := acc[a.Name]; len(d.Ins) > 0 && !heads[a.Name] {
				insSeeds[a.Name] = relation.FromTuples(m.ctx.Relation(a.Name).Arity(), d.Ins)
			}
		}
	}
	for len(insSeeds) > 0 {
		next := map[string]relation.Relation{}
		for _, r := range rules {
			for ai, a := range r.Atoms {
				dRel, ok := insSeeds[a.Name]
				if !ok {
					continue
				}
				m.Stats.RulesEvaluated++
				derived, err := m.ctx.EvalRule(r, map[int]relation.Relation{ai: dRel})
				if err != nil {
					return err
				}
				cur := m.ctx.Relation(r.HeadName)
				fresh := derived.Difference(cur)
				if fresh.IsEmpty() {
					continue
				}
				m.ctx.Set(r.HeadName, cur.Union(fresh))
				nd, ok := next[r.HeadName]
				if !ok {
					nd = relation.New(fresh.Arity())
				}
				next[r.HeadName] = nd.Union(fresh)
			}
		}
		insSeeds = next
	}

	// 5. Record final per-head deltas.
	for h := range heads {
		cur := m.ctx.Relation(h)
		if !cur.Equal(origin[h]) {
			if _, ok := old[h]; !ok {
				old[h] = origin[h]
			}
			recordDiff(acc, h, origin[h], cur)
		}
	}
	return nil
}
