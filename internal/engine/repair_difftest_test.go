package engine_test

// Repair differential harness (paper §3.4): every generated program is
// turned into a live workspace, then pairs of concurrent writer
// transactions race for the same head. The loser's recorded execution is
// repaired against the winner's head via sensitivity-interval
// intersection, and the repaired head must be byte-identical to the
// oracle — serially re-executing the loser's source on the winner's
// head. Fact-only transactions (empty read set) must always take the
// repair path; transactions whose reads the winner overwrote must fall
// back with ErrRepairNotApplicable, never silently diverge.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"logicblox/internal/core"
	"logicblox/internal/relation"
)

// buildRepairWorkspace installs the generated program as a block and
// loads its base relations, returning the head workspace and the sorted
// base-predicate names.
func buildRepairWorkspace(t *testing.T, p *genProgram) (*core.Workspace, []string) {
	t.Helper()
	ws := core.NewWorkspace()
	var err error
	ws, err = ws.AddBlock("gen", p.source())
	if err != nil {
		t.Fatalf("seed %d: addblock: %v\n%s", p.seed, err, p.source())
	}
	names := make([]string, 0, len(p.base))
	for name := range p.base {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ws, err = ws.Insert(name, p.base[name].Slice()...)
		if err != nil {
			t.Fatalf("seed %d: load %s: %v", p.seed, name, err)
		}
	}
	return ws, names
}

// genTxn emits one writer transaction against p: 1-3 random delta facts
// over base predicates, plus sometimes a reactive rule deriving facts
// for a base predicate from a scan of another predicate. The rule gives
// the transaction a read set, so a winner that touches the scanned
// predicate defeats repair; fact-only transactions read nothing and must
// always repair.
func genTxn(rng *rand.Rand, p *genProgram, baseNames []string) string {
	var b strings.Builder
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		pred := baseNames[rng.Intn(len(baseNames))]
		sign := "+"
		if rng.Intn(4) == 0 {
			sign = "-"
		}
		vals := make([]string, p.arities[pred])
		for k := range vals {
			vals[k] = fmt.Sprintf("%d", rng.Intn(genDomain+3))
		}
		fmt.Fprintf(&b, "%s%s(%s).\n", sign, pred, strings.Join(vals, ", "))
	}
	if rng.Intn(3) == 0 {
		dst := baseNames[rng.Intn(len(baseNames))]
		pool := append(append([]string(nil), baseNames...), p.derived...)
		src := pool[rng.Intn(len(pool))]
		svars := make([]string, p.arities[src])
		for k := range svars {
			svars[k] = fmt.Sprintf("s%d", k)
		}
		hvars := make([]string, p.arities[dst])
		for k := range hvars {
			hvars[k] = svars[rng.Intn(len(svars))]
		}
		fmt.Fprintf(&b, "+%s(%s) <- %s(%s).\n",
			dst, strings.Join(hvars, ", "), src, strings.Join(svars, ", "))
	}
	return b.String()
}

// factSrc renders a single delta fact with every column set to v.
func factSrc(sign, pred string, arity int, v int) string {
	vals := make([]string, arity)
	for k := range vals {
		vals[k] = fmt.Sprintf("%d", v)
	}
	return fmt.Sprintf("%s%s(%s).\n", sign, pred, strings.Join(vals, ", "))
}

// assertHeadsEqual compares every relation (base and derived) of the two
// workspaces; missing relations count as empty.
func assertHeadsEqual(t *testing.T, label string, got, want *core.Workspace) {
	t.Helper()
	gr, wr := got.Relations(), want.Relations()
	names := map[string]bool{}
	for n := range gr {
		names[n] = true
	}
	for n := range wr {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	for _, n := range sorted {
		g, gok := gr[n]
		w, wok := wr[n]
		if !gok {
			g = relation.New(w.Arity())
		}
		if !wok {
			w = relation.New(g.Arity())
		}
		if !g.Equal(w) {
			t.Fatalf("%s: relation %s diverged:\n  repaired: %v\n  serial:   %v",
				label, n, g.Slice(), w.Slice())
		}
	}
}

// TestRepairDifferential races randomized writer pairs over every
// generated program: whenever repair succeeds, the repaired head must
// equal the serial re-execution oracle; whenever it declines, the error
// must be the conservative ErrRepairNotApplicable sentinel (coarse retry
// territory), never a hard failure or a silently wrong head.
func TestRepairDifferential(t *testing.T) {
	ctx := context.Background()
	var repaired, fellBack int
	for seed := int64(0); seed < diffPrograms; seed++ {
		p := generate(seed)
		head, baseNames := buildRepairWorkspace(t, p)
		rng := rand.New(rand.NewSource(seed + 0x5eed))
		for round := 0; round < 4; round++ {
			srcA := genTxn(rng, p, baseNames)
			srcB := genTxn(rng, p, baseNames)
			label := fmt.Sprintf("seed %d round %d\nsrcA:\n%ssrcB:\n%s", seed, round, srcA, srcB)

			// A executes on head and records; B wins the race.
			_, recA, err := head.ExecRecordedCtx(ctx, srcA)
			if err != nil {
				t.Fatalf("%s: recorded exec: %v", label, err)
			}
			resB, err := head.Exec(srcB)
			if err != nil {
				t.Fatalf("%s: winner exec: %v", label, err)
			}
			headB := resB.Workspace

			serial, serr := headB.Exec(srcA)
			got, stats, rerr := recA.Repair(ctx, headB)
			if rerr != nil {
				if !errors.Is(rerr, core.ErrRepairNotApplicable) {
					t.Fatalf("%s: repair failed hard: %v", label, rerr)
				}
				if serr != nil {
					t.Fatalf("%s: serial re-execution failed: %v", label, serr)
				}
				fellBack++
				head = serial.Workspace
				continue
			}
			if serr != nil {
				t.Fatalf("%s: repair succeeded but serial re-execution failed: %v", label, serr)
			}
			if stats.StrataReused > stats.StrataTotal {
				t.Fatalf("%s: stats out of range: %+v", label, stats)
			}
			repaired++
			assertHeadsEqual(t, label, got.Workspace, serial.Workspace)
			head = got.Workspace
		}
	}
	if repaired == 0 {
		t.Fatalf("no conflict was repaired across %d programs: the repair path was never exercised", diffPrograms)
	}
	t.Logf("repair differential: %d conflicts repaired, %d fell back to full re-execution", repaired, fellBack)
}

// TestRepairDisjointFactWriters pins the headline property: a loser that
// only wrote delta facts recorded no reads, so it must repair — with
// every stratum reused — no matter what the winner wrote, even to the
// same predicate (repair is tuple-granular, not predicate-granular).
func TestRepairDisjointFactWriters(t *testing.T) {
	ctx := context.Background()
	for seed := int64(0); seed < 10; seed++ {
		p := generate(seed)
		head, baseNames := buildRepairWorkspace(t, p)
		x, y := baseNames[0], baseNames[1]
		srcA := factSrc("+", x, p.arities[x], 97)
		for _, tc := range []struct{ name, srcB string }{
			{"disjoint predicates", factSrc("+", y, p.arities[y], 99)},
			{"same predicate, different tuple", factSrc("+", x, p.arities[x], 99)},
		} {
			_, rec, err := head.ExecRecordedCtx(ctx, srcA)
			if err != nil {
				t.Fatalf("seed %d %s: recorded exec: %v", seed, tc.name, err)
			}
			resB, err := head.Exec(tc.srcB)
			if err != nil {
				t.Fatalf("seed %d %s: winner exec: %v", seed, tc.name, err)
			}
			headB := resB.Workspace
			if headB == head {
				t.Fatalf("seed %d %s: winner was a no-op", seed, tc.name)
			}
			got, stats, rerr := rec.Repair(ctx, headB)
			if rerr != nil {
				t.Fatalf("seed %d %s: fact-only loser (empty read set) must repair, got %v", seed, tc.name, rerr)
			}
			if stats.StrataTotal == 0 || stats.StrataReused != stats.StrataTotal {
				t.Fatalf("seed %d %s: want all strata reused, got %+v", seed, tc.name, stats)
			}
			serial, err := headB.Exec(srcA)
			if err != nil {
				t.Fatalf("seed %d %s: serial oracle: %v", seed, tc.name, err)
			}
			assertHeadsEqual(t, fmt.Sprintf("seed %d %s", seed, tc.name), got.Workspace, serial.Workspace)
		}
	}
}

// TestRepairFallbackOnOverlappingRead pins the conservative side: when
// the winner writes into a predicate the loser's rule scanned, the
// recorded intervals intersect the write set and repair must decline
// with ErrRepairNotApplicable — correctness then comes from the coarse
// full re-execution it falls back to.
func TestRepairFallbackOnOverlappingRead(t *testing.T) {
	ctx := context.Background()
	for seed := int64(0); seed < 10; seed++ {
		p := generate(seed)
		head, baseNames := buildRepairWorkspace(t, p)
		x, y := baseNames[0], baseNames[1]
		svars := make([]string, p.arities[x])
		for k := range svars {
			svars[k] = fmt.Sprintf("s%d", k)
		}
		hvars := make([]string, p.arities[y])
		for k := range hvars {
			hvars[k] = svars[0]
		}
		// A scans all of x to derive facts for y; B writes a new x tuple.
		srcA := fmt.Sprintf("+%s(%s) <- %s(%s).\n",
			y, strings.Join(hvars, ", "), x, strings.Join(svars, ", "))
		srcB := factSrc("+", x, p.arities[x], 98)

		_, rec, err := head.ExecRecordedCtx(ctx, srcA)
		if err != nil {
			t.Fatalf("seed %d: recorded exec: %v", seed, err)
		}
		resB, err := head.Exec(srcB)
		if err != nil {
			t.Fatalf("seed %d: winner exec: %v", seed, err)
		}
		_, _, rerr := rec.Repair(ctx, resB.Workspace)
		if !errors.Is(rerr, core.ErrRepairNotApplicable) {
			t.Fatalf("seed %d: winner overwrote the loser's read set; want ErrRepairNotApplicable, got %v", seed, rerr)
		}
		// The coarse path the caller falls back to must still work.
		if _, err := resB.Workspace.Exec(srcA); err != nil {
			t.Fatalf("seed %d: coarse re-execution: %v", seed, err)
		}
	}
}

// TestRepairChainedConflictsAndSchemaChange checks two edges of the
// record's validity: it repairs against a head that moved several times
// since the snapshot (the diff is always taken against the original
// snapshot), and it conservatively declines once the winner changed the
// installed program itself.
func TestRepairChainedConflictsAndSchemaChange(t *testing.T) {
	ctx := context.Background()
	p := generate(3)
	head, baseNames := buildRepairWorkspace(t, p)
	x, y := baseNames[0], baseNames[1]
	srcA := factSrc("+", x, p.arities[x], 97)

	_, rec, err := head.ExecRecordedCtx(ctx, srcA)
	if err != nil {
		t.Fatalf("recorded exec: %v", err)
	}
	res1, err := head.Exec(factSrc("+", y, p.arities[y], 41))
	if err != nil {
		t.Fatalf("winner 1: %v", err)
	}
	res2, err := res1.Workspace.Exec(factSrc("+", y, p.arities[y], 42))
	if err != nil {
		t.Fatalf("winner 2: %v", err)
	}
	h2 := res2.Workspace

	got, _, rerr := rec.Repair(ctx, h2)
	if rerr != nil {
		t.Fatalf("repair against twice-moved head: %v", rerr)
	}
	serial, err := h2.Exec(srcA)
	if err != nil {
		t.Fatalf("serial oracle: %v", err)
	}
	assertHeadsEqual(t, "twice-moved head", got.Workspace, serial.Workspace)

	// A winner that installed a block changed the compiled program: the
	// record's stratum structure no longer matches, so repair declines.
	svars := make([]string, p.arities[x])
	for k := range svars {
		svars[k] = fmt.Sprintf("s%d", k)
	}
	h3, err := h2.AddBlock("extra", fmt.Sprintf("zz9(%s) <- %s(%s).\n",
		strings.Join(svars, ", "), x, strings.Join(svars, ", ")))
	if err != nil {
		t.Fatalf("addblock: %v", err)
	}
	if _, _, rerr := rec.Repair(ctx, h3); !errors.Is(rerr, core.ErrRepairNotApplicable) {
		t.Fatalf("schema changed under the record; want ErrRepairNotApplicable, got %v", rerr)
	}
}
