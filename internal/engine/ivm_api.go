package engine

import (
	"logicblox/internal/compiler"
	"logicblox/internal/lftj"
	"logicblox/internal/obs"
	"logicblox/internal/relation"
	"logicblox/internal/tuple"
)

// EvalRule evaluates one rule against the current context (with optional
// per-atom relation overrides) and returns the derived head tuples. It is
// the entry point used by the incremental-maintenance layer for delta
// rules.
func (c *Context) EvalRule(r *compiler.RulePlan, overrides map[int]relation.Relation) (relation.Relation, error) {
	var sp *obs.Span
	if c.span != nil {
		sp = c.span.Child("rule:" + r.HeadName)
	}
	out, err := c.evalRule(r, overrides)
	if sp != nil {
		if err == nil {
			sp.SetAttr("tuples", int64(out.Len()))
		}
		sp.End()
	}
	return out, err
}

// EnumerateRuleHeads runs the rule body (with optional per-atom overrides)
// and calls emit once per satisfying assignment with the corresponding
// head tuple — i.e. with derivation multiplicity, which is what
// counting-based view maintenance needs. The head tuple is freshly
// allocated per call. Aggregation and predict rules are not supported
// here (they have no per-derivation head).
func (c *Context) EnumerateRuleHeads(r *compiler.RulePlan, overrides map[int]relation.Relation, emit func(tuple.Tuple) bool) error {
	resolver := ctxResolver{c}
	var innerErr error
	err := c.enumerate(r, overrides, func(binding tuple.Tuple) bool {
		head, err := evalExprs(r.HeadExprs, binding, resolver)
		if err != nil {
			innerErr = err
			return false
		}
		return emit(head)
	})
	if err == nil {
		err = innerErr
	}
	return err
}

// PinnedDerivable reports whether head tuple t of rule r has at least one
// derivation in the current state. Join variables that map directly to
// head columns are pinned with virtual constant predicates so the search
// explores only the relevant region (used by delete-and-rederive).
func (c *Context) PinnedDerivable(r *compiler.RulePlan, t tuple.Tuple) (bool, error) {
	pinned := *r
	pinned.Consts = append([]compiler.ConstBind(nil), r.Consts...)
	for i, e := range r.HeadExprs {
		if ve, ok := e.(compiler.VarExpr); ok && ve.Idx < r.NumJoinVars {
			pinned.Consts = append(pinned.Consts, compiler.ConstBind{Var: ve.Idx, Val: t[i]})
		}
	}
	found := false
	err := c.EnumerateRuleHeads(&pinned, nil, func(head tuple.Tuple) bool {
		if head.Equal(t) {
			found = true
			return false
		}
		return true
	})
	return found, err
}

// SetSensitivityIndex redirects sensitivity recording of subsequent
// evaluations to idx (nil disables recording). The incremental-maintenance
// layer uses this to record one index per rule or stratum; transaction
// repair records one index per reactive stratum.
func (c *Context) SetSensitivityIndex(idx *lftj.SensitivityIndex) { c.sens = idx }

// StartDerivedCapture begins accumulating, per head predicate, the union
// of every rule-evaluation output produced by subsequent EvalStratum
// calls (full passes and semi-naive fixpoint rounds alike). Transaction
// repair (paper §3.4) uses the captured pure derivations to replay an
// unaffected stratum against a different database head without
// re-evaluating it: for any head h, the post-stratum content of h is
// exactly seed(h) ∪ captured(h), and captured(h) is portable to a new
// seed as long as no recorded read of the stratum was affected.
func (c *Context) StartDerivedCapture() { c.capture = map[string]relation.Relation{} }

// TakeDerivedCapture stops capturing and returns the accumulated per-head
// derivations since StartDerivedCapture (nil if capture was off).
func (c *Context) TakeDerivedCapture() map[string]relation.Relation {
	m := c.capture
	c.capture = nil
	return m
}

// captureDerived folds one rule-evaluation output into the running
// capture. Only called from serial sections of EvalStratum (the
// post-parallel results loop and the fixpoint rounds), so no locking is
// needed.
func (c *Context) captureDerived(head string, r relation.Relation) {
	if c.capture == nil || r.IsEmpty() {
		return
	}
	if cur, ok := c.capture[head]; ok {
		c.capture[head] = cur.Union(r)
	} else {
		c.capture[head] = r
	}
}

// EnumerateBindings runs the rule body (with optional per-atom overrides)
// and calls emit once per satisfying assignment with the full binding
// (join variables then assigned variables). The binding slice is reused
// across calls. The solver's grounding machinery uses this to linearize
// constraint and objective bodies.
func (c *Context) EnumerateBindings(r *compiler.RulePlan, overrides map[int]relation.Relation, emit func(tuple.Tuple) bool) error {
	return c.enumerate(r, overrides, emit)
}
