package tuple

import "strings"

// Tuple is an ordered sequence of values: one fact of an n-ary predicate.
// Tuples are treated as immutable once stored in a relation.
type Tuple []Value

// Compare orders tuples lexicographically. A proper prefix orders before
// its extensions.
func (t Tuple) Compare(u Tuple) int {
	n := len(t)
	if len(u) < n {
		n = len(u)
	}
	for i := 0; i < n; i++ {
		if c := Compare(t[i], u[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(t) < len(u):
		return -1
	case len(t) > len(u):
		return 1
	}
	return 0
}

// Equal reports whether t and u hold the same values.
func (t Tuple) Equal(u Tuple) bool { return t.Compare(u) == 0 }

// Clone returns an independent copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Hash returns a 64-bit hash of the whole tuple.
func (t Tuple) Hash() uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range t {
		h ^= v.Hash()
		h *= 0x100000001b3
		h ^= h >> 29
	}
	return h
}

// Permute returns the tuple reordered so that out[i] = t[perm[i]].
// It is used to build secondary indices over permuted column orders.
func (t Tuple) Permute(perm []int) Tuple {
	out := make(Tuple, len(perm))
	for i, p := range perm {
		out[i] = t[p]
	}
	return out
}

// String renders the tuple as "(v1, v2, …)".
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Of builds a tuple from values; a small convenience for tests and examples.
func Of(vs ...Value) Tuple { return Tuple(vs) }

// Ints builds a tuple of integer values.
func Ints(vs ...int64) Tuple {
	t := make(Tuple, len(vs))
	for i, v := range vs {
		t[i] = Int(v)
	}
	return t
}

// Strings builds a tuple of string values.
func Strings(vs ...string) Tuple {
	t := make(Tuple, len(vs))
	for i, v := range vs {
		t[i] = String(v)
	}
	return t
}

// SortTuples sorts ts in place in lexicographic order (insertion-free
// merge sort on an auxiliary buffer to keep the sort stable).
func SortTuples(ts []Tuple) {
	if len(ts) < 2 {
		return
	}
	buf := make([]Tuple, len(ts))
	mergeSort(ts, buf)
}

func mergeSort(ts, buf []Tuple) {
	n := len(ts)
	if n < 2 {
		return
	}
	m := n / 2
	mergeSort(ts[:m], buf[:m])
	mergeSort(ts[m:], buf[m:])
	copy(buf, ts)
	i, j := 0, m
	for k := 0; k < n; k++ {
		switch {
		case i >= m:
			ts[k] = buf[j]
			j++
		case j >= n:
			ts[k] = buf[i]
			i++
		case buf[i].Compare(buf[j]) <= 0:
			ts[k] = buf[i]
			i++
		default:
			ts[k] = buf[j]
			j++
		}
	}
}

// DedupSorted removes adjacent duplicates from a sorted slice of tuples,
// returning the shortened slice. LogiQL has set semantics, so relations
// never contain duplicates.
func DedupSorted(ts []Tuple) []Tuple {
	if len(ts) < 2 {
		return ts
	}
	out := ts[:1]
	for _, t := range ts[1:] {
		if !t.Equal(out[len(out)-1]) {
			out = append(out, t)
		}
	}
	return out
}
