package tuple

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTupleCompareLexicographic(t *testing.T) {
	cases := []struct {
		a, b Tuple
		want int
	}{
		{Ints(1, 2), Ints(1, 3), -1},
		{Ints(1, 3), Ints(1, 2), 1},
		{Ints(1, 2), Ints(1, 2), 0},
		{Ints(1), Ints(1, 0), -1}, // prefix orders first
		{Ints(2), Ints(1, 9), 1},
		{Tuple{}, Ints(0), -1},
		{Tuple{}, Tuple{}, 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("%v.Compare(%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestTupleEqualAndClone(t *testing.T) {
	a := Of(Int(1), String("x"), Float(2.5))
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatalf("clone not equal")
	}
	b[0] = Int(9)
	if a.Equal(b) {
		t.Fatalf("mutating clone affected original comparison")
	}
	if a[0].AsInt() != 1 {
		t.Fatalf("clone shares storage with original")
	}
}

func TestTuplePermute(t *testing.T) {
	a := Ints(10, 20, 30)
	p := a.Permute([]int{2, 0, 1})
	want := Ints(30, 10, 20)
	if !p.Equal(want) {
		t.Errorf("Permute = %v, want %v", p, want)
	}
}

func TestTupleHashConsistency(t *testing.T) {
	f := func(a, b int64) bool {
		return Ints(a, b).Hash() == Ints(a, b).Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if Ints(1, 2).Hash() == Ints(2, 1).Hash() {
		t.Errorf("hash ignores order")
	}
}

func TestSortTuplesAndDedup(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var ts []Tuple
	for i := 0; i < 500; i++ {
		ts = append(ts, Ints(rng.Int63n(20), rng.Int63n(20)))
	}
	SortTuples(ts)
	for i := 1; i < len(ts); i++ {
		if ts[i-1].Compare(ts[i]) > 0 {
			t.Fatalf("not sorted at %d", i)
		}
	}
	d := DedupSorted(ts)
	for i := 1; i < len(d); i++ {
		if d[i-1].Compare(d[i]) >= 0 {
			t.Fatalf("dedup left duplicate or disorder at %d", i)
		}
	}
	// Every original tuple must still be present in the deduped slice.
	present := func(x Tuple) bool {
		for _, y := range d {
			if x.Equal(y) {
				return true
			}
		}
		return false
	}
	for _, x := range ts {
		if !present(x) {
			t.Fatalf("dedup dropped %v entirely", x)
		}
	}
}

func TestSortTuplesEmptyAndSingle(t *testing.T) {
	SortTuples(nil)
	one := []Tuple{Ints(1)}
	SortTuples(one)
	if len(one) != 1 {
		t.Fatal("single-element sort broke slice")
	}
	if got := DedupSorted(nil); len(got) != 0 {
		t.Fatalf("DedupSorted(nil) = %v", got)
	}
}

func TestTupleString(t *testing.T) {
	got := Of(Int(1), String("a")).String()
	if got != `(1, "a")` {
		t.Errorf("String() = %q", got)
	}
}
