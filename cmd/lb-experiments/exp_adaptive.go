package main

import (
	"fmt"
	"time"

	"logicblox/internal/core"
	"logicblox/internal/obs"
	"logicblox/internal/tuple"
)

// runAdaptive measures the feedback-driven optimizer loop: repeated exec
// transactions over the same logic re-run sample-based join-order
// selection from scratch with the plain optimizer, while the adaptive
// plan store samples once and reuses the cached order until observed
// costs or input cardinalities drift. The table reports, per variant,
// the number of ChooseOrder sampling runs and the total transaction
// time for the same workload.
func runAdaptive(quick bool) {
	txCount := 200
	if quick {
		txCount = 40
	}
	type variant struct {
		name  string
		setup func(ws *core.Workspace) *core.Workspace
	}
	variants := []variant{
		{"resample-per-tx", func(ws *core.Workspace) *core.Workspace { return ws.WithOptimizer(true) }},
		{"plan-cache", func(ws *core.Workspace) *core.Workspace { return ws.WithAdaptiveOptimizer(true) }},
	}
	fmt.Printf("%-18s %-10s %-14s %-14s %-12s\n", "variant", "txs", "sampling runs", "cache hits", "total time")
	for _, v := range variants {
		reg := obs.NewRegistry()
		ws := adaptiveWorkload(v.setup(core.NewWorkspace().WithObserver(reg)))
		t0 := time.Now()
		for i := 0; i < txCount; i++ {
			res, err := ws.Exec(fmt.Sprintf("+r(%d, %d).", 100000+i, i%50))
			if err != nil {
				panic(err)
			}
			ws = res.Workspace
		}
		d := time.Since(t0)
		snap := reg.Snapshot()
		fmt.Printf("%-18s %-10d %-14d %-14d %-12s\n", v.name, txCount,
			snap.Counters["optimizer.choose_order.calls"], snap.Counters["optimizer.plan.hits"], d.Round(time.Microsecond))
	}
	fmt.Println("claim check: the plan cache collapses per-transaction sampling to a handful of cold misses;")
	fmt.Println("the adaptive variant's sampling runs stay constant as transactions grow.")
}

// adaptiveWorkload installs a three-atom join whose best order differs
// from the static heuristic (tiny t makes starting at c far cheaper) and
// loads enough data that sampling is measurable.
func adaptiveWorkload(ws *core.Workspace) *core.Workspace {
	ws, err := ws.AddBlock("q", `q(a, b, c) <- r(a, b), s(b, c), t(c).`)
	if err != nil {
		panic(err)
	}
	var rs, ss []tuple.Tuple
	for i := int64(0); i < 20000; i++ {
		rs = append(rs, tuple.Ints(i%800, i%1100))
		ss = append(ss, tuple.Ints(i%1100, i%1400))
	}
	if ws, err = ws.Load("r", rs); err != nil {
		panic(err)
	}
	if ws, err = ws.Load("s", ss); err != nil {
		panic(err)
	}
	if ws, err = ws.Load("t", []tuple.Tuple{tuple.Ints(17)}); err != nil {
		panic(err)
	}
	return ws
}
