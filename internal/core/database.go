package core

import (
	"fmt"
	"sort"
	"sync"
)

// Database manages named branches of workspaces and the version history
// (paper §2.2.2 Branch/Delete-branch, §3.1). Because workspaces are
// immutable values over persistent structures, Branch is an O(1) pointer
// copy, commit is a pointer swap, and any historical version can itself
// be branched (time travel); the version graph is an arbitrary DAG.
type Database struct {
	mu       sync.RWMutex
	branches map[string]*Workspace
	history  []VersionEntry
}

// VersionEntry records one committed workspace version.
type VersionEntry struct {
	Branch    string
	Workspace *Workspace
}

// DefaultBranch is the branch created by NewDatabase.
const DefaultBranch = "main"

// NewDatabase returns a database with an empty workspace on "main".
func NewDatabase() *Database { return NewDatabaseWith(NewWorkspace()) }

// NewDatabaseWith returns a database whose main branch starts at ws —
// the hook the functional options of logicblox.Open use to configure
// the root workspace (optimizer, observer) before the first commit.
func NewDatabaseWith(ws *Workspace) *Database {
	return &Database{
		branches: map[string]*Workspace{DefaultBranch: ws},
		history:  []VersionEntry{{Branch: DefaultBranch, Workspace: ws}},
	}
}

// Workspace returns the current workspace of a branch.
func (db *Database) Workspace(branch string) (*Workspace, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	ws, ok := db.branches[branch]
	if !ok {
		return nil, fmt.Errorf("unknown branch %s: %w", branch, ErrNoSuchBranch)
	}
	return ws, nil
}

// Branch creates branch `to` as a copy of branch `from`. This is O(1):
// no data is copied (paper §3.1).
func (db *Database) Branch(from, to string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	src, ok := db.branches[from]
	if !ok {
		return fmt.Errorf("unknown branch %s: %w", from, ErrNoSuchBranch)
	}
	if _, exists := db.branches[to]; exists {
		return fmt.Errorf("branch %s: %w", to, ErrBranchExists)
	}
	db.branches[to] = src
	return nil
}

// BranchAt creates a branch from a historical version index (time travel).
func (db *Database) BranchAt(version int, to string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if version < 0 || version >= len(db.history) {
		return fmt.Errorf("version %d out of range: %w", version, ErrNoSuchBranch)
	}
	if _, exists := db.branches[to]; exists {
		return fmt.Errorf("branch %s: %w", to, ErrBranchExists)
	}
	db.branches[to] = db.history[version].Workspace
	return nil
}

// DeleteBranch drops a branch. Aborting all its work is just dropping the
// reference.
func (db *Database) DeleteBranch(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if name == DefaultBranch {
		return fmt.Errorf("cannot delete %s", DefaultBranch)
	}
	if _, ok := db.branches[name]; !ok {
		return fmt.Errorf("unknown branch %s: %w", name, ErrNoSuchBranch)
	}
	delete(db.branches, name)
	return nil
}

// Commit makes ws the new head of branch and records it in the history.
// Conceptually just a pointer swap (paper T4).
func (db *Database) Commit(branch string, ws *Workspace) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.branches[branch]; !ok {
		return fmt.Errorf("unknown branch %s: %w", branch, ErrNoSuchBranch)
	}
	db.branches[branch] = ws
	db.history = append(db.history, VersionEntry{Branch: branch, Workspace: ws})
	return nil
}

// CommitIf is the optimistic-concurrency commit (paper §3.4's snapshot
// model without the fine-grained repair): it makes ws the new head of
// branch only if the head is still parent — the snapshot the transaction
// executed against. If another transaction committed in between, it
// returns ErrConflict and the caller re-executes against the new head
// (coarse-grained repair) or surfaces the conflict. The compare-and-swap
// and the history append are atomic under the database lock.
func (db *Database) CommitIf(branch string, parent, ws *Workspace) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	head, ok := db.branches[branch]
	if !ok {
		return fmt.Errorf("unknown branch %s: %w", branch, ErrNoSuchBranch)
	}
	if head != parent {
		return fmt.Errorf("branch %s moved since snapshot: %w", branch, ErrConflict)
	}
	db.branches[branch] = ws
	db.history = append(db.history, VersionEntry{Branch: branch, Workspace: ws})
	return nil
}

// Branches lists branch names.
func (db *Database) Branches() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.branches))
	for b := range db.branches {
		out = append(out, b)
	}
	sort.Strings(out)
	return out
}

// Versions returns the number of committed versions.
func (db *Database) Versions() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.history)
}

// VersionAt returns the i-th committed version.
func (db *Database) VersionAt(i int) (VersionEntry, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if i < 0 || i >= len(db.history) {
		return VersionEntry{}, fmt.Errorf("version %d out of range", i)
	}
	return db.history[i], nil
}
