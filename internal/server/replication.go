package server

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"strconv"

	"logicblox/internal/durable"
	"logicblox/internal/replica"
)

// This file is the primary/follower seam of journal-streaming
// replication (docs/replication.md):
//
//	GET  /journal/tail?from_seq=N  stream journal frames (primary)
//	GET  /replica/snapshot         full framed snapshot for bootstrap/resync
//	POST /promote                  promote a follower to primary
//
// plus the follower-mode request routing: writes answer 421 with the
// primary's address, /query answers 503 past the staleness bound.

// rejectReadOnly answers 421 when this server is an unpromoted follower:
// the client should retry the write against the primary named in the
// error body. Returns true when the request was rejected.
func (s *Server) rejectReadOnly(w http.ResponseWriter, r *http.Request) bool {
	f := s.cfg.Follower
	if f == nil || f.Promoted() {
		return false
	}
	s.reg.Counter("server.errors.read_only").Inc()
	writeJSON(w, http.StatusMisdirectedRequest, ErrorResponse{
		Error:     "follower is read-only; send writes to the primary",
		Code:      "read_only",
		RequestID: requestIDFrom(r.Context()),
		Primary:   f.PrimaryURL(),
	})
	return true
}

// writable gates a write handler on follower mode.
func (s *Server) writable(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.rejectReadOnly(w, r) {
			return
		}
		h(w, r)
	}
}

// freshRead gates a read handler on the follower's staleness bound: a
// follower that has lost its primary for longer than the bound answers
// 503 stale_read so clients (and load balancers watching /healthz) fall
// back to the primary or a healthier replica rather than reading
// arbitrarily old data.
func (s *Server) freshRead(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if f := s.cfg.Follower; f != nil && !f.Promoted() && f.Stale() {
			s.reg.Counter("server.errors.stale_read").Inc()
			writeErrorCode(w, http.StatusServiceUnavailable, "stale_read",
				"replica lag exceeds the staleness bound", requestIDFrom(r.Context()))
			return
		}
		h(w, r)
	}
}

// handleJournalTail streams committed journal records from from_seq
// (exclusive) as CRC-framed chunks: a heartbeat with the current head and
// retained floor first, then records as they commit, heartbeats while
// idle, and a clean end-of-stream frame when the long-poll window
// elapses or the server drains. A from_seq below the retained floor —
// the checkpointer already folded those records into a snapshot — is 410
// journal_truncated, the follower's cue to resync from /replica/snapshot.
//
// Hand-rolled middleware: the generic endpoint() wrapper would impose the
// default request timeout and a worker-pool slot, and a long-poll stream
// must hold neither.
func (s *Server) handleJournalTail(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErrorCode(w, http.StatusMethodNotAllowed, "bad_request", "GET required", requestID(r))
		return
	}
	st := s.cfg.Durable
	if st == nil {
		writeErrorCode(w, http.StatusPreconditionFailed, "not_durable",
			"replication requires a durable primary (-data)", requestID(r))
		return
	}
	if s.draining.Load() {
		writeErrorCode(w, http.StatusServiceUnavailable, "unavailable", "server is draining", requestID(r))
		return
	}
	from, err := strconv.ParseUint(r.URL.Query().Get("from_seq"), 10, 64)
	if err != nil && r.URL.Query().Get("from_seq") != "" {
		writeErrorCode(w, http.StatusBadRequest, "bad_request", "from_seq must be an unsigned integer", requestID(r))
		return
	}
	if _, _, _, terr := st.TailSince(from); errors.Is(terr, durable.ErrJournalTruncated) {
		s.reg.Counter("server.tail.truncated").Inc()
		writeErrorCode(w, http.StatusGone, "journal_truncated",
			"journal truncated before from_seq; resync from /replica/snapshot", requestID(r))
		return
	}

	s.reg.Counter("server.tail.requests").Inc()
	s.tails.Add(1)
	defer s.tails.Add(-1)
	w.Header().Set(requestIDHeader, requestID(r))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}

	// The stream context ends with the client, the poll window, or drain
	// (BeginDrain closes drainCh so every open stream sees it promptly).
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.TailWindow)
	defer cancel()
	go func() {
		select {
		case <-s.drainCh:
			cancel()
		case <-ctx.Done():
		}
	}()

	writeEOS := func() {
		durable.WriteTailFrame(w, durable.TailFrame{Type: durable.FrameEOS})
		flush()
	}
	for {
		recs, head, floor, err := st.TailSince(from)
		if err != nil {
			// Truncation mid-stream (a checkpoint raced us): end cleanly;
			// the reconnect gets the 410 and resyncs.
			writeEOS()
			return
		}
		if err := durable.WriteTailFrame(w, durable.TailFrame{Type: durable.FrameHeartbeat, Head: head, Floor: floor}); err != nil {
			return // client gone
		}
		for _, rec := range recs {
			if err := durable.WriteTailFrame(w, durable.TailFrame{Type: durable.FrameRecord, Rec: rec}); err != nil {
				return
			}
			from = rec.Seq
		}
		flush()
		// Long-poll for the next commit, waking at the heartbeat interval
		// so the follower's lag clock stays fresh while idle.
		wctx, wcancel := context.WithTimeout(ctx, s.cfg.TailHeartbeat)
		werr := st.WaitSeq(wctx, from)
		wcancel()
		switch {
		case ctx.Err() != nil:
			// Window elapsed, drain began, or the client went away. The
			// EOS write fails harmlessly in the last case.
			writeEOS()
			return
		case errors.Is(werr, durable.ErrClosed):
			writeEOS()
			return
		}
	}
}

// handleReplicaSnapshot serves a full database snapshot in the durable
// framed format (magic + version + CRC), with the snapshot's sequence
// number in X-LB-Snapshot-Seq. Followers bootstrap and resync from it;
// the frame means a torn download fails checksum validation instead of
// loading partially.
func (s *Server) handleReplicaSnapshot(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	seq, err := s.Database().SaveSnapshot(&buf)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	framed := durable.FrameSnapshotBytes(buf.Bytes())
	s.reg.Counter("server.snapshot.serves").Inc()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-LB-Snapshot-Seq", strconv.FormatUint(seq, 10))
	w.Header().Set("Content-Length", strconv.Itoa(len(framed)))
	w.Write(framed)
}

// handlePromote promotes a follower to primary: the tailer is sealed and
// the local journal re-opened read-write, after which this process
// accepts writes that continue the primary's sequence numbering.
// Idempotent — promoting twice reports promoted without error. There is
// no fencing of the old primary (docs/replication.md#failover-runbook):
// the operator must ensure it stays down or demoted.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	f := s.cfg.Follower
	if f == nil {
		writeErrorCode(w, http.StatusPreconditionFailed, "not_follower",
			"this server is not a follower", requestIDFrom(r.Context()))
		return
	}
	err := f.Promote()
	if err != nil && !errors.Is(err, replica.ErrPromoted) {
		s.writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, PromoteResponse{
		OK: true, Promoted: true, Seq: f.DB().Seq(),
		AlreadyPromoted: errors.Is(err, replica.ErrPromoted),
	})
}

// ReplicaStatus returns the follower's replication status, or ok=false
// on a primary (a convenience for tests and cmd/lb-serve).
func (s *Server) ReplicaStatus() (replica.Status, bool) {
	if f := s.cfg.Follower; f != nil {
		return f.Status(), true
	}
	return replica.Status{}, false
}

// TailStreams reports the number of open /journal/tail streams.
func (s *Server) TailStreams() int64 { return s.tails.Load() }
