// Package engine_test holds the differential test harness: pseudo-random
// Datalog programs are evaluated both by a deliberately naive nested-loop
// reference evaluator and by the real LFTJ engine — under the default
// plan, under every candidate variable order, and with the adaptive plan
// cache cold and warm — and the outputs must agree exactly. The same
// generated programs drive IVM equivalence checks: random delta batches
// maintained incrementally must match full re-evaluation in every mode.
//
// It lives in an external package so it can import ivm (which itself
// imports engine) without a cycle.
package engine_test

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"logicblox/internal/compiler"
	"logicblox/internal/engine"
	"logicblox/internal/ivm"
	"logicblox/internal/optimizer"
	"logicblox/internal/parser"
	"logicblox/internal/relation"
	"logicblox/internal/tuple"
)

// ---- generated-program model -------------------------------------------

type genAtom struct {
	pred string
	vars []string
}

// genCmp is a comparison literal: l op r (var vs var) or l op c (var vs
// constant).
type genCmp struct {
	l, op, r string // r == "" → compare against the constant c
	c        int64
}

// genAssign binds a fresh variable to an arithmetic expression over
// bound variables/constants: v = l op r (or v = l op c).
type genAssign struct {
	v, l, op, r string // r == "" → constant operand c
	c           int64
}

type genRule struct {
	head    genAtom
	body    []genAtom
	negs    []genAtom // negated atoms; all vars bound by positive atoms
	cmps    []genCmp
	assigns []genAssign
}

type genProgram struct {
	seed    int64
	rules   []genRule
	arities map[string]int // every predicate, base and derived
	base    map[string]relation.Relation
	derived []string // derived predicate names, definition order
}

func (p *genProgram) source() string {
	var b strings.Builder
	for _, r := range p.rules {
		fmt.Fprintf(&b, "%s(%s) <- ", r.head.pred, strings.Join(r.head.vars, ", "))
		var parts []string
		for _, a := range r.body {
			parts = append(parts, fmt.Sprintf("%s(%s)", a.pred, strings.Join(a.vars, ", ")))
		}
		for _, a := range r.assigns {
			rhs := a.r
			if rhs == "" {
				rhs = fmt.Sprintf("%d", a.c)
			}
			parts = append(parts, fmt.Sprintf("%s = %s %s %s", a.v, a.l, a.op, rhs))
		}
		for _, c := range r.cmps {
			rhs := c.r
			if rhs == "" {
				rhs = fmt.Sprintf("%d", c.c)
			}
			parts = append(parts, fmt.Sprintf("%s %s %s", c.l, c.op, rhs))
		}
		for _, n := range r.negs {
			parts = append(parts, fmt.Sprintf("!%s(%s)", n.pred, strings.Join(n.vars, ", ")))
		}
		b.WriteString(strings.Join(parts, ", "))
		b.WriteString(".\n")
	}
	return b.String()
}

const genDomain = 7 // value domain [0, genDomain)

var (
	genVarPool    = []string{"a", "b", "c", "d", "e"}
	genAssignPool = []string{"x", "y", "z"} // assigned-variable names, disjoint from genVarPool
	genCmpOps     = []string{"<", "<=", ">", ">=", "!="}
	genArithOps   = []string{"+", "-", "*"}
)

// generate builds a random stratified Datalog program: 2-3 base
// predicates with random small relations, 1-3 derived predicates each
// defined by 1-2 rules over earlier predicates, possibly recursive.
// Beyond conjunctive atoms, rule bodies may carry comparison literals
// (var vs var or var vs constant), arithmetic assignments binding fresh
// head-usable variables (non-recursive rules only, so fixpoints stay
// finite), and negated atoms over base or strictly earlier derived
// predicates with every variable positively bound (safety and
// stratification). Atom variables are drawn from a shared pool so bodies
// join; head variables are a subset of body and assigned variables.
func generate(seed int64) *genProgram {
	rng := rand.New(rand.NewSource(seed))
	p := &genProgram{
		seed:    seed,
		arities: map[string]int{},
		base:    map[string]relation.Relation{},
	}

	nBase := 2 + rng.Intn(2)
	var baseNames []string
	for i := 0; i < nBase; i++ {
		name := fmt.Sprintf("p%d", i)
		arity := 1 + rng.Intn(2)
		p.arities[name] = arity
		rel := relation.New(arity)
		for j := 0; j < 12+rng.Intn(18); j++ {
			t := make(tuple.Tuple, arity)
			for k := range t {
				t[k] = tuple.Int(int64(rng.Intn(genDomain)))
			}
			rel = rel.Insert(t)
		}
		p.base[name] = rel
		baseNames = append(baseNames, name)
	}

	nDerived := 1 + rng.Intn(3)
	for i := 0; i < nDerived; i++ {
		name := fmt.Sprintf("d%d", i)
		arity := 1 + rng.Intn(2)
		p.arities[name] = arity
		p.derived = append(p.derived, name)

		nRules := 1 + rng.Intn(2)
		for ri := 0; ri < nRules; ri++ {
			// Candidate body predicates: every base plus earlier derived;
			// non-first rules may also recurse on the head predicate.
			pool := append([]string(nil), baseNames...)
			pool = append(pool, p.derived[:i]...)
			if ri > 0 && rng.Intn(3) == 0 {
				pool = append(pool, name)
			}
			nAtoms := 2 + rng.Intn(2)
			rule := genRule{head: genAtom{pred: name}}
			seen := map[string]bool{}
			recursive := false
			var bodyVars []string
			for ai := 0; ai < nAtoms; ai++ {
				pred := pool[rng.Intn(len(pool))]
				if pred == name {
					recursive = true
				}
				vars := pickVars(rng, p.arities[pred], bodyVars)
				for _, v := range vars {
					if !seen[v] {
						seen[v] = true
						bodyVars = append(bodyVars, v)
					}
				}
				rule.body = append(rule.body, genAtom{pred: pred, vars: vars})
			}

			// Arithmetic assignment (non-recursive rules only: a fresh
			// value flowing into a recursive head would diverge).
			if !recursive && rng.Intn(3) == 0 {
				a := genAssign{
					v:  genAssignPool[rng.Intn(len(genAssignPool))],
					l:  bodyVars[rng.Intn(len(bodyVars))],
					op: genArithOps[rng.Intn(len(genArithOps))],
				}
				if rng.Intn(2) == 0 && len(bodyVars) > 1 {
					a.r = bodyVars[rng.Intn(len(bodyVars))]
				} else {
					a.c = int64(rng.Intn(genDomain))
				}
				rule.assigns = append(rule.assigns, a)
			}

			// Comparison literal over bound variables/constants.
			if rng.Intn(3) == 0 {
				c := genCmp{
					l:  bodyVars[rng.Intn(len(bodyVars))],
					op: genCmpOps[rng.Intn(len(genCmpOps))],
				}
				if rng.Intn(2) == 0 && len(bodyVars) > 1 {
					c.r = bodyVars[rng.Intn(len(bodyVars))]
				} else {
					c.c = int64(rng.Intn(genDomain))
				}
				rule.cmps = append(rule.cmps, c)
			}

			// Negated atom over a base or strictly earlier derived
			// predicate, every variable positively bound.
			if rng.Intn(3) == 0 {
				negPool := append([]string(nil), baseNames...)
				negPool = append(negPool, p.derived[:i]...)
				pred := negPool[rng.Intn(len(negPool))]
				vars := make([]string, p.arities[pred])
				for k := range vars {
					vars[k] = bodyVars[rng.Intn(len(bodyVars))]
				}
				rule.negs = append(rule.negs, genAtom{pred: pred, vars: vars})
			}

			// Head: a random nonempty subset of body variables of the
			// declared arity (repeat if the body is variable-poor);
			// assigned variables are candidates too.
			headPool := bodyVars
			for _, a := range rule.assigns {
				headPool = append(headPool, a.v)
			}
			rule.head.vars = make([]string, arity)
			for k := range rule.head.vars {
				rule.head.vars[k] = headPool[rng.Intn(len(headPool))]
			}
			// Bias toward actually exercising the assignment: route the
			// assigned value into the head half the time.
			if len(rule.assigns) > 0 && rng.Intn(2) == 0 {
				rule.head.vars[rng.Intn(arity)] = rule.assigns[0].v
			}
			p.rules = append(p.rules, rule)
		}
	}
	return p
}

// pickVars draws n distinct variables for one atom, biased toward
// variables already used in the rule body so atoms actually join.
func pickVars(rng *rand.Rand, n int, used []string) []string {
	out := make([]string, 0, n)
	taken := map[string]bool{}
	for len(out) < n {
		var v string
		if len(used) > 0 && rng.Intn(3) != 0 {
			v = used[rng.Intn(len(used))]
		} else {
			v = genVarPool[rng.Intn(len(genVarPool))]
		}
		if taken[v] {
			v = genVarPool[rng.Intn(len(genVarPool))]
		}
		if !taken[v] {
			taken[v] = true
			out = append(out, v)
		}
	}
	return out
}

// ---- naive nested-loop reference evaluator ------------------------------

// refEval computes the program's stratified model by naive iteration:
// derived predicates evaluate in definition order (their bodies only
// reference base, strictly earlier derived predicates, and — for
// recursive rules — themselves, so definition order is a stratification
// and negated atoms always see completed predicates), each iterated to
// fixpoint with nested-loop joins. It shares no code with the engine
// under test.
func refEval(p *genProgram, base map[string]relation.Relation) map[string]relation.Relation {
	rels := map[string][]tuple.Tuple{}
	keys := map[string]map[string]bool{}
	add := func(name string, t tuple.Tuple) bool {
		k := fmt.Sprintf("%v", t)
		if keys[name] == nil {
			keys[name] = map[string]bool{}
		}
		if keys[name][k] {
			return false
		}
		keys[name][k] = true
		rels[name] = append(rels[name], t)
		return true
	}
	for name, rel := range base {
		rel.ForEach(func(t tuple.Tuple) bool { add(name, t.Clone()); return true })
	}
	for _, d := range p.derived {
		if _, ok := rels[d]; !ok {
			rels[d] = nil
		}
	}

	for _, d := range p.derived {
		for changed := true; changed; {
			changed = false
			for _, r := range p.rules {
				if r.head.pred != d {
					continue
				}
				for _, t := range refApplyRule(r, rels) {
					if add(r.head.pred, t) {
						changed = true
					}
				}
			}
		}
	}

	out := map[string]relation.Relation{}
	for _, d := range p.derived {
		rel := relation.New(p.arities[d])
		for _, t := range rels[d] {
			rel = rel.Insert(t)
		}
		out[d] = rel
	}
	return out
}

// refApplyRule computes one application of a rule via nested loops over
// the body atoms, binding variables left to right; once all positive
// atoms are bound it evaluates assignments, then filters the binding
// through comparisons and negated atoms before emitting the head.
func refApplyRule(r genRule, rels map[string][]tuple.Tuple) []tuple.Tuple {
	var out []tuple.Tuple
	env := map[string]tuple.Value{}
	var walk func(i int)
	walk = func(i int) {
		if i == len(r.body) {
			var assigned []string
			for _, a := range r.assigns {
				l := env[a.l].AsInt()
				rv := a.c
				if a.r != "" {
					rv = env[a.r].AsInt()
				}
				var v int64
				switch a.op {
				case "+":
					v = l + rv
				case "-":
					v = l - rv
				case "*":
					v = l * rv
				}
				env[a.v] = tuple.Int(v)
				assigned = append(assigned, a.v)
			}
			ok := true
			for _, c := range r.cmps {
				l := env[c.l].AsInt()
				rv := c.c
				if c.r != "" {
					rv = env[c.r].AsInt()
				}
				if !refCompare(c.op, l, rv) {
					ok = false
					break
				}
			}
			if ok {
				for _, n := range r.negs {
					if refMatches(n, env, rels) {
						ok = false
						break
					}
				}
			}
			if ok {
				t := make(tuple.Tuple, len(r.head.vars))
				for k, v := range r.head.vars {
					t[k] = env[v]
				}
				out = append(out, t)
			}
			for _, v := range assigned {
				delete(env, v)
			}
			return
		}
		a := r.body[i]
		for _, fact := range rels[a.pred] {
			ok := true
			var bound []string
			for k, v := range a.vars {
				if cur, has := env[v]; has {
					if !tuple.Equal(cur, fact[k]) {
						ok = false
						break
					}
				} else {
					env[v] = fact[k]
					bound = append(bound, v)
				}
			}
			if ok {
				walk(i + 1)
			}
			for _, v := range bound {
				delete(env, v)
			}
		}
	}
	walk(0)
	return out
}

// refCompare evaluates one comparison operator over ints.
func refCompare(op string, l, r int64) bool {
	switch op {
	case "<":
		return l < r
	case "<=":
		return l <= r
	case ">":
		return l > r
	case ">=":
		return l >= r
	case "!=":
		return l != r
	default:
		panic("unknown comparison op " + op)
	}
}

// refMatches reports whether a fully bound atom pattern matches any fact.
func refMatches(a genAtom, env map[string]tuple.Value, rels map[string][]tuple.Tuple) bool {
	for _, fact := range rels[a.pred] {
		ok := true
		for k, v := range a.vars {
			if !tuple.Equal(env[v], fact[k]) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// ---- the differential harness -------------------------------------------

const diffPrograms = 50

func compileGen(t *testing.T, p *genProgram) *compiler.Program {
	t.Helper()
	parsed, err := parser.Parse(p.source())
	if err != nil {
		t.Fatalf("seed %d: parse: %v\n%s", p.seed, err, p.source())
	}
	prog, err := compiler.Compile(parsed)
	if err != nil {
		t.Fatalf("seed %d: compile: %v\n%s", p.seed, err, p.source())
	}
	return prog
}

func checkDerived(t *testing.T, p *genProgram, ctx *engine.Context, want map[string]relation.Relation, label string) {
	t.Helper()
	for _, d := range p.derived {
		got := ctx.Relation(d)
		if !got.Equal(want[d]) {
			t.Fatalf("seed %d (%s): %s mismatch: engine %d tuples, reference %d\n%s\nengine: %v\nreference: %v",
				p.seed, label, d, got.Len(), want[d].Len(), p.source(), sortedSlice(got), sortedSlice(want[d]))
		}
	}
}

func sortedSlice(r relation.Relation) []string {
	var out []string
	r.ForEach(func(t tuple.Tuple) bool { out = append(out, fmt.Sprintf("%v", t)); return true })
	sort.Strings(out)
	return out
}

// TestDifferentialLFTJ evaluates 50 generated programs with the real
// engine — heuristic plan, sampled plan, and adaptive plan cache (cold
// then warm) — and requires exact agreement with the nested-loop
// reference on every derived predicate.
func TestDifferentialLFTJ(t *testing.T) {
	for seed := int64(0); seed < diffPrograms; seed++ {
		p := generate(seed)
		prog := compileGen(t, p)
		want := refEval(p, p.base)

		plain := engine.NewContext(prog, p.base, engine.Options{})
		if err := plain.EvalAll(); err != nil {
			t.Fatalf("seed %d: eval: %v\n%s", seed, err, p.source())
		}
		checkDerived(t, p, plain, want, "heuristic")

		opt := engine.NewContext(prog, p.base, engine.Options{Optimize: true})
		if err := opt.EvalAll(); err != nil {
			t.Fatalf("seed %d: optimized eval: %v", seed, err)
		}
		checkDerived(t, p, opt, want, "optimized")

		store := optimizer.NewPlanStore(optimizer.StoreOptions{})
		cold := engine.NewContext(prog, p.base, engine.Options{Optimize: true, Plans: store})
		if err := cold.EvalAll(); err != nil {
			t.Fatalf("seed %d: cold adaptive eval: %v", seed, err)
		}
		checkDerived(t, p, cold, want, "plan-cache cold")

		warm := engine.NewContext(prog, p.base, engine.Options{Optimize: true, Plans: store})
		if err := warm.EvalAll(); err != nil {
			t.Fatalf("seed %d: warm adaptive eval: %v", seed, err)
		}
		checkDerived(t, p, warm, want, "plan-cache warm")
		if st := store.Stats(); st.Misses > 0 && st.Hits == 0 {
			t.Fatalf("seed %d: warm pass never hit the plan cache: %+v", seed, st)
		}
	}
}

// TestDifferentialAllOrders re-evaluates every generated rule under
// every candidate variable order: one rule application over the fixpoint
// relations must produce identical results regardless of order.
func TestDifferentialAllOrders(t *testing.T) {
	for seed := int64(0); seed < diffPrograms; seed++ {
		p := generate(seed)
		prog := compileGen(t, p)
		want := refEval(p, p.base)

		// Seed a context with the full fixpoint (base + reference-derived)
		// so single-rule evaluations have their inputs materialized.
		seeded := func() *engine.Context {
			ctx := engine.NewContext(prog, p.base, engine.Options{})
			for _, d := range p.derived {
				ctx.Set(d, want[d])
			}
			return ctx
		}
		for _, rule := range prog.Rules {
			if rule.NumJoinVars <= 1 {
				continue
			}
			ref, err := seeded().EvalRule(rule, nil)
			if err != nil {
				t.Fatalf("seed %d: identity eval: %v\n%s", seed, err, p.source())
			}
			for _, order := range optimizer.CandidateOrders(rule.NumJoinVars, 0) {
				plan, err := compiler.ReorderRule(rule, order)
				if err != nil {
					t.Fatalf("seed %d: reorder %v: %v", seed, order, err)
				}
				got, err := seeded().EvalRule(plan, nil)
				if err != nil {
					t.Fatalf("seed %d: eval order %v: %v", seed, order, err)
				}
				if !got.Equal(ref) {
					t.Fatalf("seed %d: rule %s order %v: %d tuples vs %d\n%s",
						seed, rule.HeadName, order, got.Len(), ref.Len(), p.source())
				}
			}
		}
	}
}

// ---- IVM equivalence -----------------------------------------------------

// randomDeltas builds one random batch of base-relation changes:
// deletions sampled from current contents, insertions drawn fresh from
// the domain.
func randomDeltas(rng *rand.Rand, p *genProgram, cur map[string]relation.Relation) map[string]ivm.Delta {
	out := map[string]ivm.Delta{}
	// Iterate predicates in sorted order: ranging over the map directly
	// would consume the seeded PRNG in Go's randomized map order, making
	// the "deterministic" batches differ run to run.
	names := make([]string, 0, len(cur))
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rel := cur[name]
		if rng.Intn(2) == 0 {
			continue
		}
		var d ivm.Delta
		existing := rel.Slice()
		for i := 0; i < rng.Intn(3); i++ {
			if len(existing) == 0 {
				break
			}
			d.Del = append(d.Del, existing[rng.Intn(len(existing))])
		}
		arity := p.arities[name]
		for i := 0; i < 1+rng.Intn(3); i++ {
			t := make(tuple.Tuple, arity)
			for k := range t {
				t[k] = tuple.Int(int64(rng.Intn(genDomain)))
			}
			d.Ins = append(d.Ins, t)
		}
		if !d.Empty() {
			out[name] = d
		}
	}
	return out
}

func applyToBase(cur map[string]relation.Relation, deltas map[string]ivm.Delta) map[string]relation.Relation {
	next := map[string]relation.Relation{}
	for name, rel := range cur {
		d := deltas[name]
		for _, t := range d.Del {
			rel = rel.Delete(t)
		}
		for _, t := range d.Ins {
			rel = rel.Insert(t)
		}
		next[name] = rel
	}
	return next
}

var ivmModes = []ivm.Mode{ivm.Recompute, ivm.Counting, ivm.DRed, ivm.Sensitivity}

// TestDifferentialIVM maintains each generated program incrementally
// through random delta batches in every maintenance mode; after each
// batch the maintained views must equal both a full re-evaluation and
// the nested-loop reference over the updated base.
func TestDifferentialIVM(t *testing.T) {
	for seed := int64(0); seed < diffPrograms; seed++ {
		p := generate(seed)
		prog := compileGen(t, p)
		for _, mode := range ivmModes {
			m, err := ivm.NewMaintainer(prog, p.base, mode)
			if err != nil {
				t.Fatalf("seed %d %v: maintainer: %v\n%s", seed, mode, err, p.source())
			}
			rng := rand.New(rand.NewSource(seed*1000 + int64(mode)))
			cur := map[string]relation.Relation{}
			for name, rel := range p.base {
				cur[name] = rel
			}
			var deltaLog []string
			for batch := 0; batch < 3; batch++ {
				deltas := randomDeltas(rng, p, cur)
				if len(deltas) == 0 {
					continue
				}
				deltaLog = append(deltaLog, fmt.Sprintf("batch %d: %+v", batch, deltas))
				if _, err := m.Apply(deltas); err != nil {
					t.Fatalf("seed %d %v batch %d: apply: %v\n%s", seed, mode, batch, err, p.source())
				}
				cur = applyToBase(cur, deltas)
				want := refEval(p, cur)
				for _, d := range p.derived {
					got := m.Relation(d)
					if !got.Equal(want[d]) {
						t.Fatalf("seed %d %v batch %d: %s diverged: maintained %d tuples, reference %d\n%s\nmaintained: %v\nreference: %v\ndeltas:\n%s",
							seed, mode, batch, d, got.Len(), want[d].Len(), p.source(), sortedSlice(got), sortedSlice(want[d]), strings.Join(deltaLog, "\n"))
					}
				}
			}
		}
	}
}
