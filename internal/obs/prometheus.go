package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Prometheus text exposition (version 0.0.4) of a registry snapshot, the
// scrape surface served by lb-serve's GET /metrics. Metric names are the
// registry's dotted names with every character outside [a-zA-Z0-9_:]
// replaced by '_' and an "lb_" prefix, so "tx.exec.duration" becomes
// lb_tx_exec_duration_seconds. Counters get the conventional "_total"
// suffix; duration histograms are exposed in seconds with cumulative
// power-of-two buckets.

// promName sanitizes a registry metric name into a Prometheus one.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("lb_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus writes the snapshot's counters, gauges and histograms
// in Prometheus text exposition format. Rule profiles and traces are not
// exposed here (they are structured objects; use WriteJSON).
func (s Snapshot) WritePrometheus(w io.Writer) error {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[n]); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[n]); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if err := writePromHistogram(w, promName(n)+"_seconds", s.Histograms[n]); err != nil {
			return err
		}
	}
	// Summary-style quantile gauges alongside each histogram: p50/p95/p99
	// estimated from the power-of-two buckets (error bounded by one bucket
	// boundary), under a distinct name so the histogram exposition above
	// stays type-correct.
	for _, n := range names {
		h := s.Histograms[n]
		if h.Count == 0 {
			continue
		}
		pn := promName(n) + "_seconds_quantile"
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", pn); err != nil {
			return err
		}
		for _, q := range []float64{0.5, 0.95, 0.99} {
			if _, err := fmt.Fprintf(w, "%s{quantile=\"%g\"} %g\n", pn, q, h.Quantile(q).Seconds()); err != nil {
				return err
			}
		}
	}
	return nil
}

// writePromHistogram converts one power-of-two nanosecond-bucket
// histogram into Prometheus form: cumulative bucket counts keyed by
// upper bounds in seconds, plus _sum (seconds) and _count.
func writePromHistogram(w io.Writer, name string, h HistogramSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	bounds := make([]int64, 0, len(h.Buckets))
	for b := range h.Buckets {
		bounds = append(bounds, b)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	cum := int64(0)
	for _, b := range bounds {
		cum += h.Buckets[b]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, float64(b)/1e9, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %g\n", name, h.Sum.Seconds()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
	return err
}
