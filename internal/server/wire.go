package server

import (
	"encoding/json"
	"fmt"
	"strconv"

	"logicblox/internal/core"
	"logicblox/internal/obs"
	"logicblox/internal/tuple"
)

// Wire format of the lb-serve HTTP API. Every request body is JSON;
// every response body is JSON except /metrics (Prometheus text) and
// /save (binary snapshot). Errors are an ErrorResponse with a stable
// machine-readable Code mirroring the typed core errors.

// Request is the body of the transaction endpoints /exec, /query and
// /addblock.
type Request struct {
	// Branch the transaction runs against (default "main").
	Branch string `json:"branch,omitempty"`
	// Src is the LogiQL source: delta facts and reactive rules for
	// /exec, a program deriving the answer predicate "_" for /query,
	// block logic for /addblock.
	Src string `json:"src"`
	// Name is the block name (/addblock only).
	Name string `json:"name,omitempty"`
	// TimeoutMs, when > 0, tightens this request's context deadline
	// below the server default; on expiry the transaction's fixpoint
	// loop stops at the next iteration boundary and the request fails
	// with 504.
	TimeoutMs int `json:"timeout_ms,omitempty"`
	// Limit caps the answer rows of /query. Absent: the server's
	// default cap applies to materialized responses (streams are
	// uncapped). Zero or negative: explicitly uncapped. Positive: that
	// many rows, with a next_cursor when more exist.
	Limit *int `json:"limit,omitempty"`
	// Cursor resumes a paged /query from where a previous response's
	// next_cursor left off. The token pins the snapshot version, so
	// pages are consistent; a version evicted from history fails 410
	// stale_cursor.
	Cursor string `json:"cursor,omitempty"`
	// MaxResultBytes, when > 0, truncates a /query response once its
	// encoded rows exceed this many bytes (a next_cursor continues).
	MaxResultBytes int64 `json:"max_result_bytes,omitempty"`
	// Stream asks /query for a chunked NDJSON response (equivalent to
	// ?stream=1 or Accept: application/x-ndjson).
	Stream bool `json:"stream,omitempty"`
}

// CheckWarning is one advisory finding of POST /check: the warning-tier
// LogiQL program checker's output (dead rules, unconsumed heads,
// singleton variables, duplicate/subsumed rules, unsatisfiable
// constraint bodies). Warnings never reject the program.
type CheckWarning struct {
	Check   string `json:"check"`
	Clause  string `json:"clause"`
	Message string `json:"message"`
}

// CheckResponse carries POST /check's warnings. OK is true whenever the
// candidate parsed — warnings are advisory, so a warned program is
// still installable.
type CheckResponse struct {
	OK       bool           `json:"ok"`
	Branch   string         `json:"branch"`
	Warnings []CheckWarning `json:"warnings"`
}

// BranchRequest is the body of POST /branches.
type BranchRequest struct {
	// Op is one of "create", "branchat", "delete", "commit", "diff".
	Op string `json:"op"`
	// From is the source branch ("create", "commit", "diff").
	From string `json:"from,omitempty"`
	// To is the branch acted on.
	To string `json:"to,omitempty"`
	// Version is the history index for "branchat" (time travel).
	Version int `json:"version,omitempty"`
}

// Delta summarizes one predicate's change.
type Delta struct {
	Ins int `json:"ins"`
	Del int `json:"del"`
}

// ExecResponse reports a committed exec or addblock transaction.
type ExecResponse struct {
	OK      bool   `json:"ok"`
	Branch  string `json:"branch"`
	Version uint64 `json:"version"`
	// Retries counts commit conflicts the transaction survived; Repairs
	// counts how many of them were resolved by fine-grained repair
	// (paper §3.4) rather than full re-execution.
	Retries int              `json:"retries,omitempty"`
	Repairs int              `json:"repairs,omitempty"`
	Deltas  map[string]Delta `json:"deltas,omitempty"`
	// Trace is the request's span tree so far, inlined when the request
	// was made with ?trace=1.
	Trace *obs.SpanSnapshot `json:"trace,omitempty"`
}

// QueryResponse carries a query's answer tuples (the materialized JSON
// envelope; streamed queries use NDJSON StreamRow/StreamSummary records
// instead).
type QueryResponse struct {
	OK   bool    `json:"ok"`
	Rows [][]any `json:"rows"`
	// RowCount is len(Rows) — the rows in this page, not the full
	// result.
	RowCount int `json:"row_count,omitempty"`
	// Limit is the row cap that was applied (the request's, or the
	// server default); 0 means uncapped.
	Limit int `json:"limit,omitempty"`
	// Truncated reports that the result was cut off by limit or
	// max_result_bytes; NextCursor resumes it.
	Truncated  bool              `json:"truncated,omitempty"`
	NextCursor string            `json:"next_cursor,omitempty"`
	Trace      *obs.SpanSnapshot `json:"trace,omitempty"`
}

// queryWire is the server-side encoding twin of QueryResponse: Rows is a
// pre-encoded JSON array so answer tuples are serialized by the direct
// appendRowJSON encoder (one buffer, no per-value boxing) instead of
// [][]any through encoding/json. Clients decode into QueryResponse; the
// bytes are identical.
type queryWire struct {
	OK         bool              `json:"ok"`
	Rows       json.RawMessage   `json:"rows"`
	RowCount   int               `json:"row_count,omitempty"`
	Limit      int               `json:"limit,omitempty"`
	Truncated  bool              `json:"truncated,omitempty"`
	NextCursor string            `json:"next_cursor,omitempty"`
	Trace      *obs.SpanSnapshot `json:"trace,omitempty"`
}

// StreamRow is one NDJSON record of a streamed /query response: a single
// answer tuple. Rows arrive in ascending lexicographic order, duplicates
// removed — the same sequence, value for value, as the materialized
// envelope's rows.
type StreamRow struct {
	Row []any `json:"row"`
}

// StreamSummary is the final NDJSON record of a streamed /query
// response, wrapped as {"summary": {...}}. OK=false carries the error
// and its stable code (mid-stream failures can no longer change the
// HTTP status — the 200 header is long gone).
type StreamSummary struct {
	OK         bool   `json:"ok"`
	Rows       int64  `json:"rows"`
	Bytes      int64  `json:"bytes"`
	Limit      int    `json:"limit,omitempty"`
	Truncated  bool   `json:"truncated,omitempty"`
	NextCursor string `json:"next_cursor,omitempty"`
	RequestID  string `json:"request_id,omitempty"`
	Error      string `json:"error,omitempty"`
	Code       string `json:"code,omitempty"`
}

// StreamTrailer frames the summary record so it is distinguishable from
// row records by key.
type StreamTrailer struct {
	Summary *StreamSummary `json:"summary"`
}

// BranchesResponse lists branches, or reports a branch operation.
type BranchesResponse struct {
	OK       bool             `json:"ok"`
	Branches []string         `json:"branches,omitempty"`
	Diff     map[string]Delta `json:"diff,omitempty"`
}

// VersionInfo is one entry of GET /versions.
type VersionInfo struct {
	Index   int    `json:"index"`
	Branch  string `json:"branch"`
	Version uint64 `json:"version"`
	Blocks  int    `json:"blocks"`
}

// VersionsResponse is the committed-version history.
type VersionsResponse struct {
	OK       bool          `json:"ok"`
	Versions []VersionInfo `json:"versions"`
}

// PromoteResponse is the body of POST /promote: the follower is now a
// primary, continuing the replicated sequence numbering from Seq.
type PromoteResponse struct {
	OK       bool   `json:"ok"`
	Promoted bool   `json:"promoted"`
	Seq      uint64 `json:"seq"`
	// AlreadyPromoted reports an idempotent re-promotion.
	AlreadyPromoted bool `json:"already_promoted,omitempty"`
}

// ErrorResponse is every non-2xx JSON body.
type ErrorResponse struct {
	Error string `json:"error"`
	// Code is a stable identifier: no_such_branch, conflict, parse,
	// typecheck, constraint, timeout, busy, unavailable, bad_request,
	// bad_cursor, stale_cursor, no_such_trace, read_only, stale_read,
	// journal_truncated, not_follower, not_durable, internal.
	Code string `json:"code"`
	// RequestID correlates the failure with its access-log line and the
	// retained trace at GET /debug/trace/{id}. Every error envelope
	// carries one (client-supplied X-Request-ID or server-generated).
	RequestID string `json:"request_id,omitempty"`
	// Primary is the primary's base URL on read_only errors (421): the
	// address a follower redirects writes to.
	Primary string `json:"primary,omitempty"`
}

// TraceResponse is the body of GET /debug/trace/{id}: the retained span
// tree of one recent request. Without an ID it lists the retained
// request IDs instead, oldest first.
type TraceResponse struct {
	OK        bool              `json:"ok"`
	RequestID string            `json:"request_id,omitempty"`
	Endpoint  string            `json:"endpoint,omitempty"`
	Status    int               `json:"status,omitempty"`
	Trace     *obs.SpanSnapshot `json:"trace,omitempty"`
	IDs       []string          `json:"ids,omitempty"`
}

// valueJSON renders one LogiQL value as its natural JSON form; entities
// (structural, no lexical form) render as "entity(type,ordinal)".
func valueJSON(v tuple.Value) any {
	switch v.Kind() {
	case tuple.KindBool:
		return v.AsBool()
	case tuple.KindInt:
		return v.AsInt()
	case tuple.KindFloat:
		return v.AsFloat()
	case tuple.KindString:
		return v.AsString()
	case tuple.KindEntity:
		return fmt.Sprintf("entity(%d,%d)", v.EntityType(), v.EntityOrdinal())
	default:
		return nil
	}
}

func rowsJSON(rows []tuple.Tuple) [][]any {
	out := make([][]any, len(rows))
	for i, t := range rows {
		row := make([]any, len(t))
		for j, v := range t {
			row[j] = valueJSON(v)
		}
		out[i] = row
	}
	return out
}

// appendRowJSON encodes one answer tuple as a JSON array directly into
// dst — the hot path of both query responses. Byte-for-byte identical to
// encoding/json over rowsJSON's [][]any (including HTML escaping), but
// with no per-value interface boxing and no reflection for the common
// kinds.
func appendRowJSON(dst []byte, t tuple.Tuple) []byte {
	dst = append(dst, '[')
	for j, v := range t {
		if j > 0 {
			dst = append(dst, ',')
		}
		dst = appendValueJSON(dst, v)
	}
	return append(dst, ']')
}

func appendValueJSON(dst []byte, v tuple.Value) []byte {
	switch v.Kind() {
	case tuple.KindBool:
		if v.AsBool() {
			return append(dst, "true"...)
		}
		return append(dst, "false"...)
	case tuple.KindInt:
		return strconv.AppendInt(dst, v.AsInt(), 10)
	case tuple.KindFloat:
		// encoding/json's float format has bespoke exponent rules;
		// delegate to keep the bytes identical.
		b, _ := json.Marshal(v.AsFloat())
		return append(dst, b...)
	case tuple.KindString:
		return appendStringJSON(dst, v.AsString())
	case tuple.KindEntity:
		dst = append(dst, `"entity(`...)
		dst = strconv.AppendUint(dst, uint64(v.EntityType()), 10)
		dst = append(dst, ',')
		dst = strconv.AppendUint(dst, uint64(v.EntityOrdinal()), 10)
		return append(dst, `)"`...)
	default:
		return append(dst, "null"...)
	}
}

// appendStringJSON writes s as a JSON string. Strings of plain printable
// ASCII append directly; anything needing escapes (controls, quotes,
// non-ASCII, and the <>& that encoding/json HTML-escapes by default)
// falls back to json.Marshal so the output matches it byte for byte.
func appendStringJSON(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c >= 0x80 || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			b, _ := json.Marshal(s)
			return append(dst, b...)
		}
	}
	dst = append(dst, '"')
	dst = append(dst, s...)
	return append(dst, '"')
}

func deltasJSON(deltas map[string]core.ExecDelta) map[string]Delta {
	if len(deltas) == 0 {
		return nil
	}
	out := make(map[string]Delta, len(deltas))
	for pred, d := range deltas {
		out[pred] = Delta{Ins: len(d.Ins), Del: len(d.Del)}
	}
	return out
}
