package treap

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intOps() Ops[int] {
	return Ops[int]{
		Compare: func(a, b int) int { return a - b },
		Hash: func(k int) uint64 {
			h := uint64(k) * 0x9e3779b97f4a7c15
			h ^= h >> 32
			h *= 0xbf58476d1ce4e5b9
			h ^= h >> 29
			return h
		},
	}
}

func fromKeys(keys []int) Tree[int, int] {
	t := New[int, int](intOps())
	for _, k := range keys {
		t = t.Insert(k, k*10)
	}
	return t
}

func keysOf(t Tree[int, int]) []int { return t.Keys() }

func TestInsertGetDelete(t *testing.T) {
	tr := New[int, string](Ops[int](intOps()))
	tr = tr.Insert(3, "three").Insert(1, "one").Insert(2, "two")
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	if v, ok := tr.Get(2); !ok || v != "two" {
		t.Fatalf("Get(2) = %q,%v", v, ok)
	}
	if _, ok := tr.Get(9); ok {
		t.Fatalf("Get(9) should miss")
	}
	tr2 := tr.Delete(2)
	if tr2.Len() != 2 || tr2.Contains(2) {
		t.Fatalf("Delete failed")
	}
	if !tr.Contains(2) {
		t.Fatalf("Delete mutated the original (persistence violated)")
	}
	// Deleting an absent key returns the identical tree.
	tr3 := tr.Delete(42)
	if !tr.Equal(tr3) {
		t.Fatalf("Delete of absent key changed tree")
	}
}

func TestInsertReplacesValue(t *testing.T) {
	tr := New[int, int](intOps()).Insert(1, 10).Insert(1, 20)
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if v, _ := tr.Get(1); v != 20 {
		t.Fatalf("Get = %d, want 20", v)
	}
}

func TestUniqueRepresentation(t *testing.T) {
	// Insert the same key set in many different orders; the resulting
	// structural hashes (and shapes) must be identical.
	keys := []int{5, 1, 9, 3, 7, 2, 8, 4, 6, 0}
	base := fromKeys(keys)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		shuffled := append([]int(nil), keys...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		other := fromKeys(shuffled)
		if base.StructuralHash() != other.StructuralHash() {
			t.Fatalf("different insertion order produced different structure (trial %d)", trial)
		}
		if !base.Equal(other) {
			t.Fatalf("Equal failed for same contents (trial %d)", trial)
		}
	}
	// Build via deletion too: insert extra keys then remove them.
	extra := fromKeys(append([]int{100, 101, 102}, keys...))
	for _, k := range []int{100, 101, 102} {
		extra = extra.Delete(k)
	}
	if base.StructuralHash() != extra.StructuralHash() || !base.Equal(extra) {
		t.Fatalf("insert+delete path broke unique representation")
	}
}

func TestAscendOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var keys []int
	seen := map[int]bool{}
	for i := 0; i < 300; i++ {
		k := rng.Intn(1000)
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	tr := fromKeys(keys)
	got := keysOf(tr)
	want := append([]int(nil), keys...)
	sort.Ints(want)
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("order mismatch at %d: %d vs %d", i, got[i], want[i])
		}
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := fromKeys([]int{1, 2, 3, 4, 5})
	var visited []int
	tr.Ascend(func(k, _ int) bool {
		visited = append(visited, k)
		return k < 3
	})
	if len(visited) != 3 || visited[2] != 3 {
		t.Fatalf("early stop visited %v", visited)
	}
}

func TestMinMaxAt(t *testing.T) {
	tr := fromKeys([]int{4, 2, 8, 6})
	if k, _, ok := tr.Min(); !ok || k != 2 {
		t.Fatalf("Min = %d,%v", k, ok)
	}
	if k, _, ok := tr.Max(); !ok || k != 8 {
		t.Fatalf("Max = %d,%v", k, ok)
	}
	for i, want := range []int{2, 4, 6, 8} {
		if k, v, ok := tr.At(i); !ok || k != want || v != want*10 {
			t.Fatalf("At(%d) = %d,%d,%v", i, k, v, ok)
		}
	}
	if _, _, ok := tr.At(4); ok {
		t.Fatalf("At out of range should fail")
	}
	empty := New[int, int](intOps())
	if _, _, ok := empty.Min(); ok {
		t.Fatalf("Min of empty should fail")
	}
	if _, _, ok := empty.Max(); ok {
		t.Fatalf("Max of empty should fail")
	}
}

func setOf(keys []int) map[int]bool {
	m := map[int]bool{}
	for _, k := range keys {
		m[k] = true
	}
	return m
}

func TestSetOperationsAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		var ka, kb []int
		for i := 0; i < rng.Intn(60); i++ {
			ka = append(ka, rng.Intn(40))
		}
		for i := 0; i < rng.Intn(60); i++ {
			kb = append(kb, rng.Intn(40))
		}
		a, b := fromKeys(ka), fromKeys(kb)
		ma, mb := setOf(ka), setOf(kb)

		check := func(name string, got Tree[int, int], pred func(k int) bool) {
			t.Helper()
			want := map[int]bool{}
			for k := 0; k < 40; k++ {
				if pred(k) {
					want[k] = true
				}
			}
			gotKeys := setOf(keysOf(got))
			if len(gotKeys) != len(want) {
				t.Fatalf("%s: size %d want %d (trial %d)", name, len(gotKeys), len(want), trial)
			}
			for k := range want {
				if !gotKeys[k] {
					t.Fatalf("%s: missing key %d (trial %d)", name, k, trial)
				}
			}
			// Results must also have unique representation: rebuild from keys.
			rebuilt := fromKeys(keysOf(got))
			if rebuilt.StructuralHash() != got.StructuralHash() {
				t.Fatalf("%s: result violates unique representation (trial %d)", name, trial)
			}
		}

		check("union", a.Union(b), func(k int) bool { return ma[k] || mb[k] })
		check("intersect", a.Intersect(b), func(k int) bool { return ma[k] && mb[k] })
		check("difference", a.Difference(b), func(k int) bool { return ma[k] && !mb[k] })
	}
}

func TestUnionValuesPreferReceiver(t *testing.T) {
	a := New[int, int](intOps()).Insert(1, 100).Insert(2, 200)
	b := New[int, int](intOps()).Insert(2, -1).Insert(3, 300)
	u := a.Union(b)
	if v, _ := u.Get(2); v != 200 {
		t.Fatalf("Union kept wrong value for shared key: %d", v)
	}
	if v, _ := u.Get(3); v != 300 {
		t.Fatalf("Union lost b-only value: %d", v)
	}
}

func TestUnionWithMerge(t *testing.T) {
	a := New[int, int](intOps()).Insert(1, 1).Insert(2, 2)
	b := New[int, int](intOps()).Insert(2, 5).Insert(3, 3)
	u := a.UnionWith(b, func(x, y int) int { return x + y })
	if v, _ := u.Get(2); v != 7 {
		t.Fatalf("merge value = %d, want 7", v)
	}
}

func TestIntersectValuesFromReceiver(t *testing.T) {
	a := New[int, int](intOps()).Insert(1, 100).Insert(2, 200).Insert(3, 300)
	b := New[int, int](intOps()).Insert(2, -2).Insert(3, -3).Insert(4, -4)
	i := a.Intersect(b)
	if v, _ := i.Get(2); v != 200 {
		t.Fatalf("Intersect value = %d, want 200 (receiver side)", v)
	}
	if v, _ := i.Get(3); v != 300 {
		t.Fatalf("Intersect value = %d, want 300 (receiver side)", v)
	}
}

func TestEqualSharingShortCircuit(t *testing.T) {
	tr := fromKeys([]int{1, 2, 3, 4, 5, 6, 7, 8})
	branch := tr // O(1) branch: same root
	if !tr.Equal(branch) {
		t.Fatalf("branch should be equal")
	}
	mod := branch.Insert(9, 90)
	if tr.Equal(mod) {
		t.Fatalf("diverged branch should differ")
	}
	back := mod.Delete(9)
	if !tr.Equal(back) || tr.StructuralHash() != back.StructuralHash() {
		t.Fatalf("delete did not restore equality")
	}
}

func TestEqualFunc(t *testing.T) {
	a := New[int, int](intOps()).Insert(1, 10)
	b := New[int, int](intOps()).Insert(1, 20)
	if !a.Equal(b) {
		t.Fatalf("key-only equality should hold")
	}
	if a.EqualFunc(b, func(x, y int) bool { return x == y }) {
		t.Fatalf("value equality should fail")
	}
}

func TestDiffWith(t *testing.T) {
	old := fromKeys([]int{1, 2, 3, 4, 5})
	upd := old.Delete(2).Insert(6, 60).Insert(3, 999)
	var dels, inss []int
	var upds [][3]int
	old.DiffWith(upd, func(a, b int) bool { return a == b },
		func(k, v int) { dels = append(dels, k) },
		func(k, v int) { inss = append(inss, k) },
		func(k, a, b int) { upds = append(upds, [3]int{k, a, b}) })
	sort.Ints(dels)
	sort.Ints(inss)
	if len(dels) != 1 || dels[0] != 2 {
		t.Fatalf("dels = %v", dels)
	}
	if len(inss) != 1 || inss[0] != 6 {
		t.Fatalf("inss = %v", inss)
	}
	if len(upds) != 1 || upds[0] != [3]int{3, 30, 999} {
		t.Fatalf("upds = %v", upds)
	}
}

func TestDiffWithIdenticalTreesIsEmpty(t *testing.T) {
	tr := fromKeys([]int{1, 2, 3})
	count := 0
	bump := func(int, int) { count++ }
	tr.DiffWith(tr, func(a, b int) bool { return a == b }, bump, bump, func(int, int, int) { count++ })
	if count != 0 {
		t.Fatalf("diff of identical trees reported %d changes", count)
	}
}

func TestTreapPropertyInsertContains(t *testing.T) {
	f := func(keys []int16, probe int16) bool {
		tr := New[int, bool](intOps())
		want := map[int]bool{}
		for _, k := range keys {
			tr = tr.Insert(int(k), true)
			want[int(k)] = true
		}
		if tr.Len() != len(want) {
			return false
		}
		return tr.Contains(int(probe)) == want[int(probe)]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTreapPropertyUnionCommutesOnKeys(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		var kx, ky []int
		for _, x := range xs {
			kx = append(kx, int(x))
		}
		for _, y := range ys {
			ky = append(ky, int(y))
		}
		a, b := fromKeys(kx), fromKeys(ky)
		return a.Union(b).StructuralHash() == b.Union(a).StructuralHash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTreapPropertyDeMorgan(t *testing.T) {
	// a \ b == a ∩ (a \ b)  and  (a∪b) \ b == a \ b on key sets.
	f := func(xs, ys []uint8) bool {
		var kx, ky []int
		for _, x := range xs {
			kx = append(kx, int(x))
		}
		for _, y := range ys {
			ky = append(ky, int(y))
		}
		a, b := fromKeys(kx), fromKeys(ky)
		d := a.Difference(b)
		if d.StructuralHash() != a.Intersect(a.Difference(b)).StructuralHash() {
			return false
		}
		return a.Union(b).Difference(b).StructuralHash() == d.StructuralHash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBSTAndHeapInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tr := New[int, int](intOps())
	for i := 0; i < 2000; i++ {
		tr = tr.Insert(rng.Intn(5000), i)
		if i%7 == 0 {
			tr = tr.Delete(rng.Intn(5000))
		}
	}
	var checkNode func(n *node[int, int], lo, hi int) int
	checkNode = func(n *node[int, int], lo, hi int) int {
		if n == nil {
			return 0
		}
		if n.key <= lo || n.key >= hi {
			t.Fatalf("BST violation at key %d", n.key)
		}
		if n.left != nil && n.left.prio > n.prio {
			t.Fatalf("heap violation (left) at key %d", n.key)
		}
		if n.right != nil && n.right.prio > n.prio {
			t.Fatalf("heap violation (right) at key %d", n.key)
		}
		size := 1 + checkNode(n.left, lo, n.key) + checkNode(n.right, n.key, hi)
		if n.size != size {
			t.Fatalf("size cache wrong at key %d: %d vs %d", n.key, n.size, size)
		}
		return size
	}
	checkNode(tr.root, -1, 1<<31)
}
