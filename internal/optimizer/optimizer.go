// Package optimizer implements the sampling-based query optimizer the
// paper describes in §3.2 ("Optimization and parallelism"): when joins
// are evaluated with leapfrog triejoin, optimization boils down to
// choosing a good variable order. Small representative samples of the
// input predicates are maintained; candidate orders are executed on the
// samples, their iterator-operation counts compared, and the cheapest
// order chosen — which also decides which secondary indices to create.
package optimizer

import (
	"fmt"

	"logicblox/internal/compiler"
	"logicblox/internal/lftj"
	"logicblox/internal/relation"
	"logicblox/internal/trie"
	"logicblox/internal/tuple"
)

// Options tune the optimizer.
type Options struct {
	// SampleSize bounds each predicate sample (default 512 tuples).
	SampleSize int
	// MaxCandidates bounds how many orders are tried (default 24).
	MaxCandidates int
}

// Result reports the optimizer's decision.
type Result struct {
	Plan      *compiler.RulePlan
	Order     []int // join slots of the original plan, in chosen order
	Cost      int   // iterator operations on the samples
	Evaluated int   // candidate orders tried
}

// ChooseOrder evaluates candidate variable orders for the rule over
// samples of its input relations and returns the cheapest plan. rels
// resolves a (decorated) predicate name to its current contents.
func ChooseOrder(rule *compiler.RulePlan, rels func(name string) relation.Relation, opts Options) (*Result, error) {
	if opts.SampleSize == 0 {
		opts.SampleSize = 512
	}
	if opts.MaxCandidates == 0 {
		opts.MaxCandidates = 24
	}
	n := rule.NumJoinVars
	if n <= 1 || len(rule.Atoms) == 0 {
		return &Result{Plan: rule, Order: identity(n), Evaluated: 0}, nil
	}

	// Samples, one per distinct predicate occurrence name.
	samples := map[string]relation.Relation{}
	for _, a := range rule.Atoms {
		if _, ok := samples[a.Name]; !ok {
			samples[a.Name] = rels(a.Name).Sample(opts.SampleSize)
		}
	}

	best := &Result{Cost: -1}
	for _, order := range CandidateOrders(n, opts.MaxCandidates) {
		plan, err := compiler.ReorderRule(rule, order)
		if err != nil {
			return nil, err
		}
		cost, err := sampleCost(plan, samples)
		if err != nil {
			return nil, err
		}
		best.Evaluated++
		if best.Cost < 0 || cost < best.Cost {
			best.Plan = plan
			best.Order = order
			best.Cost = cost
		}
	}
	if best.Plan == nil {
		return &Result{Plan: rule, Order: identity(n)}, nil
	}
	return best, nil
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// CandidateOrders enumerates the candidate variable orders for n join
// variables: all permutations when they fit under max, else a rotation
// family plus adjacent swaps of the identity (a cheap diverse set),
// capped at max. max ≤ 0 selects the default cap.
func CandidateOrders(n, max int) [][]int {
	if max <= 0 {
		max = 24
	}
	var out [][]int
	if factorial(n) <= max {
		permute(identity(n), 0, &out)
		return out
	}
	// Rotations plus adjacent swaps of the identity: a cheap diverse set.
	base := identity(n)
	for r := 0; r < n && len(out) < max; r++ {
		rot := make([]int, n)
		for i := range rot {
			rot[i] = base[(i+r)%n]
		}
		out = append(out, rot)
	}
	for i := 0; i+1 < n && len(out) < max; i++ {
		sw := identity(n)
		sw[i], sw[i+1] = sw[i+1], sw[i]
		out = append(out, sw)
	}
	return out
}

func factorial(n int) int {
	f := 1
	for i := 2; i <= n; i++ {
		f *= i
		if f > 1<<20 {
			return f
		}
	}
	return f
}

func permute(cur []int, k int, out *[][]int) {
	if k == len(cur) {
		cp := make([]int, len(cur))
		copy(cp, cur)
		*out = append(*out, cp)
		return
	}
	for i := k; i < len(cur); i++ {
		cur[k], cur[i] = cur[i], cur[k]
		permute(cur, k+1, out)
		cur[k], cur[i] = cur[i], cur[k]
	}
}

// sampleCost runs the plan's join over the samples, counting iterator
// operations.
func sampleCost(plan *compiler.RulePlan, samples map[string]relation.Relation) (int, error) {
	counter := &trie.OpCounter{}
	atoms := make([]lftj.Atom, 0, len(plan.Atoms)+len(plan.Consts))
	for _, ap := range plan.Atoms {
		rel, ok := samples[ap.Name]
		if !ok {
			return 0, fmt.Errorf("optimizer: no sample for %s", ap.Name)
		}
		if ap.Perm != nil {
			rel = rel.Permuted(ap.Perm)
		}
		atoms = append(atoms, lftj.Atom{Pred: ap.Name, Iter: trie.Counting(rel.Iterator(), counter), Vars: ap.Vars})
	}
	for _, cb := range plan.Consts {
		atoms = append(atoms, lftj.Atom{Pred: "$const", Iter: trie.NewConstIterator(cb.Val), Vars: []int{cb.Var}})
	}
	j, err := lftj.NewJoin(plan.NumJoinVars, atoms, nil)
	if err != nil {
		return 0, err
	}
	results := 0
	j.Run(func(tuple.Tuple) bool {
		results++
		return true
	})
	// Cost = navigation work plus output size (ties broken toward fewer
	// operations).
	return counter.Ops + results, nil
}
