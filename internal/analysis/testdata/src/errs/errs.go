// Package errs is an errwrap-analyzer fixture: package-level Err*
// sentinels compared with ==/!= or wrapped without %w must be flagged.
// It declares its own error type and Errorf/Is helpers so the fixture
// needs no imports; the analyzer keys on shapes, not import paths.
package errs

type sentinelError string

func (e sentinelError) Error() string { return string(e) }

// Package-level sentinels, as in internal/core.
var (
	ErrConflict error = sentinelError("conflict")
	ErrParse    error = sentinelError("parse error")
)

// errLocal is lowercase: not part of the sentinel surface.
var errLocal error = sentinelError("local")

func work() error { return ErrConflict }

// Is stands in for errors.Is; its raw comparison of two parameters is
// not a sentinel comparison.
func Is(err, target error) bool { return err == target }

// Errorf stands in for fmt.Errorf.
func Errorf(format string, args ...any) error {
	_ = args
	return sentinelError(format)
}

func badCompare() bool {
	err := work()
	return err == ErrConflict // want: errors.Is
}

func badNotEqual() bool {
	return work() != ErrParse // want: errors.Is
}

func badWrap() error {
	return Errorf("commit failed: %v", ErrConflict) // want: %w verb
}

func okIs(err error) bool {
	return Is(err, ErrConflict)
}

func okWrap() error {
	return Errorf("commit failed: %w", ErrConflict)
}

func okLocal() bool {
	return work() == errLocal
}

func okNonError(errCode int) bool {
	return errCode == 3
}
