package treap

// Iterator walks a treap in ascending key order and supports the
// least-upper-bound Seek operation required by the leapfrog join
// (paper §3.2): Seek positions at the smallest key ≥ the probe and runs in
// O(log N); m ascending visits cost amortized O(1 + log(N/m)) because the
// descent stack is reused.
//
// The zero Iterator is invalid; obtain one from Tree.Iterator.
type Iterator[K, V any] struct {
	ops   Ops[K]
	root  *node[K, V]
	stack []*node[K, V] // path of nodes whose key is still >= current position
	cur   *node[K, V]
	done  bool
}

// Iterator returns an iterator positioned at the first (smallest) entry.
// If the tree is empty the iterator starts at the end.
func (t Tree[K, V]) Iterator() *Iterator[K, V] {
	it := &Iterator[K, V]{ops: t.ops, root: t.root}
	it.First()
	return it
}

// First repositions at the smallest entry.
func (it *Iterator[K, V]) First() {
	it.stack = it.stack[:0]
	it.cur = nil
	it.done = it.root == nil
	n := it.root
	for n != nil {
		it.stack = append(it.stack, n)
		n = n.left
	}
	it.pop()
}

func (it *Iterator[K, V]) pop() {
	if len(it.stack) == 0 {
		it.cur = nil
		it.done = true
		return
	}
	it.cur = it.stack[len(it.stack)-1]
	it.stack = it.stack[:len(it.stack)-1]
	it.done = false
}

// AtEnd reports whether the iterator is past the last entry.
func (it *Iterator[K, V]) AtEnd() bool { return it.done }

// Key returns the current key. It must not be called at the end.
func (it *Iterator[K, V]) Key() K { return it.cur.key }

// Value returns the current value. It must not be called at the end.
func (it *Iterator[K, V]) Value() V { return it.cur.val }

// Next advances to the next entry in key order.
func (it *Iterator[K, V]) Next() {
	if it.done {
		return
	}
	n := it.cur.right
	for n != nil {
		it.stack = append(it.stack, n)
		n = n.left
	}
	it.pop()
}

// Seek positions the iterator at the least entry with key ≥ probe. Per the
// linear-iterator contract, probe must be ≥ the current key; Seek also
// works from any position (including a fresh iterator) as a general
// lower-bound search.
func (it *Iterator[K, V]) Seek(probe K) {
	var n *node[K, V]
	switch {
	case it.done || it.cur == nil:
		if len(it.stack) == 0 {
			// Fresh or exhausted iterator: general lower-bound from the root.
			n = it.root
		}
	case it.ops.Compare(it.cur.key, probe) >= 0:
		return // already at or past probe
	default:
		n = it.cur.right
	}
	// Search candidate regions in ascending order: first the subtree n,
	// then each pending stack entry. A stack entry below the probe is
	// discarded, but its right subtree (which holds keys between it and
	// the next pending entry) becomes the next region to search.
	for {
		for n != nil {
			if it.ops.Compare(n.key, probe) >= 0 {
				it.stack = append(it.stack, n)
				n = n.left
			} else {
				n = n.right
			}
		}
		if len(it.stack) == 0 {
			it.cur = nil
			it.done = true
			return
		}
		top := it.stack[len(it.stack)-1]
		it.stack = it.stack[:len(it.stack)-1]
		if it.ops.Compare(top.key, probe) >= 0 {
			it.cur = top
			it.done = false
			return
		}
		n = top.right
	}
}
