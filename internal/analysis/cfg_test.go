package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildCFGs parses src (a complete file) and builds one CFG per declared
// function, without type info — the builder must degrade gracefully.
func buildCFGs(t *testing.T, src string) map[string]*CFG {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg_test.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	out := map[string]*CFG{}
	for _, decl := range file.Decls {
		if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
			out[fn.Name.Name] = BuildCFG(fn.Body, nil)
		}
	}
	return out
}

// reachableExits returns the reachable blocks where control leaves the
// function: returns, panics, and fall-off-the-end blocks.
func reachableExits(c *CFG) (returns, panics, falls int) {
	for b := range c.Reachable() {
		switch {
		case b.Return != nil:
			returns++
		case b.Panic != nil:
			panics++
		case len(b.Succs) == 0:
			falls++
		}
	}
	return
}

// TestCFGLabeledBreak pins the labeled-break wiring: the only way out of
// the infinite outer loop is `break outer`, so the final return must be
// reachable — and only once.
func TestCFGLabeledBreak(t *testing.T) {
	cfgs := buildCFGs(t, `package p
func g() int {
	n := 0
outer:
	for {
		for {
			if n > 10 {
				break outer
			}
			n++
		}
	}
	return n
}
`)
	returns, panics, falls := reachableExits(cfgs["g"])
	if returns != 1 || panics != 0 || falls != 0 {
		t.Fatalf("labeled break: got %d returns, %d panics, %d fall-offs; want exactly 1 return\n%s",
			returns, panics, falls, cfgs["g"])
	}
}

// TestCFGGoto pins forward gotos: both returns stay reachable, and the
// goto edge skips the intervening return.
func TestCFGGoto(t *testing.T) {
	cfgs := buildCFGs(t, `package p
func h(b bool) int {
	if b {
		goto done
	}
	return 1
done:
	return 2
}
`)
	returns, _, falls := reachableExits(cfgs["h"])
	if returns != 2 || falls != 0 {
		t.Fatalf("goto: got %d returns, %d fall-offs; want 2 returns, 0 fall-offs\n%s", returns, falls, cfgs["h"])
	}
}

// TestCFGSelect pins select wiring: each comm clause is a branch, a
// caseless clause flows back into the loop, and an empty select blocks
// forever (no reachable exit at all).
func TestCFGSelect(t *testing.T) {
	cfgs := buildCFGs(t, `package p
func s(a, b chan int, done chan struct{}) int {
	for {
		select {
		case v := <-a:
			return v
		case <-b:
		case <-done:
			return 0
		}
	}
}
func z() {
	select {}
}
`)
	returns, _, falls := reachableExits(cfgs["s"])
	if returns != 2 || falls != 0 {
		t.Fatalf("select: got %d returns, %d fall-offs; want 2 returns, 0 fall-offs\n%s", returns, falls, cfgs["s"])
	}
	if r, p, f := reachableExits(cfgs["z"]); r != 0 || p != 0 || f != 1 {
		// The empty select itself is the one blocking "fall" block.
		t.Fatalf("empty select: got %d returns, %d panics, %d fall-offs; want only the blocked head\n%s", r, p, f, cfgs["z"])
	}
}

// TestCFGPanicAndFallthrough pins explicit panic exits and switch
// fallthrough: panic terminates its block, fallthrough chains case
// bodies, and the single return stays the only normal exit.
func TestCFGPanicAndFallthrough(t *testing.T) {
	cfgs := buildCFGs(t, `package p
func sw(x int) string {
	out := ""
	switch x {
	case 1:
		out = "a"
		fallthrough
	case 2:
		out += "b"
	case 3:
		panic("three")
	default:
		out = "c"
	}
	return out
}
`)
	returns, panics, falls := reachableExits(cfgs["sw"])
	if returns != 1 || panics != 1 || falls != 0 {
		t.Fatalf("switch: got %d returns, %d panics, %d fall-offs; want 1 return, 1 panic\n%s",
			returns, panics, falls, cfgs["sw"])
	}
}

// TestCFGReversePostorder pins the iteration order contract: entry
// first, every reachable block exactly once.
func TestCFGReversePostorder(t *testing.T) {
	cfgs := buildCFGs(t, `package p
func f(xs []int) int {
	total := 0
	for _, v := range xs {
		if v > 0 {
			total += v
		} else {
			total -= v
		}
	}
	return total
}
`)
	c := cfgs["f"]
	rpo := c.ReversePostorder()
	if len(rpo) == 0 || rpo[0] != c.Blocks[0] {
		t.Fatalf("rpo must start at the entry block")
	}
	seen := map[*Block]bool{}
	for _, b := range rpo {
		if seen[b] {
			t.Fatalf("block b%d appears twice in rpo", b.Index)
		}
		seen[b] = true
	}
	reach := c.Reachable()
	if len(seen) != len(reach) {
		t.Fatalf("rpo has %d blocks, reachable set has %d", len(seen), len(reach))
	}
}
