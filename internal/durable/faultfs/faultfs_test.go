package faultfs

import (
	"errors"
	"io"
	"math/rand"
	"testing"
)

func writeAll(t *testing.T, fs *FS, name string, data []byte, sync, syncDir bool) {
	t.Helper()
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if syncDir {
		if err := fs.SyncDir("."); err != nil {
			t.Fatal(err)
		}
	}
}

func readAll(t *testing.T, fs *FS, name string) ([]byte, error) {
	t.Helper()
	f, err := fs.OpenRead(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// An unsynced write is lost on crash; a synced one survives — but only
// if the file's creation was made durable with a directory sync.
func TestCrashDiscardsUnsynced(t *testing.T) {
	fs := New()
	writeAll(t, fs, "synced", []byte("synced data"), true, true)
	writeAll(t, fs, "unsynced", []byte("doomed"), false, true)
	fs.Crash()

	got, err := readAll(t, fs, "synced")
	if err != nil || string(got) != "synced data" {
		t.Fatalf("synced file after crash: %q, %v", got, err)
	}
	got, err = readAll(t, fs, "unsynced")
	if err != nil || len(got) != 0 {
		t.Fatalf("unsynced contents survived crash: %q, %v", got, err)
	}
}

// A created-and-synced file whose directory was never synced vanishes
// entirely on crash: file sync persists contents, not the name.
func TestCrashDropsUnsyncedNamespace(t *testing.T) {
	fs := New()
	writeAll(t, fs, "orphan", []byte("content"), true, false)
	fs.Crash()
	if _, err := readAll(t, fs, "orphan"); err == nil {
		t.Fatal("file with unsynced directory entry survived crash")
	}
}

// A rename without a directory sync is undone by a crash; with the sync
// it is durable (and the old name stays gone).
func TestCrashRevertsUnsyncedRename(t *testing.T) {
	fs := New()
	writeAll(t, fs, "a", []byte("payload"), true, true)
	if err := fs.Rename("a", "b"); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	if _, err := readAll(t, fs, "b"); err == nil {
		t.Fatal("unsynced rename survived crash")
	}
	if got, err := readAll(t, fs, "a"); err != nil || string(got) != "payload" {
		t.Fatalf("original name after reverted rename: %q, %v", got, err)
	}

	if err := fs.Rename("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir("."); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	if got, err := readAll(t, fs, "b"); err != nil || string(got) != "payload" {
		t.Fatalf("synced rename after crash: %q, %v", got, err)
	}
	if _, err := readAll(t, fs, "a"); err == nil {
		t.Fatal("old name survived synced rename")
	}
}

// The crash point makes the armed operation fail, everything after it
// fail, and handles from before the crash permanently stale.
func TestCrashPointAndStaleHandles(t *testing.T) {
	fs := New()
	writeAll(t, fs, "f", []byte("x"), true, true)
	f, err := fs.OpenAppend("f")
	if err != nil {
		t.Fatal(err)
	}
	fs.SetCrashAt(fs.Ops() + 1)
	if _, err := f.Write([]byte("y")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write at crash point: %v", err)
	}
	if _, err := fs.Create("g"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("op after crash: %v", err)
	}
	fs.Crash()
	if _, err := f.Write([]byte("z")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("stale handle write: %v", err)
	}
	if got, err := readAll(t, fs, "f"); err != nil || string(got) != "x" {
		t.Fatalf("file after crash: %q, %v", got, err)
	}
}

// Transient faults: FailAt fails one op and keeps going; ShortWriteAt
// persists half the buffer and errors.
func TestTransientFaultInjection(t *testing.T) {
	fs := New()
	boom := errors.New("boom")
	fs.FailAt(fs.Ops()+1, boom)
	if _, err := fs.Create("f"); !errors.Is(err, boom) {
		t.Fatalf("FailAt: %v", err)
	}
	f, err := fs.Create("f")
	if err != nil {
		t.Fatalf("fs did not keep working after transient fault: %v", err)
	}
	fs.ShortWriteAt(fs.Ops() + 1)
	n, err := f.Write([]byte("abcd"))
	if err == nil || n != 2 {
		t.Fatalf("short write: n=%d err=%v", n, err)
	}
	if got := fs.names["f"].data; string(got) != "ab" {
		t.Fatalf("volatile contents after short write: %q", got)
	}
}

// Torn crashes may persist any prefix of an unsynced append, but never
// bytes that were not written, and never reorder within the file.
func TestCrashTornPersistsPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sawPartial := false
	for trial := 0; trial < 50; trial++ {
		fs := New()
		writeAll(t, fs, "f", []byte("base"), true, true)
		f, err := fs.OpenAppend("f")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte("-tail")); err != nil {
			t.Fatal(err)
		}
		fs.CrashTorn(rng)
		got, err := readAll(t, fs, "f")
		if err != nil {
			t.Fatal(err)
		}
		want := "base-tail"
		if len(got) < len("base") || len(got) > len(want) || string(got) != want[:len(got)] {
			t.Fatalf("trial %d: torn contents %q not a prefix of %q", trial, got, want)
		}
		if len(got) > len("base") && len(got) < len(want) {
			sawPartial = true
		}
	}
	if !sawPartial {
		t.Fatal("50 torn crashes never produced a partial append")
	}
}
