package core

import (
	"fmt"
	"sort"
	"sync"
)

// Database manages named branches of workspaces and the version history
// (paper §2.2.2 Branch/Delete-branch, §3.1). Because workspaces are
// immutable values over persistent structures, Branch is an O(1) pointer
// copy, commit is a pointer swap, and any historical version can itself
// be branched (time travel); the version graph is an arbitrary DAG.
type Database struct {
	mu       sync.RWMutex
	branches map[string]*Workspace
	history  []VersionEntry
	// seq numbers every state-changing operation; snapshots record it so
	// journal replay (internal/durable) knows where a snapshot ends.
	seq uint64
	// hook, when set, is invoked under the write lock before a recorded
	// mutation takes effect; an error vetoes the mutation (write-ahead
	// logging: a commit that cannot be journaled does not happen).
	hook CommitHook
}

// CommitRecord describes one recorded state-changing operation in enough
// detail to replay it through the normal transaction path (the paper's
// T4 #5 recovery story: re-deriving from logic + base deltas rather than
// restoring physical state). Kind is one of "exec", "addblock",
// "branch", "branchat", "delete", "promote".
type CommitRecord struct {
	// Seq is assigned by the database under the commit lock; it is
	// strictly increasing across all recorded operations.
	Seq    uint64
	Kind   string
	Branch string // transaction branch (exec, addblock)
	Name   string // block name (addblock)
	Src    string // LogiQL source (exec, addblock)
	From   string // source branch (branch, promote)
	To     string // target branch (branch, branchat, delete, promote)
	// Version is the history index for branchat.
	Version int
}

// CommitHook observes recorded mutations before they take effect,
// typically appending them to a durable journal. It runs under the
// database write lock, so implementations must not call back into the
// database; returning an error aborts the mutation.
type CommitHook func(CommitRecord) error

// SetCommitHook installs (or, with nil, removes) the commit hook.
func (db *Database) SetCommitHook(h CommitHook) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.hook = h
}

// Seq returns the sequence number of the last state-changing operation.
func (db *Database) Seq() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.seq
}

// AlignSeq raises the sequence counter to at least min. Callers swapping
// one database for another under a shared journal (POST /load) use it so
// journal sequence numbers stay monotonic across the swap.
func (db *Database) AlignSeq(min uint64) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.seq < min {
		db.seq = min
	}
}

// logLocked assigns the next sequence number to rec and runs the commit
// hook. Callers hold db.mu. On hook failure the sequence number is
// consumed (gaps are fine — replay only needs monotonic order) and the
// caller must not apply the mutation.
func (db *Database) logLocked(rec *CommitRecord) error {
	db.seq++
	rec.Seq = db.seq
	if db.hook == nil {
		return nil
	}
	if err := db.hook(*rec); err != nil {
		return fmt.Errorf("%w: %v", ErrDurability, err)
	}
	return nil
}

// VersionEntry records one committed workspace version.
type VersionEntry struct {
	Branch    string
	Workspace *Workspace
}

// DefaultBranch is the branch created by NewDatabase.
const DefaultBranch = "main"

// NewDatabase returns a database with an empty workspace on "main".
func NewDatabase() *Database { return NewDatabaseWith(NewWorkspace()) }

// NewDatabaseWith returns a database whose main branch starts at ws —
// the hook the functional options of logicblox.Open use to configure
// the root workspace (optimizer, observer) before the first commit.
func NewDatabaseWith(ws *Workspace) *Database {
	return &Database{
		branches: map[string]*Workspace{DefaultBranch: ws},
		history:  []VersionEntry{{Branch: DefaultBranch, Workspace: ws}},
	}
}

// Workspace returns the current workspace of a branch.
func (db *Database) Workspace(branch string) (*Workspace, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	ws, ok := db.branches[branch]
	if !ok {
		return nil, fmt.Errorf("unknown branch %s: %w", branch, ErrNoSuchBranch)
	}
	return ws, nil
}

// Branch creates branch `to` as a copy of branch `from`. This is O(1):
// no data is copied (paper §3.1).
func (db *Database) Branch(from, to string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	src, ok := db.branches[from]
	if !ok {
		return fmt.Errorf("unknown branch %s: %w", from, ErrNoSuchBranch)
	}
	if _, exists := db.branches[to]; exists {
		return fmt.Errorf("branch %s: %w", to, ErrBranchExists)
	}
	if err := db.logLocked(&CommitRecord{Kind: "branch", From: from, To: to}); err != nil {
		return err
	}
	db.branches[to] = src
	return nil
}

// BranchAt creates a branch from a historical version index (time travel).
func (db *Database) BranchAt(version int, to string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if version < 0 || version >= len(db.history) {
		return fmt.Errorf("version %d out of range: %w", version, ErrNoSuchBranch)
	}
	if _, exists := db.branches[to]; exists {
		return fmt.Errorf("branch %s: %w", to, ErrBranchExists)
	}
	if err := db.logLocked(&CommitRecord{Kind: "branchat", Version: version, To: to}); err != nil {
		return err
	}
	db.branches[to] = db.history[version].Workspace
	return nil
}

// DeleteBranch drops a branch. Aborting all its work is just dropping the
// reference.
func (db *Database) DeleteBranch(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if name == DefaultBranch {
		return fmt.Errorf("cannot delete %s", DefaultBranch)
	}
	if _, ok := db.branches[name]; !ok {
		return fmt.Errorf("unknown branch %s: %w", name, ErrNoSuchBranch)
	}
	if err := db.logLocked(&CommitRecord{Kind: "delete", To: name}); err != nil {
		return err
	}
	delete(db.branches, name)
	return nil
}

// Commit makes ws the new head of branch and records it in the history.
// Conceptually just a pointer swap (paper T4). Commit bypasses the
// commit hook — a workspace value carries no replayable request — so
// embedders running with a durability journal must use
// CommitIfRecorded (or Promote for pointer-swap merges) instead.
func (db *Database) Commit(branch string, ws *Workspace) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.branches[branch]; !ok {
		return fmt.Errorf("unknown branch %s: %w", branch, ErrNoSuchBranch)
	}
	db.seq++
	db.branches[branch] = ws
	db.history = append(db.history, VersionEntry{Branch: branch, Workspace: ws})
	return nil
}

// Promote makes branch from's head the new head of branch to (a
// pointer-swap commit, e.g. merging an accepted what-if scenario back,
// paper §2.2.2). Unlike Commit it is fully described by its branch
// names, so it goes through the commit hook and is replayable.
func (db *Database) Promote(from, to string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	src, ok := db.branches[from]
	if !ok {
		return fmt.Errorf("unknown branch %s: %w", from, ErrNoSuchBranch)
	}
	if _, ok := db.branches[to]; !ok {
		return fmt.Errorf("unknown branch %s: %w", to, ErrNoSuchBranch)
	}
	if err := db.logLocked(&CommitRecord{Kind: "promote", From: from, To: to}); err != nil {
		return err
	}
	db.branches[to] = src
	db.history = append(db.history, VersionEntry{Branch: to, Workspace: src})
	return nil
}

// CommitIf is the optimistic-concurrency commit (paper §3.4's snapshot
// model without the fine-grained repair): it makes ws the new head of
// branch only if the head is still parent — the snapshot the transaction
// executed against. If another transaction committed in between, it
// returns ErrConflict and the caller re-executes against the new head
// (coarse-grained repair) or surfaces the conflict. The compare-and-swap
// and the history append are atomic under the database lock.
func (db *Database) CommitIf(branch string, parent, ws *Workspace) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	head, ok := db.branches[branch]
	if !ok {
		return fmt.Errorf("unknown branch %s: %w", branch, ErrNoSuchBranch)
	}
	if head != parent {
		return fmt.Errorf("branch %s moved since snapshot: %w", branch, ErrConflict)
	}
	db.seq++
	db.branches[branch] = ws
	db.history = append(db.history, VersionEntry{Branch: branch, Workspace: ws})
	return nil
}

// CommitIfRecorded is CommitIf for callers running under a durability
// journal: rec describes the request (kind, source, block name) that
// produced ws, and — only if the compare-and-swap would succeed — is
// passed to the commit hook before the head moves. A hook failure
// rejects the commit with ErrDurability and leaves the branch untouched:
// the journal is strictly write-ahead of the in-memory state, so an
// acknowledged commit is always recoverable. rec.Branch and rec.Seq are
// filled in here.
func (db *Database) CommitIfRecorded(branch string, parent, ws *Workspace, rec CommitRecord) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	head, ok := db.branches[branch]
	if !ok {
		return fmt.Errorf("unknown branch %s: %w", branch, ErrNoSuchBranch)
	}
	if head != parent {
		return fmt.Errorf("branch %s moved since snapshot: %w", branch, ErrConflict)
	}
	rec.Branch = branch
	if err := db.logLocked(&rec); err != nil {
		return err
	}
	db.branches[branch] = ws
	db.history = append(db.history, VersionEntry{Branch: branch, Workspace: ws})
	return nil
}

// ApplyRecord re-executes one journaled operation through the normal
// transaction path (recovery, paper T4 #5: derived state is re-computed,
// not restored). It must run before SetCommitHook installs a hook —
// replay must not re-journal itself — and records must be applied in
// ascending Seq order. After each record the database's sequence counter
// is pinned to rec.Seq so post-recovery commits continue the journal's
// numbering.
func (db *Database) ApplyRecord(rec CommitRecord) error {
	var err error
	switch rec.Kind {
	case "exec":
		var ws *Workspace
		if ws, err = db.Workspace(rec.Branch); err == nil {
			var res *ExecResult
			if res, err = ws.Exec(rec.Src); err == nil {
				err = db.Commit(rec.Branch, res.Workspace)
			}
		}
	case "addblock":
		var ws *Workspace
		if ws, err = db.Workspace(rec.Branch); err == nil {
			var next *Workspace
			if next, err = ws.AddBlock(rec.Name, rec.Src); err == nil {
				err = db.Commit(rec.Branch, next)
			}
		}
	case "branch":
		err = db.Branch(rec.From, rec.To)
	case "branchat":
		err = db.BranchAt(rec.Version, rec.To)
	case "delete":
		err = db.DeleteBranch(rec.To)
	case "promote":
		err = db.Promote(rec.From, rec.To)
	default:
		err = fmt.Errorf("unknown record kind %q", rec.Kind)
	}
	if err != nil {
		return fmt.Errorf("replay seq %d (%s): %w", rec.Seq, rec.Kind, err)
	}
	db.mu.Lock()
	db.seq = rec.Seq
	db.mu.Unlock()
	return nil
}

// Branches lists branch names.
func (db *Database) Branches() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.branches))
	for b := range db.branches {
		out = append(out, b)
	}
	sort.Strings(out)
	return out
}

// Versions returns the number of committed versions.
func (db *Database) Versions() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.history)
}

// VersionAt returns the i-th committed version.
func (db *Database) VersionAt(i int) (VersionEntry, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if i < 0 || i >= len(db.history) {
		return VersionEntry{}, fmt.Errorf("version %d out of range", i)
	}
	return db.history[i], nil
}
