// Command lb-bench is a deterministic load generator for lb-serve: a
// seeded PRNG expands the flags into a fixed operation sequence
// (read/write mix, hot-key skew, branch fan-out), so two runs with the
// same seed replay the identical workload. It drives a live server in
// closed-loop (-c workers) or open-loop (-rate ops/sec) mode and prints
// a JSON report — exact per-endpoint latency percentiles, throughput,
// queue-depth samples, and conflict/retry/5xx counts — to stdout, and
// to -out when given. See docs/bench.md.
//
// Usage:
//
//	lb-bench [-url http://127.0.0.1:8080] [-seed 1] [-mode closed|open]
//	         [-c 8] [-rate 200] [-ops 1000] [-duration 0]
//	         [-read-frac 0.5] [-keys 64] [-hot-frac 0.5] [-branches 1]
//	         [-stream] [-scan-frac 0] [-queue-sample 100ms] [-setup]
//	         [-replica-urls http://r1:8081,http://r2:8082]
//	         [-out report.json]
//
// With -stream, query operations use the chunked NDJSON response and
// the report totals rows/bytes received; -scan-frac makes that fraction
// of queries full scans, whose result sizes make the streamed vs
// materialized memory difference visible in the sampled go.heap_inuse
// gauge. With -replica-urls, the read fraction is routed round-robin
// across the listed read replicas (writes still go to -url) and the
// report adds per-target latency summaries plus the maximum
// replica.lag_seq observed on any replica's /healthz during the run.
// See docs/replication.md.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"log"
	"os"
	"strings"
	"time"

	"logicblox/internal/bench"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:8080", "lb-serve base URL")
	seed := flag.Uint64("seed", 1, "PRNG seed; same seed, same workload")
	mode := flag.String("mode", bench.ModeClosed, "closed (fixed workers) or open (fixed arrival rate)")
	concurrency := flag.Int("c", 8, "closed-loop worker count")
	rate := flag.Float64("rate", 200, "open-loop arrival rate, ops/sec")
	ops := flag.Int("ops", 1000, "total operations")
	duration := flag.Duration("duration", 0, "stop early after this long (0 = run all ops)")
	readFrac := flag.Float64("read-frac", 0.5, "fraction of ops that are queries")
	keys := flag.Int("keys", 64, "key-space size")
	hotFrac := flag.Float64("hot-frac", 0.5, "probability an op targets the hot key subset")
	branches := flag.Int("branches", 1, "fan ops out across this many branches")
	stream := flag.Bool("stream", false, "queries use the chunked NDJSON streaming response")
	scanFrac := flag.Float64("scan-frac", 0, "fraction of queries that scan the whole relation")
	queueSample := flag.Duration("queue-sample", 100*time.Millisecond, "queue-depth/heap gauge polling period (0 disables)")
	setup := flag.Bool("setup", true, "install the bench schema and branches before running")
	replicaURLs := flag.String("replica-urls", "", "comma-separated read-replica base URLs; reads round-robin across them")
	out := flag.String("out", "", "also write the JSON report to this file")
	flag.Parse()

	var replicas []string
	if *replicaURLs != "" {
		for _, u := range strings.Split(*replicaURLs, ",") {
			if u = strings.TrimSpace(u); u != "" {
				replicas = append(replicas, u)
			}
		}
	}

	r := &bench.Runner{Config: bench.Config{
		BaseURL:     *url,
		Seed:        *seed,
		Mode:        *mode,
		Concurrency: *concurrency,
		Rate:        *rate,
		Ops:         *ops,
		Duration:    *duration,
		ReadFrac:    *readFrac,
		Keys:        *keys,
		HotFrac:     *hotFrac,
		Branches:    *branches,
		Stream:      *stream,
		ScanFrac:    *scanFrac,
		QueueSample: *queueSample,
		ReplicaURLs: replicas,
	}}

	if *setup {
		if err := r.Setup(); err != nil {
			log.Fatalf("lb-bench: setup: %v", err)
		}
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		log.Fatalf("lb-bench: %v", err)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatalf("lb-bench: %v", err)
	}
	buf = append(buf, '\n')
	os.Stdout.Write(buf)
	if *out != "" {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			log.Fatalf("lb-bench: write %s: %v", *out, err)
		}
	}
	if rep.Errors5xx > 0 {
		os.Exit(1)
	}
}
