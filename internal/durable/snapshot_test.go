package durable

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"logicblox/internal/core"
)

func TestFrameRoundtrip(t *testing.T) {
	payload := []byte("the snapshot payload")
	framed := frameSnapshot(payload)
	got, isFramed, err := unframeSnapshot(framed)
	if err != nil || !isFramed {
		t.Fatalf("unframe: framed=%v err=%v", isFramed, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload = %q, want %q", got, payload)
	}
}

// Any corruption of the framed region past the magic — header fields or
// payload — must surface as ErrCorruptSnapshot, never as silent success
// with different bytes.
func TestFrameDetectsEveryByteFlip(t *testing.T) {
	payload := []byte("all file systems are not created equal")
	framed := frameSnapshot(payload)
	for i := len(snapMagic); i < len(framed); i++ {
		mut := append([]byte(nil), framed...)
		mut[i] ^= 0x40
		_, isFramed, err := unframeSnapshot(mut)
		if !isFramed {
			t.Fatalf("offset %d: flip made the file unrecognizable as framed", i)
		}
		if i < 12 {
			// Version field: reported as unsupported, still an error.
			if err == nil {
				t.Fatalf("offset %d (version): no error", i)
			}
			continue
		}
		if !errors.Is(err, core.ErrCorruptSnapshot) {
			t.Fatalf("offset %d: err = %v, want ErrCorruptSnapshot", i, err)
		}
	}
}

func TestFrameTruncation(t *testing.T) {
	framed := frameSnapshot([]byte("some payload bytes"))
	for _, n := range []int{len(framed) - 1, snapHeaderSize + 3, snapHeaderSize, 12} {
		_, isFramed, err := unframeSnapshot(framed[:n])
		if !isFramed || !errors.Is(err, core.ErrCorruptSnapshot) {
			t.Fatalf("truncate to %d: framed=%v err=%v, want corrupt", n, isFramed, err)
		}
	}
}

func TestWriteReadSnapshotFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.lbsnap")
	want := []byte("gob payload stand-in")
	if err := WriteSnapshotFile(OS, path, func(w io.Writer) error {
		_, err := w.Write(want)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshotFile(OS, path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("payload = %q, want %q", got, want)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp file left behind: %v", err)
	}
}

// Pre-durability snapshots were bare gob streams; ReadSnapshotFile hands
// them back whole so core.LoadDatabase's own hardening applies.
func TestReadSnapshotFileLegacyRawGob(t *testing.T) {
	path := filepath.Join(t.TempDir(), "old.snapshot")
	raw := []byte{0x1f, 0x8b, 'n', 'o', 't', 'f', 'r', 'a', 'm', 'e', 'd'}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshotFile(OS, path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, raw) {
		t.Fatalf("legacy payload = %q, want %q", got, raw)
	}
}

func TestSnapNameRoundtrip(t *testing.T) {
	for _, seq := range []uint64{0, 1, 255, 1 << 40} {
		got, ok := snapSeq(snapName(seq))
		if !ok || got != seq {
			t.Fatalf("snapSeq(snapName(%d)) = %d, %v", seq, got, ok)
		}
	}
	for _, bad := range []string{"journal.lbj", "snap-zz.lbsnap", "snap-01.lbsnap", "x"} {
		if _, ok := snapSeq(bad); ok {
			t.Fatalf("snapSeq(%q) unexpectedly ok", bad)
		}
	}
}

func TestPruneGenerations(t *testing.T) {
	dir := t.TempDir()
	var seqs []uint64
	for _, seq := range []uint64{3, 7, 12, 20} {
		if err := WriteSnapshotFile(OS, filepath.Join(dir, snapName(seq)), func(w io.Writer) error {
			_, err := w.Write([]byte{byte(seq)})
			return err
		}); err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, seq)
	}
	kept, err := pruneGenerations(OS, dir, seqs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 2 || kept[0] != 12 || kept[1] != 20 {
		t.Fatalf("kept = %v, want [12 20]", kept)
	}
	listed, err := listGenerations(OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(listed) != 2 || listed[0] != 12 || listed[1] != 20 {
		t.Fatalf("listed = %v, want [12 20]", listed)
	}
}
