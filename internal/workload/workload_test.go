package workload

import (
	"testing"

	"logicblox/internal/tuple"
)

func TestGenerateDeterministicAndSized(t *testing.T) {
	cfg := Config{Products: 10, Stores: 4, Weeks: 6, Seed: 42}
	a := Generate(cfg)
	b := Generate(cfg)
	if !a.Sales.Equal(b.Sales) || !a.SellingPrice.Equal(b.SellingPrice) {
		t.Fatalf("generation not deterministic")
	}
	if a.Products.Len() != 10 || a.Stores.Len() != 4 {
		t.Fatalf("catalog sizes wrong: %d products, %d stores", a.Products.Len(), a.Stores.Len())
	}
	if a.Sales.Len() != 10*4*6 {
		t.Fatalf("sales rows = %d, want %d", a.Sales.Len(), 10*4*6)
	}
}

func TestGenerateProfitPositive(t *testing.T) {
	r := Generate(Config{Products: 20, Stores: 1, Weeks: 1, Seed: 7})
	r.ProfitPerProd.ForEach(func(tp tuple.Tuple) bool {
		if tp[1].AsFloat() <= 0 {
			t.Errorf("non-positive profit for %v", tp[0])
		}
		return true
	})
}

func TestPromotionUplift(t *testing.T) {
	r := Generate(Config{Products: 30, Stores: 3, Weeks: 20, Seed: 1})
	// Average promoted sales should exceed average unpromoted sales.
	promoted := map[string]bool{}
	r.Promo.ForEach(func(tp tuple.Tuple) bool {
		promoted[tp[0].AsString()+"|"+tp[1].AsString()] = true
		return true
	})
	if len(promoted) == 0 {
		t.Fatal("no promotions generated")
	}
	var pSum, pN, nSum, nN float64
	r.Sales.ForEach(func(tp tuple.Tuple) bool {
		units := float64(tp[3].AsInt())
		if promoted[tp[0].AsString()+"|"+tp[2].AsString()] {
			pSum += units
			pN++
		} else {
			nSum += units
			nN++
		}
		return true
	})
	if pSum/pN <= nSum/nN {
		t.Fatalf("promotion uplift missing: promoted avg %.1f vs %.1f", pSum/pN, nSum/nN)
	}
}

func TestRelationsMap(t *testing.T) {
	r := Generate(Config{Products: 2, Stores: 2, Weeks: 2, Seed: 3})
	m := r.Relations()
	for _, name := range []string{"Product", "sales", "sellingPrice", "maxStock"} {
		if rel, ok := m[name]; !ok || rel.IsEmpty() {
			t.Errorf("relation %s missing or empty", name)
		}
	}
}

func TestClassificationSetSeparable(t *testing.T) {
	buy, feat := ClassificationSet(30, 10, 0.1, 5)
	if buy.Len() != 300 {
		t.Fatalf("examples = %d", buy.Len())
	}
	if feat.Len() != 60 {
		t.Fatalf("features = %d", feat.Len())
	}
	// Labels must not be constant.
	ones := 0
	buy.ForEach(func(tp tuple.Tuple) bool {
		if tp[2].AsFloat() == 1 {
			ones++
		}
		return true
	})
	if ones == 0 || ones == buy.Len() {
		t.Fatalf("degenerate labels: %d of %d", ones, buy.Len())
	}
}
