GO ?= go

.PHONY: ci build vet test race fmt-check bench difftest serve-test durable-test lint bench-smoke repair-test stream-test replica-test

ci: fmt-check lint build race difftest serve-test durable-test repair-test bench-smoke stream-test replica-test

# The static-analysis gate: go vet plus the repository's own analyzer
# suite (immutable, errwrap, ctxloop, obssafe, cursorclose, and the CFG
# dataflow trio locksafe/leakcheck/snapshotescape — see docs/analysis.md).
# The suite has no suppression mechanism; the tree must be clean modulo
# the committed baseline (currently empty), and the whole run must stay
# inside a 60s wall-clock budget so `make ci` stays fast.
lint: vet
	@start=$$(date +%s); \
	$(GO) run ./cmd/lb-lint -baseline lint-baseline.json ./... || exit 1; \
	end=$$(date +%s); elapsed=$$((end - start)); \
	echo "lint: analyzer suite took $${elapsed}s (budget 60s)"; \
	if [ $$elapsed -ge 60 ]; then \
		echo "lint: exceeded the 60s wall-clock budget; profile with 'go run ./cmd/lb-lint -list -v'"; exit 1; \
	fi

# The differential harness: generated programs evaluated by the LFTJ
# engine (every candidate order, plan cache cold and warm) and by all
# IVM modes must match a naive reference evaluator, race-detector on.
difftest:
	$(GO) test -race -run 'Differential' -count=1 ./internal/engine/

# The durability suite: framed-snapshot and journal unit tests, the
# crash-recovery property test (every fault-injected crash point must
# recover exactly the acknowledged commits), and the faultfs
# crash-simulation filesystem's own semantics — race-detector on.
durable-test:
	$(GO) vet ./internal/durable/...
	$(GO) test -race -count=1 ./internal/durable/...

# The HTTP end-to-end suite (httptest): concurrent conflicting writers,
# deadline propagation into the fixpoint, error mapping, drain, pool
# rejection, panic recovery, save/load over the wire — race-detector on.
serve-test:
	$(GO) test -race -count=1 ./internal/server/

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# -count=1 on the replica/failover and server suites: the race detector
# only sees schedules it executes, so cached passes are worthless there.
race:
	$(GO) test -race ./...
	$(GO) test -race -count=1 ./internal/replica/ ./internal/server/

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# The transaction-repair suite: the repair differential harness (repaired
# heads must be byte-identical to serial re-execution over generated
# programs and conflict schedules) plus the server-level disjoint-writer
# race and the repair-vs-coarse contention benchmark — race-detector on.
repair-test:
	$(GO) test -race -run 'TestRepair|TestServerRepairDisjointWriters|TestContentionRepairVsCoarse' -count=1 ./internal/engine/ ./internal/server/

# The streaming-query suite, pull cursor to wire: LFTJ iterator parity
# and early close, engine/core cursor equivalence with the materialized
# path, NDJSON framing and trailing summary, pagination exactly-once
# against a pinned snapshot, disconnect releasing the worker slot, and
# the constant-memory assertion (STREAM_MEM_N rows; see EXPERIMENTS.md
# for the recorded 1M-row run) — race-detector on.
stream-test:
	$(GO) test -race -run 'TestIter|TestStreamRule|TestQueryStream|TestQueryPagination|TestQueryCursorErrors|TestQueryDefaultLimit|TestQueryMaxResultBytes|TestStreamDisconnectReleasesWorker|TestV1Aliases|TestAppendRowJSON|TestStreamConstantMemory|TestBenchStream' -count=1 ./internal/lftj/ ./internal/engine/ ./internal/core/ ./internal/server/ ./internal/bench/

# The replication suite: tail-frame codec and torn-final-frame sweep,
# journal tail cursor and truncation coordination, follower unit tests
# against a scripted fake primary (torn frames, 410 resync, backoff),
# the primary + two followers end-to-end suite (exactly-once replay,
# lag-aware health, stale-read 503, resync past a paused follower),
# drain-ends-tail-streams, bench replica routing, and the warm-standby
# failover property test (primary killed at every fault-injected crash
# point; the promoted follower must hold exactly the acked commits) —
# race-detector on. See docs/replication.md.
replica-test:
	$(GO) test -race -run 'TestTail|TestWaitSeq|TestFollower|TestReplication|TestPromote|TestAutoPromote|TestDrainEndsTailStreams|TestFailoverEveryCrashPoint|TestBenchReplicaRouting' -count=1 ./internal/durable/ ./internal/replica/ ./internal/server/ ./internal/bench/

bench:
	$(GO) test -bench=. -benchmem ./...

# The load-harness smoke: a fixed-seed lb-bench run against an
# in-process server (deterministic op sequence, hot-key contention,
# branch fan-out) asserting a well-formed report, zero 5xx, non-zero
# per-endpoint percentiles, and optimistic conflict/retry evidence —
# race-detector on. See docs/bench.md.
bench-smoke:
	$(GO) test -race -run 'TestBenchSmoke|TestGenOpsDeterministic' -count=1 ./internal/bench/
