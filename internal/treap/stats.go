package treap

import "sync/atomic"

// Package-level work counters making snapshot and set-operation cost
// visible: every persistent update copies the root-to-change path
// (NodesAllocated), and every set operation / equality test prunes where
// the operands literally share a subtree (SharedSubtrees). The ratio of
// the two is the structural-sharing win the paper's O(1) branching story
// rests on.
//
// Counting is off by default; when off, the only overhead on the hot
// paths is one atomic flag load. Enable with EnableStats (typically from
// `lb --stats` or a benchmark harness).
var (
	statsEnabled   atomic.Bool
	nodesAllocated atomic.Int64
	sharedSubtrees atomic.Int64
)

// EnableStats turns the package-level work counters on or off.
func EnableStats(on bool) { statsEnabled.Store(on) }

// StatsEnabled reports whether the work counters are active.
func StatsEnabled() bool { return statsEnabled.Load() }

// StatsSnapshot is a point-in-time copy of the work counters.
type StatsSnapshot struct {
	NodesAllocated int64 // nodes copied or created by mutating operations
	SharedSubtrees int64 // set-op / equality prunes on literally shared subtrees
}

// Stats returns the current counter values.
func Stats() StatsSnapshot {
	return StatsSnapshot{
		NodesAllocated: nodesAllocated.Load(),
		SharedSubtrees: sharedSubtrees.Load(),
	}
}

// ResetStats zeroes the counters.
func ResetStats() {
	nodesAllocated.Store(0)
	sharedSubtrees.Store(0)
}

func countAlloc() {
	if statsEnabled.Load() {
		nodesAllocated.Add(1)
	}
}

func countShared() {
	if statsEnabled.Load() {
		sharedSubtrees.Add(1)
	}
}
