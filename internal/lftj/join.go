package lftj

import (
	"fmt"

	"logicblox/internal/trie"
	"logicblox/internal/tuple"
)

// Atom is one conjunct of an equi-join: a predicate presented as a trie
// iterator plus the mapping from its trie levels to join variables.
// Vars[d] names the join variable bound at trie depth d; the sequence must
// be strictly increasing so the atom's column order is consistent with the
// join's variable order (atoms that are not consistent must be joined
// through a secondary index, paper §3.2).
type Atom struct {
	Pred string // predicate identity, used for sensitivity recording
	Iter trie.Iterator
	Vars []int
	// Cols, when non-nil, maps trie depths to the predicate's stored
	// columns: depth d of Iter reads stored column Cols[d]. Set for atoms
	// joined through a permuted secondary index so sensitivity intervals
	// can be translated back to stored column order; nil means identity.
	Cols []int
}

// Join is a leapfrog triejoin over a set of atoms under a fixed variable
// order. Conceptually it is a backtracking search through the trie of
// potential variable bindings: at each variable a unary leapfrog
// enumerates the values on which all participating atoms agree.
type Join struct {
	numVars int
	atoms   []Atom
	levels  [][]int           // levels[v] = indices of atoms participating at variable v
	iters   [][]trie.Iterator // reusable iterator slices per variable
	binding tuple.Tuple       // current prefix of variable bindings
	rec     *recording
	m       *Metrics // optional work counters (may be nil)
}

// NewJoin validates the atoms and builds a join over numVars variables
// (numbered 0..numVars-1 in the chosen variable order). idx, if non-nil,
// receives the sensitivity intervals of every subsequent Run.
func NewJoin(numVars int, atoms []Atom, idx *SensitivityIndex) (*Join, error) {
	j := &Join{
		numVars: numVars,
		atoms:   atoms,
		levels:  make([][]int, numVars),
		iters:   make([][]trie.Iterator, numVars),
		binding: make(tuple.Tuple, numVars),
	}
	covered := make([]bool, numVars)
	for ai, a := range atoms {
		if len(a.Vars) != a.Iter.Arity() {
			return nil, fmt.Errorf("lftj: atom %s has %d vars for arity %d", a.Pred, len(a.Vars), a.Iter.Arity())
		}
		if a.Cols != nil && len(a.Cols) != len(a.Vars) {
			return nil, fmt.Errorf("lftj: atom %s has %d cols for %d vars", a.Pred, len(a.Cols), len(a.Vars))
		}
		for d, v := range a.Vars {
			if v < 0 || v >= numVars {
				return nil, fmt.Errorf("lftj: atom %s references variable %d out of range", a.Pred, v)
			}
			if d > 0 && a.Vars[d-1] >= v {
				return nil, fmt.Errorf("lftj: atom %s variable order %v inconsistent with join order (secondary index required)", a.Pred, a.Vars)
			}
			j.levels[v] = append(j.levels[v], ai)
			covered[v] = true
		}
	}
	for v := 0; v < numVars; v++ {
		if !covered[v] {
			return nil, fmt.Errorf("lftj: variable %d is bound by no atom", v)
		}
		j.iters[v] = make([]trie.Iterator, len(j.levels[v]))
	}
	if idx != nil {
		j.rec = newRecording(j, idx)
	}
	return j, nil
}

// Run enumerates all satisfying assignments in lexicographic order of the
// variable order, calling emit for each. The binding tuple passed to emit
// is reused between calls; clone it to retain it. Returning false from
// emit aborts the enumeration.
func (j *Join) Run(emit func(binding tuple.Tuple) bool) {
	if j.numVars == 0 {
		// Degenerate boolean join: satisfied iff every atom is nonempty,
		// which is vacuously true here because zero-arity atoms cannot
		// participate (arity ≥ 1 enforced by Vars validation).
		emit(nil)
		return
	}
	j.run(0, emit)
}

func (j *Join) run(v int, emit func(tuple.Tuple) bool) bool {
	iters := j.iters[v]
	for i, ai := range j.levels[v] {
		it := j.atoms[ai].Iter
		it.Open()
		if j.rec != nil {
			if it.AtEnd() {
				j.rec.record(it, tuple.MinValue(), tuple.Value{}, true)
			} else {
				j.rec.record(it, tuple.MinValue(), it.Key(), false)
			}
		}
		iters[i] = it
	}
	lf := Leapfrog{iters: iters, rec: j.rec, m: j.m}
	lf.init()
	cont := true
	for cont && !lf.AtEnd() {
		j.binding[v] = lf.Key()
		if v == j.numVars-1 {
			cont = emit(j.binding)
		} else {
			cont = j.run(v+1, emit)
		}
		if cont {
			lf.Next()
		}
	}
	for _, ai := range j.levels[v] {
		j.atoms[ai].Iter.Up()
	}
	return cont
}

// Count runs the join and returns the number of satisfying assignments.
func (j *Join) Count() int {
	n := 0
	j.Run(func(tuple.Tuple) bool { n++; return true })
	return n
}

// Collect runs the join and returns all bindings (cloned).
func (j *Join) Collect() []tuple.Tuple {
	var out []tuple.Tuple
	j.Run(func(b tuple.Tuple) bool { out = append(out, b.Clone()); return true })
	return out
}
