package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package with its syntax trees.
type Package struct {
	PkgPath string
	Name    string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listedPkg mirrors the fields of `go list -json` this loader consumes.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Standard   bool
	Export     string
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Load enumerates the packages matching patterns with the go command and
// type-checks the ones belonging to the surrounding module from source,
// in dependency order. Dependencies outside the module (the standard
// library) are resolved through the compiler's export data, so loading
// needs no network and no third-party tooling.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-deps", "-export", "-json=ImportPath,Name,Dir,GoFiles,Standard,Export,Module,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}

	var listed []*listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		listed = append(listed, &p)
	}

	// Targets are the module's own packages; everything else (stdlib) is
	// imported from export data. -deps emits dependencies before
	// dependents, so type-checking in listing order resolves module
	// imports from the cache below.
	fset := token.NewFileSet()
	exportPaths := map[string]string{}
	for _, p := range listed {
		if p.Export != "" {
			exportPaths[p.ImportPath] = p.Export
		}
	}
	imp := &cachedImporter{
		local: map[string]*types.Package{},
		gc: importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
			exp, ok := exportPaths[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(exp)
		}),
	}

	var pkgs []*Package
	for _, p := range listed {
		if p.Standard || p.Module == nil {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", p.ImportPath, err)
		}
		imp.local[p.ImportPath] = tpkg
		pkgs = append(pkgs, &Package{
			PkgPath: p.ImportPath,
			Name:    p.Name,
			Fset:    fset,
			Files:   files,
			Types:   tpkg,
			Info:    info,
		})
	}
	return pkgs, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
}

// cachedImporter resolves module-local imports from already-checked
// packages and everything else from compiler export data.
type cachedImporter struct {
	local map[string]*types.Package
	gc    types.Importer
}

// Import implements types.Importer.
func (ci *cachedImporter) Import(path string) (*types.Package, error) {
	if p, ok := ci.local[path]; ok {
		return p, nil
	}
	return ci.gc.Import(path)
}
