// Command lb-serve exposes a logicblox database over HTTP. Requests run
// as concurrent transactions with optimistic commits, per-request
// deadlines honored inside the engine, and Prometheus metrics on
// /metrics; see docs/server.md for the API.
//
// Usage:
//
//	lb-serve [-addr :8080] [-workers N] [-queue N] [-timeout 30s]
//	         [-retries 3] [-default-limit N] [-adaptive-opt]
//	         [-access-log stderr|stdout|file] [-slow-query 500ms]
//	         [-trace-sample N] [-debug-addr :6060]
//	         [-data-dir dir [-fsync always|interval] [-fsync-interval 50ms]
//	          [-checkpoint-every 256] [-checkpoint-interval 30s]
//	          [-generations 3]]
//	         [-snapshot file]
//	         [-follow http://primary:8080 [-staleness-bound 10s]
//	          [-promote-on-failure] [-probe-interval 2s]]
//
// Observability: -access-log writes one JSON line per request (slog);
// -slow-query additionally logs any slower request with its full span
// tree and cached-plan fingerprints; -trace-sample keeps 1 in N root
// spans in the registry's trace ring; -debug-addr serves net/http/pprof
// on a separate, private mux so profiling endpoints never share the
// public listener (see docs/server.md and docs/observability.md).
//
// With -data-dir, the server runs durably: at startup it recovers the
// database from the newest valid snapshot generation plus a replay of
// the commit journal, and every committed transaction is journaled
// write-ahead before the client sees its ack (see docs/durability.md).
// With -snapshot (mutually exclusive), the database is loaded from the
// file at startup (if it exists) and written back there — atomically
// and fsynced — on shutdown; nothing is durable in between. On
// SIGINT/SIGTERM the server drains: new requests get 503 + Retry-After
// while in-flight transactions finish, and open /journal/tail streams
// end with a clean end-of-stream frame.
//
// With -follow, the server runs as a read replica: it bootstraps from
// the primary's snapshot, tails its commit journal over
// GET /journal/tail, replays records through the normal transaction
// path, and serves read-only queries — writes are rejected 421 with
// the primary's address. When replication has not caught up within
// -staleness-bound, /healthz and /query flip to 503 so load balancers
// route around the stale replica. POST /promote (or
// -promote-on-failure with -probe-interval) turns the follower into a
// writable primary; see docs/replication.md for the failover runbook.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"logicblox"
	"logicblox/internal/core"
	"logicblox/internal/durable"
	"logicblox/internal/replica"
	"logicblox/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "max concurrently executing transactions (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "max requests waiting for a worker before 503 (0 = 64)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request deadline")
	retries := flag.Int("retries", 3, "max optimistic re-executions after commit conflicts")
	defaultLimit := flag.Int("default-limit", 0, "default row cap on materialized /query responses (0 = 10000, negative = uncapped; explicit limit in the request always wins)")
	noRepair := flag.Bool("no-repair", false, "disable fine-grained transaction repair on conflict (every lost race re-executes fully)")
	adaptive := flag.Bool("adaptive-opt", false, "feedback-driven join-order optimization with a cached plan store")
	snapshot := flag.String("snapshot", "", "load the database from this file at startup and save it on shutdown (no journaling; see -data-dir)")
	dataDir := flag.String("data-dir", "", "run durably from this directory: snapshot generations + write-ahead commit journal")
	fsync := flag.String("fsync", durable.FsyncAlways, "journal fsync policy: always (durable acks) or interval (bounded loss, higher throughput)")
	fsyncInterval := flag.Duration("fsync-interval", 50*time.Millisecond, "journal flush period under -fsync interval")
	ckptEvery := flag.Int("checkpoint-every", 256, "checkpoint after this many journaled commits (<0 disables)")
	ckptInterval := flag.Duration("checkpoint-interval", 30*time.Second, "checkpoint at least this often while commits are pending (<0 disables)")
	generations := flag.Int("generations", 3, "rotated snapshot generations to keep in -data-dir")
	grace := flag.Duration("grace", 15*time.Second, "max time to drain in-flight requests on shutdown")
	accessLog := flag.String("access-log", "", "JSON access-log destination: stderr, stdout, or a file path (empty disables)")
	slowQuery := flag.Duration("slow-query", 500*time.Millisecond, "log requests slower than this with their span tree (needs -access-log; <=0 disables)")
	traceSample := flag.Int("trace-sample", 1, "keep 1 in N finished root spans in the trace ring (1 = every request)")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this separate address (empty disables)")
	follow := flag.String("follow", "", "run as a read replica tailing this primary base URL (requires -data-dir; see docs/replication.md)")
	stalenessBound := flag.Duration("staleness-bound", 10*time.Second, "follower: flip /healthz and /query to 503 when not caught up for this long")
	promoteOnFailure := flag.Bool("promote-on-failure", false, "follower: auto-promote to primary after consecutive primary health-probe failures")
	probeInterval := flag.Duration("probe-interval", 2*time.Second, "follower: primary health-probe period for -promote-on-failure")
	flag.Parse()

	if *dataDir != "" && *snapshot != "" {
		log.Fatalf("lb-serve: -data-dir and -snapshot are mutually exclusive (the data directory manages its own snapshots)")
	}
	if *follow != "" && *dataDir == "" {
		log.Fatalf("lb-serve: -follow requires -data-dir (the follower journals replayed commits locally)")
	}

	reg := logicblox.NewObsRegistry()
	reg.SetTraceSampling(*traceSample)
	logicblox.EnableStorageStats(true)

	logger, logClose, err := openAccessLog(*accessLog)
	if err != nil {
		log.Fatalf("lb-serve: %v", err)
	}
	if logClose != nil {
		defer logClose()
	}

	var db *core.Database
	var store *durable.Store
	if *dataDir != "" {
		store, db, err = openDurable(*dataDir, durable.Options{
			Fsync:              *fsync,
			FsyncInterval:      *fsyncInterval,
			CheckpointEvery:    *ckptEvery,
			CheckpointInterval: *ckptInterval,
			Generations:        *generations,
			Obs:                reg,
		}, *adaptive, *follow == "")
	} else {
		db, err = openDatabase(*snapshot, *adaptive)
	}
	if err != nil {
		log.Fatalf("lb-serve: %v", err)
	}

	var follower *replica.Follower
	if *follow != "" {
		follower, err = replica.New(replica.Config{
			PrimaryURL:       *follow,
			Store:            store,
			DB:               db,
			StalenessBound:   *stalenessBound,
			PromoteOnFailure: *promoteOnFailure,
			ProbeInterval:    *probeInterval,
			Obs:              reg,
			Logger:           logger,
		})
		if err != nil {
			log.Fatalf("lb-serve: %v", err)
		}
		// The background checkpointer must snapshot whatever database the
		// follower currently serves — a resync swaps the pointer.
		store.Start(func(w io.Writer) (uint64, error) { return follower.DB().SaveSnapshot(w) })
		follower.Start(context.Background())
		log.Printf("lb-serve: following %s (staleness bound %s)", *follow, *stalenessBound)
	}

	s := server.New(db, server.Config{
		Workers:       *workers,
		Queue:         *queue,
		Timeout:       *timeout,
		MaxRetries:    *retries,
		DefaultLimit:  *defaultLimit,
		DisableRepair: *noRepair,
		Obs:           reg,
		Durable:       store,
		AccessLog:     logger,
		SlowQuery:     *slowQuery,
		Follower:      follower,
	})

	if *debugAddr != "" {
		go serveDebug(*debugAddr)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}
	go func() {
		log.Printf("lb-serve: listening on %s", *addr)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("lb-serve: %v", err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig

	// Graceful shutdown: reject new work immediately, then drain.
	log.Printf("lb-serve: draining (%d in flight)", s.Inflight())
	s.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("lb-serve: shutdown: %v", err)
	}
	if follower != nil {
		follower.Stop()
	}

	if store != nil {
		// Fold the journal tail into a final snapshot so the next boot
		// replays nothing; the journal keeps every record the retained
		// generations need, so even a failure here loses no commit.
		if err := store.Checkpoint(s.Database().SaveSnapshot); err != nil {
			log.Printf("lb-serve: final checkpoint: %v", err)
		}
		if err := store.Close(); err != nil {
			log.Printf("lb-serve: closing store: %v", err)
		}
	}
	if *snapshot != "" {
		if err := saveDatabase(*snapshot, s.Database()); err != nil {
			log.Fatalf("lb-serve: save snapshot: %v", err)
		}
		log.Printf("lb-serve: snapshot written to %s", *snapshot)
	}
}

// openAccessLog builds the JSON slog logger for -access-log. The
// returned close function (nil unless a file was opened) flushes the log
// file on shutdown.
func openAccessLog(dest string) (*slog.Logger, func(), error) {
	var w *os.File
	switch dest {
	case "":
		return nil, nil, nil
	case "stderr":
		w = os.Stderr
	case "stdout":
		w = os.Stdout
	default:
		f, err := os.OpenFile(dest, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("access log %s: %w", dest, err)
		}
		return slog.New(slog.NewJSONHandler(f, nil)), func() { f.Close() }, nil
	}
	return slog.New(slog.NewJSONHandler(w, nil)), nil, nil
}

// serveDebug exposes net/http/pprof on its own mux and listener, so the
// profiling endpoints are bound to a private address instead of riding
// on the public API listener (and never on http.DefaultServeMux).
func serveDebug(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	log.Printf("lb-serve: pprof on %s/debug/pprof/", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		log.Printf("lb-serve: debug listener: %v", err)
	}
}

// openDurable opens the data directory, recovers the database it
// describes (newest valid snapshot generation + journal replay), hooks
// the journal into the commit path and starts the background
// checkpointer.
// In follower mode (primary=false) the commit hook and checkpointer are
// left to the caller: the replica subsystem journals replayed records
// itself and owns the database pointer.
func openDurable(dir string, opts durable.Options, adaptive, primary bool) (*durable.Store, *core.Database, error) {
	store, err := durable.Open(dir, opts)
	if err != nil {
		return nil, nil, err
	}
	db, err := store.Recover(func() (*core.Database, error) {
		return newDatabase(adaptive), nil
	})
	if err != nil {
		store.Close()
		return nil, nil, fmt.Errorf("recovering %s: %w", dir, err)
	}
	st := store.Stats()
	log.Printf("lb-serve: recovered %s (snapshot seq %d, %d journal records replayed, %d corrupt generations skipped)",
		dir, st.RecoveredSnapshotSeq, st.JournalReplayed, st.CorruptSkipped)
	if primary {
		db.SetCommitHook(store.LogCommit)
		store.Start(db.SaveSnapshot)
	}
	return store, db, nil
}

func newDatabase(adaptive bool) *core.Database {
	var opts []logicblox.Option
	if adaptive {
		opts = append(opts, logicblox.WithAdaptiveOptimizer())
	}
	return logicblox.Open(opts...)
}

// openDatabase loads the snapshot when one is named and present,
// otherwise opens a fresh database. Framed (checksummed) and legacy raw
// gob snapshot files are both accepted.
func openDatabase(path string, adaptive bool) (*core.Database, error) {
	if path != "" {
		payload, err := durable.ReadSnapshotFile(durable.OS, path)
		if err == nil {
			db, err := durable.LoadSnapshotPayload(payload)
			if err != nil {
				return nil, fmt.Errorf("load %s: %w", path, err)
			}
			log.Printf("lb-serve: loaded snapshot %s (%d versions)", path, db.Versions())
			return db, nil
		}
		if !errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("load %s: %w", path, err)
		}
	}
	return newDatabase(adaptive), nil
}

// saveDatabase writes the snapshot atomically (temp file, fsync, rename,
// directory fsync) with the framed checksummed header, so a crash
// mid-save cannot corrupt the previous one and a later load detects any
// on-disk corruption.
func saveDatabase(path string, db *core.Database) error {
	return durable.WriteDatabaseSnapshot(durable.OS, path, db)
}
