package graphgen

import "testing"

func TestPreferentialAttachmentDeterministic(t *testing.T) {
	a := PreferentialAttachment(500, 3, 42)
	b := PreferentialAttachment(500, 3, 42)
	if len(a) != len(b) {
		t.Fatalf("non-deterministic edge count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := PreferentialAttachment(500, 3, 43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatalf("different seeds produced identical graphs")
	}
}

func TestPreferentialAttachmentSkew(t *testing.T) {
	// The whole point of the generator: a heavy tail. The top 1% of
	// vertices should hold a disproportionate share of endpoints.
	edges := PreferentialAttachment(2000, 3, 7)
	maxDeg, top1 := DegreeStats(edges)
	if maxDeg < 20 {
		t.Errorf("max degree %d suspiciously small for preferential attachment", maxDeg)
	}
	if top1 < 0.05 {
		t.Errorf("top-1%% endpoint share %.3f shows no skew", top1)
	}
	// Contrast: an Erdős–Rényi graph of the same size is much flatter.
	er := ErdosRenyi(2000, len(edges), 7)
	erMax, _ := DegreeStats(er)
	if erMax >= maxDeg {
		t.Errorf("ER max degree %d >= PA max degree %d; generator not skewed", erMax, maxDeg)
	}
}

func TestCanonical(t *testing.T) {
	edges := []Edge{{2, 1}, {1, 2}, {3, 3}, {4, 5}}
	got := Canonical(edges)
	if len(got) != 2 {
		t.Fatalf("canonical = %v", got)
	}
	for _, e := range got {
		if e.U >= e.V {
			t.Fatalf("non-canonical edge %v", e)
		}
	}
}

func TestToRelationAndSymmetrized(t *testing.T) {
	edges := []Edge{{1, 2}, {3, 4}}
	r := ToRelation(edges)
	if r.Len() != 2 || r.Arity() != 2 {
		t.Fatalf("ToRelation wrong: %d tuples", r.Len())
	}
	s := Symmetrized(edges)
	if s.Len() != 4 {
		t.Fatalf("Symmetrized len = %d", s.Len())
	}
}

func TestErdosRenyiProperties(t *testing.T) {
	edges := ErdosRenyi(100, 300, 11)
	if len(edges) != 300 {
		t.Fatalf("edge count = %d", len(edges))
	}
	seen := map[[2]int64]bool{}
	for _, e := range edges {
		if e.U >= e.V {
			t.Fatalf("non-canonical ER edge %v", e)
		}
		k := [2]int64{e.U, e.V}
		if seen[k] {
			t.Fatalf("duplicate edge %v", e)
		}
		seen[k] = true
	}
}

func TestSmallGraphEdgeCases(t *testing.T) {
	if got := PreferentialAttachment(1, 3, 1); len(got) != 0 {
		t.Fatalf("single-vertex graph has edges: %v", got)
	}
	if got := PreferentialAttachment(2, 1, 1); len(got) != 1 {
		t.Fatalf("two-vertex graph: %v", got)
	}
	if maxDeg, share := DegreeStats(nil); maxDeg != 0 || share != 0 {
		t.Fatalf("empty DegreeStats = %d, %f", maxDeg, share)
	}
}
