// Package meta implements the meta-engine (paper §3.3, Figure 6): the
// lightweight higher-level engine that manages LogiQL application code as
// data. Programs are represented as collections of meta-facts, and
// meta-rules — written in LogiQL and evaluated by the very engine they
// describe — derive the code invariants the paper lists (the lang_edb
// base-predicate inference, the need_frame_rule invariant) as well as the
// dirty-predicate analysis that drives live programming: after an
// addblock/removeblock, only the derived predicates the meta-engine marks
// dirty are re-derived.
package meta

import (
	"fmt"
	"sort"
	"sync"

	"logicblox/internal/ast"
	"logicblox/internal/compiler"
	"logicblox/internal/engine"
	"logicblox/internal/parser"
	"logicblox/internal/relation"
	"logicblox/internal/tuple"
)

// MetaRules is the meta-program: non-recursive Datalog with negation plus
// one recursive dependency closure, expressed in LogiQL and evaluated by
// the engine proper. The first two rules are the ones printed in the
// paper (§3.3), modulo surface syntax.
const MetaRules = `
	// A predicate not implied to be derived is a base predicate.
	lang_idb(p) <- rule_head_plain(r, p), user_rule(r).
	lang_edb(p) <- lang_predname(p), !lang_idb(p).

	// If +Foo or -Foo appears in the head of a rule, Foo needs a frame rule.
	need_frame_rule(p) <- user_rule(r), rule_head_delta(r, p).

	// Dependency graph: p feeds q when a rule reads p and derives q.
	affects(p, q) <- user_rule(r), rule_body_pred(r, p), rule_head_plain(r, q).
	affects(p, q) <- user_rule(r), rule_neg_pred(r, p), rule_head_plain(r, q).

	// A rule is changed if it is new or removed between program versions.
	added_rule(r) <- new_rule(r), !old_rule(r).
	removed_rule(r) <- old_rule(r), !new_rule(r).

	// Dirty predicates: heads of changed rules, closed under dependency.
	dirty(q) <- added_rule(r), rule_head_plain(r, q).
	dirty(q) <- removed_rule(r), rule_head_plain_old(r, q).
	dirty(q) <- dirty(p), affects(p, q).

	// A derived predicate that is dirty must be re-materialized; a dirty
	// name that is no longer derived by any rule must be dropped.
	revise(p) <- dirty(p), lang_idb(p).
	drop_pred(p) <- dirty(p), !lang_idb(p).
`

// Analysis is the meta-engine's output for a program change.
type Analysis struct {
	EDB           []string // inferred base predicates (new program)
	IDB           []string // inferred derived predicates (new program)
	NeedFrameRule []string // base predicates requiring frame rules
	AddedRules    []string // rule sources present only in the new program
	RemovedRules  []string // rule sources present only in the old program
	DirtyPreds    []string // derived predicates that must be re-materialized
	DropPreds     []string // previously derived predicates with no remaining rules
}

// Facts lowers parsed blocks into meta-fact relations. Rules are
// identified by their pretty-printed source (treaps of meta-objects give
// the unique-representation the paper relies on; a printed rule is its
// own canonical form here).
func Facts(blocks map[string]*ast.Program) map[string]relation.Relation {
	f := newFactBuilder()
	// Deterministic block order.
	var names []string
	for b := range blocks {
		names = append(names, b)
	}
	sort.Strings(names)
	for _, b := range names {
		f.addBlock(b, blocks[b])
	}
	return f.rels
}

type factBuilder struct {
	rels map[string]relation.Relation
}

func newFactBuilder() *factBuilder {
	return &factBuilder{rels: map[string]relation.Relation{
		"block":            relation.New(1),
		"block_rule":       relation.New(2),
		"user_rule":        relation.New(1),
		"rule_head_plain":  relation.New(2),
		"rule_head_delta":  relation.New(2),
		"rule_body_pred":   relation.New(2),
		"rule_neg_pred":    relation.New(2),
		"lang_predname":    relation.New(1),
		"constraint_block": relation.New(2),
	}}
}

func (f *factBuilder) add(pred string, vals ...string) {
	t := make(tuple.Tuple, len(vals))
	for i, v := range vals {
		t[i] = tuple.String(v)
	}
	f.rels[pred] = f.rels[pred].Insert(t)
}

func (f *factBuilder) addBlock(name string, prog *ast.Program) {
	f.add("block", name)
	for _, cl := range prog.Clauses {
		switch cl := cl.(type) {
		case *ast.Rule:
			rid := cl.String()
			f.add("block_rule", name, rid)
			f.add("user_rule", rid)
			for _, h := range cl.Heads {
				f.add("lang_predname", h.Pred)
				if h.Delta == ast.DeltaNone {
					f.add("rule_head_plain", rid, h.Pred)
				} else {
					f.add("rule_head_delta", rid, h.Pred)
				}
				// Functional applications inside head terms (abbreviated
				// syntax) are body dependencies.
				for _, t := range h.AllTerms() {
					addTermPreds(f, rid, t)
				}
			}
			for _, l := range cl.Body {
				if l.Atom == nil {
					addTermPreds(f, rid, l.Cmp.L)
					addTermPreds(f, rid, l.Cmp.R)
					continue
				}
				f.add("lang_predname", l.Atom.Pred)
				if l.Negated {
					f.add("rule_neg_pred", rid, l.Atom.Pred)
				} else {
					f.add("rule_body_pred", rid, l.Atom.Pred)
				}
				for _, t := range l.Atom.AllTerms() {
					addTermPreds(f, rid, t)
				}
			}
		case *ast.Constraint:
			f.add("constraint_block", name, cl.String())
			for _, l := range append(append([]*ast.Literal{}, cl.Body...), cl.Head...) {
				if l.Atom != nil {
					if _, isType := ast.TypeAtoms[l.Atom.Pred]; !isType {
						f.add("lang_predname", l.Atom.Pred)
					}
				}
			}
		}
	}
}

// addTermPreds records functional applications nested in terms as body
// dependencies.
func addTermPreds(f *factBuilder, rid string, t ast.Term) {
	switch t := t.(type) {
	case ast.FuncApp:
		f.add("lang_predname", t.Pred)
		f.add("rule_body_pred", rid, t.Pred)
		for _, a := range t.Args {
			addTermPreds(f, rid, a)
		}
	case ast.Arith:
		addTermPreds(f, rid, t.L)
		addTermPreds(f, rid, t.R)
	}
}

// Analyze runs the meta-program over the meta-facts of the old and new
// program versions and returns the incremental-code-maintenance analysis.
func Analyze(oldBlocks, newBlocks map[string]*ast.Program) (*Analysis, error) {
	metaProg, err := compiledMetaProgram()
	if err != nil {
		return nil, err
	}
	newFacts := Facts(newBlocks)
	oldFacts := Facts(oldBlocks)

	base := map[string]relation.Relation{}
	for k, v := range newFacts {
		base[k] = v
	}
	// Rule-version relations for change detection.
	base["new_rule"] = newFacts["user_rule"]
	base["old_rule"] = oldFacts["user_rule"]
	// Head facts of the OLD program, needed for removed-rule dirtiness.
	base["rule_head_plain_old"] = oldFacts["rule_head_plain"]
	// The union of predicate names across versions, so drops are visible.
	base["lang_predname"] = newFacts["lang_predname"].Union(oldFacts["lang_predname"])

	ctx := engine.NewContext(metaProg, base, engine.Options{})
	if err := ctx.EvalAll(); err != nil {
		return nil, fmt.Errorf("meta-engine: %w", err)
	}
	out := &Analysis{
		EDB:           unaryStrings(ctx.Relation("lang_edb")),
		IDB:           unaryStrings(ctx.Relation("lang_idb")),
		NeedFrameRule: unaryStrings(ctx.Relation("need_frame_rule")),
		AddedRules:    unaryStrings(ctx.Relation("added_rule")),
		RemovedRules:  unaryStrings(ctx.Relation("removed_rule")),
		DirtyPreds:    unaryStrings(ctx.Relation("revise")),
		DropPreds:     unaryStrings(ctx.Relation("drop_pred")),
	}
	return out, nil
}

func unaryStrings(r relation.Relation) []string {
	var out []string
	r.ForEach(func(t tuple.Tuple) bool {
		out = append(out, t[0].AsString())
		return true
	})
	return out
}

var (
	metaOnce     sync.Once
	metaCompiled *compiler.Program
	metaErr      error
)

// compiledMetaProgram parses and compiles the meta-program once.
func compiledMetaProgram() (*compiler.Program, error) {
	metaOnce.Do(func() {
		prog, err := parser.Parse(MetaRules)
		if err != nil {
			metaErr = fmt.Errorf("meta-rules parse: %w", err)
			return
		}
		metaCompiled, metaErr = compiler.Compile(prog)
	})
	return metaCompiled, metaErr
}
