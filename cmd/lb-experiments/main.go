// Command lb-experiments regenerates every experiment in EXPERIMENTS.md:
// for each table/figure of the paper (and each quantitative claim in its
// text), it runs the corresponding workload and prints the measured
// series. See DESIGN.md §3 for the experiment index.
//
// Usage:
//
//	lb-experiments [-exp all|adaptive|fig3|fig5|wco|branch|ivm|live|treap|repair|solve|predict] [-quick]
//	               [-adaptive-opt] [-obs-json file]
//
// With -obs-json, a process-wide metrics registry is installed for the
// run and its snapshot (counters, rule profiles, transaction histograms,
// traces) is written as JSON to the given file ("-" for stdout).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"logicblox/internal/core"
	"logicblox/internal/obs"
	"logicblox/internal/relation"
)

// useAdaptiveOpt is set by -adaptive-opt: workspace-driven experiments
// then evaluate with the feedback-driven plan-store optimizer instead of
// the default heuristic order.
var useAdaptiveOpt bool

// newWorkspace returns an empty workspace honoring -adaptive-opt.
func newWorkspace() *core.Workspace {
	ws := core.NewWorkspace()
	if useAdaptiveOpt {
		ws = ws.WithAdaptiveOptimizer(true)
	}
	return ws
}

type experiment struct {
	name string
	desc string
	run  func(quick bool)
}

var experiments = []experiment{
	{"fig3", "E5: unary leapfrog trace and sensitivity intervals (paper Figure 3)", runFig3},
	{"fig5", "E1: 3-clique runtime vs edges — LFTJ vs pairwise joins (paper Figure 5)", runFig5},
	{"wco", "E6: worst-case-optimality on Loomis–Whitney instances", runWCO},
	{"branch", "E2: O(1) branching; branches per second vs database size", runBranch},
	{"ivm", "E4: incremental maintenance vs recompute/counting/DRed/sensitivity", runIVM},
	{"live", "E7: live programming — addblock incremental vs full re-evaluation", runLive},
	{"treap", "E8: treap set operations and sharing-aware equality", runTreap},
	{"repair", "E3: fine-grained transaction repair vs coarse optimistic retry across α (paper §3.4)", runRepair},
	{"solve", "E9: LP/MIP grounding, solving, and incremental re-grounding", runSolve},
	{"predict", "E10: predict rules — learn and eval throughput and accuracy", runPredict},
	{"adaptive", "E11: feedback-driven join-order optimization — plan cache vs per-tx re-sampling", runAdaptive},
}

func main() {
	var names []string
	for _, e := range experiments {
		names = append(names, e.name)
	}
	sort.Strings(names)
	exp := flag.String("exp", "all", "experiment to run: all|"+strings.Join(names, "|"))
	quick := flag.Bool("quick", false, "smaller sizes for a fast smoke run")
	adaptive := flag.Bool("adaptive-opt", false, "run workspace-driven experiments with the adaptive plan-store optimizer")
	obsJSON := flag.String("obs-json", "", `write the run's observability snapshot as JSON to this file ("-" for stdout)`)
	flag.Parse()
	useAdaptiveOpt = *adaptive

	var reg *obs.Registry
	if *obsJSON != "" {
		reg = obs.NewRegistry()
		obs.SetDefault(reg)
		relation.EnableStorageStats(true)
	}

	ran := false
	for _, e := range experiments {
		if *exp != "all" && *exp != e.name {
			continue
		}
		ran = true
		fmt.Printf("=== %s — %s ===\n", e.name, e.desc)
		e.run(*quick)
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	if reg != nil {
		w := os.Stdout
		if *obsJSON != "-" {
			f, err := os.Create(*obsJSON)
			if err != nil {
				fmt.Fprintln(os.Stderr, "obs-json:", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		if err := reg.Snapshot().WriteJSON(w); err != nil {
			fmt.Fprintln(os.Stderr, "obs-json:", err)
			os.Exit(1)
		}
	}
}
