// Package lftj implements Leapfrog Triejoin (Veldhuizen, ICDT 2014), the
// worst-case-optimal multiway equi-join at the heart of the LogicBlox
// engine (paper §3.2), together with the sensitivity-interval machinery
// used by incremental maintenance and transaction repair.
package lftj

import (
	"fmt"

	"logicblox/internal/trie"
	"logicblox/internal/tuple"
)

// Leapfrog performs the unary leapfrog join: given k iterators positioned
// at the same trie level, it enumerates the intersection of their key sets
// by repeatedly seeking the iterator with the smallest key to the largest
// current key until all agree ("leapfrogging", paper Figure 3).
//
// The Leapfrog itself satisfies the linear-iterator contract (Key, Next,
// Seek, AtEnd), so intersections compose.
type Leapfrog struct {
	iters []trie.Iterator
	p     int // index of the iterator holding the smallest key
	key   tuple.Value
	atEnd bool
	rec   *recording // optional sensitivity recording context (may be nil)
	m     *Metrics   // optional work counters (may be nil)
}

// NewLeapfrog initializes a leapfrog join over the given iterators, which
// must all be positioned at a key (or already at end, making the join
// empty). The rec argument may be nil.
func NewLeapfrog(iters []trie.Iterator, rec *recording) *Leapfrog {
	l := &Leapfrog{iters: iters, rec: rec}
	l.init()
	return l
}

func (l *Leapfrog) init() {
	for _, it := range l.iters {
		if it.AtEnd() {
			l.atEnd = true
			return
		}
	}
	// Order iterators by current key (insertion sort: k is tiny).
	for i := 1; i < len(l.iters); i++ {
		for j := i; j > 0 && tuple.Less(l.iters[j].Key(), l.iters[j-1].Key()); j-- {
			l.iters[j], l.iters[j-1] = l.iters[j-1], l.iters[j]
		}
	}
	l.p = 0
	l.search()
}

// search leapfrogs until all iterators sit on the same key, or any
// reaches the end.
func (l *Leapfrog) search() {
	k := len(l.iters)
	max := l.iters[(l.p+k-1)%k].Key()
	for {
		it := l.iters[l.p]
		x := it.Key()
		if tuple.Equal(x, max) {
			l.key = x
			return
		}
		l.seekIter(it, max)
		if it.AtEnd() {
			l.atEnd = true
			return
		}
		max = it.Key()
		l.p = (l.p + 1) % k
	}
}

// Key returns the current match. Only valid when !AtEnd().
func (l *Leapfrog) Key() tuple.Value { return l.key }

// AtEnd reports whether the intersection is exhausted.
func (l *Leapfrog) AtEnd() bool { return l.atEnd }

// Next advances to the next key in the intersection.
func (l *Leapfrog) Next() {
	if l.atEnd {
		return
	}
	it := l.iters[l.p]
	prev := it.Key()
	it.Next()
	if l.m != nil {
		l.m.Nexts++
	}
	if it.AtEnd() {
		l.record(it, prev, tuple.Value{}, true)
		l.atEnd = true
		return
	}
	l.record(it, prev, it.Key(), false)
	l.p = (l.p + 1) % len(l.iters)
	l.search()
}

// Seek advances to the least key ≥ v in the intersection.
func (l *Leapfrog) Seek(v tuple.Value) {
	if l.atEnd {
		return
	}
	it := l.iters[l.p]
	l.seekIter(it, v)
	if it.AtEnd() {
		l.atEnd = true
		return
	}
	l.p = (l.p + 1) % len(l.iters)
	l.search()
}

func (l *Leapfrog) seekIter(it trie.Iterator, v tuple.Value) {
	it.Seek(v)
	if l.m != nil {
		l.m.Seeks++
	}
	if it.AtEnd() {
		l.record(it, v, tuple.Value{}, true)
	} else {
		l.record(it, v, it.Key(), false)
	}
}

func (l *Leapfrog) record(it trie.Iterator, lo, hi tuple.Value, openEnded bool) {
	if l.rec != nil {
		l.rec.record(it, lo, hi, openEnded)
	}
}

// Intersect is a convenience that materializes the intersection of unary
// iterators (each must be freshly rooted: it opens them itself).
func Intersect(iters ...trie.Iterator) []tuple.Value {
	for _, it := range iters {
		if it.Arity() != 1 {
			panic(fmt.Sprintf("lftj: Intersect requires unary iterators, got arity %d", it.Arity()))
		}
		it.Open()
	}
	var out []tuple.Value
	for l := NewLeapfrog(iters, nil); !l.AtEnd(); l.Next() {
		out = append(out, l.Key())
	}
	return out
}
