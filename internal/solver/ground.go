package solver

import (
	"fmt"
	"sort"
	"strings"

	"logicblox/internal/compiler"
	"logicblox/internal/engine"
	"logicblox/internal/relation"
	"logicblox/internal/tuple"
)

// Grounding translates a LogiQL program with free second-order predicate
// variables (lang:solve:variable) into a linear program: decision
// variables are the entries of the free predicates over their key
// domains, integrity constraints become linear rows, and the
// lang:solve:max/min objective predicate's aggregation rule becomes the
// objective function (paper §2.3.1). Grounding reuses the engine's query
// evaluation machinery: constraint bodies are enumerated by leapfrog
// joins over the data, exactly as the paper describes ("this improves
// the scalability of the grounding by taking advantage of all the query
// evaluation machinery").
type Grounding struct {
	prog    *compiler.Program
	spec    *compiler.SolveSpec
	rels    map[string]relation.Relation
	free    map[string]bool
	integer map[string]bool

	vars    []VarInfo
	varIdx  map[string]int
	domains map[string][]tuple.Tuple // free pred → key tuples

	// derivedLinear holds, for each derived sum-aggregation predicate
	// whose body reads free predicates (e.g. totalShelf), the linear form
	// of its value per group key. Constraints and objectives referencing
	// such predicates are linearized through these forms.
	derivedLinear map[string]map[string]linForm
	derivedKeys   map[string][]tuple.Tuple
	derivedHashes map[string]uint64

	objective []float64
	objConst  float64
	objSign   float64
	objPred   string

	// rows grouped by source constraint (for incremental re-grounding).
	rowsByConstraint map[int][]LinConstraint
	inputHashes      map[int]uint64 // per constraint: hash of its input relations
	objHash          uint64
}

// VarInfo names one decision variable: an entry of a free predicate.
type VarInfo struct {
	Pred string
	Key  tuple.Tuple
}

// sentinel value bound to free-value columns during body enumeration.
var sentinel = tuple.Float(1)

// Ground builds the LP/MIP for the program over the given relation
// contents.
func Ground(prog *compiler.Program, rels map[string]relation.Relation) (*Grounding, error) {
	spec := prog.Solve
	if spec == nil || len(spec.Variables) == 0 {
		return nil, fmt.Errorf("solver: program has no lang:solve:variable declarations")
	}
	g := &Grounding{
		prog:             prog,
		spec:             spec,
		rels:             rels,
		free:             map[string]bool{},
		integer:          map[string]bool{},
		varIdx:           map[string]int{},
		domains:          map[string][]tuple.Tuple{},
		derivedLinear:    map[string]map[string]linForm{},
		derivedKeys:      map[string][]tuple.Tuple{},
		derivedHashes:    map[string]uint64{},
		rowsByConstraint: map[int][]LinConstraint{},
		inputHashes:      map[int]uint64{},
		objSign:          1,
	}
	for _, v := range spec.Variables {
		info, ok := prog.Preds[v]
		if !ok {
			return nil, fmt.Errorf("solver: unknown free predicate %s", v)
		}
		if !info.Functional || info.Arity < 1 {
			return nil, fmt.Errorf("solver: free predicate %s must be functional", v)
		}
		g.free[v] = true
		if info.ColumnKinds[info.Arity-1] == tuple.KindInt {
			g.integer[v] = true
		}
	}
	for _, v := range spec.Integral {
		g.integer[v] = true
	}
	switch {
	case spec.Maximize != "":
		g.objPred = spec.Maximize
	case spec.Minimize != "":
		g.objPred = spec.Minimize
		g.objSign = -1
	}

	if err := g.buildDomains(); err != nil {
		return nil, err
	}
	if err := g.computeDerivedLinear(); err != nil {
		return nil, err
	}
	for ci := range prog.Constraints {
		if err := g.groundConstraint(ci); err != nil {
			return nil, err
		}
	}
	if g.objPred != "" {
		if err := g.groundObjective(); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// NumVars returns the number of decision variables.
func (g *Grounding) NumVars() int { return len(g.vars) }

// Vars returns the decision-variable descriptors.
func (g *Grounding) Vars() []VarInfo { return g.vars }

// freeCtx returns an engine context in which each free predicate holds
// its key domain paired with a sentinel value, so constraint bodies that
// join on free predicates enumerate per domain key.
func (g *Grounding) freeCtx() *engine.Context {
	ctx := engine.NewContext(g.prog, g.rels, engine.Options{})
	for pred, keys := range g.domains {
		arity := g.prog.Preds[pred].Arity
		rel := relation.New(arity)
		for _, k := range keys {
			t := make(tuple.Tuple, 0, arity)
			t = append(t, k...)
			t = append(t, sentinel)
			rel = rel.Insert(t)
		}
		ctx.Set(pred, rel)
	}
	for pred, keys := range g.derivedKeys {
		arity := g.prog.Preds[pred].Arity
		rel := relation.New(arity)
		for _, k := range keys {
			t := make(tuple.Tuple, 0, arity)
			t = append(t, k...)
			t = append(t, sentinel)
			rel = rel.Insert(t)
		}
		ctx.Set(pred, rel)
	}
	return ctx
}

func (g *Grounding) varFor(pred string, key tuple.Tuple) int {
	id := pred + "\x00" + key.String()
	if i, ok := g.varIdx[id]; ok {
		return i
	}
	i := len(g.vars)
	g.varIdx[id] = i
	g.vars = append(g.vars, VarInfo{Pred: pred, Key: key.Clone()})
	g.objective = append(g.objective, 0)
	g.domains[pred] = append(g.domains[pred], key.Clone())
	return i
}

// buildDomains determines each free predicate's key domain: for every
// constraint whose head references the free predicate and whose body does
// not, the body bindings projected onto the key terms define variables
// (e.g. Product(p) -> Stock[p] >= minStock[p] creates one variable per
// product).
func (g *Grounding) buildDomains() error {
	ctx := engine.NewContext(g.prog, g.rels, engine.Options{})
	for _, k := range g.prog.Constraints {
		if g.bodyMentionsFree(k.Body) {
			continue
		}
		// Collect the free-pred references in the head.
		var refs []predRef
		for _, ha := range k.HeadAtoms {
			if g.free[ha.Name] {
				refs = append(refs, predRef{ha.Name, ha.Args})
			}
		}
		for _, hc := range k.HeadChecks {
			collectFuncGets(hc.L, g.free, &refs)
			collectFuncGets(hc.R, g.free, &refs)
		}
		if len(refs) == 0 {
			continue
		}
		err := ctx.EnumerateBindings(k.Body, nil, func(binding tuple.Tuple) bool {
			for _, r := range refs {
				arity := g.prog.Preds[r.pred].Arity
				keyLen := arity - 1
				key := make(tuple.Tuple, 0, keyLen)
				ok := true
				for i := 0; i < keyLen && i < len(r.args); i++ {
					if r.args[i] == nil {
						ok = false
						break
					}
					v, err := r.args[i].Eval(binding, nil)
					if err != nil {
						ok = false
						break
					}
					key = append(key, v)
				}
				if ok && len(key) == keyLen {
					g.varFor(r.pred, key)
				}
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	total := 0
	for _, keys := range g.domains {
		total += len(keys)
	}
	if total == 0 {
		return fmt.Errorf("solver: no domain constraints found for free predicates %v (add constraints of the form Domain(k) -> F[k] ...)", g.spec.Variables)
	}
	return nil
}

// predRef records a reference to a predicate with its argument exprs.
type predRef struct {
	pred string
	args []compiler.Expr
}

func collectFuncGets(e compiler.Expr, free map[string]bool, out *[]predRef) {
	switch e := e.(type) {
	case compiler.FuncGetExpr:
		if free[e.Name] {
			*out = append(*out, predRef{e.Name, e.Args})
		}
		for _, a := range e.Args {
			collectFuncGets(a, free, out)
		}
	case compiler.ArithExpr:
		collectFuncGets(e.L, free, out)
		collectFuncGets(e.R, free, out)
	}
}

// bodyMentionsFree reports whether a body plan joins on a free predicate.
func (g *Grounding) bodyMentionsFree(body *compiler.RulePlan) bool {
	for _, a := range body.Atoms {
		base := compiler.BaseName(a.Name)
		if g.free[base] {
			return true
		}
		if _, ok := g.derivedLinear[base]; ok {
			return true
		}
	}
	return false
}

// symbolicSlots maps each binding slot bound by a free predicate's value
// column to the atom's key slots.
type symRef struct {
	pred     string // free predicate, or "" when derived is set
	derived  string // derived-linear predicate
	keySlots []int
}

func (g *Grounding) symbolicSlots(body *compiler.RulePlan) map[int]symRef {
	out := map[int]symRef{}
	for _, a := range body.Atoms {
		base := compiler.BaseName(a.Name)
		_, isDerived := g.derivedLinear[base]
		if !g.free[base] && !isDerived {
			continue
		}
		arity := g.prog.Preds[base].Arity
		// The value column is stored column arity-1; under a permutation,
		// find the plan column reading it.
		valCol := arity - 1
		planCol := valCol
		if a.Perm != nil {
			for i, p := range a.Perm {
				if p == valCol {
					planCol = i
					break
				}
			}
		}
		keySlots := make([]int, 0, arity-1)
		for i, v := range a.Vars {
			if i == planCol {
				continue
			}
			keySlots = append(keySlots, v)
		}
		// Reorder keySlots to stored column order.
		if a.Perm != nil {
			ordered := make([]int, arity-1)
			for i, p := range a.Perm {
				if p == valCol {
					continue
				}
				ordered[p] = a.Vars[i]
			}
			keySlots = ordered
		}
		ref := symRef{keySlots: keySlots}
		if isDerived {
			ref.derived = base
		} else {
			ref.pred = base
		}
		out[a.Vars[planCol]] = ref
	}
	return out
}

// relResolver resolves functional lookups and existence checks against
// the grounding's relation contents.
type relResolver map[string]relation.Relation

// FuncValue implements compiler.Resolver.
func (r relResolver) FuncValue(name string, key tuple.Tuple) (tuple.Value, bool) {
	rel, ok := r[name]
	if !ok || rel.Arity() != len(key)+1 {
		return tuple.Value{}, false
	}
	return rel.FuncGet(key)
}

// Exists implements compiler.Resolver.
func (r relResolver) Exists(name string, pattern []tuple.Value, wild []bool) bool {
	rel, ok := r[name]
	if !ok {
		return false
	}
	return rel.MatchExists(pattern, wild)
}

// linForm is a linear expression over decision variables.
type linForm struct {
	coeffs map[int]float64
	c      float64
}

func (l linForm) add(o linForm, scale float64) linForm {
	out := linForm{coeffs: map[int]float64{}, c: l.c + scale*o.c}
	for k, v := range l.coeffs {
		out.coeffs[k] = v
	}
	for k, v := range o.coeffs {
		out.coeffs[k] += scale * v
	}
	return out
}

func (l linForm) isConst() bool { return len(l.coeffs) == 0 }

// linEval evaluates an expression to a linear form over decision
// variables, under a concrete binding with symbolic slots.
func (g *Grounding) linEval(e compiler.Expr, binding tuple.Tuple, syms map[int]symRef,
	assigns map[int]compiler.Expr, res compiler.Resolver) (linForm, error) {
	switch e := e.(type) {
	case compiler.ConstExpr:
		f, ok := e.Val.Numeric()
		if !ok {
			return linForm{}, fmt.Errorf("non-numeric constant %s in linear context", e.Val)
		}
		return linForm{coeffs: map[int]float64{}, c: f}, nil
	case compiler.VarExpr:
		if ref, ok := syms[e.Idx]; ok {
			key := make(tuple.Tuple, len(ref.keySlots))
			for i, s := range ref.keySlots {
				key[i] = binding[s]
			}
			if ref.derived != "" {
				form, ok := g.derivedLinear[ref.derived][key.String()]
				if !ok {
					return linForm{}, fmt.Errorf("no linear form for %s%s", ref.derived, key)
				}
				return form, nil
			}
			v := g.varFor(ref.pred, key)
			return linForm{coeffs: map[int]float64{v: 1}}, nil
		}
		if ae, ok := assigns[e.Idx]; ok {
			return g.linEval(ae, binding, syms, assigns, res)
		}
		f, ok := binding[e.Idx].Numeric()
		if !ok {
			return linForm{}, fmt.Errorf("non-numeric value %s in linear context", binding[e.Idx])
		}
		return linForm{coeffs: map[int]float64{}, c: f}, nil
	case compiler.FuncGetExpr:
		// Key args must be ground (no decision variables) and are
		// evaluated as plain values, not linearized.
		key := make(tuple.Tuple, len(e.Args))
		for i, a := range e.Args {
			if exprTouchesSym(a, syms, assigns) {
				return linForm{}, fmt.Errorf("free variable in functional key of %s", e.Name)
			}
			v, err := a.Eval(binding, res)
			if err != nil {
				return linForm{}, err
			}
			key[i] = v
		}
		if forms, ok := g.derivedLinear[e.Name]; ok {
			form, ok := forms[key.String()]
			if !ok {
				return linForm{}, fmt.Errorf("no linear form for %s%s", e.Name, key)
			}
			return form, nil
		}
		if g.free[e.Name] {
			v := g.varFor(e.Name, key)
			return linForm{coeffs: map[int]float64{v: 1}}, nil
		}
		v, err := e.Eval(binding, res)
		if err != nil {
			return linForm{}, err
		}
		f, ok := v.Numeric()
		if !ok {
			return linForm{}, fmt.Errorf("non-numeric functional value %s", v)
		}
		return linForm{coeffs: map[int]float64{}, c: f}, nil
	case compiler.ArithExpr:
		l, err := g.linEval(e.L, binding, syms, assigns, res)
		if err != nil {
			return linForm{}, err
		}
		r, err := g.linEval(e.R, binding, syms, assigns, res)
		if err != nil {
			return linForm{}, err
		}
		switch e.Op {
		case '+':
			return l.add(r, 1), nil
		case '-':
			return l.add(r, -1), nil
		case '*':
			switch {
			case l.isConst():
				return linForm{coeffs: scaled(r.coeffs, l.c), c: l.c * r.c}, nil
			case r.isConst():
				return linForm{coeffs: scaled(l.coeffs, r.c), c: l.c * r.c}, nil
			default:
				return linForm{}, fmt.Errorf("nonlinear product of decision variables")
			}
		case '/':
			if !r.isConst() || r.c == 0 {
				return linForm{}, fmt.Errorf("nonlinear or zero division")
			}
			return linForm{coeffs: scaled(l.coeffs, 1/r.c), c: l.c / r.c}, nil
		}
		return linForm{}, fmt.Errorf("unknown operator %c", e.Op)
	default:
		return linForm{}, fmt.Errorf("cannot linearize %T", e)
	}
}

func scaled(m map[int]float64, f float64) map[int]float64 {
	out := make(map[int]float64, len(m))
	for k, v := range m {
		out[k] = v * f
	}
	return out
}

// exprTouchesSym reports whether an expression reads a symbolic slot.
func exprTouchesSym(e compiler.Expr, syms map[int]symRef, assigns map[int]compiler.Expr) bool {
	switch e := e.(type) {
	case compiler.VarExpr:
		if _, ok := syms[e.Idx]; ok {
			return true
		}
		if ae, ok := assigns[e.Idx]; ok {
			return exprTouchesSym(ae, syms, assigns)
		}
		return false
	case compiler.ArithExpr:
		return exprTouchesSym(e.L, syms, assigns) || exprTouchesSym(e.R, syms, assigns)
	case compiler.FuncGetExpr:
		for _, a := range e.Args {
			if exprTouchesSym(a, syms, assigns) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// groundConstraint translates one integrity constraint into linear rows.
func (g *Grounding) groundConstraint(ci int) error {
	k := g.prog.Constraints[ci]
	mentions := g.bodyMentionsFree(k.Body) || g.headMentionsFree(k)
	if !mentions {
		return nil // ordinary constraint: checked by the engine, not the solver
	}
	syms := g.symbolicSlots(k.Body)
	assigns := map[int]compiler.Expr{}
	for _, a := range k.Body.Assigns {
		assigns[a.Slot] = a.E
	}
	// Safety: filters and negations must not read symbolic slots.
	for _, f := range k.Body.Filters {
		if exprTouchesSym(f.L, syms, assigns) || exprTouchesSym(f.R, syms, assigns) {
			return fmt.Errorf("solver: constraint %q filters on a free predicate value", k.Source)
		}
	}
	ctx := g.freeCtx()
	var rows []LinConstraint
	var groundErr error
	err := ctx.EnumerateBindings(k.Body, nil, func(binding tuple.Tuple) bool {
		for _, hc := range k.HeadChecks {
			if hc.Op == "!exists" {
				continue
			}
			l, err := g.linEval(hc.L, binding, syms, assigns, relResolver(g.rels))
			if err != nil {
				groundErr = fmt.Errorf("in constraint %q: %w", k.Source, err)
				return false
			}
			r, err := g.linEval(hc.R, binding, syms, assigns, relResolver(g.rels))
			if err != nil {
				groundErr = fmt.Errorf("in constraint %q: %w", k.Source, err)
				return false
			}
			diff := l.add(r, -1) // l - r  op  0
			if diff.isConst() {
				continue // no decision variables involved: engine's job
			}
			var op ConstraintOp
			switch hc.Op {
			case "<=", "<":
				op = LE
			case ">=", ">":
				op = GE
			case "=":
				op = EQ
			default:
				groundErr = fmt.Errorf("in constraint %q: cannot ground %s over free predicates", k.Source, hc.Op)
				return false
			}
			rows = append(rows, LinConstraint{Coeffs: diff.coeffs, Op: op, RHS: -diff.c})
		}
		return true
	})
	if err == nil {
		err = groundErr
	}
	if err != nil {
		return err
	}
	g.rowsByConstraint[ci] = rows
	g.inputHashes[ci] = g.hashNames(g.constraintInputNames(k))
	return nil
}

// constraintInputNames lists the data predicates a constraint's grounding
// depends on: non-free body atoms, head functional lookups, and — through
// derived-linear predicates — the inputs of their defining rules.
func (g *Grounding) constraintInputNames(k *compiler.ConstraintPlan) []string {
	set := map[string]bool{}
	for _, a := range k.Body.Atoms {
		base := compiler.BaseName(a.Name)
		if g.free[base] {
			continue
		}
		if _, ok := g.derivedLinear[base]; ok {
			for _, n := range g.derivedInputNames(base) {
				set[n] = true
			}
			continue
		}
		set[a.Name] = true
	}
	names := map[string]bool{}
	for n := range g.free {
		names[n] = true
	}
	for n := range g.derivedLinear {
		names[n] = true
	}
	var refs []predRef
	for _, hc := range k.HeadChecks {
		collectAllFuncGets(hc.L, &refs)
		collectAllFuncGets(hc.R, &refs)
	}
	for _, r := range refs {
		if g.free[r.pred] {
			continue
		}
		if _, ok := g.derivedLinear[r.pred]; ok {
			for _, n := range g.derivedInputNames(r.pred) {
				set[n] = true
			}
			continue
		}
		set[r.pred] = true
	}
	var out []string
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// derivedInputNames lists the non-free body inputs of a derived-linear
// predicate's rule.
func (g *Grounding) derivedInputNames(pred string) []string {
	var out []string
	for _, r := range g.prog.Rules {
		if r.HeadName != pred {
			continue
		}
		for _, a := range r.Atoms {
			if !g.free[compiler.BaseName(a.Name)] {
				out = append(out, a.Name)
			}
		}
	}
	return out
}

// collectAllFuncGets gathers every functional application in an expression.
func collectAllFuncGets(e compiler.Expr, out *[]predRef) {
	switch e := e.(type) {
	case compiler.FuncGetExpr:
		*out = append(*out, predRef{e.Name, e.Args})
		for _, a := range e.Args {
			collectAllFuncGets(a, out)
		}
	case compiler.ArithExpr:
		collectAllFuncGets(e.L, out)
		collectAllFuncGets(e.R, out)
	}
}

// hashNames combines the structural hashes of the named relations.
func (g *Grounding) hashNames(names []string) uint64 {
	h := uint64(1469598103934665603)
	for _, n := range names {
		if rel, ok := g.rels[n]; ok {
			h ^= rel.StructuralHash()
		}
		for i := 0; i < len(n); i++ {
			h = h*1099511628211 ^ uint64(n[i])
		}
	}
	return h
}

func (g *Grounding) headMentionsFree(k *compiler.ConstraintPlan) bool {
	names := map[string]bool{}
	for n := range g.free {
		names[n] = true
	}
	for n := range g.derivedLinear {
		names[n] = true
	}
	var refs []predRef
	for _, hc := range k.HeadChecks {
		collectFuncGets(hc.L, names, &refs)
		collectFuncGets(hc.R, names, &refs)
	}
	for _, ha := range k.HeadAtoms {
		if g.free[ha.Name] {
			return true
		}
	}
	return len(refs) > 0
}

// groundObjective linearizes the objective predicate's sum-aggregation
// rule.
func (g *Grounding) groundObjective() error {
	var rule *compiler.RulePlan
	for _, r := range g.prog.Rules {
		if r.HeadName == g.objPred {
			rule = r
			break
		}
	}
	if rule == nil {
		return fmt.Errorf("solver: objective predicate %s has no rule", g.objPred)
	}
	if rule.Agg == nil || (rule.Agg.Func != "sum" && rule.Agg.Func != "total") {
		return fmt.Errorf("solver: objective %s must be a sum aggregation", g.objPred)
	}
	if forms, ok := g.derivedLinear[g.objPred]; ok {
		// Nullary objective: its linear form was already computed.
		if form, ok := forms[(tuple.Tuple{}).String()]; ok {
			for v, c := range form.coeffs {
				g.objective[v] += g.objSign * c
			}
			g.objConst += g.objSign * form.c
			g.objHash = g.hashNames(g.objInputNames(rule))
			return nil
		}
	}
	syms := g.symbolicSlots(rule)
	assigns := map[int]compiler.Expr{}
	for _, a := range rule.Assigns {
		assigns[a.Slot] = a.E
	}
	ctx := g.freeCtx()
	var groundErr error
	argExpr := compiler.Expr(compiler.VarExpr{Idx: rule.Agg.ArgSlot})
	err := ctx.EnumerateBindings(rule, nil, func(binding tuple.Tuple) bool {
		lf, err := g.linEval(argExpr, binding, syms, assigns, relResolver(g.rels))
		if err != nil {
			groundErr = fmt.Errorf("in objective %s: %w", g.objPred, err)
			return false
		}
		for v, c := range lf.coeffs {
			g.objective[v] += g.objSign * c
		}
		g.objConst += g.objSign * lf.c
		return true
	})
	if err == nil {
		err = groundErr
	}
	if err != nil {
		return err
	}
	g.objHash = g.hashNames(g.objInputNames(rule))
	return nil
}

// objInputNames lists the objective rule's non-free input relations.
func (g *Grounding) objInputNames(rule *compiler.RulePlan) []string {
	var names []string
	for _, a := range rule.Atoms {
		if !g.free[compiler.BaseName(a.Name)] {
			names = append(names, a.Name)
		}
	}
	sort.Strings(names)
	return names
}

// Problem assembles the LP/MIP.
func (g *Grounding) Problem() *Problem {
	p := &Problem{
		NumVars:   len(g.vars),
		Objective: append([]float64(nil), g.objective...),
		Free:      make([]bool, len(g.vars)),
		Integer:   make([]bool, len(g.vars)),
	}
	for i := range p.Free {
		p.Free[i] = true
	}
	for i, v := range g.vars {
		if g.integer[v.Pred] {
			p.Integer[i] = true
		}
	}
	var cis []int
	for ci := range g.rowsByConstraint {
		cis = append(cis, ci)
	}
	sort.Ints(cis)
	for _, ci := range cis {
		p.Constraints = append(p.Constraints, g.rowsByConstraint[ci]...)
	}
	return p
}

// HasInteger reports whether any decision variable is integral (MIP).
func (g *Grounding) HasInteger() bool {
	for _, v := range g.vars {
		if g.integer[v.Pred] {
			return true
		}
	}
	return false
}

// Solve grounds nothing further: it runs the LP (or MIP when integral
// variables exist) and returns the populated free-predicate relations.
func (g *Grounding) Solve() (map[string]relation.Relation, *Solution, error) {
	p := g.Problem()
	var sol *Solution
	var err error
	if g.HasInteger() {
		sol, err = SolveMIP(p)
	} else {
		sol, err = SolveLP(p)
	}
	if err != nil {
		return nil, nil, err
	}
	if sol.Status != Optimal {
		return nil, sol, fmt.Errorf("solver: %s", sol.Status)
	}
	out := map[string]relation.Relation{}
	for pred := range g.domains {
		out[pred] = relation.New(g.prog.Preds[pred].Arity)
	}
	for i, v := range g.vars {
		var val tuple.Value
		if g.integer[v.Pred] {
			val = tuple.Int(int64(roundTo(sol.X[i])))
		} else {
			val = tuple.Float(sol.X[i])
		}
		t := make(tuple.Tuple, 0, len(v.Key)+1)
		t = append(t, v.Key...)
		t = append(t, val)
		out[v.Pred] = out[v.Pred].Insert(t)
	}
	// Undo the minimization sign on the reported objective.
	sol.Objective = g.objSign * sol.Objective
	return out, sol, nil
}

func roundTo(x float64) float64 {
	if x >= 0 {
		return float64(int64(x + 0.5))
	}
	return float64(int64(x - 0.5))
}

// Reground recomputes the grounding for new relation contents,
// incrementally: constraints (and the objective) whose input relations
// are structurally unchanged keep their rows — the paper's "the grounding
// logic incrementally maintains the input to the solver" (§2.3.1).
// It returns the number of constraints re-ground.
func (g *Grounding) Reground(rels map[string]relation.Relation) (int, error) {
	g.rels = rels
	reground := 0
	// Refresh derived-linear forms whose rule inputs changed.
	derivedChanged := false
	for pred := range g.derivedLinear {
		if g.hashNames(g.derivedInputNames(pred)) != g.derivedHashes[pred] {
			derivedChanged = true
		}
	}
	if derivedChanged {
		g.derivedLinear = map[string]map[string]linForm{}
		g.derivedKeys = map[string][]tuple.Tuple{}
		if err := g.computeDerivedLinear(); err != nil {
			return 0, err
		}
	}
	for ci, k := range g.prog.Constraints {
		if _, had := g.rowsByConstraint[ci]; !had && !g.bodyMentionsFree(k.Body) && !g.headMentionsFree(k) {
			continue
		}
		if g.inputHashes[ci] == g.hashNames(g.constraintInputNames(k)) {
			continue
		}
		delete(g.rowsByConstraint, ci)
		if err := g.groundConstraint(ci); err != nil {
			return reground, err
		}
		reground++
	}
	if g.objPred != "" {
		var rule *compiler.RulePlan
		for _, r := range g.prog.Rules {
			if r.HeadName == g.objPred {
				rule = r
				break
			}
		}
		if rule != nil && g.objHash != g.hashNames(g.objInputNames(rule)) {
			for i := range g.objective {
				g.objective[i] = 0
			}
			g.objConst = 0
			if err := g.groundObjective(); err != nil {
				return reground, err
			}
			reground++
		}
	}
	return reground, nil
}

// Describe renders the grounded problem for diagnostics.
func (g *Grounding) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d variables, %d constraints", len(g.vars), len(g.Problem().Constraints))
	return b.String()
}

// computeDerivedLinear finds derived sum-aggregation predicates whose
// bodies read free predicates (e.g. totalShelf over Stock) and computes
// the linear form of their value per group key, so constraints and
// objectives over those predicates linearize through substitution.
func (g *Grounding) computeDerivedLinear() error {
	for _, r := range g.prog.Rules {
		if r.Agg == nil || (r.Agg.Func != "sum" && r.Agg.Func != "total") {
			continue
		}
		directFree := false
		for _, a := range r.Atoms {
			if g.free[compiler.BaseName(a.Name)] {
				directFree = true
				break
			}
		}
		if !directFree {
			continue
		}
		syms := g.symbolicSlots(r)
		assigns := map[int]compiler.Expr{}
		for _, a := range r.Assigns {
			assigns[a.Slot] = a.E
		}
		for _, f := range r.Filters {
			if exprTouchesSym(f.L, syms, assigns) || exprTouchesSym(f.R, syms, assigns) {
				return fmt.Errorf("solver: rule %q filters on a free predicate value", r.Source)
			}
		}
		forms := map[string]linForm{}
		var keys []tuple.Tuple
		ctx := g.freeCtx()
		argExpr := compiler.Expr(compiler.VarExpr{Idx: r.Agg.ArgSlot})
		var groundErr error
		err := ctx.EnumerateBindings(r, nil, func(binding tuple.Tuple) bool {
			key := make(tuple.Tuple, len(r.HeadExprs))
			for i, e := range r.HeadExprs {
				v, err := e.Eval(binding, nil)
				if err != nil {
					groundErr = err
					return false
				}
				key[i] = v
			}
			lf, err := g.linEval(argExpr, binding, syms, assigns, relResolver(g.rels))
			if err != nil {
				groundErr = fmt.Errorf("in rule %q: %w", r.Source, err)
				return false
			}
			ks := key.String()
			prev, had := forms[ks]
			if !had {
				prev = linForm{coeffs: map[int]float64{}}
				keys = append(keys, key.Clone())
			}
			forms[ks] = prev.add(lf, 1)
			return true
		})
		if err == nil {
			err = groundErr
		}
		if err != nil {
			return err
		}
		g.derivedLinear[r.HeadName] = forms
		g.derivedKeys[r.HeadName] = keys
		g.derivedHashes[r.HeadName] = g.hashNames(g.derivedInputNames(r.HeadName))
	}
	return nil
}
