package durable_test

import (
	"fmt"
	"math/rand"
	"testing"

	"logicblox/internal/core"
	"logicblox/internal/durable"
	"logicblox/internal/durable/faultfs"
)

// The crash-recovery property test. One workload — a block install, a
// stream of recorded exec commits, periodic checkpoints (which rotate
// snapshot generations and truncate the journal) — runs against the
// fault-injection filesystem. A fault-free probe run counts the
// filesystem operations; then the workload is re-run crashing at every
// single operation index, recovery runs over the surviving state, and
// the recovered database must contain exactly the acknowledged commits:
// none lost (durability), none invented (no phantoms).

const (
	crashCommits    = 10
	crashCheckpoint = 3 // checkpoint every 3rd commit: rotation under fire
	crashDataDir    = "data"
)

type workloadResult struct {
	ackedBlock bool  // the addblock commit was acknowledged
	acked      []int // values whose exec commit was acknowledged
	attempted  []int // values whose exec commit was attempted, in order
}

// runCrashWorkload drives the workload until the filesystem gives out.
// Every error is tolerated — after the crash point fires, everything
// fails — and only acknowledged commits are recorded.
func runCrashWorkload(fs *faultfs.FS) workloadResult {
	var res workloadResult
	opts := durable.Options{FS: fs, Generations: 2, CheckpointEvery: -1, CheckpointInterval: -1}
	store, err := durable.Open(crashDataDir, opts)
	if err != nil {
		return res
	}
	db, err := store.Recover(freshDB)
	if err != nil {
		return res
	}
	db.SetCommitHook(store.LogCommit)

	ws, err := db.Workspace(core.DefaultBranch)
	if err != nil {
		return res
	}
	const blockSrc = `q(x, y) <- p(x), p(y), x < y.`
	next, err := ws.AddBlock("views", blockSrc)
	if err == nil {
		if db.CommitIfRecorded(core.DefaultBranch, ws, next, core.CommitRecord{Kind: "addblock", Name: "views", Src: blockSrc}) == nil {
			res.ackedBlock = true
		}
	}

	for v := 0; v < crashCommits; v++ {
		res.attempted = append(res.attempted, v)
		if commitValue(db, v) == nil {
			res.acked = append(res.acked, v)
		}
		if (v+1)%crashCheckpoint == 0 {
			// Errors ignored: a failed checkpoint must never lose
			// journaled commits (that is part of the property).
			_ = store.Checkpoint(db.SaveSnapshot)
		}
	}
	return res
}

// recoverAfterCrash reopens the directory post-crash and recovers.
func recoverAfterCrash(t *testing.T, fs *faultfs.FS) *core.Database {
	t.Helper()
	store, err := durable.Open(crashDataDir, durable.Options{FS: fs, Generations: 2})
	if err != nil {
		t.Fatalf("post-crash Open: %v", err)
	}
	db, err := store.Recover(freshDB)
	if err != nil {
		t.Fatalf("post-crash Recover: %v", err)
	}
	return db
}

func TestCrashRecoveryEveryPoint(t *testing.T) {
	probe := faultfs.New()
	full := runCrashWorkload(probe)
	total := probe.Ops()
	if len(full.acked) != crashCommits || !full.ackedBlock {
		t.Fatalf("fault-free run acked %d/%d commits (block %v)", len(full.acked), crashCommits, full.ackedBlock)
	}
	if total < 50 {
		t.Fatalf("workload performed only %d fs operations; crash sweep would be trivial", total)
	}

	for point := 1; point <= total; point++ {
		fs := faultfs.New()
		fs.SetCrashAt(point)
		res := runCrashWorkload(fs)
		fs.Crash()
		db := recoverAfterCrash(t, fs)
		got := relationInts(t, db)
		if !equalInts(got, res.acked) {
			t.Fatalf("crash at op %d: recovered %v, acked %v", point, got, res.acked)
		}
		// The derived view must have been re-derived over the recovered
		// base data (replay goes through the normal transaction path).
		if res.ackedBlock && len(res.acked) >= 2 {
			ws, err := db.Workspace(core.DefaultBranch)
			if err != nil {
				t.Fatal(err)
			}
			n := len(res.acked)
			if q := ws.Relation("q"); q.Len() != n*(n-1)/2 {
				t.Fatalf("crash at op %d: derived q has %d tuples, want %d", point, q.Len(), n*(n-1)/2)
			}
		}
	}
}

// Torn-write mode: at a random crash point, unsynced appends may persist
// a partial prefix and unsynced directory entries may or may not
// survive. Acknowledged commits must all survive (they were fsynced);
// beyond them, at most the single commit that was in flight at the
// crash may surface — never anything else, and never a gap.
func TestCrashRecoveryTornWrites(t *testing.T) {
	probe := faultfs.New()
	runCrashWorkload(probe)
	total := probe.Ops()
	rng := rand.New(rand.NewSource(42))

	for trial := 0; trial < 60; trial++ {
		point := 1 + rng.Intn(total)
		fs := faultfs.New()
		fs.SetCrashAt(point)
		res := runCrashWorkload(fs)
		fs.CrashTorn(rng)
		db := recoverAfterCrash(t, fs)
		got := relationInts(t, db)

		// got must be a contiguous prefix 0..k-1 of the attempted values
		// with len(acked) <= k <= len(acked)+1.
		for i, v := range got {
			if v != i {
				t.Fatalf("crash at op %d (trial %d): recovered %v has a gap", point, trial, got)
			}
		}
		if len(got) < len(res.acked) || len(got) > len(res.acked)+1 {
			t.Fatalf("crash at op %d (trial %d): recovered %v, acked %v — lost or phantom commits",
				point, trial, got, res.acked)
		}
	}
}

// Crashes during recovery itself (the journal-tail rewrite after a torn
// append) must not lose acknowledged commits either: recover, crash the
// recovery, recover again.
func TestCrashDuringRecovery(t *testing.T) {
	fs := faultfs.New()
	fs.SetCrashAt(55) // somewhere mid-workload
	res := runCrashWorkload(fs)
	fs.Crash()

	for point := 1; point <= 12; point++ {
		fs2 := faultfs.New()
		fs2.SetCrashAt(55)
		res2 := runCrashWorkload(fs2)
		fs2.Crash()
		if !equalInts(res2.acked, res.acked) {
			t.Fatalf("workload not deterministic: %v vs %v", res2.acked, res.acked)
		}
		fs2.SetCrashAt(point)
		store, err := durable.Open(crashDataDir, durable.Options{FS: fs2, Generations: 2})
		if err == nil {
			db, rerr := store.Recover(freshDB)
			if rerr == nil {
				// Recovery finished before the crash point fired; the
				// result must already be correct.
				if got := relationInts(t, db); !equalInts(got, res.acked) {
					t.Fatalf("recovery crash point %d: recovered %v, acked %v", point, got, res.acked)
				}
			}
		}
		fs2.Crash()
		db := recoverAfterCrash(t, fs2)
		if got := relationInts(t, db); !equalInts(got, res.acked) {
			t.Fatalf("second recovery after crash point %d: recovered %v, acked %v", point, got, res.acked)
		}
	}
}

// Short writes and transient errors reject the affected commit cleanly;
// the store keeps accepting commits afterwards and recovery stays exact.
func TestTransientFaults(t *testing.T) {
	for name, arm := range map[string]func(*faultfs.FS, int){
		"error":       func(fs *faultfs.FS, op int) { fs.FailAt(op, fmt.Errorf("transient io error")) },
		"short-write": func(fs *faultfs.FS, op int) { fs.ShortWriteAt(op) },
	} {
		t.Run(name, func(t *testing.T) {
			probe := faultfs.New()
			full := runCrashWorkload(probe)
			total := probe.Ops()
			for point := total / 2; point < total/2+8 && point <= total; point++ {
				fs := faultfs.New()
				arm(fs, point)
				res := runCrashWorkload(fs)
				if len(res.acked) < len(full.acked)-2 {
					t.Fatalf("fault at op %d rejected %d commits, want at most 2",
						point, len(full.acked)-len(res.acked))
				}
				fs.Crash()
				db := recoverAfterCrash(t, fs)
				got := relationInts(t, db)
				if !equalInts(got, res.acked) {
					t.Fatalf("fault at op %d: recovered %v, acked %v", point, got, res.acked)
				}
			}
		})
	}
}
