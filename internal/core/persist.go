package core

import (
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"logicblox/internal/ast"
	"logicblox/internal/optimizer"
	"logicblox/internal/parser"
	"logicblox/internal/relation"
	"logicblox/internal/tuple"
)

// Snapshot persistence (paper §3.1: "our internal framework transparently
// persists, restores, and garbage-collects these objects", and T4 #5:
// recovery without a transaction log — a snapshot of the immutable state
// is all there is). A snapshot records every branch head's logic and base
// data; derived predicates are re-materialized on restore, which doubles
// as recovery: there is no log to replay.

type valueDTO struct {
	Kind uint8
	I    int64
	F    float64
	S    string
	E    [2]uint32
}

type snapshotWorkspace struct {
	Blocks map[string]string
	Base   map[string][][]valueDTO
	Arity  map[string]int
	// Adaptive records that the branch ran with the feedback-driven
	// adaptive optimizer; Plans carries its plan store's learned orders
	// (keyed by structural rule fingerprints, which survive restarts) so
	// restored workspaces reuse them instead of re-sampling. Gob leaves
	// both zero when restoring pre-plan-store snapshots.
	Adaptive bool
	Plans    []optimizer.SavedPlan
}

type snapshotDB struct {
	Version  int
	Branches map[string]snapshotWorkspace
	// Seq is the database's operation sequence number at snapshot time;
	// journal replay (internal/durable) resumes after it. Gob leaves it
	// zero when restoring pre-journal snapshots.
	Seq uint64
}

func valueToDTO(v tuple.Value) valueDTO {
	switch v.Kind() {
	case tuple.KindBool:
		i := int64(0)
		if v.AsBool() {
			i = 1
		}
		return valueDTO{Kind: 1, I: i}
	case tuple.KindInt:
		return valueDTO{Kind: 2, I: v.AsInt()}
	case tuple.KindFloat:
		return valueDTO{Kind: 3, F: v.AsFloat()}
	case tuple.KindString:
		return valueDTO{Kind: 4, S: v.AsString()}
	case tuple.KindEntity:
		return valueDTO{Kind: 5, E: [2]uint32{v.EntityType(), v.EntityOrdinal()}}
	default:
		return valueDTO{Kind: 0}
	}
}

func dtoToValue(d valueDTO) tuple.Value {
	switch d.Kind {
	case 1:
		return tuple.Bool(d.I != 0)
	case 2:
		return tuple.Int(d.I)
	case 3:
		return tuple.Float(d.F)
	case 4:
		return tuple.String(d.S)
	case 5:
		return tuple.Entity(d.E[0], d.E[1])
	default:
		return tuple.Null
	}
}

// snapshot captures the workspace's durable state.
func (ws *Workspace) snapshot() snapshotWorkspace {
	out := snapshotWorkspace{
		Blocks: map[string]string{},
		Base:   map[string][][]valueDTO{},
		Arity:  map[string]int{},
	}
	ws.blocks.Range(func(name, src string) bool {
		out.Blocks[name] = src
		return true
	})
	ws.base.Range(func(pred string, rel relation.Relation) bool {
		rows := make([][]valueDTO, 0, rel.Len())
		rel.ForEach(func(t tuple.Tuple) bool {
			row := make([]valueDTO, len(t))
			for i, v := range t {
				row[i] = valueToDTO(v)
			}
			rows = append(rows, row)
			return true
		})
		out.Base[pred] = rows
		out.Arity[pred] = rel.Arity()
		return true
	})
	if ws.plans != nil {
		out.Adaptive = true
		out.Plans = ws.plans.Export()
	}
	return out
}

// RestoreWorkspace rebuilds a workspace from block sources and base data:
// all blocks are compiled together, base predicates set, derived
// predicates re-materialized, and integrity constraints verified.
func RestoreWorkspace(blocks map[string]string, base map[string][]tuple.Tuple, arity map[string]int) (*Workspace, error) {
	ws := NewWorkspace()
	var names []string
	for n := range blocks {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		prog, err := parseBlock(n, blocks[n])
		if err != nil {
			return nil, err
		}
		ws.blocks = ws.blocks.Set(n, blocks[n])
		ws.parsed = ws.parsed.Set(n, prog)
	}
	compiled, err := compileBlocks(ws.parsedBlocks())
	if err != nil {
		return nil, err
	}
	ws.prog = compiled
	dirty := map[string]bool{}
	for pred, rows := range base {
		a := arity[pred]
		if a == 0 && len(rows) > 0 {
			a = len(rows[0])
		}
		rel := relation.FromTuples(a, rows)
		ws.base = ws.base.Set(pred, rel)
		dirty[pred] = true
	}
	for _, name := range compiled.IDBPreds {
		dirty[name] = true
	}
	out, err := ws.rederive(context.Background(), dirty, nil)
	if err != nil {
		return nil, err
	}
	if err := out.checkConstraints(); err != nil {
		return nil, err
	}
	return out, nil
}

// Save writes a snapshot of every branch head.
func (db *Database) Save(w io.Writer) error {
	_, err := db.SaveSnapshot(w)
	return err
}

// SaveSnapshot is Save returning the operation sequence number the
// snapshot covers; both are captured under the same read lock, so the
// snapshot contains exactly the commits numbered ≤ seq. The durability
// layer names snapshot generations by this seq and replays only journal
// records after it.
func (db *Database) SaveSnapshot(w io.Writer) (seq uint64, err error) {
	db.mu.RLock()
	snap := snapshotDB{Version: 1, Branches: map[string]snapshotWorkspace{}, Seq: db.seq}
	for name, ws := range db.branches {
		snap.Branches[name] = ws.snapshot()
	}
	db.mu.RUnlock()
	return snap.Seq, gob.NewEncoder(w).Encode(snap)
}

// LoadDatabase restores a database from a snapshot written by Save.
// Derived predicates are re-materialized from the restored logic and
// data; the version history restarts at the restored heads. Truncated
// or bit-flipped input — a gob stream that fails to decode, or one that
// decodes into state that cannot be re-derived — is reported as
// ErrCorruptSnapshot, so callers can fall back to an older generation
// or surface a clean error instead of a raw decoder message.
func LoadDatabase(r io.Reader) (*Database, error) {
	var snap snapshotDB
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: %w: decode: %v", ErrCorruptSnapshot, err)
	}
	if snap.Version != 1 {
		// Unreadable for this build either way — typed so recovery can
		// fall back to an older generation and CLIs report it cleanly.
		return nil, fmt.Errorf("core: %w: unsupported snapshot version %d", ErrCorruptSnapshot, snap.Version)
	}
	db := &Database{branches: map[string]*Workspace{}, seq: snap.Seq}
	var names []string
	for n := range snap.Branches {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		sw := snap.Branches[name]
		base := map[string][]tuple.Tuple{}
		for pred, rows := range sw.Base {
			ts := make([]tuple.Tuple, len(rows))
			for i, row := range rows {
				t := make(tuple.Tuple, len(row))
				for j, d := range row {
					t[j] = dtoToValue(d)
				}
				ts[i] = t
			}
			base[pred] = ts
		}
		ws, err := RestoreWorkspace(sw.Blocks, base, sw.Arity)
		if err != nil {
			// A snapshot whose recorded logic no longer parses, compiles
			// or satisfies its constraints is corrupt: Save only writes
			// states that passed all three.
			return nil, fmt.Errorf("core: %w: restoring branch %s: %v", ErrCorruptSnapshot, name, err)
		}
		if sw.Adaptive {
			// Re-arm the adaptive optimizer with the learned orders. One
			// nuance versus the live process: a plan store is shared by
			// every branch derived from the workspace it was attached to,
			// but the snapshot records it per branch head, so after a
			// restore each branch continues with its own copy.
			ws = ws.WithAdaptiveOptimizer(true)
			ws.plans.Seed(sw.Plans)
		}
		db.branches[name] = ws
		db.history = append(db.history, VersionEntry{Branch: name, Workspace: ws})
	}
	if _, ok := db.branches[DefaultBranch]; !ok {
		ws := NewWorkspace()
		db.branches[DefaultBranch] = ws
		db.history = append(db.history, VersionEntry{Branch: DefaultBranch, Workspace: ws})
	}
	return db, nil
}

// parseBlock parses one block's source with context in errors.
func parseBlock(name, src string) (*ast.Program, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("block %s: %w", name, err)
	}
	return prog, nil
}
