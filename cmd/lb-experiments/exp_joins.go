package main

import (
	"fmt"
	"time"

	"logicblox/internal/graphgen"
	"logicblox/internal/joins"
	"logicblox/internal/lftj"
	"logicblox/internal/relation"
	"logicblox/internal/tuple"
)

// runFig3 replays the paper's Figure 3: the unary leapfrog join of
// A = {0,1,3,4,5,6,7,8,9,11}, B = {0,2,6,7,8,9}, C = {2,4,5,8,10},
// printing the result and the recorded sensitivity intervals.
func runFig3(bool) {
	mk := func(vals ...int64) relation.Relation {
		r := relation.New(1)
		for _, v := range vals {
			r = r.Insert(tuple.Ints(v))
		}
		return r
	}
	a := mk(0, 1, 3, 4, 5, 6, 7, 8, 9, 11)
	b := mk(0, 2, 6, 7, 8, 9)
	c := mk(2, 4, 5, 8, 10)
	idx := lftj.NewSensitivityIndex()
	j, err := lftj.NewJoin(1, []lftj.Atom{
		{Pred: "A", Iter: a.Iterator(), Vars: []int{0}},
		{Pred: "B", Iter: b.Iterator(), Vars: []int{0}},
		{Pred: "C", Iter: c.Iterator(), Vars: []int{0}},
	}, idx)
	if err != nil {
		panic(err)
	}
	fmt.Printf("A ∩ B ∩ C = %v\n", j.Collect())
	for _, pred := range idx.Preds() {
		fmt.Printf("sensitivity %s: %v\n", pred, idx.Intervals(pred))
	}
	fmt.Println("paper check: inserting C(3) affects the run?", idx.Affected("C", tuple.Ints(3)),
		"— deleting C(4)?", idx.Affected("C", tuple.Ints(4)))
}

// lftjTriangles counts 3-cliques with leapfrog triejoin.
func lftjTriangles(e relation.Relation) int {
	j, err := lftj.NewJoin(3, []lftj.Atom{
		{Pred: "E1", Iter: e.Iterator(), Vars: []int{0, 1}},
		{Pred: "E2", Iter: e.Iterator(), Vars: []int{1, 2}},
		{Pred: "E3", Iter: e.Iterator(), Vars: []int{0, 2}},
	}, nil)
	if err != nil {
		panic(err)
	}
	return j.Count()
}

// runFig5 reproduces the shape of the paper's Figure 5: runtime of the
// 3-clique query over growing prefixes of a power-law graph, LogicBlox
// (LFTJ) against binary hash-join and sort-merge plans standing in for
// the traditional comparators.
func runFig5(quick bool) {
	sizes := []int{1000, 3000, 10000, 30000, 100000, 300000, 1000000}
	if quick {
		sizes = []int{1000, 3000, 10000}
	}
	maxN := sizes[len(sizes)-1]
	// One large graph; prefixes of its edge list emulate the paper's
	// "increasingly larger subsets of the LiveJournal dataset".
	all := graphgen.Canonical(graphgen.PreferentialAttachment(maxN/3, 3, 2015))
	fmt.Printf("%-10s %-10s %-12s %-12s %-12s %-10s\n",
		"edges", "triangles", "lftj", "hashjoin", "mergejoin", "speedup")
	for _, n := range sizes {
		if n > len(all) {
			n = len(all)
		}
		e := graphgen.ToRelation(all[:n])
		t0 := time.Now()
		tri := lftjTriangles(e)
		dLftj := time.Since(t0)

		t0 = time.Now()
		h := joins.TriangleCountHash(e)
		dHash := time.Since(t0)

		t0 = time.Now()
		m := joins.TriangleCountMerge(e)
		dMerge := time.Since(t0)

		if h != tri || m != tri {
			panic(fmt.Sprintf("triangle count mismatch: lftj=%d hash=%d merge=%d", tri, h, m))
		}
		fmt.Printf("%-10d %-10d %-12v %-12v %-12v %.1fx\n",
			n, tri, dLftj.Round(time.Microsecond), dHash.Round(time.Microsecond),
			dMerge.Round(time.Microsecond), float64(dHash)/float64(dLftj))
	}
	fmt.Println("shape check: LFTJ's advantage grows with edge count (the paper's Figure 5 gap).")
}

// runWCO demonstrates worst-case optimality (paper §3.2): on Loomis–
// Whitney instances the pairwise-join plan materializes a Θ(N²)
// intermediate while LFTJ stays within the AGM output bound Θ(N^{3/2}).
func runWCO(quick bool) {
	sizes := []int{200, 400, 800}
	if quick {
		sizes = []int{100, 200}
	}
	fmt.Printf("%-8s %-10s %-12s %-12s %-14s\n", "n", "output", "lftj", "hashjoin", "intermediate")
	best := func(f func()) time.Duration {
		bestD := time.Duration(1 << 62)
		for r := 0; r < 3; r++ {
			t0 := time.Now()
			f()
			if d := time.Since(t0); d < bestD {
				bestD = d
			}
		}
		return bestD
	}
	for _, n := range sizes {
		// R(a,b), S(b,c), T(a,c) with R = {0}×[n] ∪ [n]×{0} etc.: every
		// pairwise join is quadratic, the triangle output is linear.
		r := relation.New(2)
		for i := int64(0); i < int64(n); i++ {
			r = r.Insert(tuple.Ints(0, i))
			r = r.Insert(tuple.Ints(i, 0))
		}
		s, t := r, r

		var out int
		dLftj := best(func() {
			j, err := lftj.NewJoin(3, []lftj.Atom{
				{Pred: "R", Iter: r.Iterator(), Vars: []int{0, 1}},
				{Pred: "S", Iter: s.Iterator(), Vars: []int{1, 2}},
				{Pred: "T", Iter: t.Iterator(), Vars: []int{0, 2}},
			}, nil)
			if err != nil {
				panic(err)
			}
			out = j.Count()
		})
		var matched, intermediate int
		dHash := best(func() {
			paths := joins.HashJoin(r, s, []int{1}, []int{0})
			intermediate = len(paths)
			matched = 0
			probe := make(tuple.Tuple, 2)
			for _, p := range paths {
				probe[0], probe[1] = p[0], p[3]
				if t.Contains(probe) {
					matched++
				}
			}
		})
		if matched != out {
			panic("output mismatch")
		}
		fmt.Printf("%-8d %-10d %-12v %-12v %-14d\n",
			n, out, dLftj.Round(time.Microsecond), dHash.Round(time.Microsecond), intermediate)
	}
	fmt.Println("shape check: the binary plan's intermediate grows quadratically; LFTJ never materializes it.")
}
