// Package faultfs is a fault-injection filesystem for crash-recovery
// testing. It implements durable.FS in memory while modeling what real
// filesystems actually guarantee (cf. Pillai et al., OSDI '14 — "All
// File Systems Are Not Created Equal"):
//
//   - file writes land in a volatile buffer; only File.Sync makes them
//     part of the persisted image;
//   - namespace changes (create, rename, remove) are volatile until
//     SyncDir on the containing directory;
//   - a crash discards volatile state — or, in torn mode, persists a
//     random prefix of unsynced appends and a random subset of unsynced
//     namespace changes, simulating torn writes and reordering.
//
// Every mutating operation (Create, Write, Sync, Rename, Remove,
// SyncDir, MkdirAll) is a numbered crash point. Tests count a fault-free
// run's operations, then re-run the workload crashing at every index:
// the operation at the crash point fails without taking effect and the
// filesystem refuses all further work until Crash or CrashTorn resets it
// to the (possibly torn) persisted image, over which recovery runs.
// FailAt and ShortWriteAt inject transient errors and short writes
// without crashing.
package faultfs

import (
	"errors"
	"io"
	iofs "io/fs"
	"math/rand"
	"path/filepath"
	"sort"
	"sync"

	"logicblox/internal/durable"
)

// ErrCrashed is returned by every operation after the crash point fires
// (and by operations on handles that survived a crash).
var ErrCrashed = errors.New("faultfs: crashed")

// FS is the crash-simulating filesystem. The zero value is not usable;
// call New.
type FS struct {
	mu sync.Mutex
	// names is the volatile namespace (what a running process sees);
	// pnames is the persisted namespace (what survives a crash). Both
	// map full paths to shared inodes.
	names  map[string]*inode
	pnames map[string]*inode
	dirs   map[string]bool

	ops     int
	crashAt int
	crashed bool
	gen     int // bumped on crash; stale handles fail
	errAt   map[int]error
	shortAt map[int]bool
}

type inode struct {
	data  []byte // volatile contents
	pdata []byte // contents as of the last Sync
}

// New returns an empty filesystem with no faults armed.
func New() *FS {
	return &FS{
		names:   map[string]*inode{},
		pnames:  map[string]*inode{},
		dirs:    map[string]bool{"/": true, ".": true},
		errAt:   map[int]error{},
		shortAt: map[int]bool{},
	}
}

// Ops returns the number of mutating operations performed so far. Run
// the workload once fault-free to size a crash-point sweep.
func (f *FS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// SetCrashAt arms the crash point: mutating operation number n (1-based,
// counted from now if the counter was reset) fails without taking
// effect, and every operation after it fails with ErrCrashed. n <= 0
// disarms.
func (f *FS) SetCrashAt(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashAt = n
}

// FailAt injects a transient error: mutating operation n fails with err
// (not applied), but the filesystem keeps working afterwards.
func (f *FS) FailAt(n int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.errAt[n] = err
}

// ShortWriteAt makes write operation n persist only half its buffer
// volatile-side before failing — a short write the caller sees as an
// error mid-file.
func (f *FS) ShortWriteAt(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.shortAt[n] = true
}

// step gates one mutating operation. Callers hold f.mu.
func (f *FS) step() error {
	if f.crashed {
		return ErrCrashed
	}
	f.ops++
	if err, ok := f.errAt[f.ops]; ok {
		return err
	}
	if f.crashAt > 0 && f.ops >= f.crashAt {
		f.crashed = true
		return ErrCrashed
	}
	return nil
}

// Crash simulates a clean power failure: all volatile state (unsynced
// file contents, unsynced namespace changes) is discarded, leaving
// exactly the persisted image. The filesystem is usable again for
// recovery; handles opened before the crash fail forever.
func (f *FS) Crash() { f.crash(nil) }

// CrashTorn is Crash with realistic nondeterminism: each unsynced
// append may persist a random prefix (a torn write, which checksums
// must catch) and each unsynced namespace change may independently
// persist or not (metadata reordering).
func (f *FS) CrashTorn(rng *rand.Rand) { f.crash(rng) }

func (f *FS) crash(rng *rand.Rand) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if rng != nil {
		// Maybe-persist unsynced namespace changes. Renames stay atomic
		// (the entry moves wholly or not at all), matching the rename
		// guarantee the durability layer relies on.
		for p, ino := range f.names {
			if _, ok := f.pnames[p]; !ok && rng.Intn(2) == 0 {
				f.pnames[p] = ino
			}
		}
		for p := range f.pnames {
			if _, ok := f.names[p]; !ok && rng.Intn(2) == 0 {
				delete(f.pnames, p)
			}
		}
		// Maybe-persist a prefix of unsynced appends.
		for _, ino := range f.pnames {
			if len(ino.data) > len(ino.pdata) && prefixEqual(ino.data, ino.pdata) {
				extra := rng.Intn(len(ino.data) - len(ino.pdata) + 1)
				ino.pdata = append(ino.pdata, ino.data[len(ino.pdata):len(ino.pdata)+extra]...)
			}
		}
	}
	names := make(map[string]*inode, len(f.pnames))
	for p, ino := range f.pnames {
		ino.data = append([]byte(nil), ino.pdata...)
		names[p] = ino
	}
	f.names = names
	f.crashed = false
	f.crashAt = 0
	f.ops = 0
	f.gen++
	f.errAt = map[int]error{}
	f.shortAt = map[int]bool{}
}

func prefixEqual(data, prefix []byte) bool {
	if len(data) < len(prefix) {
		return false
	}
	for i := range prefix {
		if data[i] != prefix[i] {
			return false
		}
	}
	return true
}

func notExist(op, path string) error {
	return &iofs.PathError{Op: op, Path: path, Err: iofs.ErrNotExist}
}

// --- durable.FS ---

func (f *FS) Create(name string) (durable.File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.step(); err != nil {
		return nil, err
	}
	ino, ok := f.names[name]
	if ok {
		ino.data = nil // truncate (volatile; persisted content unchanged)
	} else {
		ino = &inode{}
		f.names[name] = ino
	}
	return &file{fs: f, ino: ino, gen: f.gen, writable: true}, nil
}

func (f *FS) OpenRead(name string) (durable.File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	ino, ok := f.names[name]
	if !ok {
		return nil, notExist("open", name)
	}
	return &file{fs: f, ino: ino, gen: f.gen}, nil
}

func (f *FS) OpenAppend(name string) (durable.File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.step(); err != nil {
		return nil, err
	}
	ino, ok := f.names[name]
	if !ok {
		ino = &inode{}
		f.names[name] = ino
	}
	return &file{fs: f, ino: ino, gen: f.gen, writable: true}, nil
}

func (f *FS) Rename(oldname, newname string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.step(); err != nil {
		return err
	}
	ino, ok := f.names[oldname]
	if !ok {
		return notExist("rename", oldname)
	}
	delete(f.names, oldname)
	f.names[newname] = ino
	return nil
}

func (f *FS) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.step(); err != nil {
		return err
	}
	if _, ok := f.names[name]; !ok {
		return notExist("remove", name)
	}
	delete(f.names, name)
	return nil
}

func (f *FS) ReadDir(dir string) ([]string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	clean := filepath.Clean(dir)
	if !f.dirs[clean] {
		return nil, notExist("readdir", dir)
	}
	var names []string
	for p := range f.names {
		if filepath.Dir(p) == clean {
			names = append(names, filepath.Base(p))
		}
	}
	sort.Strings(names)
	return names, nil
}

// SyncDir persists the namespace for entries directly in dir: creations
// and renames become crash-durable, removals final.
func (f *FS) SyncDir(dir string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.step(); err != nil {
		return err
	}
	clean := filepath.Clean(dir)
	for p, ino := range f.names {
		if filepath.Dir(p) == clean {
			f.pnames[p] = ino
		}
	}
	for p := range f.pnames {
		if filepath.Dir(p) != clean {
			continue
		}
		if _, ok := f.names[p]; !ok {
			delete(f.pnames, p)
		}
	}
	return nil
}

func (f *FS) MkdirAll(dir string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.step(); err != nil {
		return err
	}
	clean := filepath.Clean(dir)
	for {
		f.dirs[clean] = true
		parent := filepath.Dir(clean)
		if parent == clean {
			return nil
		}
		clean = parent
	}
}

// file is an open handle. Reads snapshot nothing — they see the live
// volatile contents, like a real fd.
type file struct {
	fs       *FS
	ino      *inode
	gen      int
	pos      int
	writable bool
}

// stale reports whether the handle predates a crash. Callers hold fs.mu.
func (h *file) stale() bool { return h.gen != h.fs.gen }

func (h *file) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.stale() || h.fs.crashed {
		return 0, ErrCrashed
	}
	if h.pos >= len(h.ino.data) {
		return 0, io.EOF
	}
	n := copy(p, h.ino.data[h.pos:])
	h.pos += n
	return n, nil
}

func (h *file) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.stale() {
		return 0, ErrCrashed
	}
	if !h.writable {
		return 0, errors.New("faultfs: file not open for writing")
	}
	if err := h.fs.step(); err != nil {
		return 0, err
	}
	if h.fs.shortAt[h.fs.ops] {
		n := len(p) / 2
		h.ino.data = append(h.ino.data, p[:n]...)
		return n, errors.New("faultfs: short write")
	}
	h.ino.data = append(h.ino.data, p...)
	return len(p), nil
}

func (h *file) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.stale() {
		return ErrCrashed
	}
	if err := h.fs.step(); err != nil {
		return err
	}
	h.ino.pdata = append([]byte(nil), h.ino.data...)
	return nil
}

func (h *file) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.stale() || h.fs.crashed {
		return ErrCrashed
	}
	return nil
}
