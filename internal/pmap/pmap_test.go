package pmap

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestMapBasics(t *testing.T) {
	m := NewMap[int]()
	m1 := m.Set("a", 1).Set("b", 2)
	if v, ok := m1.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d,%v", v, ok)
	}
	if m.Len() != 0 {
		t.Fatalf("original map mutated")
	}
	m2 := m1.Delete("a")
	if m2.Contains("a") || !m1.Contains("a") {
		t.Fatalf("delete semantics wrong")
	}
	if got := m1.Keys(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Keys = %v", got)
	}
}

func TestMapRangeOrderAndEarlyStop(t *testing.T) {
	m := NewMap[int]().Set("c", 3).Set("a", 1).Set("b", 2)
	var ks []string
	m.Range(func(k string, v int) bool {
		ks = append(ks, k)
		return k != "b"
	})
	if len(ks) != 2 || ks[0] != "a" || ks[1] != "b" {
		t.Fatalf("Range visited %v", ks)
	}
}

func TestMapDiff(t *testing.T) {
	old := NewMap[int]().Set("x", 1).Set("y", 2).Set("z", 3)
	upd := old.Delete("y").Set("w", 9).Set("z", 30)
	var del, ins, chg []string
	old.Diff(upd, func(a, b int) bool { return a == b },
		func(k string, _ int) { del = append(del, k) },
		func(k string, _ int) { ins = append(ins, k) },
		func(k string, _, _ int) { chg = append(chg, k) })
	if len(del) != 1 || del[0] != "y" {
		t.Fatalf("del = %v", del)
	}
	if len(ins) != 1 || ins[0] != "w" {
		t.Fatalf("ins = %v", ins)
	}
	if len(chg) != 1 || chg[0] != "z" {
		t.Fatalf("chg = %v", chg)
	}
}

func TestSetAlgebra(t *testing.T) {
	a := NewSet("p", "q", "r")
	b := NewSet("q", "r", "s")
	if got := a.Union(b).Elems(); len(got) != 4 {
		t.Fatalf("union = %v", got)
	}
	if got := a.Intersect(b).Elems(); len(got) != 2 || got[0] != "q" || got[1] != "r" {
		t.Fatalf("intersect = %v", got)
	}
	if got := a.Difference(b).Elems(); len(got) != 1 || got[0] != "p" {
		t.Fatalf("difference = %v", got)
	}
	if !a.Equal(NewSet("r", "q", "p")) {
		t.Fatalf("set equality should ignore construction order")
	}
	if a.Equal(b) {
		t.Fatalf("different sets compared equal")
	}
}

func TestSetAddRemovePersistence(t *testing.T) {
	a := NewSet("x")
	b := a.Add("y")
	c := b.Remove("x")
	if !a.Contains("x") || a.Contains("y") {
		t.Fatalf("a mutated")
	}
	if !b.Contains("x") || !b.Contains("y") {
		t.Fatalf("b wrong")
	}
	if c.Contains("x") || !c.Contains("y") {
		t.Fatalf("c wrong")
	}
}

func TestSetRange(t *testing.T) {
	s := NewSet("b", "a", "c")
	var got []string
	s.Range(func(e string) bool { got = append(got, e); return true })
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range order %v", got)
		}
	}
}

func TestMapModelProperty(t *testing.T) {
	// Persistent map behaves like Go's built-in map under random workloads.
	f := func(ops []struct {
		Key string
		Val int
		Del bool
	}) bool {
		m := NewMap[int]()
		model := map[string]int{}
		for _, op := range ops {
			if op.Del {
				m = m.Delete(op.Key)
				delete(model, op.Key)
			} else {
				m = m.Set(op.Key, op.Val)
				model[op.Key] = op.Val
			}
		}
		if m.Len() != len(model) {
			return false
		}
		keys := m.Keys()
		if !sort.StringsAreSorted(keys) {
			return false
		}
		for k, v := range model {
			if got, ok := m.Get(k); !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
