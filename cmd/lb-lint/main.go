// Command lb-lint runs this repository's static-analysis suite.
//
// Two modes:
//
//	lb-lint [packages...]
//	    Run the Go analyzers (immutable, errwrap, ctxloop, obssafe,
//	    cursorclose) over the given package patterns (default ./...).
//	    Any finding is
//	    an error: the suite has no suppression mechanism, so the exit
//	    status is 1 unless the tree is clean.
//
//	lb-lint -logiql file.logic [file.logic...]
//	    Parse each LogiQL file and print warning-tier findings from the
//	    program checker (dead rules, unconsumed heads, singleton
//	    variables, duplicate/subsumed rules, unsatisfiable constraint
//	    bodies). Warnings are advisory and do not fail the run; only
//	    unreadable or unparsable files do.
package main

import (
	"flag"
	"fmt"
	"os"

	"logicblox/internal/analysis"
	"logicblox/internal/analysis/logiql"
	"logicblox/internal/parser"
)

func main() {
	logiqlMode := flag.Bool("logiql", false, "check LogiQL program files instead of Go packages")
	list := flag.Bool("list", false, "list the Go analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *logiqlMode {
		os.Exit(runLogiQL(flag.Args()))
	}
	os.Exit(runGo(flag.Args()))
}

func runGo(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lb-lint: %v\n", err)
		return 2
	}
	diags, err := analysis.RunAnalyzers(pkgs, analysis.Analyzers())
	if err != nil {
		fmt.Fprintf(os.Stderr, "lb-lint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "lb-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

func runLogiQL(files []string) int {
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "lb-lint -logiql: no files given")
		return 2
	}
	status := 0
	for _, path := range files {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lb-lint: %v\n", err)
			status = 1
			continue
		}
		prog, err := parser.Parse(string(src))
		if err != nil {
			fmt.Fprintf(os.Stderr, "lb-lint: %s: %v\n", path, err)
			status = 1
			continue
		}
		for _, w := range logiql.CheckProgram(prog) {
			fmt.Printf("%s: %s\n", path, w)
		}
	}
	return status
}
