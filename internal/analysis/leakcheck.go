package analysis

// leakcheck generalizes cursorclose from one hard-coded type to a
// declarative resource table, and adds a goroutine-lifecycle rule for the
// concurrency-dense packages (server, durable, replica, bench):
//
//  1. Resources (time.Ticker/Timer, http.Response.Body, durable's
//     TailReader) must be released on every path to every function exit,
//     released by a pending defer, or handed off (any bare use of the
//     variable — returned, stored, passed — transfers ownership, the
//     same convention cursorclose uses). Constructors of the form
//     `v, err := ctor(...)` are err-gated: along the `err != nil` branch
//     the resource was never produced, so early error returns stay quiet.
//  2. Goroutines started with `go func(){...}` whose body runs an
//     unbounded loop (ctxloop's definition) must be cancellable: the body
//     has to poll a context or select on a done channel. Bounded
//     fire-and-forget goroutines are exempt.
//
// Known limits (docs/analysis.md): `go method()` spawns of named
// functions are not traced into the callee, and a resource stored
// straight into a struct field at the constructor site is treated as
// escaping to the struct's owner.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// resourceSpec declares one resource-producing constructor.
type resourceSpec struct {
	pkgPath  string // constructor's package path
	ctor     string // constructor function name
	kind     string // human-readable resource name
	release  string // method chain that releases, e.g. "Stop" or "Body.Close"
	errGated bool   // constructor returns (T, error): live only when err == nil
}

// resourceTable is the declarative core of leakcheck. Adding a row here
// is all it takes to track a new resource kind.
var resourceTable = []resourceSpec{
	{pkgPath: "time", ctor: "NewTicker", kind: "ticker", release: "Stop"},
	{pkgPath: "time", ctor: "NewTimer", kind: "timer", release: "Stop"},
	{pkgPath: "net/http", ctor: "Get", kind: "response body", release: "Body.Close", errGated: true},
	{pkgPath: "net/http", ctor: "Post", kind: "response body", release: "Body.Close", errGated: true},
	{pkgPath: "net/http", ctor: "Head", kind: "response body", release: "Body.Close", errGated: true},
	{pkgPath: "net/http", ctor: "Do", kind: "response body", release: "Body.Close", errGated: true},
	{pkgPath: "logicblox/internal/durable", ctor: "NewTailReader", kind: "tail reader", release: "Close"},
}

// leakGoroutinePackages gates the goroutine-lifecycle rule to the
// packages the issue names (matched by package name so fixtures under
// testdata can opt in by declaring the same name).
var leakGoroutinePackages = map[string]bool{
	"server":  true,
	"durable": true,
	"replica": true,
	"bench":   true,
}

// LeakcheckAnalyzer is the CFG-based resource- and goroutine-leak check.
var LeakcheckAnalyzer = &Analyzer{
	Name: "leakcheck",
	Doc:  "flag tickers/timers/response bodies/tail readers not released on all paths, and uncancellable goroutines",
	Run:  runLeakcheck,
}

// lcRes is one live resource: where it was constructed, which table row
// produced it, and (when err-gated) the error variable that gates it.
type lcRes struct {
	pos    token.Pos
	spec   *resourceSpec
	name   string       // source name of the variable holding it
	errObj types.Object // non-nil while the err != nil branch can kill it
}

// lcState maps resource variables (by object identity) to their live
// resources. It is a may-analysis: a resource stays live until every
// path releases it.
type lcState map[types.Object]lcRes

func (s lcState) clone() lcState {
	c := make(lcState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func (s lcState) joinInto(src lcState) bool {
	changed := false
	for k, v := range src {
		if _, ok := s[k]; !ok {
			s[k] = v
			changed = true
		}
	}
	return changed
}

// lcUnit is the per-function context of one leakcheck dataflow.
type lcUnit struct {
	pass      *Pass
	reporting bool
	reported  map[token.Pos]bool
	// selBases are the identifiers appearing as the root of a selector
	// chain (the t of t.Stop(), the resp of resp.Body): plain uses, not
	// ownership handoffs.
	selBases map[*ast.Ident]bool
}

func selectorBases(root ast.Node) map[*ast.Ident]bool {
	bases := map[*ast.Ident]bool{}
	ast.Inspect(root, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				bases[id] = true
			}
		}
		return true
	})
	return bases
}

func runLeakcheck(pass *Pass) error {
	for _, file := range pass.Files {
		for _, unit := range funcUnits(file) {
			u := &lcUnit{pass: pass, reported: map[token.Pos]bool{}, selBases: selectorBases(unit.body)}
			cfg := BuildCFG(unit.body, pass.Info)
			fns := flowFns[lcState]{
				clone:    lcState.clone,
				joinInto: func(dst, src lcState) bool { return dst.joinInto(src) },
				transfer: u.transfer,
				edge:     u.edge,
			}
			in := forwardFlow(cfg, lcState{}, fns)
			u.reporting = true
			for _, b := range cfg.ReversePostorder() {
				st, ok := in[b]
				if !ok {
					continue
				}
				out := u.transfer(b, st.clone())
				if b.Return == nil && b.Panic == nil && len(b.Succs) > 0 {
					continue
				}
				for _, res := range out {
					if u.reported[res.pos] {
						continue
					}
					u.reported[res.pos] = true
					pass.Reportf(res.pos,
						"%s %s may not be released on a path reaching this function's exit; call (or defer) %s.%s() on every path",
						res.spec.kind, res.name, res.name, res.spec.release)
				}
			}

			if unit.goStmt != nil && leakGoroutinePackages[pass.Pkg.Name()] {
				u.checkGoroutine(unit)
			}
		}
	}
	return nil
}

// transfer pushes resource state through one block.
func (u *lcUnit) transfer(b *Block, st lcState) lcState {
	for _, node := range b.Nodes {
		if d, ok := node.(*ast.DeferStmt); ok {
			u.transferDefer(d, st)
			continue
		}
		inspectShallow(node, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				u.transferAssign(n, st)
			case *ast.ExprStmt:
				// A constructor whose result is discarded leaks immediately.
				if call, ok := n.X.(*ast.CallExpr); ok {
					if spec := u.matchCtor(call); spec != nil && u.reporting && !u.reported[call.Pos()] {
						u.reported[call.Pos()] = true
						u.pass.Reportf(call.Pos(),
							"%s returned by %s.%s is discarded; it can never be released", spec.kind, spec.pkgShort(), spec.ctor)
					}
				}
			case *ast.CallExpr:
				u.transferRelease(n, st)
			case *ast.Ident:
				// Bare use outside the tracked patterns: ownership handoff.
				if obj := u.pass.Info.Uses[n]; obj != nil {
					if _, tracked := st[obj]; tracked && !u.isReceiverUse(n) {
						delete(st, obj)
					}
				}
			}
			return true
		})
	}
	return st
}

// edge refines state along conditional edges: on the branch where an
// err-gated constructor's error is non-nil, the resource never existed.
func (u *lcUnit) edge(e Edge, st lcState) lcState {
	if e.Cond == nil {
		return st
	}
	errObj, errIsNonNil := nilCheck(u.pass, e.Cond, e.Negated)
	if errObj == nil || !errIsNonNil {
		return st
	}
	for k, res := range st {
		if res.errObj == errObj {
			delete(st, k)
		}
	}
	return st
}

// nilCheck decodes a condition of the form `x != nil` / `x == nil` (as
// taken along this edge, accounting for negation) and returns the object
// compared and whether this edge means x is non-nil.
func nilCheck(pass *Pass, cond ast.Expr, negated bool) (types.Object, bool) {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.NEQ && bin.Op != token.EQL) {
		return nil, false
	}
	var id *ast.Ident
	x, y := ast.Unparen(bin.X), ast.Unparen(bin.Y)
	switch {
	case exprIsNil(pass, y):
		id, _ = x.(*ast.Ident)
	case exprIsNil(pass, x):
		id, _ = y.(*ast.Ident)
	}
	if id == nil {
		return nil, false
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		return nil, false
	}
	nonNil := bin.Op == token.NEQ
	if negated {
		nonNil = !nonNil
	}
	return obj, nonNil
}

func exprIsNil(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.IsNil()
}

// transferAssign tracks constructor results: `v := ctor(...)` and the
// err-gated `v, err := ctor(...)` form.
func (u *lcUnit) transferAssign(stmt *ast.AssignStmt, st lcState) {
	if len(stmt.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(stmt.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	spec := u.matchCtor(call)
	if spec == nil {
		return
	}
	id, _ := ast.Unparen(stmt.Lhs[0]).(*ast.Ident)
	if id == nil || id.Name == "_" {
		if id != nil && u.reporting && !u.reported[call.Pos()] {
			u.reported[call.Pos()] = true
			u.pass.Reportf(call.Pos(),
				"%s returned by %s.%s is discarded; it can never be released", spec.kind, spec.pkgShort(), spec.ctor)
		}
		// Assigned into a field/element: escapes to the owner.
		return
	}
	obj := u.pass.Info.Defs[id]
	if obj == nil {
		obj = u.pass.Info.Uses[id]
	}
	if obj == nil {
		return
	}
	res := lcRes{pos: call.Pos(), spec: spec, name: id.Name}
	if spec.errGated && len(stmt.Lhs) == 2 {
		if errID, ok := ast.Unparen(stmt.Lhs[1]).(*ast.Ident); ok && errID.Name != "_" {
			if eo := u.pass.Info.Defs[errID]; eo != nil {
				res.errObj = eo
			} else if eo := u.pass.Info.Uses[errID]; eo != nil {
				res.errObj = eo
			}
		}
	}
	st[obj] = res
}

// transferRelease kills resources whose release chain is called:
// t.Stop(), resp.Body.Close(), tr.Close().
func (u *lcUnit) transferRelease(call *ast.CallExpr, st lcState) {
	base, chain := selectorChain(call.Fun)
	if base == nil || chain == "" {
		return
	}
	obj := u.pass.Info.Uses[base]
	if obj == nil {
		return
	}
	res, tracked := st[obj]
	if !tracked {
		return
	}
	if chain == res.spec.release {
		delete(st, obj)
	}
}

// transferDefer treats a deferred release (direct or inside a deferred
// closure) as releasing from this program point onward.
func (u *lcUnit) transferDefer(d *ast.DeferStmt, st lcState) {
	kill := func(call *ast.CallExpr) {
		u.transferRelease(call, st)
	}
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				kill(call)
			}
			return true
		})
		return
	}
	kill(d.Call)
	// The deferred call's arguments are bare uses evaluated now: a
	// `defer pool.Put(tr)` hands the resource off.
	for _, arg := range d.Call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := u.pass.Info.Uses[id]; obj != nil {
					delete(st, obj)
				}
			}
			return true
		})
	}
}

// isReceiverUse reports whether id appears as the base of a selector
// (t.Stop(), resp.Body, tr.Next()) — a plain use, not an ownership
// handoff. The parent linkage is recovered structurally: an Ident whose
// use we see during inspectShallow is a handoff unless some selector in
// the same file has it as its X. To stay O(node) we check the immediate
// syntactic context instead, which inspectShallow gives us by visiting
// the SelectorExpr before its X.
func (u *lcUnit) isReceiverUse(id *ast.Ident) bool {
	return u.selBases[id]
}

// matchCtor matches a call against the resource table.
func (u *lcUnit) matchCtor(call *ast.CallExpr) *resourceSpec {
	fn := staticCallee(u.pass, call)
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	for i := range resourceTable {
		spec := &resourceTable[i]
		if fn.Name() == spec.ctor && fn.Pkg().Path() == spec.pkgPath {
			return spec
		}
	}
	return nil
}

func (s *resourceSpec) pkgShort() string {
	if i := strings.LastIndex(s.pkgPath, "/"); i >= 0 {
		return s.pkgPath[i+1:]
	}
	return s.pkgPath
}

// selectorChain decomposes x.a.b(...) receivers: returns the base ident
// and the dotted method/field chain ("a.b"), or nil.
func selectorChain(fun ast.Expr) (*ast.Ident, string) {
	var parts []string
	e := ast.Unparen(fun)
	for {
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			break
		}
		parts = append([]string{sel.Sel.Name}, parts...)
		e = ast.Unparen(sel.X)
	}
	id, ok := e.(*ast.Ident)
	if !ok || len(parts) == 0 {
		return nil, ""
	}
	return id, strings.Join(parts, ".")
}

// checkGoroutine enforces the lifecycle rule on one `go func(){...}`
// unit: an unbounded loop inside the goroutine body must be cancellable
// — poll a context, select on a done channel, or range over a channel
// (closed by the producer).
func (u *lcUnit) checkGoroutine(unit funcUnit) {
	body := unit.body
	var offending *ast.ForStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if offending != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return n.Body == body // nested literals are their own units
		case *ast.ForStmt:
			if unboundedLoop(n) && !pollsContext(n.Body) && !receivesFromChannel(u.pass, n.Body) {
				offending = n
			}
		}
		return true
	})
	if offending == nil {
		return
	}
	u.pass.Reportf(unit.goStmt.Pos(),
		"goroutine runs an unbounded loop with no cancellation: poll ctx.Err() or select on a done/ctx channel inside the loop so it can be joined or cancelled")
}

// receivesFromChannel reports whether body contains a channel receive —
// a blocking read that a closing producer unblocks, which counts as a
// cancellation point.
func receivesFromChannel(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if ue, ok := n.(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
			found = true
		}
		if rs, ok := n.(*ast.RangeStmt); ok {
			if tv, ok := pass.Info.Types[rs.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
