// Package server is a leakcheck-analyzer fixture for the goroutine
// rule (gated by package name to the concurrency-dense packages): a
// goroutine running an unbounded loop must be cancellable — poll a
// context, select on a done channel, or drain a closeable channel.
package server

import "context"

type pool struct {
	jobs chan int
	done chan struct{}
	n    int
}

func work(int) {}

// spinForever can never be stopped or joined.
func (p *pool) spinForever() {
	go func() { // want: unbounded loop with no cancellation
		for {
			work(p.n)
		}
	}()
}

// fixpointNoPoll replaces its condition variable wholesale — ctxloop's
// unbounded-fixpoint shape — with no way to cancel it.
func (p *pool) fixpointNoPoll(next func([]int) []int) {
	go func() { // want: unbounded loop with no cancellation
		pending := []int{0}
		for len(pending) > 0 {
			pending = next(pending)
		}
	}()
}

// selectDone is the worker shape: the done channel makes it joinable.
func (p *pool) selectDone() {
	go func() {
		for {
			select {
			case <-p.done:
				return
			case j := <-p.jobs:
				work(j)
			}
		}
	}()
}

// ctxPoll polls the context at the iteration boundary.
func (p *pool) ctxPoll(ctx context.Context) {
	go func() {
		for ctx.Err() == nil {
			work(p.n)
		}
	}()
}

// drainRange ranges over a channel the producer closes.
func (p *pool) drainRange() {
	go func() {
		for j := range p.jobs {
			work(j)
		}
	}()
}

// fireAndForget runs a bounded body: exempt.
func (p *pool) fireAndForget() {
	go func() {
		work(p.n)
	}()
}
