package obs

import (
	"sort"
	"sync/atomic"
	"time"
)

// RuleStats is the per-rule profile record the engine accumulates into:
// one per compiled rule, shared across evaluations (full, semi-naive
// delta, and maintenance re-runs). All fields are updated atomically; the
// nil *RuleStats is a valid no-op.
type RuleStats struct {
	id     int
	head   string
	source string

	evals       atomic.Int64 // full rule evaluations
	deltaEvals  atomic.Int64 // semi-naive / IVM delta evaluations
	tuples      atomic.Int64 // head tuples produced (pre-dedup vs current)
	seeks       atomic.Int64 // LFTJ iterator seeks
	nexts       atomic.Int64 // LFTJ iterator nexts
	sensRecords atomic.Int64 // sensitivity intervals recorded
	nanos       atomic.Int64 // total evaluation time

	// Adaptive-optimizer profile: the variable order the optimizer chose
	// for the rule, and how often it came from the plan cache vs. a fresh
	// sampling run.
	planOrder  atomic.Pointer[string]
	planCached atomic.Int64
	planChosen atomic.Int64
}

// SetPlan records the optimizer's chosen variable order for this rule
// and whether it was reused from the plan cache (cached) or freshly
// sampled.
func (s *RuleStats) SetPlan(order string, cached bool) {
	if s == nil {
		return
	}
	s.planOrder.Store(&order)
	if cached {
		s.planCached.Add(1)
	} else {
		s.planChosen.Add(1)
	}
}

// AddEval records one full evaluation of the rule.
func (s *RuleStats) AddEval(d time.Duration, tuples int64) {
	if s == nil {
		return
	}
	s.evals.Add(1)
	s.tuples.Add(tuples)
	s.nanos.Add(int64(d))
}

// AddDeltaEval records one delta (semi-naive or maintenance) evaluation.
func (s *RuleStats) AddDeltaEval(d time.Duration, tuples int64) {
	if s == nil {
		return
	}
	s.deltaEvals.Add(1)
	s.tuples.Add(tuples)
	s.nanos.Add(int64(d))
}

// AddJoin folds the join-level metrics of one enumeration into the rule.
func (s *RuleStats) AddJoin(seeks, nexts, sensRecords int64) {
	if s == nil {
		return
	}
	s.seeks.Add(seeks)
	s.nexts.Add(nexts)
	s.sensRecords.Add(sensRecords)
}

// RuleSnapshot is the structured value of one rule's profile.
type RuleSnapshot struct {
	ID          int           `json:"id"`
	Head        string        `json:"head"`
	Source      string        `json:"source"`
	Evals       int64         `json:"evals"`
	DeltaEvals  int64         `json:"delta_evals,omitempty"`
	Tuples      int64         `json:"tuples"`
	Seeks       int64         `json:"seeks"`
	Nexts       int64         `json:"nexts"`
	SensRecords int64         `json:"sens_records,omitempty"`
	EvalTime    time.Duration `json:"eval_time_ns"`
	// PlanOrder is the variable order the optimizer chose (empty when
	// the rule never went through the optimizer); PlanCached/PlanChosen
	// count plan-cache reuses vs. fresh sampling runs.
	PlanOrder  string `json:"plan_order,omitempty"`
	PlanCached int64  `json:"plan_cached,omitempty"`
	PlanChosen int64  `json:"plan_chosen,omitempty"`
}

// Rule returns (creating if needed) the profile record for rule id, or
// nil on a nil registry. head and source label the rule in snapshots; the
// first registration wins.
func (r *Registry) Rule(id int, head, source string) *RuleStats {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.rules[id]
	if !ok {
		s = &RuleStats{id: id, head: head, source: source}
		r.rules[id] = s
	}
	return s
}

// ruleSnapshotsLocked copies all rule profiles, most expensive first.
func (r *Registry) ruleSnapshotsLocked() []RuleSnapshot {
	if len(r.rules) == 0 {
		return nil
	}
	out := make([]RuleSnapshot, 0, len(r.rules))
	for _, s := range r.rules {
		snap := RuleSnapshot{
			ID:          s.id,
			Head:        s.head,
			Source:      s.source,
			Evals:       s.evals.Load(),
			DeltaEvals:  s.deltaEvals.Load(),
			Tuples:      s.tuples.Load(),
			Seeks:       s.seeks.Load(),
			Nexts:       s.nexts.Load(),
			SensRecords: s.sensRecords.Load(),
			EvalTime:    time.Duration(s.nanos.Load()),
			PlanCached:  s.planCached.Load(),
			PlanChosen:  s.planChosen.Load(),
		}
		if p := s.planOrder.Load(); p != nil {
			snap.PlanOrder = *p
		}
		out = append(out, snap)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].EvalTime != out[j].EvalTime {
			return out[i].EvalTime > out[j].EvalTime
		}
		return out[i].ID < out[j].ID
	})
	return out
}
