// Package analysis is a small, stdlib-only static-analysis framework for
// this repository: it loads Go packages (go/parser + go/types, resolving
// dependencies through the go command's export data), walks their ASTs
// with full type information, and reports positioned diagnostics.
//
// The analyzers in this package enforce engine invariants that Go's type
// system cannot express — the persistent data structures of paper §3.1
// are correct only if no node is mutated after construction, typed
// sentinel errors are only useful if tested with errors.Is, context
// deadlines only work if fixpoint loops poll them, and the nil-safe
// observability contract only holds if every exported metric method
// guards its receiver. cmd/lb-lint is the command-line driver; `make
// lint` runs it over the whole repository and must stay clean (there is
// no suppression mechanism, deliberately — see docs/analysis.md).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"time"
)

// Diagnostic is one finding: a position, the analyzer that produced it,
// a severity, and a message describing the violated invariant.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Severity string // "error" for the Go analyzers
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries everything an analyzer needs to examine one package.
// Shared is per-analyzer scratch that survives across packages within
// one RunAnalyzers call — the channel through which cross-package
// analyzers (locksafe's lock-order graph, snapshotescape's escape
// summaries) accumulate state. Packages arrive in dependency order, so
// by the time a package is analyzed every summary of its dependencies
// is already in Shared.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Shared   map[string]any

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Severity: "error",
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named check run over a type-checked package. Finish,
// when set, runs once after Run has seen every package of the load; the
// Pass it receives has the shared FileSet and the analyzer's Shared
// scratch but no Files/Pkg/Info — it is where whole-program findings
// (lock-order cycles) are reported.
type Analyzer struct {
	Name   string
	Doc    string
	Run    func(*Pass) error
	Finish func(*Pass) error
}

// Analyzers returns the full suite, in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		ImmutableAnalyzer, ErrwrapAnalyzer, CtxloopAnalyzer, ObssafeAnalyzer, CursorcloseAnalyzer,
		LocksafeAnalyzer, LeakcheckAnalyzer, SnapshotEscapeAnalyzer,
	}
}

// Timing records how long one analyzer spent on one package.
type Timing struct {
	PkgPath  string
	Analyzer string
	Elapsed  time.Duration
}

// RunAnalyzers applies every analyzer to every package and returns the
// combined diagnostics sorted by file position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := RunAnalyzersTimed(pkgs, analyzers)
	return diags, err
}

// RunAnalyzersTimed is RunAnalyzers reporting per-package wall-clock
// spent in each analyzer, so new analyzers can be budgeted (`lb-lint
// -list -v`). Finish hooks run after all packages, under the analyzer's
// name with an empty package path.
func RunAnalyzersTimed(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, []Timing, error) {
	var diags []Diagnostic
	var timings []Timing
	shared := map[*Analyzer]map[string]any{}
	for _, a := range analyzers {
		shared[a] = map[string]any{}
	}
	var fset *token.FileSet
	for _, pkg := range pkgs {
		fset = pkg.Fset
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Shared:   shared[a],
				diags:    &diags,
			}
			t0 := time.Now()
			err := a.Run(pass)
			timings = append(timings, Timing{PkgPath: pkg.PkgPath, Analyzer: a.Name, Elapsed: time.Since(t0)})
			if err != nil {
				return diags, timings, fmt.Errorf("%s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	for _, a := range analyzers {
		if a.Finish == nil || fset == nil {
			continue
		}
		pass := &Pass{Analyzer: a, Fset: fset, Shared: shared[a], diags: &diags}
		t0 := time.Now()
		err := a.Finish(pass)
		timings = append(timings, Timing{Analyzer: a.Name, Elapsed: time.Since(t0)})
		if err != nil {
			return diags, timings, fmt.Errorf("%s finish: %w", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, timings, nil
}

// calleeName returns the bare name of a call's callee: the identifier for
// f(...), the selector for x.f(...), empty otherwise.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// namedOf unwraps pointers and aliases down to a named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(t)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}
