package obs

import (
	"fmt"
	"testing"
)

// TestTraceSamplingRetainsCeilKOverN: with 1-in-N sampling, finishing k
// root spans retains exactly ⌈k/N⌉ of them (the first of every N), in
// order.
func TestTraceSamplingRetainsCeilKOverN(t *testing.T) {
	cases := []struct{ n, k int }{
		{1, 10}, {2, 10}, {3, 9}, {4, 10}, {5, 12}, {7, 7}, {10, 3}, {32, 20},
	}
	for _, tc := range cases {
		r := NewRegistry()
		r.SetTraceSampling(tc.n)
		for i := 0; i < tc.k; i++ {
			sp := r.StartSpan(fmt.Sprintf("root%02d", i))
			sp.Child("work").End()
			sp.End()
		}
		want := (tc.k + tc.n - 1) / tc.n
		got := r.Snapshot().Traces
		if len(got) != want {
			t.Fatalf("N=%d k=%d: retained %d traces, want ⌈k/N⌉=%d", tc.n, tc.k, len(got), want)
		}
		for i, tr := range got {
			if wantName := fmt.Sprintf("root%02d", i*tc.n); tr.Name != wantName {
				t.Fatalf("N=%d k=%d: trace %d is %q, want %q", tc.n, tc.k, i, tr.Name, wantName)
			}
			// Sampled-in traces are complete, children included.
			if len(tr.Children) != 1 || tr.Children[0].Name != "work" {
				t.Fatalf("N=%d k=%d: sampled trace lost its children: %+v", tc.n, tc.k, tr)
			}
		}
	}
}

// TestTraceSamplingDefaultKeepsAll: N=1 (and the zero value) preserve
// current behavior — every finished root enters the ring.
func TestTraceSamplingDefaultKeepsAll(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 5; i++ {
		r.StartSpan("t").End()
	}
	if got := len(r.Snapshot().Traces); got != 5 {
		t.Fatalf("default sampling retained %d of 5 traces", got)
	}
	r.SetTraceSampling(0)
	for i := 0; i < 5; i++ {
		r.StartSpan("t").End()
	}
	if got := len(r.Snapshot().Traces); got != 10 {
		t.Fatalf("n=0 sampling retained %d of 10 traces", got)
	}
}

// TestTraceSamplingResetsPhase: re-arming sampling restarts the 1-in-N
// phase so the next root is always kept.
func TestTraceSamplingResetsPhase(t *testing.T) {
	r := NewRegistry()
	r.SetTraceSampling(3)
	r.StartSpan("a").End() // kept (seq 0)
	r.StartSpan("b").End() // dropped
	r.SetTraceSampling(3)  // reset phase
	r.StartSpan("c").End() // kept (seq 0 again)
	got := r.Snapshot().Traces
	if len(got) != 2 || got[0].Name != "a" || got[1].Name != "c" {
		t.Fatalf("traces = %+v, want [a c]", got)
	}
	// Nil registry: no-op.
	var nilReg *Registry
	nilReg.SetTraceSampling(4)
}
