package core

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"
)

// TestExecCtxDeadlineStopsFixpoint gives a transaction whose fixpoint
// would derive 50M facts a 50ms budget; the engine must notice the
// deadline at an iteration boundary and abort quickly.
func TestExecCtxDeadlineStopsFixpoint(t *testing.T) {
	ws := mustAddBlock(t, NewWorkspace(), "rec", `
		m(x) <- seed(x).
		m(y) <- m(x), x < 50000000, y = x + 1.`)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, err := ws.ExecCtx(ctx, `+seed(0).`)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(t0); elapsed > 10*time.Second {
		t.Fatalf("fixpoint ignored the deadline: %v", elapsed)
	}
}

func TestQueryCtxCancel(t *testing.T) {
	ws := mustAddBlock(t, NewWorkspace(), "rec", `
		m(x) <- seed(x).
		m(y) <- m(x), x < 50000000, y = x + 1.`)
	res := mustExec(t, ws, `+one(1).`)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: the query must not run to completion
	if _, err := res.QueryCtx(ctx, `_(y) <- one(x), seed(x), m(y).`); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
}

// TestTypedErrors checks every failure mode carries its sentinel through
// errors.Is, so callers (and the HTTP layer) never match message text.
func TestTypedErrors(t *testing.T) {
	ws := mustAddBlock(t, NewWorkspace(), "b", `d(x) <- s(x).`)
	db := NewDatabase()

	if _, err := ws.Exec(`+p(1`); !errors.Is(err, ErrParse) {
		t.Errorf("parse: %v", err)
	}
	if _, err := ws.Query(`_(`); !errors.Is(err, ErrParse) {
		t.Errorf("query parse: %v", err)
	}
	if _, err := ws.Exec(`+d(1).`); !errors.Is(err, ErrTypecheck) {
		t.Errorf("write to derived: %v", err)
	}
	if _, err := ws.AddBlock("bad", `a(x) <- b(y), x < y.`); !errors.Is(err, ErrTypecheck) {
		t.Errorf("unbound head var: %v", err)
	}
	if _, err := ws.AddBlock("b", `e(x) <- s(x).`); !errors.Is(err, ErrConflict) {
		t.Errorf("duplicate block: %v", err)
	}
	if _, err := db.Workspace("nope"); !errors.Is(err, ErrNoSuchBranch) {
		t.Errorf("unknown branch: %v", err)
	}
	if err := db.Branch("main", "main"); !errors.Is(err, ErrBranchExists) {
		t.Errorf("duplicate branch: %v", err)
	}

	cws := mustAddBlock(t, NewWorkspace(), "c", `
		Stock[p] = v -> float(v).
		maxStock[p] = v -> float(v).
		Stock[p] = v, maxStock[p] = m -> v <= m.`)
	cres := mustExec(t, cws, `+maxStock["a"] = 10.0. +Stock["a"] = 5.0.`)
	if _, err := cres.Exec(`^Stock["a"] = 50.0.`); !errors.Is(err, ErrConstraint) {
		t.Errorf("constraint violation: %v", err)
	}
}

// TestCommitIf checks the compare-and-swap commit: it succeeds only when
// the branch head is still the transaction's snapshot.
func TestCommitIf(t *testing.T) {
	db := NewDatabase()
	head, _ := db.Workspace(DefaultBranch)

	// Two transactions execute against the same head.
	a, err := head.Exec(`+p(1).`)
	if err != nil {
		t.Fatal(err)
	}
	b, err := head.Exec(`+p(2).`)
	if err != nil {
		t.Fatal(err)
	}

	if err := db.CommitIf(DefaultBranch, head, a.Workspace); err != nil {
		t.Fatalf("first commit: %v", err)
	}
	if err := db.CommitIf(DefaultBranch, head, b.Workspace); !errors.Is(err, ErrConflict) {
		t.Fatalf("second commit = %v, want ErrConflict", err)
	}
	// The loser re-executes against the new head (coarse repair) and wins.
	head2, _ := db.Workspace(DefaultBranch)
	b2, err := head2.Exec(`+p(2).`)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CommitIf(DefaultBranch, head2, b2.Workspace); err != nil {
		t.Fatalf("repaired commit: %v", err)
	}
	ws, _ := db.Workspace(DefaultBranch)
	if ws.Relation("p").Len() != 2 {
		t.Fatalf("p = %v", ws.Relation("p").Slice())
	}
	if err := db.CommitIf("nope", head2, b2.Workspace); !errors.Is(err, ErrNoSuchBranch) {
		t.Fatalf("unknown branch = %v", err)
	}
}

// TestSavePersistsPlanStore round-trips a database running the adaptive
// optimizer through Save/LoadDatabase: the restored workspace must still
// be adaptive and its plan store must be seeded with the saved plans
// (keyed by structural rule fingerprints, which survive recompilation).
func TestSavePersistsPlanStore(t *testing.T) {
	db := NewDatabaseWith(NewWorkspace().WithAdaptiveOptimizer(true))
	head, _ := db.Workspace(DefaultBranch)
	head = mustAddBlock(t, head, "tc", `
		path(x, y) <- edge(x, y).
		path(x, z) <- path(x, y), edge(y, z).`)
	res, err := head.Exec(`+edge(1, 2). +edge(2, 3). +edge(3, 4).`)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Commit(DefaultBranch, res.Workspace); err != nil {
		t.Fatal(err)
	}
	ps := res.Workspace.PlanStore()
	if ps == nil || len(ps.Snapshot()) == 0 {
		t.Fatalf("no plans cached before save (store=%v)", ps)
	}
	want := len(ps.Snapshot())

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadDatabase(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ws, _ := restored.Workspace(DefaultBranch)
	rps := ws.PlanStore()
	if rps == nil {
		t.Fatal("restored workspace lost its plan store")
	}
	if got := len(rps.Snapshot()); got != want {
		t.Fatalf("restored plans = %d, want %d", got, want)
	}
	// The restored database keeps optimizing new transactions.
	if _, err := ws.Exec(`+edge(4, 5).`); err != nil {
		t.Fatal(err)
	}
}

// TestDataFirstLiveProgramming regresses an arity bug: facts inserted
// before any logic mentions their predicate used to materialize with
// arity 1 (the default of Workspace.Relation for unknown predicates),
// making a later AddBlock over that data fail inside the LFTJ. The
// paper's live-programming story is explicitly logic-after-data.
func TestDataFirstLiveProgramming(t *testing.T) {
	ws := NewWorkspace()
	res := mustExec(t, ws, `+edge(1, 2). +edge(2, 3).`)
	if got := res.Relation("edge").Arity(); got != 2 {
		t.Fatalf("edge arity = %d, want 2", got)
	}
	ws = mustAddBlock(t, res, "tc", `
		path(x, y) <- edge(x, y).
		path(x, z) <- path(x, y), edge(y, z).`)
	rows, err := ws.Query(`_(x, y) <- path(x, y).`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("path over pre-existing data = %v", rows)
	}
}
