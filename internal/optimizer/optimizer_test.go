package optimizer_test

import (
	"math/rand"
	"testing"

	"logicblox/internal/compiler"
	"logicblox/internal/engine"
	"logicblox/internal/optimizer"
	"logicblox/internal/parser"
	"logicblox/internal/relation"
	"logicblox/internal/tuple"
)

func compileRule(t *testing.T, src string) (*compiler.Program, *compiler.RulePlan) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c, err := compiler.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Rules) == 0 {
		t.Fatal("no rules")
	}
	return c, c.Rules[0]
}

// evalWith runs the program under an engine context and returns the head
// relation of the first rule.
func evalWith(t *testing.T, prog *compiler.Program, base map[string]relation.Relation, optimize bool) relation.Relation {
	t.Helper()
	ctx := engine.NewContext(prog, base, engine.Options{Optimize: optimize})
	if err := ctx.EvalAll(); err != nil {
		t.Fatal(err)
	}
	return ctx.Relation(prog.Rules[0].HeadName)
}

func TestReorderRulePreservesSemantics(t *testing.T) {
	prog, rule := compileRule(t, `out(a, c) <- r(a, b), s(b, c), b < 6, d = b + 1, !excl(d).`)
	rng := rand.New(rand.NewSource(12))
	base := map[string]relation.Relation{
		"r":    relation.New(2),
		"s":    relation.New(2),
		"excl": relation.New(1),
	}
	for i := 0; i < 80; i++ {
		base["r"] = base["r"].Insert(tuple.Ints(rng.Int63n(10), rng.Int63n(10)))
		base["s"] = base["s"].Insert(tuple.Ints(rng.Int63n(10), rng.Int63n(10)))
	}
	base["excl"] = base["excl"].Insert(tuple.Ints(4))

	want := evalWith(t, prog, base, false)

	// Every permutation of the join variables must produce the same
	// derived relation.
	n := rule.NumJoinVars
	var orders [][]int
	permuteAll(identity(n), 0, &orders)
	for _, order := range orders {
		plan, err := compiler.ReorderRule(rule, order)
		if err != nil {
			t.Fatalf("order %v: %v", order, err)
		}
		ctx := engine.NewContext(prog, base, engine.Options{})
		got, err := ctx.EvalRule(plan, nil)
		if err != nil {
			t.Fatalf("order %v: %v", order, err)
		}
		if !got.Equal(want) {
			t.Fatalf("order %v: %v != %v", order, got.Slice(), want.Slice())
		}
	}
}

func permuteAll(cur []int, k int, out *[][]int) {
	if k == len(cur) {
		cp := append([]int(nil), cur...)
		*out = append(*out, cp)
		return
	}
	for i := k; i < len(cur); i++ {
		cur[k], cur[i] = cur[i], cur[k]
		permuteAll(cur, k+1, out)
		cur[k], cur[i] = cur[i], cur[k]
	}
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestReorderRuleRejectsBadOrders(t *testing.T) {
	_, rule := compileRule(t, `out(a, b) <- r(a, b).`)
	if _, err := compiler.ReorderRule(rule, []int{0}); err == nil {
		t.Fatal("short order accepted")
	}
	if _, err := compiler.ReorderRule(rule, []int{0, 0}); err == nil {
		t.Fatal("non-permutation accepted")
	}
}

func TestChooseOrderPrefersSelectiveFirst(t *testing.T) {
	// r is huge, sel is tiny and shares variable a; starting at the
	// selective predicate is much cheaper.
	_, rule := compileRule(t, `out(a, b) <- r(a, b), sel(a).`)
	r := relation.New(2)
	for i := int64(0); i < 3000; i++ {
		r = r.Insert(tuple.Ints(i%1000, i))
	}
	sel := relation.New(1)
	sel = sel.Insert(tuple.Ints(7))
	base := map[string]relation.Relation{"r": r, "sel": sel}
	rels := func(name string) relation.Relation { return base[name] }

	res, err := optimizer.ChooseOrder(rule, rels, optimizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated < 2 {
		t.Fatalf("optimizer tried %d candidates", res.Evaluated)
	}
	// Whatever the order, the chosen plan must produce correct results.
	prog, _ := compileRule(t, `out(a, b) <- r(a, b), sel(a).`)
	ctx := engine.NewContext(prog, base, engine.Options{})
	got, err := ctx.EvalRule(res.Plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := evalWith(t, prog, base, false)
	if !got.Equal(want) {
		t.Fatalf("optimized plan wrong: %v != %v", got.Slice(), want.Slice())
	}
	// The chosen order must start at the selective predicate's variable:
	// slot of "a" in the original plan comes first.
	if res.Cost <= 0 {
		t.Fatalf("cost not measured: %+v", res)
	}
}

func TestEngineOptimizeOptionEquivalence(t *testing.T) {
	src := `tri(x, y, z) <- e(x, y), e(y, z), e(x, z).`
	prog, _ := compileRule(t, src)
	rng := rand.New(rand.NewSource(5))
	e := relation.New(2)
	for i := 0; i < 300; i++ {
		e = e.Insert(tuple.Ints(rng.Int63n(30), rng.Int63n(30)))
	}
	base := map[string]relation.Relation{"e": e}
	plain := evalWith(t, prog, base, false)
	optimized := evalWith(t, prog, base, true)
	if !plain.Equal(optimized) {
		t.Fatalf("optimizer changed results: %d vs %d tuples", plain.Len(), optimized.Len())
	}
}

func TestChooseOrderTrivialRule(t *testing.T) {
	_, rule := compileRule(t, `out(x) <- r(x).`)
	res, err := optimizer.ChooseOrder(rule, func(string) relation.Relation { return relation.New(1) }, optimizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan != rule {
		t.Fatal("single-variable rule should be returned unchanged")
	}
}

func TestChooseOrderRespectsCandidateCap(t *testing.T) {
	// A 5-variable rule has 120 permutations; a cap of 6 must be honored.
	_, rule := compileRule(t, `out(a, b, c, d, e) <- r(a, b), s(b, c), t(c, d), u(d, e).`)
	empty := func(string) relation.Relation { return relation.New(2) }
	res, err := optimizer.ChooseOrder(rule, empty, optimizer.Options{MaxCandidates: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated > 6+4 { // rotation family may add adjacent swaps
		t.Fatalf("evaluated %d candidates, cap 6", res.Evaluated)
	}
}

func TestSampleRelation(t *testing.T) {
	r := relation.New(1)
	for i := int64(0); i < 1000; i++ {
		r = r.Insert(tuple.Ints(i))
	}
	s := r.Sample(100)
	if s.Len() < 90 || s.Len() > 110 {
		t.Fatalf("sample size = %d, want ≈100", s.Len())
	}
	// Sampling a small relation returns it unchanged.
	if !r.Sample(10000).Equal(r) {
		t.Fatal("oversampling should be the identity")
	}
}
