package compiler

import (
	"strings"
	"testing"

	"logicblox/internal/parser"
	"logicblox/internal/tuple"
)

func compile(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c, err := Compile(prog)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return c
}

func TestEDBIDBInference(t *testing.T) {
	p := compile(t, `
		path(x, y) <- edge(x, y).
		path(x, z) <- path(x, y), edge(y, z).`)
	if !p.Preds["edge"].EDB {
		t.Errorf("edge should be EDB")
	}
	if p.Preds["path"].EDB {
		t.Errorf("path should be IDB")
	}
}

func TestDecoratedNames(t *testing.T) {
	if DecoratedName("R", 1, false) != "+R" || DecoratedName("R", 2, true) != "-R@start" {
		t.Fatalf("decoration wrong")
	}
	for _, n := range []string{"R", "+R", "-R", "^R", "R@start", "+R@start"} {
		if BaseName(n) != "R" {
			t.Errorf("BaseName(%s) = %s", n, BaseName(n))
		}
	}
}

func TestReactiveRuleClassification(t *testing.T) {
	p := compile(t, `
		out(x) <- in(x).
		+audit(x) <- +in(x).
		cur[k] = v <- snap@start[k] = v.`)
	if len(p.Rules) != 1 {
		t.Fatalf("static rules = %d", len(p.Rules))
	}
	if len(p.Reactive) != 2 {
		t.Fatalf("reactive rules = %d", len(p.Reactive))
	}
}

func TestTypeHarvesting(t *testing.T) {
	p := compile(t, `
		spacePerProd[p] = v -> Product(p), float(v).`)
	info := p.Preds["spacePerProd"]
	if info == nil || !info.Functional || info.Arity != 2 {
		t.Fatalf("catalog info = %+v", info)
	}
	if info.ColumnKinds[1] != tuple.KindFloat {
		t.Fatalf("value column kind = %v", info.ColumnKinds[1])
	}
}

func TestArityMismatchRejected(t *testing.T) {
	src := `a(x) <- b(x). a(x, y) <- b(x), b(y).`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(prog); err == nil || !strings.Contains(err.Error(), "arity") {
		t.Fatalf("expected arity error, got %v", err)
	}
}

func TestUnsafeRuleRejected(t *testing.T) {
	for _, src := range []string{
		`a(x) <- b(y), x < y.`,     // head var never bound
		`a(x) <- !b(x).`,           // negation cannot bind
		`a(x) <- b(y), z = w + 1.`, // unbound assignment source
	} {
		prog, err := parser.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Compile(prog); err == nil {
			t.Errorf("Compile(%q) should fail", src)
		}
	}
}

func TestStratificationRejectsNegativeCycle(t *testing.T) {
	src := `a(x) <- c(x), !b(x). b(x) <- a(x).`
	prog, _ := parser.Parse(src)
	if _, err := Compile(prog); err == nil || !strings.Contains(err.Error(), "stratified") {
		t.Fatalf("expected stratification error, got %v", err)
	}
}

func TestStratificationRejectsRecursiveAggregation(t *testing.T) {
	src := `total[] = u <- agg<<u = sum(x)>> f(x). f(x) <- total[] = x.`
	prog, _ := parser.Parse(src)
	if _, err := Compile(prog); err == nil || !strings.Contains(err.Error(), "stratified") {
		t.Fatalf("expected stratification error, got %v", err)
	}
}

func TestStrataOrderRespectsDependencies(t *testing.T) {
	p := compile(t, `
		c(x) <- b(x), !excl(x).
		b(x) <- a(x).
		d(x) <- c(x).`)
	pos := map[string]int{}
	for i, stratum := range p.Strata {
		for _, r := range stratum {
			pos[r.HeadName] = i
		}
	}
	if !(pos["b"] <= pos["c"] && pos["c"] <= pos["d"]) {
		t.Fatalf("strata order wrong: %v", pos)
	}
	if pos["b"] == pos["c"] {
		// b feeds c through negation's sibling edge (positive), that may
		// share a level; but c must not precede b.
		for _, r := range p.Strata[pos["b"]] {
			if r.HeadName == "c" {
				// same stratum is acceptable only if evaluation order puts
				// b's rules first
				break
			}
		}
	}
}

func TestRecursiveSCCSharesStratum(t *testing.T) {
	p := compile(t, `
		even(x) <- zero(x).
		even(y) <- odd(x), succ(x, y).
		odd(y) <- even(x), succ(x, y).`)
	pos := map[string]int{}
	for i, stratum := range p.Strata {
		for _, r := range stratum {
			if prev, seen := pos[r.HeadName]; seen && prev != i {
				t.Fatalf("rules for %s split across strata %d and %d", r.HeadName, prev, i)
			}
			pos[r.HeadName] = i
		}
	}
	if pos["even"] != pos["odd"] {
		t.Fatalf("mutually recursive predicates in different strata: %v", pos)
	}
}

func TestSecondaryIndexPlanned(t *testing.T) {
	// T(a,c) in the triangle query under variable order [a,b,c] is fine;
	// force an inconsistent atom: R(b,a) when order must start at a (a is
	// in two atoms).
	p := compile(t, `out(a, b) <- r(b, a), s(a, b), t(a).`)
	r := p.Rules[0]
	foundPerm := false
	for _, a := range r.Atoms {
		if a.Perm != nil {
			foundPerm = true
			// Permuted vars must be strictly increasing.
			for i := 1; i < len(a.Vars); i++ {
				if a.Vars[i-1] >= a.Vars[i] {
					t.Fatalf("atom %s vars not increasing: %v", a.Name, a.Vars)
				}
			}
		}
	}
	if !foundPerm {
		t.Fatalf("expected at least one secondary index, plans: %+v", r.Atoms)
	}
}

func TestConstantsBecomeConstBinds(t *testing.T) {
	p := compile(t, `out(x) <- r(x, 2).`)
	r := p.Rules[0]
	if len(r.Consts) != 1 || !tuple.Equal(r.Consts[0].Val, tuple.Int(2)) {
		t.Fatalf("consts = %+v", r.Consts)
	}
}

func TestRepeatedVariableRewrite(t *testing.T) {
	p := compile(t, `diag(x) <- r(x, x).`)
	r := p.Rules[0]
	if len(r.Filters) != 1 || r.Filters[0].Op != "=" {
		t.Fatalf("expected equality filter for repeated variable, got %+v", r.Filters)
	}
}

func TestDesugaredFunctionalApplication(t *testing.T) {
	p := compile(t, `profit[s] = sellingPrice[s] - buyingPrice[s] <- Product(s).`)
	r := p.Rules[0]
	names := map[string]bool{}
	for _, b := range r.BodyNames {
		names[b] = true
	}
	if !names["sellingPrice"] || !names["buyingPrice"] || !names["Product"] {
		t.Fatalf("desugaring missed atoms: %v", r.BodyNames)
	}
}

func TestSolveDirectives(t *testing.T) {
	p := compile(t, "lang:solve:variable(`Stock).\nlang:solve:max(`totalProfit).\nlang:solve:integer(`Stock).")
	if p.Solve == nil || len(p.Solve.Variables) != 1 || p.Solve.Variables[0] != "Stock" {
		t.Fatalf("solve spec = %+v", p.Solve)
	}
	if p.Solve.Maximize != "totalProfit" || len(p.Solve.Integral) != 1 {
		t.Fatalf("solve spec = %+v", p.Solve)
	}
}

func TestVariableOrderHeuristicMostConstrainedFirst(t *testing.T) {
	// b appears in three atoms, a in one: b should come before a.
	p := compile(t, `out(a, b) <- r(a, b), s(b), t(b).`)
	r := p.Rules[0]
	slotOf := map[string]int{}
	for i, n := range r.VarNames {
		slotOf[n] = i
	}
	if slotOf["b"] > slotOf["a"] {
		t.Fatalf("variable order %v does not put most-constrained first", r.VarNames)
	}
}

func TestCompareValues(t *testing.T) {
	cases := []struct {
		op   string
		l, r tuple.Value
		want bool
	}{
		{"=", tuple.Int(2), tuple.Float(2.0), true},
		{"<", tuple.Int(1), tuple.Float(1.5), true},
		{"!=", tuple.String("a"), tuple.Int(1), true},
		{">=", tuple.Float(2.5), tuple.Int(2), true},
		{"=", tuple.String("x"), tuple.String("x"), true},
		{"<", tuple.String("a"), tuple.String("b"), true},
	}
	for _, c := range cases {
		got, err := CompareValues(c.op, c.l, c.r)
		if err != nil || got != c.want {
			t.Errorf("CompareValues(%s, %v, %v) = %v, %v", c.op, c.l, c.r, got, err)
		}
	}
	if _, err := CompareValues("<", tuple.String("a"), tuple.Int(1)); err == nil {
		t.Errorf("ordering across kinds should error")
	}
}

func TestArithExprEval(t *testing.T) {
	e := ArithExpr{Op: '*', L: VarExpr{0}, R: ConstExpr{tuple.Float(2.5)}}
	v, err := e.Eval(tuple.Tuple{tuple.Int(4)}, nil)
	if err != nil || v.AsFloat() != 10 {
		t.Fatalf("eval = %v, %v", v, err)
	}
	intDiv := ArithExpr{Op: '/', L: ConstExpr{tuple.Int(7)}, R: ConstExpr{tuple.Int(2)}}
	v, _ = intDiv.Eval(nil, nil)
	if v.AsInt() != 3 {
		t.Fatalf("integer division = %v", v)
	}
	if _, err := (ArithExpr{Op: '/', L: ConstExpr{tuple.Int(1)}, R: ConstExpr{tuple.Int(0)}}).Eval(nil, nil); err == nil {
		t.Fatalf("division by zero should error")
	}
	if _, err := (ArithExpr{Op: '+', L: ConstExpr{tuple.String("a")}, R: ConstExpr{tuple.Int(1)}}).Eval(nil, nil); err == nil {
		t.Fatalf("string arithmetic should error")
	}
}
