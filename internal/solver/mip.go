package solver

import (
	"math"

	"logicblox/internal/obs"
)

// SolveMIP maximizes the problem with integrality on the variables marked
// in p.Integer, using LP-based branch and bound with best-bound pruning.
// When the free predicate of a LogiQL program is re-declared over
// integers, the system reformulates and routes here (paper §2.3.1).
func SolveMIP(p *Problem) (*Solution, error) {
	relaxed, err := SolveLP(p)
	if err != nil {
		return nil, err
	}
	if relaxed.Status != Optimal {
		return relaxed, nil
	}
	best := &Solution{Status: Infeasible, Objective: math.Inf(-1)}
	var nodes int64
	err = branch(p, nil, relaxed, best, 0, &nodes)
	obs.Default().Counter("solver.bnb.nodes").Add(nodes)
	if err != nil {
		return nil, err
	}
	if best.Status != Optimal {
		return &Solution{Status: Infeasible}, nil
	}
	return best, nil
}

// bound is an extra x_i ≤ v or x_i ≥ v branching constraint.
type bound struct {
	v     int
	coeff float64 // +1 for ≤, -1 encodes ≥ via flipped constraint
	ge    bool
	idx   int
}

const intTol = 1e-6

func branch(p *Problem, bounds []bound, relaxed *Solution, best *Solution, depth int, nodes *int64) error {
	*nodes++
	if depth > 200 {
		return nil
	}
	if relaxed.Status != Optimal {
		return nil
	}
	// Best-bound pruning: the relaxation bounds any integer solution below.
	if relaxed.Objective <= best.Objective+intTol {
		return nil
	}
	// Find the most fractional integral variable.
	frac := -1
	fracDist := 0.0
	for i := 0; i < p.NumVars && i < len(p.Integer); i++ {
		if !p.Integer[i] {
			continue
		}
		f := relaxed.X[i] - math.Floor(relaxed.X[i])
		d := math.Min(f, 1-f)
		if d > intTol && d > fracDist {
			fracDist = d
			frac = i
		}
	}
	if frac < 0 {
		// Integral: round and record.
		if relaxed.Objective > best.Objective {
			x := append([]float64(nil), relaxed.X...)
			for i := range x {
				if i < len(p.Integer) && p.Integer[i] {
					x[i] = math.Round(x[i])
				}
			}
			*best = Solution{Status: Optimal, X: x, Objective: relaxed.Objective}
		}
		return nil
	}

	floorV := math.Floor(relaxed.X[frac])
	for _, b := range []bound{
		{idx: frac, v: int(floorV), ge: false},    // x ≤ ⌊v⌋
		{idx: frac, v: int(floorV) + 1, ge: true}, // x ≥ ⌊v⌋+1
	} {
		sub := *p
		sub.Constraints = append(append([]LinConstraint(nil), p.Constraints...), boundConstraint(b))
		rel, err := SolveLP(&sub)
		if err != nil {
			return err
		}
		if err := branch(&sub, append(bounds, b), rel, best, depth+1, nodes); err != nil {
			return err
		}
	}
	return nil
}

func boundConstraint(b bound) LinConstraint {
	op := LE
	if b.ge {
		op = GE
	}
	return LinConstraint{Coeffs: map[int]float64{b.idx: 1}, Op: op, RHS: float64(b.v)}
}
