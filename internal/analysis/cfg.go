package analysis

// cfg.go builds intraprocedural control-flow graphs over Go function
// bodies. The dataflow analyzers (locksafe, leakcheck) need path
// sensitivity the plain AST walks of the older analyzers cannot give:
// "this lock is released on every path to every return" is a property of
// the CFG, not of any single statement. The builder handles the full
// statement language — if/for/range/switch/type-switch/select, labeled
// break and continue, goto, fallthrough, explicit panic — and leaves
// function literals alone (each literal is its own analysis unit).

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Block is one basic block: a maximal straight-line sequence of
// evaluation steps (statements and branch-condition expressions) with
// control entering only at the top and leaving only at the bottom.
type Block struct {
	Index int
	// Nodes are the evaluation steps, in order. Branch conditions appear
	// as bare ast.Expr entries; everything else is an ast.Stmt. Function
	// literal bodies are not expanded here.
	Nodes []ast.Node
	Succs []Edge
	// Return terminates this block when control leaves the function
	// normally here.
	Return *ast.ReturnStmt
	// Panic terminates this block when an explicit panic(...) statement
	// unwinds here. (Calls that may panic are not modeled; see
	// docs/analysis.md for the framework's false-negative limits.)
	Panic ast.Stmt
}

// IsExit reports whether control leaves the function at the end of b.
func (b *Block) IsExit() bool { return b.Return != nil || b.Panic != nil }

// Edge is one control transfer. When Cond is non-nil the edge is taken
// exactly when Cond evaluates to !Negated, which lets edge-sensitive
// transfer functions model idioms like `if err != nil { return }`.
type Edge struct {
	To      *Block
	Cond    ast.Expr
	Negated bool
}

// CFG is the control-flow graph of one function body. Blocks[0] is the
// entry block. Blocks left unreachable by breaks/returns are retained
// (dead code is still code) but never visited by the dataflow driver.
type CFG struct {
	Blocks []*Block
}

// BuildCFG constructs the CFG of one function body. info resolves
// builtin references so explicit panic calls become exits; it may be nil
// (then any call spelled `panic` is treated as one).
func BuildCFG(body *ast.BlockStmt, info *types.Info) *CFG {
	b := &cfgBuilder{info: info, labels: map[string]*Block{}}
	entry := b.newBlock()
	b.cur = entry
	b.stmtList(body.List)
	for _, g := range b.gotos {
		if target, ok := b.labels[g.label]; ok {
			g.from.Succs = append(g.from.Succs, Edge{To: target})
		}
	}
	c := &CFG{Blocks: b.blocks}
	for i, blk := range c.Blocks {
		blk.Index = i
	}
	return c
}

type pendingGoto struct {
	from  *Block
	label string
}

// branchCtx is one enclosing breakable construct (loop, switch, select).
// continueTo is nil for non-loop contexts.
type branchCtx struct {
	label      string
	breakTo    *Block
	continueTo *Block
}

type cfgBuilder struct {
	info     *types.Info
	blocks   []*Block
	cur      *Block
	ctxs     []branchCtx
	labels   map[string]*Block
	gotos    []pendingGoto
	curLabel string
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{}
	b.blocks = append(b.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block, cond ast.Expr, negated bool) {
	from.Succs = append(from.Succs, Edge{To: to, Cond: cond, Negated: negated})
}

// startBlock ends the current block with an unconditional edge into a
// fresh one and makes the fresh block current.
func (b *cfgBuilder) startBlock() *Block {
	next := b.newBlock()
	b.edge(b.cur, next, nil, false)
	b.cur = next
	return next
}

// takeLabel consumes the pending statement label (set by LabeledStmt for
// the construct that immediately follows it).
func (b *cfgBuilder) takeLabel() string {
	l := b.curLabel
	b.curLabel = ""
	return l
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// isPanicCall reports whether s is an explicit call of the panic builtin.
func (b *cfgBuilder) isPanicCall(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	if b.info != nil {
		if obj := b.info.Uses[id]; obj != nil {
			_, isBuiltin := obj.(*types.Builtin)
			return isBuiltin
		}
	}
	return true
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		lb := b.startBlock()
		b.labels[s.Label.Name] = lb
		b.curLabel = s.Label.Name
		b.stmt(s.Stmt)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		cond := b.cur
		cond.Nodes = append(cond.Nodes, s.Cond)
		then := b.newBlock()
		b.edge(cond, then, s.Cond, false)
		b.cur = then
		b.stmtList(s.Body.List)
		afterThen := b.cur
		join := b.newBlock()
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cond, els, s.Cond, true)
			b.cur = els
			b.stmt(s.Else)
			b.edge(b.cur, join, nil, false)
		} else {
			b.edge(cond, join, s.Cond, true)
		}
		b.edge(afterThen, join, nil, false)
		b.cur = join

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.startBlock()
		exit := b.newBlock()
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		body := b.newBlock()
		if s.Cond != nil {
			b.edge(head, body, s.Cond, false)
			b.edge(head, exit, s.Cond, true)
		} else {
			b.edge(head, body, nil, false)
		}
		continueTo := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			continueTo = post
		}
		b.ctxs = append(b.ctxs, branchCtx{label: label, breakTo: exit, continueTo: continueTo})
		b.cur = body
		b.stmtList(s.Body.List)
		b.edge(b.cur, continueTo, nil, false)
		if post != nil {
			b.cur = post
			b.stmt(s.Post)
			b.edge(b.cur, head, nil, false)
		}
		b.ctxs = b.ctxs[:len(b.ctxs)-1]
		b.cur = exit

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.startBlock()
		head.Nodes = append(head.Nodes, s.X)
		body := b.newBlock()
		exit := b.newBlock()
		b.edge(head, body, nil, false)
		b.edge(head, exit, nil, false)
		b.ctxs = append(b.ctxs, branchCtx{label: label, breakTo: exit, continueTo: head})
		b.cur = body
		b.stmtList(s.Body.List)
		b.edge(b.cur, head, nil, false)
		b.ctxs = b.ctxs[:len(b.ctxs)-1]
		b.cur = exit

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.cur
		if s.Tag != nil {
			head.Nodes = append(head.Nodes, s.Tag)
		}
		b.caseClauses(head, s.Body.List, label, func(cc *ast.CaseClause, blk *Block) {
			for _, e := range cc.List {
				blk.Nodes = append(blk.Nodes, e)
			}
		})

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.cur
		head.Nodes = append(head.Nodes, s.Assign)
		b.caseClauses(head, s.Body.List, label, nil)

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.cur
		exit := b.newBlock()
		b.ctxs = append(b.ctxs, branchCtx{label: label, breakTo: exit})
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(head, blk, nil, false)
			if comm.Comm != nil {
				blk.Nodes = append(blk.Nodes, comm.Comm)
			}
			b.cur = blk
			b.stmtList(comm.Body)
			b.edge(b.cur, exit, nil, false)
		}
		b.ctxs = b.ctxs[:len(b.ctxs)-1]
		// An empty select blocks forever: exit stays unreachable.
		b.cur = exit

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if ctx := b.findCtx(s.Label, false); ctx != nil {
				b.edge(b.cur, ctx.breakTo, nil, false)
			}
			b.cur = b.newBlock() // dead
		case token.CONTINUE:
			if ctx := b.findCtx(s.Label, true); ctx != nil {
				b.edge(b.cur, ctx.continueTo, nil, false)
			}
			b.cur = b.newBlock() // dead
		case token.GOTO:
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
			b.cur = b.newBlock() // dead
		case token.FALLTHROUGH:
			// Handled structurally by caseClauses; nothing to record here.
		}

	case *ast.ReturnStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.cur.Return = s
		b.cur = b.newBlock() // dead

	case *ast.ExprStmt:
		if b.isPanicCall(s) {
			b.cur.Nodes = append(b.cur.Nodes, s)
			b.cur.Panic = s
			b.cur = b.newBlock() // dead
			return
		}
		b.cur.Nodes = append(b.cur.Nodes, s)

	case *ast.EmptyStmt:
		// nothing

	default:
		// Assignments, declarations, sends, inc/dec, defer, go: plain
		// evaluation steps.
		b.cur.Nodes = append(b.cur.Nodes, s)
	}
}

// caseClauses wires the shared switch shape: head fans out to each case
// body, every body (bar fallthrough) joins at the exit, and a missing
// default adds a head→exit edge. addExprs lets expression switches record
// their case expressions as evaluation steps.
func (b *cfgBuilder) caseClauses(head *Block, clauses []ast.Stmt, label string, addExprs func(*ast.CaseClause, *Block)) {
	exit := b.newBlock()
	b.ctxs = append(b.ctxs, branchCtx{label: label, breakTo: exit})
	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		bodies[i] = b.newBlock()
		b.edge(head, bodies[i], nil, false)
		if addExprs != nil {
			addExprs(cc, bodies[i])
		}
		if cc.List == nil {
			hasDefault = true
		}
	}
	for i, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		b.cur = bodies[i]
		fallsThrough := false
		for j, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH && j == len(cc.Body)-1 {
				fallsThrough = true
				break
			}
			b.stmt(st)
		}
		if fallsThrough && i+1 < len(bodies) {
			b.edge(b.cur, bodies[i+1], nil, false)
		} else {
			b.edge(b.cur, exit, nil, false)
		}
	}
	if !hasDefault {
		b.edge(head, exit, nil, false)
	}
	b.ctxs = b.ctxs[:len(b.ctxs)-1]
	b.cur = exit
}

// findCtx resolves a break/continue target: the innermost matching
// context, or the labeled one. Continue only matches loop contexts.
func (b *cfgBuilder) findCtx(label *ast.Ident, needLoop bool) *branchCtx {
	for i := len(b.ctxs) - 1; i >= 0; i-- {
		ctx := &b.ctxs[i]
		if needLoop && ctx.continueTo == nil {
			continue
		}
		if label == nil || ctx.label == label.Name {
			return ctx
		}
	}
	return nil
}

// Reachable returns the blocks reachable from the entry, as a set.
func (c *CFG) Reachable() map[*Block]bool {
	seen := map[*Block]bool{}
	if len(c.Blocks) == 0 {
		return seen
	}
	stack := []*Block{c.Blocks[0]}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[b] {
			continue
		}
		seen[b] = true
		for _, e := range b.Succs {
			if !seen[e.To] {
				stack = append(stack, e.To)
			}
		}
	}
	return seen
}

// ReversePostorder returns the reachable blocks in reverse postorder —
// the iteration order under which a forward dataflow converges fastest.
func (c *CFG) ReversePostorder() []*Block {
	if len(c.Blocks) == 0 {
		return nil
	}
	var post []*Block
	state := map[*Block]int{} // 0 unvisited, 1 on stack, 2 done
	type frame struct {
		b *Block
		i int
	}
	stack := []frame{{b: c.Blocks[0]}}
	state[c.Blocks[0]] = 1
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.i < len(f.b.Succs) {
			next := f.b.Succs[f.i].To
			f.i++
			if state[next] == 0 {
				state[next] = 1
				stack = append(stack, frame{b: next})
			}
			continue
		}
		state[f.b] = 2
		post = append(post, f.b)
		stack = stack[:len(stack)-1]
	}
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// String renders the CFG compactly for tests and debugging:
// "b0[2] -> b1 b2; b1[1,ret] -> ;" where [n] is the node count.
func (c *CFG) String() string {
	var sb strings.Builder
	for _, b := range c.Blocks {
		tag := ""
		if b.Return != nil {
			tag = ",ret"
		} else if b.Panic != nil {
			tag = ",panic"
		}
		fmt.Fprintf(&sb, "b%d[%d%s] ->", b.Index, len(b.Nodes), tag)
		succs := make([]int, len(b.Succs))
		for i, e := range b.Succs {
			succs[i] = e.To.Index
		}
		sort.Ints(succs)
		for _, s := range succs {
			fmt.Fprintf(&sb, " b%d", s)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
