// The prediction example exercises predictive analytics (paper §2.3.2):
// predict P2P rules learn one logistic-regression model per store from
// purchase history and store features, and evaluate the models to produce
// purchase-probability predictions — all declared in LogiQL.
//
// Run with: go run ./examples/prediction
package main

import (
	"fmt"
	"log"
	"sort"

	"logicblox"
	"logicblox/internal/workload"
)

func main() {
	ws := logicblox.NewWorkspace()
	// The paper's §2.3.2 rules, adapted to the generated dataset: learn a
	// model per store (learning mode), then evaluate it (evaluation mode).
	ws, err := ws.AddBlock("models", `
		Buy[s, c] = v -> string(s), int(c), float(v).
		Feature[s, n] = f -> string(s), string(n), float(f).
		SM[s] = m <- predict<<m = logist(v|f)>> Buy[s, c] = v, Feature[s, n] = f.
		BuyPred[s] = v <- predict<<v = eval(m|f)>> SM[s] = m, Feature[s, n] = f.`)
	if err != nil {
		log.Fatal(err)
	}

	buy, feat := workload.ClassificationSet(40, 30, 0.15, 77)
	ws, err = ws.Load("Buy", buy.Slice())
	if err != nil {
		log.Fatal(err)
	}
	ws, err = ws.Load("Feature", feat.Slice())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d per-store models from %d purchase records\n",
		ws.Relation("SM").Len(), buy.Len())

	// Compare predictions against each store's empirical buy rate.
	type storeRow struct {
		store     string
		predicted float64
		empirical float64
	}
	empirical := map[string][2]float64{}
	buy.ForEach(func(t logicblox.Tuple) bool {
		s := t[0].AsString()
		e := empirical[s]
		e[0] += t[2].AsFloat()
		e[1]++
		empirical[s] = e
		return true
	})
	var rows []storeRow
	ws.Relation("BuyPred").ForEach(func(t logicblox.Tuple) bool {
		s := t[0].AsString()
		e := empirical[s]
		rows = append(rows, storeRow{s, t[1].AsFloat(), e[0] / e[1]})
		return true
	})
	sort.Slice(rows, func(i, j int) bool { return rows[i].predicted > rows[j].predicted })

	fmt.Println("top-5 stores by predicted buy probability (vs empirical rate):")
	agree := 0
	for i, r := range rows {
		if i < 5 {
			fmt.Printf("  %-10s predicted %.2f  empirical %.2f\n", r.store, r.predicted, r.empirical)
		}
		if (r.predicted > 0.5) == (r.empirical > 0.5) {
			agree++
		}
	}
	fmt.Printf("direction agreement across all %d stores: %d (%.0f%%)\n",
		len(rows), agree, 100*float64(agree)/float64(len(rows)))

	// Models survive data edits: new observations retrain incrementally
	// on the next exec (the predict rule is re-derived like any view).
	res, err := ws.Exec(`+Buy["store000", 999] = 1.0.`)
	if err != nil {
		log.Fatal(err)
	}
	v1, _ := ws.Relation("BuyPred").FuncGet(logicblox.Strings("store000"))
	v2, _ := res.Workspace.Relation("BuyPred").FuncGet(logicblox.Strings("store000"))
	fmt.Printf("store000 prediction before/after a new positive observation: %.3f → %.3f\n",
		v1.AsFloat(), v2.AsFloat())
}
