package solver

import (
	"math"
	"testing"

	"logicblox/internal/compiler"
	"logicblox/internal/parser"
	"logicblox/internal/relation"
	"logicblox/internal/tuple"
)

// fig2Program is the paper's Figure 2 assortment-planning program plus
// the §2.3.1 solve directives: compute stock amounts maximizing profit
// subject to stock bounds and shelf capacity.
const fig2Program = `
	spacePerProd[p] = v -> Product(p), float(v).
	profitPerProd[p] = v -> Product(p), float(v).
	minStock[p] = v -> Product(p), float(v).
	maxStock[p] = v -> Product(p), float(v).
	maxShelf[] = v -> float[64](v).
	Stock[p] = v -> Product(p), float(v).
	totalShelf[] = u <- agg<<u = sum(z)>> Stock[p] = x, spacePerProd[p] = y, z = x * y.
	totalProfit[] = u <- agg<<u = sum(z)>> Stock[p] = x, profitPerProd[p] = y, z = x * y.
	Product(p) -> Stock[p] >= minStock[p].
	Product(p) -> Stock[p] <= maxStock[p].
	totalShelf[] = u, maxShelf[] = v -> u <= v.
	lang:solve:variable(` + "`Stock" + `).
	lang:solve:max(` + "`totalProfit" + `).
`

func fig2Data() map[string]relation.Relation {
	f := func(p string, v float64) tuple.Tuple { return tuple.Of(tuple.String(p), tuple.Float(v)) }
	return map[string]relation.Relation{
		"Product":       relation.FromTuples(1, []tuple.Tuple{tuple.Strings("a"), tuple.Strings("b")}),
		"spacePerProd":  relation.FromTuples(2, []tuple.Tuple{f("a", 2), f("b", 1)}),
		"profitPerProd": relation.FromTuples(2, []tuple.Tuple{f("a", 5), f("b", 2)}),
		"minStock":      relation.FromTuples(2, []tuple.Tuple{f("a", 0), f("b", 0)}),
		"maxStock":      relation.FromTuples(2, []tuple.Tuple{f("a", 8), f("b", 8)}),
		"maxShelf":      relation.FromTuples(1, []tuple.Tuple{{tuple.Float(10)}}),
	}
}

func compileSrc(t *testing.T, src string) *compiler.Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c, err := compiler.Compile(prog)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return c
}

func TestGroundFig2LP(t *testing.T) {
	prog := compileSrc(t, fig2Program)
	g, err := Ground(prog, fig2Data())
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVars() != 2 {
		t.Fatalf("vars = %d (%v)", g.NumVars(), g.Vars())
	}
	rels, sol, err := g.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// LP: max 5a + 2b s.t. 2a + b ≤ 10, 0 ≤ a,b ≤ 8.
	// Optimum: a = 5? a ≤ 8, 2a ≤ 10 → a = 5, b = 0? obj 25. Or a=1,b=8:
	// 2+8=10, obj 5+16=21. Or a=4,b=2: 10, obj 24. Best is a=5,b=0 → 25.
	if math.Abs(sol.Objective-25) > 1e-6 {
		t.Fatalf("objective = %v, want 25", sol.Objective)
	}
	stock := rels["Stock"]
	if va, ok := stock.FuncGet(tuple.Strings("a")); !ok || math.Abs(va.AsFloat()-5) > 1e-6 {
		t.Fatalf("Stock[a] = %v", va)
	}
	if vb, ok := stock.FuncGet(tuple.Strings("b")); !ok || math.Abs(vb.AsFloat()) > 1e-6 {
		t.Fatalf("Stock[b] = %v", vb)
	}
}

func TestGroundRespectsMinStock(t *testing.T) {
	prog := compileSrc(t, fig2Program)
	data := fig2Data()
	// Force b's stock to at least 4.
	data["minStock"] = relation.FromTuples(2, []tuple.Tuple{
		tuple.Of(tuple.String("a"), tuple.Float(0)),
		tuple.Of(tuple.String("b"), tuple.Float(4)),
	})
	g, err := Ground(prog, data)
	if err != nil {
		t.Fatal(err)
	}
	rels, sol, err := g.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// 2a + b ≤ 10, b ≥ 4 → a ≤ 3, best a=3,b=4 → 15+8=23.
	if math.Abs(sol.Objective-23) > 1e-6 {
		t.Fatalf("objective = %v, want 23", sol.Objective)
	}
	if vb, _ := rels["Stock"].FuncGet(tuple.Strings("b")); math.Abs(vb.AsFloat()-4) > 1e-6 {
		t.Fatalf("Stock[b] = %v", vb)
	}
}

func TestGroundMIPWhenIntegerDeclared(t *testing.T) {
	// Re-declare Stock as int: the paper says the system detects this and
	// reformulates as a MIP (§2.3.1).
	src := fig2Program + "\nlang:solve:integer(`Stock).\n"
	prog := compileSrc(t, src)
	data := fig2Data()
	// Fractional LP optimum: shelf 2a + b ≤ 9 → a = 4.5; MIP must pick
	// integers.
	data["maxShelf"] = relation.FromTuples(1, []tuple.Tuple{{tuple.Float(9)}})
	g, err := Ground(prog, data)
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasInteger() {
		t.Fatalf("integer declaration not detected")
	}
	rels, sol, err := g.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// Integer optimum: a=4,b=1 → 20+2=22.
	if math.Abs(sol.Objective-22) > 1e-6 {
		t.Fatalf("objective = %v, want 22", sol.Objective)
	}
	va, _ := rels["Stock"].FuncGet(tuple.Strings("a"))
	if va.Kind() != tuple.KindInt || va.AsInt() != 4 {
		t.Fatalf("Stock[a] = %v (kind %v)", va, va.Kind())
	}
}

func TestGroundMinimization(t *testing.T) {
	src := `
		cost[p] = v -> Product(p), float(v).
		Buy[p] = v -> Product(p), float(v).
		demand[] = v -> float(v).
		totalBuy[] = u <- agg<<u = sum(x)>> Buy[p] = x.
		totalCost[] = u <- agg<<u = sum(z)>> Buy[p] = x, cost[p] = y, z = x * y.
		Product(p) -> Buy[p] >= 0.0.
		totalBuy[] = u, demand[] = d -> u >= d.
		lang:solve:variable(` + "`Buy" + `).
		lang:solve:min(` + "`totalCost" + `).`
	prog := compileSrc(t, src)
	data := map[string]relation.Relation{
		"Product": relation.FromTuples(1, []tuple.Tuple{tuple.Strings("x"), tuple.Strings("y")}),
		"cost": relation.FromTuples(2, []tuple.Tuple{
			tuple.Of(tuple.String("x"), tuple.Float(3)),
			tuple.Of(tuple.String("y"), tuple.Float(1)),
		}),
		"demand": relation.FromTuples(1, []tuple.Tuple{{tuple.Float(7)}}),
	}
	g, err := Ground(prog, data)
	if err != nil {
		t.Fatal(err)
	}
	rels, sol, err := g.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// Buy 7 units of the cheap product: cost 7.
	if math.Abs(sol.Objective-7) > 1e-6 {
		t.Fatalf("objective = %v, want 7", sol.Objective)
	}
	if vy, _ := rels["Buy"].FuncGet(tuple.Strings("y")); math.Abs(vy.AsFloat()-7) > 1e-6 {
		t.Fatalf("Buy[y] = %v", vy)
	}
}

func TestIncrementalRegrounding(t *testing.T) {
	prog := compileSrc(t, fig2Program)
	data := fig2Data()
	g, err := Ground(prog, data)
	if err != nil {
		t.Fatal(err)
	}
	// No change: nothing re-grounds.
	n, err := g.Reground(data)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("unchanged input re-ground %d constraints", n)
	}
	// Change maxStock only: only the maxStock constraint re-grounds.
	data2 := map[string]relation.Relation{}
	for k, v := range data {
		data2[k] = v
	}
	data2["maxStock"] = relation.FromTuples(2, []tuple.Tuple{
		tuple.Of(tuple.String("a"), tuple.Float(3)),
		tuple.Of(tuple.String("b"), tuple.Float(8)),
	})
	n, err = g.Reground(data2)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatalf("changed input did not re-ground")
	}
	_, sol, err := g.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// Now a ≤ 3: best a=3 (shelf 6), b=4 (shelf 10) → 15+8=23.
	if math.Abs(sol.Objective-23) > 1e-6 {
		t.Fatalf("objective after reground = %v, want 23", sol.Objective)
	}
}

func TestGroundErrorsWithoutDomain(t *testing.T) {
	src := "X[p] = v -> float(v).\nlang:solve:variable(`X).\n"
	prog := compileSrc(t, src)
	if _, err := Ground(prog, map[string]relation.Relation{}); err == nil {
		t.Fatal("expected missing-domain error")
	}
}

func TestGroundRejectsNonlinear(t *testing.T) {
	src := `
		A[p] = v -> P(p), float(v).
		sq[] = u <- agg<<u = sum(z)>> A[p] = x, z = x * x.
		P(p) -> A[p] >= 0.0.
		lang:solve:variable(` + "`A" + `).
		lang:solve:max(` + "`sq" + `).`
	prog := compileSrc(t, src)
	data := map[string]relation.Relation{
		"P": relation.FromTuples(1, []tuple.Tuple{tuple.Strings("p")}),
	}
	if _, err := Ground(prog, data); err == nil {
		t.Fatal("expected nonlinearity error")
	}
}
