package mln

import (
	"testing"

	"logicblox/internal/relation"
	"logicblox/internal/tuple"
)

// TestPaperPurchaseExample models the paper's §2.3.3 soft constraints:
// promotions encourage purchases, similar promoted products discourage
// them, and friends influence each other.
func TestPaperPurchaseExample(t *testing.T) {
	evidence := map[string]relation.Relation{
		"Customer": relation.FromTuples(1, []tuple.Tuple{tuple.Strings("alice"), tuple.Strings("bob")}),
		"Promoted": relation.FromTuples(1, []tuple.Tuple{tuple.Strings("soda")}),
		"Friends":  relation.FromTuples(2, []tuple.Tuple{tuple.Strings("alice", "bob")}),
		"Similar":  relation.FromTuples(2, []tuple.Tuple{tuple.Strings("cola", "soda")}),
	}
	p := &Program{
		QueryPreds: []string{"Purchase"},
		Evidence:   evidence,
		Soft: []SoftConstraint{
			// w1: promoted products get purchased.
			{Weight: 2.0, Source: `Customer(c), Promoted(p) -> Purchase(c, p).`},
			// w2: a product similar to a promoted one is not purchased.
			{Weight: 1.0, Source: `Customer(c), Promoted(q), Similar(p, q) -> !Purchase(c, p).`},
		},
	}
	res, err := Infer(p)
	if err != nil {
		t.Fatal(err)
	}
	purchases := res.True["Purchase"]
	if !purchases.Contains(tuple.Strings("alice", "soda")) || !purchases.Contains(tuple.Strings("bob", "soda")) {
		t.Fatalf("promoted purchases missing: %v", purchases.Slice())
	}
	if purchases.Contains(tuple.Strings("alice", "cola")) {
		t.Fatalf("similar-product purchase should be suppressed: %v", purchases.Slice())
	}
	// Both w1 groundings satisfied (2×2.0) plus both w2 groundings (2×1.0).
	if res.Weight < 5.9 {
		t.Fatalf("weight = %v, want 6", res.Weight)
	}
}

func TestConflictingConstraintsFollowWeight(t *testing.T) {
	evidence := map[string]relation.Relation{
		"Item": relation.FromTuples(1, []tuple.Tuple{tuple.Strings("x")}),
	}
	p := &Program{
		QueryPreds: []string{"Keep"},
		Evidence:   evidence,
		Soft: []SoftConstraint{
			{Weight: 3.0, Source: `Item(i) -> Keep(i).`},
			{Weight: 1.0, Source: `Item(i) -> !Keep(i).`},
		},
	}
	res, err := Infer(p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.True["Keep"].Contains(tuple.Strings("x")) {
		t.Fatalf("heavier constraint should win: %v", res.True["Keep"].Slice())
	}
	// Flip the weights: Keep(x) should be false.
	p.Soft[0].Weight, p.Soft[1].Weight = 1.0, 3.0
	res, err = Infer(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.True["Keep"].Contains(tuple.Strings("x")) {
		t.Fatalf("heavier negative constraint should win")
	}
}

func TestObservationsCondition(t *testing.T) {
	// Friends propagate purchases; observing bob's purchase pulls alice's.
	evidence := map[string]relation.Relation{
		"Friends": relation.FromTuples(2, []tuple.Tuple{tuple.Strings("bob", "alice")}),
		"Bought":  relation.FromTuples(2, []tuple.Tuple{tuple.Strings("bob", "soda")}),
	}
	p := &Program{
		QueryPreds: []string{"Purchase"},
		Evidence:   evidence,
		Soft: []SoftConstraint{
			// Observed purchases are purchases.
			{Weight: 10.0, Source: `Bought(c, p) -> Purchase(c, p).`},
			// w3: friends buy what their friends buy.
			{Weight: 1.0, Source: `Bought(d, p), Friends(d, c) -> Purchase(c, p).`},
		},
		Observed: map[string]map[string]bool{},
	}
	res, err := Infer(p)
	if err != nil {
		t.Fatal(err)
	}
	purchases := res.True["Purchase"]
	if !purchases.Contains(tuple.Strings("bob", "soda")) || !purchases.Contains(tuple.Strings("alice", "soda")) {
		t.Fatalf("purchases = %v", purchases.Slice())
	}

	// Now force alice's purchase to false by observation: the w3 grounding
	// is sacrificed.
	p.Observed = map[string]map[string]bool{
		"Purchase": {tuple.Strings("alice", "soda").String(): false},
	}
	res, err = Infer(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.True["Purchase"].Contains(tuple.Strings("alice", "soda")) {
		t.Fatalf("observation ignored")
	}
}

func TestBadConstraintRejected(t *testing.T) {
	p := &Program{
		QueryPreds: []string{"Q"},
		Evidence:   map[string]relation.Relation{},
		Soft:       []SoftConstraint{{Weight: 1, Source: `A(x) -> NotQuery(x).`}},
	}
	if _, err := Infer(p); err == nil {
		t.Fatal("head over non-query predicate should be rejected")
	}
	p.Soft = []SoftConstraint{{Weight: 1, Source: `garbage(((`}}
	if _, err := Infer(p); err == nil {
		t.Fatal("unparsable constraint should be rejected")
	}
}
