package analysis

import (
	"go/ast"
	"go/token"
)

// ctxloopPackages names the packages whose unbounded loops must poll a
// context: the engine's fixpoint machinery, the transaction layer, and
// the HTTP server's retry loops. A loop that spins without polling
// ignores request deadlines, so a runaway recursive rule or a contended
// commit pins a worker forever (engine.Options.Ctx exists precisely so
// these loops can stop at iteration boundaries).
var ctxloopPackages = map[string]bool{
	"engine":  true,
	"core":    true,
	"server":  true,
	"replica": true,
}

// ctxPollNames are callee names that count as polling a context at an
// iteration boundary: ctx.Err(), Context.Done(), context.Cause(ctx), and
// the engine's internal ctxErr helper.
var ctxPollNames = map[string]bool{
	"Err":    true,
	"ctxErr": true,
	"Done":   true,
	"Cause":  true,
}

// CtxloopAnalyzer reports unbounded loops — `for {}` retry loops and
// fixpoint loops whose condition is recomputed by the body — that do not
// poll a context anywhere in an iteration.
var CtxloopAnalyzer = &Analyzer{
	Name: "ctxloop",
	Doc:  "flag unbounded fixpoint/retry loops that never poll a context",
	Run:  runCtxloop,
}

func runCtxloop(pass *Pass) error {
	if !ctxloopPackages[pass.Pkg.Name()] {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok {
				return true
			}
			if !unboundedLoop(loop) || pollsContext(loop.Body) {
				return true
			}
			pass.Reportf(loop.Pos(),
				"unbounded loop never polls a context; check ctx.Err() (or select on ctx.Done()) at the iteration boundary so deadlines keep working")
			return true
		})
	}
	return nil
}

// unboundedLoop reports whether the loop can iterate an unbounded number
// of times: an infinite `for {}` / `for cond {}` retry loop, or a
// fixpoint loop whose condition reads a variable the body replaces
// wholesale (`for len(deltas) > 0 { ...; deltas = next }`). Three-clause
// counter loops (with a Post statement), range loops, and while-style
// counter loops that only step the condition variable with ++/--/+=/-=
// are bounded by their iteration space and exempt.
func unboundedLoop(loop *ast.ForStmt) bool {
	if loop.Post != nil {
		return false
	}
	if loop.Cond == nil {
		return true
	}
	condVars := map[string]bool{}
	ast.Inspect(loop.Cond, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			condVars[id.Name] = true
		}
		return true
	})
	reassigned := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		stmt, ok := n.(*ast.AssignStmt)
		if !ok || stmt.Tok != token.ASSIGN {
			return true
		}
		for _, lhs := range stmt.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && condVars[id.Name] {
				reassigned = true
			}
		}
		return true
	})
	return reassigned
}

// pollsContext reports whether the loop body contains a context poll: a
// call to one of the poll names or a select statement (which can only
// make progress through one of its channel cases, ctx.Done among them).
func pollsContext(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			if ctxPollNames[calleeName(e)] {
				found = true
			}
		case *ast.SelectStmt:
			found = true
		}
		return !found
	})
	return found
}
