package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"logicblox/internal/core"
	"logicblox/internal/durable"
	"logicblox/internal/durable/faultfs"
	"logicblox/internal/obs"
	"logicblox/internal/replica"
)

// newPrimaryServer boots a durable primary over an in-memory fault
// filesystem with test-fast tail settings (short long-poll window, fast
// heartbeats).
func newPrimaryServer(t *testing.T) (*faultfs.FS, *durable.Store, *Server, *httptest.Server) {
	t.Helper()
	fs := faultfs.New()
	store, err := durable.Open("data", durable.Options{
		FS: fs, Generations: 2, CheckpointEvery: -1, CheckpointInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	db, err := store.Recover(func() (*core.Database, error) { return core.NewDatabase(), nil })
	if err != nil {
		t.Fatal(err)
	}
	db.SetCommitHook(store.LogCommit)
	s := New(db, Config{Durable: store, TailWindow: 2 * time.Second, TailHeartbeat: 20 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { store.Close() })
	return fs, store, s, ts
}

// newFollowerServer boots a follower of primaryURL over its own
// in-memory store and starts tailing. The returned FS allows the
// follower to be torn down and re-opened over the same "disk".
func newFollowerServer(t *testing.T, primaryURL string, bound time.Duration, fcfg func(*replica.Config)) (*faultfs.FS, *replica.Follower, *Server, *httptest.Server) {
	t.Helper()
	fs := faultfs.New()
	fol, s, ts := openFollowerServer(t, fs, primaryURL, bound, fcfg)
	return fs, fol, s, ts
}

// openFollowerServer recovers a follower from an existing fault
// filesystem — a "restart" when fs already holds state.
func openFollowerServer(t *testing.T, fs *faultfs.FS, primaryURL string, bound time.Duration, fcfg func(*replica.Config)) (*replica.Follower, *Server, *httptest.Server) {
	t.Helper()
	store, err := durable.Open("fdata", durable.Options{
		FS: fs, Generations: 2, CheckpointEvery: -1, CheckpointInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	db, err := store.Recover(func() (*core.Database, error) { return core.NewDatabase(), nil })
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	cfg := replica.Config{
		PrimaryURL:     primaryURL,
		Store:          store,
		DB:             db,
		StalenessBound: bound,
		PollWindow:     time.Second,
		Obs:            reg,
	}
	if fcfg != nil {
		fcfg(&cfg)
	}
	fol, err := replica.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fol.Start(context.Background())
	t.Cleanup(fol.Stop)
	s := New(db, Config{Follower: fol, Durable: store, Obs: reg})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { store.Close() })
	return fol, s, ts
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// rawPost returns the exact response body bytes — the byte-identical
// replay check cannot go through a JSON decode/re-encode.
func rawPost(t *testing.T, ts *httptest.Server, path string, body any) (int, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// The replication e2e: one primary, two followers, concurrent writers.
// Every acked commit must appear on both followers exactly once — the
// full-scan query responses are byte-identical to the primary's at equal
// sequence — and lag must read zero once caught up.
func TestReplicationE2E(t *testing.T) {
	_, store, _, pts := newPrimaryServer(t)
	_, fol1, _, fts1 := newFollowerServer(t, pts.URL, 10*time.Second, nil)
	_, fol2, _, fts2 := newFollowerServer(t, pts.URL, 10*time.Second, nil)

	mustOK(t, pts, http.MethodPost, "/addblock",
		Request{Name: "views", Src: `small(x) <- p(x), x < 8.`}, nil)

	// Concurrent writers: 4 goroutines, disjoint value ranges.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				mustOK(t, pts, http.MethodPost, "/exec",
					Request{Src: fmt.Sprintf("+p(%d).", w*100+i)}, nil)
			}
		}(w)
	}
	wg.Wait()

	head := store.Stats().LastSeq
	waitUntil(t, 10*time.Second, "follower 1 catch-up", func() bool { return fol1.Status().AppliedSeq >= head })
	waitUntil(t, 10*time.Second, "follower 2 catch-up", func() bool { return fol2.Status().AppliedSeq >= head })

	// Exactly-once, byte-identical at equal seq: the same full scans
	// against primary and both followers return identical bytes.
	for _, src := range []string{`_(x) <- p(x).`, `_(x) <- small(x).`} {
		req := Request{Src: src}
		wantStatus, want := rawPost(t, pts, "/query", req)
		if wantStatus != http.StatusOK {
			t.Fatalf("primary query %q: status %d", src, wantStatus)
		}
		for i, fts := range []*httptest.Server{fts1, fts2} {
			gotStatus, got := rawPost(t, fts, "/query", req)
			if gotStatus != http.StatusOK {
				t.Fatalf("follower %d query %q: status %d", i+1, src, gotStatus)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("follower %d query %q diverges:\n got %s\nwant %s", i+1, src, got, want)
			}
		}
	}

	// Replay is exactly-once on disk too: the follower journaled each
	// record once, so its local store head equals the primary's.
	if st := fol1.Status(); st.AppliedSeq != head || st.LagSeq != 0 {
		t.Fatalf("follower 1 status %+v, want applied=%d lag=0", st, head)
	}

	// Lag reporting on /healthz: replica section, zero lag, follower mode.
	var health struct {
		Mode    string          `json:"mode"`
		Replica *replica.Status `json:"replica"`
	}
	if status := do(t, fts1, http.MethodGet, "/healthz", nil, &health); status != http.StatusOK {
		t.Fatalf("follower healthz status %d", status)
	}
	if health.Mode != "follower" || health.Replica == nil {
		t.Fatalf("follower healthz %+v, want follower mode with replica status", health)
	}
	if health.Replica.LagSeq != 0 || health.Replica.Stale {
		t.Fatalf("caught-up follower reports lag %+v", health.Replica)
	}
}

// Writes against a follower answer 421 with the primary's address.
func TestFollowerRejectsWrites(t *testing.T) {
	_, _, _, pts := newPrimaryServer(t)
	_, fol, _, fts := newFollowerServer(t, pts.URL, 10*time.Second, nil)
	waitUntil(t, 10*time.Second, "follower connect", func() bool { return fol.Status().Connected })

	for _, probe := range []struct {
		path string
		body any
	}{
		{"/exec", Request{Src: "+p(1)."}},
		{"/addblock", Request{Name: "b", Src: "q(x) <- p(x)."}},
		{"/branches", BranchRequest{Op: "create", From: "main", To: "other"}},
	} {
		var errResp ErrorResponse
		status := do(t, fts, http.MethodPost, probe.path, probe.body, &errResp)
		if status != http.StatusMisdirectedRequest || errResp.Code != "read_only" {
			t.Fatalf("%s on follower: status %d code %q, want 421 read_only", probe.path, status, errResp.Code)
		}
		if errResp.Primary != pts.URL {
			t.Fatalf("%s read_only error names primary %q, want %q", probe.path, errResp.Primary, pts.URL)
		}
	}

	// Reads stay served locally: /query, /branches GET, and diff work.
	mustOK(t, pts, http.MethodPost, "/exec", Request{Src: "+p(5)."}, nil)
	waitUntil(t, 10*time.Second, "follower catch-up", func() bool { return fol.Status().LagSeq == 0 && fol.Status().AppliedSeq > 0 })
	if got := queryInts(t, fts, "main", `_(x) <- p(x).`); !intsEqual(got, []int{5}) {
		t.Fatalf("follower read = %v, want [5]", got)
	}
}

// A follower cut off from its primary past the staleness bound answers
// 503 stale_read on /query and flips /healthz.
func TestFollowerStaleRead(t *testing.T) {
	_, store, _, pts := newPrimaryServer(t)
	_, fol, _, fts := newFollowerServer(t, pts.URL, 150*time.Millisecond, nil)

	mustOK(t, pts, http.MethodPost, "/exec", Request{Src: "+p(1)."}, nil)
	head := store.Stats().LastSeq
	waitUntil(t, 10*time.Second, "follower catch-up", func() bool { return fol.Status().AppliedSeq >= head })

	pts.CloseClientConnections()
	pts.Close()
	waitUntil(t, 10*time.Second, "staleness bound to trip", fol.Stale)

	var errResp ErrorResponse
	status := do(t, fts, http.MethodPost, "/query", Request{Src: `_(x) <- p(x).`}, &errResp)
	if status != http.StatusServiceUnavailable || errResp.Code != "stale_read" {
		t.Fatalf("stale follower query: status %d code %q, want 503 stale_read", status, errResp.Code)
	}
	var health struct {
		Status  string          `json:"status"`
		Replica *replica.Status `json:"replica"`
	}
	if status := do(t, fts, http.MethodGet, "/healthz", nil, &health); status != http.StatusServiceUnavailable {
		t.Fatalf("stale follower healthz status %d, want 503", status)
	}
	if health.Status != "stale" || health.Replica == nil || !health.Replica.Stale {
		t.Fatalf("stale follower healthz %+v", health)
	}
}

// A follower paused while the primary's checkpointer truncates the
// journal past its position must recover through a full snapshot resync,
// not diverge or wedge.
func TestFollowerResyncAfterTruncation(t *testing.T) {
	_, store, ps, pts := newPrimaryServer(t)
	db := ps.Database()

	// Phase 1: follower catches up to the first burst, then goes away
	// (server torn down, local durable state kept).
	ffs, fol, _, _ := newFollowerServer(t, pts.URL, time.Minute, nil)
	for v := 0; v < 4; v++ {
		mustOK(t, pts, http.MethodPost, "/exec", Request{Src: fmt.Sprintf("+p(%d).", v)}, nil)
	}
	head := store.Stats().LastSeq
	waitUntil(t, 10*time.Second, "follower catch-up", func() bool { return fol.Status().AppliedSeq >= head })
	pausedAt := fol.Status().AppliedSeq
	fol.Stop()

	// Phase 2: more commits and two checkpoints raise the retained floor
	// strictly past the paused follower's position (generations=2 keeps
	// the older checkpoint as the floor, so both must postdate the pause).
	for v := 4; v < 6; v++ {
		mustOK(t, pts, http.MethodPost, "/exec", Request{Src: fmt.Sprintf("+p(%d).", v)}, nil)
	}
	if err := store.Checkpoint(db.SaveSnapshot); err != nil {
		t.Fatal(err)
	}
	for v := 6; v < 8; v++ {
		mustOK(t, pts, http.MethodPost, "/exec", Request{Src: fmt.Sprintf("+p(%d).", v)}, nil)
	}
	if err := store.Checkpoint(db.SaveSnapshot); err != nil {
		t.Fatal(err)
	}
	if floor := store.Floor(); floor <= pausedAt {
		t.Fatalf("retained floor %d did not pass the paused follower at %d", floor, pausedAt)
	}

	// Phase 3: the follower comes back over its old local state. Tailing
	// from its position gets 410 journal_truncated and must resync.
	fol2, _, fts2 := openFollowerServer(t, ffs, pts.URL, time.Minute, nil)
	waitUntil(t, 10*time.Second, "resynced follower catch-up", func() bool {
		st := fol2.Status()
		return st.AppliedSeq >= store.Stats().LastSeq && st.Resyncs > 0
	})
	want := []int{0, 1, 2, 3, 4, 5, 6, 7}
	if got := queryInts(t, fts2, "main", `_(x) <- p(x).`); !intsEqual(got, want) {
		t.Fatalf("resynced follower p = %v, want %v", got, want)
	}
}

// POST /promote turns a follower into a primary that accepts writes
// continuing the replicated sequence.
func TestPromoteEndpoint(t *testing.T) {
	_, store, _, pts := newPrimaryServer(t)
	_, fol, _, fts := newFollowerServer(t, pts.URL, 10*time.Second, nil)

	mustOK(t, pts, http.MethodPost, "/exec", Request{Src: "+p(1)."}, nil)
	head := store.Stats().LastSeq
	waitUntil(t, 10*time.Second, "follower catch-up", func() bool { return fol.Status().AppliedSeq >= head })

	var resp PromoteResponse
	if status := do(t, fts, http.MethodPost, "/promote", nil, &resp); status != http.StatusOK || !resp.Promoted {
		t.Fatalf("promote: status %d resp %+v", status, resp)
	}
	// Promoted: writes accepted, health reports primary mode.
	mustOK(t, fts, http.MethodPost, "/exec", Request{Src: "+p(2)."}, nil)
	if got := queryInts(t, fts, "main", `_(x) <- p(x).`); !intsEqual(got, []int{1, 2}) {
		t.Fatalf("promoted follower p = %v, want [1 2]", got)
	}
	var health struct {
		Mode string `json:"mode"`
	}
	if status := do(t, fts, http.MethodGet, "/healthz", nil, &health); status != http.StatusOK || health.Mode != "primary" {
		t.Fatalf("promoted healthz: status %d mode %q", status, health.Mode)
	}
	// Idempotent.
	var again PromoteResponse
	if status := do(t, fts, http.MethodPost, "/promote", nil, &again); status != http.StatusOK || !again.AlreadyPromoted {
		t.Fatalf("second promote: status %d resp %+v", status, again)
	}
	// Promote on a primary is a typed error.
	var errResp ErrorResponse
	if status := do(t, pts, http.MethodPost, "/promote", nil, &errResp); status != http.StatusPreconditionFailed || errResp.Code != "not_follower" {
		t.Fatalf("promote on primary: status %d code %q", status, errResp.Code)
	}
}

// With -promote-on-failure, a follower promotes itself after consecutive
// primary probe failures.
func TestAutoPromoteOnPrimaryFailure(t *testing.T) {
	_, store, _, pts := newPrimaryServer(t)
	_, fol, _, fts := newFollowerServer(t, pts.URL, time.Minute, func(cfg *replica.Config) {
		cfg.PromoteOnFailure = true
		cfg.ProbeInterval = 20 * time.Millisecond
		cfg.ProbeFailures = 3
	})

	mustOK(t, pts, http.MethodPost, "/exec", Request{Src: "+p(9)."}, nil)
	head := store.Stats().LastSeq
	waitUntil(t, 10*time.Second, "follower catch-up", func() bool { return fol.Status().AppliedSeq >= head })

	pts.CloseClientConnections()
	pts.Close()
	waitUntil(t, 10*time.Second, "auto-promotion", fol.Promoted)

	mustOK(t, fts, http.MethodPost, "/exec", Request{Src: "+p(10)."}, nil)
	if got := queryInts(t, fts, "main", `_(x) <- p(x).`); !intsEqual(got, []int{9, 10}) {
		t.Fatalf("auto-promoted follower p = %v, want [9 10]", got)
	}
}
