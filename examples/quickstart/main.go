// The quickstart example walks through the core LogicBlox workflow from
// the paper's §2.2: install logic blocks (schema, derivation rules,
// integrity constraints), load data with exec transactions over reactive
// deltas, run queries against the designated answer predicate, and watch
// an integrity constraint abort an illegal transaction.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"logicblox"
)

func main() {
	db := logicblox.Open()
	ws, err := db.Workspace(logicblox.DefaultBranch)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Install a block: 6NF schema with type declarations, a derived
	//    view in the abbreviated functional syntax, and a constraint.
	ws, err = ws.AddBlock("catalog", `
		sellingPrice[p] = v -> Product(p), float(v).
		buyingPrice[p] = v -> Product(p), float(v).
		profit[p] = sellingPrice[p] - buyingPrice[p] <- Product(p).
		// Nobody sells at a loss:
		Product(p) -> sellingPrice[p] >= buyingPrice[p].`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("installed block 'catalog'; blocks:", ws.Blocks())

	// 2. Load data via an exec transaction (reactive +delta facts).
	res, err := ws.Exec(`
		+Product("Popsicle").  +Product("IceCream").  +Product("Soda").
		+sellingPrice["Popsicle"] = 1.0.  +buyingPrice["Popsicle"] = 0.4.
		+sellingPrice["IceCream"] = 3.5.  +buyingPrice["IceCream"] = 2.0.
		+sellingPrice["Soda"]     = 2.0.  +buyingPrice["Soda"]     = 1.5.`)
	if err != nil {
		log.Fatal(err)
	}
	ws = res.Workspace
	fmt.Println("loaded", len(res.BaseDeltas), "base predicates")

	// 3. Query: profitable products, via the materialized profit view.
	rows, err := ws.Query(`_(p, v) <- profit[p] = v, v >= 1.0.`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("high-margin products:")
	for _, r := range rows {
		fmt.Printf("  %s: %v\n", r[0].AsString(), r[1])
	}

	// 4. A reactive rule from the paper (§2.2.1): discount popsicles when
	//    a promotion is created.
	res, err = ws.Exec(`
		^sellingPrice["Popsicle"] = y <-
			sellingPrice@start["Popsicle"] = x,
			+promo("Popsicle", "2015-01"),
			y = 0.8 * x.
		+promo("Popsicle", "2015-01").`)
	if err != nil {
		log.Fatal(err)
	}
	ws = res.Workspace
	v, _ := ws.Relation("sellingPrice").FuncGet(logicblox.Strings("Popsicle"))
	fmt.Printf("popsicle price after promotion discount: %v\n", v)

	// 5. The constraint rejects a state where we would sell at a loss;
	//    the transaction aborts and the workspace is untouched.
	if _, err := ws.Exec(`^sellingPrice["IceCream"] = 1.0.`); err != nil {
		fmt.Println("constraint protected us:")
		fmt.Println("  ", err)
	}

	// 6. Commit and time-travel: every committed version stays reachable.
	if err := db.Commit(logicblox.DefaultBranch, ws); err != nil {
		log.Fatal(err)
	}
	fmt.Println("versions in history:", db.Versions())
}
