package solver

import (
	"math"
	"testing"

	"logicblox/internal/obs"
)

// TestSolverRecordsObsCounters checks the solver publishes its work to
// the process-wide registry: simplex pivots for LP solves, and branch-
// and-bound nodes for MIP solves.
func TestSolverRecordsObsCounters(t *testing.T) {
	reg := obs.NewRegistry()
	obs.SetDefault(reg)
	defer obs.SetDefault(nil)

	// max 3x + 2y s.t. x + y ≤ 4, x + 3y ≤ 6 — needs at least one pivot.
	lp := &Problem{
		NumVars:   2,
		Objective: []float64{3, 2},
		Constraints: []LinConstraint{
			{Coeffs: map[int]float64{0: 1, 1: 1}, Op: LE, RHS: 4},
			{Coeffs: map[int]float64{0: 1, 1: 3}, Op: LE, RHS: 6},
		},
	}
	s, err := SolveLP(lp)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("LP status = %v", s.Status)
	}
	pivots := reg.Snapshot().Counters["solver.simplex.pivots"]
	if pivots == 0 {
		t.Fatal("no simplex pivots recorded")
	}

	// A knapsack whose relaxation is fractional forces branching.
	mip := &Problem{
		NumVars:   3,
		Objective: []float64{5, 4, 3},
		Integer:   []bool{true, true, true},
		Constraints: []LinConstraint{
			{Coeffs: map[int]float64{0: 2, 1: 3, 2: 1}, Op: LE, RHS: 5},
			{Coeffs: map[int]float64{0: 1}, Op: LE, RHS: 1},
			{Coeffs: map[int]float64{1: 1}, Op: LE, RHS: 1},
			{Coeffs: map[int]float64{2: 1}, Op: LE, RHS: 1},
		},
	}
	ms, err := SolveMIP(mip)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Status != Optimal || math.Abs(ms.Objective-9) > 1e-6 {
		t.Fatalf("MIP solution = %+v", ms)
	}
	snap := reg.Snapshot()
	if snap.Counters["solver.bnb.nodes"] == 0 {
		t.Fatal("no branch-and-bound nodes recorded")
	}
	if snap.Counters["solver.simplex.pivots"] <= pivots {
		t.Fatal("MIP relaxations recorded no additional pivots")
	}
}
