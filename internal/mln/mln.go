// Package mln implements the statistical-relational extension the paper
// sketches in §2.3.3: soft (weighted) constraints in the style of Markov
// Logic Networks, with MAP inference formulated as a mathematical
// optimization problem and solved with the prescriptive-analytics
// machinery (an integer program over grounded constraint satisfactions).
//
// A soft constraint  w : Body -> Head  contributes weight w for every
// grounding of Body whose Head literal is satisfied. Query atoms are 0/1
// decision variables; MAP inference finds the truth assignment maximizing
// the total weight of satisfied groundings.
package mln

import (
	"fmt"

	"logicblox/internal/compiler"
	"logicblox/internal/engine"
	"logicblox/internal/parser"
	"logicblox/internal/relation"
	"logicblox/internal/solver"
	"logicblox/internal/tuple"
)

// SoftConstraint is a weighted rule: for each binding of the body over
// the evidence, the head atom (possibly negated) should hold; violations
// forgo Weight instead of aborting a transaction.
type SoftConstraint struct {
	Weight float64
	// Source is LogiQL syntax "body -> head." where head is a single
	// (possibly negated) atom over the query predicate.
	Source string
}

// Program is an MLN-style model: evidence relations, soft constraints,
// and the query predicates whose groundings are inferred.
type Program struct {
	QueryPreds []string
	Evidence   map[string]relation.Relation
	Soft       []SoftConstraint
	// Observed fixes some query-atom truth values (conditioning).
	Observed map[string]map[string]bool // pred → tuple.String() → truth
}

// MAPResult is the most probable world.
type MAPResult struct {
	// True holds, per query predicate, the tuples inferred true.
	True map[string]relation.Relation
	// Weight is the total satisfied weight.
	Weight float64
}

// grounding of one soft constraint: the query atom's tuple and sign.
type groundLit struct {
	pred    string
	t       tuple.Tuple
	negated bool
	weight  float64
}

// Infer computes the MAP world by grounding every soft constraint over
// the evidence and solving the resulting integer program.
func Infer(p *Program) (*MAPResult, error) {
	queries := map[string]bool{}
	for _, q := range p.QueryPreds {
		queries[q] = true
	}
	var lits []groundLit
	for _, sc := range p.Soft {
		ls, err := groundSoft(sc, p, queries)
		if err != nil {
			return nil, err
		}
		lits = append(lits, ls...)
	}

	// Decision variables: one 0/1 var per distinct query atom, plus one
	// auxiliary satisfaction var per grounding.
	varIdx := map[string]int{}
	varTuple := map[int]struct {
		pred string
		t    tuple.Tuple
	}{}
	atomVar := func(pred string, t tuple.Tuple) int {
		key := pred + "\x00" + t.String()
		if i, ok := varIdx[key]; ok {
			return i
		}
		i := len(varIdx)
		varIdx[key] = i
		varTuple[i] = struct {
			pred string
			t    tuple.Tuple
		}{pred, t.Clone()}
		return i
	}
	for _, l := range lits {
		atomVar(l.pred, l.t)
	}
	numAtoms := len(varIdx)
	prob := &solver.Problem{}
	numVars := numAtoms + len(lits)
	prob.NumVars = numVars
	prob.Objective = make([]float64, numVars)
	prob.Integer = make([]bool, numVars)
	for i := range prob.Integer {
		prob.Integer[i] = true
	}
	// All variables in [0,1].
	for i := 0; i < numVars; i++ {
		prob.Constraints = append(prob.Constraints, solver.LinConstraint{
			Coeffs: map[int]float64{i: 1}, Op: solver.LE, RHS: 1,
		})
	}
	// Satisfaction linking: for grounding g with positive head atom a,
	// sat_g ≤ a; for negated head, sat_g ≤ 1 − a. Negative weights invert
	// the relation (sat_g ≥ …) — handled by maximizing, which pushes
	// sat_g up only for positive weights; for negative weights the
	// objective pushes sat down, so we need the lower bound instead.
	for gi, l := range lits {
		sat := numAtoms + gi
		a := atomVar(l.pred, l.t)
		prob.Objective[sat] = l.weight
		sign := 1.0
		rhs := 0.0
		if l.negated {
			sign = -1.0
			rhs = 1.0
		}
		if l.weight >= 0 {
			// sat ≤ sign·a + rhs
			prob.Constraints = append(prob.Constraints, solver.LinConstraint{
				Coeffs: map[int]float64{sat: 1, a: -sign}, Op: solver.LE, RHS: rhs,
			})
		} else {
			// sat ≥ sign·a + rhs
			prob.Constraints = append(prob.Constraints, solver.LinConstraint{
				Coeffs: map[int]float64{sat: 1, a: -sign}, Op: solver.GE, RHS: rhs,
			})
		}
	}
	// Observations fix atom variables.
	for pred, obs := range p.Observed {
		for ts, truth := range obs {
			key := pred + "\x00" + ts
			i, ok := varIdx[key]
			if !ok {
				continue
			}
			rhs := 0.0
			if truth {
				rhs = 1
			}
			prob.Constraints = append(prob.Constraints, solver.LinConstraint{
				Coeffs: map[int]float64{i: 1}, Op: solver.EQ, RHS: rhs,
			})
		}
	}

	sol, err := solver.SolveMIP(prob)
	if err != nil {
		return nil, err
	}
	if sol.Status != solver.Optimal {
		return nil, fmt.Errorf("mln: MAP inference %s", sol.Status)
	}
	out := &MAPResult{True: map[string]relation.Relation{}, Weight: sol.Objective}
	for _, q := range p.QueryPreds {
		// Arity from any grounded atom.
		arity := 1
		for i := 0; i < numAtoms; i++ {
			if varTuple[i].pred == q {
				arity = len(varTuple[i].t)
				break
			}
		}
		out.True[q] = relation.New(arity)
	}
	for i := 0; i < numAtoms; i++ {
		if sol.X[i] > 0.5 {
			vt := varTuple[i]
			if rel, ok := out.True[vt.pred]; ok {
				out.True[vt.pred] = rel.Insert(vt.t)
			}
		}
	}
	return out, nil
}

// groundSoft enumerates a soft constraint's body over the evidence and
// emits one ground literal per binding.
func groundSoft(sc SoftConstraint, p *Program, queries map[string]bool) ([]groundLit, error) {
	prog, err := parser.Parse(sc.Source)
	if err != nil {
		return nil, fmt.Errorf("mln: constraint %q: %w", sc.Source, err)
	}
	ks := prog.Constraints()
	if len(ks) != 1 {
		return nil, fmt.Errorf("mln: constraint %q must be a single F -> G clause", sc.Source)
	}
	k := ks[0]
	if len(k.Head) != 1 || k.Head[0].Atom == nil {
		return nil, fmt.Errorf("mln: constraint %q head must be one atom", sc.Source)
	}
	head := k.Head[0]
	if !queries[head.Atom.Pred] {
		return nil, fmt.Errorf("mln: head predicate %s is not a query predicate", head.Atom.Pred)
	}
	// Bodies may reference query predicates only positively as evidence-
	// independent structure; to keep grounding tractable we require
	// bodies over evidence predicates (possibly including query preds as
	// evidence if observed — not supported here).
	compiled, err := compiler.Compile(prog)
	if err != nil {
		return nil, fmt.Errorf("mln: constraint %q: %w", sc.Source, err)
	}
	if len(compiled.Constraints) != 1 {
		return nil, fmt.Errorf("mln: constraint %q compiled unexpectedly", sc.Source)
	}
	plan := compiled.Constraints[0]
	if len(plan.HeadAtoms)+len(plan.HeadNegAtoms) != 1 {
		return nil, fmt.Errorf("mln: constraint %q head must ground to one atom", sc.Source)
	}
	ctx := engine.NewContext(compiled, p.Evidence, engine.Options{})
	var lits []groundLit
	var groundErr error
	err = ctx.EnumerateBindings(plan.Body, nil, func(binding tuple.Tuple) bool {
		var pred string
		var args []compiler.Expr
		negated := head.Negated
		if len(plan.HeadAtoms) == 1 {
			pred, args = plan.HeadAtoms[0].Name, plan.HeadAtoms[0].Args
		} else {
			pred, args = plan.HeadNegAtoms[0].Name, plan.HeadNegAtoms[0].Args
		}
		t := make(tuple.Tuple, len(args))
		for i, a := range args {
			v, err := a.Eval(binding, nil)
			if err != nil {
				groundErr = err
				return false
			}
			t[i] = v
		}
		lits = append(lits, groundLit{pred: pred, t: t, negated: negated, weight: sc.Weight})
		return true
	})
	if err == nil {
		err = groundErr
	}
	return lits, err
}
