package logicblox

import (
	"logicblox/internal/obs"
	"logicblox/internal/relation"
)

// Observability. The obs registry collects engine-wide metrics: per-rule
// evaluation profiles (time, tuples, LFTJ seeks/nexts, sensitivity
// records), transaction spans with phase timings, IVM work counters, and
// storage-layer sharing statistics. A registry can be attached to one
// workspace lineage with Workspace.WithObserver, or installed process-
// wide with SetDefaultObserver; with no registry installed every
// instrumentation point is a no-op.

// ObsRegistry owns a namespace of metrics, rule profiles and traces.
type ObsRegistry = obs.Registry

// ObsSnapshot is a point-in-time structured copy of a registry. It
// marshals to expvar-style JSON via its WriteJSON method.
type ObsSnapshot = obs.Snapshot

// SpanSnapshot is the structured value of one trace span subtree.
type SpanSnapshot = obs.SpanSnapshot

// NewObsRegistry returns an empty metrics registry.
func NewObsRegistry() *ObsRegistry { return obs.NewRegistry() }

// SetDefaultObserver installs reg as the process-wide default registry
// picked up by every workspace and engine context that was not handed an
// explicit one (nil disables, the default).
func SetDefaultObserver(reg *ObsRegistry) { obs.SetDefault(reg) }

// DefaultObserver returns the process-wide default registry, or nil.
func DefaultObserver() *ObsRegistry { return obs.Default() }

// EnableStorageStats toggles the storage-layer (treap) work counters;
// transactions then refresh the treap.* gauges of their registry.
func EnableStorageStats(on bool) { relation.EnableStorageStats(on) }

// FormatRuleTable renders a snapshot's per-rule profile as an aligned
// text table, most expensive rule first.
func FormatRuleTable(s ObsSnapshot) string { return obs.FormatRuleTable(s) }

// FormatCounters renders a snapshot's counters, gauges and histogram
// summaries as sorted "name value" lines.
func FormatCounters(s ObsSnapshot) string { return obs.FormatCounters(s) }

// FormatSpanTree renders one trace as an indented tree.
func FormatSpanTree(s SpanSnapshot) string { return obs.FormatSpanTree(s) }
