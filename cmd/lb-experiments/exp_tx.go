package main

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"logicblox/internal/core"
)

// runRepair reproduces the paper's §3.4 illustration on the real engine:
// optimistic transactions race for one branch head, and a loser either
// re-executes in full (coarse retry) or is repaired from its recorded
// sensitivity intervals. Each transaction touches any of n inventory
// items with probability α·n^(−1/2), so two transactions share α² items
// in expectation; every touched item is decremented through a point read
// (^inv[k] = r <- inv@start[k] = q, r = q - 1.), which records a point
// interval on exactly that key. Transactions with disjoint item sets
// therefore repair instead of re-executing, and the repair/full_reexec
// split tracks α² directly — the paper's claim that repair work stays
// proportional to the shared items, hardware-independent of the
// wall-clock speedups (bounded by GOMAXPROCS, printed below).
func runRepair(quick bool) {
	n := 2000
	txCount := 128
	if quick {
		n, txCount = 500, 48
	}
	workerSet := []int{2, 4, 8}
	cpus := runtime.GOMAXPROCS(0)
	fmt.Printf("GOMAXPROCS = %d (speedups are bounded by available cores)\n", cpus)

	for _, alpha := range []float64{0.1, 1, 10} {
		seed := inventoryWorkspace(n)
		txs := inventoryTxns(n, txCount, alpha, 11)
		ops := 0
		for _, tx := range txs {
			ops += strings.Count(tx, "\n")
		}
		fmt.Printf("alpha=%.1f: E[shared items per pair] = %.2f, avg ops/tx = %d\n",
			alpha, alpha*alpha, ops/len(txs))

		t0 := time.Now()
		want := runTxSerial(core.NewDatabaseWith(seed), txs)
		serial := time.Since(t0)
		fmt.Printf("  serial: %v\n", serial.Round(time.Millisecond))
		fmt.Printf("  %-9s %-12s %-9s %-9s %-9s %-12s %-9s %-9s\n",
			"workers", "repair", "speedup", "repaired", "full", "coarse", "speedup", "full")
		for _, w := range workerSet {
			t0 = time.Now()
			gotR, statsR := runTxConcurrent(core.NewDatabaseWith(seed), txs, w, true)
			dR := time.Since(t0)
			t0 = time.Now()
			gotC, statsC := runTxConcurrent(core.NewDatabaseWith(seed), txs, w, false)
			dC := time.Since(t0)
			if !want.Relation("inv").Equal(gotR.Relation("inv")) || !want.Relation("inv").Equal(gotC.Relation("inv")) {
				panic("serializability violated: concurrent final state diverged from serial")
			}
			fmt.Printf("  %-9d %-12v %-9.2f %-9d %-9d %-12v %-9.2f %-9d\n",
				w, dR.Round(time.Millisecond), serial.Seconds()/dR.Seconds(), statsR.repairs, statsR.fullReexecs,
				dC.Round(time.Millisecond), serial.Seconds()/dC.Seconds(), statsC.fullReexecs)
		}
	}
	fmt.Println("shape check: repaired conflicts dominate at small α (disjoint item sets,")
	fmt.Println("point-interval reads miss the winner's writes); full re-executions take")
	fmt.Println("over as α² shared items make the loser's reads stale.")
}

// inventoryWorkspace seeds inv[k] = 1000 for k in [0, n).
func inventoryWorkspace(n int) *core.Workspace {
	var b strings.Builder
	for k := 0; k < n; k++ {
		fmt.Fprintf(&b, "+inv[%d] = 1000.\n", k)
	}
	ws := core.NewWorkspace()
	res, err := ws.Exec(b.String())
	if err != nil {
		panic(err)
	}
	return res.Workspace
}

// inventoryTxns builds txCount transaction sources; each decrements every
// item it touches (probability α·n^(−1/2) per item) via a point read.
func inventoryTxns(n, txCount int, alpha float64, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	p := alpha / math.Sqrt(float64(n))
	txs := make([]string, 0, txCount)
	for i := 0; i < txCount; i++ {
		var b strings.Builder
		for k := 0; k < n; k++ {
			if rng.Float64() < p {
				fmt.Fprintf(&b, "^inv[%d] = r <- inv@start[%d] = q, r = q - 1.\n", k, k)
			}
		}
		if b.Len() == 0 { // empty transactions carry no signal
			k := rng.Intn(n)
			fmt.Fprintf(&b, "^inv[%d] = r <- inv@start[%d] = q, r = q - 1.\n", k, k)
		}
		txs = append(txs, b.String())
	}
	return txs
}

type txStats struct {
	conflicts, repairs, fullReexecs int64
}

// runTxSerial applies the transactions one at a time — the ground-truth
// final state and the speedup baseline.
func runTxSerial(db *core.Database, txs []string) *core.Workspace {
	for _, src := range txs {
		head, err := db.Workspace("main")
		if err != nil {
			panic(err)
		}
		res, err := head.Exec(src)
		if err != nil {
			panic(err)
		}
		if err := db.CommitIf("main", head, res.Workspace); err != nil {
			panic(err)
		}
	}
	head, _ := db.Workspace("main")
	return head
}

// runTxConcurrent races the transactions over `workers` goroutines with
// optimistic commits. With repair enabled, a lost CAS first tries
// fine-grained repair from the recorded execution; otherwise (and on
// repair fallback) the whole transaction re-executes against the new
// head.
func runTxConcurrent(db *core.Database, txs []string, workers int, repair bool) (*core.Workspace, txStats) {
	ctx := context.Background()
	var stats txStats
	work := make(chan string, len(txs))
	for _, src := range txs {
		work <- src
	}
	close(work)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for src := range work {
				head, err := db.Workspace("main")
				if err != nil {
					panic(err)
				}
				var res *core.ExecResult
				var rec *core.ExecRecord
				if repair {
					res, rec, err = head.ExecRecordedCtx(ctx, src)
				} else {
					res, err = head.ExecCtx(ctx, src)
				}
				if err != nil {
					panic(err)
				}
				for db.CommitIf("main", head, res.Workspace) != nil {
					atomic.AddInt64(&stats.conflicts, 1)
					newHead, err := db.Workspace("main")
					if err != nil {
						panic(err)
					}
					if rec != nil {
						if res2, _, rerr := rec.Repair(ctx, newHead); rerr == nil {
							atomic.AddInt64(&stats.repairs, 1)
							head, res = newHead, res2
							continue
						}
					}
					atomic.AddInt64(&stats.fullReexecs, 1)
					head = newHead
					if repair {
						res, rec, err = head.ExecRecordedCtx(ctx, src)
					} else {
						res, err = head.ExecCtx(ctx, src)
					}
					if err != nil {
						panic(err)
					}
				}
			}
		}()
	}
	wg.Wait()
	head, _ := db.Workspace("main")
	return head, stats
}
