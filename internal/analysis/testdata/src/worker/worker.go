// Package worker is a ctxloop-analyzer negative fixture: its name is
// outside the checked set, so even a bare spin loop is not flagged.
package worker

func spin(try func() bool) {
	for {
		if try() {
			return
		}
	}
}
