package durable

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"logicblox/internal/core"
)

// The commit journal is an append-only file of framed gob records, one
// per recorded commit:
//
//	offset 0  magic "LBJRNL1\n" (8 bytes, file header, written once)
//	then per record:
//	  uint32 big-endian  payload length
//	  uint32 big-endian  CRC-32C of the payload
//	  payload            gob-encoded core.CommitRecord
//
// Each record is encoded with a fresh gob encoder so records are
// self-contained: a torn tail (truncated frame or checksum mismatch)
// invalidates only the records at and after the tear. Replay stops at
// the first invalid frame — everything before it was made durable by an
// fsync that necessarily preceded the torn append.

var journalMagic = [8]byte{'L', 'B', 'J', 'R', 'N', 'L', '1', '\n'}

const (
	// journalName is the journal file within a Store directory.
	journalName = "journal.lbj"
	// maxRecordBytes bounds one record frame; larger lengths in the file
	// mean a corrupt frame, not a real record.
	maxRecordBytes = 64 << 20
)

// encodeRecord frames one commit record.
func encodeRecord(rec core.CommitRecord) ([]byte, error) {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(rec); err != nil {
		return nil, err
	}
	out := make([]byte, 8, 8+body.Len())
	binary.BigEndian.PutUint32(out[0:], uint32(body.Len()))
	binary.BigEndian.PutUint32(out[4:], crc32.Checksum(body.Bytes(), castagnoli))
	return append(out, body.Bytes()...), nil
}

// readJournal parses a journal file's bytes. It returns the valid
// records and whether the file ended in a torn/corrupt frame (the tail
// after the last valid record is then garbage and must be truncated
// before further appends). A missing or empty file is zero records.
func readJournal(raw []byte) (recs []core.CommitRecord, torn bool) {
	if len(raw) == 0 {
		return nil, false
	}
	if len(raw) < len(journalMagic) || !bytes.Equal(raw[:len(journalMagic)], journalMagic[:]) {
		return nil, true
	}
	rest := raw[len(journalMagic):]
	for len(rest) > 0 {
		if len(rest) < 8 {
			return recs, true
		}
		n := binary.BigEndian.Uint32(rest[0:])
		want := binary.BigEndian.Uint32(rest[4:])
		if n > maxRecordBytes || uint32(len(rest)-8) < n {
			return recs, true
		}
		body := rest[8 : 8+n]
		if crc32.Checksum(body, castagnoli) != want {
			return recs, true
		}
		var rec core.CommitRecord
		if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&rec); err != nil {
			return recs, true
		}
		recs = append(recs, rec)
		rest = rest[8+n:]
	}
	return recs, false
}

// journal is the Store's open journal file. Callers serialize access
// (the Store's mutex).
type journal struct {
	fsys FS
	dir  string
	f    File
	// dirty is set by appends under the "interval" fsync policy and
	// cleared by Sync; the Store's flusher goroutine polls it.
	dirty bool
}

func (j *journal) path() string { return filepath.Join(j.dir, journalName) }

// open opens (creating and header-initializing if needed) the journal
// for appending. Creation is made durable with a directory fsync.
func (j *journal) open() error {
	names, err := j.fsys.ReadDir(j.dir)
	if err != nil {
		return err
	}
	exists := false
	for _, n := range names {
		if n == journalName {
			exists = true
			break
		}
	}
	f, err := j.fsys.OpenAppend(j.path())
	if err != nil {
		return err
	}
	j.f = f
	if !exists {
		if _, err := f.Write(journalMagic[:]); err != nil {
			return err
		}
		if err := f.Sync(); err != nil {
			return err
		}
		if err := j.fsys.SyncDir(j.dir); err != nil {
			return err
		}
	}
	return nil
}

// append writes one record frame; with sync, it is fsynced before
// returning (the "always" policy — the commit is durable when append
// returns).
func (j *journal) append(rec core.CommitRecord, sync bool) error {
	if j.f == nil {
		return errors.New("journal is closed")
	}
	frame, err := encodeRecord(rec)
	if err != nil {
		return err
	}
	if _, err := j.f.Write(frame); err != nil {
		return err
	}
	if sync {
		return j.f.Sync()
	}
	j.dirty = true
	return nil
}

// sync flushes pending appends (the "interval" policy's periodic flush).
func (j *journal) sync() error {
	if j.f == nil || !j.dirty {
		return nil
	}
	j.dirty = false
	return j.f.Sync()
}

// load reads all valid records currently in the journal file.
func (j *journal) load() (recs []core.CommitRecord, torn bool, err error) {
	f, err := j.fsys.OpenRead(j.path())
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, false, nil
		}
		return nil, false, err
	}
	defer f.Close()
	raw, err := io.ReadAll(f)
	if err != nil {
		return nil, false, err
	}
	recs, torn = readJournal(raw)
	return recs, torn, nil
}

// rewrite atomically replaces the journal with exactly recs (checkpoint
// truncation, or tail cleanup after a torn write): write a fresh
// journal to a temp file, fsync, rename over the old one, fsync the
// directory, and reopen for appending. A crash at any point leaves
// either the old journal or the new one, both valid.
func (j *journal) rewrite(recs []core.CommitRecord) error {
	if j.f != nil {
		if err := j.f.Sync(); err != nil {
			return err
		}
		if err := j.f.Close(); err != nil {
			return err
		}
		j.f = nil
	}
	werr := writeFileAtomic(j.fsys, j.path(), func(w io.Writer) error {
		if _, err := w.Write(journalMagic[:]); err != nil {
			return err
		}
		for _, rec := range recs {
			frame, err := encodeRecord(rec)
			if err != nil {
				return err
			}
			if _, err := w.Write(frame); err != nil {
				return err
			}
		}
		return nil
	})
	// Reopen for appending even if the rewrite failed: the atomic write
	// left either the old journal or the new one in place, and a failed
	// truncation must not wedge the store (commits keep appending to
	// whichever file survived).
	f, err := j.fsys.OpenAppend(j.path())
	if err == nil {
		j.f = f
		j.dirty = false
	}
	if werr != nil {
		return fmt.Errorf("journal rewrite: %w", werr)
	}
	return err
}

func (j *journal) close() error {
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}
