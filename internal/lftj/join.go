package lftj

import (
	"fmt"

	"logicblox/internal/trie"
	"logicblox/internal/tuple"
)

// Atom is one conjunct of an equi-join: a predicate presented as a trie
// iterator plus the mapping from its trie levels to join variables.
// Vars[d] names the join variable bound at trie depth d; the sequence must
// be strictly increasing so the atom's column order is consistent with the
// join's variable order (atoms that are not consistent must be joined
// through a secondary index, paper §3.2).
type Atom struct {
	Pred string // predicate identity, used for sensitivity recording
	Iter trie.Iterator
	Vars []int
	// Cols, when non-nil, maps trie depths to the predicate's stored
	// columns: depth d of Iter reads stored column Cols[d]. Set for atoms
	// joined through a permuted secondary index so sensitivity intervals
	// can be translated back to stored column order; nil means identity.
	Cols []int
}

// Join is a leapfrog triejoin over a set of atoms under a fixed variable
// order. Conceptually it is a backtracking search through the trie of
// potential variable bindings: at each variable a unary leapfrog
// enumerates the values on which all participating atoms agree.
type Join struct {
	numVars int
	atoms   []Atom
	levels  [][]int           // levels[v] = indices of atoms participating at variable v
	iters   [][]trie.Iterator // reusable iterator slices per variable
	binding tuple.Tuple       // current prefix of variable bindings
	rec     *recording
	m       *Metrics // optional work counters (may be nil)
}

// NewJoin validates the atoms and builds a join over numVars variables
// (numbered 0..numVars-1 in the chosen variable order). idx, if non-nil,
// receives the sensitivity intervals of every subsequent Run.
func NewJoin(numVars int, atoms []Atom, idx *SensitivityIndex) (*Join, error) {
	j := &Join{
		numVars: numVars,
		atoms:   atoms,
		levels:  make([][]int, numVars),
		iters:   make([][]trie.Iterator, numVars),
		binding: make(tuple.Tuple, numVars),
	}
	covered := make([]bool, numVars)
	for ai, a := range atoms {
		if len(a.Vars) != a.Iter.Arity() {
			return nil, fmt.Errorf("lftj: atom %s has %d vars for arity %d", a.Pred, len(a.Vars), a.Iter.Arity())
		}
		if a.Cols != nil && len(a.Cols) != len(a.Vars) {
			return nil, fmt.Errorf("lftj: atom %s has %d cols for %d vars", a.Pred, len(a.Cols), len(a.Vars))
		}
		for d, v := range a.Vars {
			if v < 0 || v >= numVars {
				return nil, fmt.Errorf("lftj: atom %s references variable %d out of range", a.Pred, v)
			}
			if d > 0 && a.Vars[d-1] >= v {
				return nil, fmt.Errorf("lftj: atom %s variable order %v inconsistent with join order (secondary index required)", a.Pred, a.Vars)
			}
			j.levels[v] = append(j.levels[v], ai)
			covered[v] = true
		}
	}
	for v := 0; v < numVars; v++ {
		if !covered[v] {
			return nil, fmt.Errorf("lftj: variable %d is bound by no atom", v)
		}
		j.iters[v] = make([]trie.Iterator, len(j.levels[v]))
	}
	if idx != nil {
		j.rec = newRecording(j, idx)
	}
	return j, nil
}

// Run enumerates all satisfying assignments in lexicographic order of the
// variable order, calling emit for each. The binding tuple passed to emit
// is reused between calls; clone it to retain it. Returning false from
// emit aborts the enumeration.
func (j *Join) Run(emit func(binding tuple.Tuple) bool) {
	it := j.Iter()
	defer it.Close()
	for b, ok := it.Next(); ok; b, ok = it.Next() {
		if !emit(b) {
			return
		}
	}
}

// Iter is a pull-based cursor over the join's satisfying assignments: the
// explicit-state form of the backtracking search Run performs, so a
// consumer can draw one binding at a time (streaming query execution)
// instead of receiving a callback per result. Bindings come out in the
// same lexicographic order Run emits them.
type Iter struct {
	j *Join
	// lfs[v] is the unary leapfrog currently open at variable v; entries
	// 0..depth are live.
	lfs []Leapfrog
	// depth is the deepest open level; -1 before the first Next (and for
	// the degenerate zero-variable join), -2 once exhausted or closed.
	depth   int
	started bool
}

// Iter returns a fresh cursor over the join. The join's atom iterators
// are stateful, so at most one Iter (or Run) may be active per Join at a
// time; Close unwinds any levels still open (it is called implicitly when
// the cursor runs to exhaustion).
func (j *Join) Iter() *Iter {
	return &Iter{j: j, lfs: make([]Leapfrog, j.numVars), depth: -1}
}

// open descends into variable level v: every participating atom's trie
// iterator is opened (recording the sensitivity of the landing, exactly
// as the recursive Run did) and a unary leapfrog is initialized over them.
func (it *Iter) open(v int) {
	j := it.j
	iters := j.iters[v]
	for i, ai := range j.levels[v] {
		ait := j.atoms[ai].Iter
		ait.Open()
		if j.rec != nil {
			if ait.AtEnd() {
				j.rec.record(ait, tuple.MinValue(), tuple.Value{}, true)
			} else {
				j.rec.record(ait, tuple.MinValue(), ait.Key(), false)
			}
		}
		iters[i] = ait
	}
	it.lfs[v] = Leapfrog{iters: iters, rec: j.rec, m: j.m}
	it.lfs[v].init()
	it.depth = v
}

// up backtracks out of the current level.
func (it *Iter) up() {
	for _, ai := range it.j.levels[it.depth] {
		it.j.atoms[ai].Iter.Up()
	}
	it.depth--
}

// Next advances to the next satisfying assignment. The returned binding
// is reused between calls (clone it to retain it); ok is false once the
// join is exhausted.
func (it *Iter) Next() (binding tuple.Tuple, ok bool) {
	j := it.j
	if it.depth == -2 {
		return nil, false
	}
	if j.numVars == 0 {
		// Degenerate boolean join: satisfied iff every atom is nonempty,
		// which is vacuously true here because zero-arity atoms cannot
		// participate (arity ≥ 1 enforced by Vars validation).
		it.depth = -2
		return nil, true
	}
	if !it.started {
		it.started = true
		it.open(0)
	} else {
		// Resume past the binding handed out last time.
		it.lfs[it.depth].Next()
	}
	for {
		// Backtrack out of exhausted levels, advancing the parent.
		for it.depth >= 0 && it.lfs[it.depth].AtEnd() {
			it.up()
			if it.depth >= 0 {
				it.lfs[it.depth].Next()
			}
		}
		if it.depth < 0 {
			it.depth = -2
			return nil, false
		}
		j.binding[it.depth] = it.lfs[it.depth].Key()
		if it.depth == j.numVars-1 {
			return j.binding, true
		}
		it.open(it.depth + 1)
	}
}

// Close unwinds any still-open trie levels (restoring every atom iterator
// to its root) and marks the cursor exhausted. Safe to call repeatedly.
func (it *Iter) Close() {
	for it.depth >= 0 {
		it.up()
	}
	it.depth = -2
}

// Count runs the join and returns the number of satisfying assignments.
func (j *Join) Count() int {
	n := 0
	j.Run(func(tuple.Tuple) bool { n++; return true })
	return n
}

// Collect runs the join and returns all bindings (cloned).
func (j *Join) Collect() []tuple.Tuple {
	var out []tuple.Tuple
	j.Run(func(b tuple.Tuple) bool { out = append(out, b.Clone()); return true })
	return out
}
