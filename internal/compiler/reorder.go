package compiler

import (
	"fmt"
	"sort"
)

// ReorderRule returns a copy of the plan with its join variables permuted
// into a new order: order[i] is the old slot of the variable that becomes
// slot i. Atom column permutations (secondary indices) are re-derived and
// every compiled expression is rewritten to the new slot numbering. The
// sampling-based optimizer (paper §3.2) uses this to evaluate candidate
// variable orders.
func ReorderRule(r *RulePlan, order []int) (*RulePlan, error) {
	n := r.NumJoinVars
	if len(order) != n {
		return nil, fmt.Errorf("compiler: order has %d entries for %d join variables", len(order), n)
	}
	// newSlot[old] = position of old slot in the new order.
	newSlot := make([]int, r.Slots)
	seen := make([]bool, n)
	for i, old := range order {
		if old < 0 || old >= n || seen[old] {
			return nil, fmt.Errorf("compiler: order %v is not a permutation of join slots", order)
		}
		seen[old] = true
		newSlot[old] = i
	}
	for s := n; s < r.Slots; s++ {
		newSlot[s] = s // assigned slots keep their positions
	}

	out := *r
	out.VarNames = make([]string, r.Slots)
	for old, name := range r.VarNames {
		out.VarNames[newSlot[old]] = name
	}

	// Rebuild each atom: recover the variable per stored column, remap,
	// and re-sort columns by the new order.
	out.Atoms = make([]AtomPlan, len(r.Atoms))
	for ai, a := range r.Atoms {
		cols := len(a.Vars)
		varOfStored := make([]int, cols)
		for i, v := range a.Vars {
			stored := i
			if a.Perm != nil {
				stored = a.Perm[i]
			}
			varOfStored[stored] = newSlot[v]
		}
		perm := make([]int, cols)
		for i := range perm {
			perm[i] = i
		}
		sort.SliceStable(perm, func(x, y int) bool { return varOfStored[perm[x]] < varOfStored[perm[y]] })
		identity := true
		vars := make([]int, cols)
		for i, p := range perm {
			vars[i] = varOfStored[p]
			if p != i {
				identity = false
			}
		}
		out.Atoms[ai] = AtomPlan{Name: a.Name, Vars: vars}
		if !identity {
			out.Atoms[ai].Perm = perm
		}
	}

	out.Consts = make([]ConstBind, len(r.Consts))
	for i, c := range r.Consts {
		out.Consts[i] = ConstBind{Var: newSlot[c.Var], Val: c.Val}
	}
	out.NegAtoms = make([]GroundAtom, len(r.NegAtoms))
	for i, na := range r.NegAtoms {
		out.NegAtoms[i] = GroundAtom{Name: na.Name, Args: remapExprs(na.Args, newSlot)}
	}
	out.Filters = make([]FilterPlan, len(r.Filters))
	for i, f := range r.Filters {
		out.Filters[i] = FilterPlan{Op: f.Op, L: remapExpr(f.L, newSlot), R: remapExpr(f.R, newSlot)}
	}
	out.Assigns = make([]AssignPlan, len(r.Assigns))
	for i, a := range r.Assigns {
		out.Assigns[i] = AssignPlan{Slot: newSlot[a.Slot], E: remapExpr(a.E, newSlot)}
	}
	out.HeadExprs = remapExprs(r.HeadExprs, newSlot)
	if r.Agg != nil {
		agg := *r.Agg
		if agg.ArgSlot >= 0 {
			agg.ArgSlot = newSlot[agg.ArgSlot]
		}
		out.Agg = &agg
	}
	if r.Predict != nil {
		p := *r.Predict
		p.ValueSlot = newSlot[p.ValueSlot]
		p.FeatureSlot = newSlot[p.FeatureSlot]
		p.ValueKeySlots = remapSlots(p.ValueKeySlots, newSlot)
		p.FeatNameSlots = remapSlots(p.FeatNameSlots, newSlot)
		out.Predict = &p
	}
	return &out, nil
}

func remapSlots(slots []int, newSlot []int) []int {
	out := make([]int, len(slots))
	for i, s := range slots {
		out[i] = newSlot[s]
	}
	return out
}

func remapExprs(es []Expr, newSlot []int) []Expr {
	out := make([]Expr, len(es))
	for i, e := range es {
		if e == nil {
			continue
		}
		out[i] = remapExpr(e, newSlot)
	}
	return out
}

func remapExpr(e Expr, newSlot []int) Expr {
	switch e := e.(type) {
	case VarExpr:
		return VarExpr{Idx: newSlot[e.Idx]}
	case ConstExpr:
		return e
	case ArithExpr:
		return ArithExpr{Op: e.Op, L: remapExpr(e.L, newSlot), R: remapExpr(e.R, newSlot)}
	case FuncGetExpr:
		return FuncGetExpr{Name: e.Name, Args: remapExprs(e.Args, newSlot)}
	case existsExpr:
		return existsExpr{name: e.name, args: remapExprs(e.args, newSlot)}
	default:
		return e
	}
}
