// Package durable is the durability subsystem: atomic checksummed
// snapshot generations, a write-ahead commit journal, and startup
// recovery that together make the paper's recovery story (T4 #5:
// "a snapshot of the immutable state is all there is") hold under real
// crashes. The Store ties them together: every recorded commit is
// appended to the journal before the in-memory head moves (write-ahead),
// snapshots checkpoint the journal away, and Recover rebuilds a database
// from the newest valid snapshot plus the journal tail — re-deriving IVM
// state through the normal transaction path rather than restoring
// physical bytes.
//
// All file operations go through the FS interface so the fault-injection
// harness (internal/durable/faultfs) can simulate crashes at every write,
// sync and rename, including torn writes and lost directory entries —
// exactly the failure modes catalogued by Pillai et al. (OSDI '14).
package durable

import (
	"io"
	"os"
	"path/filepath"
)

// File is the subset of *os.File the durability layer needs.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file's contents to stable storage; until it
	// returns, written data may be lost by a crash.
	Sync() error
}

// FS abstracts the filesystem operations the durability layer performs.
// The operating-system implementation is OS; faultfs provides an
// in-memory implementation with injectable crash points.
type FS interface {
	// Create opens name for writing, truncating any existing file.
	Create(name string) (File, error)
	// OpenRead opens name for reading.
	OpenRead(name string) (File, error)
	// OpenAppend opens name for appending, creating it if absent.
	OpenAppend(name string) (File, error)
	// Rename atomically replaces newname with oldname. The rename is
	// only durable after SyncDir on the containing directory.
	Rename(oldname, newname string) error
	// Remove deletes a file (durable after SyncDir).
	Remove(name string) error
	// ReadDir lists the entry names (not paths) in dir.
	ReadDir(dir string) ([]string, error)
	// SyncDir flushes dir's entries (creates, renames, removes) to
	// stable storage.
	SyncDir(dir string) error
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) Create(name string) (File, error)   { return os.Create(name) }
func (osFS) OpenRead(name string) (File, error) { return os.Open(name) }
func (osFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}
func (osFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) MkdirAll(dir string) error            { return os.MkdirAll(dir, 0o755) }

func (osFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	return names, nil
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// writeFileAtomic writes the bytes produced by write to path with full
// crash safety: temp file in the same directory, fsync the file, rename
// over path, fsync the directory. A crash at any point leaves either the
// old file or the new one, never a torn mix.
func writeFileAtomic(fsys FS, path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return fsys.SyncDir(dir)
}
