package server

import (
	"bufio"
	"bytes"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"logicblox/internal/core"
)

// Streamed /query responses: NDJSON rows pipelined straight out of the
// engine's join iterators (core.Workspace.QueryStream), one
// {"row":[...]} line per answer tuple and a trailing {"summary":{...}}
// record. Pagination cursors pin the snapshot version so pages of one
// result never mix versions.

// ndjsonContentType is the streamed /query response media type.
const ndjsonContentType = "application/x-ndjson"

// defaultQueryLimit caps materialized /query responses when neither the
// request nor Config.DefaultLimit says otherwise: an accidental
// `_(x...) <- bigrel(x...)` should not materialize an unbounded JSON
// array in server memory. Streams have no default cap — their memory is
// O(1) in the result.
const defaultQueryLimit = 10000

// streamFlushBytes is how much encoded NDJSON is buffered before being
// flushed to the client; small enough that a slow consumer sees rows
// promptly, large enough to amortize syscalls.
const streamFlushBytes = 32 << 10

var (
	// errBadCursor rejects a cursor token that does not decode.
	errBadCursor = errors.New("malformed cursor")
	// errStaleCursor rejects a cursor whose pinned snapshot version is no
	// longer reachable (branch deleted, history rewritten by /load).
	errStaleCursor = errors.New("cursor version no longer available")
)

// pageToken is the decoded form of a /query pagination cursor: the
// branch, the pinned workspace version, and the row offset already
// delivered. Encoded as unpadded base64url JSON — opaque to clients.
type pageToken struct {
	Branch  string `json:"b"`
	Version uint64 `json:"v"`
	Offset  int64  `json:"o"`
}

func encodePageToken(t pageToken) string {
	b, _ := json.Marshal(t)
	return base64.RawURLEncoding.EncodeToString(b)
}

func decodePageToken(s string) (pageToken, error) {
	var t pageToken
	b, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return t, fmt.Errorf("%w: %v", errBadCursor, err)
	}
	if err := json.Unmarshal(b, &t); err != nil {
		return t, fmt.Errorf("%w: %v", errBadCursor, err)
	}
	if t.Branch == "" || t.Offset < 0 {
		return t, errBadCursor
	}
	return t, nil
}

// resolveQuery picks the workspace snapshot a /query runs against. A
// fresh query reads the branch head; a cursor-bearing one re-resolves
// the exact version the first page saw — from the head if it has not
// moved, otherwise from the committed-version history — so pagination is
// exactly-once over one immutable snapshot.
func (s *Server) resolveQuery(req *Request) (*core.Workspace, pageToken, error) {
	db := s.Database()
	if req.Cursor == "" {
		ws, err := db.Workspace(req.Branch)
		return ws, pageToken{Branch: req.Branch}, err
	}
	tok, err := decodePageToken(req.Cursor)
	if err != nil {
		return nil, tok, err
	}
	if head, err := db.Workspace(tok.Branch); err == nil && head.Version() == tok.Version {
		return head, tok, nil
	}
	for i := db.Versions() - 1; i >= 0; i-- {
		v, err := db.VersionAt(i)
		if err != nil {
			continue
		}
		if v.Branch == tok.Branch && v.Workspace.Version() == tok.Version {
			return v.Workspace, tok, nil
		}
	}
	return nil, tok, fmt.Errorf("%w (branch %q version %d)", errStaleCursor, tok.Branch, tok.Version)
}

// effectiveLimit resolves the row cap for this request. An explicit
// limit wins (<= 0 opts out entirely); otherwise materialized responses
// get the server default and streams are uncapped.
func (s *Server) effectiveLimit(req *Request, streaming bool) int {
	if req.Limit != nil {
		if *req.Limit <= 0 {
			return 0
		}
		return *req.Limit
	}
	if streaming {
		return 0
	}
	d := s.cfg.DefaultLimit
	if d == 0 {
		d = defaultQueryLimit
	}
	if d < 0 {
		return 0
	}
	return d
}

// wantStream reports whether the request asked for the NDJSON streamed
// response: body field, query parameter, or content negotiation.
func wantStream(r *http.Request, req *Request) bool {
	if req.Stream || r.URL.Query().Get("stream") == "1" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), ndjsonContentType)
}

// materializedQuery is the classic JSON-envelope /query path: evaluate
// fully (QueryCtx, span kind tx.query — unchanged wire behavior), then
// window the rows by the cursor offset and row/byte caps. Rows are
// encoded by the direct appendRowJSON encoder into one buffer.
func (s *Server) materializedQuery(w http.ResponseWriter, r *http.Request, req *Request, ws *core.Workspace, tok pageToken) {
	rows, err := ws.WithObserver(s.reg).QueryCtx(r.Context(), req.Src)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	limit := s.effectiveLimit(req, false)
	total := int64(len(rows))
	start := min(tok.Offset, total)
	end := total
	if limit > 0 && start+int64(limit) < end {
		end = start + int64(limit)
	}
	var buf bytes.Buffer
	buf.WriteByte('[')
	emitted := int64(0)
	for _, t := range rows[start:end] {
		if req.MaxResultBytes > 0 && emitted > 0 && int64(buf.Len()) >= req.MaxResultBytes {
			break
		}
		if emitted > 0 {
			buf.WriteByte(',')
		}
		buf.Write(appendRowJSON(buf.AvailableBuffer(), t))
		emitted++
	}
	buf.WriteByte(']')
	resp := queryWire{
		OK: true, Rows: json.RawMessage(buf.Bytes()),
		RowCount: int(emitted), Limit: limit, Trace: s.inlineTrace(r),
	}
	if start+emitted < total {
		resp.Truncated = true
		resp.NextCursor = encodePageToken(pageToken{Branch: tok.Branch, Version: ws.Version(), Offset: start + emitted})
	}
	writeJSON(w, http.StatusOK, resp)
}

// streamQuery is the NDJSON path: a pull cursor from QueryStream (span
// kind tx.query.stream), rows encoded and flushed incrementally, result
// memory O(1) in the answer count. The HTTP status is committed before
// the first row, so failures after that point are reported in the
// trailing summary record; client disconnects cancel the request
// context, which closes the cursor and records a tx.query.stream.abort.
func (s *Server) streamQuery(w http.ResponseWriter, r *http.Request, req *Request, ws *core.Workspace, tok pageToken) {
	cur, err := ws.WithObserver(s.reg).QueryStream(r.Context(), req.Src)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	defer cur.Close()
	s.reg.Counter("server.query.streamed").Inc()
	limit := s.effectiveLimit(req, true)
	sum := StreamSummary{OK: true, Limit: limit, RequestID: requestIDFrom(r.Context())}

	w.Header().Set("Content-Type", ndjsonContentType)
	w.WriteHeader(http.StatusOK)
	bw := bufio.NewWriterSize(w, streamFlushBytes)
	fail := func(err error) {
		_, code := statusFor(err)
		s.reg.Counter("server.errors." + code).Inc()
		sum.OK, sum.Error, sum.Code = false, err.Error(), code
		s.finishStream(w, bw, r, &sum)
	}

	// A resumed page skips the rows previous pages delivered. On the
	// pipelined fast path this discards them as they are produced; the
	// materialized fallback skips within the already-built relation.
	for skipped := int64(0); skipped < tok.Offset; skipped++ {
		if err := r.Context().Err(); err != nil {
			fail(err)
			return
		}
		if _, ok := cur.Next(); !ok {
			break
		}
	}
	if err := cur.Err(); err != nil {
		fail(err)
		return
	}

	scratch := make([]byte, 0, 256)
	unflushed := 0
	truncated := false
	for {
		if err := r.Context().Err(); err != nil {
			fail(err)
			return
		}
		if limit > 0 && sum.Rows >= int64(limit) {
			// Peek one row past the cap to decide whether a next page
			// exists at all.
			if _, ok := cur.Next(); ok {
				truncated = true
			}
			break
		}
		t, ok := cur.Next()
		if !ok {
			break
		}
		scratch = append(scratch[:0], `{"row":`...)
		scratch = appendRowJSON(scratch, t)
		scratch = append(scratch, '}', '\n')
		if _, err := bw.Write(scratch); err != nil {
			fail(err)
			return
		}
		sum.Rows++
		sum.Bytes += int64(len(scratch))
		unflushed += len(scratch)
		if req.MaxResultBytes > 0 && sum.Bytes >= req.MaxResultBytes {
			truncated = true
			break
		}
		if unflushed >= streamFlushBytes {
			unflushed = 0
			bw.Flush()
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
		}
	}
	if err := cur.Err(); err != nil {
		fail(err)
		return
	}
	if truncated {
		sum.Truncated = true
		sum.NextCursor = encodePageToken(pageToken{Branch: tok.Branch, Version: ws.Version(), Offset: tok.Offset + sum.Rows})
	}
	s.reg.Counter("server.stream.rows").Add(sum.Rows)
	s.reg.Counter("server.stream.bytes").Add(sum.Bytes)
	s.finishStream(w, bw, r, &sum)
}

// finishStream writes the trailing summary record and flushes everything
// to the client. Write errors are unreportable at this point (the
// connection is the thing that failed) and deliberately dropped.
func (s *Server) finishStream(w http.ResponseWriter, bw *bufio.Writer, r *http.Request, sum *StreamSummary) {
	b, err := json.Marshal(StreamTrailer{Summary: sum})
	if err != nil {
		return
	}
	bw.Write(b)
	bw.WriteByte('\n')
	bw.Flush()
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}
