package engine

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"logicblox/internal/relation"
	"logicblox/internal/tuple"
)

// drainRule pulls a rule cursor dry, collecting the head tuples.
func drainRule(t *testing.T, cur *RuleCursor) []tuple.Tuple {
	t.Helper()
	defer cur.Close()
	var out []tuple.Tuple
	for tu, ok := cur.Next(); ok; tu, ok = cur.Next() {
		out = append(out, tu)
	}
	if err := cur.Err(); err != nil {
		t.Fatalf("cursor error: %v", err)
	}
	return out
}

// TestStreamRuleMatchesEvalRule: streaming a rule yields exactly the
// materialized derivation (as a set), across bodies exercising joins,
// filters, assignments, negation, and constants.
func TestStreamRuleMatchesEvalRule(t *testing.T) {
	srcs := []string{
		`out(x, z) <- e(x, y), e(y, z).`,
		`out(x, y) <- e(x, y), x < y.`,
		`out(x, s) <- e(x, y), s = x + y.`,
		`out(x, y) <- e(x, y), !f(y).`,
		`out(x) <- e(x, 3).`,
		`out(y, x) <- e(x, y).`,
		`out(x, x) <- e(x, y).`,
	}
	rng := rand.New(rand.NewSource(7))
	e := relation.New(2)
	for i := 0; i < 120; i++ {
		e = e.Insert(tuple.Ints(rng.Int63n(9), rng.Int63n(9)))
	}
	f := relation.New(1)
	for i := int64(0); i < 9; i += 2 {
		f = f.Insert(tuple.Ints(i))
	}
	base := map[string]relation.Relation{"e": e, "f": f}
	for _, src := range srcs {
		prog := mustCompile(t, src)
		if len(prog.Strata) != 1 || len(prog.Strata[0]) != 1 {
			t.Fatalf("%s: expected a single rule", src)
		}
		rule := prog.Strata[0][0]

		mctx := NewContext(prog, base, Options{})
		want, err := mctx.evalRule(rule, nil)
		if err != nil {
			t.Fatalf("%s: evalRule: %v", src, err)
		}

		sctx := NewContext(prog, base, Options{})
		cur, err := sctx.StreamRule(rule)
		if err != nil {
			t.Fatalf("%s: StreamRule: %v", src, err)
		}
		got := relation.New(rule.HeadArity)
		for _, tu := range drainRule(t, cur) {
			got = got.Insert(tu)
		}
		if !got.Equal(want) {
			t.Errorf("%s:\nstream = %v\neval   = %v", src, got.Slice(), want.Slice())
		}
	}
}

// TestStreamRuleFact: a body-free rule yields exactly one tuple.
func TestStreamRuleFact(t *testing.T) {
	prog := mustCompile(t, `out(1, 2) <- .`)
	ctx := NewContext(prog, nil, Options{})
	cur, err := ctx.StreamRule(prog.Strata[0][0])
	if err != nil {
		t.Fatal(err)
	}
	got := drainRule(t, cur)
	if len(got) != 1 || !got[0].Equal(tuple.Ints(1, 2)) {
		t.Fatalf("fact stream = %v", got)
	}
}

// TestStreamRuleRejectsAggregation: aggregate rules cannot stream.
func TestStreamRuleRejectsAggregation(t *testing.T) {
	prog := mustCompile(t, `out[x] = c <- agg<<c = count()>> e(x, y).`)
	ctx := NewContext(prog, map[string]relation.Relation{"e": relOf(2, tuple.Ints(1, 2))}, Options{})
	if _, err := ctx.StreamRule(prog.Strata[0][0]); err == nil {
		t.Fatal("expected an error streaming an aggregate rule")
	}
}

// TestStreamRuleCancellation: a cancelled evaluation context surfaces as
// the cursor error after at most one pull.
func TestStreamRuleCancellation(t *testing.T) {
	prog := mustCompile(t, `out(x, y) <- e(x, y).`)
	cctx, cancel := context.WithCancel(context.Background())
	ctx := NewContext(prog, map[string]relation.Relation{
		"e": relOf(2, tuple.Ints(1, 2), tuple.Ints(3, 4)),
	}, Options{Ctx: cctx})
	cur, err := ctx.StreamRule(prog.Strata[0][0])
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if _, ok := cur.Next(); !ok {
		t.Fatal("first pull should succeed")
	}
	cancel()
	if _, ok := cur.Next(); ok {
		t.Fatal("pull after cancellation should fail")
	}
	if !errors.Is(cur.Err(), context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", cur.Err())
	}
}

// TestStreamRuleEarlyCloseReleasesIterators: abandoning a stream restores
// the shared relation iterators so a later evaluation works.
func TestStreamRuleEarlyCloseReleasesIterators(t *testing.T) {
	prog := mustCompile(t, `out(x, z) <- e(x, y), e(y, z).`)
	e := relation.New(2)
	for i := int64(0); i < 10; i++ {
		e = e.Insert(tuple.Ints(i, i+1))
	}
	ctx := NewContext(prog, map[string]relation.Relation{"e": e}, Options{})
	rule := prog.Strata[0][0]
	cur, err := ctx.StreamRule(rule)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cur.Next(); !ok {
		t.Fatal("expected at least one tuple")
	}
	cur.Close()
	cur.Close() // idempotent
	// A fresh full evaluation over the same context must still see all 9
	// two-hop pairs.
	out, err := ctx.evalRule(rule, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 9 {
		t.Fatalf("post-close evalRule = %d tuples, want 9", out.Len())
	}
}
