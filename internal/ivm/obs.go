package ivm

import (
	"time"

	"logicblox/internal/obs"
)

// SetObserver points the maintainer's evaluations at reg (nil disables
// instrumentation). Maintenance passes then publish ivm.* counters, an
// ivm.apply.duration histogram, and an "ivm.apply" span per Apply call,
// and the underlying engine context records per-rule profiles into the
// same registry.
func (m *Maintainer) SetObserver(reg *obs.Registry) { m.ctx.SetObserver(reg) }

// Observer returns the registry maintenance passes record into, or nil.
func (m *Maintainer) Observer() *obs.Registry { return m.ctx.Observer() }

// observeApply opens the per-pass span and returns a closure that
// publishes the pass's work counters once maintenance is done. It is
// a no-op (returning a no-op closure) when no observer is attached.
func (m *Maintainer) observeApply(deltas map[string]Delta) func() {
	reg := m.ctx.Observer()
	if reg == nil {
		return func() {}
	}
	var ins, del int64
	for _, d := range deltas {
		ins += int64(len(d.Ins))
		del += int64(len(d.Del))
	}
	sp := reg.StartSpan("ivm.apply." + m.mode.String())
	sp.SetAttr("base_ins", ins)
	sp.SetAttr("base_del", del)
	m.ctx.SetSpan(sp)
	t0 := time.Now()
	return func() {
		m.ctx.SetSpan(nil)
		sp.SetAttr("rules_evaluated", int64(m.Stats.RulesEvaluated))
		sp.SetAttr("rules_skipped", int64(m.Stats.RulesSkipped))
		sp.End()
		reg.Histogram("ivm.apply.duration").Observe(time.Since(t0))
		reg.Counter("ivm.applies").Add(1)
		reg.Counter("ivm.delta.ins").Add(ins)
		reg.Counter("ivm.delta.del").Add(del)
		reg.Counter("ivm.rules.evaluated").Add(int64(m.Stats.RulesEvaluated))
		reg.Counter("ivm.rules.skipped").Add(int64(m.Stats.RulesSkipped))
		reg.Counter("ivm.rederive.checks").Add(int64(m.Stats.RederiveChecks))
	}
}
