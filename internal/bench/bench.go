// Package bench is a deterministic load generator for lb-serve. A
// seeded PRNG expands a Config into a fixed operation sequence
// (read/write mix, key skew, branch fan-out), so two runs with the same
// seed replay byte-identical workloads; the runner drives them against a
// live server in closed-loop (fixed concurrency) or open-loop (fixed
// arrival rate) mode and reports exact per-endpoint latency percentiles,
// throughput, queue-depth samples, and conflict/retry/5xx counts.
package bench

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Closed-loop and open-loop operating modes.
const (
	ModeClosed = "closed"
	ModeOpen   = "open"
)

// Config describes one benchmark run. Every field that shapes the
// operation sequence feeds the seeded PRNG, so the sequence is a pure
// function of the config.
type Config struct {
	// BaseURL is the lb-serve root, e.g. http://127.0.0.1:8080.
	BaseURL string `json:"base_url"`
	// Seed drives all randomness; same seed, same workload.
	Seed uint64 `json:"seed"`
	// Mode is "closed" (Concurrency workers, next op as soon as the
	// previous answer lands) or "open" (ops fired on a fixed schedule
	// regardless of completions).
	Mode string `json:"mode"`
	// Concurrency is the closed-loop worker count.
	Concurrency int `json:"concurrency"`
	// Rate is the open-loop arrival rate in ops/second (exponential
	// inter-arrivals drawn from the seed).
	Rate float64 `json:"rate,omitempty"`
	// Ops is the total operation count.
	Ops int `json:"ops"`
	// Duration, when > 0, stops the run early at the deadline even if
	// ops remain.
	Duration time.Duration `json:"duration,omitempty"`
	// ReadFrac is the fraction of operations that are queries (the rest
	// are exec writes).
	ReadFrac float64 `json:"read_frac"`
	// Keys is the key-space size.
	Keys int `json:"keys"`
	// HotFrac is the probability an operation targets the hot subset
	// (the first 1/8 of the key space, at least one key) — key-overlap
	// skew that manufactures write contention.
	HotFrac float64 `json:"hot_frac"`
	// Branches fans operations out across this many branches: "main"
	// plus bench-1..bench-(n-1) created at setup.
	Branches int `json:"branches"`
	// QueueSample is the /debug/vars queue-depth and heap-gauge polling
	// period (0 disables sampling).
	QueueSample time.Duration `json:"queue_sample,omitempty"`
	// Stream makes query operations use the chunked NDJSON response
	// (POST /query with stream), counting rows as they arrive, instead
	// of the materialized JSON envelope.
	Stream bool `json:"stream,omitempty"`
	// ScanFrac is the fraction of query operations that scan the whole
	// hit relation (`_(k, v) <- hit(k, v).`) instead of a point lookup
	// — result sizes that make the streamed/materialized memory
	// difference visible. Drawn from a separate PRNG stream so setting
	// it does not perturb the op sequence of existing seeds.
	ScanFrac float64 `json:"scan_frac,omitempty"`
	// ReplicaURLs routes the read fraction round-robin across these
	// read-replica base URLs instead of the primary; writes always go to
	// BaseURL. The report then carries per-target latency summaries and
	// the max replica lag observed on each replica's /healthz during the
	// run. Routing does not perturb the op sequence: the same seed still
	// generates the same ops, they just land on different targets.
	ReplicaURLs []string `json:"replica_urls,omitempty"`
}

func (c *Config) withDefaults() Config {
	cfg := *c
	if cfg.Mode == "" {
		cfg.Mode = ModeClosed
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 4
	}
	if cfg.Ops <= 0 {
		cfg.Ops = 1000
	}
	if cfg.Keys <= 0 {
		cfg.Keys = 64
	}
	if cfg.ReadFrac < 0 || cfg.ReadFrac > 1 {
		cfg.ReadFrac = 0.5
	}
	if cfg.HotFrac < 0 || cfg.HotFrac > 1 {
		cfg.HotFrac = 0
	}
	if cfg.ScanFrac < 0 || cfg.ScanFrac > 1 {
		cfg.ScanFrac = 0
	}
	if cfg.Branches <= 0 {
		cfg.Branches = 1
	}
	if cfg.Rate <= 0 {
		cfg.Rate = 100
	}
	return cfg
}

// Op is one generated operation.
type Op struct {
	// Kind is "exec" (write) or "query" (read).
	Kind string `json:"kind"`
	// Key is the targeted key.
	Key int `json:"key"`
	// Value is the written value (unique per op, so every write is a
	// real change rather than a duplicate-insert no-op).
	Value int `json:"value,omitempty"`
	// Branch the op runs against.
	Branch string `json:"branch"`
	// Arrival is the open-loop offset from the run start.
	Arrival time.Duration `json:"arrival,omitempty"`
	// Scan marks a query op as a full relation scan (see
	// Config.ScanFrac).
	Scan bool `json:"scan,omitempty"`
	// Stream marks a query op as NDJSON-streamed (Config.Stream).
	Stream bool `json:"stream,omitempty"`
}

// branchName returns the branch for fan-out index i (0 is main).
func branchName(i int) string {
	if i == 0 {
		return "main"
	}
	return fmt.Sprintf("bench-%d", i)
}

// GenOps expands the config into its operation sequence. The result is a
// pure function of the config: calling it twice — or on two machines —
// yields identical slices, which is what makes a bench run replayable.
func GenOps(c Config) []Op {
	cfg := c.withDefaults()
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x9e3779b97f4a7c15))
	// Scan decisions come from their own stream so that a nonzero
	// ScanFrac leaves the op sequence of an existing seed untouched.
	scanRng := rand.New(rand.NewPCG(cfg.Seed^0x5ca9f0ac, cfg.Seed+0x61c88647))
	hot := cfg.Keys / 8
	if hot < 1 {
		hot = 1
	}
	ops := make([]Op, cfg.Ops)
	var at time.Duration
	for i := range ops {
		op := Op{Branch: branchName(rng.IntN(cfg.Branches))}
		if rng.Float64() < cfg.ReadFrac {
			op.Kind = "query"
			op.Stream = cfg.Stream
			op.Scan = cfg.ScanFrac > 0 && scanRng.Float64() < cfg.ScanFrac
		} else {
			op.Kind = "exec"
			op.Value = i + 1
		}
		if rng.Float64() < cfg.HotFrac {
			op.Key = rng.IntN(hot)
		} else {
			op.Key = rng.IntN(cfg.Keys)
		}
		// Exponential inter-arrivals for the open-loop schedule; drawn
		// unconditionally so closed- and open-loop runs of one seed
		// share the same op sequence.
		at += time.Duration(rng.ExpFloat64() / cfg.Rate * float64(time.Second))
		op.Arrival = at
		ops[i] = op
	}
	return ops
}

// Schema installed by Setup: a base fact predicate written by exec ops,
// plus derived rules — including a key-pair join whose rederivation cost
// grows with the data — so every write does real engine work and the
// optimistic-commit window is wide enough for writers to actually race.
// Queries read the base relation per key.
const schemaBlock = `
hit(k, v) -> int(k), int(v).
seen(k) <- hit(k, v).
link(j, k) <- hit(j, v), hit(k, w), v < w.
`

func (op Op) request() (path string, body map[string]any) {
	body = map[string]any{"branch": op.Branch}
	if op.Kind == "query" {
		if op.Scan {
			body["src"] = "_(k, v) <- hit(k, v)."
			// Uncap scans explicitly so streamed and materialized runs
			// transfer the same rows (the server default-caps
			// materialized responses).
			body["limit"] = 0
		} else {
			body["src"] = fmt.Sprintf("_(v) <- hit(%d, v).", op.Key)
		}
		if op.Stream {
			body["stream"] = true
		}
		return "/query", body
	}
	body["src"] = fmt.Sprintf("+hit(%d, %d).", op.Key, op.Value)
	return "/exec", body
}

// sample is one completed operation.
type sample struct {
	endpoint string
	target   string // base URL the op was sent to
	latency  time.Duration
	status   int
	retries  int
	rows     int64
	bytes    int64
}

// EndpointStats is the per-endpoint latency/throughput summary. All
// percentiles are exact (computed from the full recorded latency set),
// in milliseconds.
type EndpointStats struct {
	Count      int     `json:"count"`
	Throughput float64 `json:"throughput_ops_per_sec"`
	MeanMs     float64 `json:"mean_ms"`
	P50Ms      float64 `json:"p50_ms"`
	P95Ms      float64 `json:"p95_ms"`
	P99Ms      float64 `json:"p99_ms"`
	MaxMs      float64 `json:"max_ms"`
}

// Report is the JSON benchmark result.
type Report struct {
	Config     Config                   `json:"config"`
	ElapsedMs  float64                  `json:"elapsed_ms"`
	TotalOps   int                      `json:"total_ops"`
	Throughput float64                  `json:"throughput_ops_per_sec"`
	Endpoints  map[string]EndpointStats `json:"endpoints"`
	// Conflicts counts 409 answers: optimistic transactions that lost
	// their commit race even after the server's internal retries.
	Conflicts int `json:"conflicts"`
	// Retries sums the server-side optimistic re-executions reported in
	// successful exec answers.
	Retries int `json:"retries"`
	// Rejected counts 503 answers (pool saturation or drain).
	Rejected int `json:"rejected"`
	// Errors5xx counts all >= 500 answers.
	Errors5xx int `json:"errors_5xx"`
	// StatusCounts is the full per-status histogram.
	StatusCounts map[int]int `json:"status_counts"`
	// QueueDepth holds the polled server.queue.depth gauge samples.
	QueueDepth    []int64 `json:"queue_depth,omitempty"`
	QueueDepthMax int64   `json:"queue_depth_max"`
	// StreamRows/StreamBytes total the NDJSON rows and payload bytes
	// received by streamed query ops.
	StreamRows  int64 `json:"stream_rows,omitempty"`
	StreamBytes int64 `json:"stream_bytes,omitempty"`
	// HeapInuse holds polled go.heap_inuse gauge samples (bytes) from
	// /debug/vars, taken together with the queue-depth samples — the
	// server-side memory profile of the run.
	HeapInuse    []int64 `json:"heap_inuse,omitempty"`
	HeapInuseMax int64   `json:"heap_inuse_max,omitempty"`
	// Targets holds per-target latency summaries when ReplicaURLs routes
	// reads across replicas: one entry per base URL that received ops
	// (the primary's entry covers the writes).
	Targets map[string]EndpointStats `json:"targets,omitempty"`
	// ReplicaLagMax maps each replica URL to the maximum replica.lag_seq
	// its /healthz reported during the run; ReplicaLagMaxSeq is the
	// fleet-wide maximum — how far behind the freshest write any served
	// read could have been.
	ReplicaLagMax    map[string]int64 `json:"replica_lag_max,omitempty"`
	ReplicaLagMaxSeq int64            `json:"replica_lag_max_seq,omitempty"`
}

// Runner drives one benchmark run against a live server.
type Runner struct {
	Config Config
	// Client defaults to a dedicated http.Client with generous
	// connection reuse; tests inject the httptest client.
	Client *http.Client

	rr atomic.Uint64 // round-robin cursor over ReplicaURLs
}

// target picks the base URL for one op: writes (and everything else)
// go to the primary; reads round-robin across ReplicaURLs when set.
func (r *Runner) target(op Op) string {
	if op.Kind == "query" && len(r.Config.ReplicaURLs) > 0 {
		urls := r.Config.ReplicaURLs
		return urls[int((r.rr.Add(1)-1)%uint64(len(urls)))]
	}
	return r.Config.BaseURL
}

func (r *Runner) client() *http.Client {
	if r.Client != nil {
		return r.Client
	}
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConnsPerHost = 256
	return &http.Client{Transport: tr, Timeout: 60 * time.Second}
}

func (r *Runner) post(c *http.Client, base, path string, body any, out any) (int, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	resp, err := c.Post(base+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil && resp.StatusCode < 300 {
			return resp.StatusCode, err
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode, nil
}

// Setup installs the benchmark schema on main and creates the fan-out
// branches. It must run once against a fresh workspace before Run.
func (r *Runner) Setup() error {
	cfg := r.Config.withDefaults()
	c := r.client()
	status, err := r.post(c, cfg.BaseURL, "/addblock",
		map[string]any{"name": "benchschema", "src": schemaBlock}, nil)
	if err != nil {
		return fmt.Errorf("addblock: %w", err)
	}
	if status != http.StatusOK {
		return fmt.Errorf("addblock: status %d", status)
	}
	for i := 1; i < cfg.Branches; i++ {
		status, err := r.post(c, cfg.BaseURL, "/branches",
			map[string]any{"op": "create", "from": "main", "to": branchName(i)}, nil)
		if err != nil {
			return fmt.Errorf("create %s: %w", branchName(i), err)
		}
		if status != http.StatusOK && status != http.StatusConflict {
			return fmt.Errorf("create %s: status %d", branchName(i), status)
		}
	}
	return nil
}

// execAnswer is the slice of ExecResponse the runner needs.
type execAnswer struct {
	Retries int `json:"retries"`
}

// runOp performs one operation and returns its sample.
func (r *Runner) runOp(c *http.Client, base string, op Op) sample {
	path, body := op.request()
	if op.Stream && op.Kind == "query" {
		return r.runStreamOp(c, base, path, body)
	}
	t0 := time.Now()
	var ans execAnswer
	status, err := r.post(c, base, path, body, &ans)
	lat := time.Since(t0)
	if err != nil && status == 0 {
		// Transport-level failure: count as a 5xx-equivalent.
		status = 599
	}
	return sample{endpoint: path[1:], target: base, latency: lat, status: status, retries: ans.Retries}
}

// runStreamOp drives one NDJSON-streamed query: rows are consumed line
// by line as they arrive and only the trailing summary is decoded. The
// latency covers the full stream (first byte to summary). A summary
// reporting a mid-stream failure counts like a 5xx (the HTTP status was
// already committed as 200 when it happened).
func (r *Runner) runStreamOp(c *http.Client, base, path string, body map[string]any) sample {
	s := sample{endpoint: "query.stream", target: base}
	buf, err := json.Marshal(body)
	if err != nil {
		s.status = 599
		return s
	}
	t0 := time.Now()
	resp, err := c.Post(base+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		s.status = 599
		s.latency = time.Since(t0)
		return s
	}
	defer resp.Body.Close()
	s.status = resp.StatusCode
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		s.latency = time.Since(t0)
		return s
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	var last []byte
	for sc.Scan() {
		line := sc.Bytes()
		s.bytes += int64(len(line)) + 1
		last = append(last[:0], line...)
	}
	s.latency = time.Since(t0)
	if sc.Err() != nil || last == nil {
		s.status = 599
		return s
	}
	var trailer struct {
		Summary *struct {
			OK   bool  `json:"ok"`
			Rows int64 `json:"rows"`
		} `json:"summary"`
	}
	if err := json.Unmarshal(last, &trailer); err != nil || trailer.Summary == nil || !trailer.Summary.OK {
		s.status = 599
		return s
	}
	s.rows = trailer.Summary.Rows
	return s
}

// Run executes the generated operation sequence and builds the report.
func (r *Runner) Run(ctx context.Context) (*Report, error) {
	cfg := r.Config.withDefaults()
	ops := GenOps(cfg)
	c := r.client()
	if cfg.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Duration)
		defer cancel()
	}

	// Gauge sampler (queue depth + heap in use), polling /debug/vars on
	// its own goroutine.
	var (
		depthMu sync.Mutex
		depths  []int64
		heaps   []int64
	)
	sampleCtx, stopSampling := context.WithCancel(ctx)

	// Replica lag poller: with reads routed across replicas, sample each
	// replica's /healthz replica.lag_seq through the run and keep the
	// per-target maximum — the observed staleness envelope of the reads.
	var (
		lagMu  sync.Mutex
		lagMax map[string]int64
	)
	var lagDone chan struct{}
	if len(cfg.ReplicaURLs) > 0 {
		lagMax = make(map[string]int64, len(cfg.ReplicaURLs))
		period := cfg.QueueSample
		if period <= 0 {
			period = 100 * time.Millisecond
		}
		lagDone = make(chan struct{})
		go func() {
			defer close(lagDone)
			tick := time.NewTicker(period)
			defer tick.Stop()
			for {
				select {
				case <-sampleCtx.Done():
					return
				case <-tick.C:
					for _, u := range cfg.ReplicaURLs {
						if lag, ok := replicaLag(c, u); ok {
							lagMu.Lock()
							if cur, seen := lagMax[u]; !seen || lag > cur {
								lagMax[u] = lag
							}
							lagMu.Unlock()
						}
					}
				}
			}
		}()
	}

	var samplerDone chan struct{}
	if cfg.QueueSample > 0 {
		samplerDone = make(chan struct{})
		go func() {
			defer close(samplerDone)
			tick := time.NewTicker(cfg.QueueSample)
			defer tick.Stop()
			for {
				select {
				case <-sampleCtx.Done():
					return
				case <-tick.C:
					if g, ok := serverGauges(c, cfg.BaseURL); ok {
						depthMu.Lock()
						depths = append(depths, g["server.queue.depth"])
						heaps = append(heaps, g["go.heap_inuse"])
						depthMu.Unlock()
					}
				}
			}
		}()
	}

	samples := make([]sample, len(ops))
	var done int64
	t0 := time.Now()
	switch cfg.Mode {
	case ModeOpen:
		done = r.runOpen(ctx, c, cfg, ops, samples)
	default:
		done = r.runClosed(ctx, c, cfg, ops, samples)
	}
	elapsed := time.Since(t0)
	stopSampling()
	if samplerDone != nil {
		<-samplerDone
	}
	if lagDone != nil {
		<-lagDone
	}

	depthMu.Lock()
	defer depthMu.Unlock()
	lagMu.Lock()
	defer lagMu.Unlock()
	return buildReport(cfg, elapsed, samples[:done], depths, heaps, lagMax), nil
}

// runClosed drives the op sequence with a fixed worker pool: each worker
// takes the next op as soon as its previous answer lands. Returns the
// number of completed ops (the deadline can cut the sequence short).
func (r *Runner) runClosed(ctx context.Context, c *http.Client, cfg Config, ops []Op, samples []sample) int64 {
	next := make(chan int)
	go func() {
		defer close(next)
		for i := range ops {
			select {
			case next <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	var wg sync.WaitGroup
	var done int64
	var mu sync.Mutex
	completed := make([]bool, len(ops))
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				s := r.runOp(c, r.target(ops[i]), ops[i])
				mu.Lock()
				samples[i] = s
				completed[i] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	// Compact: keep completed samples contiguous for the report.
	for i, ok := range completed {
		if ok {
			samples[done] = samples[i]
			done++
		}
	}
	return done
}

// runOpen fires ops on their precomputed arrival schedule regardless of
// completions — the workload a server sees from independent clients.
func (r *Runner) runOpen(ctx context.Context, c *http.Client, cfg Config, ops []Op, samples []sample) int64 {
	var wg sync.WaitGroup
	var mu sync.Mutex
	completed := make([]bool, len(ops))
	t0 := time.Now()
	var done int64
launch:
	for i := range ops {
		wait := ops[i].Arrival - time.Since(t0)
		if wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				break launch
			}
		} else if ctx.Err() != nil {
			break launch
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := r.runOp(c, r.target(ops[i]), ops[i])
			mu.Lock()
			samples[i] = s
			completed[i] = true
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	for i, ok := range completed {
		if ok {
			samples[done] = samples[i]
			done++
		}
	}
	return done
}

// replicaLag reads replica.lag_seq from one replica's /healthz. A 503
// still carries the replica section (that is how a stale follower
// answers), so the body is parsed regardless of status.
func replicaLag(c *http.Client, base string) (int64, bool) {
	resp, err := c.Get(base + "/healthz")
	if err != nil {
		return 0, false
	}
	defer resp.Body.Close()
	var doc struct {
		Replica *struct {
			LagSeq int64 `json:"lag_seq"`
		} `json:"replica"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil || doc.Replica == nil {
		return 0, false
	}
	return doc.Replica.LagSeq, true
}

// serverGauges reads the gauge map from /debug/vars (each GET also
// makes the server refresh them, including go.heap_inuse).
func serverGauges(c *http.Client, base string) (map[string]int64, bool) {
	resp, err := c.Get(base + "/debug/vars")
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	var doc struct {
		Gauges map[string]int64 `json:"gauges"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, false
	}
	return doc.Gauges, doc.Gauges != nil
}

// percentile returns the exact q-quantile of sorted (nearest-rank).
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func endpointStats(lats []time.Duration, elapsed time.Duration) EndpointStats {
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var sum time.Duration
	for _, l := range lats {
		sum += l
	}
	st := EndpointStats{
		Count:  len(lats),
		MeanMs: ms(sum / time.Duration(len(lats))),
		P50Ms:  ms(percentile(lats, 0.50)),
		P95Ms:  ms(percentile(lats, 0.95)),
		P99Ms:  ms(percentile(lats, 0.99)),
		MaxMs:  ms(lats[len(lats)-1]),
	}
	if elapsed > 0 {
		st.Throughput = float64(len(lats)) / elapsed.Seconds()
	}
	return st
}

func buildReport(cfg Config, elapsed time.Duration, samples []sample, depths, heaps []int64, lagMax map[string]int64) *Report {
	rep := &Report{
		Config:       cfg,
		ElapsedMs:    ms(elapsed),
		TotalOps:     len(samples),
		Endpoints:    make(map[string]EndpointStats),
		StatusCounts: make(map[int]int),
		QueueDepth:   depths,
		HeapInuse:    heaps,
	}
	if elapsed > 0 {
		rep.Throughput = float64(len(samples)) / elapsed.Seconds()
	}
	byEndpoint := make(map[string][]time.Duration)
	byTarget := make(map[string][]time.Duration)
	for _, s := range samples {
		byEndpoint[s.endpoint] = append(byEndpoint[s.endpoint], s.latency)
		if len(cfg.ReplicaURLs) > 0 && s.target != "" {
			byTarget[s.target] = append(byTarget[s.target], s.latency)
		}
		rep.StatusCounts[s.status]++
		rep.Retries += s.retries
		rep.StreamRows += s.rows
		rep.StreamBytes += s.bytes
		switch {
		case s.status == http.StatusConflict:
			rep.Conflicts++
		case s.status == http.StatusServiceUnavailable:
			rep.Rejected++
		}
		if s.status >= 500 {
			rep.Errors5xx++
		}
	}
	for ep, lats := range byEndpoint {
		rep.Endpoints[ep] = endpointStats(lats, elapsed)
	}
	if len(byTarget) > 0 {
		rep.Targets = make(map[string]EndpointStats, len(byTarget))
		for target, lats := range byTarget {
			rep.Targets[target] = endpointStats(lats, elapsed)
		}
	}
	if len(lagMax) > 0 {
		rep.ReplicaLagMax = lagMax
		for _, lag := range lagMax {
			if lag > rep.ReplicaLagMaxSeq {
				rep.ReplicaLagMaxSeq = lag
			}
		}
	}
	for _, d := range depths {
		if d > rep.QueueDepthMax {
			rep.QueueDepthMax = d
		}
	}
	for _, h := range heaps {
		if h > rep.HeapInuseMax {
			rep.HeapInuseMax = h
		}
	}
	return rep
}
