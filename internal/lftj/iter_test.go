package lftj

import (
	"math/rand"
	"testing"

	"logicblox/internal/relation"
	"logicblox/internal/tuple"
)

// drainIter pulls every binding out of a fresh cursor, cloning each.
func drainIter(j *Join) []tuple.Tuple {
	it := j.Iter()
	defer it.Close()
	var out []tuple.Tuple
	for b, ok := it.Next(); ok; b, ok = it.Next() {
		out = append(out, b.Clone())
	}
	return out
}

func triangleAtoms(r, s, tt relation.Relation) []Atom {
	return []Atom{
		{Pred: "R", Iter: r.Iterator(), Vars: []int{0, 1}},
		{Pred: "S", Iter: s.Iterator(), Vars: []int{1, 2}},
		{Pred: "T", Iter: tt.Iterator(), Vars: []int{0, 2}},
	}
}

// TestIterMatchesCollect: the pull cursor yields the same bindings in the
// same order as the callback API, over randomized triangle instances.
func TestIterMatchesCollect(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		mk := func() relation.Relation {
			r := relation.New(2)
			for i := 0; i < rng.Intn(80); i++ {
				r = r.Insert(tuple.Ints(rng.Int63n(10), rng.Int63n(10)))
			}
			return r
		}
		r, s, tt := mk(), mk(), mk()
		jr, err := NewJoin(3, triangleAtoms(r, s, tt), nil)
		if err != nil {
			t.Fatal(err)
		}
		want := jr.Collect()
		ji, err := NewJoin(3, triangleAtoms(r, s, tt), nil)
		if err != nil {
			t.Fatal(err)
		}
		got := drainIter(ji)
		if len(got) != len(want) {
			t.Fatalf("trial %d: iter yielded %d, collect %d", trial, len(got), len(want))
		}
		for i := range want {
			if !got[i].Equal(want[i]) {
				t.Fatalf("trial %d: iter[%d] = %v, collect %v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestIterZeroVars: the degenerate boolean join yields exactly one nil
// binding, matching Run's behavior.
func TestIterZeroVars(t *testing.T) {
	j := &Join{numVars: 0}
	it := j.Iter()
	defer it.Close()
	b, ok := it.Next()
	if !ok || b != nil {
		t.Fatalf("first Next = (%v, %v), want (nil, true)", b, ok)
	}
	if _, ok := it.Next(); ok {
		t.Fatal("second Next should report exhaustion")
	}
}

// TestIterEarlyClose: abandoning a cursor mid-enumeration restores every
// atom iterator to its root, so the same underlying relation supports a
// fresh full run afterwards.
func TestIterEarlyClose(t *testing.T) {
	a := binary([2]int64{1, 2}, [2]int64{1, 3}, [2]int64{2, 3}, [2]int64{2, 5})
	ai := a.Iterator()
	j, err := NewJoin(2, []Atom{{Pred: "A", Iter: ai, Vars: []int{0, 1}}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	it := j.Iter()
	if _, ok := it.Next(); !ok {
		t.Fatal("expected at least one binding")
	}
	it.Close()
	it.Close() // idempotent
	if _, ok := it.Next(); ok {
		t.Fatal("Next after Close should report exhaustion")
	}
	// The trie iterator must be back at depth -1: a second full cursor
	// over the same Join sees all four tuples.
	if got := drainIter(j); len(got) != 4 {
		t.Fatalf("rerun after early close yielded %d bindings, want 4", len(got))
	}
}

// TestIterExhaustionUnwinds: running a cursor dry leaves the atom
// iterators unwound without an explicit Close.
func TestIterExhaustionUnwinds(t *testing.T) {
	a := unary(1, 2, 3)
	j, err := NewJoin(1, []Atom{{Pred: "A", Iter: a.Iterator(), Vars: []int{0}}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := drainIter(j); len(got) != 3 {
		t.Fatalf("first pass = %d bindings", len(got))
	}
	if got := drainIter(j); len(got) != 3 {
		t.Fatalf("second pass = %d bindings, want 3 (iterators not unwound?)", len(got))
	}
}

// TestIterSensitivityParity: the cursor records the same sensitivity
// intervals as the recursive Run did (Figure 3 trace).
func TestIterSensitivityParity(t *testing.T) {
	build := func(idx *SensitivityIndex) *Join {
		a := unary(0, 1, 3, 4, 5, 6, 7, 8, 9, 11)
		b := unary(0, 2, 6, 7, 8, 9)
		c := unary(2, 4, 5, 8, 10)
		j, err := NewJoin(1, []Atom{
			{Pred: "A", Iter: a.Iterator(), Vars: []int{0}},
			{Pred: "B", Iter: b.Iterator(), Vars: []int{0}},
			{Pred: "C", Iter: c.Iterator(), Vars: []int{0}},
		}, idx)
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	runIdx := NewSensitivityIndex()
	build(runIdx).Run(func(tuple.Tuple) bool { return true })
	iterIdx := NewSensitivityIndex()
	drainIter(build(iterIdx))
	for _, pred := range []string{"A", "B", "C"} {
		ri, ii := runIdx.Intervals(pred), iterIdx.Intervals(pred)
		if len(ri) != len(ii) {
			t.Fatalf("%s: run recorded %d intervals, iter %d\nrun: %v\niter: %v", pred, len(ri), len(ii), ri, ii)
		}
	}
	// Spot-check the published sensitive/insensitive probes agree.
	for _, p := range []struct {
		pred string
		v    int64
	}{{"C", 3}, {"C", 4}, {"A", 0}, {"A", 5}, {"B", 4}, {"B", 7}} {
		if runIdx.Affected(p.pred, tuple.Ints(p.v)) != iterIdx.Affected(p.pred, tuple.Ints(p.v)) {
			t.Errorf("Affected(%s,%d) differs between Run and Iter", p.pred, p.v)
		}
	}
}

// TestIterMetricsParity: the work counters accumulated by a full cursor
// drain equal those of an equivalent Run.
func TestIterMetricsParity(t *testing.T) {
	mk := func(m *Metrics) *Join {
		r := binary([2]int64{1, 2}, [2]int64{1, 3}, [2]int64{2, 3}, [2]int64{4, 1})
		s := binary([2]int64{2, 3}, [2]int64{3, 4}, [2]int64{3, 1})
		j, err := NewJoin(3, []Atom{
			{Pred: "R", Iter: r.Iterator(), Vars: []int{0, 1}},
			{Pred: "S", Iter: s.Iterator(), Vars: []int{1, 2}},
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		j.m = m
		return j
	}
	var mr, mi Metrics
	mk(&mr).Run(func(tuple.Tuple) bool { return true })
	drainIter(mk(&mi))
	if mr != mi {
		t.Fatalf("metrics differ: Run %+v, Iter %+v", mr, mi)
	}
}
