package durable_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"logicblox/internal/core"
	"logicblox/internal/durable"
	"logicblox/internal/obs"
)

func freshDB() (*core.Database, error) { return core.NewDatabase(), nil }

// commitValue runs one recorded exec committing +p(v). on main and
// reports whether the commit was acknowledged.
func commitValue(db *core.Database, v int) error {
	src := fmt.Sprintf("+p(%d).", v)
	ws, err := db.Workspace(core.DefaultBranch)
	if err != nil {
		return err
	}
	res, err := ws.Exec(src)
	if err != nil {
		return err
	}
	return db.CommitIfRecorded(core.DefaultBranch, ws, res.Workspace, core.CommitRecord{Kind: "exec", Src: src})
}

func TestStoreRoundtrip(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	store, err := durable.Open(dir, durable.Options{Obs: reg, Generations: 2, CheckpointEvery: -1, CheckpointInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	db, err := store.Recover(freshDB)
	if err != nil {
		t.Fatal(err)
	}
	db.SetCommitHook(store.LogCommit)

	for v := 0; v < 5; v++ {
		if err := commitValue(db, v); err != nil {
			t.Fatalf("commit %d: %v", v, err)
		}
	}
	if err := store.Checkpoint(db.SaveSnapshot); err != nil {
		t.Fatal(err)
	}
	for v := 5; v < 9; v++ {
		if err := commitValue(db, v); err != nil {
			t.Fatalf("commit %d: %v", v, err)
		}
	}
	// Simulated kill: no Close, no final checkpoint.

	store2, err := durable.Open(dir, durable.Options{Obs: reg, Generations: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	db2, err := store2.Recover(freshDB)
	if err != nil {
		t.Fatal(err)
	}
	got := relationInts(t, db2)
	if want := []int{0, 1, 2, 3, 4, 5, 6, 7, 8}; !equalInts(got, want) {
		t.Fatalf("recovered p = %v, want %v", got, want)
	}
	st := store2.Stats()
	if st.JournalReplayed != 4 {
		t.Fatalf("JournalReplayed = %d, want 4 (stats %+v)", st.JournalReplayed, st)
	}
	if st.RecoveredSnapshotSeq == 0 || st.CorruptSkipped != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if db2.Seq() != st.LastSeq {
		t.Fatalf("db seq %d != store last seq %d", db2.Seq(), st.LastSeq)
	}
	if got := reg.Counter("durable.recoveries").Value(); got < 1 {
		t.Fatalf("durable.recoveries = %d", got)
	}
	if got := reg.Counter("durable.journal_replayed").Value(); got != 4 {
		t.Fatalf("durable.journal_replayed = %d", got)
	}
}

// The required fallback case: the newest snapshot generation is corrupt;
// recovery must skip it (typed, counted) and rebuild from the previous
// generation plus the longer journal tail — no acknowledged commit lost.
func TestRecoverSkipsCorruptNewestGeneration(t *testing.T) {
	dir := t.TempDir()
	store, err := durable.Open(dir, durable.Options{Generations: 3, CheckpointEvery: -1, CheckpointInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	db, err := store.Recover(freshDB)
	if err != nil {
		t.Fatal(err)
	}
	db.SetCommitHook(store.LogCommit)

	for v := 0; v < 3; v++ {
		if err := commitValue(db, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Checkpoint(db.SaveSnapshot); err != nil {
		t.Fatal(err)
	}
	for v := 3; v < 6; v++ {
		if err := commitValue(db, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Checkpoint(db.SaveSnapshot); err != nil {
		t.Fatal(err)
	}
	for v := 6; v < 8; v++ {
		if err := commitValue(db, v); err != nil {
			t.Fatal(err)
		}
	}

	// Corrupt the newest generation's payload on disk.
	gens := snapshotFiles(t, dir)
	if len(gens) != 2 {
		t.Fatalf("generations = %v, want 2", gens)
	}
	newest := gens[len(gens)-1]
	raw, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-10] ^= 0xff
	if err := os.WriteFile(newest, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	store2, err := durable.Open(dir, durable.Options{Generations: 3, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	db2, err := store2.Recover(freshDB)
	if err != nil {
		t.Fatal(err)
	}
	got := relationInts(t, db2)
	if want := []int{0, 1, 2, 3, 4, 5, 6, 7}; !equalInts(got, want) {
		t.Fatalf("recovered p = %v, want %v", got, want)
	}
	st := store2.Stats()
	if st.CorruptSkipped != 1 {
		t.Fatalf("CorruptSkipped = %d (stats %+v)", st.CorruptSkipped, st)
	}
	// Fell back to the first checkpoint (seq covers commits 0-2), so the
	// journal replayed commits 3-7.
	if st.JournalReplayed != 5 {
		t.Fatalf("JournalReplayed = %d, want 5 (stats %+v)", st.JournalReplayed, st)
	}
	if got := reg.Counter("durable.corrupt_skipped").Value(); got != 1 {
		t.Fatalf("durable.corrupt_skipped = %d", got)
	}
}

// A transient journal-append failure must reject that commit with
// ErrDurability, leave the head untouched, and not poison later commits.
func TestJournalFailureVetoesCommit(t *testing.T) {
	dir := t.TempDir()
	store, err := durable.Open(dir, durable.Options{CheckpointEvery: -1, CheckpointInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	db, err := store.Recover(freshDB)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk on fire")
	fail := true
	db.SetCommitHook(func(rec core.CommitRecord) error {
		if fail {
			return boom
		}
		return store.LogCommit(rec)
	})
	err = commitValue(db, 1)
	if !errors.Is(err, core.ErrDurability) {
		t.Fatalf("commit under failing hook: %v, want ErrDurability", err)
	}
	if got := relationInts(t, db); len(got) != 0 {
		t.Fatalf("head moved despite vetoed commit: %v", got)
	}
	fail = false
	if err := commitValue(db, 2); err != nil {
		t.Fatal(err)
	}
	if got := relationInts(t, db); !equalInts(got, []int{2}) {
		t.Fatalf("p = %v, want [2]", got)
	}
}

// The background checkpointer folds commits into a snapshot generation.
func TestStoreBackgroundCheckpointer(t *testing.T) {
	dir := t.TempDir()
	store, err := durable.Open(dir, durable.Options{
		CheckpointEvery:    3,
		CheckpointInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	db, err := store.Recover(freshDB)
	if err != nil {
		t.Fatal(err)
	}
	db.SetCommitHook(store.LogCommit)
	store.Start(db.SaveSnapshot)
	defer store.Close()
	for v := 0; v < 4; v++ {
		if err := commitValue(db, v); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if store.Stats().Generations > 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("no checkpoint after CheckpointEvery commits: %+v", store.Stats())
}

// Under the interval fsync policy appends are batched; Close flushes.
func TestStoreIntervalFsync(t *testing.T) {
	dir := t.TempDir()
	store, err := durable.Open(dir, durable.Options{
		Fsync:              durable.FsyncInterval,
		FsyncInterval:      5 * time.Millisecond,
		CheckpointEvery:    -1,
		CheckpointInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	db, err := store.Recover(freshDB)
	if err != nil {
		t.Fatal(err)
	}
	db.SetCommitHook(store.LogCommit)
	store.Start(db.SaveSnapshot)
	for v := 0; v < 6; v++ {
		if err := commitValue(db, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	store2, err := durable.Open(dir, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	db2, err := store2.Recover(freshDB)
	if err != nil {
		t.Fatal(err)
	}
	if got := relationInts(t, db2); !equalInts(got, []int{0, 1, 2, 3, 4, 5}) {
		t.Fatalf("recovered p = %v", got)
	}
}

func snapshotFiles(t *testing.T, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "snap-*.lbsnap"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(matches)
	return matches
}

func relationInts(t *testing.T, db *core.Database) []int {
	t.Helper()
	ws, err := db.Workspace(core.DefaultBranch)
	if err != nil {
		t.Fatal(err)
	}
	var out []int
	rows, err := ws.Query(`_(x) <- p(x).`)
	if err != nil {
		// p not yet defined: nothing committed.
		return nil
	}
	for _, row := range rows {
		out = append(out, int(row[0].AsInt()))
	}
	sort.Ints(out)
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
