package main

import (
	"fmt"
	"time"

	"logicblox/internal/engine"
	"logicblox/internal/ml"
	"logicblox/internal/relation"
	"logicblox/internal/solver"
	"logicblox/internal/tuple"
	"logicblox/internal/workload"
)

// runSolve measures prescriptive analytics (paper §2.3.1): grounding the
// Figure 2 assortment LP at growing product counts, solving it, and
// incrementally re-solving after a localized data change.
func runSolve(quick bool) {
	sizes := []int{10, 100, 1000}
	if quick {
		sizes = []int{10, 100}
	}
	src := `
		spacePerProd[p] = v -> Product(p), float(v).
		profitPerProd[p] = v -> Product(p), float(v).
		minStock[p] = v -> Product(p), float(v).
		maxStock[p] = v -> Product(p), float(v).
		maxShelf[] = v -> float(v).
		Stock[p] = v -> Product(p), float(v).
		totalShelf[] = u <- agg<<u = sum(z)>> Stock[p] = x, spacePerProd[p] = y, z = x * y.
		totalProfit[] = u <- agg<<u = sum(z)>> Stock[p] = x, profitPerProd[p] = y, z = x * y.
		Product(p) -> Stock[p] >= minStock[p].
		Product(p) -> Stock[p] <= maxStock[p].
		totalShelf[] = u, maxShelf[] = v -> u <= v.
		lang:solve:variable(` + "`Stock" + `).
		lang:solve:max(` + "`totalProfit" + `).`
	prog := mustCompile(src)
	fmt.Printf("%-10s %-8s %-12s %-12s %-14s %-14s\n",
		"products", "vars", "ground", "solve", "reground(Δ1)", "resolve")
	for _, n := range sizes {
		retail := workload.Generate(workload.Config{Products: n, Stores: 1, Weeks: 1, Seed: 5})
		rels := retail.Relations()
		rels["maxShelf"] = relation.FromTuples(1, []tuple.Tuple{{tuple.Float(float64(n) * 10)}})
		t0 := time.Now()
		g, err := solver.Ground(prog, rels)
		if err != nil {
			panic(err)
		}
		dGround := time.Since(t0)
		t0 = time.Now()
		_, sol, err := g.Solve()
		if err != nil {
			panic(err)
		}
		dSolve := time.Since(t0)

		// Localized change: one product's max stock.
		rels2 := cloneRels(rels)
		rels2["maxStock"] = rels["maxStock"].
			Delete(rels["maxStock"].Lookup(tuple.Strings(workload.ProductName(0)))[0]).
			Insert(tuple.Tuple{tuple.String(workload.ProductName(0)), tuple.Float(5)})
		t0 = time.Now()
		reground, err := g.Reground(rels2)
		if err != nil {
			panic(err)
		}
		dReground := time.Since(t0)
		t0 = time.Now()
		if _, _, err := g.Solve(); err != nil {
			panic(err)
		}
		dResolve := time.Since(t0)
		fmt.Printf("%-10d %-8d %-12v %-12v %-14v %-14v  (obj %.0f, %d constraints re-ground)\n",
			n, g.NumVars(), dGround.Round(time.Microsecond), dSolve.Round(time.Microsecond),
			dReground.Round(time.Microsecond), dResolve.Round(time.Microsecond), sol.Objective, reground)
	}
	fmt.Println("claim check: only the constraints whose inputs changed are re-ground (§2.3.1).")
}

// runPredict measures predictive analytics (paper §2.3.2): learning one
// logistic model per store with predict rules and evaluating accuracy.
func runPredict(quick bool) {
	stores, customers := 100, 40
	if quick {
		stores, customers = 30, 20
	}
	buy, feat := workload.ClassificationSet(stores, customers, 0.1, 13)
	src := `
		SM[s] = m <- predict<<m = logist(v|f)>> Buy[s, c] = v, Feature[s, n] = f.
		Pred[s] = v <- predict<<v = eval(m|f)>> SM[s] = m, Feature[s, n] = f.`
	prog := mustCompile(src)
	models := ml.NewRegistry()
	ctx := engine.NewContext(prog, map[string]relation.Relation{
		"Buy": buy, "Feature": feat,
	}, engine.Options{Models: models})
	t0 := time.Now()
	if err := ctx.EvalAll(); err != nil {
		panic(err)
	}
	d := time.Since(t0)

	// Accuracy: per-store majority label vs thresholded prediction.
	majority := map[string]float64{}
	counts := map[string]int{}
	buy.ForEach(func(t tuple.Tuple) bool {
		majority[t[0].AsString()] += t[2].AsFloat()
		counts[t[0].AsString()]++
		return true
	})
	correct, total := 0, 0
	ctx.Relation("Pred").ForEach(func(t tuple.Tuple) bool {
		s := t[0].AsString()
		pred := t[1].AsFloat() > 0.5
		actual := majority[s]/float64(counts[s]) > 0.5
		if pred == actual {
			correct++
		}
		total++
		return true
	})
	fmt.Printf("stores: %d, examples: %d, models trained: %d, wall time: %v\n",
		stores, buy.Len(), models.Len(), d.Round(time.Millisecond))
	fmt.Printf("per-store majority-label agreement: %d/%d (%.0f%%)\n",
		correct, total, 100*float64(correct)/float64(total))
	if float64(correct)/float64(total) < 0.8 {
		panic("predictive accuracy collapsed")
	}
}
