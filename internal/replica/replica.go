// Package replica implements the follower half of journal-streaming
// replication. A follower owns a local durable store and database like any
// lb-serve process, but instead of accepting writes it tails the primary's
// commit journal over GET /journal/tail and replays each record through
// core.Database.ApplyRecord — the same deterministic path crash recovery
// uses — then journals it locally so a follower restart resumes from its
// own disk. When the primary's checkpointer has truncated the journal past
// the follower's position (ErrJournalTruncated → HTTP 410), the follower
// falls back to a full snapshot resync from GET /replica/snapshot instead
// of diverging silently. Promote seals the tailer and re-opens the local
// journal read-write, turning the warm standby into a primary.
package replica

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"logicblox/internal/core"
	"logicblox/internal/durable"
	"logicblox/internal/obs"
)

// ErrPromoted reports an operation that is invalid after promotion.
var ErrPromoted = errors.New("replica: follower already promoted")

// Config configures a Follower.
type Config struct {
	// PrimaryURL is the primary's base URL, e.g. http://db0:8090.
	PrimaryURL string
	// Store is the follower's own durable store; replayed records are
	// journaled into it so restarts resume locally.
	Store *durable.Store
	// DB is the database recovered from Store. The follower swaps it for a
	// fresh one on snapshot resync; read it through Follower.DB.
	DB *core.Database
	// StalenessBound flips Stale (and the serving layer's health checks)
	// when the follower has not been caught up with the primary for this
	// long. Zero means 10s.
	StalenessBound time.Duration
	// PollWindow caps one long-poll tail request; the primary ends the
	// stream cleanly after this long and the follower reconnects. Zero
	// means 25s.
	PollWindow time.Duration
	// ProbeInterval is how often the auto-promote health probe checks the
	// primary when PromoteOnFailure is set. Zero means 2s.
	ProbeInterval time.Duration
	// ProbeFailures is how many consecutive probe failures trigger
	// auto-promotion. Zero means 3.
	ProbeFailures int
	// PromoteOnFailure enables the auto-promote probe loop.
	PromoteOnFailure bool
	// Client issues tail/snapshot/probe requests. Nil means a dedicated
	// client; per-request timeouts come from contexts, not Client.Timeout.
	Client *http.Client
	// Obs receives replica.* gauges and counters (nil-safe).
	Obs *obs.Registry
	// Logger receives tailer lifecycle events. Nil means slog.Default().
	Logger *slog.Logger
}

// Status is the follower's replication state, surfaced on /healthz.
type Status struct {
	Primary    string  `json:"primary"`
	AppliedSeq uint64  `json:"applied_seq"`
	HeadSeq    uint64  `json:"head_seq"`
	LagSeq     uint64  `json:"lag_seq"`
	LagSeconds float64 `json:"lag_seconds"`
	Stale      bool    `json:"stale"`
	Connected  bool    `json:"connected"`
	Resyncs    int64   `json:"resyncs"`
	Promoted   bool    `json:"promoted"`
}

// Follower tails a primary and replays its journal locally.
type Follower struct {
	cfg    Config
	client *http.Client
	log    *slog.Logger

	db atomic.Pointer[core.Database]

	mu         sync.Mutex
	applied    uint64    // last sequence replayed and journaled locally
	head       uint64    // primary's head per the latest frame seen
	caughtUpAt time.Time // last instant applied >= head on a live stream
	connected  bool
	promoted   bool

	cancel  context.CancelFunc
	done    chan struct{} // closed when the tail loop exits
	probeWG sync.WaitGroup

	lagSeq     *obs.Gauge
	lagMillis  *obs.Gauge
	applies    *obs.Counter
	reconnects *obs.Counter
	resyncs    *obs.Counter
	tornFrames *obs.Counter
	promotions *obs.Counter
}

// New builds a follower; Start begins tailing.
func New(cfg Config) (*Follower, error) {
	if cfg.PrimaryURL == "" {
		return nil, errors.New("replica: PrimaryURL required")
	}
	if _, err := url.Parse(cfg.PrimaryURL); err != nil {
		return nil, fmt.Errorf("replica: bad primary URL: %w", err)
	}
	if cfg.Store == nil || cfg.DB == nil {
		return nil, errors.New("replica: Store and DB required")
	}
	if cfg.StalenessBound <= 0 {
		cfg.StalenessBound = 10 * time.Second
	}
	if cfg.PollWindow <= 0 {
		cfg.PollWindow = 25 * time.Second
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.ProbeFailures <= 0 {
		cfg.ProbeFailures = 3
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	f := &Follower{
		cfg:    cfg,
		client: client,
		log:    cfg.Logger.With("component", "replica", "primary", cfg.PrimaryURL),
		done:   make(chan struct{}),
	}
	f.db.Store(cfg.DB)
	f.applied = cfg.DB.Seq()
	if r := cfg.Obs; r != nil {
		f.lagSeq = r.Gauge("replica.lag_seq")
		f.lagMillis = r.Gauge("replica.lag_ms")
		f.applies = r.Counter("replica.records_applied")
		f.reconnects = r.Counter("replica.reconnects")
		f.resyncs = r.Counter("replica.resyncs")
		f.tornFrames = r.Counter("replica.torn_frames")
		f.promotions = r.Counter("replica.promotions")
	}
	return f, nil
}

// DB returns the follower's current database. The pointer changes on
// snapshot resync, so callers must not cache it across requests.
func (f *Follower) DB() *core.Database { return f.db.Load() }

// PrimaryURL returns the primary this follower tails.
func (f *Follower) PrimaryURL() string { return f.cfg.PrimaryURL }

// StalenessBound returns the configured staleness bound.
func (f *Follower) StalenessBound() time.Duration { return f.cfg.StalenessBound }

// Start launches the tail loop (and the auto-promote probe, if enabled).
func (f *Follower) Start(ctx context.Context) {
	ctx, f.cancel = context.WithCancel(ctx)
	go f.tailLoop(ctx)
	if f.cfg.PromoteOnFailure {
		f.probeWG.Add(1)
		go f.probeLoop(ctx)
	}
}

// Stop halts tailing and probing without promoting.
func (f *Follower) Stop() {
	if f.cancel != nil {
		f.cancel()
		<-f.done
		f.probeWG.Wait()
	}
}

// Status reports the current replication state. Lag in seconds is the
// time since the follower was last provably caught up with the primary —
// it keeps growing while disconnected, which is exactly when reads go
// stale.
func (f *Follower) Status() Status {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := Status{
		Primary:    f.cfg.PrimaryURL,
		AppliedSeq: f.applied,
		HeadSeq:    f.head,
		Connected:  f.connected,
		Resyncs:    f.resyncs.Value(),
		Promoted:   f.promoted,
	}
	if f.head > f.applied {
		st.LagSeq = f.head - f.applied
	}
	if f.promoted {
		return st
	}
	if f.caughtUpAt.IsZero() {
		st.LagSeconds = f.cfg.StalenessBound.Seconds() + 1 // never caught up
	} else {
		st.LagSeconds = time.Since(f.caughtUpAt).Seconds()
	}
	st.Stale = st.LagSeconds > f.cfg.StalenessBound.Seconds()
	return st
}

// Stale reports whether reads on this follower exceed the staleness bound.
func (f *Follower) Stale() bool { return f.Status().Stale }

// Promoted reports whether this follower has been promoted to primary.
func (f *Follower) Promoted() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.promoted
}

// Promote seals the tailer and re-opens the local journal read-write: the
// tail loop is stopped, and the store's commit hook is installed so new
// transactions journal locally. The database keeps the sequence the last
// replayed record pinned, so post-promotion commits continue the
// primary's numbering. Idempotent after the first call via ErrPromoted.
func (f *Follower) Promote() error {
	f.mu.Lock()
	if f.promoted {
		f.mu.Unlock()
		return ErrPromoted
	}
	f.promoted = true
	f.mu.Unlock()

	if f.cancel != nil {
		f.cancel()
		<-f.done
		f.probeWG.Wait()
	}
	db := f.db.Load()
	db.AlignSeq(db.Seq() + 1)
	db.SetCommitHook(f.cfg.Store.LogCommit)
	f.promotions.Inc()
	f.log.Info("follower promoted to primary", "seq", db.Seq())
	return nil
}

// tailLoop streams the primary's journal forever, reconnecting with
// jittered exponential backoff on failure and resyncing from a snapshot
// when truncated past our position.
func (f *Follower) tailLoop(ctx context.Context) {
	defer close(f.done)
	// A brand-new follower bootstraps from the primary's newest snapshot
	// rather than replaying history from sequence zero; failure here is
	// non-fatal — tailing from zero works too, and a primary that has
	// already truncated will 410 us back into resync.
	if f.appliedSeq() == 0 {
		if err := f.resync(ctx); err != nil && ctx.Err() == nil {
			f.log.Warn("initial snapshot bootstrap failed; tailing from zero", "err", err)
		}
	}
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	backoff := 50 * time.Millisecond
	const maxBackoff = 5 * time.Second
	for ctx.Err() == nil {
		progressed, err := f.tailOnce(ctx)
		f.setConnected(false)
		if ctx.Err() != nil {
			return
		}
		switch {
		case errors.Is(err, durable.ErrJournalTruncated):
			f.log.Warn("journal truncated past follower position; resyncing from snapshot")
			if rerr := f.resync(ctx); rerr != nil {
				if ctx.Err() != nil {
					return
				}
				f.log.Error("snapshot resync failed", "err", rerr)
			} else {
				backoff = 50 * time.Millisecond
				continue
			}
		case errors.Is(err, durable.ErrTornFrame):
			// A mid-crash primary tore the final frame; everything before
			// it was applied, so resume from the last good sequence.
			f.tornFrames.Inc()
			f.log.Warn("torn tail frame; resuming from last good seq", "seq", f.appliedSeq())
		case err != nil:
			f.log.Debug("tail stream ended", "err", err)
		}
		if progressed || err == nil {
			// Clean EOS or real progress: reconnect promptly.
			backoff = 50 * time.Millisecond
			continue
		}
		f.reconnects.Inc()
		jitter := time.Duration(rng.Int63n(int64(backoff)/2 + 1))
		select {
		case <-ctx.Done():
			return
		case <-time.After(backoff/2 + jitter):
		}
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// tailOnce runs one tail request: connect from the current applied
// sequence, decode frames until the stream ends. Returns whether any
// record was applied this round.
func (f *Follower) tailOnce(ctx context.Context) (progressed bool, err error) {
	from := f.appliedSeq()
	// The request outlives the long-poll window by a margin; a primary
	// that stalls mid-frame hits this deadline instead of hanging forever.
	rctx, cancel := context.WithTimeout(ctx, f.cfg.PollWindow+10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet,
		f.cfg.PrimaryURL+"/journal/tail?from_seq="+strconv.FormatUint(from, 10), nil)
	if err != nil {
		return false, err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		return false, durable.ErrJournalTruncated
	default:
		return false, fmt.Errorf("replica: tail request: %s", resp.Status)
	}
	f.setConnected(true)

	tr := durable.NewTailReader(resp.Body)
	defer tr.Close()
	for ctx.Err() == nil {
		frame, err := tr.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return progressed, nil // dropped at a frame boundary: resumable
			}
			return progressed, err
		}
		switch frame.Type {
		case durable.FrameRecord:
			if err := f.apply(frame.Rec); err != nil {
				return progressed, err
			}
			progressed = true
		case durable.FrameHeartbeat:
			f.observeHead(frame.Head)
		case durable.FrameEOS:
			return progressed, nil
		}
	}
	return progressed, ctx.Err()
}

// apply replays one record through the normal transaction path and
// journals it locally. Apply-then-log: if replay fails we journal
// nothing, and if the process dies between the two, restart recovery
// re-tails the record from the primary and replays it identically.
func (f *Follower) apply(rec core.CommitRecord) error {
	db := f.db.Load()
	if rec.Seq <= db.Seq() {
		return nil // duplicate after reconnect; replay is exactly-once
	}
	if err := db.ApplyRecord(rec); err != nil {
		return fmt.Errorf("replica: replay seq %d: %w", rec.Seq, err)
	}
	if err := f.cfg.Store.LogCommit(rec); err != nil {
		return fmt.Errorf("replica: local journal seq %d: %w", rec.Seq, err)
	}
	f.applies.Inc()
	f.mu.Lock()
	f.applied = rec.Seq
	if rec.Seq > f.head {
		f.head = rec.Seq
	}
	f.markCaughtUpLocked()
	f.mu.Unlock()
	return nil
}

// observeHead records the primary's head from a heartbeat.
func (f *Follower) observeHead(head uint64) {
	f.mu.Lock()
	if head > f.head {
		f.head = head
	}
	f.markCaughtUpLocked()
	f.mu.Unlock()
}

// markCaughtUpLocked refreshes the caught-up instant and lag gauges;
// callers hold f.mu.
func (f *Follower) markCaughtUpLocked() {
	if f.applied >= f.head {
		f.caughtUpAt = time.Now()
	}
	var lag uint64
	if f.head > f.applied {
		lag = f.head - f.applied
	}
	f.lagSeq.Set(int64(lag))
	if f.caughtUpAt.IsZero() {
		f.lagMillis.Set(f.cfg.StalenessBound.Milliseconds() + 1)
	} else {
		f.lagMillis.Set(time.Since(f.caughtUpAt).Milliseconds())
	}
}

func (f *Follower) appliedSeq() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.applied
}

func (f *Follower) setConnected(v bool) {
	f.mu.Lock()
	f.connected = v
	f.mu.Unlock()
}

// resync replaces the follower's database with a full snapshot from the
// primary, then re-anchors the local store (snapshot generation written,
// journal truncated) so the next restart recovers locally from the new
// baseline. This is the escape hatch for a follower paused past the
// primary's checkpoint truncation.
func (f *Follower) resync(ctx context.Context) error {
	rctx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, f.cfg.PrimaryURL+"/replica/snapshot", nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replica: snapshot request: %s", resp.Status)
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<30))
	if err != nil {
		return err
	}
	payload, err := durable.UnframeSnapshotBytes(raw)
	if err != nil {
		return err
	}
	db, err := core.LoadDatabase(bytes.NewReader(payload))
	if err != nil {
		return err
	}
	if err := f.cfg.Store.Checkpoint(db.SaveSnapshot); err != nil {
		return fmt.Errorf("replica: re-anchor local store: %w", err)
	}
	f.db.Store(db)
	f.mu.Lock()
	f.applied = db.Seq()
	if f.applied > f.head {
		f.head = f.applied
	}
	f.markCaughtUpLocked()
	f.mu.Unlock()
	f.resyncs.Inc()
	f.log.Info("resynced from primary snapshot", "seq", db.Seq())
	return nil
}

// probeLoop watches the primary's /healthz and promotes this follower
// after ProbeFailures consecutive failures. A probe succeeds on any HTTP
// response — a draining primary answers 503 but is plainly alive, and
// promoting next to a live primary is the split-brain case the runbook
// warns about.
func (f *Follower) probeLoop(ctx context.Context) {
	defer f.probeWG.Done()
	failures := 0
	t := time.NewTicker(f.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		if f.probeOnce(ctx) {
			failures = 0
			continue
		}
		failures++
		f.log.Warn("primary health probe failed", "consecutive", failures, "threshold", f.cfg.ProbeFailures)
		if failures < f.cfg.ProbeFailures {
			continue
		}
		f.log.Warn("primary unreachable; auto-promoting")
		// Promote cancels ctx and joins this goroutine, so run it from a
		// fresh one and exit the loop.
		go func() {
			if err := f.Promote(); err != nil && !errors.Is(err, ErrPromoted) {
				f.log.Error("auto-promotion failed", "err", err)
			}
		}()
		return
	}
}

// probeOnce reports whether the primary answered at all.
func (f *Follower) probeOnce(ctx context.Context) bool {
	rctx, cancel := context.WithTimeout(ctx, f.cfg.ProbeInterval)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, f.cfg.PrimaryURL+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
	resp.Body.Close()
	return true
}
