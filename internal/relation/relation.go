// Package relation implements persistent relations: immutable sets of
// tuples stored in a purely functional treap keyed by lexicographic tuple
// order, presented to the join machinery as tries (paper §3.1, §3.2).
//
// Because storage is persistent, a snapshot of a relation (and hence of a
// whole workspace) is an O(1) pointer copy; versions share structure, and
// the difference between two versions is enumerable in time proportional
// to their divergence. These properties are what the incremental
// maintenance and transaction-repair layers are built on.
package relation

import (
	"logicblox/internal/treap"
	"logicblox/internal/tuple"
)

func tupleOps() treap.Ops[tuple.Tuple] {
	return treap.Ops[tuple.Tuple]{
		Compare: func(a, b tuple.Tuple) int { return a.Compare(b) },
		Hash:    func(t tuple.Tuple) uint64 { return t.Hash() },
	}
}

// Relation is an immutable set of same-arity tuples. The zero Relation is
// not usable; construct with New or FromTuples.
type Relation struct {
	arity int
	t     treap.Tree[tuple.Tuple, struct{}]
}

// New returns an empty relation of the given arity.
func New(arity int) Relation {
	return Relation{arity: arity, t: treap.New[tuple.Tuple, struct{}](tupleOps())}
}

// FromTuples builds a relation of the given arity from tuples (in any
// order; duplicates collapse under set semantics).
func FromTuples(arity int, ts []tuple.Tuple) Relation {
	r := New(arity)
	for _, t := range ts {
		r = r.Insert(t)
	}
	return r
}

// Arity returns the number of columns.
func (r Relation) Arity() int { return r.arity }

// Len returns the number of tuples.
func (r Relation) Len() int { return r.t.Len() }

// IsEmpty reports whether the relation has no tuples.
func (r Relation) IsEmpty() bool { return r.t.IsEmpty() }

// Contains reports whether t is in the relation.
func (r Relation) Contains(t tuple.Tuple) bool { return r.t.Contains(t) }

// Insert returns a relation including t. The input tuple must have the
// relation's arity and is not copied; callers must not mutate it afterward.
func (r Relation) Insert(t tuple.Tuple) Relation {
	if len(t) != r.arity {
		panic("relation: arity mismatch on insert")
	}
	return Relation{arity: r.arity, t: r.t.Insert(t, struct{}{})}
}

// Delete returns a relation excluding t.
func (r Relation) Delete(t tuple.Tuple) Relation {
	return Relation{arity: r.arity, t: r.t.Delete(t)}
}

// Union returns the set union of two same-arity relations.
func (r Relation) Union(o Relation) Relation {
	return Relation{arity: r.arity, t: r.t.Union(o.t)}
}

// Intersect returns the set intersection.
func (r Relation) Intersect(o Relation) Relation {
	return Relation{arity: r.arity, t: r.t.Intersect(o.t)}
}

// Difference returns r minus o.
func (r Relation) Difference(o Relation) Relation {
	return Relation{arity: r.arity, t: r.t.Difference(o.t)}
}

// Equal reports whether r and o hold exactly the same tuples. Shared
// subtrees are pruned, so comparing a branch against its parent costs time
// proportional to their divergence (O(1) when identical).
func (r Relation) Equal(o Relation) bool { return r.t.Equal(o.t) }

// StructuralHash returns the memoized structural hash; equal relations
// have equal hashes (unique representation).
func (r Relation) StructuralHash() uint64 { return r.t.StructuralHash() }

// ForEach calls fn for every tuple in lexicographic order until fn
// returns false.
func (r Relation) ForEach(fn func(tuple.Tuple) bool) {
	r.t.Ascend(func(t tuple.Tuple, _ struct{}) bool { return fn(t) })
}

// Slice returns all tuples in lexicographic order.
func (r Relation) Slice() []tuple.Tuple {
	out := make([]tuple.Tuple, 0, r.Len())
	r.ForEach(func(t tuple.Tuple) bool { out = append(out, t); return true })
	return out
}

// Cursor is a pull iterator over a relation's tuples in lexicographic
// order — the same sequence Slice returns, without building the slice.
// The relation is immutable, so the cursor stays valid indefinitely.
type Cursor struct {
	it *treap.Iterator[tuple.Tuple, struct{}]
}

// Cursor returns a pull iterator positioned before the first tuple.
func (r Relation) Cursor() *Cursor { return &Cursor{it: r.t.Iterator()} }

// Next returns the next tuple in lexicographic order; ok is false once
// the relation is exhausted. The tuple is the stored (immutable) value —
// callers must not mutate it.
func (c *Cursor) Next() (t tuple.Tuple, ok bool) {
	if c.it.AtEnd() {
		return nil, false
	}
	t = c.it.Key()
	c.it.Next()
	return t, true
}

// Diff enumerates the differences between r (old) and o (new): onDel for
// tuples only in r, onIns for tuples only in o. Cost is proportional to
// the unshared structure between the versions (paper §3.1: "changes
// between versions can be enumerated efficiently").
func (r Relation) Diff(o Relation, onDel, onIns func(tuple.Tuple)) {
	r.t.DiffWith(o.t, nil,
		func(t tuple.Tuple, _ struct{}) { onDel(t) },
		func(t tuple.Tuple, _ struct{}) { onIns(t) },
		nil)
}

// Permuted returns the relation with columns reordered so that column i of
// the result is column perm[i] of r. It materializes a secondary index for
// a variable ordering that is inconsistent with the base column order
// (paper §3.2).
func (r Relation) Permuted(perm []int) Relation {
	out := New(len(perm))
	r.ForEach(func(t tuple.Tuple) bool {
		out = out.Insert(t.Permute(perm))
		return true
	})
	return out
}

// Project returns the relation of distinct prefixes of length k (the
// projection onto the first k columns).
func (r Relation) Project(k int) Relation {
	out := New(k)
	r.ForEach(func(t tuple.Tuple) bool {
		out = out.Insert(t[:k].Clone())
		return true
	})
	return out
}

// Lookup returns the tuples whose first len(prefix) columns equal prefix,
// in lexicographic order.
func (r Relation) Lookup(prefix tuple.Tuple) []tuple.Tuple {
	var out []tuple.Tuple
	it := r.t.Iterator()
	probe := make(tuple.Tuple, len(prefix))
	copy(probe, prefix)
	it.Seek(probe)
	for !it.AtEnd() {
		t := it.Key()
		if len(t) < len(prefix) || !t[:len(prefix)].Equal(prefix) {
			break
		}
		out = append(out, t)
		it.Next()
	}
	return out
}

// FuncGet treats r as a functional predicate R[k1..kn]=v whose last column
// is the value: it returns the value for the given key prefix, which must
// have length arity-1. If multiple values exist (a functional-dependency
// violation upstream) the smallest is returned.
func (r Relation) FuncGet(key tuple.Tuple) (tuple.Value, bool) {
	if len(key) != r.arity-1 {
		panic("relation: FuncGet key must have arity-1 columns")
	}
	ts := r.Lookup(key)
	if len(ts) == 0 {
		return tuple.Value{}, false
	}
	return ts[0][r.arity-1], true
}

// MatchExists reports whether any tuple matches the pattern: column i must
// equal pattern[i] unless wild[i]. It narrows the scan with the longest
// ground prefix (negated-atom and constraint existence checks).
func (r Relation) MatchExists(pattern []tuple.Value, wild []bool) bool {
	if len(pattern) != r.arity {
		panic("relation: MatchExists pattern arity mismatch")
	}
	ground := 0
	for ground < r.arity && !wild[ground] {
		ground++
	}
	if ground == r.arity {
		return r.Contains(tuple.Tuple(pattern))
	}
	prefix := tuple.Tuple(pattern[:ground])
	found := false
	it := r.t.Iterator()
	it.Seek(prefix)
	for !it.AtEnd() {
		t := it.Key()
		if ground > 0 && !t[:ground].Equal(prefix) {
			break
		}
		match := true
		for i := ground; i < r.arity; i++ {
			if !wild[i] && !tuple.Equal(t[i], pattern[i]) {
				match = false
				break
			}
		}
		if match {
			found = true
			break
		}
		it.Next()
	}
	return found
}

// Sample returns a deterministic sample of approximately k tuples (every
// ⌈n/k⌉-th tuple in order), preserving sortedness. The query optimizer
// maintains such samples to compare candidate variable orderings
// (paper §3.2).
func (r Relation) Sample(k int) Relation {
	n := r.Len()
	if k <= 0 || n <= k {
		return r
	}
	stride := (n + k - 1) / k
	out := New(r.arity)
	i := 0
	r.ForEach(func(t tuple.Tuple) bool {
		if i%stride == 0 {
			out = out.Insert(t)
		}
		i++
		return true
	})
	return out
}
