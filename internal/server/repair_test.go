package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"logicblox/internal/obs"
)

// postExec sends one /exec transaction and reports any failure on errs.
func postExec(ts *httptest.Server, src string, errs chan<- error) {
	raw, _ := json.Marshal(Request{Src: src})
	resp, err := ts.Client().Post(ts.URL+"/exec", "application/json", bytes.NewReader(raw))
	if err != nil {
		errs <- err
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		errs <- fmt.Errorf("exec %q: status %d: %s", src, resp.StatusCode, b)
	}
}

// TestServerRepairDisjointWriters drives rounds of racing fact writers on
// disjoint predicates until the optimistic commit path observably
// conflicts, then asserts every lost race was resolved by fine-grained
// repair: server.commit.repairs > 0 and server.commit.full_reexecs == 0
// (a fact-only transaction records no reads, so no winner can invalidate
// it). Data integrity is checked after: no update may be lost.
func TestServerRepairDisjointWriters(t *testing.T) {
	// On a single-CPU box GOMAXPROCS(1) serializes the writers and the
	// race never materializes; give the scheduler real parallelism.
	if runtime.GOMAXPROCS(0) < 4 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	}
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{MaxRetries: 100, Obs: reg})

	const writers = 8
	const maxRounds = 40
	rounds := 0
	for rounds < maxRounds {
		var wg sync.WaitGroup
		errs := make(chan error, writers)
		for i := 0; i < writers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				postExec(ts, fmt.Sprintf("+w%d(%d).", i, rounds), errs)
			}(i)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		rounds++
		if reg.Counter("server.commit.retries").Value() > 0 && rounds >= 3 {
			break
		}
	}

	retries := reg.Counter("server.commit.retries").Value()
	repairs := reg.Counter("server.commit.repairs").Value()
	full := reg.Counter("server.commit.full_reexecs").Value()
	if retries == 0 {
		t.Fatalf("no commit conflict in %d rounds of %d racing writers; cannot exercise repair", maxRounds, writers)
	}
	if full != 0 {
		t.Fatalf("disjoint writers paid %d full re-executions (retries=%d repairs=%d); repair must cover every conflict", full, retries, repairs)
	}
	if repairs == 0 || repairs != retries {
		t.Fatalf("repairs=%d retries=%d; every lost race should resolve via repair", repairs, retries)
	}

	// No update may be lost: every writer's predicate holds one fact per
	// round despite all commits landing through the repair path.
	for i := 0; i < writers; i++ {
		var q QueryResponse
		mustOK(t, ts, "POST", "/query", Request{Src: fmt.Sprintf("_(x) <- w%d(x).", i)}, &q)
		if len(q.Rows) != rounds {
			t.Fatalf("writer %d: %d facts, want %d (lost update through repair path)", i, len(q.Rows), rounds)
		}
	}
	t.Logf("disjoint writers: %d rounds, retries=%d repairs=%d full_reexecs=%d", rounds, retries, repairs, full)
}

// contentionStats is one cell of the repair-vs-coarse contention matrix.
type contentionStats struct {
	commits, retries, repairs, full int64
	elapsed                         time.Duration
}

// runContention drives writers*rounds inventory-decrement transactions
// (^inv[k] = z <- inv@start[k] = q, z = q - 1.) against one branch. Each
// writer picks a hot key with probability hotFrac and a uniform key from
// the keyspace otherwise, so hotFrac sweeps the workload from mostly
// key-disjoint conflicts (repairable: the recorded read is a point
// interval on the writer's own key) to fully overlapping ones (the
// winner wrote the very key the loser read; repair must decline).
func runContention(t *testing.T, disableRepair bool, hotFrac float64, writers, rounds, keys int) contentionStats {
	t.Helper()
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{MaxRetries: 200, DisableRepair: disableRepair, Obs: reg})

	var seed strings.Builder
	for k := 0; k < keys; k++ {
		fmt.Fprintf(&seed, "+inv[%d] = 1000.\n", k)
	}
	mustOK(t, ts, "POST", "/exec", Request{Src: seed.String()}, nil)
	reg.Reset()

	start := time.Now()
	for r := 0; r < rounds; r++ {
		var wg sync.WaitGroup
		errs := make(chan error, writers)
		for i := 0; i < writers; i++ {
			wg.Add(1)
			go func(i, r int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(r*writers + i)))
				k := 0
				if rng.Float64() >= hotFrac {
					k = rng.Intn(keys)
				}
				postExec(ts, fmt.Sprintf("^inv[%d] = z <- inv@start[%d] = q, z = q - 1.", k, k), errs)
			}(i, r)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}
	return contentionStats{
		commits: reg.Counter("server.commits").Value(),
		retries: reg.Counter("server.commit.retries").Value(),
		repairs: reg.Counter("server.commit.repairs").Value(),
		full:    reg.Counter("server.commit.full_reexecs").Value(),
		elapsed: time.Since(start),
	}
}

// TestContentionRepairVsCoarse is the contention benchmark: racing
// inventory decrements at three hot-key fractions, with fine-grained
// repair on and off. The table it logs is recorded in EXPERIMENTS.md.
// Assertions stay deliberately weak against scheduling noise; the load-
// bearing one is that on the key-disjoint workload the repair path
// resolves conflicts without full re-execution, while the coarse
// baseline by construction re-executes every retry in full.
func TestContentionRepairVsCoarse(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 4 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	}
	const writers, rounds, keys = 8, 12, 64
	for _, hot := range []float64{0.0, 0.5, 1.0} {
		repair := runContention(t, false, hot, writers, rounds, keys)
		coarse := runContention(t, true, hot, writers, rounds, keys)
		t.Logf("hot=%.1f repair: commits=%d retries=%d repairs=%d full_reexecs=%d in %v",
			hot, repair.commits, repair.retries, repair.repairs, repair.full, repair.elapsed.Round(time.Millisecond))
		t.Logf("hot=%.1f coarse: commits=%d retries=%d repairs=%d full_reexecs=%d in %v",
			hot, coarse.commits, coarse.retries, coarse.repairs, coarse.full, coarse.elapsed.Round(time.Millisecond))

		if coarse.repairs != 0 {
			t.Fatalf("hot=%.1f: DisableRepair server reported %d repairs", hot, coarse.repairs)
		}
		if coarse.full != coarse.retries {
			t.Fatalf("hot=%.1f: coarse baseline must fully re-execute every retry: full=%d retries=%d", hot, coarse.full, coarse.retries)
		}
		if repair.repairs+repair.full != repair.retries {
			t.Fatalf("hot=%.1f: every retry is either repaired or re-executed: repairs=%d full=%d retries=%d",
				hot, repair.repairs, repair.full, repair.retries)
		}
		// Key-disjoint conflicts must mostly resolve via repair: with 8
		// writers spread over 64 keys, same-key collisions are rare, so
		// full re-executions cannot dominate once conflicts happened.
		if hot == 0.0 && repair.retries >= 5 && repair.full >= repair.retries {
			t.Fatalf("hot=0.0: repair resolved nothing: repairs=%d full=%d retries=%d",
				repair.repairs, repair.full, repair.retries)
		}
	}
}
