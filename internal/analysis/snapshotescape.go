package analysis

// snapshotescape extends immutable (the syntactic no-mutation check)
// interprocedurally. The persistent structures of paper §3.1 — treap,
// pmap, relation — are shared freely across workspace snapshots, so any
// internal slice or map that leaks out of those packages is a data race
// and a corruption of every snapshot that shares the node.
//
// Phase A (packages named treap/pmap/relation): compute a per-function
// escape summary — does any return path hand back an internal container,
// i.e. a slice/map-typed field of a type declared in the package, either
// directly, through a local alias, or through a call to another exposing
// function? Exported functions with an exposing summary are reported at
// the offending return. Summaries (exported and not) go into
// Pass.Shared; packages load in dependency order, so callers always see
// the callee's finished summary.
//
// Phase B (every package): values obtained from an exposing function are
// tainted (and taint follows simple aliases); a write through a tainted
// container — index assignment, delete, IncDec on an element — is
// reported at the write.
//
// Known limits (docs/analysis.md): element-level aliasing (`p := &v[i]`)
// and append's backing-array sharing are not modeled, and taint does not
// propagate through a second function return.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// snapshotPackages names the persistent-structure packages whose
// internals are protected, matched by package name so fixtures can
// declare themselves as one.
var snapshotPackages = map[string]bool{
	"treap":    true,
	"pmap":     true,
	"relation": true,
}

// SnapshotEscapeAnalyzer is the interprocedural snapshot-internal escape
// check.
var SnapshotEscapeAnalyzer = &Analyzer{
	Name: "snapshotescape",
	Doc:  "flag internal slices/maps of persistent values escaping to writers",
	Run:  runSnapshotEscape,
}

// seSummaries is the cross-package map funcKey -> "a result exposes an
// internal container of a protected package".
func seSummaries(p *Pass) map[string]bool {
	m, ok := p.Shared["esc"].(map[string]bool)
	if !ok {
		m = map[string]bool{}
		p.Shared["esc"] = m
	}
	return m
}

func runSnapshotEscape(pass *Pass) error {
	summaries := seSummaries(pass)
	if snapshotPackages[pass.Pkg.Name()] {
		collectEscapeSummaries(pass, summaries)
	}
	checkTaintedWrites(pass, summaries)
	return nil
}

// containerType reports whether t is a slice or map after unwrapping
// names and aliases.
func containerType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}

// internalField reports whether e is a selector x.f where x has a named
// type declared in this package and f is container-typed — the shape of
// an internal-container read.
func internalField(pass *Pass, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	tv, ok := pass.Info.Types[sel]
	if !ok || !containerType(tv.Type) {
		return false
	}
	owner := namedOf(pass.Info.Types[sel.X].Type)
	return owner != nil && owner.Obj().Pkg() == pass.Pkg
}

// collectEscapeSummaries runs phase A over one protected package.
func collectEscapeSummaries(pass *Pass, summaries map[string]bool) {
	type fnInfo struct {
		key     string
		decl    *ast.FuncDecl
		exposes bool
		// aliased: local objects assigned from an internal field.
		aliased map[types.Object]bool
		// retCalls: return-position calls pending a callee summary, with
		// the return they appear in (for reporting).
		retCalls map[*types.Func]*ast.ReturnStmt
		// retAliases: return-position idents pending alias resolution.
		firstExpose *ast.ReturnStmt
	}
	var fns []*fnInfo
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &fnInfo{key: funcKey(obj), decl: fd, aliased: map[types.Object]bool{}, retCalls: map[*types.Func]*ast.ReturnStmt{}}
			// Local aliases of internal fields (flow-insensitive; iterated
			// below so chains of aliases resolve).
			for changed := true; changed; {
				changed = false
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					as, ok := n.(*ast.AssignStmt)
					if !ok || len(as.Lhs) != len(as.Rhs) {
						return true
					}
					for i := range as.Rhs {
						rhs := ast.Unparen(as.Rhs[i])
						src := internalField(pass, rhs)
						if !src {
							if id, ok := rhs.(*ast.Ident); ok {
								src = fi.aliased[pass.Info.Uses[id]]
							}
						}
						if !src {
							continue
						}
						if id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident); ok && id.Name != "_" {
							obj := pass.Info.Defs[id]
							if obj == nil {
								obj = pass.Info.Uses[id]
							}
							if obj != nil && !fi.aliased[obj] {
								fi.aliased[obj] = true
								changed = true
							}
						}
					}
					return true
				})
			}
			// Return paths.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				ret, ok := n.(*ast.ReturnStmt)
				if !ok {
					return true
				}
				for _, res := range ret.Results {
					res = ast.Unparen(res)
					switch {
					case internalField(pass, res):
						fi.exposes = true
						if fi.firstExpose == nil {
							fi.firstExpose = ret
						}
					default:
						if id, ok := res.(*ast.Ident); ok && fi.aliased[pass.Info.Uses[id]] {
							fi.exposes = true
							if fi.firstExpose == nil {
								fi.firstExpose = ret
							}
						} else if call, ok := res.(*ast.CallExpr); ok {
							if callee := staticCallee(pass, call); callee != nil {
								fi.retCalls[callee] = ret
							}
						}
					}
				}
				return true
			})
			fns = append(fns, fi)
		}
	}
	for _, fi := range fns {
		summaries[fi.key] = fi.exposes
	}
	// Transitive closure through return-position calls (same-package
	// recursion; cross-package callees are already summarized).
	for changed := true; changed; {
		changed = false
		for _, fi := range fns {
			if summaries[fi.key] {
				continue
			}
			for callee, ret := range fi.retCalls {
				if summaries[funcKey(callee)] {
					summaries[fi.key] = true
					fi.exposes = true
					if fi.firstExpose == nil {
						fi.firstExpose = ret
					}
					changed = true
				}
			}
		}
	}
	for _, fi := range fns {
		if fi.exposes && fi.decl.Name.IsExported() && fi.firstExpose != nil {
			pass.Reportf(fi.firstExpose.Pos(),
				"exported %s returns an internal slice/map of a persistent %s value: callers can mutate shared snapshot state; return a copy",
				fi.decl.Name.Name, pass.Pkg.Name())
		}
	}
}

// checkTaintedWrites runs phase B over one package: taint call results of
// exposing functions, then flag writes through tainted containers.
func checkTaintedWrites(pass *Pass, summaries map[string]bool) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkTaintedWritesIn(pass, fd.Body, summaries)
		}
	}
}

type taint struct {
	origin string // callee name, for the message
	pos    token.Pos
}

func checkTaintedWritesIn(pass *Pass, body *ast.BlockStmt, summaries map[string]bool) {
	exposingCall := func(e ast.Expr) (*types.Func, bool) {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return nil, false
		}
		fn := staticCallee(pass, call)
		if fn == nil {
			return nil, false
		}
		return fn, summaries[funcKey(fn)]
	}

	tainted := map[types.Object]taint{}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			// v := ExposingCall(...) and single-assign alias chains.
			if len(as.Lhs) == len(as.Rhs) {
				for i := range as.Rhs {
					rhs := ast.Unparen(as.Rhs[i])
					var t taint
					if fn, exp := exposingCall(rhs); exp {
						t = taint{origin: fn.Name(), pos: rhs.Pos()}
					} else if id, ok := rhs.(*ast.Ident); ok {
						if tt, ok := tainted[pass.Info.Uses[id]]; ok {
							t = tt
						}
					}
					if t.origin == "" {
						continue
					}
					id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					obj := pass.Info.Defs[id]
					if obj == nil {
						obj = pass.Info.Uses[id]
					}
					if obj == nil {
						continue
					}
					if _, seen := tainted[obj]; !seen {
						tainted[obj] = t
						changed = true
					}
				}
			}
			return true
		})
	}

	// rootTaint resolves the base of an index/selector chain to a tainted
	// object or a direct exposing call.
	rootTaint := func(e ast.Expr) (taint, bool) {
		for {
			switch x := ast.Unparen(e).(type) {
			case *ast.IndexExpr:
				e = x.X
			case *ast.SelectorExpr:
				e = x.X
			case *ast.Ident:
				t, ok := tainted[pass.Info.Uses[x]]
				return t, ok
			case *ast.CallExpr:
				if fn, exp := exposingCall(x); exp {
					return taint{origin: fn.Name(), pos: x.Pos()}, true
				}
				return taint{}, false
			default:
				return taint{}, false
			}
		}
	}
	report := func(pos token.Pos, t taint) {
		pass.Reportf(pos,
			"write through a container returned by %s mutates internal state of a persistent value shared across snapshots; copy it before mutating",
			t.origin)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if t, ok := rootTaint(idx); ok {
						report(lhs.Pos(), t)
					}
				} else if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
					// v[i].field = x — a write into an element.
					if _, isIdx := ast.Unparen(sel.X).(*ast.IndexExpr); isIdx {
						if t, ok := rootTaint(sel); ok {
							report(lhs.Pos(), t)
						}
					}
				}
			}
		case *ast.IncDecStmt:
			if idx, ok := ast.Unparen(n.X).(*ast.IndexExpr); ok {
				if t, ok := rootTaint(idx); ok {
					report(n.X.Pos(), t)
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "delete" {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin && len(n.Args) == 2 {
					if t, ok := rootTaint(n.Args[0]); ok {
						report(n.Args[0].Pos(), t)
					}
				}
			}
		}
		return true
	})
}
