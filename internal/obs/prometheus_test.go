package obs

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// promLine matches one sample of the text exposition format: a metric
// name, an optional label set, and a float value.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z0-9_]+="[^"]*"(,[a-zA-Z0-9_]+="[^"]*")*\})? (NaN|[-+]?Inf|[-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?)$`)

func TestWritePrometheusParses(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("tx.exec.commit").Add(3)
	reg.Counter("server.commit.conflicts").Add(1)
	reg.Gauge("server.queue.depth").Set(2)
	h := reg.Histogram("http.exec.duration")
	h.Observe(3 * time.Millisecond)
	h.Observe(40 * time.Microsecond)
	h.Observe(2 * time.Second)

	var b strings.Builder
	if err := reg.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE lb_tx_exec_commit_total counter",
		"lb_tx_exec_commit_total 3",
		"# TYPE lb_server_queue_depth gauge",
		"lb_server_queue_depth 2",
		"# TYPE lb_http_exec_duration_seconds histogram",
		`lb_http_exec_duration_seconds_bucket{le="+Inf"} 3`,
		"lb_http_exec_duration_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("line does not parse as a Prometheus sample: %q", line)
		}
	}
}

// TestPromHistogramCumulative checks the bucket counts are cumulative and
// the +Inf bucket equals the count, as the format requires.
func TestPromHistogramCumulative(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("d")
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i+1) * time.Microsecond)
	}
	var b strings.Builder
	if err := reg.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	prev := int64(-1)
	infSeen := false
	for _, line := range strings.Split(strings.TrimSpace(b.String()), "\n") {
		if !strings.HasPrefix(line, "lb_d_seconds_bucket") {
			continue
		}
		v, err := strconv.ParseInt(line[strings.LastIndex(line, " ")+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("buckets not cumulative: %d after %d in %q", v, prev, line)
		}
		prev = v
		if strings.Contains(line, `le="+Inf"`) {
			infSeen = true
			if v != 100 {
				t.Fatalf("+Inf bucket = %d, want 100", v)
			}
		}
	}
	if !infSeen {
		t.Fatal("no +Inf bucket emitted")
	}
}

func TestPromNameSanitizes(t *testing.T) {
	// Each invalid rune (".", "-", "α", "/") maps to one '_'.
	if got := promName("tx.exec-α/commit"); got != "lb_tx_exec___commit" {
		t.Fatalf("promName = %q", got)
	}
}
