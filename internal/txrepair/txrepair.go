// Package txrepair implements transaction repair (paper §3.4, Veldhuizen
// 2014): full serializability without locks. Each transaction runs on its
// own O(1) branch of the store, recording transaction sensitivities (what
// it read) and transaction effects (what it wrote). At commit time,
// conflicts are detected by intersecting earlier transactions' effects
// with later transactions' sensitivities, and conflicting transactions
// are *repaired* — only the operations whose inputs actually changed are
// recomputed — rather than aborted or serialized. Transactions compose
// into binary-tree circuits (paper Figure 7b), so a batch commits with
// logarithmic repair depth.
//
// A row-level two-phase-locking executor (locking.go) provides the
// baseline of the paper's α-experiment comparison.
package txrepair

import (
	"logicblox/internal/pmap"
	"logicblox/internal/tuple"
)

// Store is an immutable key→value store built on persistent maps:
// branching a store for a transaction is an O(1) copy. Keys name
// functional-predicate entries, e.g. "inventory/Popsicle".
type Store struct {
	m pmap.Map[tuple.Value]
}

// NewStore returns an empty store.
func NewStore() Store { return Store{m: pmap.NewMap[tuple.Value]()} }

// Key builds a store key for a functional predicate entry.
func Key(pred string, key string) string { return pred + "/" + key }

// Get reads a value.
func (s Store) Get(key string) (tuple.Value, bool) { return s.m.Get(key) }

// Set returns a store with key bound to val.
func (s Store) Set(key string, val tuple.Value) Store { return Store{m: s.m.Set(key, val)} }

// Len returns the number of entries.
func (s Store) Len() int { return s.m.Len() }

// Range iterates entries in key order.
func (s Store) Range(fn func(key string, val tuple.Value) bool) { s.m.Range(fn) }

// Op is one read-modify-write operation of a transaction: it reads the
// values of Reads, applies F, and writes the result to Write. Operations
// within a transaction are independent (no op reads another op's write),
// which is the structure of the paper's bulk inventory-adjustment
// transactions.
type Op struct {
	Reads []string
	Write string
	F     func(vals []tuple.Value) tuple.Value
}

// Tx is a transaction: a set of operations executed atomically.
type Tx struct {
	ID  int
	Ops []Op
}

// Effect is one entry of a transaction's effects: the key's value before
// and after (paper: −inventory[l]=2, +inventory[l]=1).
type Effect struct {
	Old    tuple.Value
	HasOld bool
	New    tuple.Value
}

// Executed is a transaction (or a composite of transactions) that has run
// against a snapshot: it exposes effects and sensitivities and accepts
// corrections, staying up to date as they arrive (paper Figure 7).
type Executed struct {
	// Leaf fields.
	Tx          *Tx
	snapshot    Store
	corrections map[string]tuple.Value
	sens        map[string][]int // read key → ops reading it
	// Composite fields (paper Figure 7b).
	left, right *Executed
	// reads is the (superset of the) key set this transaction is
	// sensitive to, used to prune correction delivery in circuits.
	reads map[string]struct{}

	effects map[string]Effect
	repairs int
}

// Execute runs tx against its own branch of base and returns the executed
// transaction with recorded effects and sensitivities. Branching is the
// O(1) persistent-store copy.
func Execute(tx *Tx, base Store) *Executed {
	e := &Executed{
		Tx:          tx,
		snapshot:    base, // O(1) branch
		corrections: map[string]tuple.Value{},
		sens:        map[string][]int{},
		effects:     map[string]Effect{},
	}
	for i := range tx.Ops {
		e.runOp(i)
		for _, r := range tx.Ops[i].Reads {
			e.sens[r] = append(e.sens[r], i)
		}
	}
	e.reads = make(map[string]struct{}, len(e.sens))
	for k := range e.sens {
		e.reads[k] = struct{}{}
	}
	return e
}

// read returns the current corrected view of a key.
func (e *Executed) read(key string) (tuple.Value, bool) {
	if v, ok := e.corrections[key]; ok {
		return v, true
	}
	return e.snapshot.Get(key)
}

func (e *Executed) runOp(i int) {
	op := &e.Tx.Ops[i]
	vals := make([]tuple.Value, len(op.Reads))
	for j, r := range op.Reads {
		vals[j], _ = e.read(r)
	}
	old, hasOld := e.read(op.Write)
	e.effects[op.Write] = Effect{Old: old, HasOld: hasOld, New: op.F(vals)}
}

// Sensitive reports whether a change to key can affect this transaction's
// effects.
func (e *Executed) Sensitive(key string) bool {
	if e.left != nil {
		if e.left.Sensitive(key) {
			return true
		}
		if _, written := e.left.effects[key]; written {
			return false // internal: the right part reads the left's write
		}
		return e.right.Sensitive(key)
	}
	_, ok := e.sens[key]
	return ok
}

// Effects returns the transaction's current effects.
func (e *Executed) Effects() map[string]Effect { return e.effects }

// Repairs counts the operations recomputed after the initial run.
func (e *Executed) Repairs() int {
	if e.left != nil {
		return e.left.Repairs() + e.right.Repairs()
	}
	return e.repairs
}

// Conflicts counts the leaf transactions that needed any repair: the
// transactions whose sensitivities intersected an earlier transaction's
// effects.
func (e *Executed) Conflicts() int {
	if e.left != nil {
		return e.left.Conflicts() + e.right.Conflicts()
	}
	if e.repairs > 0 {
		return 1
	}
	return 0
}

// Correct delivers corrections (effects of an earlier transaction) and
// incrementally repairs: only operations that read a corrected key are
// recomputed (paper Figure 7a). It returns the number of ops recomputed.
func (e *Executed) Correct(corrections map[string]tuple.Value) int {
	// Fast path: corrections that touch neither this transaction's reads
	// nor its writes cannot change anything.
	relevant := false
	if len(corrections) <= len(e.reads)+len(e.effects) {
		for k := range corrections {
			if _, ok := e.reads[k]; ok {
				relevant = true
				break
			}
			if _, ok := e.effects[k]; ok {
				relevant = true
				break
			}
		}
	} else {
		for k := range e.reads {
			if _, ok := corrections[k]; ok {
				relevant = true
				break
			}
		}
		if !relevant {
			for k := range e.effects {
				if _, ok := corrections[k]; ok {
					relevant = true
					break
				}
			}
		}
	}
	if !relevant {
		return 0
	}
	if e.left != nil {
		n := e.left.Correct(corrections)
		// The right part sees the corrections as overridden by the left
		// part's (possibly just-repaired) effects.
		rcorr := make(map[string]tuple.Value, len(corrections)+len(e.left.effects))
		for k, v := range corrections {
			rcorr[k] = v
		}
		for k, eff := range e.left.effects {
			rcorr[k] = eff.New
		}
		n += e.right.Correct(rcorr)
		e.recompose()
		return n
	}

	dirty := map[int]bool{}
	for key, val := range corrections {
		prev, had := e.read(key)
		if had && tuple.Equal(prev, val) {
			continue
		}
		e.corrections[key] = val
		for _, op := range e.sens[key] {
			dirty[op] = true
		}
		// A correction to a key this transaction writes (but does not
		// read) updates the effect's before-image.
		if eff, ok := e.effects[key]; ok {
			eff.Old, eff.HasOld = val, true
			e.effects[key] = eff
		}
	}
	for i := range dirty {
		e.runOp(i)
	}
	e.repairs += len(dirty)
	return len(dirty)
}

// recompose rebuilds a composite's effects from its parts: the sequential
// composition with the right side winning per key.
func (e *Executed) recompose() {
	e.effects = make(map[string]Effect, len(e.left.effects)+len(e.right.effects))
	for k, eff := range e.left.effects {
		e.effects[k] = eff
	}
	for k, eff := range e.right.effects {
		if prior, ok := e.left.effects[k]; ok {
			eff.Old, eff.HasOld = prior.Old, prior.HasOld
		}
		e.effects[k] = eff
	}
}

// Merge composes two executed transactions into a composite implementing
// the same interface (paper Figure 7b): the left part's effects are fed
// to the right as corrections — repairing it exactly where they intersect
// its sensitivities — and the composite exposes composed effects and
// merged sensitivities.
func Merge(a, b *Executed) *Executed {
	corr := make(map[string]tuple.Value, len(a.effects))
	for k, eff := range a.effects {
		corr[k] = eff.New
	}
	b.Correct(corr)
	c := &Executed{left: a, right: b}
	c.reads = make(map[string]struct{}, len(a.reads)+len(b.reads))
	for k := range a.reads {
		c.reads[k] = struct{}{}
	}
	for k := range b.reads {
		c.reads[k] = struct{}{}
	}
	c.recompose()
	return c
}

// Apply writes the transaction's effects into a store, committing it.
func (e *Executed) Apply(s Store) Store {
	for k, eff := range e.effects {
		s = s.Set(k, eff.New)
	}
	return s
}
