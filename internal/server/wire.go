package server

import (
	"fmt"

	"logicblox/internal/core"
	"logicblox/internal/obs"
	"logicblox/internal/tuple"
)

// Wire format of the lb-serve HTTP API. Every request body is JSON;
// every response body is JSON except /metrics (Prometheus text) and
// /save (binary snapshot). Errors are an ErrorResponse with a stable
// machine-readable Code mirroring the typed core errors.

// Request is the body of the transaction endpoints /exec, /query and
// /addblock.
type Request struct {
	// Branch the transaction runs against (default "main").
	Branch string `json:"branch,omitempty"`
	// Src is the LogiQL source: delta facts and reactive rules for
	// /exec, a program deriving the answer predicate "_" for /query,
	// block logic for /addblock.
	Src string `json:"src"`
	// Name is the block name (/addblock only).
	Name string `json:"name,omitempty"`
	// TimeoutMs, when > 0, tightens this request's context deadline
	// below the server default; on expiry the transaction's fixpoint
	// loop stops at the next iteration boundary and the request fails
	// with 504.
	TimeoutMs int `json:"timeout_ms,omitempty"`
}

// CheckWarning is one advisory finding of POST /check: the warning-tier
// LogiQL program checker's output (dead rules, unconsumed heads,
// singleton variables, duplicate/subsumed rules, unsatisfiable
// constraint bodies). Warnings never reject the program.
type CheckWarning struct {
	Check   string `json:"check"`
	Clause  string `json:"clause"`
	Message string `json:"message"`
}

// CheckResponse carries POST /check's warnings. OK is true whenever the
// candidate parsed — warnings are advisory, so a warned program is
// still installable.
type CheckResponse struct {
	OK       bool           `json:"ok"`
	Branch   string         `json:"branch"`
	Warnings []CheckWarning `json:"warnings"`
}

// BranchRequest is the body of POST /branches.
type BranchRequest struct {
	// Op is one of "create", "branchat", "delete", "commit", "diff".
	Op string `json:"op"`
	// From is the source branch ("create", "commit", "diff").
	From string `json:"from,omitempty"`
	// To is the branch acted on.
	To string `json:"to,omitempty"`
	// Version is the history index for "branchat" (time travel).
	Version int `json:"version,omitempty"`
}

// Delta summarizes one predicate's change.
type Delta struct {
	Ins int `json:"ins"`
	Del int `json:"del"`
}

// ExecResponse reports a committed exec or addblock transaction.
type ExecResponse struct {
	OK      bool   `json:"ok"`
	Branch  string `json:"branch"`
	Version uint64 `json:"version"`
	// Retries counts commit conflicts the transaction survived; Repairs
	// counts how many of them were resolved by fine-grained repair
	// (paper §3.4) rather than full re-execution.
	Retries int              `json:"retries,omitempty"`
	Repairs int              `json:"repairs,omitempty"`
	Deltas  map[string]Delta `json:"deltas,omitempty"`
	// Trace is the request's span tree so far, inlined when the request
	// was made with ?trace=1.
	Trace *obs.SpanSnapshot `json:"trace,omitempty"`
}

// QueryResponse carries a query's answer tuples.
type QueryResponse struct {
	OK    bool              `json:"ok"`
	Rows  [][]any           `json:"rows"`
	Trace *obs.SpanSnapshot `json:"trace,omitempty"`
}

// BranchesResponse lists branches, or reports a branch operation.
type BranchesResponse struct {
	OK       bool             `json:"ok"`
	Branches []string         `json:"branches,omitempty"`
	Diff     map[string]Delta `json:"diff,omitempty"`
}

// VersionInfo is one entry of GET /versions.
type VersionInfo struct {
	Index   int    `json:"index"`
	Branch  string `json:"branch"`
	Version uint64 `json:"version"`
	Blocks  int    `json:"blocks"`
}

// VersionsResponse is the committed-version history.
type VersionsResponse struct {
	OK       bool          `json:"ok"`
	Versions []VersionInfo `json:"versions"`
}

// ErrorResponse is every non-2xx JSON body.
type ErrorResponse struct {
	Error string `json:"error"`
	// Code is a stable identifier: no_such_branch, conflict, parse,
	// typecheck, constraint, timeout, busy, unavailable, bad_request,
	// no_such_trace, internal.
	Code string `json:"code"`
	// RequestID correlates the failure with its access-log line and the
	// retained trace at GET /debug/trace/{id} (empty outside a request
	// scope, e.g. a bare method-not-allowed).
	RequestID string `json:"request_id,omitempty"`
}

// TraceResponse is the body of GET /debug/trace/{id}: the retained span
// tree of one recent request. Without an ID it lists the retained
// request IDs instead, oldest first.
type TraceResponse struct {
	OK        bool              `json:"ok"`
	RequestID string            `json:"request_id,omitempty"`
	Endpoint  string            `json:"endpoint,omitempty"`
	Status    int               `json:"status,omitempty"`
	Trace     *obs.SpanSnapshot `json:"trace,omitempty"`
	IDs       []string          `json:"ids,omitempty"`
}

// valueJSON renders one LogiQL value as its natural JSON form; entities
// (structural, no lexical form) render as "entity(type,ordinal)".
func valueJSON(v tuple.Value) any {
	switch v.Kind() {
	case tuple.KindBool:
		return v.AsBool()
	case tuple.KindInt:
		return v.AsInt()
	case tuple.KindFloat:
		return v.AsFloat()
	case tuple.KindString:
		return v.AsString()
	case tuple.KindEntity:
		return fmt.Sprintf("entity(%d,%d)", v.EntityType(), v.EntityOrdinal())
	default:
		return nil
	}
}

func rowsJSON(rows []tuple.Tuple) [][]any {
	out := make([][]any, len(rows))
	for i, t := range rows {
		row := make([]any, len(t))
		for j, v := range t {
			row[j] = valueJSON(v)
		}
		out[i] = row
	}
	return out
}

func deltasJSON(deltas map[string]core.ExecDelta) map[string]Delta {
	if len(deltas) == 0 {
		return nil
	}
	out := make(map[string]Delta, len(deltas))
	for pred, d := range deltas {
		out[pred] = Delta{Ins: len(d.Ins), Del: len(d.Del)}
	}
	return out
}
