// Package leakres is a leakcheck-analyzer fixture for the resource
// table: tickers, timers, HTTP response bodies, and journal tail readers
// must be released on all paths, released by defer, or handed off.
package leakres

import (
	"io"
	"net/http"
	"time"

	"logicblox/internal/durable"
)

// tickerNoStop never stops the ticker.
func tickerNoStop(d time.Duration) {
	t := time.NewTicker(d) // want: ticker t may not be released
	<-t.C
}

// tickerOnePath stops only on the b path.
func tickerOnePath(d time.Duration, b bool) {
	t := time.NewTicker(d) // want: ticker t may not be released
	<-t.C
	if b {
		t.Stop()
	}
}

// tickerDeferStop releases on every path, early return included.
func tickerDeferStop(d time.Duration, b bool) {
	t := time.NewTicker(d)
	defer t.Stop()
	if b {
		return
	}
	<-t.C
}

// timerDiscarded drops the timer on the floor.
func timerDiscarded(d time.Duration) {
	time.NewTimer(d) // want: timer returned by time.NewTimer is discarded
}

// timerStopped is the backoff shape: stop via defer.
func timerStopped(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	<-t.C
}

// bodyNoClose checks the error but never closes the body.
func bodyNoClose(url string) error {
	resp, err := http.Get(url) // want: response body resp may not be released
	if err != nil {
		return err
	}
	_ = resp.StatusCode
	return nil
}

// bodyDeferClose is the idiomatic shape: the err != nil early return is
// not a leak (no response was produced), and the defer covers the rest.
func bodyDeferClose(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, err = io.Copy(io.Discard, resp.Body)
	return err
}

// tickerEscapes hands the ticker to the caller: ownership moves.
func tickerEscapes(d time.Duration) *time.Ticker {
	t := time.NewTicker(d)
	return t
}

// tailNoClose never closes the tail reader pinned to r.
func tailNoClose(r io.Reader) error {
	tr := durable.NewTailReader(r) // want: tail reader tr may not be released
	_, err := tr.Next()
	return err
}

// tailDeferClose releases the stream on every path.
func tailDeferClose(r io.Reader) error {
	tr := durable.NewTailReader(r)
	defer tr.Close()
	_, err := tr.Next()
	return err
}
