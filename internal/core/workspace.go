// Package core implements workspaces and transactions (paper §2.2.2,
// §3.1): a workspace bundles logic (blocks of rules and constraints) with
// the contents of base predicates plus the materialized derived
// predicates. Workspaces are immutable values built entirely from
// persistent data structures, so branching is O(1), every transaction
// yields a new version sharing structure with its parent, and aborting a
// transaction is dropping a pointer.
package core

import (
	"context"
	"fmt"
	"sort"

	"logicblox/internal/ast"
	"logicblox/internal/compiler"
	"logicblox/internal/engine"
	"logicblox/internal/ml"
	"logicblox/internal/obs"
	"logicblox/internal/optimizer"
	"logicblox/internal/pmap"
	"logicblox/internal/relation"
	"logicblox/internal/tuple"
)

// Workspace is one immutable version of the database: logic + data.
// All mutating methods return a new Workspace.
type Workspace struct {
	blocks   pmap.Map[string]            // block name → LogiQL source
	parsed   pmap.Map[*ast.Program]      // block name → parsed program
	prog     *compiler.Program           // compiled program (shared, immutable)
	base     pmap.Map[relation.Relation] // base predicate contents
	ruleRes  pmap.Map[relation.Relation] // materialized result per rule (or per recursive head)
	derived  pmap.Map[relation.Relation] // derived predicate contents
	models   *ml.Registry                // model store (append-only, shared across versions)
	version  uint64
	optimize bool                 // sampling-based join-order optimization (paper §3.2)
	plans    *optimizer.PlanStore // adaptive plan cache (shared across versions; nil = re-sample every transaction)
	obs      *obs.Registry        // transaction profiling target (nil → obs.Default)
}

// NewWorkspace returns an empty workspace with no logic and no data.
func NewWorkspace() *Workspace {
	empty, err := compiler.Compile(&ast.Program{})
	if err != nil {
		panic(err)
	}
	return &Workspace{
		blocks:  pmap.NewMap[string](),
		parsed:  pmap.NewMap[*ast.Program](),
		prog:    empty,
		base:    pmap.NewMap[relation.Relation](),
		ruleRes: pmap.NewMap[relation.Relation](),
		derived: pmap.NewMap[relation.Relation](),
		models:  ml.NewRegistry(),
	}
}

// Version returns the workspace's version number (monotone along a
// branch's history).
func (ws *Workspace) Version() uint64 { return ws.version }

// WithOptimizer returns a workspace whose evaluations use the
// sampling-based variable-order optimizer (paper §3.2). The flag is
// inherited by branches and subsequent versions.
func (ws *Workspace) WithOptimizer(on bool) *Workspace {
	cp := *ws
	cp.optimize = on
	return &cp
}

// WithAdaptiveOptimizer returns a workspace whose evaluations use the
// feedback-driven adaptive optimizer: the sampling optimizer is on, and
// chosen variable orders persist in a plan store shared by every version
// and branch derived from this workspace (like the model registry).
// Subsequent transactions reuse cached orders and re-run sampling only
// when the engine's observed evaluation costs drift past the store's
// threshold, when input cardinalities change materially, or when a
// schema change invalidates the plan. Passing false detaches the store
// and reverts to per-transaction sampling.
func (ws *Workspace) WithAdaptiveOptimizer(on bool) *Workspace {
	cp := *ws
	cp.optimize = on
	if on {
		cp.plans = optimizer.NewPlanStore(optimizer.StoreOptions{})
	} else {
		cp.plans = nil
	}
	return &cp
}

// PlanStore returns the adaptive optimizer's plan cache, or nil when the
// workspace is not running with WithAdaptiveOptimizer.
func (ws *Workspace) PlanStore() *optimizer.PlanStore { return ws.plans }

// Blocks returns the installed block names.
func (ws *Workspace) Blocks() []string { return ws.blocks.Keys() }

// Program returns the compiled program.
func (ws *Workspace) Program() *compiler.Program { return ws.prog }

// Models returns the predict-rule model registry.
func (ws *Workspace) Models() *ml.Registry { return ws.models }

// Relation returns the current contents of a predicate (base or derived).
func (ws *Workspace) Relation(name string) relation.Relation {
	if r, ok := ws.derived.Get(name); ok {
		return r
	}
	if r, ok := ws.base.Get(name); ok {
		return r
	}
	arity := 1
	if p, ok := ws.prog.Preds[name]; ok {
		arity = p.Arity
	}
	return relation.New(arity)
}

// Relations returns the full predicate → contents map (base and
// derived) of this version. The map is freshly allocated; the relations
// themselves are immutable persistent values.
func (ws *Workspace) Relations() map[string]relation.Relation { return ws.relations() }

// relationOr returns the current contents of a predicate, or an empty
// relation of the given arity when the workspace holds no data for it.
// Transactions use this with the arity of the program they compiled,
// which — unlike ws.prog behind Relation — also knows predicates the
// transaction introduces (data-first live programming: facts may arrive
// before any logic mentions their predicate).
func (ws *Workspace) relationOr(name string, arity int) relation.Relation {
	if r, ok := ws.derived.Get(name); ok {
		return r
	}
	if r, ok := ws.base.Get(name); ok {
		return r
	}
	return relation.New(arity)
}

// relations materializes the full name → relation map for an engine
// context.
func (ws *Workspace) relations() map[string]relation.Relation {
	out := map[string]relation.Relation{}
	ws.base.Range(func(k string, v relation.Relation) bool { out[k] = v; return true })
	ws.derived.Range(func(k string, v relation.Relation) bool { out[k] = v; return true })
	return out
}

func (ws *Workspace) clone() *Workspace {
	cp := *ws
	cp.version = ws.version + 1
	return &cp
}

// parsedBlocks returns the parsed programs keyed by block name.
func (ws *Workspace) parsedBlocks() map[string]*ast.Program {
	out := map[string]*ast.Program{}
	ws.parsed.Range(func(k string, v *ast.Program) bool { out[k] = v; return true })
	return out
}

func compileBlocks(parsed map[string]*ast.Program, extra ...*ast.Program) (*compiler.Program, error) {
	var names []string
	for n := range parsed {
		names = append(names, n)
	}
	sort.Strings(names)
	var progs []*ast.Program
	for _, n := range names {
		progs = append(progs, parsed[n])
	}
	progs = append(progs, extra...)
	return compiler.Compile(progs...)
}

// ruleKey identifies a rule's materialized result across recompilations.
func ruleKey(r *compiler.RulePlan) string { return r.HeadName + "\x00" + r.Source }

// stratumKey identifies a recursive stratum head's materialized result.
func stratumKey(head string) string { return "rec\x00" + head }

// rederive re-materializes derived predicates after base-data or logic
// changes. dirty seeds the set of changed names (base predicates with new
// contents and/or derived predicates marked dirty by the meta-engine);
// the change propagates through the execution graph, and rules none of
// whose dependencies changed reuse their stored results — the engine-side
// half of live programming (paper Figure 6).
func (ws *Workspace) rederive(rctx context.Context, dirty map[string]bool, parent *obs.Span) (*Workspace, error) {
	out := ws.clone()
	reg := ws.Observer()
	sp := parent.Child("rederive")
	sp.SetAttr("dirty", int64(len(dirty)))
	ctx := engine.NewContext(out.prog, out.relations(), engine.Options{Models: out.models, Optimize: out.optimize, Plans: out.plans, Obs: reg, Ctx: rctx})
	ctx.SetSpan(sp)
	var evals, reused int64
	defer func() {
		sp.SetAttr("rules_evaluated", evals)
		sp.SetAttr("rules_reused", reused)
		sp.End()
		if evals+reused > 0 {
			reg.Counter("core.rederive.rules_evaluated").Add(evals)
			reg.Counter("core.rederive.rules_reused").Add(reused)
		}
	}()
	changed := dirty

	for _, stratum := range out.prog.Strata {
		heads := map[string]bool{}
		for _, r := range stratum {
			heads[r.HeadName] = true
		}
		recursive := false
		for _, r := range stratum {
			for _, b := range r.BodyNames {
				if heads[b] {
					recursive = true
				}
			}
		}
		touched := func(r *compiler.RulePlan) bool {
			if changed[r.HeadName] {
				return true
			}
			for _, b := range r.BodyNames {
				if changed[b] {
					return true
				}
			}
			for _, b := range r.NegNames {
				if changed[b] {
					return true
				}
			}
			return false
		}

		if recursive {
			any := false
			for _, r := range stratum {
				if touched(r) {
					any = true
					break
				}
			}
			if !any {
				reused += int64(len(stratum))
				continue
			}
			evals += int64(len(stratum))
			origin := map[string]relation.Relation{}
			for h := range heads {
				origin[h] = out.Relation(h)
				ctx.Set(h, relation.New(origin[h].Arity()))
			}
			if err := ctx.EvalStratum(stratum); err != nil {
				return nil, err
			}
			for h := range heads {
				cur := ctx.Relation(h)
				out.ruleRes = out.ruleRes.Set(stratumKey(h), cur)
				out.derived = out.derived.Set(h, cur)
				if !cur.Equal(origin[h]) {
					changed[h] = true
				}
			}
			continue
		}

		headTouched := map[string]bool{}
		for _, r := range stratum {
			key := ruleKey(r)
			if _, have := out.ruleRes.Get(key); have && !touched(r) {
				reused++
				continue
			}
			evals++
			res, err := ctx.EvalRule(r, nil)
			if err != nil {
				return nil, err
			}
			if prev, ok := out.ruleRes.Get(key); !ok || !prev.Equal(res) {
				headTouched[r.HeadName] = true
			}
			out.ruleRes = out.ruleRes.Set(key, res)
		}
		for h := range headTouched {
			rel := relation.New(out.prog.Preds[h].Arity)
			for _, r := range stratum {
				if r.HeadName != h {
					continue
				}
				if rr, ok := out.ruleRes.Get(ruleKey(r)); ok {
					rel = rel.Union(rr)
				}
			}
			prev := out.Relation(h)
			out.derived = out.derived.Set(h, rel)
			ctx.Set(h, rel)
			if !rel.Equal(prev) {
				changed[h] = true
			}
		}
		// Unchanged heads of this stratum still need their contexts seeded
		// for later strata; ctx already holds them from relations().
	}
	return out, nil
}

// checkConstraints validates the workspace state, returning an error
// listing all violations if the state is illegal. Constraints that
// reference free solver predicates (lang:solve:variable) define the
// optimization problem rather than the set of legal states before a
// solve, so they are enforced only once the free predicate has been
// populated.
func (ws *Workspace) checkConstraints() error {
	ctx := engine.NewContext(ws.prog, ws.relations(), engine.Options{Models: ws.models, Obs: ws.Observer()})
	deferred := map[string]bool{}
	if ws.prog.Solve != nil {
		for _, v := range ws.prog.Solve.Variables {
			if ws.Relation(v).IsEmpty() {
				deferred[v] = true
			}
		}
	}
	var vs []engine.Violation
	for _, k := range ws.prog.Constraints {
		skip := false
		for _, ref := range k.References() {
			if deferred[ref] {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		kvs, err := ctx.CheckConstraint(k)
		if err != nil {
			return err
		}
		vs = append(vs, kvs...)
	}
	if len(vs) == 0 {
		return nil
	}
	msg := ""
	for i, v := range vs {
		if i == 5 {
			msg += fmt.Sprintf("\n  … and %d more", len(vs)-5)
			break
		}
		msg += "\n  " + v.String()
	}
	return fmt.Errorf("transaction aborted: %d %w(s):%s", len(vs), ErrConstraint, msg)
}

// Query runs a query transaction: src is a program with a designated
// answer predicate "_" (plus any auxiliary rules). It returns the answer
// tuples. The workspace is unchanged (queries are read-only and run on
// the branch's snapshot, paper §3.1).
func (ws *Workspace) Query(src string) ([]tuple.Tuple, error) {
	return ws.QueryCtx(context.Background(), src)
}

// QueryCtx is Query bounded by a context: cancellation or deadline
// expiry stops the evaluation at the next rule or fixpoint-round
// boundary and the transaction returns ctx.Err() wrapped. It is a thin
// wrapper that drains a QueryStream cursor (under the classic tx.query
// span kind), so both paths evaluate identically.
func (ws *Workspace) QueryCtx(rctx context.Context, src string) ([]tuple.Tuple, error) {
	sp, done := ws.txSpan(rctx, "query")
	cur, err := ws.openCursor(rctx, src, sp)
	if err != nil {
		done(err)
		return nil, err
	}
	cur.sp, cur.done = sp, done
	out := make([]tuple.Tuple, 0, cur.hint)
	for t, ok := cur.Next(); ok; t, ok = cur.Next() {
		out = append(out, t)
	}
	err = cur.Err()
	cur.Close()
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Load is a convenience for seeding base predicates in bulk (outside the
// reactive-rule machinery). It validates constraints after loading.
func (ws *Workspace) Load(name string, tuples []tuple.Tuple) (*Workspace, error) {
	info, ok := ws.prog.Preds[name]
	if ok && !info.EDB {
		return nil, fmt.Errorf("cannot load derived predicate %s", name)
	}
	arity := 0
	if ok {
		arity = info.Arity
	} else if len(tuples) > 0 {
		arity = len(tuples[0])
	}
	rel, has := ws.base.Get(name)
	if !has {
		rel = relation.New(arity)
	}
	for _, t := range tuples {
		rel = rel.Insert(t)
	}
	out := ws.clone()
	out.base = out.base.Set(name, rel)
	res, err := out.rederive(context.Background(), map[string]bool{name: true}, nil)
	if err != nil {
		return nil, err
	}
	return res, nil
}
