// The retail example models the paper's §2.1 scenario: a retail planning
// application with concurrent what-if analysis over workbooks (branches),
// grouped aggregation views at multiple resolutions, and live programming
// (installing a new aggregation view on the fly with addblock).
//
// Run with: go run ./examples/retail
package main

import (
	"fmt"
	"log"

	"logicblox"
	"logicblox/internal/workload"
)

func main() {
	db := logicblox.Open()
	ws, err := db.Workspace(logicblox.DefaultBranch)
	if err != nil {
		log.Fatal(err)
	}

	// Schema and the baseline views: weekly sales rolled up by product.
	ws, err = ws.AddBlock("schema", `
		sales(p, s, wk, units) -> string(p), string(s), string(wk), int(units).
		salesByProduct[p] = u <- agg<<u = sum(n)>> sales(p, s, wk, n).
		salesByStore[s] = u <- agg<<u = sum(n)>> sales(p, s, wk, n).`)
	if err != nil {
		log.Fatal(err)
	}

	// Load a generated dataset (the paper's data is several TB of real
	// retail history; the generator reproduces its shape at laptop scale).
	retail := workload.Generate(workload.Config{Products: 50, Stores: 8, Weeks: 12, Seed: 2015})
	ws, err = ws.Load("sales", retail.Sales.Slice())
	if err != nil {
		log.Fatal(err)
	}
	if err := db.Commit(logicblox.DefaultBranch, ws); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d sales facts across %d products × %d stores × %d weeks\n",
		retail.Sales.Len(), 50, 8, 12)

	// Top stores by volume.
	rows, err := ws.Query(`_(s, u) <- salesByStore[s] = u, u > 20000.`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("stores above 20k units:")
	for _, r := range rows {
		fmt.Printf("  %s: %v units\n", r[0].AsString(), r[1])
	}

	// Workbooks (paper §2.1): planners branch the database to analyze
	// scenarios independently; branching is O(1) regardless of data size.
	for _, planner := range []string{"merchandising", "supply-chain"} {
		if err := db.Branch(logicblox.DefaultBranch, planner); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("workbooks:", db.Branches())

	// The merchandising planner simulates doubling a promotion's sales.
	mws, _ := db.Workspace("merchandising")
	res, err := mws.Exec(`
		+sales("sku0001", "store000", "2015-W90", 5000).`)
	if err != nil {
		log.Fatal(err)
	}
	if err := db.Commit("merchandising", res.Workspace); err != nil {
		log.Fatal(err)
	}

	// Aggregates diverge between workbooks; the main branch is untouched.
	for _, branch := range []string{logicblox.DefaultBranch, "merchandising"} {
		bws, _ := db.Workspace(branch)
		v, _ := bws.Relation("salesByProduct").FuncGet(logicblox.Strings("sku0001"))
		fmt.Printf("salesByProduct[sku0001] on %-14s = %v\n", branch, v)
	}

	// Live programming (paper §3.3): a power user installs a new yearly
	// rollup without downtime; only the new view is derived.
	mws, _ = db.Workspace("merchandising")
	mws, err = mws.AddBlock("salesAgg1", `
		year[wk] = y -> string(wk), string(y).
		salesByYear[p, y] = u <- agg<<u = sum(n)>> sales(p, s, wk, n), year[wk] = y.`)
	if err != nil {
		log.Fatal(err)
	}
	var yearRows []logicblox.Tuple
	for wk := 0; wk < 12; wk++ {
		yearRows = append(yearRows, logicblox.Of(
			logicblox.String(workload.WeekName(wk)), logicblox.String("2015")))
	}
	yearRows = append(yearRows, logicblox.Strings("2015-W90", "2015"))
	mws, err = mws.Load("year", yearRows)
	if err != nil {
		log.Fatal(err)
	}
	rows, err = mws.Query(`_(p, u) <- salesByYear[p, "2015"] = u, u > 4000.`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("yearly rollup (installed live) — products above 4k:")
	for _, r := range rows {
		fmt.Printf("  %s: %v units\n", r[0].AsString(), r[1])
	}

	// Abandon the supply-chain scenario: deleting a branch just drops the
	// reference (no rollback log, paper T4).
	if err := db.DeleteBranch("supply-chain"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("workbooks after cleanup:", db.Branches())
}
