package core

import "logicblox/internal/obs"

// Option is a functional configuration of a workspace, applied by
// logicblox.Open to the root workspace before the first commit so the
// whole lineage inherits it.
type Option func(*Workspace) *Workspace

// OptOptimizer enables the sampling-based join-order optimizer.
func OptOptimizer() Option {
	return func(ws *Workspace) *Workspace { return ws.WithOptimizer(true) }
}

// OptAdaptiveOptimizer enables the adaptive optimizer with a fresh plan
// store.
func OptAdaptiveOptimizer() Option {
	return func(ws *Workspace) *Workspace { return ws.WithAdaptiveOptimizer(true) }
}

// OptObserver attaches a metrics registry to the lineage.
func OptObserver(reg *obs.Registry) Option {
	return func(ws *Workspace) *Workspace { return ws.WithObserver(reg) }
}
