package engine_test

import (
	"testing"

	"logicblox/internal/ivm"
	"logicblox/internal/relation"
	"logicblox/internal/tuple"
)

// TestSensitivityPermutedIndexRegression is the distilled failing input
// the differential harness found once its delta generator was made
// deterministic (generate(34)): rule d1 joins p1 twice under a variable
// order that forces one p1 atom through a permuted secondary index.
// Sensitivity intervals for that atom were recorded with prefixes in
// plan-column order but probed with stored-order tuples, so deleting p1
// facts was reported as unaffected and sensitivity-mode IVM kept stale d1
// tuples alive (batch 2 used to diverge from the reference by two
// resurrected tuples). The fix maps intervals back to stored columns via
// lftj.Atom.Cols / Interval.Cols.
func TestSensitivityPermutedIndexRegression(t *testing.T) {
	p := generate(34)
	prog := compileGen(t, p)
	for _, mode := range []ivm.Mode{ivm.Recompute, ivm.Sensitivity} {
		m, err := ivm.NewMaintainer(prog, p.base, mode)
		if err != nil {
			t.Fatal(err)
		}
		cur := map[string]relation.Relation{}
		for name, rel := range p.base {
			cur[name] = rel
		}
		batches := []map[string]ivm.Delta{
			{"p0": {Ins: []tuple.Tuple{{tuple.Int(1)}}, Del: []tuple.Tuple{{tuple.Int(2)}}},
				"p2": {Ins: []tuple.Tuple{{tuple.Int(0)}}, Del: []tuple.Tuple{{tuple.Int(4)}}}},
			{"p2": {Ins: []tuple.Tuple{{tuple.Int(2)}, {tuple.Int(0)}, {tuple.Int(3)}}, Del: []tuple.Tuple{{tuple.Int(3)}}}},
			{"p1": {Ins: []tuple.Tuple{{tuple.Int(2), tuple.Int(3)}}, Del: []tuple.Tuple{{tuple.Int(6), tuple.Int(5)}, {tuple.Int(3), tuple.Int(4)}}},
				"p2": {Ins: []tuple.Tuple{{tuple.Int(4)}}, Del: []tuple.Tuple{{tuple.Int(3)}}}},
		}
		for bi, d := range batches {
			if _, err := m.Apply(d); err != nil {
				t.Fatalf("%v batch %d: %v", mode, bi, err)
			}
			cur = applyToBase(cur, d)
			want := refEval(p, cur)
			for _, dn := range p.derived {
				got := m.Relation(dn)
				if !got.Equal(want[dn]) {
					t.Errorf("mode %v batch %d: %s diverged: maintained %v reference %v",
						mode, bi, dn, sortedSlice(got), sortedSlice(want[dn]))
				}
			}
		}
	}
}
