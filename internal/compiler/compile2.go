package compiler

import (
	"fmt"

	"logicblox/internal/ast"
)

// compileTerm lowers an AST term into an Expr over the rule's slots.
// Every variable must already have a slot that is a join variable or an
// assigned variable (safety).
func (e *bodyEnv) compileTerm(t ast.Term) (Expr, error) {
	switch t := t.(type) {
	case ast.Var:
		s, ok := e.varSlot[t.Name]
		if !ok {
			return nil, fmt.Errorf("variable %s is unbound", t.Name)
		}
		if s >= e.numJoin && !e.assigned[s] {
			return nil, fmt.Errorf("variable %s is used before it is bound", t.Name)
		}
		return VarExpr{Idx: s}, nil
	case ast.Const:
		return ConstExpr{Val: t.Val}, nil
	case ast.Arith:
		l, err := e.compileTerm(t.L)
		if err != nil {
			return nil, err
		}
		r, err := e.compileTerm(t.R)
		if err != nil {
			return nil, err
		}
		return ArithExpr{Op: t.Op, L: l, R: r}, nil
	case ast.Wildcard:
		return nil, fmt.Errorf("wildcard is not allowed here")
	default:
		return nil, fmt.Errorf("cannot compile term %s", t)
	}
}

// termComputable reports whether every variable of t has a usable slot.
func (e *bodyEnv) termComputable(t ast.Term) bool {
	switch t := t.(type) {
	case ast.Var:
		s, ok := e.varSlot[t.Name]
		return ok && (s < e.numJoin || e.assigned[s])
	case ast.Arith:
		return e.termComputable(t.L) && e.termComputable(t.R)
	case ast.Const:
		return true
	default:
		return false
	}
}

// resolveComparisons repeatedly classifies the pending comparisons into
// variable assignments (x = <computable expr> with x otherwise unbound)
// and filters, until a fixed point; leftover non-computable comparisons
// make the rule unsafe.
func (e *bodyEnv) resolveComparisons() error {
	pending := e.pendingCmp
	for {
		var rest []*ast.Comparison
		progress := false
		for _, cmp := range pending {
			if e.tryAssign(cmp) {
				progress = true
				continue
			}
			if e.termComputable(cmp.L) && e.termComputable(cmp.R) {
				l, err := e.compileTerm(cmp.L)
				if err != nil {
					return err
				}
				r, err := e.compileTerm(cmp.R)
				if err != nil {
					return err
				}
				e.filters = append(e.filters, FilterPlan{Op: string(cmp.Op), L: l, R: r})
				progress = true
				continue
			}
			rest = append(rest, cmp)
		}
		if len(rest) == 0 {
			e.pendingCmp = nil
			return nil
		}
		if !progress {
			return fmt.Errorf("unsafe comparison %s: variables cannot be bound", rest[0])
		}
		pending = rest
	}
}

// tryAssign turns cmp into an assignment if it is an equality with
// exactly one unbound bare variable on one side and a computable
// expression on the other.
func (e *bodyEnv) tryAssign(cmp *ast.Comparison) bool {
	if cmp.Op != ast.OpEq {
		return false
	}
	try := func(target, src ast.Term) bool {
		v, ok := target.(ast.Var)
		if !ok {
			return false
		}
		s, exists := e.varSlot[v.Name]
		if exists && (s < e.numJoin || e.assigned[s]) {
			return false // already bound: this is a filter
		}
		if !e.termComputable(src) {
			return false
		}
		expr, err := e.compileTerm(src)
		if err != nil {
			return false
		}
		if !exists {
			s = len(e.varNames)
			e.varSlot[v.Name] = s
			e.varNames = append(e.varNames, v.Name)
			e.isJoinVar = append(e.isJoinVar, false)
		}
		e.assigned[s] = true
		e.assigns = append(e.assigns, AssignPlan{Slot: s, E: expr})
		return true
	}
	return try(cmp.L, cmp.R) || try(cmp.R, cmp.L)
}

// resolveNegAtoms compiles the argument expressions of negated atoms.
func (e *bodyEnv) resolveNegAtoms() error {
	for i, raw := range e.rawNeg {
		terms := raw.AllTerms()
		args := make([]Expr, len(terms))
		for j, t := range terms {
			if _, isWild := t.(ast.Wildcard); isWild {
				continue // nil expr = wildcard
			}
			expr, err := e.compileTerm(t)
			if err != nil {
				return fmt.Errorf("in negated atom %s: %w", raw, err)
			}
			args[j] = expr
		}
		e.negAtoms[i].Args = args
	}
	return nil
}

// compileRule lowers one rule into one RulePlan per head atom.
func (c *compilation) compileRule(r *ast.Rule) error {
	env := c.newBodyEnv()
	if err := env.addLiterals(r.Body); err != nil {
		return err
	}
	if err := env.finish(); err != nil {
		return err
	}
	if err := env.resolveComparisons(); err != nil {
		return err
	}
	if err := env.resolveNegAtoms(); err != nil {
		return err
	}
	for _, h := range r.Heads {
		plan, err := c.assembleRule(r, h, env)
		if err != nil {
			return err
		}
		if isReactivePlan(plan) {
			c.prog.Reactive = append(c.prog.Reactive, plan)
		} else {
			c.prog.Rules = append(c.prog.Rules, plan)
		}
	}
	return nil
}

func isReactivePlan(p *RulePlan) bool {
	if BaseName(p.HeadName) != p.HeadName {
		return true
	}
	for _, n := range p.BodyNames {
		if BaseName(n) != n {
			return true
		}
	}
	for _, n := range p.NegNames {
		if BaseName(n) != n {
			return true
		}
	}
	return false
}

func (c *compilation) assembleRule(r *ast.Rule, h *ast.Atom, env *bodyEnv) (*RulePlan, error) {
	plan := &RulePlan{
		ID:          len(c.prog.Rules) + len(c.prog.Reactive),
		Source:      r.String(),
		HeadName:    DecoratedName(h.Pred, h.Delta, h.AtStart),
		HeadArity:   h.Arity(),
		NumJoinVars: env.numJoin,
		Slots:       len(env.varNames),
		VarNames:    env.varNames,
		Atoms:       env.atoms,
		Consts:      env.consts,
		NegAtoms:    env.negAtoms,
		Filters:     env.filters,
		Assigns:     env.assigns,
		BodyNames:   env.bodyNames,
		NegNames:    env.negNames,
	}
	if h.AtStart {
		return nil, fmt.Errorf("@start predicate %s cannot be derived", h.Pred)
	}

	switch {
	case r.Agg != nil:
		if !h.Functional() {
			return nil, fmt.Errorf("aggregation rule head %s must be functional (R[keys] = result)", h.Pred)
		}
		v, ok := h.Value.(ast.Var)
		if !ok || v.Name != r.Agg.Result {
			return nil, fmt.Errorf("aggregation head value must be the aggregate variable %s", r.Agg.Result)
		}
		agg, err := env.compileAgg(r.Agg)
		if err != nil {
			return nil, err
		}
		plan.Agg = agg
		// Head exprs cover the key columns only; the engine appends the
		// aggregate value.
		for _, t := range h.Args {
			expr, err := env.compileTerm(t)
			if err != nil {
				return nil, fmt.Errorf("in head of %s: %w", h.Pred, err)
			}
			plan.HeadExprs = append(plan.HeadExprs, expr)
		}
		return plan, nil

	case r.Pred != nil:
		if !h.Functional() {
			return nil, fmt.Errorf("predict rule head %s must be functional", h.Pred)
		}
		v, ok := h.Value.(ast.Var)
		if !ok || v.Name != r.Pred.Result {
			return nil, fmt.Errorf("predict head value must be the result variable %s", r.Pred.Result)
		}
		pp, err := env.compilePredict(r.Pred, h)
		if err != nil {
			return nil, err
		}
		plan.Predict = pp
		for _, t := range h.Args {
			expr, err := env.compileTerm(t)
			if err != nil {
				return nil, fmt.Errorf("in head of %s: %w", h.Pred, err)
			}
			plan.HeadExprs = append(plan.HeadExprs, expr)
		}
		return plan, nil

	default:
		for _, t := range h.AllTerms() {
			expr, err := env.compileTerm(t)
			if err != nil {
				return nil, fmt.Errorf("in head of %s: %w", h.Pred, err)
			}
			plan.HeadExprs = append(plan.HeadExprs, expr)
		}
		return plan, nil
	}
}

func (e *bodyEnv) compileAgg(a *ast.Aggregation) (*AggPlan, error) {
	switch a.Func {
	case "sum", "min", "max", "avg", "total", "count":
	default:
		return nil, fmt.Errorf("unknown aggregation function %s", a.Func)
	}
	plan := &AggPlan{Func: a.Func, ArgSlot: -1}
	if a.Func == "count" {
		return plan, nil
	}
	if a.Arg == "" {
		return nil, fmt.Errorf("aggregation %s requires an argument variable", a.Func)
	}
	s, ok := e.varSlot[a.Arg]
	if !ok || (s >= e.numJoin && !e.assigned[s]) {
		return nil, fmt.Errorf("aggregated variable %s is unbound", a.Arg)
	}
	plan.ArgSlot = s
	return plan, nil
}

func (e *bodyEnv) compilePredict(p *ast.Predict, head *ast.Atom) (*PredictPlan, error) {
	switch p.Func {
	case "logist", "linear", "eval":
	default:
		return nil, fmt.Errorf("unknown predict function %s", p.Func)
	}
	slotOf := func(name string) (int, error) {
		s, ok := e.varSlot[name]
		if !ok || (s >= e.numJoin && !e.assigned[s]) {
			return 0, fmt.Errorf("predict variable %s is unbound", name)
		}
		return s, nil
	}
	vs, err := slotOf(p.Value)
	if err != nil {
		return nil, err
	}
	fs, err := slotOf(p.Feature)
	if err != nil {
		return nil, err
	}
	plan := &PredictPlan{Func: p.Func, ValueSlot: vs, FeatureSlot: fs}
	// Group (head key) slots.
	group := map[int]bool{}
	for _, t := range head.Args {
		if v, ok := t.(ast.Var); ok {
			if s, ok := e.varSlot[v.Name]; ok {
				group[s] = true
			}
		}
	}
	// Example identity: the other variables of the atom binding the value;
	// feature identity: the other variables of the atom binding the
	// feature value.
	plan.ValueKeySlots = e.companionSlots(vs, group)
	plan.FeatNameSlots = e.companionSlots(fs, group)
	return plan, nil
}

// companionSlots finds the atom binding slot and returns its other
// variables that are not group keys (in column order).
func (e *bodyEnv) companionSlots(slot int, group map[int]bool) []int {
	for _, a := range e.atoms {
		has := false
		for _, v := range a.Vars {
			if v == slot {
				has = true
				break
			}
		}
		if !has {
			continue
		}
		var out []int
		for _, v := range a.Vars {
			if v != slot && !group[v] {
				out = append(out, v)
			}
		}
		return out
	}
	return nil
}

// compileConstraint lowers an integrity constraint.
func (c *compilation) compileConstraint(k *ast.Constraint) error {
	env := c.newBodyEnv()
	if err := env.addLiterals(k.Body); err != nil {
		return err
	}
	if err := env.finish(); err != nil {
		return err
	}
	if err := env.resolveComparisons(); err != nil {
		return err
	}
	if err := env.resolveNegAtoms(); err != nil {
		return err
	}
	body := &RulePlan{
		Source:      k.String(),
		NumJoinVars: env.numJoin,
		Slots:       len(env.varNames),
		VarNames:    env.varNames,
		Atoms:       env.atoms,
		Consts:      env.consts,
		NegAtoms:    env.negAtoms,
		Filters:     env.filters,
		Assigns:     env.assigns,
		BodyNames:   env.bodyNames,
		NegNames:    env.negNames,
	}
	plan := &ConstraintPlan{ID: len(c.prog.Constraints), Source: k.String(), Body: body}

	for _, l := range k.Head {
		switch {
		case l.Cmp != nil:
			lx, err := env.compileHeadCheckTerm(l.Cmp.L)
			if err != nil {
				return err
			}
			rx, err := env.compileHeadCheckTerm(l.Cmp.R)
			if err != nil {
				return err
			}
			plan.HeadChecks = append(plan.HeadChecks, FilterPlan{Op: string(l.Cmp.Op), L: lx, R: rx})
		case l.Negated:
			terms := l.Atom.AllTerms()
			args := make([]Expr, len(terms))
			for j, t := range terms {
				if _, w := t.(ast.Wildcard); w {
					continue
				}
				expr, err := env.compileHeadCheckTerm(t)
				if err != nil {
					return err
				}
				args[j] = expr
			}
			plan.HeadChecks = append(plan.HeadChecks, FilterPlan{Op: "!exists",
				L: existsExpr{name: DecoratedName(l.Atom.Pred, l.Atom.Delta, l.Atom.AtStart), args: args}})
			plan.HeadNegAtoms = append(plan.HeadNegAtoms, GroundAtom{
				Name: DecoratedName(l.Atom.Pred, l.Atom.Delta, l.Atom.AtStart), Args: args,
			})
		default:
			a := l.Atom
			if kind, isType := ast.TypeAtoms[a.Pred]; isType && len(a.Args) == 1 {
				if v, ok := a.Args[0].(ast.Var); ok {
					s, exists := env.varSlot[v.Name]
					if !exists {
						return fmt.Errorf("type check on unbound variable %s", v.Name)
					}
					plan.HeadTypes = append(plan.HeadTypes, TypeCheck{Slot: s, Kind: kind})
					continue
				}
			}
			terms := a.AllTerms()
			args := make([]Expr, len(terms))
			for j, t := range terms {
				if _, w := t.(ast.Wildcard); w {
					continue
				}
				expr, err := env.compileHeadCheckTerm(t)
				if err != nil {
					return fmt.Errorf("in constraint head %s: %w", a, err)
				}
				args[j] = expr
			}
			plan.HeadAtoms = append(plan.HeadAtoms, GroundAtom{
				Name: DecoratedName(a.Pred, a.Delta, a.AtStart), Args: args,
			})
		}
	}
	c.prog.Constraints = append(c.prog.Constraints, plan)
	return nil
}

// compileHeadCheckTerm compiles a term in a constraint head. Functional
// applications become FuncGetExprs resolved against the workspace at
// check time (so `Stock[p] >= minStock[p]` fails when either value is
// missing).
func (e *bodyEnv) compileHeadCheckTerm(t ast.Term) (Expr, error) {
	switch t := t.(type) {
	case ast.FuncApp:
		args := make([]Expr, len(t.Args))
		for i, a := range t.Args {
			expr, err := e.compileHeadCheckTerm(a)
			if err != nil {
				return nil, err
			}
			args[i] = expr
		}
		return FuncGetExpr{Name: t.Pred, Args: args}, nil
	case ast.Arith:
		l, err := e.compileHeadCheckTerm(t.L)
		if err != nil {
			return nil, err
		}
		r, err := e.compileHeadCheckTerm(t.R)
		if err != nil {
			return nil, err
		}
		return ArithExpr{Op: t.Op, L: l, R: r}, nil
	default:
		return e.compileTerm(t)
	}
}
