package core

import (
	"fmt"
	"testing"

	"logicblox/internal/tuple"
)

func adaptiveWS(t *testing.T) *Workspace {
	t.Helper()
	ws := NewWorkspace().WithAdaptiveOptimizer(true)
	ws = mustAddBlock(t, ws, "q", `q(a, b, c) <- r(a, b), s(b, c), t(c).`)
	var rs, ss []tuple.Tuple
	for i := int64(0); i < 3000; i++ {
		rs = append(rs, tuple.Ints(i%200, i%300))
		ss = append(ss, tuple.Ints(i%300, i%400))
	}
	var err error
	if ws, err = ws.Load("r", rs); err != nil {
		t.Fatal(err)
	}
	if ws, err = ws.Load("s", ss); err != nil {
		t.Fatal(err)
	}
	if ws, err = ws.Load("t", []tuple.Tuple{tuple.Ints(17)}); err != nil {
		t.Fatal(err)
	}
	return ws
}

// TestAdaptiveOptimizerSurvivesTransactions pins the tentpole's
// cross-transaction behavior: the plan store rides along every workspace
// version, so repeated transactions over unchanged logic reuse the
// cached order instead of re-sampling per transaction.
func TestAdaptiveOptimizerSurvivesTransactions(t *testing.T) {
	ws := adaptiveWS(t)
	store := ws.PlanStore()
	if store == nil {
		t.Fatal("WithAdaptiveOptimizer(true) left no plan store")
	}

	for i := 0; i < 10; i++ {
		res, err := ws.Exec(fmt.Sprintf("+r(%d, %d).", 10000+i, i%300))
		if err != nil {
			t.Fatal(err)
		}
		ws = res.Workspace
		if ws.PlanStore() != store {
			t.Fatal("transaction replaced the plan store")
		}
	}
	st := store.Stats()
	if st.Hits == 0 {
		t.Fatalf("no cache hits across 10 transactions: %+v", st)
	}
	// Sampling runs are a handful of cold misses (plus any redecisions),
	// far fewer than one per transaction.
	if st.Misses+st.Redecisions >= st.Hits {
		t.Fatalf("sampling did not amortize: %+v", st)
	}

	// Results stay correct: the adaptive workspace matches a plain one.
	adaptive, err := ws.Query(`_(a, b, c) <- q(a, b, c).`)
	if err != nil {
		t.Fatal(err)
	}
	plainWS := ws.WithAdaptiveOptimizer(false)
	plain, err := plainWS.Query(`_(a, b, c) <- q(a, b, c).`)
	if err != nil {
		t.Fatal(err)
	}
	if len(adaptive) != len(plain) {
		t.Fatalf("adaptive query returned %d rows, plain %d", len(adaptive), len(plain))
	}
}

// TestAdaptiveOptimizerSchemaChangeInvalidates: a block change that
// dirties a predicate must drop every cached plan reading or deriving
// it, so the optimizer re-decides against the new logic.
func TestAdaptiveOptimizerSchemaChangeInvalidates(t *testing.T) {
	ws := adaptiveWS(t)
	store := ws.PlanStore()
	if store.Len() == 0 {
		t.Fatal("no cached plan after initial derivation")
	}

	// Adding a second rule for q dirties q: the cached plan for the
	// original rule must not survive.
	ws = mustAddBlock(t, ws, "q2", `q(a, b, c) <- u(a, b, c).`)
	st := store.Stats()
	if st.Invalidated == 0 {
		t.Fatalf("schema change invalidated nothing: %+v", st)
	}
	if ws.PlanStore() != store {
		t.Fatal("addblock replaced the plan store")
	}

	// The next derivation re-populates the store.
	res, err := ws.Exec("+r(99999, 1).")
	if err != nil {
		t.Fatal(err)
	}
	if res.Workspace.PlanStore().Len() == 0 {
		t.Fatal("store not repopulated after invalidation")
	}
}

// TestAdaptiveOptimizerSharedAcrossBranches: branching a database
// workspace shares the plan store (it is a cache, not data), so plans
// learned on one branch benefit the others.
func TestAdaptiveOptimizerSharedAcrossBranches(t *testing.T) {
	ws := adaptiveWS(t)
	db := NewDatabase()
	if err := db.Commit(DefaultBranch, ws); err != nil {
		t.Fatal(err)
	}
	if err := db.Branch(DefaultBranch, "fork"); err != nil {
		t.Fatal(err)
	}
	fork, err := db.Workspace("fork")
	if err != nil {
		t.Fatal(err)
	}
	if fork.PlanStore() != ws.PlanStore() {
		t.Fatal("branching severed the plan store")
	}
}

func TestWithAdaptiveOptimizerOff(t *testing.T) {
	ws := NewWorkspace().WithAdaptiveOptimizer(true)
	if ws.PlanStore() == nil {
		t.Fatal("on: expected a plan store")
	}
	off := ws.WithAdaptiveOptimizer(false)
	if off.PlanStore() != nil {
		t.Fatal("off: expected no plan store")
	}
	if NewWorkspace().PlanStore() != nil {
		t.Fatal("default workspace must have no plan store")
	}
}
