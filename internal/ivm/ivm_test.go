package ivm

import (
	"fmt"
	"math/rand"
	"testing"

	"logicblox/internal/compiler"
	"logicblox/internal/engine"
	"logicblox/internal/parser"
	"logicblox/internal/relation"
	"logicblox/internal/tuple"
)

var allModes = []Mode{Recompute, Counting, DRed, Sensitivity}

func mustProgram(t *testing.T, src string) *compiler.Program {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c, err := compiler.Compile(p)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return c
}

// oracle recomputes the program from scratch on the given base state.
func oracle(t *testing.T, prog *compiler.Program, base map[string]relation.Relation) *engine.Context {
	t.Helper()
	ctx := engine.NewContext(prog, base, engine.Options{})
	if err := ctx.EvalAll(); err != nil {
		t.Fatalf("oracle eval: %v", err)
	}
	return ctx
}

func cloneBase(base map[string]relation.Relation) map[string]relation.Relation {
	out := make(map[string]relation.Relation, len(base))
	for k, v := range base {
		out[k] = v
	}
	return out
}

func applyToBase(base map[string]relation.Relation, deltas map[string]Delta, arities map[string]int) {
	for name, d := range deltas {
		r, ok := base[name]
		if !ok {
			r = relation.New(arities[name])
		}
		for _, t := range d.Del {
			r = r.Delete(t)
		}
		for _, t := range d.Ins {
			r = r.Insert(t)
		}
		base[name] = r
	}
}

// checkAgainstOracle verifies every derived predicate matches a from-
// scratch evaluation.
func checkAgainstOracle(t *testing.T, m *Maintainer, prog *compiler.Program, base map[string]relation.Relation, label string) {
	t.Helper()
	ctx := oracle(t, prog, base)
	for _, name := range prog.IDBPreds {
		got, want := m.Relation(name), ctx.Relation(name)
		if !got.Equal(want) {
			t.Fatalf("%s: %s maintained %v, oracle %v", label, name, got.Slice(), want.Slice())
		}
	}
}

func TestMaintainTriangleViewAllModes(t *testing.T) {
	src := `tri(x, y, z) <- e(x, y), e(y, z), e(x, z).`
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			prog := mustProgram(t, src)
			base := map[string]relation.Relation{
				"e": relation.FromTuples(2, []tuple.Tuple{
					tuple.Ints(1, 2), tuple.Ints(2, 3), tuple.Ints(1, 3), tuple.Ints(3, 4),
				}),
			}
			m, err := NewMaintainer(prog, cloneBase(base), mode)
			if err != nil {
				t.Fatal(err)
			}
			if m.Relation("tri").Len() != 1 {
				t.Fatalf("initial tri = %v", m.Relation("tri").Slice())
			}

			// Insert the edge closing triangle (2,3,4).
			d1 := map[string]Delta{"e": {Ins: []tuple.Tuple{tuple.Ints(2, 4)}}}
			if _, err := m.Apply(d1); err != nil {
				t.Fatal(err)
			}
			applyToBase(base, d1, map[string]int{"e": 2})
			checkAgainstOracle(t, m, prog, base, "after insert")
			if !m.Relation("tri").Contains(tuple.Ints(2, 3, 4)) {
				t.Fatalf("missing new triangle: %v", m.Relation("tri").Slice())
			}

			// Delete an edge of the original triangle.
			d2 := map[string]Delta{"e": {Del: []tuple.Tuple{tuple.Ints(1, 2)}}}
			if _, err := m.Apply(d2); err != nil {
				t.Fatal(err)
			}
			applyToBase(base, d2, map[string]int{"e": 2})
			checkAgainstOracle(t, m, prog, base, "after delete")
			if m.Relation("tri").Contains(tuple.Ints(1, 2, 3)) {
				t.Fatalf("stale triangle survives: %v", m.Relation("tri").Slice())
			}
		})
	}
}

func TestMaintainRecursiveClosureAllModes(t *testing.T) {
	src := `
		path(x, y) <- edge(x, y).
		path(x, z) <- path(x, y), edge(y, z).`
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			prog := mustProgram(t, src)
			e := relation.New(2)
			for i := int64(0); i < 6; i++ {
				e = e.Insert(tuple.Ints(i, i+1))
			}
			base := map[string]relation.Relation{"edge": e}
			m, err := NewMaintainer(prog, cloneBase(base), mode)
			if err != nil {
				t.Fatal(err)
			}
			// Insert a shortcut edge, then delete a bridge.
			for step, d := range []map[string]Delta{
				{"edge": {Ins: []tuple.Tuple{tuple.Ints(0, 5)}}},
				{"edge": {Del: []tuple.Tuple{tuple.Ints(2, 3)}}},
				{"edge": {Ins: []tuple.Tuple{tuple.Ints(2, 3)}, Del: []tuple.Tuple{tuple.Ints(0, 1)}}},
			} {
				if _, err := m.Apply(d); err != nil {
					t.Fatal(err)
				}
				applyToBase(base, d, map[string]int{"edge": 2})
				checkAgainstOracle(t, m, prog, base, fmt.Sprintf("step %d", step))
			}
		})
	}
}

func TestMaintainAggregation(t *testing.T) {
	src := `total[s] = u <- agg<<u = sum(v)>> sales(s, p, v).`
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			prog := mustProgram(t, src)
			base := map[string]relation.Relation{
				"sales": relation.FromTuples(3, []tuple.Tuple{
					tuple.Of(tuple.String("s1"), tuple.String("a"), tuple.Int(10)),
					tuple.Of(tuple.String("s1"), tuple.String("b"), tuple.Int(5)),
				}),
			}
			m, err := NewMaintainer(prog, cloneBase(base), mode)
			if err != nil {
				t.Fatal(err)
			}
			d := map[string]Delta{"sales": {
				Ins: []tuple.Tuple{tuple.Of(tuple.String("s2"), tuple.String("c"), tuple.Int(7))},
				Del: []tuple.Tuple{tuple.Of(tuple.String("s1"), tuple.String("b"), tuple.Int(5))},
			}}
			if _, err := m.Apply(d); err != nil {
				t.Fatal(err)
			}
			applyToBase(base, d, map[string]int{"sales": 3})
			checkAgainstOracle(t, m, prog, base, "after batch")
			if v, _ := m.Relation("total").FuncGet(tuple.Strings("s1")); v.AsInt() != 10 {
				t.Fatalf("total[s1] = %v", v)
			}
		})
	}
}

func TestMaintainNegation(t *testing.T) {
	src := `only_a(x) <- a(x), !b(x).`
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			prog := mustProgram(t, src)
			base := map[string]relation.Relation{
				"a": relation.FromTuples(1, []tuple.Tuple{tuple.Ints(1), tuple.Ints(2), tuple.Ints(3)}),
				"b": relation.FromTuples(1, []tuple.Tuple{tuple.Ints(2)}),
			}
			m, err := NewMaintainer(prog, cloneBase(base), mode)
			if err != nil {
				t.Fatal(err)
			}
			// Insert into the negated predicate: only_a(3) must disappear.
			d := map[string]Delta{"b": {Ins: []tuple.Tuple{tuple.Ints(3)}}}
			if _, err := m.Apply(d); err != nil {
				t.Fatal(err)
			}
			applyToBase(base, d, map[string]int{"b": 1})
			checkAgainstOracle(t, m, prog, base, "neg insert")
			// Delete from the negated predicate: only_a(2) comes back.
			d = map[string]Delta{"b": {Del: []tuple.Tuple{tuple.Ints(2)}}}
			if _, err := m.Apply(d); err != nil {
				t.Fatal(err)
			}
			applyToBase(base, d, map[string]int{"b": 1})
			checkAgainstOracle(t, m, prog, base, "neg delete")
		})
	}
}

func TestMaintainMultiRuleHead(t *testing.T) {
	src := `
		reachable(x) <- source(x).
		reachable(x) <- direct(x).`
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			prog := mustProgram(t, src)
			base := map[string]relation.Relation{
				"source": relation.FromTuples(1, []tuple.Tuple{tuple.Ints(1)}),
				"direct": relation.FromTuples(1, []tuple.Tuple{tuple.Ints(1), tuple.Ints(2)}),
			}
			m, err := NewMaintainer(prog, cloneBase(base), mode)
			if err != nil {
				t.Fatal(err)
			}
			// Deleting direct(1) must NOT delete reachable(1): source still
			// supports it.
			d := map[string]Delta{"direct": {Del: []tuple.Tuple{tuple.Ints(1)}}}
			if _, err := m.Apply(d); err != nil {
				t.Fatal(err)
			}
			applyToBase(base, d, map[string]int{"direct": 1})
			checkAgainstOracle(t, m, prog, base, "shared support")
			if !m.Relation("reachable").Contains(tuple.Ints(1)) {
				t.Fatalf("reachable(1) lost despite remaining support")
			}
		})
	}
}

func TestMaintainChainedViews(t *testing.T) {
	src := `
		b(x) <- a(x).
		c(x) <- b(x), big(x).`
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			prog := mustProgram(t, src)
			base := map[string]relation.Relation{
				"a":   relation.FromTuples(1, []tuple.Tuple{tuple.Ints(1), tuple.Ints(5)}),
				"big": relation.FromTuples(1, []tuple.Tuple{tuple.Ints(5), tuple.Ints(9)}),
			}
			m, err := NewMaintainer(prog, cloneBase(base), mode)
			if err != nil {
				t.Fatal(err)
			}
			d := map[string]Delta{"a": {Ins: []tuple.Tuple{tuple.Ints(9)}, Del: []tuple.Tuple{tuple.Ints(5)}}}
			changed, err := m.Apply(d)
			if err != nil {
				t.Fatal(err)
			}
			applyToBase(base, d, map[string]int{"a": 1})
			checkAgainstOracle(t, m, prog, base, "chained")
			// The returned delta map must include the downstream change in c.
			if changed["c"].Empty() {
				t.Fatalf("derived delta for c not reported: %v", changed)
			}
		})
	}
}

func TestSensitivitySkipsUnaffectedRules(t *testing.T) {
	// Two independent views; a change to one must not evaluate the other.
	src := `
		v1(x, y) <- r1(x, y), s1(y, x).
		v2(x, y) <- r2(x, y), s2(y, x).`
	prog := mustProgram(t, src)
	mk := func(vals ...int64) relation.Relation {
		r := relation.New(2)
		for i := 0; i+1 < len(vals); i += 2 {
			r = r.Insert(tuple.Ints(vals[i], vals[i+1]))
		}
		return r
	}
	base := map[string]relation.Relation{
		"r1": mk(1, 2), "s1": mk(2, 1),
		"r2": mk(7, 8), "s2": mk(8, 7),
	}
	m, err := NewMaintainer(prog, base, Sensitivity)
	if err != nil {
		t.Fatal(err)
	}
	d := map[string]Delta{"r1": {Ins: []tuple.Tuple{tuple.Ints(3, 4)}}}
	if _, err := m.Apply(d); err != nil {
		t.Fatal(err)
	}
	if m.Stats.RulesSkipped != 1 {
		t.Fatalf("expected v2's rule skipped, stats = %+v", m.Stats)
	}
	if m.Stats.RulesEvaluated != 1 {
		t.Fatalf("expected only v1 re-evaluated, stats = %+v", m.Stats)
	}
}

func TestSensitivitySkipsChangesOutsideTrace(t *testing.T) {
	// Paper §3.2: inserting C(3) or deleting C(4) does not affect the
	// Figure 3 run, so the view must not be re-evaluated.
	src := `out(x) <- a(x), b(x), c(x).`
	prog := mustProgram(t, src)
	mk := func(vals ...int64) relation.Relation {
		r := relation.New(1)
		for _, v := range vals {
			r = r.Insert(tuple.Ints(v))
		}
		return r
	}
	base := map[string]relation.Relation{
		"a": mk(0, 1, 3, 4, 5, 6, 7, 8, 9, 11),
		"b": mk(0, 2, 6, 7, 8, 9),
		"c": mk(2, 4, 5, 8, 10),
	}
	m, err := NewMaintainer(prog, base, Sensitivity)
	if err != nil {
		t.Fatal(err)
	}
	d := map[string]Delta{"c": {Ins: []tuple.Tuple{tuple.Ints(3)}, Del: []tuple.Tuple{tuple.Ints(4)}}}
	if _, err := m.Apply(d); err != nil {
		t.Fatal(err)
	}
	if m.Stats.RulesEvaluated != 0 || m.Stats.RulesSkipped != 1 {
		t.Fatalf("change outside trace should skip the rule, stats = %+v", m.Stats)
	}
	if m.Relation("out").Len() != 1 {
		t.Fatalf("out = %v", m.Relation("out").Slice())
	}
}

func TestCountingSkipsUntouchedRules(t *testing.T) {
	src := `
		v1(x) <- r1(x).
		v2(x) <- r2(x).`
	prog := mustProgram(t, src)
	base := map[string]relation.Relation{
		"r1": relation.FromTuples(1, []tuple.Tuple{tuple.Ints(1)}),
		"r2": relation.FromTuples(1, []tuple.Tuple{tuple.Ints(2)}),
	}
	m, err := NewMaintainer(prog, base, Counting)
	if err != nil {
		t.Fatal(err)
	}
	d := map[string]Delta{"r1": {Ins: []tuple.Tuple{tuple.Ints(5)}}}
	if _, err := m.Apply(d); err != nil {
		t.Fatal(err)
	}
	if m.Stats.RulesSkipped != 1 {
		t.Fatalf("stats = %+v", m.Stats)
	}
}

func TestRandomizedMaintenanceAgainstOracle(t *testing.T) {
	src := `
		tri(x, y, z) <- e(x, y), e(y, z), e(x, z).
		deg2(x) <- e(x, y), e(y, z).
		path(x, y) <- e(x, y).
		path(x, z) <- path(x, y), e(y, z).`
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(99))
			prog := mustProgram(t, src)
			e := relation.New(2)
			for i := 0; i < 30; i++ {
				e = e.Insert(tuple.Ints(rng.Int63n(8), rng.Int63n(8)))
			}
			base := map[string]relation.Relation{"e": e}
			m, err := NewMaintainer(prog, cloneBase(base), mode)
			if err != nil {
				t.Fatal(err)
			}
			for step := 0; step < 15; step++ {
				var d Delta
				for i := 0; i < rng.Intn(3)+1; i++ {
					t1 := tuple.Ints(rng.Int63n(8), rng.Int63n(8))
					if rng.Intn(2) == 0 && base["e"].Contains(t1) {
						d.Del = append(d.Del, t1)
					} else if !base["e"].Contains(t1) {
						d.Ins = append(d.Ins, t1)
					}
				}
				if d.Empty() {
					continue
				}
				batch := map[string]Delta{"e": d}
				if _, err := m.Apply(batch); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				applyToBase(base, batch, map[string]int{"e": 2})
				checkAgainstOracle(t, m, prog, base, fmt.Sprintf("step %d", step))
			}
		})
	}
}

func TestEmptyDeltaIsNoop(t *testing.T) {
	prog := mustProgram(t, `v(x) <- r(x).`)
	m, err := NewMaintainer(prog, map[string]relation.Relation{
		"r": relation.FromTuples(1, []tuple.Tuple{tuple.Ints(1)}),
	}, Counting)
	if err != nil {
		t.Fatal(err)
	}
	changed, err := m.Apply(map[string]Delta{"r": {}})
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 0 {
		t.Fatalf("no-op delta reported changes: %v", changed)
	}
}
