// Package pmap is a snapshotescape-analyzer fixture (declared as one of
// the protected persistent packages): exported functions returning
// internal containers — directly, through a local alias, or through a
// call chain — are flagged; fresh copies are not. Unexported helpers
// feed summaries without being findings themselves.
package pmap

// Map is a stand-in persistent map: items is shared by every snapshot
// that references this node.
type Map struct {
	items map[string]int
}

// New builds an empty map.
func New() *Map {
	return &Map{items: map[string]int{}}
}

// Set stores k=v into a fresh node, persistent-style.
func (m *Map) Set(k string, v int) *Map {
	out := make(map[string]int, len(m.items)+1)
	for kk, vv := range m.items {
		out[kk] = vv
	}
	out[k] = v
	return &Map{items: out}
}

// Inner hands the shared map straight to the caller.
func (m *Map) Inner() map[string]int {
	return m.items // want: exported Inner returns an internal slice/map
}

// inner is the same leak, but unexported: it only contributes a summary.
func (m *Map) inner() map[string]int {
	return m.items
}

// Chain leaks transitively through the unexported helper.
func (m *Map) Chain() map[string]int {
	return m.inner() // want: exported Chain returns an internal slice/map
}

// Alias leaks through a local variable.
func (m *Map) Alias() map[string]int {
	it := m.items
	return it // want: exported Alias returns an internal slice/map
}

// Copy builds a fresh container: safe to hand out.
func (m *Map) Copy() map[string]int {
	out := make(map[string]int, len(m.items))
	for k, v := range m.items {
		out[k] = v
	}
	return out
}

// Len reads internals without exposing them.
func (m *Map) Len() int {
	return len(m.items)
}
