package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// ErrwrapAnalyzer enforces the sentinel-error contract: typed sentinels
// (package-level `var ErrFoo = errors.New(...)` and friends) are part of
// the public error surface, so call sites must dispatch with errors.Is —
// never `==`, which breaks the moment a layer wraps the error — and
// wrapping layers must use the `%w` verb so errors.Is keeps seeing the
// sentinel through the wrap.
var ErrwrapAnalyzer = &Analyzer{
	Name: "errwrap",
	Doc:  "flag == / != comparison against error sentinels and sentinel wrapping without %w",
	Run:  runErrwrap,
}

func runErrwrap(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				checkSentinelCompare(pass, e)
			case *ast.CallExpr:
				checkErrorfWrap(pass, e)
			}
			return true
		})
	}
	return nil
}

// checkSentinelCompare reports e when it compares an error against a
// package-level Err* sentinel with == or !=.
func checkSentinelCompare(pass *Pass, e *ast.BinaryExpr) {
	if e.Op != token.EQL && e.Op != token.NEQ {
		return
	}
	for _, side := range []ast.Expr{e.X, e.Y} {
		if v := sentinelVar(pass, side); v != nil {
			pass.Reportf(e.Pos(),
				"error compared against sentinel %s with %s; use errors.Is so wrapped errors still match",
				v.Name(), e.Op)
			return
		}
	}
}

// checkErrorfWrap reports Errorf-style calls that pass an Err* sentinel
// argument while the constant format string carries no %w verb: the
// resulting error hides the sentinel from errors.Is.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	if calleeName(call) != "Errorf" || len(call.Args) < 2 {
		return
	}
	format, ok := constString(pass, call.Args[0])
	if !ok || strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		if v := sentinelVar(pass, arg); v != nil {
			pass.Reportf(call.Pos(),
				"sentinel %s passed to Errorf without a %%w verb; the wrap hides it from errors.Is",
				v.Name())
			return
		}
	}
}

// sentinelVar resolves expr to a package-level variable of type error
// whose name starts with "Err", or nil.
func sentinelVar(pass *Pass, expr ast.Expr) *types.Var {
	var id *ast.Ident
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	v, ok := pass.Info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil {
		return nil
	}
	if !strings.HasPrefix(v.Name(), "Err") || v.Name() == "Err" {
		return nil
	}
	if v.Parent() != v.Pkg().Scope() { // must be package-level
		return nil
	}
	if !isErrorType(v.Type()) {
		return nil
	}
	return v
}

func isErrorType(t types.Type) bool {
	iface, ok := t.Underlying().(*types.Interface)
	if ok && iface.NumMethods() == 1 && iface.Method(0).Name() == "Error" {
		return true
	}
	// Concrete sentinel types (var ErrFoo = myErr{}) still count when they
	// implement error.
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errType)
}

// constString evaluates expr as a constant string.
func constString(pass *Pass, expr ast.Expr) (string, bool) {
	tv, ok := pass.Info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
