package lftj

import (
	"testing"

	"logicblox/internal/relation"
	"logicblox/internal/tuple"
)

// TestIntervalCoversPermuted pins the column-mapped Covers semantics: with
// Cols = {1, 0} the prefix constrains stored column 1 and [Lo, Hi] bounds
// stored column 0, regardless of the order the run read them in.
func TestIntervalCoversPermuted(t *testing.T) {
	iv := Interval{
		Prefix: tuple.Ints(10),
		Lo:     tuple.Int(1),
		Hi:     tuple.Int(3),
		Cols:   []int{1, 0},
	}
	cases := []struct {
		t    tuple.Tuple
		want bool
	}{
		{tuple.Ints(2, 10), true},  // col1 = 10 matches, col0 = 2 ∈ [1,3]
		{tuple.Ints(1, 10), true},  // boundary
		{tuple.Ints(5, 10), false}, // col0 outside range
		{tuple.Ints(2, 11), false}, // prefix column mismatch
		{tuple.Ints(2), false},     // too short for the mapping
	}
	for _, c := range cases {
		if got := iv.Covers(c.t); got != c.want {
			t.Errorf("Covers(%v) = %v, want %v (iv %v cols %v)", c.t, got, c.want, iv, iv.Cols)
		}
	}
}

// permJoin joins S(v) with R(k, v) through R's permuted index (v, k),
// recording sensitivity into idx when non-nil, and returns the bindings.
func permJoin(t *testing.T, s, r relation.Relation, idx *SensitivityIndex) []tuple.Tuple {
	t.Helper()
	perm := []int{1, 0} // plan column i reads stored column perm[i]
	j, err := NewJoin(2, []Atom{
		{Pred: "S", Iter: s.Iterator(), Vars: []int{0}},
		{Pred: "R", Iter: r.Permuted(perm).Iterator(), Vars: []int{0, 1}, Cols: perm},
	}, idx)
	if err != nil {
		t.Fatal(err)
	}
	return j.Collect()
}

// TestAffectedPermutedAtomSound is the regression test for the
// permuted-index sensitivity bug: intervals were recorded with prefixes in
// plan-column order but probed with tuples in stored-column order, so
// Affected returned false negatives and sensitivity-mode IVM skipped rules
// whose inputs had in fact changed. The fix threads Atom.Cols into the
// recorded intervals. Soundness is checked exhaustively: every stored
// insertion that changes the join's output must be flagged as affected.
func TestAffectedPermutedAtomSound(t *testing.T) {
	s := unary(10, 30)
	r := binary([2]int64{1, 10}, [2]int64{2, 20}, [2]int64{3, 30})

	idx := NewSensitivityIndex()
	base := permJoin(t, s, r, idx)
	if len(base) != 2 {
		t.Fatalf("base join = %v, want 2 bindings", base)
	}
	// The depth-1 scan under v=10 covers all k: a new pairing with v=10
	// must be affected even though its k never appeared before.
	if !idx.Affected("R", tuple.Ints(99, 10)) {
		t.Fatalf("insert (99, 10) joins with S(10) but reported unaffected")
	}

	equal := func(a, b []tuple.Tuple) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if !a[i].Equal(b[i]) {
				return false
			}
		}
		return true
	}
	for k := int64(0); k <= 5; k++ {
		for v := int64(0); v <= 35; v += 5 {
			ins := tuple.Ints(k, v)
			if r.Contains(ins) {
				continue
			}
			got := permJoin(t, s, r.Insert(ins), nil)
			if !equal(got, base) && !idx.Affected("R", ins) {
				t.Errorf("insert %v changes join output %v -> %v but Affected = false", ins, base, got)
			}
		}
	}
}
