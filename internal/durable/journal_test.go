package durable

import (
	"os"
	"path/filepath"
	"testing"

	"logicblox/internal/core"
)

func testRecord(seq uint64) core.CommitRecord {
	return core.CommitRecord{Seq: seq, Kind: "exec", Branch: "main", Src: "+p(1)."}
}

func openTestJournal(t *testing.T, dir string) *journal {
	t.Helper()
	j := &journal{fsys: OS, dir: dir}
	if err := j.open(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.close() })
	return j
}

func TestJournalAppendLoad(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, dir)
	for seq := uint64(1); seq <= 5; seq++ {
		if err := j.append(testRecord(seq), true); err != nil {
			t.Fatal(err)
		}
	}
	recs, torn, err := j.load()
	if err != nil || torn {
		t.Fatalf("load: torn=%v err=%v", torn, err)
	}
	if len(recs) != 5 {
		t.Fatalf("len(recs) = %d, want 5", len(recs))
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) || rec.Kind != "exec" || rec.Src != "+p(1)." {
			t.Fatalf("recs[%d] = %+v", i, rec)
		}
	}
}

// A torn tail — the file ends mid-frame — must invalidate only the torn
// record: the prefix replays, torn is reported.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, dir)
	for seq := uint64(1); seq <= 3; seq++ {
		if err := j.append(testRecord(seq), true); err != nil {
			t.Fatal(err)
		}
	}
	j.close()
	path := filepath.Join(dir, journalName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < 40; cut += 7 {
		if err := os.WriteFile(path, raw[:len(raw)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		recs, torn := readJournalFile(t, path)
		if !torn {
			t.Fatalf("cut %d: tear not detected", cut)
		}
		if len(recs) > 2 {
			t.Fatalf("cut %d: replayed %d records past the tear", cut, len(recs))
		}
		for i, rec := range recs {
			if rec.Seq != uint64(i+1) {
				t.Fatalf("cut %d: recs[%d].Seq = %d", cut, i, rec.Seq)
			}
		}
	}
	// A bit flip inside a record's frame is also a tear at that record.
	mut := append([]byte(nil), raw...)
	mut[len(journalMagic)+10] ^= 0x01
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, torn := readJournalFile(t, path)
	if !torn || len(recs) != 0 {
		t.Fatalf("bit flip in first record: recs=%d torn=%v", len(recs), torn)
	}
}

func readJournalFile(t *testing.T, path string) ([]core.CommitRecord, bool) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return readJournal(raw)
}

// rewrite truncates atomically and the journal accepts appends after it.
func TestJournalRewriteThenAppend(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, dir)
	for seq := uint64(1); seq <= 4; seq++ {
		if err := j.append(testRecord(seq), true); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.rewrite([]core.CommitRecord{testRecord(3), testRecord(4)}); err != nil {
		t.Fatal(err)
	}
	if err := j.append(testRecord(5), true); err != nil {
		t.Fatal(err)
	}
	recs, torn, err := j.load()
	if err != nil || torn {
		t.Fatalf("load: torn=%v err=%v", torn, err)
	}
	if len(recs) != 3 || recs[0].Seq != 3 || recs[2].Seq != 5 {
		t.Fatalf("recs = %+v", recs)
	}
}

// An empty or missing journal is zero records, not an error.
func TestJournalMissing(t *testing.T) {
	j := &journal{fsys: OS, dir: t.TempDir()}
	recs, torn, err := j.load()
	if err != nil || torn || len(recs) != 0 {
		t.Fatalf("load on missing journal: recs=%d torn=%v err=%v", len(recs), torn, err)
	}
}
