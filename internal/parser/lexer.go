// Package parser implements the LogiQL lexer and recursive-descent parser
// producing the AST of package ast. The grammar covers the language
// surface used throughout the paper (§2.2): relational and functional
// atoms, derivation rules, aggregation and predict P2P rules, integrity
// constraints, reactive (delta / @start) decorations, and lang: directives.
package parser

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokInt
	tokFloat
	tokString
	tokPunct // any operator / punctuation, text in tok.text
)

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("%q", t.text)
	default:
		return t.text
	}
}

// lexError reports a lexical error with position.
type lexError struct {
	line, col int
	msg       string
}

func (e *lexError) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.line, e.col, e.msg)
}

// lex tokenizes src. Multi-character operators recognized: <-, ->, <<, >>,
// <=, >=, !=.
func lex(src string) ([]token, error) {
	var toks []token
	line, col := 1, 1
	i := 0
	n := len(src)
	adv := func(k int) {
		for j := 0; j < k; j++ {
			if src[i] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
			i++
		}
	}
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			adv(1)
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				adv(1)
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			start := token{line: line, col: col}
			adv(2)
			for i+1 < n && !(src[i] == '*' && src[i+1] == '/') {
				adv(1)
			}
			if i+1 >= n {
				return nil, &lexError{start.line, start.col, "unterminated block comment"}
			}
			adv(2)
		case c == '"':
			startLine, startCol := line, col
			adv(1)
			var b strings.Builder
			for i < n && src[i] != '"' {
				if src[i] == '\\' && i+1 < n {
					adv(1)
					switch src[i] {
					case 'n':
						b.WriteByte('\n')
					case 't':
						b.WriteByte('\t')
					case '\\', '"':
						b.WriteByte(src[i])
					default:
						return nil, &lexError{line, col, fmt.Sprintf("unknown escape \\%c", src[i])}
					}
					adv(1)
					continue
				}
				b.WriteByte(src[i])
				adv(1)
			}
			if i >= n {
				return nil, &lexError{startLine, startCol, "unterminated string literal"}
			}
			adv(1)
			toks = append(toks, token{tokString, b.String(), startLine, startCol})
		case c >= '0' && c <= '9':
			startLine, startCol := line, col
			start := i
			for i < n && src[i] >= '0' && src[i] <= '9' {
				adv(1)
			}
			kind := tokInt
			// A '.' continues the number only when followed by a digit, so
			// the clause terminator after an integer still lexes correctly.
			if i+1 < n && src[i] == '.' && src[i+1] >= '0' && src[i+1] <= '9' {
				kind = tokFloat
				adv(1)
				for i < n && src[i] >= '0' && src[i] <= '9' {
					adv(1)
				}
			}
			if i < n && (src[i] == 'e' || src[i] == 'E') {
				j := i + 1
				if j < n && (src[j] == '+' || src[j] == '-') {
					j++
				}
				if j < n && src[j] >= '0' && src[j] <= '9' {
					kind = tokFloat
					adv(j - i)
					for i < n && src[i] >= '0' && src[i] <= '9' {
						adv(1)
					}
				}
			}
			toks = append(toks, token{kind, src[start:i], startLine, startCol})
		case isIdentStart(rune(c)):
			startLine, startCol := line, col
			start := i
			for i < n && isIdentPart(rune(src[i])) {
				adv(1)
			}
			toks = append(toks, token{tokIdent, src[start:i], startLine, startCol})
		default:
			startLine, startCol := line, col
			two := ""
			if i+1 < n {
				two = src[i : i+2]
			}
			switch two {
			case "<-", "->", "<<", ">>", "<=", ">=", "!=":
				toks = append(toks, token{tokPunct, two, startLine, startCol})
				adv(2)
				continue
			}
			switch c {
			case '(', ')', '[', ']', '{', '}', ',', '.', '=', '<', '>', '!',
				'+', '-', '*', '/', '`', ':', '@', '_', '|', '^':
				toks = append(toks, token{tokPunct, string(c), startLine, startCol})
				adv(1)
			default:
				return nil, &lexError{line, col, fmt.Sprintf("unexpected character %q", c)}
			}
		}
	}
	toks = append(toks, token{tokEOF, "", line, col})
	return toks, nil
}

// isIdentStart: identifiers start with a letter; a bare '_' lexes as
// punctuation (the wildcard, or the designated answer predicate of a
// query when followed by an argument list).
func isIdentStart(r rune) bool {
	return unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}
