package ast

import (
	"testing"

	"logicblox/internal/tuple"
)

func TestTermStrings(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{Var{Name: "x"}, "x"},
		{Const{Val: tuple.Int(7)}, "7"},
		{Wildcard{}, "_"},
		{Arith{Op: '+', L: Var{Name: "x"}, R: Const{Val: tuple.Int(1)}}, "(x + 1)"},
		{FuncApp{Pred: "price", Args: []Term{Var{Name: "p"}}}, "price[p]"},
		{FuncApp{Pred: "price", AtStart: true, Args: []Term{Var{Name: "p"}}}, "price@start[p]"},
	}
	for _, c := range cases {
		if got := c.term.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestAtomShapes(t *testing.T) {
	rel := &Atom{Pred: "R", Args: []Term{Var{Name: "x"}, Var{Name: "y"}}}
	if rel.Functional() || rel.Arity() != 2 || len(rel.AllTerms()) != 2 {
		t.Fatalf("relational atom misbehaves: %v", rel)
	}
	if rel.String() != "R(x, y)" {
		t.Fatalf("String = %q", rel.String())
	}
	fn := &Atom{Pred: "F", Args: []Term{Var{Name: "k"}}, Value: Var{Name: "v"}}
	if !fn.Functional() || fn.Arity() != 2 || len(fn.AllTerms()) != 2 {
		t.Fatalf("functional atom misbehaves: %v", fn)
	}
	if fn.String() != "F[k] = v" {
		t.Fatalf("String = %q", fn.String())
	}
	delta := &Atom{Pred: "R", Delta: DeltaPlus, Args: []Term{Var{Name: "x"}}}
	if delta.String() != "+R(x)" {
		t.Fatalf("String = %q", delta.String())
	}
	start := &Atom{Pred: "R", AtStart: true, Args: []Term{Var{Name: "x"}}}
	if start.String() != "R@start(x)" {
		t.Fatalf("String = %q", start.String())
	}
}

func TestDeltaKindStrings(t *testing.T) {
	if DeltaNone.String() != "" || DeltaPlus.String() != "+" ||
		DeltaMinus.String() != "-" || DeltaHat.String() != "^" {
		t.Fatal("DeltaKind strings wrong")
	}
}

func TestLiteralAndClauseStrings(t *testing.T) {
	atom := &Atom{Pred: "P", Args: []Term{Var{Name: "x"}}}
	neg := &Literal{Negated: true, Atom: atom}
	if neg.String() != "!P(x)" {
		t.Fatalf("neg literal = %q", neg.String())
	}
	cmp := &Literal{Cmp: &Comparison{Op: OpLe, L: Var{Name: "u"}, R: Var{Name: "v"}}}
	if cmp.String() != "u <= v" {
		t.Fatalf("cmp literal = %q", cmp.String())
	}
	rule := &Rule{Heads: []*Atom{atom}, Body: []*Literal{cmp}}
	if rule.String() != "P(x) <- u <= v." {
		t.Fatalf("rule = %q", rule.String())
	}
	fact := &Rule{Heads: []*Atom{atom}}
	if fact.String() != "P(x)." {
		t.Fatalf("fact = %q", fact.String())
	}
	k := &Constraint{Body: []*Literal{{Atom: atom}}, Head: []*Literal{cmp}}
	if k.String() != "P(x) -> u <= v." {
		t.Fatalf("constraint = %q", k.String())
	}
	d := &Directive{Path: []string{"lang", "solve", "max"}, Args: []string{"profit"}}
	if d.String() != "lang:solve:max(`profit)." {
		t.Fatalf("directive = %q", d.String())
	}
}

func TestAggAndPredictStrings(t *testing.T) {
	a := &Aggregation{Result: "u", Func: "sum", Arg: "z"}
	if a.String() != "agg<<u = sum(z)>>" {
		t.Fatalf("agg = %q", a.String())
	}
	p := &Predict{Result: "m", Func: "logist", Value: "v", Feature: "f"}
	if p.String() != "predict<<m = logist(v|f)>>" {
		t.Fatalf("predict = %q", p.String())
	}
	r := &Rule{
		Heads: []*Atom{{Pred: "T", Value: Var{Name: "u"}}},
		Agg:   a,
		Body:  []*Literal{{Atom: &Atom{Pred: "S", Args: []Term{Var{Name: "z"}}}}},
	}
	if r.String() != "T[] = u <- agg<<u = sum(z)>> S(z)." {
		t.Fatalf("agg rule = %q", r.String())
	}
}

func TestProgramAccessors(t *testing.T) {
	p := &Program{Clauses: []Clause{
		&Rule{Heads: []*Atom{{Pred: "a", Args: []Term{Var{Name: "x"}}}}},
		&Constraint{},
		&Directive{Path: []string{"lang", "solve", "max"}, Args: []string{"p"}},
	}}
	if len(p.Rules()) != 1 || len(p.Constraints()) != 1 || len(p.Directives()) != 1 {
		t.Fatalf("accessors wrong: %d %d %d", len(p.Rules()), len(p.Constraints()), len(p.Directives()))
	}
}

func TestTypeAtomsTable(t *testing.T) {
	if TypeAtoms["float"] != tuple.KindFloat || TypeAtoms["int"] != tuple.KindInt ||
		TypeAtoms["string"] != tuple.KindString {
		t.Fatal("TypeAtoms table wrong")
	}
	if _, ok := TypeAtoms["Product"]; ok {
		t.Fatal("user types must not be builtin type atoms")
	}
}
