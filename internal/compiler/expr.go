// Package compiler lowers LogiQL AST programs into executable plans: it
// infers base/derived predicates, desugars functional applications,
// classifies comparisons into bindings and filters, chooses leapfrog
// variable orders (planning secondary indices where the order is
// inconsistent with storage order), and stratifies the rule set.
package compiler

import (
	"errors"
	"fmt"

	"logicblox/internal/tuple"
)

// Resolver gives expressions access to predicate contents at evaluation
// time. It is needed only by constraint-head expressions (functional
// lookups and existence checks); rule-body expressions are pure and may
// be evaluated with a nil Resolver.
type Resolver interface {
	// FuncValue returns the value of functional predicate name at key.
	FuncValue(name string, key tuple.Tuple) (tuple.Value, bool)
	// Exists reports whether any tuple of name matches the pattern; nil
	// entries in pattern are wildcards.
	Exists(name string, pattern []tuple.Value, wild []bool) bool
}

// ErrNoValue reports a functional lookup miss during constraint checking.
var ErrNoValue = errors.New("no value for functional predicate key")

// Expr is a compiled, evaluable expression over a join binding.
type Expr interface {
	// Eval computes the expression under binding (join variables first,
	// then assigned variables; see RulePlan.Slots). r may be nil for pure
	// expressions.
	Eval(binding tuple.Tuple, r Resolver) (tuple.Value, error)
}

// VarExpr reads slot Idx of the binding.
type VarExpr struct{ Idx int }

// ConstExpr is a literal value.
type ConstExpr struct{ Val tuple.Value }

// ArithExpr applies a binary arithmetic operator.
type ArithExpr struct {
	Op   byte
	L, R Expr
}

// FuncGetExpr looks up a functional predicate's value for a key computed
// from the binding (constraint heads only).
type FuncGetExpr struct {
	Name string
	Args []Expr
}

// Eval implements Expr.
func (e VarExpr) Eval(b tuple.Tuple, _ Resolver) (tuple.Value, error) { return b[e.Idx], nil }

// Eval implements Expr.
func (e ConstExpr) Eval(tuple.Tuple, Resolver) (tuple.Value, error) { return e.Val, nil }

// Eval implements Expr.
func (e FuncGetExpr) Eval(b tuple.Tuple, r Resolver) (tuple.Value, error) {
	if r == nil {
		return tuple.Value{}, fmt.Errorf("functional lookup %s without resolver", e.Name)
	}
	key := make(tuple.Tuple, len(e.Args))
	for i, a := range e.Args {
		v, err := a.Eval(b, r)
		if err != nil {
			return tuple.Value{}, err
		}
		key[i] = v
	}
	v, ok := r.FuncValue(e.Name, key)
	if !ok {
		return tuple.Value{}, fmt.Errorf("%s%s: %w", e.Name, key, ErrNoValue)
	}
	return v, nil
}

// Eval implements Expr.
func (e ArithExpr) Eval(b tuple.Tuple, r Resolver) (tuple.Value, error) {
	l, err := e.L.Eval(b, r)
	if err != nil {
		return tuple.Value{}, err
	}
	rv, err := e.R.Eval(b, r)
	if err != nil {
		return tuple.Value{}, err
	}
	// Integer arithmetic stays integral; anything involving a float
	// widens to float.
	if l.Kind() == tuple.KindInt && rv.Kind() == tuple.KindInt {
		a, c := l.AsInt(), rv.AsInt()
		switch e.Op {
		case '+':
			return tuple.Int(a + c), nil
		case '-':
			return tuple.Int(a - c), nil
		case '*':
			return tuple.Int(a * c), nil
		case '/':
			if c == 0 {
				return tuple.Value{}, fmt.Errorf("division by zero")
			}
			return tuple.Int(a / c), nil
		}
	}
	lf, lok := l.Numeric()
	rf, rok := rv.Numeric()
	if !lok || !rok {
		return tuple.Value{}, fmt.Errorf("arithmetic on non-numeric values %s %c %s", l, e.Op, rv)
	}
	switch e.Op {
	case '+':
		return tuple.Float(lf + rf), nil
	case '-':
		return tuple.Float(lf - rf), nil
	case '*':
		return tuple.Float(lf * rf), nil
	case '/':
		if rf == 0 {
			return tuple.Value{}, fmt.Errorf("division by zero")
		}
		return tuple.Float(lf / rf), nil
	}
	return tuple.Value{}, fmt.Errorf("unknown operator %c", e.Op)
}

// existsExpr evaluates to a boolean: whether a tuple matching the pattern
// exists. Used by negated atoms in constraint heads.
type existsExpr struct {
	name string
	args []Expr // nil entries are wildcards
}

// Eval implements Expr.
func (e existsExpr) Eval(b tuple.Tuple, r Resolver) (tuple.Value, error) {
	if r == nil {
		return tuple.Value{}, fmt.Errorf("existence check %s without resolver", e.name)
	}
	pattern := make([]tuple.Value, len(e.args))
	wild := make([]bool, len(e.args))
	for i, a := range e.args {
		if a == nil {
			wild[i] = true
			continue
		}
		v, err := a.Eval(b, r)
		if err != nil {
			return tuple.Value{}, err
		}
		pattern[i] = v
	}
	return tuple.Bool(r.Exists(e.name, pattern, wild)), nil
}

// CompareValues applies a comparison operator, widening numerics so that
// 2 = 2.0 holds.
func CompareValues(op string, l, r tuple.Value) (bool, error) {
	var c int
	if lf, lok := l.Numeric(); lok {
		if rf, rok := r.Numeric(); rok {
			switch {
			case lf < rf:
				c = -1
			case lf > rf:
				c = 1
			}
			return cmpHolds(op, c), nil
		}
	}
	if l.Kind() != r.Kind() {
		if op == "!=" {
			return true, nil
		}
		if op == "=" {
			return false, nil
		}
		return false, fmt.Errorf("cannot compare %s with %s", l, r)
	}
	c = tuple.Compare(l, r)
	return cmpHolds(op, c), nil
}

func cmpHolds(op string, c int) bool {
	switch op {
	case "=":
		return c == 0
	case "!=":
		return c != 0
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	case ">=":
		return c >= 0
	}
	return false
}
