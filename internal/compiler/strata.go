package compiler

import (
	"fmt"
	"sort"
)

// stratify orders the static rules into evaluation strata. Rules whose
// head predicates are mutually recursive share a stratum (evaluated to a
// fixpoint together); negation and aggregation through a recursive cycle
// is rejected (the classical stratified-Datalog condition, which keeps
// the two-valued semantics of T2 well defined).
func stratify(p *Program) error {
	strata, idb, err := computeStrata(p.Rules, p.Preds)
	if err != nil {
		return err
	}
	p.Strata, p.IDBPreds = strata, idb
	// Reactive rules get their own stratification over decorated names,
	// used by the exec-transaction pipeline.
	rstrata, _, err := computeStrata(p.Reactive, p.Preds)
	if err != nil {
		return fmt.Errorf("in reactive rules: %w", err)
	}
	p.ReactiveStrata = rstrata
	return nil
}

// computeStrata stratifies one rule set and returns the strata together
// with the derived predicate names in stratum order.
func computeStrata(rules []*RulePlan, preds map[string]*PredInfo) ([][]*RulePlan, []string, error) {
	type edge struct {
		to      string
		blocked bool // negation or aggregation: must cross strata
	}
	succ := map[string][]edge{}
	nodes := map[string]bool{}
	for name := range preds {
		nodes[name] = true
	}
	for _, r := range rules {
		nodes[r.HeadName] = true
		blockedAll := r.Agg != nil || r.Predict != nil
		for _, b := range r.BodyNames {
			nodes[b] = true
			succ[b] = append(succ[b], edge{to: r.HeadName, blocked: blockedAll})
		}
		for _, b := range r.NegNames {
			nodes[b] = true
			succ[b] = append(succ[b], edge{to: r.HeadName, blocked: true})
		}
	}

	// Tarjan's strongly connected components, iterative.
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	comp := map[string]int{}
	var stack []string
	counter := 0
	nComp := 0

	var names []string
	for n := range nodes {
		names = append(names, n)
	}
	sort.Strings(names)

	type frame struct {
		node string
		ei   int
	}
	for _, start := range names {
		if _, seen := index[start]; seen {
			continue
		}
		frames := []frame{{node: start}}
		index[start] = counter
		low[start] = counter
		counter++
		stack = append(stack, start)
		onStack[start] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			edges := succ[f.node]
			if f.ei < len(edges) {
				next := edges[f.ei].to
				f.ei++
				if _, seen := index[next]; !seen {
					index[next] = counter
					low[next] = counter
					counter++
					stack = append(stack, next)
					onStack[next] = true
					frames = append(frames, frame{node: next})
				} else if onStack[next] && index[next] < low[f.node] {
					low[f.node] = index[next]
				}
				continue
			}
			// Finished node.
			if low[f.node] == index[f.node] {
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[top] = false
					comp[top] = nComp
					if top == f.node {
						break
					}
				}
				nComp++
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].node
				if low[f.node] < low[parent] {
					low[parent] = low[f.node]
				}
			}
		}
	}

	// Reject blocked edges within a component and compute stratum levels:
	// level(head SCC) ≥ level(body SCC), strictly greater across blocked
	// edges.
	level := make([]int, nComp)
	// Tarjan emits components in reverse topological order of the
	// condensation (successors first), so iterating components from
	// nComp-1 down to 0 visits dependencies before dependents... in our
	// edge direction (body → head), a head's component is emitted before
	// the body's. Process in increasing component id: dependencies
	// (bodies) have HIGHER ids, so instead relax iteratively.
	for changed := true; changed; {
		changed = false
		for from, es := range succ {
			for _, e := range es {
				cf, ct := comp[from], comp[e.to]
				if cf == ct {
					if e.blocked {
						return nil, nil, fmt.Errorf("program is not stratified: %s depends on itself through negation or aggregation", BaseName(e.to))
					}
					continue
				}
				need := level[cf]
				if e.blocked {
					need++
				}
				if level[ct] < need {
					level[ct] = need
					changed = true
				}
			}
		}
	}

	// Group rules by (level, component) of their head, ordered by level
	// then component id for determinism.
	type key struct{ level, comp int }
	groups := map[key][]*RulePlan{}
	for _, r := range rules {
		k := key{level[comp[r.HeadName]], comp[r.HeadName]}
		groups[k] = append(groups[k], r)
	}
	var keys []key
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].level != keys[j].level {
			return keys[i].level < keys[j].level
		}
		// Within a level, order by dependency: a component whose rules
		// read another component's head must come later. Since both are
		// at the same level only non-blocked cross edges exist; approximate
		// with reverse component id (Tarjan emits heads before bodies).
		return keys[i].comp > keys[j].comp
	})
	var strata [][]*RulePlan
	var idb []string
	seenPred := map[string]bool{}
	for _, k := range keys {
		grp := groups[k]
		sort.Slice(grp, func(i, j int) bool { return grp[i].ID < grp[j].ID })
		strata = append(strata, grp)
		for _, r := range grp {
			if !seenPred[r.HeadName] {
				seenPred[r.HeadName] = true
				idb = append(idb, r.HeadName)
			}
		}
	}
	return strata, idb, nil
}
