// Package cursor is a cursorclose-analyzer fixture: streaming cursors
// opened here must be closed in-function or escape to a caller.
package cursor

import "context"

type Cursor struct{}

func (c *Cursor) Next() bool   { return false }
func (c *Cursor) Err() error   { return nil }
func (c *Cursor) Close() error { return nil }

type Workspace struct{}

func (w *Workspace) QueryStream(ctx context.Context, src string) (*Cursor, error) {
	return &Cursor{}, nil
}

type Engine struct{}

func (e *Engine) StreamRule(i int) *Cursor { return &Cursor{} }

func badLeak(ws *Workspace) error {
	cur, err := ws.QueryStream(context.Background(), "q") // want: never closed
	if err != nil {
		return err
	}
	for cur.Next() {
	}
	return cur.Err()
}

func badDiscard(ws *Workspace) {
	ws.QueryStream(context.Background(), "q") // want: discarded
}

func badBlank(ws *Workspace) error {
	_, err := ws.QueryStream(context.Background(), "q") // want: discarded
	return err
}

func badStream(e *Engine) {
	cur := e.StreamRule(0) // want: never closed
	for cur.Next() {
	}
}

func okDefer(ws *Workspace) error {
	cur, err := ws.QueryStream(context.Background(), "q")
	if err != nil {
		return err
	}
	defer cur.Close()
	for cur.Next() {
	}
	return cur.Err()
}

func okExplicit(e *Engine) {
	cur := e.StreamRule(1)
	for cur.Next() {
	}
	cur.Close()
}

func okEscapeReturn(ws *Workspace) (*Cursor, error) {
	return ws.QueryStream(context.Background(), "q")
}

func okEscapeVarReturn(e *Engine) *Cursor {
	cur := e.StreamRule(2)
	return cur
}

func okEscapePass(e *Engine, drain func(*Cursor)) {
	cur := e.StreamRule(3)
	drain(cur)
}

type holder struct{ cur *Cursor }

func okEscapeStore(e *Engine) *holder {
	h := &holder{}
	h.cur = e.StreamRule(4)
	return h
}

func okEscapeComposite(e *Engine) *holder {
	cur := e.StreamRule(5)
	return &holder{cur: cur}
}

func okClosureClose(ws *Workspace) error {
	cur, err := ws.QueryStream(context.Background(), "q")
	if err != nil {
		return err
	}
	defer func() { cur.Close() }()
	return cur.Err()
}
