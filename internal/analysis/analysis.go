// Package analysis is a small, stdlib-only static-analysis framework for
// this repository: it loads Go packages (go/parser + go/types, resolving
// dependencies through the go command's export data), walks their ASTs
// with full type information, and reports positioned diagnostics.
//
// The analyzers in this package enforce engine invariants that Go's type
// system cannot express — the persistent data structures of paper §3.1
// are correct only if no node is mutated after construction, typed
// sentinel errors are only useful if tested with errors.Is, context
// deadlines only work if fixpoint loops poll them, and the nil-safe
// observability contract only holds if every exported metric method
// guards its receiver. cmd/lb-lint is the command-line driver; `make
// lint` runs it over the whole repository and must stay clean (there is
// no suppression mechanism, deliberately — see docs/analysis.md).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one finding: a position, the analyzer that produced it,
// and a message describing the violated invariant.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries everything an analyzer needs to examine one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named check run over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Analyzers returns the full suite, in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{ImmutableAnalyzer, ErrwrapAnalyzer, CtxloopAnalyzer, ObssafeAnalyzer, CursorcloseAnalyzer}
}

// RunAnalyzers applies every analyzer to every package and returns the
// combined diagnostics sorted by file position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return diags, fmt.Errorf("%s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// calleeName returns the bare name of a call's callee: the identifier for
// f(...), the selector for x.f(...), empty otherwise.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// namedOf unwraps pointers and aliases down to a named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(t)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}
