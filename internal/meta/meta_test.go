package meta

import (
	"sort"
	"testing"

	"logicblox/internal/ast"
	"logicblox/internal/parser"
)

func parse(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

func has(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

func TestLangEDBInference(t *testing.T) {
	// The paper's lang_edb meta-rule: predicates not implied to be derived
	// are base predicates.
	blocks := map[string]*ast.Program{
		"b1": parse(t, `
			path(x, y) <- edge(x, y).
			path(x, z) <- path(x, y), edge(y, z).`),
	}
	a, err := Analyze(blocks, blocks)
	if err != nil {
		t.Fatal(err)
	}
	if !has(a.EDB, "edge") || has(a.EDB, "path") {
		t.Fatalf("EDB = %v", a.EDB)
	}
	if !has(a.IDB, "path") || has(a.IDB, "edge") {
		t.Fatalf("IDB = %v", a.IDB)
	}
}

func TestNeedFrameRule(t *testing.T) {
	// The paper's need_frame_rule meta-rule: +Foo / -Foo in a rule head
	// demands a frame rule for Foo.
	blocks := map[string]*ast.Program{
		"b": parse(t, `
			+inventory[x] = v <- order(x, v).
			report(x) <- inventory[x] = v, v < 10.`),
	}
	a, err := Analyze(blocks, blocks)
	if err != nil {
		t.Fatal(err)
	}
	if !has(a.NeedFrameRule, "inventory") {
		t.Fatalf("NeedFrameRule = %v", a.NeedFrameRule)
	}
	if has(a.NeedFrameRule, "report") {
		t.Fatalf("report should not need a frame rule: %v", a.NeedFrameRule)
	}
}

func TestAddBlockDirtiness(t *testing.T) {
	oldBlocks := map[string]*ast.Program{
		"base": parse(t, `
			b(x) <- a(x).
			c(x) <- b(x).`),
	}
	newBlocks := map[string]*ast.Program{
		"base": oldBlocks["base"],
		"agg1": parse(t, `d(x) <- b(x), big(x).`),
	}
	a, err := Analyze(oldBlocks, newBlocks)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.AddedRules) != 1 {
		t.Fatalf("AddedRules = %v", a.AddedRules)
	}
	// Only d is dirty: the new rule derives d and nothing depends on d.
	if !has(a.DirtyPreds, "d") {
		t.Fatalf("DirtyPreds = %v", a.DirtyPreds)
	}
	if has(a.DirtyPreds, "b") || has(a.DirtyPreds, "c") {
		t.Fatalf("unaffected views marked dirty: %v", a.DirtyPreds)
	}
}

func TestRemoveBlockDirtinessPropagates(t *testing.T) {
	oldBlocks := map[string]*ast.Program{
		"base": parse(t, `b(x) <- a(x).`),
		"mid":  parse(t, `c(x) <- b(x).`),
		"top":  parse(t, `d(x) <- c(x). e(x) <- unrelated(x).`),
	}
	newBlocks := map[string]*ast.Program{
		"base": oldBlocks["base"],
		"top":  oldBlocks["top"],
	}
	a, err := Analyze(oldBlocks, newBlocks)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.RemovedRules) != 1 {
		t.Fatalf("RemovedRules = %v", a.RemovedRules)
	}
	// c lost its only rule → dropped; d depends on c → revised; e untouched.
	if !has(a.DropPreds, "c") {
		t.Fatalf("DropPreds = %v", a.DropPreds)
	}
	if !has(a.DirtyPreds, "d") {
		t.Fatalf("DirtyPreds = %v", a.DirtyPreds)
	}
	if has(a.DirtyPreds, "e") {
		t.Fatalf("unrelated view e marked dirty: %v", a.DirtyPreds)
	}
}

func TestEditRuleMarksDownstreamDirty(t *testing.T) {
	oldBlocks := map[string]*ast.Program{
		"b": parse(t, `
			v(x) <- src(x).
			w(x) <- v(x).
			u(x) <- w(x).`),
	}
	newBlocks := map[string]*ast.Program{
		"b": parse(t, `
			v(x) <- src(x), keep(x).
			w(x) <- v(x).
			u(x) <- w(x).`),
	}
	a, err := Analyze(oldBlocks, newBlocks)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"u", "v", "w"}
	got := append([]string(nil), a.DirtyPreds...)
	sort.Strings(got)
	if len(got) != len(want) {
		t.Fatalf("DirtyPreds = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DirtyPreds = %v, want %v", got, want)
		}
	}
}

func TestFactsDeterministic(t *testing.T) {
	blocks := map[string]*ast.Program{
		"a": parse(t, `x(i) <- y(i).`),
		"b": parse(t, `z(i) <- x(i).`),
	}
	f1 := Facts(blocks)
	f2 := Facts(blocks)
	for name, r1 := range f1 {
		if !r1.Equal(f2[name]) {
			t.Fatalf("meta-facts for %s not deterministic", name)
		}
	}
	if f1["user_rule"].Len() != 2 || f1["block"].Len() != 2 {
		t.Fatalf("fact counts wrong: rules=%d blocks=%d", f1["user_rule"].Len(), f1["block"].Len())
	}
}

func TestFuncAppDependenciesTracked(t *testing.T) {
	blocks := map[string]*ast.Program{
		"b": parse(t, `profit[s] = sellingPrice[s] - buyingPrice[s] <- Product(s).`),
	}
	a, err := Analyze(blocks, blocks)
	if err != nil {
		t.Fatal(err)
	}
	if !has(a.EDB, "sellingPrice") || !has(a.IDB, "profit") {
		t.Fatalf("EDB=%v IDB=%v", a.EDB, a.IDB)
	}
}

func TestNoChangeNoDirty(t *testing.T) {
	blocks := map[string]*ast.Program{"b": parse(t, `v(x) <- a(x).`)}
	a, err := Analyze(blocks, blocks)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.DirtyPreds) != 0 || len(a.AddedRules) != 0 || len(a.RemovedRules) != 0 {
		t.Fatalf("identical programs produced changes: %+v", a)
	}
}
