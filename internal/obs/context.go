package obs

import "context"

// spanCtxKey keys the current span in a context.Context.
type spanCtxKey struct{}

// ContextWithSpan returns a context carrying sp as the current span.
// Layers below (core transactions, the engine) parent their spans under
// it, so a server request's whole transaction tree hangs off one
// per-request root. A nil span is fine: SpanFromContext will return nil
// and callers fall back to opening a registry root span.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

// SpanFromContext returns the current span carried by ctx, or nil when
// none is attached (the nil *Span is itself a valid no-op).
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}
